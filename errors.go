package distal

import (
	"context"
	"errors"
	"fmt"
)

// ErrKind classifies a failure by the pipeline stage that produced it, so
// services can map failures to wire-level responses (HTTP status codes,
// retry decisions) without parsing error strings.
type ErrKind int

const (
	// KindUnknown is a failure outside the taxonomy (internal errors).
	KindUnknown ErrKind = iota
	// KindParse is a malformed request: the statement, a tensor format, a
	// shape, or a request field failed validation before scheduling.
	KindParse
	// KindSchedule is a scheduling failure: the schedule text did not parse,
	// or a command was rejected by the scheduling language.
	KindSchedule
	// KindCompile is a lowering failure: the scheduled statement could not
	// be compiled to a runtime program.
	KindCompile
	// KindExec is an execution failure: the compiled program failed while
	// running or simulating (unsatisfiable requirement, unbound data, ...).
	KindExec
	// KindInput is a well-formed request whose data does not fit the plan:
	// a wire-decoded tensor whose shape or rank disagrees with the
	// request's declared shapes, or a missing/extra tensor frame. Distinct
	// from KindParse (malformed bytes) so services can map it to 422.
	KindInput
	// KindCanceled reports that the caller's context was canceled or its
	// deadline expired before the operation finished. Errors of this kind
	// also match errors.Is against context.Canceled or
	// context.DeadlineExceeded, whichever applied.
	KindCanceled
)

// String returns the kind's stable wire name.
func (k ErrKind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindSchedule:
		return "schedule"
	case KindCompile:
		return "compile"
	case KindExec:
		return "exec"
	case KindInput:
		return "input"
	case KindCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Error is the structured failure type of the public API: every error
// returned by Session.Compile, Plan.Simulate, Binding.Run, and the shims
// over them is (or wraps) an *Error. It is errors.Is/As-compatible:
//
//	var de *distal.Error
//	if errors.As(err, &de) && de.Kind == distal.KindSchedule { ... }
//	if errors.Is(err, context.Canceled) { ... }   // Kind == KindCanceled
type Error struct {
	// Kind is the failure class.
	Kind ErrKind
	// Op names the failing operation ("compile", "simulate", "run", ...).
	Op string
	// Err is the underlying cause, preserved for errors.Is/As chains.
	Err error
}

func (e *Error) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("distal: %s: %s error", e.Op, e.Kind)
	}
	return fmt.Sprintf("distal: %s: %v", e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches another *Error by Kind (and by Op when the target sets one),
// so callers can test errors.Is(err, &distal.Error{Kind: distal.KindCanceled})
// without knowing the concrete cause.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	if t.Kind != e.Kind {
		return false
	}
	return t.Op == "" || t.Op == e.Op
}

// KindOf classifies any error: the Kind of the outermost *Error in its
// chain, KindCanceled for bare context errors, KindUnknown otherwise (nil
// errors have no kind and report KindUnknown).
func KindOf(err error) ErrKind {
	var de *Error
	if errors.As(err, &de) {
		return de.Kind
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return KindCanceled
	}
	return KindUnknown
}

// wrapErr classifies err under kind at operation op. Context errors always
// classify as KindCanceled regardless of the suggested kind, and an error
// that is already an *Error keeps its original classification (the first
// boundary to classify wins).
func wrapErr(kind ErrKind, op string, err error) error {
	if err == nil {
		return nil
	}
	var de *Error
	if errors.As(err, &de) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		kind = KindCanceled
	}
	return &Error{Kind: kind, Op: op, Err: err}
}
