package distal

import (
	"context"
	"fmt"

	"distal/internal/legion"
	"distal/internal/tensor"
)

// BatchBinding is a Plan bound to N independent problem instances: the
// executable form of a batched Real-mode workload. One execution walks the
// plan's launch structure once — amortizing requirement lookup, accounting,
// and dispatch across the batch — while leaf kernels run per instance over
// the worker pool. Instances never serialize against each other, and every
// instance's output is bit-identical to a single-instance Bind(...).Run on
// the same data.
//
// Build one with Plan.BindBatch (per-instance tensor sets) or
// Plan.BindStacked (one contiguous leading-batch-dim tensor per input).
type BatchBinding struct {
	plan  *Plan
	insts []map[string]*tensor.Dense
	outs  []*Tensor
	err   error
}

// BindBatch attaches real data for N problem instances, one tensor set per
// instance. Each instance is validated exactly as Bind validates a single
// data set (every tensor bound, shapes matching the compiled plan). The
// output tensor of each instance must be distinct from every tensor of
// every other instance — instances execute concurrently, and a shared
// output would race. Binding errors surface at Run.
func (p *Plan) BindBatch(instances ...[]*Tensor) *BatchBinding {
	bb := &BatchBinding{plan: p}
	if len(instances) == 0 {
		bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf("empty batch: bind at least one instance"))
		return bb
	}
	for i, ts := range instances {
		b := p.Bind(ts...)
		if b.err != nil {
			bb.err = &Error{Kind: KindOf(b.err), Op: "bind-batch", Err: fmt.Errorf("instance %d: %w", i, b.err)}
			return bb
		}
		bb.insts = append(bb.insts, b.data)
		bb.outs = append(bb.outs, b.out)
	}
	// Instances run in parallel: an output tensor shared with any tensor of
	// another instance would be written while that instance reads or writes
	// it.
	out := p.data.output
	for i, inst := range bb.insts {
		for j, other := range bb.insts {
			if i == j {
				continue
			}
			for name, d := range other {
				if inst[out] == d {
					bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf(
						"instance %d output %s shares data with instance %d tensor %s: outputs must be private to their instance", i, out, j, name))
					return bb
				}
			}
		}
	}
	return bb
}

// BindStacked attaches real data for batch problem instances stored
// contiguously along a leading batch dimension, Tensor-Go style: each
// stacked tensor has shape [batch, d0, d1, ...] where [d0, d1, ...] is the
// plan's shape for that tensor, and instance i is the zero-copy slice
// data[i*vol : (i+1)*vol]. The stacked output tensor receives every
// instance's result in its slice — one allocation in, one allocation out.
func (p *Plan) BindStacked(batch int, stacked ...*Tensor) *BatchBinding {
	bb := &BatchBinding{plan: p}
	if batch <= 0 {
		bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf("batch must be positive, got %d", batch))
		return bb
	}
	instances := make([][]*Tensor, batch)
	for _, t := range stacked {
		shape := p.Shape(t.Name)
		if shape == nil {
			bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf("plan has no tensor %s", t.Name))
			return bb
		}
		if t.Data == nil {
			bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf("stacked tensor %s has no data", t.Name))
			return bb
		}
		want := append([]int{batch}, shape...)
		got := t.Data.Shape()
		if len(got) != len(want) {
			bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf(
				"stacked tensor %s has rank %d, want %d (leading batch dim over the plan shape %v)", t.Name, len(got), len(want), shape))
			return bb
		}
		for d := range want {
			if got[d] != want[d] {
				bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf(
					"stacked tensor %s has shape %v, want %v (batch %d over the plan shape %v)", t.Name, got, want, batch, shape))
				return bb
			}
		}
		vol := 1
		for _, s := range shape {
			vol *= s
		}
		data := t.Data.Data()
		for i := 0; i < batch; i++ {
			view := tensor.FromData(t.Name, data[i*vol:(i+1)*vol], shape...)
			instances[i] = append(instances[i], &Tensor{Name: t.Name, Shape: shape, Format: t.Format, Data: view})
		}
	}
	return p.BindBatch(instances...)
}

// Len returns the number of bound instances (0 when the binding failed).
func (bb *BatchBinding) Len() int { return len(bb.insts) }

// Output returns instance i's bound output tensor (after Run it holds that
// instance's result), or nil when the binding failed or i is out of range.
// For stacked bindings the tensor is a zero-copy view into the stacked
// output's slice i.
func (bb *BatchBinding) Output(i int) *Tensor {
	if bb.err != nil || i < 0 || i >= len(bb.outs) {
		return nil
	}
	return bb.outs[i]
}

// Run executes the plan on every bound instance in one launch walk and
// returns one Result per instance. The simulated-time accounting runs
// exactly once — batching never perturbs the cost model — so the Results
// share identical metrics, each equal to a single-instance run's. Real leaf
// kernels fan out per (instance × task) over the worker pool (bound by
// WithRealWorkers). It aborts with KindCanceled at the runtime's next
// checkpoint once ctx is done (every instance's output is then in an
// unspecified partial state).
func (bb *BatchBinding) Run(ctx context.Context, opts ...ExecOption) ([]*Result, error) {
	if bb.err != nil {
		return nil, bb.err
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "run-batch", err)
	}
	mods := append([]ExecOption{WithReal(), legion.WithBatch(bb.insts)}, opts...)
	res, err := legion.RunContext(ctx, bb.plan.data.prog, legion.NewOptions(bb.plan.execParams(), mods...))
	if err != nil {
		return nil, wrapErr(KindExec, "run-batch", err)
	}
	out := make([]*Result, len(bb.insts))
	for i := range out {
		r := *res
		out[i] = &r
	}
	return out, nil
}
