package distal

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

const gemmStmt = "A(i,j) = B(i,k) * C(k,j)"

func gemmRequest(n int) Request {
	return Request{
		Stmt: gemmStmt,
		Shapes: map[string][]int{
			"A": {n, n}, "B": {n, n}, "C": {n, n},
		},
		Formats: map[string]string{
			"A": "xy->xy", "B": "xy->xy", "C": "xy->xy",
		},
		Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) reorder(io,jo,ii,ji) " +
			"distribute(io,jo) split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(jo,A) communicate(ko,B,C)",
	}
}

func TestSessionExecute(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	res, err := sess.Execute(gemmRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Flops <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	// Same request again: the plan must come from the cache.
	if _, err := sess.Execute(gemmRequest(64)); err != nil {
		t.Fatal(err)
	}
	st := sess.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestSessionExecuteAutoSchedule(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	req := gemmRequest(64)
	req.Schedule = "" // AutoSchedule
	res, err := sess.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flops <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestSessionExecuteDefaultFormats(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	req := gemmRequest(64)
	req.Formats = nil // every tensor defaults to its rank's canonical tiling
	if _, err := sess.Execute(req); err != nil {
		t.Fatal(err)
	}
}

func TestSessionExecuteErrors(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	for name, req := range map[string]Request{
		"bad statement":    {Stmt: "A(i,j) ="},
		"missing shape":    {Stmt: gemmStmt, Shapes: map[string][]int{"A": {8, 8}}},
		"bad format":       {Stmt: gemmStmt, Shapes: map[string][]int{"A": {8, 8}, "B": {8, 8}, "C": {8, 8}}, Formats: map[string]string{"A": "xy->>xy"}},
		"bad schedule":     {Stmt: gemmStmt, Shapes: map[string][]int{"A": {8, 8}, "B": {8, 8}, "C": {8, 8}}, Schedule: "divide(i,io,ii)"},
		"unknown variable": {Stmt: gemmStmt, Shapes: map[string][]int{"A": {8, 8}, "B": {8, 8}, "C": {8, 8}}, Schedule: "divide(zz,io,ii,2)"},
		"typo'd format key": {Stmt: gemmStmt, Shapes: map[string][]int{"A": {8, 8}, "B": {8, 8}, "C": {8, 8}},
			Formats: map[string]string{"b": "xy->x"}},
		"extra shape key": {Stmt: gemmStmt,
			Shapes: map[string][]int{"A": {8, 8}, "B": {8, 8}, "C": {8, 8}, "D": {8, 8}}},
		"rank 7 without format": {Stmt: "A(a,b,c,d,e,f,g) = B(a,b,c,d,e,f,g)",
			Shapes: map[string][]int{
				"A": {2, 2, 2, 2, 2, 2, 2},
				"B": {2, 2, 2, 2, 2, 2, 2},
			}},
	} {
		if _, err := sess.Execute(req); err == nil {
			t.Errorf("%s: Execute succeeded, want error", name)
		}
	}
}

// TestSessionRequestMemo: a repeated request resolves through the request
// memo — no statement re-parse — and still reports plan-cache hits; results
// stay identical, and the memo-resolved plan reports itself as cached.
func TestSessionRequestMemo(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	req := gemmRequest(64)
	first, err := sess.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sess.Compile(context.Background(), req) // memo path
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Stats().Cached {
		t.Fatal("second compile of an identical request should resolve from the cache")
	}
	if plan.Key() == "" || plan.ScheduleText() == "" || plan.Notation() == "" {
		t.Fatalf("memo-resolved plan lost metadata: key=%q sched=%q notation=%q", plan.Key(), plan.ScheduleText(), plan.Notation())
	}
	again, err := plan.Simulate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.Time != first.Time || again.Copies != first.Copies {
		t.Fatalf("memoized plan diverged: %+v vs %+v", again, first)
	}
	if st := sess.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	// A request differing only in schedule text must not alias the memo.
	other := gemmRequest(64)
	other.Schedule = "divide(i,io,ii,4) reorder(io,ii,j,k) distribute(io) communicate(io,A,B,C)"
	if _, err := sess.Execute(other); err != nil {
		t.Fatal(err)
	}
	if st := sess.CacheStats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want a second compile for the new schedule", st)
	}
}

// TestSessionMemoDoesNotBypassValidation: a request whose only difference
// from a previously memoized one is an invalid map entry must still be
// rejected, not silently served the memoized plan.
func TestSessionMemoDoesNotBypassValidation(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	good := Request{
		Stmt:   gemmStmt,
		Shapes: map[string][]int{"A": {64, 64}, "B": {64, 64}, "C": {64, 64}},
	}
	if _, err := sess.Execute(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Formats = map[string]string{"b": "xy->x"} // typo'd key, otherwise identical
	if _, err := sess.Execute(bad); err == nil {
		t.Fatal("typo'd Formats key served from the request memo instead of failing validation")
	}
}

// TestSessionMemoCanonicalInjective: a request must not be able to collide
// with a memoized one by embedding another field's rendering inside its own
// (the canonical form is length-framed precisely to prevent this).
func TestSessionMemoCanonicalInjective(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	valid := Request{
		Stmt:     gemmStmt,
		Shapes:   map[string][]int{"A": {64, 64}, "B": {64, 64}, "C": {64, 64}},
		Formats:  map[string]string{"B": "xy->xy"},
		Schedule: gemmRequest(64).Schedule,
	}
	if _, err := sess.Execute(valid); err != nil {
		t.Fatal(err)
	}
	// Fold the format entry's old textual rendering into the schedule of a
	// request without that entry: it must fail schedule parsing, not be
	// served the memoized plan.
	forged := Request{
		Stmt:     valid.Stmt,
		Shapes:   valid.Shapes,
		Schedule: "format B=xy->xy\n" + valid.Schedule,
	}
	if canonicalRequest(forged) == canonicalRequest(valid) {
		t.Fatal("distinct requests canonicalize identically")
	}
	if _, err := sess.Execute(forged); err == nil {
		t.Fatal("forged request executed instead of failing schedule parse")
	}
}

func TestSessionCacheDiscriminates(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	if _, err := sess.Execute(gemmRequest(64)); err != nil {
		t.Fatal(err)
	}
	other := gemmRequest(64)
	other.Shapes["B"] = []int{64, 128}
	other.Shapes["C"] = []int{128, 64}
	if _, err := sess.Execute(other); err != nil {
		t.Fatal(err)
	}
	st := sess.CacheStats()
	if st.Hits != 0 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses / 2 entries", st)
	}
}

func TestSessionCacheEviction(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2), WithPlanCacheSize(2))
	for _, n := range []int{16, 32, 48} {
		if _, err := sess.Execute(gemmRequest(n)); err != nil {
			t.Fatal(err)
		}
	}
	if st := sess.CacheStats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 after eviction", st.Entries)
	}
	// n=16 was evicted (least recent): recompiling misses.
	if _, err := sess.Execute(gemmRequest(16)); err != nil {
		t.Fatal(err)
	}
	if st := sess.CacheStats(); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 0 hits / 4 misses", st)
	}
	// n=48 is still resident.
	if _, err := sess.Execute(gemmRequest(48)); err != nil {
		t.Fatal(err)
	}
	if st := sess.CacheStats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want a hit for the resident plan", st)
	}
}

func TestSessionCacheDisabled(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2), WithPlanCacheSize(0))
	for i := 0; i < 2; i++ {
		if _, err := sess.Execute(gemmRequest(64)); err != nil {
			t.Fatal(err)
		}
	}
	if st := sess.CacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want no hits and no entries with caching off", st)
	}
}

// TestSessionBoundDataNotCached: computations with real data bound must not
// share plans through the cache (Real execution mutates bound regions).
func TestSessionBoundDataNotCached(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	f := MustFormat("xy->xy")
	build := func() *Computation {
		A := NewTensor("A", f, 16, 16).Zero()
		B := NewTensor("B", f, 16, 16).FillRandom(1)
		C := NewTensor("C", f, 16, 16).FillRandom(2)
		return sess.MustDefine(gemmStmt, A, B, C)
	}
	for i := 0; i < 2; i++ {
		c := build()
		if err := c.AutoSchedule(); err != nil {
			t.Fatal(err)
		}
		prog, err := c.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := prog.Run(LassenCPU()); err != nil {
			t.Fatal(err)
		}
	}
	if st := sess.CacheStats(); st.Entries != 0 {
		t.Fatalf("bound-data plans were cached: %+v", st)
	}
}

// TestSessionConcurrentSimulate: one cached plan simulated from many
// goroutines must produce identical deterministic results (run with -race).
func TestSessionConcurrentSimulate(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	want, err := sess.Execute(gemmRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sess.Execute(gemmRequest(64))
			if err != nil {
				errs <- err
				return
			}
			if res.Time != want.Time || res.Flops != want.Flops || res.Copies != want.Copies {
				errs <- fmt.Errorf("concurrent result diverged: %+v vs %+v", res, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := sess.CacheStats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one compile", st)
	}
}

func TestSessionRedistribute(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	tsr := NewTensor("T", MustFormat("xy->xy"), 32, 32)
	bytes, secs, err := sess.RedistributeCost(tsr, MustFormat("xy->x*"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 || secs <= 0 {
		t.Fatalf("implausible cost: %d bytes, %f s", bytes, secs)
	}
	// The layout-change plan is cached: repeating it hits.
	if _, _, err := sess.RedistributeCost(tsr, MustFormat("xy->x*")); err != nil {
		t.Fatal(err)
	}
	if st := sess.CacheStats(); st.Hits < 1 {
		t.Fatalf("stats = %+v, want a cache hit for the repeated layout change", st)
	}
}

func TestPlanExecuteOptions(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(NewMachine(CPU, 2, 2))
	plan, err := sess.Compile(ctx, gemmRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	if st := plan.Stats(); st.Cached || st.Launches == 0 || st.Points == 0 {
		t.Fatalf("implausible compile stats: %+v", st)
	}
	traced, err := plan.Simulate(ctx, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("WithTrace produced no trace records")
	}
	sync1, err := plan.Simulate(ctx, WithSynchronous())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plan.Simulate(ctx, WithCostModel(LassenCPU()))
	if err != nil {
		t.Fatal(err)
	}
	if sync1.Time < plain.Time {
		t.Fatalf("synchronous run (%f s) faster than overlapped (%f s)", sync1.Time, plain.Time)
	}
}

func TestScheduleTextRoundTripThroughComputation(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	f := MustFormat("xy->xy")
	mk := func() []*Tensor {
		return []*Tensor{
			NewTensor("A", f, 64, 64),
			NewTensor("B", f, 64, 64),
			NewTensor("C", f, 64, 64),
		}
	}
	c1 := sess.MustDefine(gemmStmt, mk()...)
	c1.Schedule().
		Divide("i", "io", "ii", 2).Divide("j", "jo", "ji", 2).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Communicate("jo", "A", "B", "C")
	text := c1.ScheduleText()

	c2 := sess.MustDefine(gemmStmt, mk()...)
	if err := c2.ApplySchedule(text); err != nil {
		t.Fatal(err)
	}
	if c2.ScheduleText() != text {
		t.Fatalf("round trip changed schedule:\n  %q\n  %q", text, c2.ScheduleText())
	}
	// Both compile to the same cached plan.
	if _, err := c1.Compile(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Compile(); err != nil {
		t.Fatal(err)
	}
	if st := sess.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want the parsed schedule to hit the fluent plan", st)
	}
}

// TestFluentCompileSingleflight: concurrent identical fluent compiles
// (Computation.Compile, not the Request path) collapse through the same
// flight table as Session.Compile — exactly one compiler run, everyone else
// waits and shares.
func TestFluentCompileSingleflight(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	build := func() *Computation {
		f := Tiled(2)
		A := NewTensor("A", f, 64, 64)
		B := NewTensor("B", f, 64, 64)
		C := NewTensor("C", f, 64, 64)
		comp, err := sess.Define(gemmStmt, A, B, C)
		if err != nil {
			t.Fatal(err)
		}
		comp.Schedule().
			Divide("i", "io", "ii", 2).Divide("j", "jo", "ji", 2).
			Reorder("io", "jo", "ii", "ji").Distribute("io", "jo").
			Communicate("jo", "A", "B", "C")
		return comp
	}
	const n = 8
	comps := make([]*Computation, n)
	for i := range comps {
		comps[i] = build()
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	progs := make([]*Program, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			progs[i], errs[i] = comps[i].Compile()
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
	}
	st := sess.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (one shared compile)", st.Misses)
	}
	if st.Hits != n-1 {
		t.Fatalf("hits = %d, want %d (everyone else shares)", st.Hits, n-1)
	}
	for i := 1; i < n; i++ {
		if progs[i].P != progs[0].P {
			t.Fatalf("compile %d returned a different program object", i)
		}
	}
	// A fluent compile and a Request compile of the same program share one
	// cache entry: the Request path is a hit now.
	plan, err := sess.Compile(context.Background(), Request{
		Stmt: gemmStmt,
		Shapes: map[string][]int{
			"A": {64, 64}, "B": {64, 64}, "C": {64, 64},
		},
		Schedule: comps[0].ScheduleText(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Stats().Cached {
		t.Fatal("request compile of the fluently compiled program missed the cache")
	}
}

// TestFluentCompileErrorPropagates: a failing fluent compile surfaces its
// error to every concurrent caller and leaves no stuck flight behind.
func TestFluentCompileErrorPropagates(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	f := Tiled(2)
	comp, err := sess.Define(gemmStmt,
		NewTensor("A", f, 64, 64), NewTensor("B", f, 64, 64), NewTensor("C", f, 64, 64))
	if err != nil {
		t.Fatal(err)
	}
	// A sticky schedule error (divide by zero pieces) surfaces at Compile.
	comp.Schedule().Divide("i", "io", "ii", 0)
	if _, err := comp.Compile(); err == nil {
		t.Fatal("expected a compile error")
	}
	// The session must remain usable afterwards.
	if _, err := sess.Execute(gemmRequest(64)); err != nil {
		t.Fatalf("session unusable after failed fluent compile: %v", err)
	}
}
