package distal

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"distal/internal/cin"
	"distal/internal/core"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/schedule"
)

// Session is the long-lived entry point of the compile/execute API: it owns
// a target machine, default simulation parameters, and an LRU cache of
// compiled plans. A service compiles a workload once and executes it many
// times; repeated Define+Compile of the same (statement, shapes, formats,
// schedule) returns the cached plan, and a cached *Program is safe for
// concurrent Simulate calls.
//
// Plans holding real data are never cached: a plan describes a task graph,
// not the values flowing through it, and Real-mode execution mutates bound
// tensors.
type Session struct {
	machine *Machine
	params  Params

	mu       sync.Mutex
	capacity int
	lru      *list.List // of *planEntry, front = most recent
	plans    map[string]*list.Element
	hits     int64
	misses   int64

	// reqMemo maps a canonical rendering of a Request to its plan key, so a
	// repeated Execute of the same request skips statement parsing, tensor
	// construction, and schedule replay entirely. It is a memo over the plan
	// cache, not a second cache: programs live only under plan keys.
	reqMemo map[string]string
}

type planEntry struct {
	key  string
	prog *legion.Program
}

// DefaultPlanCacheSize is the plan-cache capacity of new sessions.
const DefaultPlanCacheSize = 128

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithParams sets the session's default cost model (used by Execute and as
// the default for Program.Simulate through this session). The zero default
// is LassenCPU.
func WithParams(p Params) SessionOption {
	return func(s *Session) { s.params = p }
}

// WithPlanCacheSize sets the plan cache capacity; 0 disables caching.
func WithPlanCacheSize(n int) SessionOption {
	return func(s *Session) { s.capacity = n }
}

// NewSession creates a session over the machine.
func NewSession(m *Machine, opts ...SessionOption) *Session {
	s := &Session{
		machine:  m,
		params:   LassenCPU(),
		capacity: DefaultPlanCacheSize,
		lru:      list.New(),
		plans:    map[string]*list.Element{},
		reqMemo:  map[string]string{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Machine returns the session's target machine.
func (s *Session) Machine() *Machine { return s.machine }

// Params returns the session's default cost model.
func (s *Session) Params() Params { return s.params }

// CacheStats summarizes plan-cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// CacheStats returns a snapshot of the plan cache counters.
func (s *Session) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{Hits: s.hits, Misses: s.misses, Entries: s.lru.Len()}
}

// lookup returns the cached plan for key, promoting it to most recent. A
// miss is counted (the caller is about to compile).
func (s *Session) lookup(key string) *legion.Program {
	return s.find(key, true)
}

// peek is lookup without counting a miss: used when probing via the request
// memo, where a miss falls through to the ordinary compile path (which
// counts it exactly once).
func (s *Session) peek(key string) *legion.Program {
	return s.find(key, false)
}

func (s *Session) find(key string, countMiss bool) *legion.Program {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return nil
	}
	el, ok := s.plans[key]
	if !ok {
		if countMiss {
			s.misses++
		}
		return nil
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*planEntry).prog
}

// store inserts a plan, evicting the least recently used beyond capacity.
func (s *Session) store(key string, prog *legion.Program) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.plans[key]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*planEntry).prog = prog
		return
	}
	s.plans[key] = s.lru.PushFront(&planEntry{key: key, prog: prog})
	for s.lru.Len() > s.capacity {
		last := s.lru.Back()
		s.lru.Remove(last)
		delete(s.plans, last.Value.(*planEntry).key)
	}
}

// Define parses the statement and binds the named tensors against the
// session's machine; the resulting computation compiles through the
// session's plan cache.
func (s *Session) Define(expr string, tensors ...*Tensor) (*Computation, error) {
	c, err := Define(expr, s.machine, tensors...)
	if err != nil {
		return nil, err
	}
	c.sess = s
	return c, nil
}

// MustDefine is Define but panics on error.
func (s *Session) MustDefine(expr string, tensors ...*Tensor) *Computation {
	c, err := s.Define(expr, tensors...)
	if err != nil {
		panic(err)
	}
	return c
}

// Request is one compile-and-execute job in pure data form — everything a
// server, CLI, or stored workload needs to name a computation: the
// statement, tensor shapes, tensor formats as distribution notation text,
// and the schedule as scheduling-command text. Requests are
// simulation-shaped (no data is materialized); bind real data through
// Session.Define and Program.Run instead.
type Request struct {
	// Stmt is the tensor index notation statement,
	// e.g. "A(i,j) = B(i,k) * C(k,j)".
	Stmt string
	// Shapes gives every tensor's dimensions by name.
	Shapes map[string][]int
	// Formats gives tensor distribution notation per tensor,
	// e.g. "xy->xy"; tensors without an entry default to the canonical
	// tiling of their rank.
	Formats map[string]string
	// Schedule is scheduling-command text,
	// e.g. "divide(i,io,ii,4) reorder(io,ii,j,k) distribute(io) communicate(io,A,B)".
	// Empty means AutoSchedule.
	Schedule string
}

// buildComputation turns a request into a schedulable computation.
func (s *Session) buildComputation(req Request) (*Computation, error) {
	stmt, err := ir.Parse(req.Stmt)
	if err != nil {
		return nil, err
	}
	// Reject keys that name no tensor of the statement: in a pure-data wire
	// format a typo'd name would otherwise silently fall back to defaults.
	named := map[string]bool{}
	for _, name := range stmt.TensorNames() {
		named[name] = true
	}
	for key := range req.Shapes {
		if !named[key] {
			return nil, fmt.Errorf("distal: request Shapes names %s, which is not a tensor of %q", key, req.Stmt)
		}
	}
	for key := range req.Formats {
		if !named[key] {
			return nil, fmt.Errorf("distal: request Formats names %s, which is not a tensor of %q", key, req.Stmt)
		}
	}
	var tensors []*Tensor
	for _, name := range stmt.TensorNames() {
		shape, ok := req.Shapes[name]
		if !ok {
			return nil, fmt.Errorf("distal: request has no shape for tensor %s", name)
		}
		var f Format
		if src, ok := req.Formats[name]; ok {
			f, err = ParseFormat(src)
			if err != nil {
				return nil, fmt.Errorf("distal: tensor %s: %w", name, err)
			}
		} else {
			if len(shape) > 6 {
				return nil, fmt.Errorf("distal: tensor %s has rank %d; the default tiling supports ranks up to 6 (give a Formats entry)", name, len(shape))
			}
			f = Tiled(len(shape))
		}
		tensors = append(tensors, NewTensor(name, f, shape...))
	}
	c, err := s.Define(req.Stmt, tensors...)
	if err != nil {
		return nil, err
	}
	if req.Schedule == "" {
		if err := c.AutoSchedule(); err != nil {
			return nil, err
		}
	} else if err := c.ApplySchedule(req.Schedule); err != nil {
		return nil, err
	}
	return c, nil
}

// canonicalRequest renders a request deterministically and injectively:
// every field is length-framed, so no request can embed another's frame
// boundaries inside a field value and collide (maps are rendered sorted and
// in full — an entry buildComputation would reject must not canonicalize to
// the same string as a request without it). Given a fixed session machine
// the rendering fully determines the compile input, so it can memoize the
// plan key.
func canonicalRequest(req Request) string {
	var b strings.Builder
	frame := func(fields ...string) {
		for _, f := range fields {
			fmt.Fprintf(&b, "%d\x00%s", len(f), f)
		}
	}
	frame(req.Stmt)
	shapeNames := make([]string, 0, len(req.Shapes))
	for k := range req.Shapes {
		shapeNames = append(shapeNames, k)
	}
	sort.Strings(shapeNames)
	for _, name := range shapeNames {
		frame("s", name, fmt.Sprint(req.Shapes[name]))
	}
	formatNames := make([]string, 0, len(req.Formats))
	for k := range req.Formats {
		formatNames = append(formatNames, k)
	}
	sort.Strings(formatNames)
	for _, name := range formatNames {
		frame("f", name, req.Formats[name])
	}
	frame(req.Schedule)
	return b.String()
}

// Compile compiles a request through the plan cache without executing it. A
// request seen before resolves through a memo: the plan is returned without
// re-parsing the statement or replaying the schedule.
func (s *Session) Compile(req Request) (*Program, error) {
	ck := canonicalRequest(req)
	s.mu.Lock()
	key, memoized := s.reqMemo[ck]
	s.mu.Unlock()
	if memoized {
		if p := s.peek(key); p != nil {
			return &Program{P: p}, nil
		}
	}
	c, err := s.buildComputation(req)
	if err != nil {
		return nil, err
	}
	prog, planKey, err := c.compile()
	if err != nil {
		return nil, err
	}
	if planKey != "" && s.capacity > 0 {
		s.mu.Lock()
		if len(s.reqMemo) >= 4*s.capacity {
			s.reqMemo = map[string]string{} // crude bound; entries are cheap to rebuild
		}
		s.reqMemo[ck] = planKey
		s.mu.Unlock()
	}
	return prog, nil
}

// Execute is the single entry point a server or CLI needs: it compiles the
// request (hitting the plan cache when the same workload was compiled
// before) and simulates it under the session's cost model. Execution
// modifiers (tracing, synchronous mode, ...) apply to this call only.
func (s *Session) Execute(req Request, opts ...ExecOption) (*Result, error) {
	prog, err := s.Compile(req)
	if err != nil {
		return nil, err
	}
	return prog.Execute(s.params, opts...)
}

// Redistribute builds (through the plan cache) a program that moves tensor
// t into the dst format on the session's machine. See the package-level
// Redistribute for semantics.
func (s *Session) Redistribute(t *Tensor, dst Format) (*Program, *Tensor, error) {
	return redistribute(s, t, dst, s.machine)
}

// RedistributeCost simulates the layout change under the session's cost
// model and returns moved bytes and simulated seconds.
func (s *Session) RedistributeCost(t *Tensor, dst Format) (bytes int64, seconds float64, err error) {
	prog, _, err := s.Redistribute(t, dst)
	if err != nil {
		return 0, 0, err
	}
	res, err := prog.Simulate(s.params)
	if err != nil {
		return 0, 0, err
	}
	return res.IntraBytes + res.InterBytes, res.Time, nil
}

// cacheable reports whether the computation's plan may be cached and
// returns its canonical key. Computations with bound data are not cached:
// the plan would capture the data reference and Real execution mutates it.
func (c *Computation) cacheable() bool {
	for _, name := range c.Stmt.TensorNames() {
		if c.tensors[name].Data != nil {
			return false
		}
	}
	return true
}

// compileInput assembles the compiler input for this computation.
func (c *Computation) compileInput() core.Input {
	decls := map[string]*core.TensorDecl{}
	for _, name := range c.Stmt.TensorNames() {
		t := c.tensors[name]
		decls[name] = &core.TensorDecl{
			Name:      name,
			Shape:     t.Shape,
			Placement: t.Format.Placement,
			Data:      t.Data,
		}
	}
	return core.Input{
		Stmt:     c.Stmt,
		Machine:  c.Machine.M,
		Tensors:  decls,
		Schedule: c.sched,
	}
}

// Notation returns the concrete index notation of the scheduled statement
// (the loop structure the compiler lowers, §5.1).
func (c *Computation) Notation() string { return cin.Build(c.sched).String() }

// ScheduleText returns the schedule in its serializable command form, e.g.
// "divide(i,io,ii,4) reorder(io,jo,ii,ji) distribute(io,jo)".
func (c *Computation) ScheduleText() string { return c.sched.String() }

// ApplySchedule parses scheduling-command text and applies it to the
// computation's schedule, after any commands already applied.
func (c *Computation) ApplySchedule(src string) error {
	cs, err := schedule.Parse(src)
	if err != nil {
		return err
	}
	return c.sched.Apply(cs).Err()
}
