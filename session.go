package distal

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"distal/internal/cin"
	"distal/internal/core"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/obs"
	"distal/internal/schedule"
)

// Session is the long-lived entry point of the compile/execute API: it owns
// a target machine, default simulation parameters, and an LRU cache of
// compiled plans. A service compiles a workload once and executes it many
// times; repeated Compile of the same (statement, shapes, formats,
// schedule) returns the cached plan, concurrent identical Compile calls
// share one compilation (singleflight), and a cached Plan is safe for
// concurrent Simulate and Bind.Run calls.
//
// Plans never hold data: a plan describes a task graph, not the values
// flowing through it. Real-mode execution binds data per call through
// Plan.Bind, so cached plans serve simulation and real execution alike.
type Session struct {
	machine *Machine
	params  Params

	mu       sync.Mutex
	capacity int
	lru      *list.List // of *planEntry, front = most recent
	plans    map[string]*list.Element
	hits     int64
	misses   int64

	// Request memo: canonical request rendering -> plan key, an LRU bounded
	// at memoCapacity whose entries also die with the plan they point at
	// (plan-cache eviction removes them via byPlan). A memo hit skips
	// statement parsing, tensor construction, and schedule replay entirely.
	memoCapacity int
	memoLRU      *list.List // of *memoEntry, front = most recent
	memo         map[string]*list.Element
	byPlan       map[string][]string // plan key -> canonical requests memoized to it

	// flights collapses concurrent identical compiles: the first caller of
	// a canonical request compiles, later callers arriving before it
	// finishes wait and share the result (exactly one cache miss).
	flights map[string]*flight
}

type planEntry struct {
	key  string
	data *planData
}

type memoEntry struct {
	ck      string
	planKey string
}

type flight struct {
	done chan struct{}
	key  string
	data *planData
	err  error
}

// DefaultPlanCacheSize is the plan-cache capacity of new sessions.
const DefaultPlanCacheSize = 128

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithParams sets the session's default cost model (used by Execute and as
// the default for Plan.Simulate through this session). The zero default is
// LassenCPU.
func WithParams(p Params) SessionOption {
	return func(s *Session) { s.params = p }
}

// WithPlanCacheSize sets the plan cache capacity; 0 disables caching (and
// the request memo with it).
func WithPlanCacheSize(n int) SessionOption {
	return func(s *Session) { s.capacity = n; s.memoCapacity = 4 * n }
}

// NewSession creates a session over the machine.
func NewSession(m *Machine, opts ...SessionOption) *Session {
	s := &Session{
		machine:      m,
		params:       LassenCPU(),
		capacity:     DefaultPlanCacheSize,
		memoCapacity: 4 * DefaultPlanCacheSize,
		lru:          list.New(),
		plans:        map[string]*list.Element{},
		memoLRU:      list.New(),
		memo:         map[string]*list.Element{},
		byPlan:       map[string][]string{},
		flights:      map[string]*flight{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Machine returns the session's target machine.
func (s *Session) Machine() *Machine { return s.machine }

// Params returns the session's default cost model.
func (s *Session) Params() Params { return s.params }

// CacheStats summarizes plan-cache effectiveness.
type CacheStats struct {
	// Hits counts Compile calls served without running the compiler (plan
	// cache, request memo, or a shared in-flight compile).
	Hits int64
	// Misses counts Compile calls that ran the compiler.
	Misses int64
	// Entries is the number of cached plans.
	Entries int
	// MemoEntries is the number of canonical requests memoized to plan keys.
	MemoEntries int
}

// CacheStats returns a snapshot of the plan cache counters.
func (s *Session) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{Hits: s.hits, Misses: s.misses, Entries: s.lru.Len(), MemoEntries: s.memoLRU.Len()}
}

// lookup returns the cached plan for key, promoting it to most recent. A
// miss is counted (the caller is about to compile).
func (s *Session) lookup(key string) *planData {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return nil
	}
	el, ok := s.plans[key]
	if !ok {
		s.misses++
		return nil
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*planEntry).data
}

// store inserts a plan, evicting the least recently used beyond capacity.
// Memo entries pointing at an evicted plan are dropped with it: the memo is
// a view over the plan cache, never a second cache.
func (s *Session) store(key string, data *planData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.plans[key]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*planEntry).data = data
		return
	}
	s.plans[key] = s.lru.PushFront(&planEntry{key: key, data: data})
	for s.lru.Len() > s.capacity {
		last := s.lru.Back()
		s.lru.Remove(last)
		evicted := last.Value.(*planEntry).key
		delete(s.plans, evicted)
		for _, ck := range s.byPlan[evicted] {
			if mel, ok := s.memo[ck]; ok {
				s.memoLRU.Remove(mel)
				delete(s.memo, ck)
			}
		}
		delete(s.byPlan, evicted)
	}
}

// memoize records ck -> planKey under the memo's own LRU bound. Caller must
// not hold s.mu.
func (s *Session) memoize(ck, planKey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 || s.memoCapacity <= 0 {
		return
	}
	if el, ok := s.memo[ck]; ok {
		el.Value.(*memoEntry).planKey = planKey
		s.memoLRU.MoveToFront(el)
		return
	}
	s.memo[ck] = s.memoLRU.PushFront(&memoEntry{ck: ck, planKey: planKey})
	s.byPlan[planKey] = append(s.byPlan[planKey], ck)
	for s.memoLRU.Len() > s.memoCapacity {
		last := s.memoLRU.Back()
		s.memoLRU.Remove(last)
		me := last.Value.(*memoEntry)
		delete(s.memo, me.ck)
		if cks := s.byPlan[me.planKey]; len(cks) > 0 {
			for i, ck2 := range cks {
				if ck2 == me.ck {
					s.byPlan[me.planKey] = append(cks[:i], cks[i+1:]...)
					break
				}
			}
			if len(s.byPlan[me.planKey]) == 0 {
				delete(s.byPlan, me.planKey)
			}
		}
	}
}

// memoLookup resolves a canonical request through the memo and the plan
// cache in one critical section; it returns the plan data and key on a hit
// (counting a hit) and nil on any miss (counting nothing — the compile path
// counts the miss exactly once).
func (s *Session) memoLookup(ck string) (*planData, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.memo[ck]
	if !ok {
		return nil, ""
	}
	me := el.Value.(*memoEntry)
	pe, ok := s.plans[me.planKey]
	if !ok {
		// The plan was evicted out from under the memo entry (possible only
		// via a concurrent eviction racing this lookup): drop the entry.
		s.memoLRU.Remove(el)
		delete(s.memo, ck)
		return nil, ""
	}
	s.hits++
	s.lru.MoveToFront(pe)
	s.memoLRU.MoveToFront(el)
	return pe.Value.(*planEntry).data, me.planKey
}

// Define parses the statement and binds the named tensors against the
// session's machine; the resulting computation compiles through the
// session's plan cache.
func (s *Session) Define(expr string, tensors ...*Tensor) (*Computation, error) {
	c, err := Define(expr, s.machine, tensors...)
	if err != nil {
		return nil, err
	}
	c.sess = s
	return c, nil
}

// MustDefine is Define but panics on error.
func (s *Session) MustDefine(expr string, tensors ...*Tensor) *Computation {
	c, err := s.Define(expr, tensors...)
	if err != nil {
		panic(err)
	}
	return c
}

// Request is one compile job in pure data form — everything a server, CLI,
// or stored workload needs to name a computation: the statement, tensor
// shapes, tensor formats as distribution notation text, and the schedule as
// scheduling-command text. Requests are data-free; bind real data to the
// compiled plan through Plan.Bind.
type Request struct {
	// Stmt is the tensor index notation statement,
	// e.g. "A(i,j) = B(i,k) * C(k,j)".
	Stmt string
	// Shapes gives every tensor's dimensions by name.
	Shapes map[string][]int
	// Formats gives tensor distribution notation per tensor,
	// e.g. "xy->xy"; tensors without an entry default to the canonical
	// tiling of their rank.
	Formats map[string]string
	// Schedule is scheduling-command text,
	// e.g. "divide(i,io,ii,4) reorder(io,ii,j,k) distribute(io) communicate(io,A,B)".
	// Empty means AutoSchedule.
	Schedule string
	// Stmts is the multi-statement form of a request: a list of statements
	// whose left-hand sides name intermediates later statements consume,
	// each with its own format annotations and schedule. Shapes then
	// declares the leaf inputs only (intermediate shapes are inferred from
	// their producers), and Stmt/Formats/Schedule must be empty. Requests
	// with Stmts compile through Session.CompileProgram into a ProgramPlan;
	// Compile rejects them.
	Stmts []Statement
}

// Statement is one statement of a multi-statement Request. Formats may only
// name tensors of this statement; tensors without an entry default to the
// canonical tiling of their rank. An empty Schedule auto-schedules the
// stage.
type Statement struct {
	// Stmt is the tensor index notation statement,
	// e.g. "D(i,j) = A(i,k) * B(k,j)".
	Stmt string
	// Formats gives tensor distribution notation per tensor of this
	// statement, e.g. "xy->xy".
	Formats map[string]string
	// Schedule is scheduling-command text for this statement.
	Schedule string
}

// buildComputation turns a request into a schedulable computation,
// classifying failures: request validation and statement/format parsing are
// KindParse, schedule parsing/application is KindSchedule.
func (s *Session) buildComputation(req Request) (*Computation, error) {
	c, err := s.buildUnscheduled(req)
	if err != nil {
		return nil, err
	}
	if req.Schedule == "" {
		if err := c.AutoSchedule(); err != nil {
			return nil, wrapErr(KindSchedule, "compile", err)
		}
	} else if err := c.ApplySchedule(req.Schedule); err != nil {
		return nil, wrapErr(KindSchedule, "compile", err)
	}
	return c, nil
}

// buildUnscheduled is buildComputation without the schedule: it validates
// the request and binds tensors, leaving the computation unscheduled (the
// tuner derives candidate schedules itself).
func (s *Session) buildUnscheduled(req Request) (*Computation, error) {
	stmt, err := ir.Parse(req.Stmt)
	if err != nil {
		return nil, wrapErr(KindParse, "compile", err)
	}
	// Reject keys that name no tensor of the statement: in a pure-data wire
	// format a typo'd name would otherwise silently fall back to defaults.
	named := map[string]bool{}
	for _, name := range stmt.TensorNames() {
		named[name] = true
	}
	for key := range req.Shapes {
		if !named[key] {
			return nil, wrapErr(KindParse, "compile", fmt.Errorf("request Shapes names %s, which is not a tensor of %q", key, req.Stmt))
		}
	}
	for key := range req.Formats {
		if !named[key] {
			return nil, wrapErr(KindParse, "compile", fmt.Errorf("request Formats names %s, which is not a tensor of %q", key, req.Stmt))
		}
	}
	var tensors []*Tensor
	for _, name := range stmt.TensorNames() {
		shape, ok := req.Shapes[name]
		if !ok {
			return nil, wrapErr(KindParse, "compile", fmt.Errorf("request has no shape for tensor %s", name))
		}
		var f Format
		if src, ok := req.Formats[name]; ok {
			f, err = ParseFormat(src)
			if err != nil {
				return nil, wrapErr(KindParse, "compile", fmt.Errorf("tensor %s: %w", name, err))
			}
		} else {
			if len(shape) > 6 {
				return nil, wrapErr(KindParse, "compile", fmt.Errorf("tensor %s has rank %d; the default tiling supports ranks up to 6 (give a Formats entry)", name, len(shape)))
			}
			f = Tiled(len(shape))
		}
		tensors = append(tensors, NewTensor(name, f, shape...))
	}
	c, err := s.Define(req.Stmt, tensors...)
	if err != nil {
		return nil, wrapErr(KindParse, "compile", err)
	}
	return c, nil
}

// canonicalRequest renders a request deterministically and injectively:
// every field is length-framed, so no request can embed another's frame
// boundaries inside a field value and collide (maps are rendered sorted and
// in full — an entry buildComputation would reject must not canonicalize to
// the same string as a request without it). Given a fixed session machine
// the rendering fully determines the compile input, so it keys both the
// request memo and the singleflight table.
func canonicalRequest(req Request) string {
	var b strings.Builder
	frame := func(fields ...string) {
		for _, f := range fields {
			fmt.Fprintf(&b, "%d\x00%s", len(f), f)
		}
	}
	frame(req.Stmt)
	shapeNames := make([]string, 0, len(req.Shapes))
	for k := range req.Shapes {
		shapeNames = append(shapeNames, k)
	}
	sort.Strings(shapeNames)
	for _, name := range shapeNames {
		frame("s", name, fmt.Sprint(req.Shapes[name]))
	}
	formatNames := make([]string, 0, len(req.Formats))
	for k := range req.Formats {
		formatNames = append(formatNames, k)
	}
	sort.Strings(formatNames)
	for _, name := range formatNames {
		frame("f", name, req.Formats[name])
	}
	frame(req.Schedule)
	return b.String()
}

// Compile compiles a request into an immutable Plan through the plan cache.
//
// A request seen before resolves through the request memo without
// re-parsing the statement or replaying the schedule; concurrent identical
// requests compile once and share the result (singleflight). Cancellation
// of ctx aborts the compile at the materializer's next checkpoint and
// returns an error of KindCanceled; waiters whose own context is alive when
// the compiling leader is canceled retry instead of inheriting the
// leader's cancellation.
func (s *Session) Compile(ctx context.Context, req Request) (*Plan, error) {
	ctx, sp := obs.Start(ctx, "compile")
	defer sp.End()
	plan, err := s.compileFlight(ctx, sp, req)
	if plan != nil {
		sp.SetAttr("plan_key", plan.key)
		if plan.stats.Cached {
			sp.SetAttr("cache", "hit")
		} else {
			sp.SetAttr("cache", "miss")
		}
	}
	return plan, err
}

// compileFlight is Compile's body: memo lookup, then the singleflight table,
// then leading a compile of our own.
func (s *Session) compileFlight(ctx context.Context, sp *obs.Span, req Request) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "compile", err)
	}
	if len(req.Stmts) > 0 {
		return nil, wrapErr(KindParse, "compile",
			fmt.Errorf("request carries %d statements; multi-statement programs compile through Session.CompileProgram", len(req.Stmts)))
	}
	ck := canonicalRequest(req)
	for {
		if pd, key := s.memoLookup(ck); pd != nil {
			sp.SetAttr("source", "memo")
			return &Plan{sess: s, key: key, data: pd, stats: cachedStats(pd, false)}, nil
		}
		s.mu.Lock()
		if fl, ok := s.flights[ck]; ok {
			s.mu.Unlock()
			wait := sp.StartChild("singleflight-wait")
			select {
			case <-ctx.Done():
				wait.End()
				return nil, wrapErr(KindCanceled, "compile", ctx.Err())
			case <-fl.done:
			}
			wait.End()
			if fl.err != nil {
				if KindOf(fl.err) == KindCanceled && ctx.Err() == nil {
					continue // the leader was canceled, not us: retry
				}
				return nil, fl.err
			}
			s.mu.Lock()
			s.hits++ // served by the shared flight: no compile ran for us
			s.mu.Unlock()
			sp.SetAttr("source", "flight")
			return &Plan{sess: s, key: fl.key, data: fl.data, stats: cachedStats(fl.data, true)}, nil
		}
		fl := &flight{done: make(chan struct{})}
		s.flights[ck] = fl
		s.mu.Unlock()

		sp.SetAttr("flight", "lead")
		return s.lead(ctx, ck, req, fl)
	}
}

// lead runs the compile as a flight's leader, guaranteeing — even on a
// compiler panic — that the flight is removed and its done channel closed,
// so waiters can never block on a dead flight.
func (s *Session) lead(ctx context.Context, ck string, req Request, fl *flight) (plan *Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			fl.err = fmt.Errorf("distal: compile panicked: %v", r)
			plan, err = nil, fl.err
		}
		s.mu.Lock()
		delete(s.flights, ck)
		s.mu.Unlock()
		close(fl.done)
	}()
	plan, err = s.compileRequest(ctx, ck, req)
	if plan != nil {
		fl.key, fl.data = plan.key, plan.data
	}
	fl.err = err
	return plan, err
}

func cachedStats(pd *planData, shared bool) CompileStats {
	return CompileStats{Cached: true, Shared: shared, Launches: pd.launches, Points: pd.points}
}

// compileRequest is the slow path of Compile: build the computation, check
// the plan cache under the content key, and run the compiler on a miss.
func (s *Session) compileRequest(ctx context.Context, ck string, req Request) (*Plan, error) {
	c, err := s.buildComputation(req)
	if err != nil {
		return nil, err
	}
	in := c.compileInput()
	key := core.PlanKey(in)
	if pd := s.lookup(key); pd != nil {
		// Same program under a different request rendering (e.g. explicit
		// vs. defaulted formats): memoize this rendering too.
		s.memoize(ck, key)
		return &Plan{sess: s, key: key, data: pd, stats: cachedStats(pd, false)}, nil
	}
	start := time.Now()
	_, run := obs.Start(ctx, "compiler-run")
	prog, err := core.CompileContext(ctx, in)
	run.End()
	if err != nil {
		return nil, wrapErr(KindCompile, "compile", err)
	}
	pd := c.newPlanData(prog)
	s.store(key, pd)
	s.memoize(ck, key)
	stats := CompileStats{CompileTime: time.Since(start), Launches: pd.launches, Points: pd.points}
	return &Plan{sess: s, key: key, data: pd, stats: stats}, nil
}

// flightCompile resolves a plan key through the plan cache and the
// session's singleflight table: concurrent identical compiles run compileFn
// once and share the result. It is the fluent counterpart of Compile's
// flight handling — fluent computations have no canonical request text, so
// their flights key on the plan key in a namespace of its own ("plan\x00"
// prefix; canonical requests are length-framed and never start with that
// byte sequence's shape, so the two key spaces cannot collide).
func (s *Session) flightCompile(key string, compileFn func() (*planData, error)) (*planData, error) {
	fk := "plan\x00" + key
	s.mu.Lock()
	if s.capacity > 0 {
		if el, ok := s.plans[key]; ok {
			s.hits++
			s.lru.MoveToFront(el)
			pd := el.Value.(*planEntry).data
			s.mu.Unlock()
			return pd, nil
		}
	}
	if fl, ok := s.flights[fk]; ok {
		s.mu.Unlock()
		<-fl.done
		// Unlike Compile's waiters, there is no retry here: fluent compiles
		// carry no context, so a leader's failure is a plain compile error
		// every waiter shares.
		if fl.err != nil {
			return nil, fl.err
		}
		s.mu.Lock()
		s.hits++ // served by the shared flight: no compile ran for us
		s.mu.Unlock()
		return fl.data, nil
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[fk] = fl
	s.mu.Unlock()
	return s.leadFlight(key, fk, fl, compileFn)
}

// leadFlight runs compileFn as a flight's leader with the same panic-safety
// guarantee as lead: the flight is always removed and its done channel
// closed, so waiters can never block on a dead flight.
func (s *Session) leadFlight(key, fk string, fl *flight, compileFn func() (*planData, error)) (pd *planData, err error) {
	defer func() {
		if r := recover(); r != nil {
			fl.err = fmt.Errorf("distal: compile panicked: %v", r)
			pd, err = nil, fl.err
		}
		s.mu.Lock()
		delete(s.flights, fk)
		s.mu.Unlock()
		close(fl.done)
	}()
	if pd := s.lookup(key); pd != nil { // counts this caller's hit or miss
		fl.key, fl.data = key, pd
		return pd, nil
	}
	pd, err = compileFn()
	if err != nil {
		fl.err = err
		return nil, err
	}
	s.store(key, pd)
	fl.key, fl.data = key, pd
	return pd, nil
}

// Execute is the one-call convenience a CLI needs: Compile followed by
// Simulate under a background context. Services should prefer Compile and
// Plan.Simulate with a real context.
func (s *Session) Execute(req Request, opts ...ExecOption) (*Result, error) {
	return s.ExecuteContext(context.Background(), req, opts...)
}

// ExecuteContext compiles the request (hitting the plan cache when the same
// workload was compiled before) and simulates it under the session's cost
// model, honoring ctx through both phases. Execution modifiers (tracing,
// synchronous mode, ...) apply to this call only.
func (s *Session) ExecuteContext(ctx context.Context, req Request, opts ...ExecOption) (*Result, error) {
	plan, err := s.Compile(ctx, req)
	if err != nil {
		return nil, err
	}
	return plan.Simulate(ctx, opts...)
}

// Redistribute builds (through the plan cache) a program that moves tensor
// t into the dst format on the session's machine. See the package-level
// Redistribute for semantics.
func (s *Session) Redistribute(t *Tensor, dst Format) (*Program, *Tensor, error) {
	return redistribute(s, t, dst, s.machine)
}

// RedistributeCost simulates the layout change under the session's cost
// model and returns moved bytes and simulated seconds.
func (s *Session) RedistributeCost(t *Tensor, dst Format) (bytes int64, seconds float64, err error) {
	prog, _, err := s.Redistribute(t, dst)
	if err != nil {
		return 0, 0, err
	}
	res, err := prog.Simulate(s.params)
	if err != nil {
		return 0, 0, err
	}
	return res.IntraBytes + res.InterBytes, res.Time, nil
}

// cacheable reports whether the computation's plan may be cached.
// Computations with data bound at Define time are not: their regions
// capture the data reference at compile, so a shared plan would alias it.
// (Request-compiled plans are always data-free; they run on real data via
// Plan.Bind, which binds per execution instead.)
func (c *Computation) cacheable() bool {
	for _, name := range c.Stmt.TensorNames() {
		if c.tensors[name].Data != nil {
			return false
		}
	}
	return true
}

// compileInput assembles the compiler input for this computation.
func (c *Computation) compileInput() core.Input {
	decls := map[string]*core.TensorDecl{}
	for _, name := range c.Stmt.TensorNames() {
		t := c.tensors[name]
		decls[name] = &core.TensorDecl{
			Name:      name,
			Shape:     t.Shape,
			Placement: t.Format.Placement,
			Data:      t.Data,
		}
	}
	return core.Input{
		Stmt:     c.Stmt,
		Machine:  c.Machine.M,
		Tensors:  decls,
		Schedule: c.sched,
	}
}

// newPlanData wraps a freshly compiled program with this computation's
// descriptive metadata for caching.
func (c *Computation) newPlanData(prog *legion.Program) *planData {
	return newPlanData(prog, c.sched.String(), cin.Build(c.sched).String(), c.Stmt.LHS.Tensor, c.Stmt.TensorNames())
}

// Notation returns the concrete index notation of the scheduled statement
// (the loop structure the compiler lowers, §5.1).
func (c *Computation) Notation() string { return cin.Build(c.sched).String() }

// ScheduleText returns the schedule in its serializable command form, e.g.
// "divide(i,io,ii,4) reorder(io,jo,ii,ji) distribute(io,jo)".
func (c *Computation) ScheduleText() string { return c.sched.String() }

// ApplySchedule parses scheduling-command text and applies it to the
// computation's schedule, after any commands already applied.
func (c *Computation) ApplySchedule(src string) error {
	cs, err := schedule.Parse(src)
	if err != nil {
		return err
	}
	return c.sched.Apply(cs).Err()
}
