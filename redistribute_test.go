package distal

import "testing"

func TestRedistributeRowsToTiles(t *testing.T) {
	const n = 16
	m := NewMachine(CPU, 2, 2)
	src := NewTensor("T", MustFormat("xy->x*"), n, n).FillRandom(9)
	prog, dst, err := Redistribute(src, Tiled(2), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Data.EqualWithin(src.Data, 0) {
		t.Fatal("redistributed data differs from source")
	}
	if res.Copies == 0 {
		t.Fatal("row->tile layout change must move data")
	}
}

func TestRedistributeIdentityLayoutIsCheap(t *testing.T) {
	// Moving between identical layouts should move (almost) nothing
	// compared to a genuine layout change.
	const n = 512
	m := NewMachine(CPU, 4)
	rows := MustFormat("xy->x")
	src := NewTensor("T", rows, n, n)
	same, _, err := RedistributeCost(src, rows, m, LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	cols, _, err := RedistributeCost(src, MustFormat("xy->y"), m, LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	if same >= cols {
		t.Fatalf("same-layout move (%d B) should be cheaper than transpose-like change (%d B)", same, cols)
	}
	if same != 0 {
		t.Fatalf("identical layouts should move 0 bytes, moved %d", same)
	}
}

func TestRedistributeToReplicated(t *testing.T) {
	const n = 8
	m := NewMachine(CPU, 2, 2)
	src := NewTensor("T", MustFormat("xy->xy"), n, n).FillRandom(4)
	prog, dst, err := Redistribute(src, MustFormat("xy->x*"), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(LassenCPU()); err != nil {
		t.Fatal(err)
	}
	if !dst.Data.EqualWithin(src.Data, 0) {
		t.Fatal("replicated redistribution corrupted data")
	}
}

func TestRedistribute3Tensor(t *testing.T) {
	m := NewMachine(CPU, 4)
	src := NewTensor("T", MustFormat("xyz->x"), 8, 6, 4).FillRandom(3)
	prog, dst, err := Redistribute(src, MustFormat("xyz->y"), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(LassenCPU()); err != nil {
		t.Fatal(err)
	}
	if !dst.Data.EqualWithin(src.Data, 0) {
		t.Fatal("3-tensor redistribution corrupted data")
	}
}

func TestRedistributeErrors(t *testing.T) {
	m := NewMachine(CPU, 2)

	t.Run("rank 0", func(t *testing.T) {
		bad := NewTensor("T", MustFormat("x->x"))
		if _, _, err := Redistribute(bad, MustFormat("x->x"), m); err == nil {
			t.Fatal("rank-0 tensor should be rejected")
		}
	})

	t.Run("rank above 6", func(t *testing.T) {
		bad := NewTensor("T", MustFormat("x->x"), 2, 2, 2, 2, 2, 2, 2)
		if _, _, err := Redistribute(bad, MustFormat("x->x"), m); err == nil {
			t.Fatal("rank-7 tensor should be rejected")
		}
	})

	t.Run("unparseable destination format", func(t *testing.T) {
		if _, err := ParseFormat("xy->>x"); err == nil {
			t.Fatal("ParseFormat should reject xy->>x")
		}
		dst, err := ParseFormat("xy->>x")
		if err == nil {
			t.Fatal("expected parse error")
		}
		// The zero Format a failed parse leaves behind must be rejected by
		// Redistribute rather than compiled as an implicit layout.
		src := NewTensor("T", MustFormat("xy->x"), 8, 8)
		if _, _, err := Redistribute(src, dst, m); err == nil {
			t.Fatal("empty destination format should be rejected")
		}
	})

	t.Run("destination format wrong rank for machine", func(t *testing.T) {
		// A 2-level placement on a flat 1-D machine fails compilation.
		src := NewTensor("T", MustFormat("xy->x"), 8, 8)
		if _, _, err := Redistribute(src, MustFormat("xy->xy"), m); err == nil {
			t.Fatal("placement rank exceeding the machine rank should be rejected")
		}
	})
}

func TestSessionRedistributeErrors(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2))
	bad := NewTensor("T", MustFormat("x->x"))
	if _, _, err := sess.Redistribute(bad, MustFormat("x->x")); err == nil {
		t.Fatal("rank-0 tensor should be rejected through the session path")
	}
	if _, _, err := sess.RedistributeCost(bad, MustFormat("x->x")); err == nil {
		t.Fatal("RedistributeCost should propagate the error")
	}
}
