// Command distal-tune searches the schedule space of one workload for the
// schedule with the lowest simulated makespan and prints the leaderboard.
// The winner is printed as schedule command text, ready to paste into a
// distal.Request, a distal-serve call, or the -sched flag of cmd/distal.
//
// Usage:
//
//	distal-tune -stmt "A(i,j) = B(i,k) * C(k,j)" -n 1024 -grid 4x4
//	distal-tune -stmt "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)" -grid 2x2x2 \
//	    -shapes "A=64x32,B=64x64x64,C=64x32,D=64x32" \
//	    -formats "A=ab->a00,B=abc->abc,C=ab->*a*,D=ab->**a"
//	distal-tune ... -budget 200 -beam 6 -seed 7     # bigger search
//	distal-tune ... -schedule "divide(...) ..."     # seed a hand schedule
//
// The AutoSchedule heuristic always competes, so the winner's makespan is
// never worse than the built-in baseline; the summary line reports the
// speedup over it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"distal"
	"distal/internal/ir"
)

func main() {
	stmt := flag.String("stmt", "", "tensor index notation statement, e.g. \"A(i,j) = B(i,k) * C(k,j)\"")
	shapes := flag.String("shapes", "", "per-tensor shapes, e.g. \"A=1024x1024,B=1024x1024,C=1024x1024\"")
	n := flag.Int("n", 0, "shorthand: every tensor dimension gets extent n (ignored when -shapes is set)")
	formats := flag.String("formats", "", "per-tensor distribution notation, e.g. \"A=xy->xy,B=xy->**\" (default: canonical tiling)")
	schedule := flag.String("schedule", "", "hand-written schedule entered as a seed candidate")
	grid := flag.String("grid", "4x4", "machine grid, e.g. 16, 4x4, 2x2x2")
	kind := flag.String("kind", "cpu", "processor kind: cpu or gpu")
	ppn := flag.Int("ppn", 0, "processors per node (0 = every processor on its own node)")
	budget := flag.Int("budget", 64, "max candidates evaluated")
	beam := flag.Int("beam", 4, "tilings refined with pipelines in the second stage")
	seed := flag.Int64("seed", 0, "sampling seed (fixed seed+budget => identical leaderboard)")
	workers := flag.Int("workers", 0, "concurrent evaluations (0 = min(GOMAXPROCS, 8); does not affect the result)")
	top := flag.Int("top", 10, "leaderboard length")
	timeout := flag.Duration("timeout", 2*time.Minute, "search deadline")
	jsonOut := flag.Bool("json", false, "print the result as JSON instead of a table")
	flag.Parse()

	if *stmt == "" {
		fmt.Fprintln(os.Stderr, "distal-tune: -stmt is required")
		flag.Usage()
		os.Exit(2)
	}
	req := distal.Request{Stmt: *stmt, Schedule: *schedule}
	var err error
	if req.Shapes, err = parseShapes(*stmt, *shapes, *n); err != nil {
		log.Fatalf("distal-tune: %v", err)
	}
	if req.Formats, err = parseFormats(*formats); err != nil {
		log.Fatalf("distal-tune: %v", err)
	}
	dims, err := parseGrid(*grid)
	if err != nil {
		log.Fatalf("distal-tune: %v", err)
	}
	pk, params := distal.CPU, distal.LassenCPU()
	if strings.EqualFold(*kind, "gpu") {
		pk, params = distal.GPU, distal.LassenGPU()
	} else if !strings.EqualFold(*kind, "cpu") {
		log.Fatalf("distal-tune: unknown -kind %q (cpu or gpu)", *kind)
	}
	m := distal.NewMachine(pk, dims...)
	if *ppn > 0 {
		m = m.WithProcsPerNode(*ppn)
	}
	sess := distal.NewSession(m, distal.WithParams(params))

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := sess.Tune(ctx, req, distal.TuneOptions{
		Budget: *budget, Beam: *beam, Seed: *seed, Workers: *workers, KeepTop: *top,
	})
	if err != nil {
		log.Fatalf("distal-tune: %v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult(res)); err != nil {
			log.Fatalf("distal-tune: %v", err)
		}
		return
	}
	fmt.Println(res.String())
	fmt.Println()
	fmt.Printf("%-4s %-12s %-10s %-8s %s\n", "#", "makespan", "GFLOP/s", "copies", "schedule")
	for i, c := range res.Leaderboard {
		state := ""
		if c.OOM {
			state = " OOM"
		}
		fmt.Printf("%-4d %-12s %-10.1f %-8d %s%s\n",
			i+1, fmt.Sprintf("%.6fs", c.MakespanSec), c.GFlops, c.Copies, c.Schedule, state)
	}
}

// tuneOutput is the -json schema, field-compatible with the /v1/tune wire
// format (see internal/serve), so scripts can consume either surface.
type tuneOutput struct {
	Winner      tuneEntry   `json:"winner"`
	Baseline    *tuneEntry  `json:"baseline,omitempty"`
	SpeedupX    float64     `json:"speedup_x,omitempty"`
	Leaderboard []tuneEntry `json:"leaderboard"`
	Generated   int         `json:"generated"`
	Illegal     int         `json:"illegal"`
	Deduped     int         `json:"deduped"`
	Evaluated   int         `json:"evaluated"`
	Failed      int         `json:"failed"`
	ElapsedMS   float64     `json:"elapsed_ms"`
}

type tuneEntry struct {
	Schedule     string  `json:"schedule"`
	MakespanSec  float64 `json:"makespan_sec"`
	GFlops       float64 `json:"gflops"`
	Copies       int64   `json:"copies"`
	IntraBytes   int64   `json:"intra_bytes"`
	InterBytes   int64   `json:"inter_bytes"`
	PeakMemBytes int64   `json:"peak_mem_bytes"`
	OOM          bool    `json:"oom,omitempty"`
	PlanKey      string  `json:"plan_key"`
}

func entry(c distal.TunedCandidate) tuneEntry {
	return tuneEntry{
		Schedule:     c.Schedule,
		MakespanSec:  c.MakespanSec,
		GFlops:       c.GFlops,
		Copies:       c.Copies,
		IntraBytes:   c.IntraBytes,
		InterBytes:   c.InterBytes,
		PeakMemBytes: c.PeakMemBytes,
		OOM:          c.OOM,
		PlanKey:      c.PlanKey,
	}
}

func jsonResult(res *distal.TuneResult) tuneOutput {
	out := tuneOutput{
		Winner:    entry(res.Winner),
		SpeedupX:  res.Speedup(),
		Generated: res.Generated,
		Illegal:   res.Illegal,
		Deduped:   res.Deduped,
		Evaluated: res.Evaluated,
		Failed:    res.Failed,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	if res.Baseline != nil {
		e := entry(*res.Baseline)
		out.Baseline = &e
	}
	for _, c := range res.Leaderboard {
		out.Leaderboard = append(out.Leaderboard, entry(c))
	}
	return out
}

// parseShapes parses "A=1024x1024,B=512x512" into the request shape map;
// when src is empty and n > 0, every tensor of the statement gets extent n
// in each of its dimensions.
func parseShapes(stmtSrc, src string, n int) (map[string][]int, error) {
	out := map[string][]int{}
	if src == "" {
		if n <= 0 {
			return nil, fmt.Errorf("give -shapes or -n")
		}
		stmt, err := ir.Parse(stmtSrc)
		if err != nil {
			return nil, err
		}
		byName := map[string]int{stmt.LHS.Tensor: len(stmt.LHS.Indices)}
		for _, a := range stmt.RHS.Accesses(nil) {
			byName[a.Tensor] = len(a.Indices)
		}
		for name, rank := range byName {
			shape := make([]int, rank)
			for d := range shape {
				shape[d] = n
			}
			out[name] = shape
		}
		return out, nil
	}
	for _, ent := range strings.Split(src, ",") {
		name, dims, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			return nil, fmt.Errorf("bad -shapes entry %q (want NAME=AxBxC)", ent)
		}
		var shape []int
		for _, d := range strings.Split(dims, "x") {
			v, err := strconv.Atoi(strings.TrimSpace(d))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad dimension %q in -shapes entry %q", d, ent)
			}
			shape = append(shape, v)
		}
		out[strings.TrimSpace(name)] = shape
	}
	return out, nil
}

// parseFormats parses "A=xy->xy,B=xy->**" into the request format map.
// Entries are comma-separated; distribution notation itself contains no
// commas.
func parseFormats(src string) (map[string]string, error) {
	if src == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, ent := range strings.Split(src, ",") {
		name, f, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			return nil, fmt.Errorf("bad -formats entry %q (want NAME=notation)", ent)
		}
		out[strings.TrimSpace(name)] = strings.TrimSpace(f)
	}
	return out, nil
}

func parseGrid(src string) ([]int, error) {
	var dims []int
	for _, part := range strings.Split(src, "x") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad grid %q (want e.g. 16, 4x4, 2x2x2)", src)
		}
		dims = append(dims, v)
	}
	return dims, nil
}
