// Command distal-run executes one workload on a running distal-serve over
// the binary wire protocol: it POSTs the data-free request plus the input
// tensors (from .dt files, or filled server-side) to /v1/run and streams the
// computed output tensor back.
//
// Usage:
//
//	distal-run -addr http://localhost:8080 \
//	    -stmt "A(i,j) = B(i,k) * C(k,j)" -n 1024 \
//	    -sched "divide(i,io,ii,4) ..." \
//	    -in B=rand:1 -in C=ones -out A.dt
//	distal-run ... -in B=b.dt -in C=c.dt        # ship local tensors
//	distal-run ... -verify                      # check numerics client-side
//
// Each -in names an input tensor and gives either a fill directive executed
// server-side (zero, ones, rand:<seed>) or a path to a .dt tensor file
// (written by -out, or internal/wire.WriteFile) streamed to the server.
// Unnamed inputs default to zero. With -verify, the client reconstructs the
// fills locally, evaluates the statement with the reference interpreter, and
// exits nonzero unless the streamed result matches.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"distal/internal/ir"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// inFlag collects repeated -in NAME=SOURCE arguments.
type inFlag []string

func (f *inFlag) String() string     { return strings.Join(*f, ",") }
func (f *inFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	addr := flag.String("addr", "http://localhost:8080", "distal-serve base URL")
	stmt := flag.String("stmt", "", "tensor index notation statement, e.g. \"A(i,j) = B(i,k) * C(k,j)\"")
	shapes := flag.String("shapes", "", "per-tensor shapes, e.g. \"A=1024x1024,B=1024x1024,C=1024x1024\"")
	n := flag.Int("n", 0, "shorthand: every tensor dimension gets extent n (ignored when -shapes is set)")
	formats := flag.String("formats", "", "per-tensor distribution notation, e.g. \"A=xy->xy,B=xy->**\" (default: canonical tiling)")
	sched := flag.String("sched", "", "schedule command text (default: the server's auto-schedule)")
	var ins inFlag
	flag.Var(&ins, "in", "input tensor NAME=SOURCE; SOURCE is zero, ones, rand:<seed>, or a .dt file (repeatable)")
	out := flag.String("out", "", "write the output tensor to this .dt file")
	timeout := flag.Duration("timeout", 2*time.Minute, "request deadline")
	verify := flag.Bool("verify", false, "re-evaluate locally with the reference interpreter and compare")
	flag.Parse()

	if *stmt == "" {
		fmt.Fprintln(os.Stderr, "distal-run: -stmt is required")
		flag.Usage()
		os.Exit(2)
	}
	req := wire.RunRequest{Stmt: *stmt, Schedule: *sched, Inputs: map[string]string{}}
	var err error
	if req.Shapes, err = parseShapes(*stmt, *shapes, *n); err != nil {
		log.Fatalf("distal-run: %v", err)
	}
	if req.Formats, err = parseFormats(*formats); err != nil {
		log.Fatalf("distal-run: %v", err)
	}

	// Sort each -in into a server-side fill or a local .dt file to stream.
	data := map[string]*tensor.Dense{}
	for _, ent := range ins {
		name, src, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			log.Fatalf("distal-run: bad -in %q (want NAME=SOURCE)", ent)
		}
		name, src = strings.TrimSpace(name), strings.TrimSpace(src)
		if src == wire.FillWire {
			log.Fatalf("distal-run: -in %s: %q is reserved; give a fill or a .dt path", name, src)
		}
		if wire.ValidFill(src) {
			req.Inputs[name] = src
			continue
		}
		t, err := wire.ReadFile(src, name)
		if err != nil {
			log.Fatalf("distal-run: -in %s: %v", name, err)
		}
		req.Inputs[name] = wire.FillWire
		data[name] = t
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client := &wire.Client{BaseURL: strings.TrimRight(*addr, "/")}
	result, stats, err := client.Run(ctx, req, data)
	if err != nil {
		log.Fatalf("distal-run: %v", err)
	}

	fmt.Printf("output=%s shape=%v sum=%.9g\n", stats.Output, result.Shape(), result.Sum())
	fmt.Printf("plan=%s cached=%t time=%.6fs gflops=%.1f copies=%d compile=%.1fms\n",
		stats.PlanKey, stats.Cached, stats.TimeS, stats.GFlops, stats.Copies, stats.CompileMS)

	if *out != "" {
		if err := wire.WriteFile(*out, result); err != nil {
			log.Fatalf("distal-run: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, wire.EncodedSize(result))
	}

	if *verify {
		if err := verifyResult(*stmt, req, data, result); err != nil {
			log.Fatalf("distal-run: verify: %v", err)
		}
		fmt.Println("verify=ok")
	}
}

// verifyResult reconstructs every input locally (streamed tensors are
// already in hand; fills are deterministic on both ends), evaluates the
// statement with the reference interpreter, and compares numerics.
func verifyResult(stmtSrc string, req wire.RunRequest, data map[string]*tensor.Dense, got *tensor.Dense) error {
	stmt, err := ir.Parse(stmtSrc)
	if err != nil {
		return err
	}
	inputs := map[string]*tensor.Dense{}
	for _, name := range stmt.TensorNames() {
		if name == stmt.LHS.Tensor {
			continue
		}
		if t, ok := data[name]; ok {
			inputs[name] = t
			continue
		}
		t := tensor.New(name, req.Shapes[name]...)
		if err := wire.ApplyFill(t, req.Inputs[name]); err != nil {
			return err
		}
		inputs[name] = t
	}
	want, err := ir.Evaluate(stmt, inputs)
	if err != nil {
		return err
	}
	if !got.EqualWithin(want, 1e-9) {
		return fmt.Errorf("streamed result disagrees with the reference interpreter: max |diff| = %g", got.MaxAbsDiff(want))
	}
	return nil
}
