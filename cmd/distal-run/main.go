// Command distal-run executes one workload on a running distal-serve over
// the binary wire protocol: it POSTs the data-free request plus the input
// tensors (from .dt files, or filled server-side) to /v1/run and streams the
// computed output tensor back.
//
// Usage:
//
//	distal-run -addr http://localhost:8080 \
//	    -stmt "A(i,j) = B(i,k) * C(k,j)" -n 1024 \
//	    -sched "divide(i,io,ii,4) ..." \
//	    -in B=rand:1 -in C=ones -out A.dt
//	distal-run ... -in B=b.dt -in C=c.dt        # ship local tensors
//	distal-run ... -verify                      # check numerics client-side
//	distal-run ... -batch 8 -in B=rand:1 ...    # 8 instances, one plan walk
//
// Each -in names an input tensor and gives either a fill directive executed
// server-side (zero, ones, rand:<seed>) or a path to a .dt tensor file
// (written by -out, or internal/wire.WriteFile) streamed to the server.
// Unnamed inputs default to zero. With -verify, the client reconstructs the
// fills locally, evaluates the statement with the reference interpreter, and
// exits nonzero unless the streamed result matches.
//
// -batch N executes N problem instances through the same cached plan in a
// single launch walk server-side. rand fills draw each instance from
// seed+instance; .dt file inputs ship the same tensor to every instance.
// -out writes the N output frames concatenated into one file, and -verify
// checks every instance against the reference interpreter.
//
// Repeating -stmt sends a multi-statement program executed server-side as
// one plan DAG, with the intermediates kept distributed between stages:
//
//	distal-run -stmt "D(i,j) = A(i,k) * B(k,j)" \
//	           -stmt "E(i,j) = D(i,k) * C(k,j)" -n 256 \
//	           -in A=a.dt -in B=rand:1 -in C=rand:2 -verify
//
// Each -sched/-formats flag applies to the -stmt at the same position (give
// none, or one per statement); -in and -shapes name leaf inputs only —
// intermediates are allocated server-side and never cross the wire. The
// response streams the last statement's output, and -verify evaluates the
// whole chain locally.
//
// -v prints the remaining Distal-* header metrics — bytes moved, peak
// memory, the request id — plus one row per execution stage on
// multi-statement runs. -trace-out FILE fetches the run's span tree from
// the server's GET /v1/trace/{id} and writes Chrome trace_event JSON
// (open in chrome://tracing or Perfetto).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"distal/internal/ir"
	"distal/internal/program"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// inFlag collects repeated -in NAME=SOURCE arguments.
type inFlag []string

func (f *inFlag) String() string     { return strings.Join(*f, ",") }
func (f *inFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	addr := flag.String("addr", "http://localhost:8080", "distal-serve base URL")
	var stmts inFlag
	flag.Var(&stmts, "stmt", "tensor index notation statement, e.g. \"A(i,j) = B(i,k) * C(k,j)\"; repeat to send a multi-statement program executed as one plan DAG")
	shapes := flag.String("shapes", "", "per-tensor shapes, e.g. \"A=1024x1024,B=1024x1024,C=1024x1024\" (multi-statement: leaf inputs only)")
	n := flag.Int("n", 0, "shorthand: every tensor dimension gets extent n (ignored when -shapes is set)")
	var formats inFlag
	flag.Var(&formats, "formats", "per-tensor distribution notation, e.g. \"A=xy->xy,B=xy->**\" (default: canonical tiling); repeatable, one per -stmt in order")
	var scheds inFlag
	flag.Var(&scheds, "sched", "schedule command text (default: the server's auto-schedule); repeatable, one per -stmt in order")
	var ins inFlag
	flag.Var(&ins, "in", "input tensor NAME=SOURCE; SOURCE is zero, ones, rand:<seed>, or a .dt file (repeatable)")
	out := flag.String("out", "", "write the output tensor to this .dt file")
	timeout := flag.Duration("timeout", 2*time.Minute, "request deadline")
	verify := flag.Bool("verify", false, "re-evaluate locally with the reference interpreter and compare")
	batch := flag.Int("batch", 0, "execute N problem instances through one cached plan in a single walk (0 = single-instance)")
	verbose := flag.Bool("v", false, "print the full Distal-* header metrics (bytes moved, peak memory, request id, per-stage rows)")
	traceOut := flag.String("trace-out", "", "fetch the run's span tree from GET /v1/trace/{id} and write the Chrome trace_event JSON to this file")
	flag.Parse()

	if len(stmts) == 0 {
		fmt.Fprintln(os.Stderr, "distal-run: -stmt is required")
		flag.Usage()
		os.Exit(2)
	}
	if len(scheds) != 0 && len(scheds) != len(stmts) {
		log.Fatalf("distal-run: %d -sched flags for %d statements (give none, or one per -stmt)", len(scheds), len(stmts))
	}
	if len(formats) != 0 && len(formats) != len(stmts) {
		log.Fatalf("distal-run: %d -formats flags for %d statements (give none, or one per -stmt)", len(formats), len(stmts))
	}
	req := wire.RunRequest{Inputs: map[string]string{}}
	var err error
	if req.Shapes, err = parseShapesMulti(stmts, *shapes, *n); err != nil {
		log.Fatalf("distal-run: %v", err)
	}
	if len(stmts) == 1 {
		req.Stmt = stmts[0]
		if len(scheds) == 1 {
			req.Schedule = scheds[0]
		}
		if len(formats) == 1 {
			if req.Formats, err = parseFormats(formats[0]); err != nil {
				log.Fatalf("distal-run: %v", err)
			}
		}
	} else {
		req.Stmts = make([]wire.StmtSpec, len(stmts))
		for i, s := range stmts {
			spec := wire.StmtSpec{Stmt: s}
			if len(scheds) == len(stmts) {
				spec.Schedule = scheds[i]
			}
			if len(formats) == len(stmts) {
				if spec.Formats, err = parseFormats(formats[i]); err != nil {
					log.Fatalf("distal-run: statement %d: %v", i, err)
				}
			}
			req.Stmts[i] = spec
		}
	}

	// Sort each -in into a server-side fill or a local .dt file to stream.
	data := map[string]*tensor.Dense{}
	for _, ent := range ins {
		name, src, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			log.Fatalf("distal-run: bad -in %q (want NAME=SOURCE)", ent)
		}
		name, src = strings.TrimSpace(name), strings.TrimSpace(src)
		if src == wire.FillWire {
			log.Fatalf("distal-run: -in %s: %q is reserved; give a fill or a .dt path", name, src)
		}
		if wire.ValidFill(src) {
			req.Inputs[name] = src
			continue
		}
		t, err := wire.ReadFile(src, name)
		if err != nil {
			log.Fatalf("distal-run: -in %s: %v", name, err)
		}
		req.Inputs[name] = wire.FillWire
		data[name] = t
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client := &wire.Client{BaseURL: strings.TrimRight(*addr, "/")}
	if *batch > 0 {
		runBatch(ctx, client, req, data, *batch, *out, *verify, *verbose, *traceOut)
		return
	}
	result, stats, err := client.Run(ctx, req, data)
	if err != nil {
		log.Fatalf("distal-run: %v", err)
	}

	fmt.Printf("output=%s shape=%v sum=%.9g\n", stats.Output, result.Shape(), result.Sum())
	fmt.Printf("plan=%s cached=%t time=%.6fs gflops=%.1f copies=%d compile=%.1fms\n",
		stats.PlanKey, stats.Cached, stats.TimeS, stats.GFlops, stats.Copies, stats.CompileMS)
	if *verbose {
		printVerbose(stats)
	}
	if *traceOut != "" {
		if err := fetchTrace(ctx, client, stats.RequestID, *traceOut); err != nil {
			log.Fatalf("distal-run: %v", err)
		}
	}

	if *out != "" {
		if err := wire.WriteFile(*out, result); err != nil {
			log.Fatalf("distal-run: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, wire.EncodedSize(result))
	}

	if *verify {
		if err := verifyResult(req, data, result); err != nil {
			log.Fatalf("distal-run: verify: %v", err)
		}
		fmt.Println("verify=ok")
	}
}

// runBatch executes -batch N: the same request over N problem instances in
// one server-side launch walk. File-sourced inputs ship the same tensor to
// every instance; rand fills diverge per instance (seed+i on both ends, so
// -verify can reconstruct each instance exactly). Exits nonzero when any
// instance fails or any verification disagrees.
func runBatch(ctx context.Context, client *wire.Client, req wire.RunRequest, data map[string]*tensor.Dense, n int, out string, verify, verbose bool, traceOut string) {
	req.Batch = &n
	var insts []map[string]*tensor.Dense
	if len(data) > 0 {
		insts = make([]map[string]*tensor.Dense, n)
		for i := range insts {
			insts[i] = data
		}
	}
	outcome, err := client.RunBatch(ctx, req, insts)
	if err != nil {
		log.Fatalf("distal-run: %v", err)
	}
	stats := outcome.Stats
	fmt.Printf("plan=%s cached=%t batch=%d time=%.6fs gflops=%.1f copies=%d compile=%.1fms\n",
		stats.PlanKey, stats.Cached, n, stats.TimeS, stats.GFlops, stats.Copies, stats.CompileMS)
	if verbose {
		printVerbose(&stats)
	}
	if traceOut != "" {
		if err := fetchTrace(ctx, client, stats.RequestID, traceOut); err != nil {
			log.Fatalf("distal-run: %v", err)
		}
	}
	failed := false
	for i := 0; i < n; i++ {
		if err := outcome.Errs[i]; err != nil {
			failed = true
			fmt.Printf("instance %d: error: %v\n", i, err)
			continue
		}
		t := outcome.Outputs[i]
		fmt.Printf("instance %d: output=%s shape=%v sum=%.9g\n", i, stats.Output, t.Shape(), t.Sum())
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatalf("distal-run: %v", err)
		}
		var size int64
		for _, t := range outcome.Outputs {
			if t == nil {
				continue
			}
			if err := wire.Encode(f, t); err != nil {
				f.Close()
				log.Fatalf("distal-run: %v", err)
			}
			size += wire.EncodedSize(t)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("distal-run: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes, surviving instances concatenated)\n", out, size)
	}

	if verify {
		for i := 0; i < n; i++ {
			if outcome.Outputs[i] == nil {
				continue
			}
			if err := verifyInstance(req, data, outcome.Outputs[i], i); err != nil {
				log.Fatalf("distal-run: verify instance %d: %v", i, err)
			}
		}
		fmt.Println("verify=ok")
	}
	if failed {
		os.Exit(1)
	}
}

// printVerbose prints the rest of the Distal-* header metrics: the data-
// movement and memory numbers, the request id (the key of the server's
// GET /v1/trace/{id} export), and — on multi-statement runs — one row per
// execution stage from the Distal-Stages header.
func printVerbose(stats *wire.RunStats) {
	fmt.Printf("request=%s intra_bytes=%d inter_bytes=%d peak_mem_bytes=%d\n",
		stats.RequestID, stats.IntraBytes, stats.InterBytes, stats.PeakMemBytes)
	for i, st := range stats.Stages {
		kind := "stage"
		if st.Repart {
			kind = "repart"
		}
		fmt.Printf("%s %d: output=%s plan=%s cached=%t launches=%d points=%d\n",
			kind, i, st.Output, st.PlanKey, st.Cached, st.Launches, st.Points)
	}
}

// fetchTrace downloads the run's span tree — the server keeps a bounded ring
// of recent traces keyed by request id — and writes the Chrome trace_event
// JSON to path (open it in chrome://tracing or Perfetto).
func fetchTrace(ctx context.Context, client *wire.Client, id, path string) error {
	if id == "" {
		return fmt.Errorf("-trace-out: the response carried no %s header (is the server older than the trace export?)", wire.HeaderRequestID)
	}
	url := client.BaseURL + "/v1/trace/" + id
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	hc := client.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("-trace-out: GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes of trace_event JSON)\n", path, n)
	return nil
}

// verifyResult reconstructs every input locally (streamed tensors are
// already in hand; fills are deterministic on both ends), evaluates the
// statement — or the whole multi-statement chain — with the reference
// interpreter, and compares numerics.
func verifyResult(req wire.RunRequest, data map[string]*tensor.Dense, got *tensor.Dense) error {
	return verifyInstance(req, data, got, 0)
}

// verifyInstance is verifyResult for instance inst of a batched run: fills
// reconstruct with the per-instance seed offset the server applied.
func verifyInstance(req wire.RunRequest, data map[string]*tensor.Dense, got *tensor.Dense, inst int) error {
	if len(req.Stmts) > 0 {
		return verifyChainInstance(req, data, got, inst)
	}
	stmt, err := ir.Parse(req.Stmt)
	if err != nil {
		return err
	}
	inputs := map[string]*tensor.Dense{}
	for _, name := range stmt.TensorNames() {
		if name == stmt.LHS.Tensor {
			continue
		}
		if t, ok := data[name]; ok {
			inputs[name] = t
			continue
		}
		t := tensor.New(name, req.Shapes[name]...)
		if err := wire.ApplyFillInstance(t, req.Inputs[name], inst); err != nil {
			return err
		}
		inputs[name] = t
	}
	want, err := ir.Evaluate(stmt, inputs)
	if err != nil {
		return err
	}
	if !got.EqualWithin(want, 1e-9) {
		return fmt.Errorf("streamed result disagrees with the reference interpreter: max |diff| = %g", got.MaxAbsDiff(want))
	}
	return nil
}

// verifyChainInstance evaluates the whole multi-statement chain with the
// sequential reference interpreter — leaf inputs from hand-held frames or
// reconstructed fills — and compares the last statement's output against the
// streamed result.
func verifyChainInstance(req wire.RunRequest, data map[string]*tensor.Dense, got *tensor.Dense, inst int) error {
	specs := make([]program.Statement, len(req.Stmts))
	for i, st := range req.Stmts {
		specs[i] = program.Statement{Stmt: st.Stmt, Formats: st.Formats, Schedule: st.Schedule}
	}
	p, err := program.Parse(specs, req.Shapes)
	if err != nil {
		return err
	}
	inputs := map[string]*tensor.Dense{}
	for _, name := range p.Inputs() {
		if t, ok := data[name]; ok {
			inputs[name] = t
			continue
		}
		t := tensor.New(name, req.Shapes[name]...)
		if err := wire.ApplyFillInstance(t, req.Inputs[name], inst); err != nil {
			return err
		}
		inputs[name] = t
	}
	outs, err := program.Evaluate(p, inputs)
	if err != nil {
		return err
	}
	want := outs[p.Output()]
	if !got.EqualWithin(want, 1e-9) {
		return fmt.Errorf("streamed result disagrees with the reference chain evaluation: max |diff| = %g", got.MaxAbsDiff(want))
	}
	return nil
}
