package main

import (
	"fmt"
	"strconv"
	"strings"

	"distal/internal/ir"
)

// parseShapesMulti parses "A=1024x1024,B=512x512" into the request shape
// map; when src is empty and n > 0, every shape-bearing tensor gets extent
// n in each of its dimensions (same contract as cmd/distal-tune). A single
// statement declares every tensor; a multi-statement program declares leaf
// inputs only — intermediates' shapes are inferred server-side from their
// producers.
func parseShapesMulti(stmts []string, src string, n int) (map[string][]int, error) {
	out := map[string][]int{}
	if src == "" {
		if n <= 0 {
			return nil, fmt.Errorf("give -shapes or -n")
		}
		assigned := map[string]bool{}
		byName := map[string]int{}
		for _, s := range stmts {
			stmt, err := ir.Parse(s)
			if err != nil {
				return nil, err
			}
			if len(stmts) == 1 {
				// Single statement: the output's shape is declared too.
				byName[stmt.LHS.Tensor] = len(stmt.LHS.Indices)
			} else {
				assigned[stmt.LHS.Tensor] = true
			}
			for _, a := range stmt.RHS.Accesses(nil) {
				byName[a.Tensor] = len(a.Indices)
			}
		}
		for name, rank := range byName {
			if assigned[name] {
				continue
			}
			shape := make([]int, rank)
			for d := range shape {
				shape[d] = n
			}
			out[name] = shape
		}
		return out, nil
	}
	for _, ent := range strings.Split(src, ",") {
		name, dims, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			return nil, fmt.Errorf("bad -shapes entry %q (want NAME=AxBxC)", ent)
		}
		var shape []int
		for _, d := range strings.Split(dims, "x") {
			v, err := strconv.Atoi(strings.TrimSpace(d))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad dimension %q in -shapes entry %q", d, ent)
			}
			shape = append(shape, v)
		}
		out[strings.TrimSpace(name)] = shape
	}
	return out, nil
}

// parseFormats parses "A=xy->xy,B=xy->**" into the request format map.
func parseFormats(src string) (map[string]string, error) {
	if src == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, ent := range strings.Split(src, ",") {
		name, f, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			return nil, fmt.Errorf("bad -formats entry %q (want NAME=notation)", ent)
		}
		out[strings.TrimSpace(name)] = strings.TrimSpace(f)
	}
	return out, nil
}
