// Command distal-serve exposes a DISTAL session as an HTTP/JSON service:
// compile-once execute-many over the plan cache, under real concurrency.
//
// Usage:
//
//	distal-serve -addr :8080 -grid 4x4              # 16 CPU sockets
//	distal-serve -grid 2x2x2 -kind gpu -ppn 4       # 8 GPUs, 4 per node
//	distal-serve -workers 8 -timeout 10s            # pool + default deadline
//
// Endpoints (see internal/serve):
//
//	POST /v1/execute  {"stmt": "A(i,j) = B(i,k) * C(k,j)", "shapes": {...},
//	                   "formats": {...}, "schedule": "..."}
//	POST /v1/batch    {"requests": [...]}
//	POST /v1/run      real execution: the request plus input tensors as
//	                  binary wire frames (or server-side fills); the output
//	                  tensor streams back (see internal/wire, cmd/distal-run)
//	GET  /v1/stats    cache and server counters
//	GET  /metrics     the same counters in Prometheus text format
//	GET  /v1/trace/{id}  one recent request's spans as Chrome trace_event JSON
//
// Request bodies are capped: -max-body for the JSON endpoints, -max-run-body
// for /v1/run (which carries tensor payloads), and -max-batch for the
// instance count a batched /v1/run may declare.
//
// Observability switches: -log-format json emits one JSON access-log line
// per request to stderr, -trace-ring sizes the GET /v1/trace/{id} ring, and
// -debug-addr serves net/http/pprof on a second, private listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"distal"
	"distal/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	grid := flag.String("grid", "4x4", "machine grid, e.g. 16, 4x4, 2x2x2")
	kind := flag.String("kind", "cpu", "processor kind: cpu or gpu")
	ppn := flag.Int("ppn", 0, "processors per node (0 = every processor on its own node)")
	gpuParams := flag.Bool("gpu-cost", false, "use the Lassen GPU cost model (default follows -kind)")
	workers := flag.Int("workers", 0, "max concurrent executions (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	cache := flag.Int("cache", distal.DefaultPlanCacheSize, "plan cache capacity (0 disables)")
	maxBody := flag.Int64("max-body", 4<<20, "largest accepted body on the JSON endpoints, in bytes")
	maxRunBody := flag.Int64("max-run-body", 256<<20, "largest accepted /v1/run body (JSON section plus tensor frames), in bytes")
	maxBatch := flag.Int("max-batch", 64, "largest accepted /v1/run batch instance count")
	logFormat := flag.String("log-format", "", "access log format: \"json\" emits one JSON line per request to stderr (default: no access log)")
	traceRing := flag.Int("trace-ring", 64, "recent request traces kept for GET /v1/trace/{id}")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this second listener, e.g. localhost:6060 (default: off)")
	flag.Parse()
	if *logFormat != "" && *logFormat != "json" {
		log.Fatalf("distal-serve: unknown -log-format %q (\"json\" or empty)", *logFormat)
	}

	dims, err := parseGrid(*grid)
	if err != nil {
		log.Fatalf("distal-serve: %v", err)
	}
	pk := distal.CPU
	if strings.EqualFold(*kind, "gpu") {
		pk = distal.GPU
	} else if !strings.EqualFold(*kind, "cpu") {
		log.Fatalf("distal-serve: unknown -kind %q (cpu or gpu)", *kind)
	}
	m := distal.NewMachine(pk, dims...)
	if *ppn > 0 {
		m = m.WithProcsPerNode(*ppn)
	}
	params := distal.LassenCPU()
	if pk == distal.GPU || *gpuParams {
		params = distal.LassenGPU()
	}
	sess := distal.NewSession(m, distal.WithParams(params), distal.WithPlanCacheSize(*cache))
	srv := serve.New(sess, serve.Config{
		Workers: *workers, Timeout: *timeout,
		MaxBody: *maxBody, MaxRunBody: *maxRunBody, MaxRunBatch: *maxBatch,
		TraceRing: *traceRing, LogJSON: *logFormat == "json",
	})

	if *debugAddr != "" {
		// The pprof handlers live on http.DefaultServeMux (registered by the
		// blank net/http/pprof import) and only ever bind when asked: keep
		// the profiling surface off the service port.
		go func() {
			log.Printf("distal-serve: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("distal-serve: debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("distal-serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("distal-serve: shutdown: %v", err)
		}
	}()
	log.Printf("distal-serve: %d processors (%s), %s on %s", m.Processors(), *grid, *kind, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("distal-serve: %v", err)
	}
	<-done
}

// parseGrid parses "4", "4x4", "2x2x2" into grid dimensions.
func parseGrid(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad grid %q: each dimension must be a positive integer", s)
		}
		dims = append(dims, n)
	}
	if len(dims) == 0 || len(dims) > 3 {
		return nil, fmt.Errorf("bad grid %q: 1 to 3 dimensions", s)
	}
	return dims, nil
}
