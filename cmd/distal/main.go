// Command distal compiles a distributed tensor algebra algorithm and shows
// what the compiler produces: the concrete index notation of the scheduled
// statement, the generated Legion program, and (optionally) a simulated
// execution on the Lassen cost model.
//
// Usage:
//
//	distal -alg summa -n 64 -procs 4            # print the generated program
//	distal -alg cannon -n 64 -procs 9 -trace    # show the copy trace
//	distal -alg johnson -n 4096 -procs 8 -sim   # simulate at size
//	distal -expr "A(i,j) = B(i,j,k) * c(k)" -sim # arbitrary expression, auto-scheduled
//	distal -expr "A(i,j) = B(i,k) * C(k,j)" \
//	    -sched "divide(i,io,ii,4) reorder(io,ii,j,k) distribute(io) communicate(io,A,B,C)" \
//	    -sim                                     # explicit schedule text
//
// The -expr path goes through the session API: statement, formats, and
// schedule are all text, the same data a distal.Request carries.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"distal"
	"distal/internal/algorithms"
	"distal/internal/cin"
	"distal/internal/codegen"
	"distal/internal/core"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/sim"
)

func main() {
	alg := flag.String("alg", "summa", "algorithm: cannon, pumma, summa, johnson, solomonik, cosma")
	expr := flag.String("expr", "", "arbitrary tensor index notation statement (overrides -alg), e.g. \"A(i,j) = B(i,j,k) * c(k)\"")
	chain := flag.String("chain", "", "semicolon-separated multi-statement program (overrides -alg/-expr), e.g. \"D(i,j)=A(i,k)*B(k,j); E(i,j)=D(i,k)*C(k,j)\"; compiled as one plan DAG, each stage auto-scheduled")
	sched := flag.String("sched", "", "schedule command text for -expr, e.g. \"divide(i,io,ii,4) reorder(io,ii,j,k) distribute(io)\"; empty auto-schedules")
	n := flag.Int("n", 64, "square matrix / tensor mode dimension")
	procs := flag.Int("procs", 4, "processor count")
	gpu := flag.Bool("gpu", false, "GPU machine (4 per node)")
	simulate := flag.Bool("sim", false, "simulate execution and print statistics")
	trace := flag.Bool("trace", false, "print the communication trace")
	maxPoints := flag.Int("points", 4, "task points to list per launch (0 = all)")
	flag.Parse()

	var err error
	if *chain != "" {
		if *sched != "" {
			err = fmt.Errorf("-sched does not apply to -chain (its stages auto-schedule; use the API or /v1/run for per-stage schedules)")
		} else {
			err = runChain(*chain, *n, *procs, *gpu, *simulate, *trace)
		}
	} else if *expr != "" {
		err = runExpr(*expr, *sched, *n, *procs, *gpu, *simulate, *trace, *maxPoints)
	} else if *sched != "" {
		err = fmt.Errorf("-sched only applies to -expr statements; the -alg schedules are built in")
	} else {
		err = runAlg(*alg, *n, *procs, *gpu, *simulate, *trace, *maxPoints)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "distal:", err)
		os.Exit(1)
	}
}

func newMachine(procs int, gpu bool) *distal.Machine {
	if gpu {
		return distal.NewMachine(distal.GPU, procs).WithProcsPerNode(4)
	}
	return distal.NewMachine(distal.CPU, procs)
}

func params(gpu bool) distal.Params {
	if gpu {
		return distal.LassenGPU()
	}
	return distal.LassenCPU()
}

// runExpr drives an arbitrary statement through the session API: every mode
// has extent n, tensors are partitioned over a 1-D machine by their first
// mode, and the schedule is the given command text (auto-scheduled when
// empty).
func runExpr(expr, schedText string, n, procs int, gpu, simulate, trace bool, maxPoints int) error {
	stmt, err := ir.Parse(expr)
	if err != nil {
		return err
	}
	if len(stmt.LHS.Indices) == 0 {
		return fmt.Errorf("scalar outputs are not supported by -expr; use the library API")
	}
	names := "xyzwuv"
	rankOf := map[string]int{}
	collect := func(a *ir.Access) {
		rankOf[a.Tensor] = len(a.Indices)
	}
	collect(stmt.LHS)
	for _, a := range stmt.RHS.Accesses(nil) {
		collect(a)
	}
	sess := distal.NewSession(newMachine(procs, gpu), distal.WithParams(params(gpu)))
	var tensors []*distal.Tensor
	for name, rank := range rankOf {
		if rank > len(names) {
			return fmt.Errorf("tensor %s has rank %d; -expr supports ranks up to %d", name, rank, len(names))
		}
		// A zero-index access is a scalar: a rank-1 tensor of extent 1.
		shape := []int{1}
		if rank > 0 {
			shape = make([]int, rank)
			for d := range shape {
				shape[d] = n
			}
		} else {
			rank = 1
		}
		// Partition the first mode across the 1-D machine; remaining modes
		// span fully.
		f, err := distal.ParseFormat(names[:rank] + "->" + names[:1])
		if err != nil {
			return err
		}
		tensors = append(tensors, distal.NewTensor(name, f, shape...))
	}
	comp, err := sess.Define(expr, tensors...)
	if err != nil {
		return err
	}
	if schedText == "" {
		err = comp.AutoSchedule()
	} else {
		err = comp.ApplySchedule(schedText)
	}
	if err != nil {
		return err
	}
	fmt.Println("=== schedule ===")
	fmt.Println(comp.ScheduleText())
	fmt.Println()
	fmt.Println("=== concrete index notation ===")
	fmt.Println(comp.Notation())
	fmt.Println()
	prog, err := comp.Compile()
	if err != nil {
		return err
	}
	return show(prog.P, gpu, simulate, trace, maxPoints)
}

// runChain compiles a semicolon-separated statement list into a plan DAG:
// leaf tensors get extent n per mode and the canonical tiling, each stage
// auto-schedules, and intermediates stay distributed between stages.
func runChain(src string, n, procs int, gpu, simulate, trace bool) error {
	var stmts []distal.Statement
	for _, s := range strings.Split(src, ";") {
		if s = strings.TrimSpace(s); s != "" {
			stmts = append(stmts, distal.Statement{Stmt: s})
		}
	}
	if len(stmts) == 0 {
		return fmt.Errorf("-chain has no statements")
	}
	// Leaf tensors are the ones no statement assigns; every mode gets
	// extent n, and every tensor is partitioned over the 1-D machine by its
	// first mode (the same shorthand as -expr). Formats are per statement,
	// identical for a tensor wherever it appears, so producer/consumer
	// handoffs never need a repartition here.
	names := "xyzwuv"
	assigned := map[string]bool{}
	rankOf := map[string]int{}
	for i := range stmts {
		stmt, err := ir.Parse(stmts[i].Stmt)
		if err != nil {
			return err
		}
		assigned[stmt.LHS.Tensor] = true
		fmts := map[string]string{}
		rankOf[stmt.LHS.Tensor] = len(stmt.LHS.Indices)
		fmts[stmt.LHS.Tensor] = ""
		for _, a := range stmt.RHS.Accesses(nil) {
			rankOf[a.Tensor] = len(a.Indices)
			fmts[a.Tensor] = ""
		}
		for name := range fmts {
			rank := rankOf[name]
			if rank == 0 {
				rank = 1 // a scalar access reads a rank-1 tensor of extent 1
			}
			if rank > len(names) {
				return fmt.Errorf("tensor %s has rank %d; -chain supports ranks up to %d", name, rank, len(names))
			}
			fmts[name] = names[:rank] + "->" + names[:1]
		}
		stmts[i].Formats = fmts
	}
	shapes := map[string][]int{}
	for name, rank := range rankOf {
		if assigned[name] {
			continue
		}
		if rank == 0 {
			shapes[name] = []int{1}
			continue
		}
		shape := make([]int, rank)
		for d := range shape {
			shape[d] = n
		}
		shapes[name] = shape
	}
	sess := distal.NewSession(newMachine(procs, gpu), distal.WithParams(params(gpu)))
	pp, err := sess.CompileProgram(context.Background(), distal.Request{Shapes: shapes, Stmts: stmts})
	if err != nil {
		return err
	}
	fmt.Println("=== program ===")
	fmt.Printf("statements    %d\n", len(stmts))
	fmt.Printf("stages        %d (%d repartitions)\n", pp.Stages(), pp.Repartitions())
	fmt.Printf("inputs        %s\n", strings.Join(pp.Inputs(), ", "))
	fmt.Printf("output        %s %v\n", pp.Output(), pp.Shape(pp.Output()))
	fmt.Printf("plan          %s cached=%t\n", pp.Key(), pp.Stats().Cached)
	if !simulate && !trace {
		return nil
	}
	var mods []distal.ExecOption
	if trace {
		mods = append(mods, distal.WithTrace())
	}
	res, err := pp.Simulate(context.Background(), mods...)
	if err != nil {
		return err
	}
	printResult(res, trace)
	return nil
}

// runAlg compiles one of the named matmul algorithms from the library.
func runAlg(alg string, n, procs int, gpu, simulate, trace bool, maxPoints int) error {
	cfg := algorithms.MatmulConfig{N: n, Procs: procs, GPU: gpu}
	if gpu {
		cfg.ProcsPerNode = 4
	}
	in, err := algorithms.Matmul(algorithms.Alg(alg), cfg)
	if err != nil {
		return err
	}
	fmt.Println("=== schedule ===")
	fmt.Println(in.Schedule)
	fmt.Println()
	fmt.Println("=== concrete index notation ===")
	fmt.Println(cin.Build(in.Schedule))
	fmt.Println()
	prog, err := core.Compile(in)
	if err != nil {
		return err
	}
	return show(prog, gpu, simulate, trace, maxPoints)
}

func show(prog *legion.Program, gpu, simulate, trace bool, maxPoints int) error {
	fmt.Println("=== generated program ===")
	fmt.Print(codegen.Program(prog, maxPoints))
	return execute(prog, gpu, simulate, trace)
}

func execute(prog *legion.Program, gpu, simulate, trace bool) error {
	if !simulate && !trace {
		return nil
	}
	p := sim.LassenCPU()
	if gpu {
		p = sim.LassenGPU()
	}
	var mods []legion.Option
	if trace {
		mods = append(mods, legion.WithTrace())
	}
	res, err := legion.Run(prog, legion.NewOptions(p, mods...))
	if err != nil {
		return err
	}
	printResult(res, trace)
	return nil
}

func printResult(res *legion.Result, trace bool) {
	fmt.Println()
	fmt.Println("=== simulated execution ===")
	fmt.Printf("time          %.6f s\n", res.Time)
	fmt.Printf("throughput    %.1f GFLOP/s\n", res.GFlopsPerSec())
	fmt.Printf("inter-node    %.3f GB\n", float64(res.InterBytes)/1e9)
	fmt.Printf("intra-node    %.3f GB\n", float64(res.IntraBytes)/1e9)
	fmt.Printf("copies        %d\n", res.Copies)
	fmt.Printf("peak memory   %.3f GB per processor\n", float64(res.PeakMemBytes)/1e9)
	if res.OOM {
		fmt.Printf("OOM           processor %d exceeded its memory capacity\n", res.OOMLeaf)
	}
	if trace {
		fmt.Println()
		fmt.Println("=== copy trace ===")
		legion.SortTrace(res.Trace)
		limit := len(res.Trace)
		if limit > 40 {
			limit = 40
		}
		for _, c := range res.Trace[:limit] {
			fmt.Printf("[%.6f, %.6f] %s %s %s: proc %d -> proc %d\n",
				c.Start, c.End, c.Launch, c.Region, c.Rect, c.Src, c.Dst)
		}
		if len(res.Trace) > limit {
			fmt.Printf("... %d more copies\n", len(res.Trace)-limit)
		}
	}
}
