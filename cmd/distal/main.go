// Command distal compiles a distributed tensor algebra algorithm and shows
// what the compiler produces: the concrete index notation of the scheduled
// statement, the generated Legion program, and (optionally) a simulated
// execution on the Lassen cost model.
//
// Usage:
//
//	distal -alg summa -n 64 -procs 4            # print the generated program
//	distal -alg cannon -n 64 -procs 9 -trace    # show the copy trace
//	distal -alg johnson -n 4096 -procs 8 -sim   # simulate at size
//	distal -expr "A(i,j) = B(i,j,k) * c(k)" -sim # arbitrary expression, auto-scheduled
package main

import (
	"flag"
	"fmt"
	"os"

	"distal/internal/algorithms"
	"distal/internal/cin"
	"distal/internal/codegen"
	"distal/internal/core"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/schedule"
	"distal/internal/sim"
)

func main() {
	alg := flag.String("alg", "summa", "algorithm: cannon, pumma, summa, johnson, solomonik, cosma")
	expr := flag.String("expr", "", "arbitrary tensor index notation statement (auto-scheduled; overrides -alg), e.g. \"A(i,j) = B(i,j,k) * c(k)\"")
	n := flag.Int("n", 64, "square matrix / tensor mode dimension")
	procs := flag.Int("procs", 4, "processor count")
	gpu := flag.Bool("gpu", false, "GPU machine (4 per node)")
	simulate := flag.Bool("sim", false, "simulate execution and print statistics")
	trace := flag.Bool("trace", false, "print the communication trace")
	maxPoints := flag.Int("points", 4, "task points to list per launch (0 = all)")
	flag.Parse()

	if err := run(*alg, *expr, *n, *procs, *gpu, *simulate, *trace, *maxPoints); err != nil {
		fmt.Fprintln(os.Stderr, "distal:", err)
		os.Exit(1)
	}
}

func run(alg, expr string, n, procs int, gpu, simulate, trace bool, maxPoints int) error {
	var in core.Input
	var err error
	if expr != "" {
		in, err = exprInput(expr, n, procs, gpu)
	} else {
		cfg := algorithms.MatmulConfig{N: n, Procs: procs, GPU: gpu}
		if gpu {
			cfg.ProcsPerNode = 4
		}
		in, err = algorithms.Matmul(algorithms.Alg(alg), cfg)
	}
	if err != nil {
		return err
	}
	return show(in, gpu, simulate, trace, maxPoints)
}

// exprInput builds a compilation input for an arbitrary statement: every
// mode has extent n, tensors are tiled over a 1-D machine by their first
// mode, and the schedule tiles the output's first index variable
// (owner-computes, the AutoSchedule heuristic).
func exprInput(expr string, n, procs int, gpu bool) (core.Input, error) {
	stmt, err := ir.Parse(expr)
	if err != nil {
		return core.Input{}, err
	}
	cfg := algorithms.MatmulConfig{Procs: procs, GPU: gpu}
	if gpu {
		cfg.ProcsPerNode = 4
	}
	m := cfg.MachineFor(procs)
	names := "xyzwuv"
	decls := map[string]*core.TensorDecl{}
	shapes := map[string][]int{}
	addDecl := func(a *ir.Access) error {
		if _, ok := decls[a.Tensor]; ok {
			return nil
		}
		rank := len(a.Indices)
		shape := make([]int, rank)
		for d := range shape {
			shape[d] = n
		}
		if rank == 0 {
			shape = []int{1}
			rank = 1
		}
		// Partition the first mode across the 1-D machine; remaining modes
		// span fully.
		stmtSrc := names[:rank] + "->" + names[:1]
		p, err := distnot.ParsePlacement(stmtSrc)
		if err != nil {
			return err
		}
		decls[a.Tensor] = &core.TensorDecl{Name: a.Tensor, Shape: shape, Placement: p}
		shapes[a.Tensor] = shape
		return nil
	}
	if err := addDecl(stmt.LHS); err != nil {
		return core.Input{}, err
	}
	for _, a := range stmt.RHS.Accesses(nil) {
		if err := addDecl(a); err != nil {
			return core.Input{}, err
		}
	}
	if err := stmt.Validate(shapes); err != nil {
		return core.Input{}, err
	}
	if len(stmt.LHS.Indices) == 0 {
		return core.Input{}, fmt.Errorf("scalar outputs are not supported by -expr; use the library API")
	}
	v := stmt.LHS.Indices[0].Name
	s := schedule.New(stmt).
		Divide(v, v+"_o", v+"_i", procs)
	order := []string{v + "_o", v + "_i"}
	for _, ov := range stmt.Vars() {
		if ov.Name != v {
			order = append(order, ov.Name)
		}
	}
	s.Reorder(order...).Distribute(v+"_o").Communicate(v+"_o", stmt.TensorNames()...)
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{Stmt: stmt, Machine: m, Tensors: decls, Schedule: s}, nil
}

func show(in core.Input, gpu, simulate, trace bool, maxPoints int) error {
	fmt.Println("=== concrete index notation ===")
	fmt.Println(cin.Build(in.Schedule))
	fmt.Println()
	prog, err := core.Compile(in)
	if err != nil {
		return err
	}
	fmt.Println("=== generated program ===")
	fmt.Print(codegen.Program(prog, maxPoints))

	if !simulate && !trace {
		return nil
	}
	params := sim.LassenCPU()
	if gpu {
		params = sim.LassenGPU()
	}
	res, err := legion.Run(prog, legion.Options{Params: params, Trace: trace})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== simulated execution ===")
	fmt.Printf("time          %.6f s\n", res.Time)
	fmt.Printf("throughput    %.1f GFLOP/s\n", res.GFlopsPerSec())
	fmt.Printf("inter-node    %.3f GB\n", float64(res.InterBytes)/1e9)
	fmt.Printf("intra-node    %.3f GB\n", float64(res.IntraBytes)/1e9)
	fmt.Printf("copies        %d\n", res.Copies)
	fmt.Printf("peak memory   %.3f GB per processor\n", float64(res.PeakMemBytes)/1e9)
	if res.OOM {
		fmt.Printf("OOM           processor %d exceeded its memory capacity\n", res.OOMLeaf)
	}
	if trace {
		fmt.Println()
		fmt.Println("=== copy trace ===")
		legion.SortTrace(res.Trace)
		limit := len(res.Trace)
		if limit > 40 {
			limit = 40
		}
		for _, c := range res.Trace[:limit] {
			fmt.Printf("[%.6f, %.6f] %s %s %s: proc %d -> proc %d\n",
				c.Start, c.End, c.Launch, c.Region, c.Rect, c.Src, c.Dst)
		}
		if len(res.Trace) > limit {
			fmt.Printf("... %d more copies\n", len(res.Trace)-limit)
		}
	}
	return nil
}
