// Command distal compiles a distributed tensor algebra algorithm and shows
// what the compiler produces: the concrete index notation of the scheduled
// statement, the generated Legion program, and (optionally) a simulated
// execution on the Lassen cost model.
//
// Usage:
//
//	distal -alg summa -n 64 -procs 4            # print the generated program
//	distal -alg cannon -n 64 -procs 9 -trace    # show the copy trace
//	distal -alg johnson -n 4096 -procs 8 -sim   # simulate at size
//	distal -expr "A(i,j) = B(i,j,k) * c(k)" -sim # arbitrary expression, auto-scheduled
//	distal -expr "A(i,j) = B(i,k) * C(k,j)" \
//	    -sched "divide(i,io,ii,4) reorder(io,ii,j,k) distribute(io) communicate(io,A,B,C)" \
//	    -sim                                     # explicit schedule text
//
// The -expr path goes through the session API: statement, formats, and
// schedule are all text, the same data a distal.Request carries.
package main

import (
	"flag"
	"fmt"
	"os"

	"distal"
	"distal/internal/algorithms"
	"distal/internal/cin"
	"distal/internal/codegen"
	"distal/internal/core"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/sim"
)

func main() {
	alg := flag.String("alg", "summa", "algorithm: cannon, pumma, summa, johnson, solomonik, cosma")
	expr := flag.String("expr", "", "arbitrary tensor index notation statement (overrides -alg), e.g. \"A(i,j) = B(i,j,k) * c(k)\"")
	sched := flag.String("sched", "", "schedule command text for -expr, e.g. \"divide(i,io,ii,4) reorder(io,ii,j,k) distribute(io)\"; empty auto-schedules")
	n := flag.Int("n", 64, "square matrix / tensor mode dimension")
	procs := flag.Int("procs", 4, "processor count")
	gpu := flag.Bool("gpu", false, "GPU machine (4 per node)")
	simulate := flag.Bool("sim", false, "simulate execution and print statistics")
	trace := flag.Bool("trace", false, "print the communication trace")
	maxPoints := flag.Int("points", 4, "task points to list per launch (0 = all)")
	flag.Parse()

	var err error
	if *expr != "" {
		err = runExpr(*expr, *sched, *n, *procs, *gpu, *simulate, *trace, *maxPoints)
	} else if *sched != "" {
		err = fmt.Errorf("-sched only applies to -expr statements; the -alg schedules are built in")
	} else {
		err = runAlg(*alg, *n, *procs, *gpu, *simulate, *trace, *maxPoints)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "distal:", err)
		os.Exit(1)
	}
}

func newMachine(procs int, gpu bool) *distal.Machine {
	if gpu {
		return distal.NewMachine(distal.GPU, procs).WithProcsPerNode(4)
	}
	return distal.NewMachine(distal.CPU, procs)
}

func params(gpu bool) distal.Params {
	if gpu {
		return distal.LassenGPU()
	}
	return distal.LassenCPU()
}

// runExpr drives an arbitrary statement through the session API: every mode
// has extent n, tensors are partitioned over a 1-D machine by their first
// mode, and the schedule is the given command text (auto-scheduled when
// empty).
func runExpr(expr, schedText string, n, procs int, gpu, simulate, trace bool, maxPoints int) error {
	stmt, err := ir.Parse(expr)
	if err != nil {
		return err
	}
	if len(stmt.LHS.Indices) == 0 {
		return fmt.Errorf("scalar outputs are not supported by -expr; use the library API")
	}
	names := "xyzwuv"
	rankOf := map[string]int{}
	collect := func(a *ir.Access) {
		rankOf[a.Tensor] = len(a.Indices)
	}
	collect(stmt.LHS)
	for _, a := range stmt.RHS.Accesses(nil) {
		collect(a)
	}
	sess := distal.NewSession(newMachine(procs, gpu), distal.WithParams(params(gpu)))
	var tensors []*distal.Tensor
	for name, rank := range rankOf {
		if rank > len(names) {
			return fmt.Errorf("tensor %s has rank %d; -expr supports ranks up to %d", name, rank, len(names))
		}
		// A zero-index access is a scalar: a rank-1 tensor of extent 1.
		shape := []int{1}
		if rank > 0 {
			shape = make([]int, rank)
			for d := range shape {
				shape[d] = n
			}
		} else {
			rank = 1
		}
		// Partition the first mode across the 1-D machine; remaining modes
		// span fully.
		f, err := distal.ParseFormat(names[:rank] + "->" + names[:1])
		if err != nil {
			return err
		}
		tensors = append(tensors, distal.NewTensor(name, f, shape...))
	}
	comp, err := sess.Define(expr, tensors...)
	if err != nil {
		return err
	}
	if schedText == "" {
		err = comp.AutoSchedule()
	} else {
		err = comp.ApplySchedule(schedText)
	}
	if err != nil {
		return err
	}
	fmt.Println("=== schedule ===")
	fmt.Println(comp.ScheduleText())
	fmt.Println()
	fmt.Println("=== concrete index notation ===")
	fmt.Println(comp.Notation())
	fmt.Println()
	prog, err := comp.Compile()
	if err != nil {
		return err
	}
	return show(prog.P, gpu, simulate, trace, maxPoints)
}

// runAlg compiles one of the named matmul algorithms from the library.
func runAlg(alg string, n, procs int, gpu, simulate, trace bool, maxPoints int) error {
	cfg := algorithms.MatmulConfig{N: n, Procs: procs, GPU: gpu}
	if gpu {
		cfg.ProcsPerNode = 4
	}
	in, err := algorithms.Matmul(algorithms.Alg(alg), cfg)
	if err != nil {
		return err
	}
	fmt.Println("=== schedule ===")
	fmt.Println(in.Schedule)
	fmt.Println()
	fmt.Println("=== concrete index notation ===")
	fmt.Println(cin.Build(in.Schedule))
	fmt.Println()
	prog, err := core.Compile(in)
	if err != nil {
		return err
	}
	return show(prog, gpu, simulate, trace, maxPoints)
}

func show(prog *legion.Program, gpu, simulate, trace bool, maxPoints int) error {
	fmt.Println("=== generated program ===")
	fmt.Print(codegen.Program(prog, maxPoints))
	return execute(prog, gpu, simulate, trace)
}

func execute(prog *legion.Program, gpu, simulate, trace bool) error {
	if !simulate && !trace {
		return nil
	}
	p := sim.LassenCPU()
	if gpu {
		p = sim.LassenGPU()
	}
	var mods []legion.Option
	if trace {
		mods = append(mods, legion.WithTrace())
	}
	res, err := legion.Run(prog, legion.NewOptions(p, mods...))
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== simulated execution ===")
	fmt.Printf("time          %.6f s\n", res.Time)
	fmt.Printf("throughput    %.1f GFLOP/s\n", res.GFlopsPerSec())
	fmt.Printf("inter-node    %.3f GB\n", float64(res.InterBytes)/1e9)
	fmt.Printf("intra-node    %.3f GB\n", float64(res.IntraBytes)/1e9)
	fmt.Printf("copies        %d\n", res.Copies)
	fmt.Printf("peak memory   %.3f GB per processor\n", float64(res.PeakMemBytes)/1e9)
	if res.OOM {
		fmt.Printf("OOM           processor %d exceeded its memory capacity\n", res.OOMLeaf)
	}
	if trace {
		fmt.Println()
		fmt.Println("=== copy trace ===")
		legion.SortTrace(res.Trace)
		limit := len(res.Trace)
		if limit > 40 {
			limit = 40
		}
		for _, c := range res.Trace[:limit] {
			fmt.Printf("[%.6f, %.6f] %s %s %s: proc %d -> proc %d\n",
				c.Start, c.End, c.Launch, c.Region, c.Rect, c.Src, c.Dst)
		}
		if len(res.Trace) > limit {
			fmt.Printf("... %d more copies\n", len(res.Trace)-limit)
		}
	}
	return nil
}
