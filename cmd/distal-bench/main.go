// Command distal-bench regenerates the DISTAL paper's evaluation figures on
// the simulated Lassen machine and prints them as text tables.
//
// Usage:
//
//	distal-bench -exp all           # every figure (default)
//	distal-bench -exp fig15a        # CPU matmul weak scaling
//	distal-bench -exp fig15b       	# GPU matmul weak scaling
//	distal-bench -exp fig16         # all four higher-order kernels, CPU+GPU
//	distal-bench -exp fig9          # algorithm verification table
//	distal-bench -exp summary       # headline speedups (§1/§7)
//	distal-bench -exp plancache     # session plan-cache cold/warm comparison
//	distal-bench -exp metrics       # machine-readable workload metrics table
//	distal-bench -exp tune          # auto-tune the five example workloads and
//	                                # verify the winner matches or beats
//	                                # AutoSchedule (see -tune-budget)
//	distal-bench -nodes 256         # maximum node count (power of two)
//	distal-bench -json out.json     # also write the metrics as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"distal"
	"distal/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig15a, fig15b, fig16, fig9, summary, plancache, metrics, tune")
	nodes := flag.Int("nodes", 256, "maximum node count (power of two)")
	tuneBudget := flag.Int("tune-budget", 48, "candidate budget per workload for -exp tune")
	tuneSeed := flag.Int64("tune-seed", 0, "sampling seed for -exp tune")
	jsonPath := flag.String("json", "", "write the metrics experiment (GFLOP/s, makespan, copies, bytes) and hot-path timings to this file as JSON")
	diffPath := flag.String("diff", "", "compare the metrics sweep against this baseline JSON (e.g. BENCH_PR2.json) and exit non-zero on regression")
	tol := flag.Float64("tol", 0.20, "regression tolerance for -diff on simulated makespans, as a fraction (0.20 = 20%)")
	wallTol := flag.Float64("walltol", 1.0, "regression tolerance for -diff on total compile/simulate wall time; generous by default because baselines may be recorded on different hardware")
	improve := flag.String("improve", "", "with -diff: comma-separated name:factor hot-path improvement requirements (e.g. cold-execute-real:0.8 demands the row beat the baseline by 20%); a<b:factor compares two rows of the current run instead (batch-run-8<seq-run-8:0.9 demands the batched walk beat eight sequential runs by 10%); runs the hot-path suite and fails unless every requirement holds")
	flag.Parse()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "distal-bench:", err)
			os.Exit(1)
		}
	}
	if (*jsonPath != "" || *diffPath != "") && *exp == "all" {
		// -json/-diff runs default to the metrics sweep only; the full
		// figure regeneration is not needed to record or gate a trajectory
		// point.
		*exp = "metrics"
	}
	if *exp == "tune" {
		fail(tuneExamples(*tuneBudget, *tuneSeed))
		return
	}
	if *exp != "metrics" {
		fail(run(*exp, *nodes))
	}
	// The metrics sweep is shared: computed once whether it is printed
	// (-exp metrics), written (-json), diffed (-diff), or all three.
	if *exp == "metrics" || *jsonPath != "" || *diffPath != "" {
		required, err := parseImprove(*improve)
		fail(err)
		rows, err := experiments.Metrics(*nodes)
		fail(err)
		if *exp == "metrics" {
			fmt.Println(experiments.RenderMetrics(rows))
		}
		// The hot-path suite is measured once whether it is being recorded
		// (-json) or gated (-improve).
		var hot []experiments.HotpathRow
		if *jsonPath != "" || len(required) > 0 {
			hot, err = experiments.Hotpath(3)
			fail(err)
		}
		if *jsonPath != "" {
			fail(writeJSON(*jsonPath, *nodes, rows, hot))
		}
		if *diffPath != "" {
			fail(diffAgainst(*diffPath, *nodes, rows, hot, required, *tol, *wallTol))
		}
	}
}

// parseImprove parses the -improve flag: comma-separated name:factor pairs.
func parseImprove(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	required := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, factorText, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -improve entry %q: want name:factor", part)
		}
		factor, err := strconv.ParseFloat(factorText, 64)
		if err != nil || factor <= 0 {
			return nil, fmt.Errorf("bad -improve factor in %q: want a positive number", part)
		}
		required[name] = factor
	}
	return required, nil
}

// benchReport is the schema of -json output: one file per benchmark run,
// appended to the repo's BENCH_*.json trajectory by CI or by hand. Hotpath
// rows record host-side compile/kernel timings (absent in trajectory points
// recorded before they existed).
type benchReport struct {
	Schema  string                   `json:"schema"`
	Nodes   int                      `json:"nodes"`
	Rows    []experiments.MetricRow  `json:"rows"`
	Hotpath []experiments.HotpathRow `json:"hotpath,omitempty"`
}

func writeJSON(path string, nodes int, rows []experiments.MetricRow, hot []experiments.HotpathRow) error {
	data, err := json.MarshalIndent(benchReport{Schema: "distal-bench/v1", Nodes: nodes, Rows: rows, Hotpath: hot}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diffAgainst compares the fresh metrics rows with a recorded baseline and
// fails on regression: per-row simulated makespan beyond tol (these are
// deterministic) and total compile/simulate wall time beyond wallTol. When
// improvement requirements are given (-improve), the baseline's hot-path
// rows must additionally be beaten by the required factors. The baseline
// must have been recorded at the same -nodes count — rows match by
// (experiment, config), so comparing different weak-scaled problem sizes
// would produce spurious regressions or silent green passes.
func diffAgainst(path string, nodes int, rows []experiments.MetricRow, hot []experiments.HotpathRow, required map[string]float64, tol, wallTol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline benchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if baseline.Nodes != nodes {
		return fmt.Errorf("baseline %s was recorded at -nodes %d, this run uses -nodes %d: re-record the baseline or match the node count", path, baseline.Nodes, nodes)
	}
	regressions := experiments.DiffMetrics(baseline.Rows, rows, tol, wallTol)
	regressions = append(regressions, experiments.DiffHotpath(baseline.Hotpath, hot, required)...)
	if len(regressions) == 0 {
		fmt.Printf("bench diff vs %s: ok (%d rows within %.0f%%", path, len(rows), tol*100)
		if len(required) > 0 {
			fmt.Printf(", %d hot-path improvement requirement(s) met", len(required))
		}
		fmt.Println(")")
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "REGRESSION:", r)
	}
	return fmt.Errorf("%d regression(s) vs %s", len(regressions), path)
}

func run(exp string, nodes int) error {
	switch exp {
	case "fig15a":
		return showFig(experiments.Fig15a(nodes))
	case "fig15b":
		return showFig(experiments.Fig15b(nodes))
	case "fig16":
		return fig16(nodes)
	case "fig9":
		rows, err := experiments.Fig9Table(64, 16384)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows))
		return nil
	case "summary":
		_, text, err := experiments.Summary(nodes)
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "plancache":
		return planCache()
	case "all":
		if err := showFig(experiments.Fig15a(nodes)); err != nil {
			return err
		}
		if err := showFig(experiments.Fig15b(nodes)); err != nil {
			return err
		}
		if err := fig16(nodes); err != nil {
			return err
		}
		rows, err := experiments.Fig9Table(64, 16384)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows))
		_, text, err := experiments.Summary(min(nodes, 64))
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// tuneExamples auto-tunes the five example workloads, prints the
// leaderboard summary, and fails when any winner is worse than the
// AutoSchedule baseline — the guarantee CI's tuner smoke step leans on.
func tuneExamples(budget int, seed int64) error {
	rows, err := experiments.TuneExamples(budget, seed)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderTune(rows))
	return experiments.VerifyTune(rows)
}

// planCache measures what the session's plan cache buys a serving workload:
// the same GEMM request executed with a cold cache (compile every time)
// against a warm one (compile once, execute many).
func planCache() error {
	const n, g = 1024, 4
	req := distal.Request{
		Stmt: "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{
			"A": {n, n}, "B": {n, n}, "C": {n, n},
		},
		Formats: map[string]string{"A": "xy->xy", "B": "xy->**", "C": "xy->**"},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) " +
			"distribute(io,jo) split(k,ko,ki,128) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(ko,B,C)",
	}
	machine := func() *distal.Machine { return distal.NewMachine(distal.CPU, g, g) }

	const reps = 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		sess := distal.NewSession(machine())
		if _, err := sess.Execute(req); err != nil {
			return err
		}
	}
	cold := time.Since(start) / reps

	sess := distal.NewSession(machine())
	if _, err := sess.Execute(req); err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := sess.Execute(req); err != nil {
			return err
		}
	}
	warm := time.Since(start) / reps
	st := sess.CacheStats()

	fmt.Println("## Session plan cache (GEMM, 4x4 grid, replicated inputs)")
	fmt.Printf("%-22s %12s\n", "", "per request")
	fmt.Printf("%-22s %12s\n", "cold (compile+run)", cold.Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "warm (cache hit+run)", warm.Round(time.Microsecond))
	fmt.Printf("%-22s %11.1fx\n", "speedup", float64(cold)/float64(warm))
	fmt.Printf("cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
	return nil
}

func fig16(nodes int) error {
	for _, k := range experiments.HigherKernels {
		for _, gpu := range []bool{false, true} {
			if err := showFig(experiments.Fig16(k, gpu, nodes)); err != nil {
				return err
			}
		}
	}
	return nil
}

func showFig(f *experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(experiments.Render(f))
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
