// Command distal-bench regenerates the DISTAL paper's evaluation figures on
// the simulated Lassen machine and prints them as text tables.
//
// Usage:
//
//	distal-bench -exp all           # every figure (default)
//	distal-bench -exp fig15a        # CPU matmul weak scaling
//	distal-bench -exp fig15b       	# GPU matmul weak scaling
//	distal-bench -exp fig16         # all four higher-order kernels, CPU+GPU
//	distal-bench -exp fig9          # algorithm verification table
//	distal-bench -exp summary       # headline speedups (§1/§7)
//	distal-bench -nodes 256         # maximum node count (power of two)
package main

import (
	"flag"
	"fmt"
	"os"

	"distal/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig15a, fig15b, fig16, fig9, summary")
	nodes := flag.Int("nodes", 256, "maximum node count (power of two)")
	flag.Parse()

	if err := run(*exp, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "distal-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, nodes int) error {
	switch exp {
	case "fig15a":
		return showFig(experiments.Fig15a(nodes))
	case "fig15b":
		return showFig(experiments.Fig15b(nodes))
	case "fig16":
		return fig16(nodes)
	case "fig9":
		rows, err := experiments.Fig9Table(64, 16384)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows))
		return nil
	case "summary":
		_, text, err := experiments.Summary(nodes)
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "all":
		if err := showFig(experiments.Fig15a(nodes)); err != nil {
			return err
		}
		if err := showFig(experiments.Fig15b(nodes)); err != nil {
			return err
		}
		if err := fig16(nodes); err != nil {
			return err
		}
		rows, err := experiments.Fig9Table(64, 16384)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows))
		_, text, err := experiments.Summary(min(nodes, 64))
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func fig16(nodes int) error {
	for _, k := range experiments.HigherKernels {
		for _, gpu := range []bool{false, true} {
			if err := showFig(experiments.Fig16(k, gpu, nodes)); err != nil {
				return err
			}
		}
	}
	return nil
}

func showFig(f *experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(experiments.Render(f))
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
