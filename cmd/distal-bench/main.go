// Command distal-bench regenerates the DISTAL paper's evaluation figures on
// the simulated Lassen machine and prints them as text tables.
//
// Usage:
//
//	distal-bench -exp all           # every figure (default)
//	distal-bench -exp fig15a        # CPU matmul weak scaling
//	distal-bench -exp fig15b       	# GPU matmul weak scaling
//	distal-bench -exp fig16         # all four higher-order kernels, CPU+GPU
//	distal-bench -exp fig9          # algorithm verification table
//	distal-bench -exp summary       # headline speedups (§1/§7)
//	distal-bench -exp plancache     # session plan-cache cold/warm comparison
//	distal-bench -exp metrics       # machine-readable workload metrics table
//	distal-bench -nodes 256         # maximum node count (power of two)
//	distal-bench -json out.json     # also write the metrics as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"distal"
	"distal/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig15a, fig15b, fig16, fig9, summary, plancache, metrics")
	nodes := flag.Int("nodes", 256, "maximum node count (power of two)")
	jsonPath := flag.String("json", "", "write the metrics experiment (GFLOP/s, makespan, copies, bytes) to this file as JSON")
	flag.Parse()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "distal-bench:", err)
			os.Exit(1)
		}
	}
	if *exp != "metrics" {
		fail(run(*exp, *nodes))
	}
	// The metrics sweep is shared: computed once whether it is printed
	// (-exp metrics), written (-json), or both.
	if *exp == "metrics" || *jsonPath != "" {
		rows, err := experiments.Metrics(*nodes)
		fail(err)
		if *exp == "metrics" {
			fmt.Println(experiments.RenderMetrics(rows))
		}
		if *jsonPath != "" {
			fail(writeJSON(*jsonPath, *nodes, rows))
		}
	}
}

// benchReport is the schema of -json output: one file per benchmark run,
// appended to the repo's BENCH_*.json trajectory by CI or by hand.
type benchReport struct {
	Schema string                  `json:"schema"`
	Nodes  int                     `json:"nodes"`
	Rows   []experiments.MetricRow `json:"rows"`
}

func writeJSON(path string, nodes int, rows []experiments.MetricRow) error {
	data, err := json.MarshalIndent(benchReport{Schema: "distal-bench/v1", Nodes: nodes, Rows: rows}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run(exp string, nodes int) error {
	switch exp {
	case "fig15a":
		return showFig(experiments.Fig15a(nodes))
	case "fig15b":
		return showFig(experiments.Fig15b(nodes))
	case "fig16":
		return fig16(nodes)
	case "fig9":
		rows, err := experiments.Fig9Table(64, 16384)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows))
		return nil
	case "summary":
		_, text, err := experiments.Summary(nodes)
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "plancache":
		return planCache()
	case "all":
		if err := showFig(experiments.Fig15a(nodes)); err != nil {
			return err
		}
		if err := showFig(experiments.Fig15b(nodes)); err != nil {
			return err
		}
		if err := fig16(nodes); err != nil {
			return err
		}
		rows, err := experiments.Fig9Table(64, 16384)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows))
		_, text, err := experiments.Summary(min(nodes, 64))
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// planCache measures what the session's plan cache buys a serving workload:
// the same GEMM request executed with a cold cache (compile every time)
// against a warm one (compile once, execute many).
func planCache() error {
	const n, g = 1024, 4
	req := distal.Request{
		Stmt: "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{
			"A": {n, n}, "B": {n, n}, "C": {n, n},
		},
		Formats: map[string]string{"A": "xy->xy", "B": "xy->**", "C": "xy->**"},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) " +
			"distribute(io,jo) split(k,ko,ki,128) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(ko,B,C)",
	}
	machine := func() *distal.Machine { return distal.NewMachine(distal.CPU, g, g) }

	const reps = 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		sess := distal.NewSession(machine())
		if _, err := sess.Execute(req); err != nil {
			return err
		}
	}
	cold := time.Since(start) / reps

	sess := distal.NewSession(machine())
	if _, err := sess.Execute(req); err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := sess.Execute(req); err != nil {
			return err
		}
	}
	warm := time.Since(start) / reps
	st := sess.CacheStats()

	fmt.Println("## Session plan cache (GEMM, 4x4 grid, replicated inputs)")
	fmt.Printf("%-22s %12s\n", "", "per request")
	fmt.Printf("%-22s %12s\n", "cold (compile+run)", cold.Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "warm (cache hit+run)", warm.Round(time.Microsecond))
	fmt.Printf("%-22s %11.1fx\n", "speedup", float64(cold)/float64(warm))
	fmt.Printf("cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
	return nil
}

func fig16(nodes int) error {
	for _, k := range experiments.HigherKernels {
		for _, gpu := range []bool{false, true} {
			if err := showFig(experiments.Fig16(k, gpu, nodes)); err != nil {
				return err
			}
		}
	}
	return nil
}

func showFig(f *experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(experiments.Render(f))
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
