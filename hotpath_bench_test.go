package distal

// Hot-path benchmarks: the compile path (per-point bounds analysis and
// launch materialization), a cold compile+execute, and large simulations.
// These pin the performance of the paths a serving session exercises on
// every cache miss and on every Simulate of a cached plan.
//
// Run with: go test -run=NONE -bench='Compile|ColdExecute|SimulateLarge' -benchmem

import (
	"testing"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

// johnson8 is an 8x8x8 Johnson 3D matmul: 512 launch points, replicated
// faces, the heaviest compile in the evaluation suite.
func johnson8(b *testing.B) core.Input {
	b.Helper()
	in, err := algorithms.Matmul(algorithms.Johnson, algorithms.MatmulConfig{
		N: 4096, Procs: 512, ProcsPerNode: 4, GPU: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// hierSumma is SUMMA on a 16x16 grid of GPUs grouped 4 per node with a
// sequential chunked k loop: 32 launches of 256 points each, exercising the
// multi-launch control path and intra/inter-node copy pricing.
func hierSumma(b *testing.B) core.Input {
	b.Helper()
	in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
		N: 8192, Procs: 256, ProcsPerNode: 4, GPU: true, ChunkSize: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkCompile measures the pure compile path (bounds analysis and
// eager launch materialization) on large domains.
func BenchmarkCompile(b *testing.B) {
	cases := []struct {
		name string
		in   core.Input
	}{
		{"johnson8x8x8", johnson8(b)},
		{"summa16x16seq", hierSumma(b)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(c.in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// realSumma is a validated-execution workload: chunked SUMMA on a 4x4 grid
// with real data bound, small enough that the leaf kernels (not the
// simulator) dominate. The tree variant runs the fallback tree-walking
// kernel instead of the compiled kernel program.
func realSumma(b *testing.B, tree bool) core.Input {
	b.Helper()
	in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
		N: 128, Procs: 16, ChunkSize: 32, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	in.TreeKernel = tree
	return in
}

// BenchmarkColdExecute measures what a plan-cache miss costs end to end:
// compile plus one execution. The sim case is the serving path (simulated
// cost model only); the real cases execute leaf kernels on actual data —
// "real" through the compiled kernel program, "realTree" through the
// tree-walking fallback it replaced.
func BenchmarkColdExecute(b *testing.B) {
	cases := []struct {
		name string
		in   core.Input
		opt  legion.Options
	}{
		{"sim", johnson8(b), legion.Options{Params: sim.LassenGPU()}},
		{"real", realSumma(b, false), legion.Options{Params: sim.LassenCPU(), Real: true}},
		{"realTree", realSumma(b, true), legion.Options{Params: sim.LassenCPU(), Real: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog, err := core.Compile(c.in)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := legion.Run(prog, c.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulateLarge measures repeated simulation of cached plans over
// big grids (the steady-state serving path).
func BenchmarkSimulateLarge(b *testing.B) {
	cases := []struct {
		name string
		in   core.Input
	}{
		{"johnson8x8x8", johnson8(b)},
		{"summa16x16seq", hierSumma(b)},
	}
	for _, c := range cases {
		prog, err := core.Compile(c.in)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := legion.Run(prog, legion.Options{Params: sim.LassenGPU()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
