package distal

import (
	"context"
	"strings"
	"testing"

	"distal/internal/program"
	"distal/internal/tensor"
)

// chainSchedule is the SUMMA-style schedule of one GEMM stage over a 2x2
// grid, parameterized by the stage's tensor names (out, lhs, rhs).
func chainSchedule(out, lhs, rhs string) string {
	return "divide(i,io,ii,2) divide(j,jo,ji,2) reorder(io,jo,ii,ji) " +
		"distribute(io,jo) split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) " +
		"communicate(jo," + out + ") communicate(ko," + lhs + "," + rhs + ")"
}

// chainRequest is the canonical 2-stage GEMM chain E = (A*B)*C with every
// tensor tiled xy->xy, so the intermediate D hands off without repartition.
func chainRequest(n int) Request {
	return Request{
		Shapes: map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Stmts: []Statement{
			{Stmt: "D(i,j) = A(i,k) * B(k,j)",
				Formats:  map[string]string{"A": "xy->xy", "B": "xy->xy", "D": "xy->xy"},
				Schedule: chainSchedule("D", "A", "B")},
			{Stmt: "E(i,j) = D(i,k) * C(k,j)",
				Formats:  map[string]string{"D": "xy->xy", "C": "xy->xy", "E": "xy->xy"},
				Schedule: chainSchedule("E", "D", "C")},
		},
	}
}

func TestCompileProgramValidation(t *testing.T) {
	nn := []int{8, 8}
	cases := []struct {
		name string
		req  Request
		want string // substring of the expected error
	}{
		{
			name: "no statements",
			req:  Request{Shapes: map[string][]int{"A": nn}},
			want: "no statements",
		},
		{
			name: "top-level stmt set",
			req: Request{
				Stmt:   "D(i,j) = A(i,k) * B(k,j)",
				Shapes: map[string][]int{"A": nn, "B": nn},
				Stmts:  []Statement{{Stmt: "E(i,j) = A(i,k) * B(k,j)"}},
			},
			want: "must be empty",
		},
		{
			name: "intermediate name collides with Shapes",
			req: Request{
				Shapes: map[string][]int{"A": nn, "B": nn, "C": nn, "D": nn},
				Stmts: []Statement{
					{Stmt: "D(i,j) = A(i,k) * B(k,j)"},
					{Stmt: "E(i,j) = D(i,k) * C(k,j)"},
				},
			},
			want: "Shapes declares D",
		},
		{
			name: "cycle",
			req: Request{
				Shapes: map[string][]int{"A": nn},
				Stmts: []Statement{
					{Stmt: "D(i,j) = E(i,k) * A(k,j)"},
					{Stmt: "E(i,j) = D(i,k) * A(k,j)"},
				},
			},
			want: "dependency cycle",
		},
		{
			name: "bad statement format",
			req: Request{
				Shapes: map[string][]int{"A": nn, "B": nn},
				Stmts: []Statement{
					{Stmt: "D(i,j) = A(i,k) * B(k,j)", Formats: map[string]string{"D": "not a format"}},
				},
			},
			want: "D",
		},
	}
	sess := NewSession(NewMachine(CPU, 2, 2))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sess.CompileProgram(context.Background(), tc.req)
			if err == nil {
				t.Fatalf("CompileProgram succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if KindOf(err) != KindParse {
				t.Fatalf("KindOf = %v, want KindParse", KindOf(err))
			}
		})
	}
}

func TestCompileRejectsStmts(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	_, err := sess.Compile(context.Background(), chainRequest(32))
	if err == nil {
		t.Fatal("Compile accepted a multi-statement request")
	}
	if KindOf(err) != KindParse || !strings.Contains(err.Error(), "CompileProgram") {
		t.Fatalf("error = %v, want KindParse pointing at CompileProgram", err)
	}
}

// TestProgramDifferential runs the 2-stage chain as a plan DAG and as two
// sequential single-statement plans with an explicit gather/re-upload of the
// intermediate in between, across a worker-count matrix. Stage results must
// be bit-identical: the DAG's consumer reads the same canonical intermediate
// a standalone run would bind.
func TestProgramDifferential(t *testing.T) {
	const n = 32
	sess := NewSession(NewMachine(CPU, 2, 2))
	ctx := context.Background()
	pp, err := sess.CompileProgram(ctx, chainRequest(n))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(pp.Inputs(), ","); got != "A,B,C" {
		t.Fatalf("Inputs = %s, want A,B,C", got)
	}
	if pp.Output() != "E" || pp.Stages() != 2 || pp.Repartitions() != 0 {
		t.Fatalf("plan shape: output=%s stages=%d reparts=%d, want E/2/0",
			pp.Output(), pp.Stages(), pp.Repartitions())
	}

	tiled := MustFormat("xy->xy")
	mk := func(name string, seed int64) *Tensor {
		return NewTensor(name, tiled, n, n).FillRandom(seed)
	}

	for _, workers := range []int{1, 2, 4} {
		// DAG execution: one binding, intermediates stay distributed.
		a, b, c := mk("A", 1), mk("B", 2), mk("C", 3)
		pb := pp.Bind(a, b, c)
		if _, err := pb.Run(ctx, WithRealWorkers(workers)); err != nil {
			t.Fatalf("workers=%d: DAG run: %v", workers, err)
		}

		// Sequential baseline: stage 1 alone, gather D to the host side,
		// re-upload it as an input of stage 2.
		p1, err := sess.Compile(ctx, Request{
			Stmt:     "D(i,j) = A(i,k) * B(k,j)",
			Shapes:   map[string][]int{"A": {n, n}, "B": {n, n}, "D": {n, n}},
			Formats:  map[string]string{"A": "xy->xy", "B": "xy->xy", "D": "xy->xy"},
			Schedule: chainSchedule("D", "A", "B"),
		})
		if err != nil {
			t.Fatal(err)
		}
		d := NewTensor("D", tiled, n, n).Zero()
		b1 := p1.Bind(mk("A", 1), mk("B", 2), d)
		if _, err := b1.Run(ctx, WithRealWorkers(workers)); err != nil {
			t.Fatalf("workers=%d: seq stage 1: %v", workers, err)
		}
		p2, err := sess.Compile(ctx, Request{
			Stmt:     "E(i,j) = D(i,k) * C(k,j)",
			Shapes:   map[string][]int{"D": {n, n}, "C": {n, n}, "E": {n, n}},
			Formats:  map[string]string{"D": "xy->xy", "C": "xy->xy", "E": "xy->xy"},
			Schedule: chainSchedule("E", "D", "C"),
		})
		if err != nil {
			t.Fatal(err)
		}
		d2 := NewTensor("D", tiled, n, n)
		d2.Data = d.Data // the gathered intermediate, re-uploaded
		e := NewTensor("E", tiled, n, n).Zero()
		b2 := p2.Bind(d2, mk("C", 3), e)
		if _, err := b2.Run(ctx, WithRealWorkers(workers)); err != nil {
			t.Fatalf("workers=%d: seq stage 2: %v", workers, err)
		}

		if diff := pb.Tensor("D").MaxAbsDiff(d.Data); diff != 0 {
			t.Fatalf("workers=%d: intermediate D differs from standalone stage: max abs diff %g", workers, diff)
		}
		if diff := pb.Output().Data.MaxAbsDiff(e.Data); diff != 0 {
			t.Fatalf("workers=%d: output E differs from sequential baseline: max abs diff %g", workers, diff)
		}

		// And both must agree with the reference interpreter.
		prog, err := program.Parse([]program.Statement{
			{Stmt: "D(i,j) = A(i,k) * B(k,j)"},
			{Stmt: "E(i,j) = D(i,k) * C(k,j)"},
		}, map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := program.Evaluate(prog, map[string]*tensor.Dense{
			"A": a.Data, "B": b.Data, "C": c.Data,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !pb.Output().Data.EqualWithin(ref["E"], 1e-9) {
			t.Fatalf("workers=%d: DAG output diverges from reference: max abs diff %g",
				workers, pb.Output().Data.MaxAbsDiff(ref["E"]))
		}
	}
}

// TestProgramSimBeatsSequential asserts the DAG moves strictly fewer
// inter-node bytes than the sequential baseline, where the baseline pays the
// two stages plus the gather-to-root and re-upload of the intermediate that
// sequential single-statement execution implies.
func TestProgramSimBeatsSequential(t *testing.T) {
	const n = 256
	sess := NewSession(NewMachine(CPU, 2, 2))
	ctx := context.Background()
	pp, err := sess.CompileProgram(ctx, chainRequest(n))
	if err != nil {
		t.Fatal(err)
	}
	dag, err := pp.Simulate(ctx, WithTrace())
	if err != nil {
		t.Fatal(err)
	}

	// Zero gather-to-root copies of the intermediate: no traced copy moves
	// the full volume of D in one piece.
	for _, cr := range dag.Trace {
		if cr.Region == "D" && cr.Rect.Volume() == n*n {
			t.Fatalf("DAG gathered intermediate D to one leaf: %+v", cr)
		}
	}

	stage := func(stmt, out, lhs, rhs string) *Result {
		p, err := sess.Compile(ctx, Request{
			Stmt:     stmt,
			Shapes:   map[string][]int{lhs: {n, n}, rhs: {n, n}, out: {n, n}},
			Formats:  map[string]string{lhs: "xy->xy", rhs: "xy->xy", out: "xy->xy"},
			Schedule: chainSchedule(out, lhs, rhs),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Simulate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s1 := stage("D(i,j) = A(i,k) * B(k,j)", "D", "A", "B")
	s2 := stage("E(i,j) = D(i,k) * C(k,j)", "E", "D", "C")

	// Sequential inter-stage traffic: D leaves the machine through leaf
	// (0,0) and comes back the same way (initial placement is priced free,
	// so the via-root legs are the honest cost of the handoff).
	down, _, err := sess.RedistributeCost(NewTensor("D", MustFormat("xy->xy"), n, n), MustFormat("xy->00"))
	if err != nil {
		t.Fatal(err)
	}
	up, _, err := sess.RedistributeCost(NewTensor("D", MustFormat("xy->00"), n, n), MustFormat("xy->xy"))
	if err != nil {
		t.Fatal(err)
	}
	seq := s1.InterBytes + s2.InterBytes + down + up
	if dag.InterBytes >= seq {
		t.Fatalf("DAG inter-node bytes %d not below sequential baseline %d", dag.InterBytes, seq)
	}
}

// TestProgramPlanCaching: recompiling the same program is fully cached, with
// a stable key; compiling a program sharing one statement reuses that stage.
func TestProgramPlanCaching(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	ctx := context.Background()
	pp1, err := sess.CompileProgram(ctx, chainRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	if pp1.Stats().Cached {
		t.Fatal("first compile reported cached")
	}
	pp2, err := sess.CompileProgram(ctx, chainRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	if !pp2.Stats().Cached {
		t.Fatal("second compile was not fully cached")
	}
	if pp1.Key() != pp2.Key() {
		t.Fatalf("keys differ: %s vs %s", pp1.Key(), pp2.Key())
	}
}

// TestProgramRepartition: when producer and consumer disagree on the
// intermediate's format, an explicit repartition stage appears and the
// numerics still match the reference chain.
func TestProgramRepartition(t *testing.T) {
	const n = 32
	sess := NewSession(NewMachine(CPU, 2, 2))
	ctx := context.Background()
	req := Request{
		Shapes: map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Stmts: []Statement{
			{Stmt: "D(i,j) = A(i,k) * B(k,j)",
				Formats: map[string]string{"A": "xy->xy", "B": "xy->xy", "D": "xy->xy"}},
			{Stmt: "E(i,j) = D(i,k) * C(k,j)",
				Formats: map[string]string{"D": "xy->x*", "C": "xy->xy", "E": "xy->xy"}},
		},
	}
	pp, err := sess.CompileProgram(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Stages() != 3 || pp.Repartitions() != 1 {
		t.Fatalf("stages=%d reparts=%d, want 3/1", pp.Stages(), pp.Repartitions())
	}
	tiled := MustFormat("xy->xy")
	a := NewTensor("A", tiled, n, n).FillRandom(7)
	b := NewTensor("B", tiled, n, n).FillRandom(8)
	c := NewTensor("C", tiled, n, n).FillRandom(9)
	pb := pp.Bind(a, b, c)
	if _, err := pb.Run(ctx); err != nil {
		t.Fatal(err)
	}
	prog, err := program.Parse([]program.Statement{
		{Stmt: "D(i,j) = A(i,k) * B(k,j)"},
		{Stmt: "E(i,j) = D(i,k) * C(k,j)"},
	}, map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := program.Evaluate(prog, map[string]*tensor.Dense{"A": a.Data, "B": b.Data, "C": c.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Output().Data.EqualWithin(ref["E"], 1e-9) {
		t.Fatalf("repartitioned chain diverges from reference: max abs diff %g",
			pb.Output().Data.MaxAbsDiff(ref["E"]))
	}
}

// TestProgramBindErrors: only leaf inputs bind; everything else is a typed
// KindExec error.
func TestProgramBindErrors(t *testing.T) {
	const n = 16
	sess := NewSession(NewMachine(CPU, 2, 2))
	pp, err := sess.CompileProgram(context.Background(), chainRequest(n))
	if err != nil {
		t.Fatal(err)
	}
	tiled := MustFormat("xy->xy")
	a := NewTensor("A", tiled, n, n).FillRandom(1)
	b := NewTensor("B", tiled, n, n).FillRandom(2)
	c := NewTensor("C", tiled, n, n).FillRandom(3)
	cases := []struct {
		name string
		bind []*Tensor
		want string
	}{
		{"computed tensor", []*Tensor{a, b, c, NewTensor("D", tiled, n, n).Zero()}, "computed by the program"},
		{"unknown tensor", []*Tensor{a, b, c, NewTensor("X", tiled, n, n).Zero()}, "no tensor X"},
		{"missing leaf", []*Tensor{a, b}, "no data bound for leaf input C"},
		{"wrong shape", []*Tensor{a, b, NewTensor("C", tiled, n, 2*n).Zero()}, "shape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pb := pp.Bind(tc.bind...)
			_, err := pb.Run(context.Background())
			if err == nil {
				t.Fatal("Run succeeded on a bad binding")
			}
			if !strings.Contains(err.Error(), tc.want) || KindOf(err) != KindExec {
				t.Fatalf("error = %v (kind %v), want KindExec containing %q", err, KindOf(err), tc.want)
			}
		})
	}
}

// TestProgramBatch: a batched chain produces per-instance results equal to
// per-instance single runs.
func TestProgramBatch(t *testing.T) {
	const n, k = 24, 3
	sess := NewSession(NewMachine(CPU, 2, 2))
	ctx := context.Background()
	pp, err := sess.CompileProgram(ctx, chainRequest(n))
	if err != nil {
		t.Fatal(err)
	}
	tiled := MustFormat("xy->xy")
	var insts [][]*Tensor
	for i := 0; i < k; i++ {
		insts = append(insts, []*Tensor{
			NewTensor("A", tiled, n, n).FillRandom(int64(10 + i)),
			NewTensor("B", tiled, n, n).FillRandom(int64(20 + i)),
			NewTensor("C", tiled, n, n).FillRandom(int64(30 + i)),
		})
	}
	bb := pp.BindBatch(insts...)
	results, err := bb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != k {
		t.Fatalf("got %d results, want %d", len(results), k)
	}
	for i := 0; i < k; i++ {
		single := pp.Bind(insts[i]...)
		if _, err := single.Run(ctx); err != nil {
			t.Fatal(err)
		}
		if diff := bb.Output(i).Data.MaxAbsDiff(single.Output().Data); diff != 0 {
			t.Fatalf("instance %d differs from single run: max abs diff %g", i, diff)
		}
	}
}
