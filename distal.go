// Package distal is a Go implementation of DISTAL, the distributed tensor
// algebra compiler of Yadav, Aiken, and Kjolstad (PLDI 2022). It compiles
// tensor index notation statements — together with independent
// specifications of how data (tensor distribution notation) and computation
// (a scheduling language) map onto a target machine — into programs for a
// Legion-like distributed task-based runtime, and executes them either on
// real data (for validation) or on a simulated supercomputer (for the
// paper's performance experiments).
//
// The API mirrors Figure 2 of the paper:
//
//	m := distal.NewMachine(distal.CPU, gx, gy)
//	f := distal.Tiled(m)                              // xy -> xy
//	A := distal.NewTensor("A", f, n, n)
//	B := distal.NewTensor("B", f, n, n)
//	C := distal.NewTensor("C", f, n, n)
//	comp, _ := distal.Define("A(i,j) = B(i,k) * C(k,j)", m, A, B, C)
//	comp.Schedule().
//	    DistributeOnto([]string{"i","j"}, []string{"io","jo"}, []string{"ii","ji"}).
//	    Split("k", "ko", "ki", 256).
//	    Reorder("ko", "ii", "ji", "ki").
//	    Communicate("jo", "A").
//	    Communicate("ko", "B", "C")
//	prog, _ := comp.Compile()
//	res, _ := prog.Simulate(distal.LassenCPU())       // or prog.Run() on real data
package distal

import (
	"fmt"

	"distal/internal/core"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// ProcessorKind selects what kind of leaf processor a machine is built from.
type ProcessorKind int

const (
	// CPU processors keep data in system memory.
	CPU ProcessorKind = iota
	// GPU processors keep data in framebuffer memory and communicate over
	// NVLink within a node.
	GPU
)

// Machine is a target machine: a grid of abstract processors (§3.1).
type Machine struct {
	M *machine.Machine
}

// NewMachine builds a flat machine: a grid of CPU sockets or GPUs.
func NewMachine(kind ProcessorKind, dims ...int) *Machine {
	mem, proc := machine.SysMem, machine.CPU
	if kind == GPU {
		mem, proc = machine.GPUFBMem, machine.GPU
	}
	return &Machine{M: machine.New(machine.NewGrid(dims...), mem, proc)}
}

// WithProcsPerNode declares that consecutive processors share a physical
// node in groups of n (e.g. 4 GPUs per Lassen node); it affects which links
// communication uses.
func (m *Machine) WithProcsPerNode(n int) *Machine {
	return &Machine{M: m.M.WithProcsPerNode(n)}
}

// Grid returns the machine's grid dimensions.
func (m *Machine) Grid() []int { return m.M.Grid.Dims }

// Processors returns the total number of leaf processors.
func (m *Machine) Processors() int { return m.M.LeafCount() }

// Format describes how a tensor is stored and distributed (§3.2): the
// tensor's distribution onto the machine, expressed in tensor distribution
// notation.
type Format struct {
	Placement *distnot.Placement
}

// ParseFormat parses tensor distribution notation, e.g. "xy->xy" (tiles),
// "xy->x" (rows), "xy->xy0" (fixed to a face), "xy->xy*" (replicated along
// a dimension), with ";" separating hierarchy levels.
func ParseFormat(src string) (Format, error) {
	p, err := distnot.ParsePlacement(src)
	if err != nil {
		return Format{}, err
	}
	return Format{Placement: p}, nil
}

// MustFormat is ParseFormat but panics on error.
func MustFormat(src string) Format {
	f, err := ParseFormat(src)
	if err != nil {
		panic(err)
	}
	return f
}

// Tiled returns the canonical blocked tiling of a rank-r tensor over a
// rank-r machine (T x1..xr -> x1..xr M).
func Tiled(rank int) Format {
	names := []string{"x", "y", "z", "w", "u", "v"}
	if rank > len(names) {
		panic("distal: Tiled supports tensors up to rank 6")
	}
	s := &distnot.Statement{}
	for d := 0; d < rank; d++ {
		s.TensorDims = append(s.TensorDims, names[d])
		s.MachineDims = append(s.MachineDims, distnot.MachineName{Kind: distnot.Dim, Var: names[d]})
	}
	return Format{Placement: distnot.NewPlacement(s)}
}

// Tensor declares a dense tensor with a format. Data is allocated lazily by
// Bind or Fill*.
type Tensor struct {
	Name   string
	Shape  []int
	Format Format
	Data   *tensor.Dense
}

// NewTensor declares a tensor; a scalar is declared with shape (1).
func NewTensor(name string, f Format, shape ...int) *Tensor {
	return &Tensor{Name: name, Shape: append([]int(nil), shape...), Format: f}
}

// Bind attaches real data for validated execution.
func (t *Tensor) Bind(d *tensor.Dense) *Tensor {
	t.Data = d
	return t
}

// FillRandom allocates data and fills it deterministically from seed.
func (t *Tensor) FillRandom(seed int64) *Tensor {
	t.Data = tensor.New(t.Name, t.Shape...)
	t.Data.FillRandom(seed)
	return t
}

// Zero allocates zeroed data (the usual state for outputs).
func (t *Tensor) Zero() *Tensor {
	t.Data = tensor.New(t.Name, t.Shape...)
	return t
}

// Computation is a tensor index notation statement bound to concrete
// tensors and a machine.
type Computation struct {
	Stmt    *ir.Assignment
	Machine *Machine
	tensors map[string]*Tensor
	sched   *schedule.Schedule
}

// Define parses the statement and binds the named tensors, validating
// shapes. Every tensor named in the expression must be provided.
func Define(expr string, m *Machine, tensors ...*Tensor) (*Computation, error) {
	stmt, err := ir.Parse(expr)
	if err != nil {
		return nil, err
	}
	byName := map[string]*Tensor{}
	for _, t := range tensors {
		byName[t.Name] = t
	}
	shapes := map[string][]int{}
	for _, name := range stmt.TensorNames() {
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("distal: expression references tensor %s, which was not provided", name)
		}
		shapes[name] = t.Shape
	}
	if err := stmt.Validate(shapes); err != nil {
		return nil, err
	}
	return &Computation{
		Stmt:    stmt,
		Machine: m,
		tensors: byName,
		sched:   schedule.New(stmt),
	}, nil
}

// MustDefine is Define but panics on error.
func MustDefine(expr string, m *Machine, tensors ...*Tensor) *Computation {
	c, err := Define(expr, m, tensors...)
	if err != nil {
		panic(err)
	}
	return c
}

// Schedule returns the computation's schedule for fluent transformation.
func (c *Computation) Schedule() *Sched { return &Sched{c: c} }

// TensorData returns the bound data of the named tensor, or nil.
func (c *Computation) TensorData(name string) *tensor.Dense {
	if t, ok := c.tensors[name]; ok {
		return t.Data
	}
	return nil
}

// Sched is the fluent scheduling interface (§3.3). All commands delegate to
// the underlying scheduling language; errors are sticky and surface at
// Compile.
type Sched struct {
	c *Computation
}

// Divide breaks loop i into c pieces (outer ranges over pieces).
func (s *Sched) Divide(i, outer, inner string, c int) *Sched {
	s.c.sched.Divide(i, outer, inner, c)
	return s
}

// Split breaks loop i into chunks of the given size.
func (s *Sched) Split(i, outer, inner string, size int) *Sched {
	s.c.sched.Split(i, outer, inner, size)
	return s
}

// Reorder rearranges the listed loops into the given relative order.
func (s *Sched) Reorder(vars ...string) *Sched {
	s.c.sched.Reorder(vars...)
	return s
}

// Collapse fuses two directly nested loops.
func (s *Sched) Collapse(i, j, f string) *Sched {
	s.c.sched.Collapse(i, j, f)
	return s
}

// Distribute maps the given (outermost) loops onto the machine grid.
func (s *Sched) Distribute(vars ...string) *Sched {
	s.c.sched.Distribute(vars...)
	return s
}

// DistributeOnto is the compound tile-and-distribute command of §3.3, using
// the computation's machine grid extents.
func (s *Sched) DistributeOnto(targets, dist, local []string) *Sched {
	s.c.sched.DistributeOnto(targets, dist, local, s.c.Machine.M.LeafGrid().Dims)
	return s
}

// Rotate replaces loop t with r where t = (r + sum(offsets)) mod extent(t),
// producing systolic communication.
func (s *Sched) Rotate(t string, offsets []string, r string) *Sched {
	s.c.sched.Rotate(t, offsets, r)
	return s
}

// Communicate aggregates the tensors' communication at loop v.
func (s *Sched) Communicate(v string, tensors ...string) *Sched {
	s.c.sched.Communicate(v, tensors...)
	return s
}

// Parallelize marks a leaf loop as thread-parallel.
func (s *Sched) Parallelize(v string) *Sched {
	s.c.sched.Parallelize(v)
	return s
}

// Substitute declares the innermost loops are implemented by an optimized
// leaf kernel.
func (s *Sched) Substitute(vars []string, kernel string) *Sched {
	s.c.sched.Substitute(vars, kernel)
	return s
}

// Err returns the first scheduling error, if any.
func (s *Sched) Err() error { return s.c.sched.Err() }

// Program is a compiled computation ready to execute.
type Program struct {
	P *legion.Program
	c *Computation
}

// Compile lowers the computation to a Legion program.
func (c *Computation) Compile() (*Program, error) {
	decls := map[string]*core.TensorDecl{}
	for _, name := range c.Stmt.TensorNames() {
		t := c.tensors[name]
		decls[name] = &core.TensorDecl{
			Name:      name,
			Shape:     t.Shape,
			Placement: t.Format.Placement,
			Data:      t.Data,
		}
	}
	p, err := core.Compile(core.Input{
		Stmt:     c.Stmt,
		Machine:  c.Machine.M,
		Tensors:  decls,
		Schedule: c.sched,
	})
	if err != nil {
		return nil, err
	}
	return &Program{P: p, c: c}, nil
}

// Result re-exports the runtime's execution summary.
type Result = legion.Result

// Params re-exports the simulator cost model.
type Params = sim.Params

// LassenCPU returns the per-socket CPU cost model of the paper's testbed
// (each Lassen node has two sockets; DISTAL reserves cores for the
// runtime).
func LassenCPU() Params { return sim.LassenCPU() }

// LassenGPU returns the per-GPU cost model of the paper's testbed.
func LassenGPU() Params { return sim.LassenGPU() }

// Run executes the program on real data (every tensor must have Data bound)
// and also returns the simulated timing under params.
func (p *Program) Run(params Params) (*Result, error) {
	return legion.Run(p.P, legion.Options{Params: params, Real: true})
}

// Simulate executes the program's task graph without data, returning
// simulated time, communication, and memory statistics.
func (p *Program) Simulate(params Params) (*Result, error) {
	return legion.Run(p.P, legion.Options{Params: params})
}

// SimulateOpts executes with full control over runtime options.
func (p *Program) SimulateOpts(opt legion.Options) (*Result, error) {
	return legion.Run(p.P, opt)
}

// Output returns the output tensor (after Run, it holds the result).
func (p *Program) Output() *Tensor { return p.c.tensors[p.c.Stmt.LHS.Tensor] }
