// Package distal is a Go implementation of DISTAL, the distributed tensor
// algebra compiler of Yadav, Aiken, and Kjolstad (PLDI 2022). It compiles
// tensor index notation statements — together with independent
// specifications of how data (tensor distribution notation) and computation
// (a scheduling language) map onto a target machine — into programs for a
// Legion-like distributed task-based runtime, and executes them either on
// real data (for validation) or on a simulated supercomputer (for the
// paper's performance experiments).
//
// The entry point is a Session: a long-lived object owning a target
// machine, a default cost model, and an LRU cache of compiled plans.
// Compile once into an immutable Plan, execute many times:
//
//	m := distal.NewMachine(distal.CPU, gx, gy)
//	sess := distal.NewSession(m)
//	plan, _ := sess.Compile(ctx, distal.Request{
//	    Stmt:     "A(i,j) = B(i,k) * C(k,j)",
//	    Shapes:   map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
//	    Formats:  map[string]string{"A": "xy->xy", "B": "xy->xy", "C": "xy->xy"},
//	    Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) reorder(io,jo,ii,ji) " +
//	        "distribute(io,jo) split(k,ko,ki,256) reorder(io,jo,ko,ii,ji,ki) " +
//	        "communicate(jo,A) communicate(ko,B,C)",
//	})
//	res, _ := plan.Simulate(ctx)          // analysis: task graph, no data
//	res, _ = plan.Bind(A, B, C).Run(ctx)  // real data, bound per execution
//
// A Request is pure data — statement, shapes, formats, and schedule are all
// text — so workloads can be stored, shipped over the wire, and emitted by
// autotuners. Re-compiling a request with the same statement, shapes,
// formats, schedule, and machine hits the session's plan cache and skips
// compilation entirely; concurrent identical compiles collapse into one
// (singleflight); a cached Plan is safe for concurrent Simulate and
// Bind.Run. Contexts cancel compilation and execution promptly, and
// failures at the API boundary are *Error values classified by stage
// (KindParse, KindSchedule, KindCompile, KindExec, KindCanceled). The
// one-call Session.Execute shim remains for CLIs, and cmd/distal-serve
// exposes all of this over HTTP/JSON (see internal/serve).
//
// For programmatic construction (and for Real-mode execution on bound
// data), the fluent layer mirrors Figure 2 of the paper:
//
//	f := distal.Tiled(2)                              // rank-2 tiling, xy -> xy
//	A := distal.NewTensor("A", f, n, n).Zero()
//	B := distal.NewTensor("B", f, n, n).FillRandom(1)
//	C := distal.NewTensor("C", f, n, n).FillRandom(2)
//	comp, _ := sess.Define("A(i,j) = B(i,k) * C(k,j)", A, B, C)
//	comp.Schedule().
//	    DistributeOnto([]string{"i","j"}, []string{"io","jo"}, []string{"ii","ji"}).
//	    Split("k", "ko", "ki", 256).
//	    Reorder("ko", "ii", "ji", "ki").
//	    Communicate("jo", "A").
//	    Communicate("ko", "B", "C")
//	prog, _ := comp.Compile()                         // plan-cached via sess
//	res, _ := prog.Run(distal.LassenCPU())            // or prog.Simulate(params)
//
// Fluent schedules serialize to command text with Computation.ScheduleText
// and parse back with Computation.ApplySchedule, so the two styles
// round-trip.
package distal

import (
	"fmt"

	"distal/internal/core"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// ProcessorKind selects what kind of leaf processor a machine is built from.
type ProcessorKind int

const (
	// CPU processors keep data in system memory.
	CPU ProcessorKind = iota
	// GPU processors keep data in framebuffer memory and communicate over
	// NVLink within a node.
	GPU
)

// Machine is a target machine: a grid of abstract processors (§3.1).
type Machine struct {
	M *machine.Machine
}

// NewMachine builds a flat machine: a grid of CPU sockets or GPUs.
func NewMachine(kind ProcessorKind, dims ...int) *Machine {
	mem, proc := machine.SysMem, machine.CPU
	if kind == GPU {
		mem, proc = machine.GPUFBMem, machine.GPU
	}
	return &Machine{M: machine.New(machine.NewGrid(dims...), mem, proc)}
}

// WithProcsPerNode declares that consecutive processors share a physical
// node in groups of n (e.g. 4 GPUs per Lassen node); it affects which links
// communication uses.
func (m *Machine) WithProcsPerNode(n int) *Machine {
	return &Machine{M: m.M.WithProcsPerNode(n)}
}

// Grid returns the machine's grid dimensions.
func (m *Machine) Grid() []int { return m.M.Grid.Dims }

// Processors returns the total number of leaf processors.
func (m *Machine) Processors() int { return m.M.LeafCount() }

// Format describes how a tensor is stored and distributed (§3.2): the
// tensor's distribution onto the machine, expressed in tensor distribution
// notation.
type Format struct {
	Placement *distnot.Placement
}

// ParseFormat parses tensor distribution notation, e.g. "xy->xy" (tiles),
// "xy->x" (rows), "xy->xy0" (fixed to a face), "xy->xy*" (replicated along
// a dimension), with ";" separating hierarchy levels.
func ParseFormat(src string) (Format, error) {
	p, err := distnot.ParsePlacement(src)
	if err != nil {
		return Format{}, err
	}
	return Format{Placement: p}, nil
}

// MustFormat is ParseFormat but panics on error.
func MustFormat(src string) Format {
	f, err := ParseFormat(src)
	if err != nil {
		panic(err)
	}
	return f
}

// Tiled returns the canonical blocked tiling of a rank-r tensor over a
// rank-r machine (T x1..xr -> x1..xr M).
func Tiled(rank int) Format {
	names := []string{"x", "y", "z", "w", "u", "v"}
	if rank > len(names) {
		panic("distal: Tiled supports tensors up to rank 6")
	}
	s := &distnot.Statement{}
	for d := 0; d < rank; d++ {
		s.TensorDims = append(s.TensorDims, names[d])
		s.MachineDims = append(s.MachineDims, distnot.MachineName{Kind: distnot.Dim, Var: names[d]})
	}
	return Format{Placement: distnot.NewPlacement(s)}
}

// Tensor declares a dense tensor with a format. Data is allocated lazily by
// Bind or Fill*.
type Tensor struct {
	Name   string
	Shape  []int
	Format Format
	Data   *tensor.Dense
}

// NewTensor declares a tensor; a scalar is declared with shape (1).
func NewTensor(name string, f Format, shape ...int) *Tensor {
	return &Tensor{Name: name, Shape: append([]int(nil), shape...), Format: f}
}

// Bind attaches real data for validated execution.
func (t *Tensor) Bind(d *tensor.Dense) *Tensor {
	t.Data = d
	return t
}

// FillRandom allocates data and fills it deterministically from seed.
func (t *Tensor) FillRandom(seed int64) *Tensor {
	t.Data = tensor.New(t.Name, t.Shape...)
	t.Data.FillRandom(seed)
	return t
}

// Zero allocates zeroed data (the usual state for outputs).
func (t *Tensor) Zero() *Tensor {
	t.Data = tensor.New(t.Name, t.Shape...)
	return t
}

// Computation is a tensor index notation statement bound to concrete
// tensors and a machine.
type Computation struct {
	Stmt    *ir.Assignment
	Machine *Machine
	tensors map[string]*Tensor
	sched   *schedule.Schedule
	sess    *Session // non-nil when created through a Session (plan caching)
}

// Define parses the statement and binds the named tensors, validating
// shapes. Every tensor named in the expression must be provided.
//
// Deprecated: prefer Session.Define, which compiles through the session's
// plan cache. Define remains for one-shot use.
func Define(expr string, m *Machine, tensors ...*Tensor) (*Computation, error) {
	stmt, err := ir.Parse(expr)
	if err != nil {
		return nil, err
	}
	byName := map[string]*Tensor{}
	for _, t := range tensors {
		byName[t.Name] = t
	}
	shapes := map[string][]int{}
	for _, name := range stmt.TensorNames() {
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("distal: expression references tensor %s, which was not provided", name)
		}
		shapes[name] = t.Shape
	}
	if err := stmt.Validate(shapes); err != nil {
		return nil, err
	}
	return &Computation{
		Stmt:    stmt,
		Machine: m,
		tensors: byName,
		sched:   schedule.New(stmt),
	}, nil
}

// MustDefine is Define but panics on error.
//
// Deprecated: prefer Session.MustDefine.
func MustDefine(expr string, m *Machine, tensors ...*Tensor) *Computation {
	c, err := Define(expr, m, tensors...)
	if err != nil {
		panic(err)
	}
	return c
}

// Schedule returns the computation's schedule for fluent transformation.
func (c *Computation) Schedule() *Sched { return &Sched{c: c} }

// TensorData returns the bound data of the named tensor, or nil.
func (c *Computation) TensorData(name string) *tensor.Dense {
	if t, ok := c.tensors[name]; ok {
		return t.Data
	}
	return nil
}

// Sched is the fluent scheduling interface (§3.3). All commands delegate to
// the underlying scheduling language; errors are sticky and surface at
// Compile.
type Sched struct {
	c *Computation
}

// Divide breaks loop i into c pieces (outer ranges over pieces).
func (s *Sched) Divide(i, outer, inner string, c int) *Sched {
	s.c.sched.Divide(i, outer, inner, c)
	return s
}

// Split breaks loop i into chunks of the given size.
func (s *Sched) Split(i, outer, inner string, size int) *Sched {
	s.c.sched.Split(i, outer, inner, size)
	return s
}

// Reorder rearranges the listed loops into the given relative order.
func (s *Sched) Reorder(vars ...string) *Sched {
	s.c.sched.Reorder(vars...)
	return s
}

// Collapse fuses two directly nested loops.
func (s *Sched) Collapse(i, j, f string) *Sched {
	s.c.sched.Collapse(i, j, f)
	return s
}

// Distribute maps the given (outermost) loops onto the machine grid.
func (s *Sched) Distribute(vars ...string) *Sched {
	s.c.sched.Distribute(vars...)
	return s
}

// DistributeOnto is the compound tile-and-distribute command of §3.3, using
// the computation's machine grid extents.
func (s *Sched) DistributeOnto(targets, dist, local []string) *Sched {
	s.c.sched.DistributeOnto(targets, dist, local, s.c.Machine.M.LeafGrid().Dims)
	return s
}

// Rotate replaces loop t with r where t = (r + sum(offsets)) mod extent(t),
// producing systolic communication.
func (s *Sched) Rotate(t string, offsets []string, r string) *Sched {
	s.c.sched.Rotate(t, offsets, r)
	return s
}

// Communicate aggregates the tensors' communication at loop v.
func (s *Sched) Communicate(v string, tensors ...string) *Sched {
	s.c.sched.Communicate(v, tensors...)
	return s
}

// Parallelize marks a leaf loop as thread-parallel.
func (s *Sched) Parallelize(v string) *Sched {
	s.c.sched.Parallelize(v)
	return s
}

// Substitute declares the innermost loops are implemented by an optimized
// leaf kernel.
func (s *Sched) Substitute(vars []string, kernel string) *Sched {
	s.c.sched.Substitute(vars, kernel)
	return s
}

// Err returns the first scheduling error, if any.
func (s *Sched) Err() error { return s.c.sched.Err() }

// Program is a compiled computation ready to execute.
type Program struct {
	P *legion.Program
	c *Computation
}

// Compile lowers the computation to a Legion program. When the computation
// was created through a Session and no tensor has data bound, the session's
// plan cache is consulted first: a hit returns the previously compiled plan
// without re-running the compiler, and concurrent identical compiles —
// fluent computations included — collapse into one through the session's
// singleflight table (keyed by plan key).
func (c *Computation) Compile() (*Program, error) {
	prog, _, err := c.compile()
	return prog, err
}

// compile is Compile plus the plan key under which the program is cached
// ("" when the computation does not participate in caching).
func (c *Computation) compile() (*Program, string, error) {
	in := c.compileInput()
	if c.sess == nil || !c.cacheable() {
		p, err := core.Compile(in)
		if err != nil {
			return nil, "", err
		}
		return &Program{P: p, c: c}, "", nil
	}
	key := core.PlanKey(in)
	pd, err := c.sess.flightCompile(key, func() (*planData, error) {
		p, err := core.Compile(in)
		if err != nil {
			return nil, err
		}
		return c.newPlanData(p), nil
	})
	if err != nil {
		return nil, "", err
	}
	return &Program{P: pd.prog, c: c}, key, nil
}

// Result re-exports the runtime's execution summary.
type Result = legion.Result

// CopyRecord re-exports one scheduled copy of a traced execution.
type CopyRecord = legion.CopyRecord

// SortTrace orders trace records by start time for display.
func SortTrace(t []CopyRecord) { legion.SortTrace(t) }

// Params re-exports the simulator cost model.
type Params = sim.Params

// ExecOption modifies one execution of a compiled program (tracing,
// synchronous mode, owner-only copies, ...).
type ExecOption = legion.Option

// WithTrace records every copy for inspection in Result.Trace.
func WithTrace() ExecOption { return legion.WithTrace() }

// WithSynchronous disables communication/computation overlap, modeling
// non-overlapping baselines.
func WithSynchronous() ExecOption { return legion.WithSynchronous() }

// WithOwnerOnly restricts copy sources to persistent owner instances.
func WithOwnerOnly() ExecOption { return legion.WithOwnerOnly() }

// WithTransientWindow sets how many transient instances per (region, leaf)
// stay live for reuse.
func WithTransientWindow(n int) ExecOption { return legion.WithTransientWindow(n) }

// WithReal executes leaf kernels on actual data; every tensor must have
// data bound.
func WithReal() ExecOption { return legion.WithReal() }

// WithRealWorkers bounds the worker pool executing Real-mode leaf kernels
// (independent tasks of a launch run concurrently). Zero, the default, uses
// min(GOMAXPROCS, 16); 1 runs kernels serially. Results and simulated
// metrics are identical at any setting.
func WithRealWorkers(n int) ExecOption { return legion.WithRealWorkers(n) }

// LassenCPU returns the per-socket CPU cost model of the paper's testbed
// (each Lassen node has two sockets; DISTAL reserves cores for the
// runtime).
func LassenCPU() Params { return sim.LassenCPU() }

// LassenGPU returns the per-GPU cost model of the paper's testbed.
func LassenGPU() Params { return sim.LassenGPU() }

// Execute runs the program under params with the given execution
// modifiers. It is the consolidated execution entry point: Run and Simulate
// are thin wrappers.
func (p *Program) Execute(params Params, opts ...ExecOption) (*Result, error) {
	return legion.Run(p.P, legion.NewOptions(params, opts...))
}

// Run executes the program on real data (every tensor must have Data bound)
// and also returns the simulated timing under params.
func (p *Program) Run(params Params, opts ...ExecOption) (*Result, error) {
	return p.Execute(params, append([]ExecOption{WithReal()}, opts...)...)
}

// Simulate executes the program's task graph without data, returning
// simulated time, communication, and memory statistics.
func (p *Program) Simulate(params Params, opts ...ExecOption) (*Result, error) {
	return p.Execute(params, opts...)
}

// SimulateOpts executes with a fully assembled options struct.
//
// Deprecated: use Execute with ExecOption modifiers.
func (p *Program) SimulateOpts(opt legion.Options) (*Result, error) {
	return legion.Run(p.P, opt)
}

// Output returns the output tensor (after Run, it holds the result), or
// nil for a program resolved purely from the plan cache (Request
// executions never bind data).
func (p *Program) Output() *Tensor {
	if p.c == nil {
		return nil
	}
	return p.c.tensors[p.c.Stmt.LHS.Tensor]
}
