//go:build !race

package distal

const raceEnabled = false
