package distal_test

// Differential tests for batched execution: one cached plan over N problem
// instances must be indistinguishable, instance by instance, from a loop of
// single-instance executions. Bit-identity (not tolerance) is asserted
// against the sequential reference because the batched executor promises the
// same floating-point accumulation order per instance at every worker
// count; a numeric tolerance is used only against the schedule-free
// ir.Evaluate oracle, whose summation order legitimately differs.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
)

// batchCase is one of the five example workloads at test size: the same
// statements, formats, and schedule shapes as examples/, shrunk so real
// execution stays fast under -race.
type batchCase struct {
	name    string
	machine func() *distal.Machine
	req     distal.Request
}

func batchCases() []batchCase {
	square := func(n int, names ...string) map[string][]int {
		out := map[string][]int{}
		for _, name := range names {
			out[name] = []int{n, n}
		}
		return out
	}
	gemm := "A(i,j) = B(i,k) * C(k,j)"
	return []batchCase{
		{
			name:    "summa",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 4, 4) },
			req: distal.Request{
				Stmt: gemm, Shapes: square(64, "A", "B", "C"),
				Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
			},
		},
		{
			name:    "cannon",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 3, 3) },
			req: distal.Request{
				Stmt: gemm, Shapes: square(48, "A", "B", "C"),
				Schedule: "divide(i,io,ii,3) divide(j,jo,ji,3) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"divide(k,ko,ki,3) reorder(io,jo,ko,ii,ji,ki) rotate(ko,io,jo,kos) " +
					"communicate(jo,A) communicate(kos,B,C)",
			},
		},
		{
			name:    "johnson",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 2, 2, 2) },
			req: distal.Request{
				Stmt:   gemm,
				Shapes: square(32, "A", "B", "C"),
				Formats: map[string]string{
					"A": "xy->xy0", "B": "xz->x0z", "C": "zy->0yz",
				},
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) divide(k,ko,ki,2) " +
					"reorder(io,jo,ko,ii,ji,ki) distribute(io,jo,ko) communicate(ko,A,B,C)",
			},
		},
		{
			name:    "mttkrp",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 2, 2, 2) },
			req: distal.Request{
				Stmt: "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)",
				Shapes: map[string][]int{
					"A": {32, 16}, "B": {32, 32, 32}, "C": {32, 16}, "D": {32, 16},
				},
				Formats: map[string]string{
					"A": "ab->a00", "B": "abc->abc", "C": "ab->*a*", "D": "ab->**a",
				},
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) divide(k,ko,ki,2) " +
					"reorder(io,jo,ko,ii,ji,ki,l) distribute(io,jo,ko) communicate(ko,A,B,C,D)",
			},
		},
		{
			name: "hierarchical",
			machine: func() *distal.Machine {
				return distal.NewMachine(distal.GPU, 2, 8).WithProcsPerNode(4)
			},
			req: distal.Request{
				Stmt: gemm, Shapes: square(64, "A", "B", "C"),
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,8) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
			},
		},
	}
}

// instanceTensors builds one instance's bound tensor set: deterministic
// random inputs keyed by seed and a zero output. Equal seeds always rebuild
// identical data, so the batched run and the sequential reference operate on
// the same values through distinct allocations.
func instanceTensors(plan *distal.Plan, req distal.Request, seed int64) []*distal.Tensor {
	var ts []*distal.Tensor
	for i, name := range plan.Tensors() {
		d := tensor.New(name, req.Shapes[name]...)
		if name != plan.Output() {
			d.FillRandom(seed + int64(i))
		}
		ts = append(ts, &distal.Tensor{Name: name, Shape: req.Shapes[name], Data: d})
	}
	return ts
}

func outputOf(ts []*distal.Tensor, plan *distal.Plan) *tensor.Dense {
	for _, t := range ts {
		if t.Name == plan.Output() {
			return t.Data
		}
	}
	return nil
}

// TestBindBatchMatchesSequential is the batched-execution differential
// suite: for each of the five example workloads, every instance of a
// BindBatch run must be bit-identical to a loop of single Bind(...).Run
// calls on the same data — across batch sizes {1, 3, 8} and worker counts
// {1, 4, 16} — and within 1e-9 of the ir.Evaluate oracle.
func TestBindBatchMatchesSequential(t *testing.T) {
	for _, c := range batchCases() {
		t.Run(c.name, func(t *testing.T) {
			sess := distal.NewSession(c.machine())
			plan, err := sess.Compile(context.Background(), c.req)
			if err != nil {
				t.Fatal(err)
			}
			stmt, err := ir.Parse(c.req.Stmt)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{1, 3, 8} {
				// Sequential reference: one single-instance run per instance.
				refs := make([]*tensor.Dense, batch)
				oracle := make([]*tensor.Dense, batch)
				for i := 0; i < batch; i++ {
					seed := int64(1000*i + 7)
					ts := instanceTensors(plan, c.req, seed)
					if _, err := plan.Bind(ts...).Run(context.Background()); err != nil {
						t.Fatal(err)
					}
					refs[i] = outputOf(ts, plan)

					inputs := map[string]*tensor.Dense{}
					for _, in := range instanceTensors(plan, c.req, seed) {
						if in.Name != plan.Output() {
							inputs[in.Name] = in.Data
						}
					}
					oracle[i], err = ir.Evaluate(stmt, inputs)
					if err != nil {
						t.Fatal(err)
					}
				}
				for _, workers := range []int{1, 4, 16} {
					t.Run(fmt.Sprintf("batch=%d/workers=%d", batch, workers), func(t *testing.T) {
						instances := make([][]*distal.Tensor, batch)
						for i := range instances {
							instances[i] = instanceTensors(plan, c.req, int64(1000*i+7))
						}
						bb := plan.BindBatch(instances...)
						results, err := bb.Run(context.Background(), distal.WithRealWorkers(workers))
						if err != nil {
							t.Fatal(err)
						}
						if len(results) != batch {
							t.Fatalf("got %d results, want %d", len(results), batch)
						}
						for i := 0; i < batch; i++ {
							got := bb.Output(i).Data.Data()
							want := refs[i].Data()
							for v := range got {
								if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
									t.Fatalf("instance %d value %d: batched %v != sequential %v (bit-identical required)",
										i, v, got[v], want[v])
								}
							}
							ev := oracle[i].Data()
							for v := range got {
								if math.Abs(got[v]-ev[v]) > 1e-9 {
									t.Fatalf("instance %d value %d: batched %v, ir.Evaluate %v (tolerance 1e-9)",
										i, v, got[v], ev[v])
								}
							}
						}
					})
				}
			}
		})
	}
}

// TestBindBatchMetricsMatchSingle pins the single-accounting-walk
// invariant: a batched run's simulated metrics are bit-identical to a
// single-instance run's — batching amortizes the walk, it never perturbs
// the cost model.
func TestBindBatchMetricsMatchSingle(t *testing.T) {
	for _, c := range batchCases() {
		t.Run(c.name, func(t *testing.T) {
			sess := distal.NewSession(c.machine())
			plan, err := sess.Compile(context.Background(), c.req)
			if err != nil {
				t.Fatal(err)
			}
			single, err := plan.Bind(instanceTensors(plan, c.req, 7)...).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			instances := make([][]*distal.Tensor, 8)
			for i := range instances {
				instances[i] = instanceTensors(plan, c.req, int64(1000*i+7))
			}
			results, err := plan.BindBatch(instances...).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				if r.Time != single.Time || r.Flops != single.Flops ||
					r.IntraBytes != single.IntraBytes || r.InterBytes != single.InterBytes ||
					r.Copies != single.Copies || r.PeakMemBytes != single.PeakMemBytes {
					t.Fatalf("instance %d metrics %+v != single-instance metrics %+v", i, *r, *single)
				}
			}
		})
	}
}

// TestBindStackedMatchesBindBatch checks the Tensor-Go-style convenience
// path: instances carved from one contiguous leading-batch-dim allocation
// per tensor produce the same outputs as explicitly bound instances, with
// every instance's result landing in its slice of the stacked output.
func TestBindStackedMatchesBindBatch(t *testing.T) {
	c := batchCases()[0] // summa
	const batch, n = 3, 64
	sess := distal.NewSession(c.machine())
	plan, err := sess.Compile(context.Background(), c.req)
	if err != nil {
		t.Fatal(err)
	}

	stackedOf := func(name string) *distal.Tensor {
		d := tensor.New(name, batch, n, n)
		return &distal.Tensor{Name: name, Data: d}
	}
	A, B, C := stackedOf("A"), stackedOf("B"), stackedOf("C")
	// Fill each instance slice with the data instanceTensors would build, so
	// the explicit BindBatch reference runs on identical values.
	instances := make([][]*distal.Tensor, batch)
	for i := 0; i < batch; i++ {
		instances[i] = instanceTensors(plan, c.req, int64(1000*i+7))
		for _, src := range instances[i] {
			var dst *distal.Tensor
			switch src.Name {
			case "A":
				dst = A
			case "B":
				dst = B
			case "C":
				dst = C
			}
			copy(dst.Data.Data()[i*n*n:(i+1)*n*n], src.Data.Data())
		}
	}

	bb := plan.BindStacked(batch, A, B, C)
	if _, err := bb.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.BindBatch(instances...).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		want := outputOf(instances[i], plan).Data()
		got := A.Data.Data()[i*n*n : (i+1)*n*n]
		for v := range got {
			if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
				t.Fatalf("instance %d value %d: stacked %v != explicit %v", i, v, got[v], want[v])
			}
		}
		if out := bb.Output(i); out == nil || &out.Data.Data()[0] != &got[0] {
			t.Fatalf("instance %d: Output(%d) is not a view into the stacked output", i, i)
		}
	}
}

// TestBindBatchValidation exercises the binding-time failure modes: empty
// batches, per-instance bind errors carrying the instance index, stacked
// tensors without the leading batch dimension, and output tensors shared
// between instances (which would race under the parallel drain).
func TestBindBatchValidation(t *testing.T) {
	c := batchCases()[0]
	sess := distal.NewSession(c.machine())
	plan, err := sess.Compile(context.Background(), c.req)
	if err != nil {
		t.Fatal(err)
	}
	assertErr := func(t *testing.T, bb *distal.BatchBinding, want string) {
		t.Helper()
		_, err := bb.Run(context.Background())
		if err == nil {
			t.Fatalf("Run succeeded, want error containing %q", want)
		}
		if got := err.Error(); !strings.Contains(got, want) {
			t.Fatalf("error %q does not mention %q", got, want)
		}
	}

	t.Run("empty", func(t *testing.T) {
		assertErr(t, plan.BindBatch(), "empty batch")
	})
	t.Run("instance-index", func(t *testing.T) {
		good := instanceTensors(plan, c.req, 7)
		bad := instanceTensors(plan, c.req, 7)[:2] // missing C
		assertErr(t, plan.BindBatch(good, bad), "instance 1")
	})
	t.Run("stacked-shape", func(t *testing.T) {
		mk := func(name string, shape ...int) *distal.Tensor {
			return &distal.Tensor{Name: name, Data: tensor.New(name, shape...)}
		}
		assertErr(t, plan.BindStacked(2, mk("A", 2, 64, 64), mk("B", 64, 64), mk("C", 2, 64, 64)), "stacked tensor B")
	})
	t.Run("shared-output", func(t *testing.T) {
		a := instanceTensors(plan, c.req, 7)
		b := instanceTensors(plan, c.req, 13)
		b[0] = a[0] // both instances write the same A
		assertErr(t, plan.BindBatch(a, b), "outputs must be private")
	})
}

// TestBatchSharedPlanConcurrent runs 8 goroutines, each executing a batched
// run of one shared cached plan on its own data: the serving scenario.
// Exactly one compile must happen, every instance must match its sequential
// reference, and under -race this proves the plan, its pooled kernel
// scratch, and the batched executor state are private per execution.
func TestBatchSharedPlanConcurrent(t *testing.T) {
	c := batchCases()[0]
	sess := distal.NewSession(c.machine())
	plan, err := sess.Compile(context.Background(), c.req)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, batch = 8, 3
	// Sequential references, one set per goroutine (seeds disjoint).
	refs := make([][]*tensor.Dense, goroutines)
	for g := 0; g < goroutines; g++ {
		refs[g] = make([]*tensor.Dense, batch)
		for i := 0; i < batch; i++ {
			ts := instanceTensors(plan, c.req, int64(10000*g+1000*i+7))
			if _, err := plan.Bind(ts...).Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			refs[g][i] = outputOf(ts, plan)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	outs := make([][]*tensor.Dense, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := sess.Compile(context.Background(), c.req)
			if err != nil {
				errs[g] = err
				return
			}
			instances := make([][]*distal.Tensor, batch)
			for i := range instances {
				instances[i] = instanceTensors(p, c.req, int64(10000*g+1000*i+7))
			}
			bb := p.BindBatch(instances...)
			if _, err := bb.Run(context.Background()); err != nil {
				errs[g] = err
				return
			}
			outs[g] = make([]*tensor.Dense, batch)
			for i := range instances {
				outs[g][i] = outputOf(instances[i], p)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for i := 0; i < batch; i++ {
			got, want := outs[g][i].Data(), refs[g][i].Data()
			for v := range got {
				if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
					t.Fatalf("goroutine %d instance %d value %d: %v != %v", g, i, v, got[v], want[v])
				}
			}
		}
	}
	if st := sess.CacheStats(); st.Misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 compile across all batched executions", st.Misses)
	}
}

// TestBatchRunCancellation cancels a batched execution mid-run: the error
// must classify KindCanceled (so services map it to a timeout status, not a
// 500), and the worker pool must wind down without leaking goroutines.
func TestBatchRunCancellation(t *testing.T) {
	// A workload big enough that cancellation always lands mid-execution:
	// 512^3 madds per instance across 8 instances.
	req := distal.Request{
		Stmt:   "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{"A": {512, 512}, "B": {512, 512}, "C": {512, 512}},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
			"split(k,ko,ki,64) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
	}
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 4, 4))
	plan, err := sess.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	instances := make([][]*distal.Tensor, 8)
	for i := range instances {
		instances[i] = instanceTensors(plan, req, int64(1000*i+7))
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err = plan.BindBatch(instances...).Run(ctx)
	if err == nil {
		t.Fatal("Run succeeded despite cancellation")
	}
	if kind := distal.KindOf(err); kind != distal.KindCanceled {
		t.Fatalf("error kind %v, want KindCanceled (%v)", kind, err)
	}
	// The worker pool joins before Run returns; give the runtime a moment to
	// retire exiting goroutines, then require the count back at baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, want <= %d (baseline+1): worker pool leaked", runtime.NumGoroutine(), before+1)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
