package distal_test

// Benchmarks regenerating the paper's evaluation (§7). One benchmark per
// table/figure drives the same code paths as cmd/distal-bench at a
// representative node count and reports the figure's metric
// (GFLOP/s-per-node or GB/s-per-node) via ReportMetric, plus ablation
// benchmarks for the design choices called out in DESIGN.md.
//
// Run everything with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/experiments"
	"distal/internal/legion"
	"distal/internal/sim"
)

const benchNodes = 16

func runMatmul(b *testing.B, alg algorithms.Alg, cfg algorithms.MatmulConfig, params sim.Params, opts legion.Options) *legion.Result {
	b.Helper()
	in, err := algorithms.Matmul(alg, cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := core.Compile(in)
	if err != nil {
		b.Fatal(err)
	}
	opts.Params = params
	res, err := legion.Run(prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig15a regenerates one row of the CPU weak-scaling figure per
// DISTAL algorithm at benchNodes nodes.
func BenchmarkFig15a(b *testing.B) {
	n := 8192 * 4 // weak-scaled to 16 nodes
	for _, alg := range algorithms.MatmulAlgs {
		b.Run(string(alg), func(b *testing.B) {
			var res *legion.Result
			for i := 0; i < b.N; i++ {
				res = runMatmul(b, alg, algorithms.MatmulConfig{
					N: n, Procs: benchNodes * 2, ProcsPerNode: 2,
				}, sim.LassenCPU(), legion.Options{})
			}
			b.ReportMetric(res.Flops/res.Time/1e9/benchNodes, "GFLOPs/node")
		})
	}
}

// BenchmarkFig15b regenerates one row of the GPU weak-scaling figure.
func BenchmarkFig15b(b *testing.B) {
	n := 19968 * 4
	for _, alg := range algorithms.MatmulAlgs {
		b.Run(string(alg), func(b *testing.B) {
			var res *legion.Result
			for i := 0; i < b.N; i++ {
				res = runMatmul(b, alg, algorithms.MatmulConfig{
					N: n, Procs: benchNodes * 4, ProcsPerNode: 4, GPU: true,
				}, sim.LassenGPU(), legion.Options{})
			}
			if res.OOM {
				b.ReportMetric(0, "GFLOPs/node")
				return
			}
			b.ReportMetric(res.Flops/res.Time/1e9/benchNodes, "GFLOPs/node")
		})
	}
}

// BenchmarkFig16 regenerates one point of each higher-order kernel panel
// (CPU, Ours vs CTF is produced by the experiment harness; the benchmark
// reports DISTAL's metric).
func BenchmarkFig16(b *testing.B) {
	for _, k := range experiments.HigherKernels {
		b.Run(string(k), func(b *testing.B) {
			var fig *experiments.Figure
			var err error
			for i := 0; i < b.N; i++ {
				fig, err = experiments.Fig16(k, false, 4)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(fig.Get("Ours").At(4), "metric/node")
			b.ReportMetric(fig.Get("CTF").At(4), "ctf/node")
		})
	}
}

// BenchmarkFig9CommVolume measures the communication volume of every
// algorithm in Figure 9 (the quantity behind the figure's pattern icons).
func BenchmarkFig9CommVolume(b *testing.B) {
	for _, alg := range algorithms.MatmulAlgs {
		b.Run(string(alg), func(b *testing.B) {
			var res *legion.Result
			for i := 0; i < b.N; i++ {
				res = runMatmul(b, alg, algorithms.MatmulConfig{N: 8192, Procs: 64},
					sim.LassenCPU(), legion.Options{})
			}
			b.ReportMetric(float64(res.InterBytes+res.IntraBytes)/1e9, "GB-moved")
		})
	}
}

// BenchmarkAblationRotate compares Cannon's systolic rotation against the
// identical schedule without rotate (broadcast SUMMA-style), isolating what
// rotate buys (§7.1.2's Cannon-vs-SUMMA gap).
func BenchmarkAblationRotate(b *testing.B) {
	cfg := algorithms.MatmulConfig{N: 8192 * 4, Procs: 64, ProcsPerNode: 4, GPU: true}
	for _, alg := range []algorithms.Alg{algorithms.Cannon, algorithms.SUMMA} {
		b.Run(string(alg), func(b *testing.B) {
			var res *legion.Result
			for i := 0; i < b.N; i++ {
				res = runMatmul(b, alg, cfg, sim.LassenGPU(), legion.Options{})
			}
			b.ReportMetric(res.Time*1e3, "ms-simulated")
		})
	}
}

// BenchmarkAblationOverlap compares overlapped (deferred, double-buffered)
// execution against synchronous execution of the same program.
func BenchmarkAblationOverlap(b *testing.B) {
	cfg := algorithms.MatmulConfig{N: 8192 * 2, Procs: 8, ProcsPerNode: 2}
	for _, sync := range []bool{false, true} {
		name := "overlapped"
		if sync {
			name = "synchronous"
		}
		b.Run(name, func(b *testing.B) {
			var res *legion.Result
			for i := 0; i < b.N; i++ {
				res = runMatmul(b, algorithms.SUMMA, cfg, sim.LassenCPU(),
					legion.Options{Synchronous: sync})
			}
			b.ReportMetric(res.Time*1e3, "ms-simulated")
		})
	}
}

// BenchmarkAblationNearestSource compares nearest-valid-copy source
// selection against always fetching from the owner instance.
func BenchmarkAblationNearestSource(b *testing.B) {
	cfg := algorithms.MatmulConfig{N: 8192 * 2, Procs: 16}
	for _, ownerOnly := range []bool{false, true} {
		name := "nearest"
		if ownerOnly {
			name = "owner-only"
		}
		b.Run(name, func(b *testing.B) {
			var res *legion.Result
			for i := 0; i < b.N; i++ {
				res = runMatmul(b, algorithms.SUMMA, cfg, sim.LassenCPU(),
					legion.Options{OwnerOnly: ownerOnly})
			}
			b.ReportMetric(res.Time*1e3, "ms-simulated")
		})
	}
}

// BenchmarkAblationCommGranularity varies the SUMMA chunk size: fewer,
// larger messages against more, smaller ones (§3.3's communicate tradeoff).
func BenchmarkAblationCommGranularity(b *testing.B) {
	const n = 8192
	for _, chunk := range []int{n / 32, n / 8, n / 2} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			var res *legion.Result
			for i := 0; i < b.N; i++ {
				res = runMatmul(b, algorithms.SUMMA,
					algorithms.MatmulConfig{N: n, Procs: 4, ChunkSize: chunk},
					sim.LassenCPU(), legion.Options{})
			}
			b.ReportMetric(float64(chunk), "chunk")
			b.ReportMetric(res.Time*1e3, "ms-simulated")
			b.ReportMetric(float64(res.PeakMemBytes)/1e6, "MB-peak")
		})
	}
}
