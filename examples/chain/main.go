// Chain compiles multi-statement programs into plan DAGs and shows why the
// intermediates should stay distributed. Two workloads:
//
//   - a GEMM chain E = (A*B)*C, where the n x n intermediate D flows from
//     the first SUMMA stage straight into the second without ever being
//     gathered to one processor, and
//   - MTTKRP by way of TTM: A(i,l) = B(i,j,k)*C(j,l)*D(k,l) computed as
//     T(i,j,l) = B(i,j,k)*D(k,l) followed by A(i,l) = T(i,j,l)*C(j,l),
//     the two-kernel factorization whose rank-3 intermediate T is far too
//     large to round-trip through a single node.
//
// Each workload is validated in Real mode against the sequential reference
// interpreter, then simulated at scale to compare the DAG's inter-node
// traffic against the sequential baseline (run stage 1, gather the
// intermediate to the root, scatter it back out for stage 2).
package main

import (
	"context"
	"fmt"
	"log"

	"distal"
	"distal/internal/program"
	"distal/internal/tensor"
)

func main() {
	gemmChain()
	fmt.Println()
	ttmMttkrp()
}

// gemmSched is the SUMMA template for one chain stage on a g x g grid.
func gemmSched(out, lhs, rhs string, g, chunk int) string {
	return fmt.Sprintf("divide(i,io,ii,%d) divide(j,jo,ji,%d) reorder(io,jo,ii,ji) distribute(io,jo) "+
		"split(k,ko,ki,%d) reorder(io,jo,ko,ii,ji,ki) communicate(jo,%s) communicate(ko,%s,%s)",
		g, g, chunk, out, lhs, rhs)
}

func gemmRequest(n, g, chunk int) distal.Request {
	tiled := map[string]string{"A": "xy->xy", "B": "xy->xy", "C": "xy->xy", "D": "xy->xy", "E": "xy->xy"}
	pick := func(names ...string) map[string]string {
		m := map[string]string{}
		for _, s := range names {
			m[s] = tiled[s]
		}
		return m
	}
	return distal.Request{
		Shapes: map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Stmts: []distal.Statement{
			{Stmt: "D(i,j) = A(i,k) * B(k,j)", Formats: pick("A", "B", "D"), Schedule: gemmSched("D", "A", "B", g, n/g)},
			{Stmt: "E(i,j) = D(i,k) * C(k,j)", Formats: pick("D", "C", "E"), Schedule: gemmSched("E", "D", "C", g, n/g)},
		},
	}
}

func gemmChain() {
	fmt.Println("=== GEMM chain: E = (A*B) * C ===")

	// Small validated run on a 2x2 grid: the DAG's output must match the
	// sequential reference interpreter bit for bit in structure and within
	// float tolerance in value.
	const n, g = 64, 2
	sess := distal.NewSession(distal.NewMachine(distal.CPU, g, g))
	req := gemmRequest(n, g, n/g)
	pp, err := sess.CompileProgram(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	tiled := distal.MustFormat("xy->xy")
	a := distal.NewTensor("A", tiled, n, n).FillRandom(1)
	b := distal.NewTensor("B", tiled, n, n).FillRandom(2)
	c := distal.NewTensor("C", tiled, n, n).FillRandom(3)
	pb := pp.Bind(a, b, c)
	if _, err := pb.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	ref := evaluate(req, map[string]*tensor.Dense{"A": a.Data, "B": b.Data, "C": c.Data})
	fmt.Printf("stages %d (repartitions %d), inputs %v, output %s\n",
		pp.Stages(), pp.Repartitions(), pp.Inputs(), pp.Output())
	fmt.Printf("distributed chain matches reference: %v\n",
		pb.Output().Data.EqualWithin(ref["E"], 1e-9))

	// At scale, compare the DAG against the sequential baseline: the same
	// two stages, but with D gathered to the root after stage 1 and
	// scattered back out before stage 2 (what two independent requests
	// would do). The DAG never moves D off its owners.
	fmt.Println("\nsimulated inter-node traffic, DAG vs gather-and-rescatter (4x4 grid):")
	fmt.Printf("%-8s %-14s %-14s %-10s\n", "n", "dag GB", "seq GB", "saved")
	for _, bign := range []int{2048, 4096, 8192} {
		big := distal.NewSession(distal.NewMachine(distal.CPU, 4, 4))
		bp, err := big.CompileProgram(context.Background(), gemmRequest(bign, 4, 256))
		if err != nil {
			log.Fatal(err)
		}
		dag, err := bp.Simulate(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		var seq int64
		for _, sp := range bp.StagePlans() {
			res, err := sp.Simulate(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			seq += res.InterBytes
		}
		// The baseline's handoff: D down to the root and back out.
		for _, dir := range [][2]string{{"xy->xy", "xy->00"}, {"xy->00", "xy->xy"}} {
			bytes, _, err := big.RedistributeCost(
				distal.NewTensor("D", distal.MustFormat(dir[0]), bign, bign),
				distal.MustFormat(dir[1]))
			if err != nil {
				log.Fatal(err)
			}
			seq += bytes
		}
		fmt.Printf("%-8d %-14.3f %-14.3f %.1f%%\n", bign,
			float64(dag.InterBytes)/1e9, float64(seq)/1e9,
			100*(1-float64(dag.InterBytes)/float64(seq)))
	}
}

// ttmMttkrp computes MTTKRP through its TTM factorization. The rank-3
// intermediate T(i,j,l) is the whole point: at scale it dwarfs every other
// tensor in the program, so the DAG's ability to hand it from producer to
// consumer in place is the difference between a working program and a
// root-node OOM.
func ttmMttkrp() {
	fmt.Println("=== MTTKRP via TTM: T(i,j,l) = B(i,j,k)*D(k,l); A(i,l) = T(i,j,l)*C(j,l) ===")

	req := func(n, r, g, chunk int) distal.Request {
		s1 := fmt.Sprintf("divide(i,io,ii,%d) divide(j,jo,ji,%d) reorder(io,jo,ii,ji) distribute(io,jo) "+
			"split(k,ko,ki,%d) reorder(io,jo,ko,ii,ji,ki,l) communicate(jo,T) communicate(ko,B,D)",
			g, g, chunk)
		s2 := fmt.Sprintf("divide(i,io,ii,%d) divide(j,jo,ji,%d) reorder(io,jo,ii,ji) distribute(io,jo) "+
			"communicate(jo,A) communicate(jo,T,C)", g, g)
		return distal.Request{
			Shapes: map[string][]int{"B": {n, n, n}, "C": {n, r}, "D": {n, r}},
			Stmts: []distal.Statement{
				{Stmt: "T(i,j,l) = B(i,j,k) * D(k,l)",
					Formats:  map[string]string{"B": "xyz->xy", "D": "xy->**", "T": "xyz->xy"},
					Schedule: s1},
				{Stmt: "A(i,l) = T(i,j,l) * C(j,l)",
					Formats:  map[string]string{"T": "xyz->xy", "C": "xy->**", "A": "xy->x*"},
					Schedule: s2},
			},
		}
	}

	// Small validated run on a 2x2 grid.
	const n, r, g = 16, 4, 2
	sess := distal.NewSession(distal.NewMachine(distal.CPU, g, g))
	q := req(n, r, g, n/g)
	pp, err := sess.CompileProgram(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	b := distal.NewTensor("B", distal.MustFormat("xyz->xy"), n, n, n).FillRandom(4)
	c := distal.NewTensor("C", distal.MustFormat("xy->**"), n, r).FillRandom(5)
	d := distal.NewTensor("D", distal.MustFormat("xy->**"), n, r).FillRandom(6)
	pb := pp.Bind(b, c, d)
	if _, err := pb.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	ref := evaluate(q, map[string]*tensor.Dense{"B": b.Data, "C": c.Data, "D": d.Data})
	fmt.Printf("stages %d (repartitions %d), inputs %v, output %s\n",
		pp.Stages(), pp.Repartitions(), pp.Inputs(), pp.Output())
	fmt.Printf("distributed TTM-MTTKRP matches reference: %v\n",
		pb.Output().Data.EqualWithin(ref["A"], 1e-9))

	// At scale: the intermediate T holds n^2 r doubles — the DAG's saving is
	// almost exactly the cost of round-tripping it through the root.
	fmt.Println("\nsimulated inter-node traffic, DAG vs gather-and-rescatter (4x4 grid):")
	fmt.Printf("%-8s %-6s %-14s %-14s %-10s\n", "n", "r", "dag GB", "seq GB", "saved")
	for _, bign := range []int{256, 512} {
		const bigr = 32
		big := distal.NewSession(distal.NewMachine(distal.CPU, 4, 4))
		bp, err := big.CompileProgram(context.Background(), req(bign, bigr, 4, bign/4))
		if err != nil {
			log.Fatal(err)
		}
		dag, err := bp.Simulate(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		var seq int64
		for _, sp := range bp.StagePlans() {
			res, err := sp.Simulate(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			seq += res.InterBytes
		}
		// The baseline's handoff: T down to leaf (0,0) and back out.
		for _, dir := range [][2]string{{"xyz->xy", "xyz->00"}, {"xyz->00", "xyz->xy"}} {
			bytes, _, err := big.RedistributeCost(
				distal.NewTensor("T", distal.MustFormat(dir[0]), bign, bign, bigr),
				distal.MustFormat(dir[1]))
			if err != nil {
				log.Fatal(err)
			}
			seq += bytes
		}
		fmt.Printf("%-8d %-6d %-14.3f %-14.3f %.1f%%\n", bign, bigr,
			float64(dag.InterBytes)/1e9, float64(seq)/1e9,
			100*(1-float64(dag.InterBytes)/float64(seq)))
	}
}

// evaluate runs the whole program through the sequential reference
// interpreter and returns every computed tensor.
func evaluate(req distal.Request, leaves map[string]*tensor.Dense) map[string]*tensor.Dense {
	stmts := make([]program.Statement, len(req.Stmts))
	for i, s := range req.Stmts {
		stmts[i] = program.Statement{Stmt: s.Stmt}
	}
	p, err := program.Parse(stmts, req.Shapes)
	if err != nil {
		log.Fatal(err)
	}
	out, err := program.Evaluate(p, leaves)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
