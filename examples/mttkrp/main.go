// Mttkrp runs the matricized-tensor-times-Khatri-Rao-product kernel
// A(i,l) = B(i,j,k)*C(j,l)*D(k,l) with the algorithm of Ballard et al. that
// the paper implements in §7.2: the 3-tensor stays in place on a processor
// cube, the factor matrices are partitioned along their contracted modes
// and replicated elsewhere, and partial results reduce into A's owners. The
// example validates the distributed result and then weak-scales the kernel
// on the simulated machine.
package main

import (
	"fmt"
	"log"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
)

func build(i, j, k, l, g int, seed bool) (*distal.Computation, *distal.Tensor) {
	sess := distal.NewSession(distal.NewMachine(distal.CPU, g, g, g))
	A := distal.NewTensor("A", distal.MustFormat("ab->a00"), i, l)
	B := distal.NewTensor("B", distal.MustFormat("abc->abc"), i, j, k)
	C := distal.NewTensor("C", distal.MustFormat("ab->*a*"), j, l)
	D := distal.NewTensor("D", distal.MustFormat("ab->**a"), k, l)
	if seed {
		A.Zero()
		B.FillRandom(1)
		C.FillRandom(2)
		D.FillRandom(3)
	}
	comp := sess.MustDefine("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)", A, B, C, D)
	comp.Schedule().
		Divide("i", "io", "ii", g).Divide("j", "jo", "ji", g).Divide("k", "ko", "ki", g).
		Reorder("io", "jo", "ko", "ii", "ji", "ki", "l").
		Distribute("io", "jo", "ko").
		Communicate("ko", "A", "B", "C", "D")
	return comp, A
}

func main() {
	// Small validated run.
	comp, A := build(8, 8, 8, 4, 2, true)
	prog, err := comp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prog.Run(distal.LassenCPU()); err != nil {
		log.Fatal(err)
	}
	inputs := map[string]*tensor.Dense{}
	for _, name := range []string{"B", "C", "D"} {
		inputs[name] = compTensor(comp, name)
	}
	want, err := ir.Evaluate(comp.Stmt, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed MTTKRP matches reference: %v\n", A.Data.EqualWithin(want, 1e-9))

	// Simulated weak scaling (per-processor work constant).
	fmt.Println("\nweak scaling on the simulated Lassen CPU machine:")
	fmt.Printf("%-8s %-12s %-14s %-12s\n", "procs", "dim", "GFLOP/s", "comm GB")
	for _, g := range []int{1, 2, 4} {
		dim := 256 * g
		c, _ := build(dim, dim, dim, 32, g, false)
		p, err := c.Compile()
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Simulate(distal.LassenCPU())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12d %-14.1f %-12.3f\n",
			g*g*g, dim, res.GFlopsPerSec(), float64(res.InterBytes)/1e9)
	}
}

func compTensor(c *distal.Computation, name string) *tensor.Dense {
	for _, n := range c.Stmt.TensorNames() {
		if n == name {
			// Tensors were registered at Define time; reach them through
			// the computation's accessor.
			return c.TensorData(name)
		}
	}
	return nil
}
