// Cannon demonstrates the rotate scheduling command: it builds Cannon's
// algorithm (Fig. 9 / Fig. 11 of the paper) on a 3x3 grid and prints the
// communication pattern of the B matrix at each step, reproducing Figure 12
// — every processor reads B(io, (ko+io+jo) mod 3) and receives it from a
// neighbor, never from a broadcast hotspot.
package main

import (
	"fmt"
	"log"

	"distal"
)

func main() {
	const n, g = 24, 3
	m := distal.NewMachine(distal.CPU, g, g)
	sess := distal.NewSession(m)
	f := distal.Tiled(2)
	A := distal.NewTensor("A", f, n, n).Zero()
	B := distal.NewTensor("B", f, n, n).FillRandom(1)
	C := distal.NewTensor("C", f, n, n).FillRandom(2)

	comp, err := sess.Define("A(i,j) = B(i,k) * C(k,j)", A, B, C)
	if err != nil {
		log.Fatal(err)
	}
	comp.Schedule().
		Divide("i", "io", "ii", g).Divide("j", "jo", "ji", g).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Divide("k", "ko", "ki", g).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Rotate("ko", []string{"io", "jo"}, "kos").
		Communicate("jo", "A").
		Communicate("kos", "B", "C")

	prog, err := comp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Execute(distal.LassenCPU(), distal.WithTrace())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("B-tile needed by each processor at each rotated step kos")
	fmt.Println("(tile indices match Figure 12: B(io, (kos+io+jo) mod 3)):")
	for kos := 0; kos < g; kos++ {
		fmt.Printf("kos = %d\n", kos)
		for io := 0; io < g; io++ {
			for jo := 0; jo < g; jo++ {
				fmt.Printf("  B(%d,%d)", io, (kos+io+jo)%g)
			}
			fmt.Println()
		}
	}

	fmt.Printf("\ntrace: %d copies; per-step sources for region B:\n", len(res.Trace))
	distal.SortTrace(res.Trace)
	shown := 0
	for _, c := range res.Trace {
		if c.Region != "B" || shown >= 9 {
			continue
		}
		fmt.Printf("  %s: B%s proc %d -> proc %d\n", c.Launch, c.Rect, c.Src, c.Dst)
		shown++
	}
	fmt.Printf("\nsimulated time %.6f s, inter-node %.1f KB\n",
		res.Time, float64(res.InterBytes)/1e3)
}
