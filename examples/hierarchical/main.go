// Hierarchical demonstrates multi-GPU nodes: the machine is a 2x2 grid of
// nodes, each with four GPUs (the Lassen organization of §3.1), the data
// distribution is hierarchical ("xy->xy; xy->x": 2-D tiles per node,
// row-split across each node's GPUs), and the schedule distributes loops at
// both levels. Communication between GPUs of one node travels over NVLink;
// between nodes over the InfiniBand NIC — the simulated statistics show the
// split.
package main

import (
	"fmt"
	"log"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
)

func main() {
	const n = 64
	const gx, gy, gpus = 2, 2, 4

	// A flat grid of GPUs whose consecutive groups of four share a node.
	m := distal.NewMachine(distal.GPU, gx, gy*gpus).WithProcsPerNode(gpus)
	sess := distal.NewSession(m, distal.WithParams(distal.LassenGPU()))

	// Tiles over nodes, rows over the GPUs within a node: expressed as a
	// single-level format over the flattened grid (x tiles, y split 8-ways).
	f := distal.MustFormat("xy->xy")
	A := distal.NewTensor("A", f, n, n).Zero()
	B := distal.NewTensor("B", f, n, n).FillRandom(1)
	C := distal.NewTensor("C", f, n, n).FillRandom(2)

	comp := sess.MustDefine("A(i,j) = B(i,k) * C(k,j)", A, B, C)
	comp.Schedule().
		Divide("i", "io", "ii", gx).
		Divide("j", "jo", "ji", gy*gpus).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Split("k", "ko", "ki", n/gx).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C")

	prog, err := comp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(distal.LassenGPU())
	if err != nil {
		log.Fatal(err)
	}

	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %d nodes x %d GPUs\n", gx*gy, gpus)
	fmt.Printf("result matches reference: %v\n", A.Data.EqualWithin(want, 1e-9))
	fmt.Printf("NVLink (intra-node) traffic:     %8.1f KB\n", float64(res.IntraBytes)/1e3)
	fmt.Printf("InfiniBand (inter-node) traffic: %8.1f KB\n", float64(res.InterBytes)/1e3)
	fmt.Printf("simulated time: %.6f s\n", res.Time)
}
