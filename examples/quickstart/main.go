// Quickstart reproduces Figure 2 of the DISTAL paper through the session
// API: a matrix multiplication scheduled as the SUMMA algorithm on a 2-D
// processor grid, executed on real data, validated against the sequential
// reference, and timed on the simulated Lassen CPU cost model. It then
// shows the service-shaped side of the API: the same workload as a pure
// data Request whose repeated execution hits the session's plan cache.
package main

import (
	"context"
	"fmt"
	"log"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
)

func main() {
	const n, gx, gy = 64, 2, 2

	// A session owns the target machine — a 2-D grid of processors
	// (Fig. 2 line 4) — plus the default cost model and the plan cache.
	m := distal.NewMachine(distal.CPU, gx, gy)
	sess := distal.NewSession(m, distal.WithParams(distal.LassenCPU()))

	// A tensor's format describes how it is distributed onto m: a
	// two-dimensional tiling (Fig. 2 lines 6-12).
	f := distal.Tiled(2)

	// Declare three dense matrices with the same format (line 15).
	A := distal.NewTensor("A", f, n, n).Zero()
	B := distal.NewTensor("B", f, n, n).FillRandom(1)
	C := distal.NewTensor("C", f, n, n).FillRandom(2)

	// Declare the computation (lines 18-19).
	comp, err := sess.Define("A(i,j) = B(i,k) * C(k,j)", A, B, C)
	if err != nil {
		log.Fatal(err)
	}

	// Map the computation onto m via scheduling commands (lines 22-40).
	comp.Schedule().
		Divide("i", "io", "ii", gx).Divide("j", "jo", "ji", gy).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Split("k", "ko", "ki", 16).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C").
		Substitute([]string{"ii", "ji", "ki"}, "BLAS.GEMM")

	prog, err := comp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(distal.LassenCPU())
	if err != nil {
		log.Fatal(err)
	}

	// Validate against the sequential reference evaluator.
	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result matches reference: %v (max abs diff %.2e)\n",
		A.Data.EqualWithin(want, 1e-9), A.Data.MaxAbsDiff(want))
	fmt.Printf("simulated time:   %.6f s\n", res.Time)
	fmt.Printf("flops executed:   %.0f\n", res.Flops)
	fmt.Printf("copies scheduled: %d (%.1f KB inter-node)\n",
		res.Copies, float64(res.InterBytes)/1e3)

	// The schedule is data: it serializes to command text ...
	schedText := comp.ScheduleText()
	fmt.Printf("\nschedule text:\n  %s\n", schedText)

	// ... so the whole workload travels as a Request — statement, shapes,
	// formats, and schedule, all text. Compiling it yields an immutable
	// Plan: compile once, execute many times. The second Compile resolves
	// from the plan cache without re-parsing anything.
	ctx := context.Background()
	req := distal.Request{
		Stmt:     "A(i,j) = B(i,k) * C(k,j)",
		Shapes:   map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Formats:  map[string]string{"A": "xy->xy", "B": "xy->xy", "C": "xy->xy"},
		Schedule: schedText,
	}
	plan, err := sess.Compile(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := plan.Simulate(ctx); err != nil {
		log.Fatal(err)
	}
	again, err := sess.Compile(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan %s...: cached on recompile: %v\n", plan.Key()[:12], again.Stats().Cached)
	st := sess.CacheStats()
	fmt.Printf("plan cache: %d hit, %d miss\n", st.Hits, st.Misses)

	// The same cached plan also runs on real data, bound per execution:
	// the plan stays immutable and shareable.
	A2 := distal.NewTensor("A", f, n, n).Zero()
	B2 := distal.NewTensor("B", f, n, n).FillRandom(7)
	C2 := distal.NewTensor("C", f, n, n).FillRandom(8)
	binding := plan.Bind(A2, B2, C2)
	if _, err := binding.Run(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan-bound real run produced %d values\n", binding.Output().Data.Size())
}
