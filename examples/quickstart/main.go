// Quickstart reproduces Figure 2 of the DISTAL paper through the public
// API: a matrix multiplication scheduled as the SUMMA algorithm on a 2-D
// processor grid, executed on real data, validated against the sequential
// reference, and timed on the simulated Lassen CPU cost model.
package main

import (
	"fmt"
	"log"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
)

func main() {
	const n, gx, gy = 64, 2, 2

	// Define the target machine m as a 2D grid of processors (Fig. 2 line 4).
	m := distal.NewMachine(distal.CPU, gx, gy)

	// A tensor's format describes how it is distributed onto m: a
	// two-dimensional tiling (Fig. 2 lines 6-12).
	f := distal.Tiled(2)

	// Declare three dense matrices with the same format (line 15).
	A := distal.NewTensor("A", f, n, n).Zero()
	B := distal.NewTensor("B", f, n, n).FillRandom(1)
	C := distal.NewTensor("C", f, n, n).FillRandom(2)

	// Declare the computation (lines 18-19).
	comp, err := distal.Define("A(i,j) = B(i,k) * C(k,j)", m, A, B, C)
	if err != nil {
		log.Fatal(err)
	}

	// Map the computation onto m via scheduling commands (lines 22-40).
	comp.Schedule().
		Divide("i", "io", "ii", gx).Divide("j", "jo", "ji", gy).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Split("k", "ko", "ki", 16).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C").
		Substitute([]string{"ii", "ji", "ki"}, "BLAS.GEMM")

	prog, err := comp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(distal.LassenCPU())
	if err != nil {
		log.Fatal(err)
	}

	// Validate against the sequential reference evaluator.
	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result matches reference: %v (max abs diff %.2e)\n",
		A.Data.EqualWithin(want, 1e-9), A.Data.MaxAbsDiff(want))
	fmt.Printf("simulated time:   %.6f s\n", res.Time)
	fmt.Printf("flops executed:   %.0f\n", res.Flops)
	fmt.Printf("copies scheduled: %d (%.1f KB inter-node)\n",
		res.Copies, float64(res.InterBytes)/1e3)
}
