// Johnson3d runs Johnson's 3D matrix-multiplication algorithm (§4.4): the
// input matrices are fixed to faces of a processor cube with tensor
// distribution notation (xy->xy0, xz->x0z, zy->0yz), all three loops are
// distributed, and partial products reduce into the owners of A. The
// example validates the result and contrasts the communication volume with
// SUMMA on the same processor count.
package main

import (
	"fmt"
	"log"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
)

func run2D(n int) (*distal.Result, error) {
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 4, 2))
	f := distal.Tiled(2)
	A := distal.NewTensor("A", f, n, n).Zero()
	B := distal.NewTensor("B", f, n, n).FillRandom(1)
	C := distal.NewTensor("C", f, n, n).FillRandom(2)
	comp := sess.MustDefine("A(i,j) = B(i,k) * C(k,j)", A, B, C)
	comp.Schedule().
		Divide("i", "io", "ii", 4).Divide("j", "jo", "ji", 2).
		Reorder("io", "jo", "ii", "ji").Distribute("io", "jo").
		Split("k", "ko", "ki", n/4).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Communicate("jo", "A").Communicate("ko", "B", "C")
	prog, err := comp.Compile()
	if err != nil {
		return nil, err
	}
	return prog.Simulate(distal.LassenCPU())
}

func main() {
	const n, g = 32, 2 // 2x2x2 processor cube

	sess := distal.NewSession(distal.NewMachine(distal.CPU, g, g, g))
	A := distal.NewTensor("A", distal.MustFormat("xy->xy0"), n, n).Zero()
	B := distal.NewTensor("B", distal.MustFormat("xz->x0z"), n, n).FillRandom(1)
	C := distal.NewTensor("C", distal.MustFormat("zy->0yz"), n, n).FillRandom(2)

	comp := sess.MustDefine("A(i,j) = B(i,k) * C(k,j)", A, B, C)
	comp.Schedule().
		Divide("i", "io", "ii", g).Divide("j", "jo", "ji", g).Divide("k", "ko", "ki", g).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Distribute("io", "jo", "ko").
		Communicate("ko", "A", "B", "C")

	prog, err := comp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(distal.LassenCPU())
	if err != nil {
		log.Fatal(err)
	}

	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Johnson's on a %dx%dx%d cube, n=%d\n", g, g, g, n)
	fmt.Printf("result matches reference: %v\n", A.Data.EqualWithin(want, 1e-9))
	fmt.Printf("communication: %.1f KB moved in %d copies\n",
		float64(res.InterBytes+res.IntraBytes)/1e3, res.Copies)

	summa, err := run2D(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUMMA on 8 processors moves %.1f KB in %d copies\n",
		float64(summa.InterBytes+summa.IntraBytes)/1e3, summa.Copies)
	fmt.Println("(3D algorithms trade replicated memory for less communication)")
}
