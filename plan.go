package distal

import (
	"context"
	"fmt"
	"time"

	"distal/internal/legion"
	"distal/internal/tensor"
)

// planData is the immutable payload a Plan wraps and the plan cache stores:
// the compiled runtime program plus the descriptive metadata a service wants
// to report (schedule text, concrete index notation, program size). One
// planData is shared by every Plan handle resolved from the cache; nothing
// in it is mutated after compilation.
type planData struct {
	prog         *legion.Program
	scheduleText string
	notation     string
	output       string   // LHS tensor/region name
	tensorNames  []string // statement order: LHS first, then RHS left to right
	launches     int
	points       int // total index-launch domain points
}

func newPlanData(prog *legion.Program, scheduleText, notation, output string, tensorNames []string) *planData {
	pd := &planData{
		prog:         prog,
		scheduleText: scheduleText,
		notation:     notation,
		output:       output,
		tensorNames:  tensorNames,
		launches:     len(prog.Launches),
	}
	for _, l := range prog.Launches {
		pd.points += l.Domain.Size()
	}
	return pd
}

// CompileStats describes how one Compile call was satisfied.
type CompileStats struct {
	// Cached reports the plan was served without running the compiler:
	// from the plan cache, the request memo, or a shared in-flight compile.
	Cached bool
	// Shared reports the plan came from a concurrent identical Compile call
	// (singleflight): this caller waited for the leader instead of
	// compiling. Shared implies Cached.
	Shared bool
	// CompileTime is the wall time the compiler ran for this call; zero
	// when Cached.
	CompileTime time.Duration
	// Launches and Points are the program's size: index launches and total
	// launch-domain points.
	Launches int
	Points   int
}

// Plan is an immutable compiled workload: the unit a service compiles once,
// caches, and executes many times. A Plan never holds data — Simulate walks
// the task graph under the cost model, and Bind attaches caller-owned
// tensors per execution — so one Plan is safe for concurrent use from any
// number of goroutines.
//
// The lifecycle is Compile → (Simulate | Bind.Run)*:
//
//	plan, err := sess.Compile(ctx, req)
//	res, err := plan.Simulate(ctx)                  // analysis, no data
//	res, err := plan.Bind(a, b, c).Run(ctx)        // real execution
type Plan struct {
	sess  *Session
	key   string
	data  *planData
	stats CompileStats
}

// Key returns the plan's cache key: a content hash over statement, shapes,
// formats, schedule text, and machine (see core.PlanKey). Two requests with
// equal keys compile to the same program.
func (p *Plan) Key() string { return p.key }

// ScheduleText returns the plan's schedule in serializable command form.
func (p *Plan) ScheduleText() string { return p.data.scheduleText }

// Notation returns the concrete index notation of the scheduled statement
// (the loop structure the compiler lowered, §5.1).
func (p *Plan) Notation() string { return p.data.notation }

// Stats reports how this Compile call was satisfied and the program's size.
func (p *Plan) Stats() CompileStats { return p.stats }

// Tensors returns the names of the statement's tensors in statement order
// (LHS first, then RHS tensors left to right, duplicates dropped) — the
// canonical order wire protocols move tensor data in. The caller must not
// mutate the returned slice.
func (p *Plan) Tensors() []string { return p.data.tensorNames }

// Output returns the name of the statement's LHS tensor: the tensor a real
// execution computes into.
func (p *Plan) Output() string { return p.data.output }

// Shape returns the compiled shape of the named tensor, or nil when the
// plan has no tensor of that name.
func (p *Plan) Shape(name string) []int {
	for _, r := range p.data.prog.Regions {
		if r.Name == name {
			return r.Shape
		}
	}
	return nil
}

// Program exposes the plan's compiled program through the legacy Program
// handle, for callers still on the pre-Plan execution surface.
func (p *Plan) Program() *Program { return &Program{P: p.data.prog} }

func (p *Plan) execParams() Params {
	if p.sess != nil {
		return p.sess.params
	}
	return LassenCPU()
}

// Simulate executes the plan's task graph without data under the session's
// cost model (override with WithCostModel), returning simulated time,
// communication, and memory statistics. It aborts with KindCanceled at the
// runtime's next cancellation checkpoint once ctx is done.
func (p *Plan) Simulate(ctx context.Context, opts ...ExecOption) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "simulate", err)
	}
	res, err := legion.RunContext(ctx, p.data.prog, legion.NewOptions(p.execParams(), opts...))
	if err != nil {
		return nil, wrapErr(KindExec, "simulate", err)
	}
	return res, nil
}

// Bind attaches real data to the plan for one or more executions. Every
// tensor of the statement must be bound with data (allocate with Zero,
// FillRandom, or Bind), shapes must match the compiled plan, and the
// binding lives entirely in the returned Binding — the shared plan is not
// touched, so concurrent executions on different data do not interfere.
// Binding errors surface at Run.
func (p *Plan) Bind(tensors ...*Tensor) *Binding {
	b := &Binding{plan: p, data: map[string]*tensor.Dense{}}
	regions := map[string][]int{}
	for _, r := range p.data.prog.Regions {
		regions[r.Name] = r.Shape
	}
	for _, t := range tensors {
		shape, ok := regions[t.Name]
		if !ok {
			b.err = wrapErr(KindExec, "bind", fmt.Errorf("plan has no tensor %s", t.Name))
			return b
		}
		if t.Data == nil {
			b.err = wrapErr(KindExec, "bind", fmt.Errorf("tensor %s has no data (use Zero, FillRandom, or Bind)", t.Name))
			return b
		}
		if len(t.Shape) != len(shape) {
			b.err = wrapErr(KindExec, "bind", fmt.Errorf("tensor %s has rank %d, plan wants %d", t.Name, len(t.Shape), len(shape)))
			return b
		}
		for d := range shape {
			if t.Shape[d] != shape[d] {
				b.err = wrapErr(KindExec, "bind", fmt.Errorf("tensor %s has shape %v, plan wants %v", t.Name, t.Shape, shape))
				return b
			}
		}
		b.data[t.Name] = t.Data
		if t.Name == p.data.output {
			b.out = t
		}
	}
	for name := range regions {
		if _, ok := b.data[name]; !ok {
			b.err = wrapErr(KindExec, "bind", fmt.Errorf("no data bound for tensor %s", name))
			return b
		}
	}
	return b
}

// Binding is a Plan with real data attached: the executable form of one
// Real-mode workload. A Binding is cheap; make one per data set.
type Binding struct {
	plan *Plan
	data map[string]*tensor.Dense
	out  *Tensor
	err  error
}

// Output returns the bound output tensor (after Run it holds the result),
// or nil when the binding failed.
func (b *Binding) Output() *Tensor {
	if b.err != nil {
		return nil
	}
	return b.out
}

// Run executes the plan on the bound data and returns the simulated timing
// alongside: leaf kernels compute on the tensors, reductions flush into the
// output, and the task graph is priced under the session's cost model. It
// aborts with KindCanceled at the runtime's next checkpoint once ctx is
// done (the bound output is then in an unspecified partial state).
func (b *Binding) Run(ctx context.Context, opts ...ExecOption) (*Result, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "run", err)
	}
	mods := append([]ExecOption{WithReal(), legion.WithData(b.data)}, opts...)
	res, err := legion.RunContext(ctx, b.plan.data.prog, legion.NewOptions(b.plan.execParams(), mods...))
	if err != nil {
		return nil, wrapErr(KindExec, "run", err)
	}
	return res, nil
}

// WithCostModel overrides the cost model of one execution (the session's
// default otherwise).
func WithCostModel(p Params) ExecOption { return legion.WithParams(p) }
