package distal

import (
	"fmt"

	"distal/internal/ir"
	"distal/internal/schedule"
)

// autoScheduleCommands derives the owner-computes schedule for stmt on a
// machine with the given grid, as serializable scheduling commands: the
// output tensor's index variables are tiled over the machine grid (one per
// grid dimension, in order) and every tensor's communication is aggregated
// at the task level.
func autoScheduleCommands(stmt *ir.Assignment, grid []int) (schedule.Commands, error) {
	lhs := stmt.LHS.Indices
	if len(lhs) < len(grid) {
		return nil, fmt.Errorf("distal: AutoSchedule needs >= %d output variables, statement has %d",
			len(grid), len(lhs))
	}
	var cs schedule.Commands
	var dist, local []string
	for d := range grid {
		v := lhs[d].Name
		dist = append(dist, v+"_o")
		local = append(local, v+"_i")
		cs = append(cs, schedule.Command{Op: "divide", Args: []string{v, v + "_o", v + "_i", fmt.Sprint(grid[d])}})
	}
	cs = append(cs,
		schedule.Command{Op: "reorder", Args: append(append([]string{}, dist...), local...)},
		schedule.Command{Op: "distribute", Args: dist},
		schedule.Command{Op: "communicate", Args: append([]string{dist[len(dist)-1]}, stmt.TensorNames()...)},
	)
	return cs, nil
}

// AutoSchedule derives a distribution schedule automatically, a first cut
// of the auto-scheduling direction the paper lists as future work (§9). The
// heuristic is owner-computes: the output tensor's index variables are
// tiled over the machine grid (one per grid dimension, in order) and every
// tensor's communication is aggregated at the task level. For computations
// whose data distributions align with the output tiling (TTV, TTM,
// element-wise kernels) this yields communication-free schedules; for
// contractions it yields a broadcast-style schedule comparable to SUMMA
// with one sequential step.
//
// The derived schedule is applied as ordinary scheduling commands, so it
// serializes through ScheduleText like a hand-written one. AutoSchedule
// must be called before any manual scheduling command and returns an error
// if the output has fewer index variables than the machine has grid
// dimensions.
func (c *Computation) AutoSchedule() error {
	cs, err := autoScheduleCommands(c.Stmt, c.Machine.M.LeafGrid().Dims)
	if err != nil {
		return err
	}
	return c.sched.Apply(cs).Err()
}
