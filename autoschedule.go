package distal

import "fmt"

// AutoSchedule derives a distribution schedule automatically, a first cut
// of the auto-scheduling direction the paper lists as future work (§9). The
// heuristic is owner-computes: the output tensor's index variables are
// tiled over the machine grid (one per grid dimension, in order) and every
// tensor's communication is aggregated at the task level. For computations
// whose data distributions align with the output tiling (TTV, TTM,
// element-wise kernels) this yields communication-free schedules; for
// contractions it yields a broadcast-style schedule comparable to SUMMA
// with one sequential step.
//
// AutoSchedule must be called before any manual scheduling command and
// returns an error if the output has fewer index variables than the machine
// has grid dimensions.
func (c *Computation) AutoSchedule() error {
	grid := c.Machine.M.LeafGrid().Dims
	lhs := c.Stmt.LHS.Indices
	if len(lhs) < len(grid) {
		return fmt.Errorf("distal: AutoSchedule needs >= %d output variables, statement has %d",
			len(grid), len(lhs))
	}
	var dist, local []string
	for d := range grid {
		v := lhs[d].Name
		dist = append(dist, v+"_o")
		local = append(local, v+"_i")
		c.sched.Divide(v, v+"_o", v+"_i", grid[d])
	}
	c.sched.Reorder(append(append([]string{}, dist...), local...)...)
	c.sched.Distribute(dist...)
	c.sched.Communicate(dist[len(dist)-1], c.Stmt.TensorNames()...)
	return c.sched.Err()
}
