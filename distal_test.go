package distal

import (
	"testing"

	"distal/internal/ir"
	"distal/internal/tensor"
)

// TestFigure2Quickstart reproduces the paper's Figure 2 program (SUMMA on a
// processor grid) through the public API and validates the result.
func TestFigure2Quickstart(t *testing.T) {
	const n, gx, gy = 8, 2, 2
	m := NewMachine(CPU, gx, gy)
	f := Tiled(2)
	A := NewTensor("A", f, n, n).Zero()
	B := NewTensor("B", f, n, n).FillRandom(1)
	C := NewTensor("C", f, n, n).FillRandom(2)
	comp := MustDefine("A(i,j) = B(i,k) * C(k,j)", m, A, B, C)
	comp.Schedule().
		Divide("i", "io", "ii", gx).Divide("j", "jo", "ji", gy).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Split("k", "ko", "ki", 4).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C").
		Substitute([]string{"ii", "ji", "ki"}, "BLAS.GEMM")
	prog, err := comp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Output().Data.EqualWithin(want, 1e-9) {
		t.Fatal("Figure 2 program produced a wrong product")
	}
	if res.Flops != 2*n*n*n {
		t.Fatalf("flops = %v, want %v", res.Flops, 2*n*n*n)
	}
}

func TestDefineErrors(t *testing.T) {
	m := NewMachine(CPU, 2)
	if _, err := Define("A(i) = B(i", m); err == nil {
		t.Fatal("parse error should surface")
	}
	A := NewTensor("A", MustFormat("x->x"), 4)
	if _, err := Define("A(i) = B(i)", m, A); err == nil {
		t.Fatal("missing tensor should surface")
	}
	B := NewTensor("B", MustFormat("x->x"), 5)
	if _, err := Define("A(i) = B(i)", m, A, B); err == nil {
		t.Fatal("shape mismatch should surface")
	}
}

func TestScheduleErrorSurfacesAtCompile(t *testing.T) {
	m := NewMachine(CPU, 2)
	f := MustFormat("x->x")
	A := NewTensor("A", f, 4).Zero()
	B := NewTensor("B", f, 4).FillRandom(1)
	comp := MustDefine("A(i) = B(i)", m, A, B)
	comp.Schedule().Divide("nope", "a", "b", 2)
	if _, err := comp.Compile(); err == nil {
		t.Fatal("schedule error should surface at Compile")
	}
}

func TestSimulateWithoutData(t *testing.T) {
	m := NewMachine(CPU, 4)
	f := MustFormat("xy->x")
	A := NewTensor("A", f, 1024, 1024)
	B := NewTensor("B", f, 1024, 1024)
	comp := MustDefine("A(i,j) = B(i,j)", m, A, B)
	comp.Schedule().
		Divide("i", "io", "ii", 4).
		Reorder("io", "ii", "j").
		Distribute("io").
		Communicate("io", "A", "B")
	prog, err := comp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Simulate(LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies != 0 {
		t.Fatalf("aligned copy kernel should not communicate, got %d", res.Copies)
	}
	if res.Time <= 0 {
		t.Fatal("expected positive simulated time")
	}
}

func TestMachineAccessors(t *testing.T) {
	m := NewMachine(GPU, 4, 4).WithProcsPerNode(4)
	if m.Processors() != 16 {
		t.Fatalf("processors = %d", m.Processors())
	}
	if m.M.Nodes() != 4 {
		t.Fatalf("nodes = %d", m.M.Nodes())
	}
	g := m.Grid()
	if len(g) != 2 || g[0] != 4 {
		t.Fatalf("grid = %v", g)
	}
}

func TestTiledFormatRanks(t *testing.T) {
	for rank := 1; rank <= 4; rank++ {
		f := Tiled(rank)
		if got := len(f.Placement.Levels[0].TensorDims); got != rank {
			t.Fatalf("Tiled(%d) has %d dims", rank, got)
		}
	}
}
