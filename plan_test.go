package distal

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distal/internal/ir"
	"distal/internal/tensor"
)

// bigRequest is a request whose compile and simulate both take tens of
// milliseconds (a 32-launch SUMMA pipeline over a 32x32 launch domain), so
// a context canceled 2ms in is observed by the periodic checkpoints well
// before the work finishes — not just by the entry checks.
func bigRequest() Request {
	const n = 2048
	return Request{
		Stmt: gemmStmt,
		Shapes: map[string][]int{
			"A": {n, n}, "B": {n, n}, "C": {n, n},
		},
		Schedule: "divide(i,io,ii,32) divide(j,jo,ji,32) reorder(io,jo,ii,ji) " +
			"distribute(io,jo) split(k,ko,ki,64) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(jo,A) communicate(ko,B,C)",
	}
}

// TestPlanBindRun: the Plan lifecycle end to end — a data-free cached plan
// binds caller-owned tensors per execution and produces the reference
// result, and a second binding of different data through the same shared
// plan computes independently.
func TestPlanBindRun(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(NewMachine(CPU, 2, 2))
	plan, err := sess.Compile(ctx, gemmRequest(16))
	if err != nil {
		t.Fatal(err)
	}

	f := MustFormat("xy->xy")
	runOnce := func(seed int64) *tensor.Dense {
		A := NewTensor("A", f, 16, 16).Zero()
		B := NewTensor("B", f, 16, 16).FillRandom(seed)
		C := NewTensor("C", f, 16, 16).FillRandom(seed + 1)
		b := plan.Bind(A, B, C)
		res, err := b.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Time <= 0 || res.Flops <= 0 {
			t.Fatalf("implausible result: %+v", res)
		}
		stmt, err := ir.Parse(gemmStmt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ir.Evaluate(stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
		if err != nil {
			t.Fatal(err)
		}
		out := b.Output()
		if out == nil || out.Data == nil {
			t.Fatal("binding lost its output tensor")
		}
		if !out.Data.EqualWithin(want, 1e-9) {
			t.Fatalf("seed %d: plan-bound run produced a wrong product", seed)
		}
		return out.Data
	}
	r1 := runOnce(1)
	r2 := runOnce(42)
	if r1.EqualWithin(r2, 1e-9) {
		t.Fatal("different bound data produced identical results: bindings are not per-execution")
	}
	// The real-mode runs rode on the single cached plan.
	if st := sess.CacheStats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want one compile for the shared plan", st)
	}
}

// TestPlanBindRunConcurrent: many goroutines run real-mode executions of
// one shared cached plan on private data (run under -race).
func TestPlanBindRunConcurrent(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(NewMachine(CPU, 2, 2))
	plan, err := sess.Compile(ctx, gemmRequest(16))
	if err != nil {
		t.Fatal(err)
	}
	f := MustFormat("xy->xy")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			A := NewTensor("A", f, 16, 16).Zero()
			B := NewTensor("B", f, 16, 16).FillRandom(seed)
			C := NewTensor("C", f, 16, 16).FillRandom(seed + 1)
			if _, err := plan.Bind(A, B, C).Run(ctx); err != nil {
				errs <- err
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPlanBindErrors(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(NewMachine(CPU, 2, 2))
	plan, err := sess.Compile(ctx, gemmRequest(16))
	if err != nil {
		t.Fatal(err)
	}
	f := MustFormat("xy->xy")
	A := NewTensor("A", f, 16, 16).Zero()
	B := NewTensor("B", f, 16, 16).FillRandom(1)
	C := NewTensor("C", f, 16, 16).FillRandom(2)
	cases := map[string]*Binding{
		"missing tensor": plan.Bind(A, B),
		"unknown tensor": plan.Bind(A, B, C, NewTensor("D", f, 16, 16).Zero()),
		"no data":        plan.Bind(A, B, NewTensor("C", f, 16, 16)),
		"wrong shape":    plan.Bind(A, B, NewTensor("C", f, 8, 8).Zero()),
	}
	for name, b := range cases {
		_, err := b.Run(ctx)
		if err == nil {
			t.Errorf("%s: Run succeeded, want error", name)
			continue
		}
		if KindOf(err) != KindExec {
			t.Errorf("%s: kind = %v, want KindExec (err: %v)", name, KindOf(err), err)
		}
	}
}

func TestErrorKinds(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(NewMachine(CPU, 2, 2))
	shapes := map[string][]int{"A": {8, 8}, "B": {8, 8}, "C": {8, 8}}
	cases := []struct {
		name string
		req  Request
		kind ErrKind
	}{
		{"parse", Request{Stmt: "A(i,j) ="}, KindParse},
		{"missing shape", Request{Stmt: gemmStmt, Shapes: map[string][]int{"A": {8, 8}}}, KindParse},
		{"bad format", Request{Stmt: gemmStmt, Shapes: shapes, Formats: map[string]string{"A": "xy->>xy"}}, KindParse},
		{"bad schedule", Request{Stmt: gemmStmt, Shapes: shapes, Schedule: "divide(i,io,ii)"}, KindSchedule},
		{"unknown variable", Request{Stmt: gemmStmt, Shapes: shapes, Schedule: "divide(zz,io,ii,2)"}, KindSchedule},
	}
	for _, c := range cases {
		_, err := sess.Compile(ctx, c.req)
		if err == nil {
			t.Errorf("%s: Compile succeeded, want error", c.name)
			continue
		}
		if got := KindOf(err); got != c.kind {
			t.Errorf("%s: kind = %v, want %v (err: %v)", c.name, got, c.kind, err)
		}
		var de *Error
		if !errors.As(err, &de) {
			t.Errorf("%s: error %v is not a *distal.Error", c.name, err)
		}
		if !errors.Is(err, &Error{Kind: c.kind}) {
			t.Errorf("%s: errors.Is against kind sentinel failed", c.name)
		}
	}
}

// pollCanceledCtx is a context that reports cancellation starting at its
// n-th Err() poll: a deterministic way to land a cancellation between the
// entry check and completion, exercising the periodic checkpoints without
// racing a timer against the work.
type pollCanceledCtx struct {
	context.Context
	polls     atomic.Int64
	threshold int64
	once      sync.Once
	done      chan struct{}
}

func cancelAfterPolls(n int64) *pollCanceledCtx {
	return &pollCanceledCtx{Context: context.Background(), threshold: n, done: make(chan struct{})}
}

func (c *pollCanceledCtx) Err() error {
	if c.polls.Add(1) > c.threshold {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *pollCanceledCtx) Done() <-chan struct{} { return c.done }

// waitGoroutines polls until the goroutine count drops back to within a
// small slack of the baseline (the runtime needs a moment to retire
// finished goroutines) and fails the test if it never does.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCompileCancellation(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 4, 4))
	// Already-canceled context: rejected at the door.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Compile(ctx, gemmRequest(64)); KindOf(err) != KindCanceled {
		t.Fatalf("pre-canceled compile: kind = %v, want KindCanceled", KindOf(err))
	}
	if _, err := sess.Compile(ctx, gemmRequest(64)); !errors.Is(err, context.Canceled) {
		t.Fatal("canceled compile must match errors.Is(err, context.Canceled)")
	}

	// Mid-compile: the context starts reporting cancellation a few Err()
	// polls in — past the entry checks, observed by the materialization
	// workers' periodic checkpoints — and the abort must be classified and
	// prompt.
	baseline := runtime.NumGoroutine()
	ctx2 := cancelAfterPolls(3)
	start := time.Now()
	_, err := sess.Compile(ctx2, bigRequest())
	elapsed := time.Since(start)
	if KindOf(err) != KindCanceled {
		t.Fatalf("mid-compile cancel: kind = %v (err %v), want KindCanceled", KindOf(err), err)
	}
	if ctx2.polls.Load() <= 3 {
		t.Fatal("compile never reached a cancellation checkpoint past the entry check")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; checkpoints are not prompt", elapsed)
	}
	waitGoroutines(t, baseline)

	// The canceled compile must not have poisoned the cache: a live context
	// compiles the same request successfully afterwards.
	if _, err := sess.Compile(context.Background(), bigRequest()); err != nil {
		t.Fatalf("compile after canceled attempt failed: %v", err)
	}
}

func TestSimulateCancellation(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 4, 4))
	plan, err := sess.Compile(context.Background(), bigRequest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.Simulate(ctx); KindOf(err) != KindCanceled {
		t.Fatalf("pre-canceled simulate: kind = %v, want KindCanceled", KindOf(err))
	}

	baseline := runtime.NumGoroutine()
	ctx2 := cancelAfterPolls(3)
	start := time.Now()
	_, err = plan.Simulate(ctx2)
	elapsed := time.Since(start)
	if KindOf(err) != KindCanceled {
		t.Fatalf("mid-simulate cancel: kind = %v (err %v), want KindCanceled", KindOf(err), err)
	}
	if ctx2.polls.Load() <= 3 {
		t.Fatal("simulate never reached a cancellation checkpoint past the entry check")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; event-loop checkpoints are not prompt", elapsed)
	}
	waitGoroutines(t, baseline)

	// The plan is unharmed: a live context still simulates.
	if _, err := plan.Simulate(context.Background()); err != nil {
		t.Fatalf("simulate after canceled attempt failed: %v", err)
	}
}

// TestCompileSingleflight: M concurrent identical Compile calls yield
// exactly one cache miss; everyone gets the same plan.
func TestCompileSingleflight(t *testing.T) {
	const m = 16
	sess := NewSession(NewMachine(CPU, 4, 4))
	var (
		gate  = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		keys  = map[string]bool{}
		nErrs int
	)
	for g := 0; g < m; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			plan, err := sess.Compile(context.Background(), bigRequest())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				nErrs++
				return
			}
			keys[plan.Key()] = true
		}()
	}
	close(gate)
	wg.Wait()
	if nErrs > 0 {
		t.Fatalf("%d concurrent compiles failed", nErrs)
	}
	if len(keys) != 1 {
		t.Fatalf("concurrent compiles produced %d distinct plan keys", len(keys))
	}
	st := sess.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one cache miss across %d concurrent compiles", st, m)
	}
	if st.Hits != m-1 {
		t.Fatalf("stats = %+v, want %d shared/cached hits", st, m-1)
	}
}

// TestSingleflightCanceledLeader: waiters whose context is alive must not
// inherit the leader's cancellation — they retry and compile successfully.
func TestSingleflightCanceledLeader(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 4, 4))
	leaderCtx, cancelLeader := context.WithCancel(context.Background())

	leaderIn := make(chan struct{})
	leaderOut := make(chan error, 1)
	go func() {
		close(leaderIn)
		_, err := sess.Compile(leaderCtx, bigRequest())
		leaderOut <- err
	}()
	<-leaderIn
	time.Sleep(time.Millisecond) // let the leader enter the flight
	cancelLeader()

	// A follower with a live context must end up with a valid plan even if
	// it briefly joined the canceled leader's flight.
	plan, err := sess.Compile(context.Background(), bigRequest())
	if err != nil {
		t.Fatalf("follower inherited the leader's fate: %v", err)
	}
	if plan.Key() == "" {
		t.Fatal("follower got an empty plan")
	}
	if err := <-leaderOut; err != nil && KindOf(err) != KindCanceled {
		t.Fatalf("leader failed with kind %v, want KindCanceled or success", KindOf(err))
	}
}

// TestMemoEvictionTiedToPlanCache: evicting a plan drops the memo entries
// pointing at it, and the memo never outgrows its own bound.
func TestMemoEvictionTiedToPlanCache(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(NewMachine(CPU, 2, 2), WithPlanCacheSize(2))
	for _, n := range []int{16, 32, 48} {
		if _, err := sess.Compile(ctx, gemmRequest(n)); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.CacheStats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 after eviction", st.Entries)
	}
	// n=16's plan was evicted; its memo entry must be gone with it.
	if st.MemoEntries != 2 {
		t.Fatalf("memo entries = %d, want 2 (evicted plan's memo entry must die with it)", st.MemoEntries)
	}
	// Re-compiling the evicted request is a fresh miss, not a stale memo hit.
	if _, err := sess.Compile(ctx, gemmRequest(16)); err != nil {
		t.Fatal(err)
	}
	if st := sess.CacheStats(); st.Misses != 4 {
		t.Fatalf("stats = %+v, want 4 misses (the evicted plan recompiles)", st)
	}
}
