// Package codegen renders compiled Legion programs as human-readable
// listings, mirroring the structure of the code DISTAL emits: region
// declarations with their placements, then the control program of index
// task launches with per-point region requirements. Golden tests pin the
// output so compiler changes that alter the generated program are visible.
package codegen

import (
	"fmt"
	"strings"

	"distal/internal/legion"
)

// Program renders the whole program. maxPoints bounds how many task points
// are listed per launch (0 means all).
func Program(p *legion.Program, maxPoints int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q on %s\n", p.Name, p.Machine)
	for _, r := range p.Regions {
		place := "unplaced (leaf 0)"
		if r.Placement != nil {
			place = r.Placement.String()
		}
		fmt.Fprintf(&b, "region %s%v place %s\n", r.Name, r.Shape, place)
	}
	for _, l := range p.Launches {
		fmt.Fprintf(&b, "index_launch %s over %s\n", l.Name, l.Domain)
		n := l.Domain.Size()
		shown := n
		if maxPoints > 0 && maxPoints < n {
			shown = maxPoints
		}
		for i := 0; i < shown; i++ {
			pt := l.Domain.Delinearize(i)
			var reqs []string
			for _, q := range l.Reqs(pt) {
				reqs = append(reqs, q.String())
			}
			fmt.Fprintf(&b, "  task%v: %s\n", pt, strings.Join(reqs, " "))
		}
		if shown < n {
			fmt.Fprintf(&b, "  ... %d more points\n", n-shown)
		}
	}
	return b.String()
}
