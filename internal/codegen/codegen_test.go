package codegen

import (
	"strings"
	"testing"

	"distal/internal/core"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/machine"
	"distal/internal/schedule"
)

// TestGoldenSUMMAListing pins the generated program for a 2x2 SUMMA, the
// compiler's canonical output.
func TestGoldenSUMMAListing(t *testing.T) {
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	m := machine.New(machine.NewGrid(2, 2), machine.SysMem, machine.CPU)
	tiled := distnot.NewPlacement(distnot.MustParse("xy->xy"))
	decl := func(name string) *core.TensorDecl {
		return &core.TensorDecl{Name: name, Shape: []int{4, 4}, Placement: tiled}
	}
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
		Split("k", "ko", "ki", 2).
		Reorder("ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C")
	prog, err := core.Compile(core.Input{
		Stmt: stmt, Machine: m,
		Tensors:  map[string]*core.TensorDecl{"A": decl("A"), "B": decl("B"), "C": decl("C")},
		Schedule: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := Program(prog, 0)
	want := `program "A(i,j) = B(i,k) * C(k,j)" on Grid(2,2)[CPU/SysMem]
region A[4 4] place xy->xy
region B[4 4] place xy->xy
region C[4 4] place xy->xy
index_launch A[ko=0] over Grid(2,2)
  task[0 0]: A[[0,2)x[0,2) Red+] B[[0,2)x[0,2) RO] C[[0,2)x[0,2) RO]
  task[0 1]: A[[0,2)x[2,4) Red+] B[[0,2)x[0,2) RO] C[[0,2)x[2,4) RO]
  task[1 0]: A[[2,4)x[0,2) Red+] B[[2,4)x[0,2) RO] C[[0,2)x[0,2) RO]
  task[1 1]: A[[2,4)x[2,4) Red+] B[[2,4)x[0,2) RO] C[[0,2)x[2,4) RO]
index_launch A[ko=1] over Grid(2,2)
  task[0 0]: A[[0,2)x[0,2) Red+] B[[0,2)x[2,4) RO] C[[2,4)x[0,2) RO]
  task[0 1]: A[[0,2)x[2,4) Red+] B[[0,2)x[2,4) RO] C[[2,4)x[2,4) RO]
  task[1 0]: A[[2,4)x[0,2) Red+] B[[2,4)x[2,4) RO] C[[2,4)x[0,2) RO]
  task[1 1]: A[[2,4)x[2,4) Red+] B[[2,4)x[2,4) RO] C[[2,4)x[2,4) RO]
`
	if got != want {
		t.Fatalf("golden listing mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestListingTruncation(t *testing.T) {
	stmt := ir.MustParse("A(i) = B(i)")
	m := machine.New(machine.NewGrid(8), machine.SysMem, machine.CPU)
	place := distnot.NewPlacement(distnot.MustParse("x->x"))
	s := schedule.New(stmt).
		Divide("i", "io", "ii", 8).
		Distribute("io").
		Communicate("io", "A", "B")
	prog, err := core.Compile(core.Input{
		Stmt: stmt, Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": {Name: "A", Shape: []int{16}, Placement: place},
			"B": {Name: "B", Shape: []int{16}, Placement: place},
		},
		Schedule: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := Program(prog, 2)
	if !strings.Contains(got, "... 6 more points") {
		t.Fatalf("missing truncation marker:\n%s", got)
	}
}
