// Package ir defines tensor index notation, the input computation language
// of DISTAL (§2). A statement assigns an expression built from tensor
// accesses, addition, and multiplication to a left-hand-side access; index
// variables appearing only on the right-hand side are sum reductions.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// IndexVar is a named index variable (i, j, k, ...).
type IndexVar struct {
	Name string
}

func (v IndexVar) String() string { return v.Name }

// Expr is a tensor index notation expression.
type Expr interface {
	// Accesses appends every tensor access in the expression to dst.
	Accesses(dst []*Access) []*Access
	String() string
}

// Access indexes a named tensor with a list of index variables, e.g.
// B(i, k). A rank-0 access (no indices) denotes a scalar.
type Access struct {
	Tensor  string
	Indices []IndexVar
}

func (a *Access) Accesses(dst []*Access) []*Access { return append(dst, a) }

func (a *Access) String() string {
	if len(a.Indices) == 0 {
		return a.Tensor
	}
	names := make([]string, len(a.Indices))
	for i, v := range a.Indices {
		names[i] = v.Name
	}
	return a.Tensor + "(" + strings.Join(names, ",") + ")"
}

// Literal is a floating-point constant.
type Literal struct {
	Value float64
}

func (l *Literal) Accesses(dst []*Access) []*Access { return dst }
func (l *Literal) String() string                   { return fmt.Sprint(l.Value) }

// Add is pointwise addition of two sub-expressions.
type Add struct {
	L, R Expr
}

func (a *Add) Accesses(dst []*Access) []*Access { return a.R.Accesses(a.L.Accesses(dst)) }
func (a *Add) String() string                   { return a.L.String() + " + " + a.R.String() }

// Mul is pointwise multiplication of two sub-expressions.
type Mul struct {
	L, R Expr
}

func (m *Mul) Accesses(dst []*Access) []*Access { return m.R.Accesses(m.L.Accesses(dst)) }

func (m *Mul) String() string {
	l, r := m.L.String(), m.R.String()
	if _, ok := m.L.(*Add); ok {
		l = "(" + l + ")"
	}
	if _, ok := m.R.(*Add); ok {
		r = "(" + r + ")"
	}
	return l + " * " + r
}

// Assignment is a full tensor index notation statement LHS = RHS (or
// LHS += RHS when Increment is set).
type Assignment struct {
	LHS       *Access
	RHS       Expr
	Increment bool
}

func (s *Assignment) String() string {
	op := "="
	if s.Increment {
		op = "+="
	}
	return fmt.Sprintf("%s %s %s", s.LHS, op, s.RHS)
}

// Vars returns every distinct index variable, LHS variables first (in LHS
// order), then reduction variables in first-appearance order on the RHS.
// This matches the default loop-nest construction order of §5.1.
func (s *Assignment) Vars() []IndexVar {
	var out []IndexVar
	seen := map[string]bool{}
	add := func(v IndexVar) {
		if !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v)
		}
	}
	for _, v := range s.LHS.Indices {
		add(v)
	}
	for _, a := range s.RHS.Accesses(nil) {
		for _, v := range a.Indices {
			add(v)
		}
	}
	return out
}

// ReductionVars returns the index variables that appear on the RHS but not
// in the LHS access: these are summed over.
func (s *Assignment) ReductionVars() []IndexVar {
	inLHS := map[string]bool{}
	for _, v := range s.LHS.Indices {
		inLHS[v.Name] = true
	}
	var out []IndexVar
	for _, v := range s.Vars() {
		if !inLHS[v.Name] {
			out = append(out, v)
		}
	}
	return out
}

// TensorNames returns the distinct tensor names in the statement, LHS first,
// then RHS tensors in order of first appearance.
func (s *Assignment) TensorNames() []string {
	var out []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(s.LHS.Tensor)
	for _, a := range s.RHS.Accesses(nil) {
		add(a.Tensor)
	}
	return out
}

// Validate checks structural well-formedness given the shape of every tensor
// in the statement: access arity must match tensor rank, every LHS variable
// must appear on the RHS, and each variable must index dimensions of one
// consistent extent.
func (s *Assignment) Validate(shapes map[string][]int) error {
	extents, err := s.VarExtents(shapes)
	if err != nil {
		return err
	}
	rhsVars := map[string]bool{}
	for _, a := range s.RHS.Accesses(nil) {
		for _, v := range a.Indices {
			rhsVars[v.Name] = true
		}
	}
	for _, v := range s.LHS.Indices {
		if !rhsVars[v.Name] {
			return fmt.Errorf("ir: LHS variable %s does not appear on the RHS", v.Name)
		}
	}
	_ = extents
	return nil
}

// VarExtents computes the extent of each index variable from tensor shapes,
// returning an error on arity or extent mismatches.
func (s *Assignment) VarExtents(shapes map[string][]int) (map[string]int, error) {
	extents := map[string]int{}
	check := func(a *Access) error {
		shape, ok := shapes[a.Tensor]
		if !ok {
			return fmt.Errorf("ir: no shape provided for tensor %s", a.Tensor)
		}
		if len(shape) != len(a.Indices) && !scalarCompatible(a, shape) {
			return fmt.Errorf("ir: access %s has %d indices but tensor has rank %d",
				a, len(a.Indices), len(shape))
		}
		for d, v := range a.Indices {
			if prev, ok := extents[v.Name]; ok && prev != shape[d] {
				return fmt.Errorf("ir: variable %s indexes extents %d and %d", v.Name, prev, shape[d])
			}
			extents[v.Name] = shape[d]
		}
		return nil
	}
	if err := check(s.LHS); err != nil {
		return nil, err
	}
	for _, a := range s.RHS.Accesses(nil) {
		if err := check(a); err != nil {
			return nil, err
		}
	}
	return extents, nil
}

// scalarCompatible reports whether a zero-index access may target the shape:
// scalars are represented either as rank-0 tensors or rank-1 unit tensors
// (the distributed pipeline uses the latter so they are partitionable).
func scalarCompatible(a *Access, shape []int) bool {
	return len(a.Indices) == 0 && len(shape) == 1 && shape[0] == 1
}

// SortedVarNames returns the statement's variable names sorted, useful for
// deterministic diagnostics.
func (s *Assignment) SortedVarNames() []string {
	vs := s.Vars()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	sort.Strings(names)
	return names
}
