package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a tensor index notation statement such as
//
//	A(i,j) = B(i,k) * C(k,j)
//	a = B(i,j,k) * C(i,j,k)
//	A(i,l) += B(i,j,k) * C(j,l) * D(k,l)
//
// Supported operators are + and * with the usual precedence, plus
// parentheses and floating-point literals.
func Parse(src string) (*Assignment, error) {
	p := &parser{src: src}
	lhs, err := p.parseAccess()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	inc := false
	switch {
	case strings.HasPrefix(p.rest(), "+="):
		inc = true
		p.pos += 2
	case strings.HasPrefix(p.rest(), "="):
		p.pos++
	default:
		return nil, p.errorf("expected '=' or '+='")
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected trailing input %q", p.rest())
	}
	return &Assignment{LHS: lhs, RHS: rhs, Increment: inc}, nil
}

// MustParse is Parse but panics on error; intended for statements that are
// compile-time constants in examples and tests.
func MustParse(src string) *Assignment {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	src string
	pos int
}

func (p *parser) rest() string { return p.src[p.pos:] }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("ir: parse error at offset %d of %q: %s", p.pos, p.src, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errorf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseAccess() (*Access, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	a := &Access{Tensor: name}
	p.skipSpace()
	if p.peek() != '(' {
		return a, nil // scalar access
	}
	p.pos++
	for {
		v, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		a.Indices = append(a.Indices, IndexVar{Name: v})
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return a, nil
		default:
			return nil, p.errorf("expected ',' or ')' in access %s", name)
		}
	}
}

// parseExpr handles + (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '+' {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &Add{L: left, R: right}
	}
}

// parseTerm handles *.
func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '*' {
			return left, nil
		}
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &Mul{L: left, R: right}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errorf("expected ')'")
		}
		p.pos++
		return e, nil
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
				((c == '+' || c == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E')) {
				p.pos++
				continue
			}
			break
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, p.errorf("bad numeric literal %q", p.src[start:p.pos])
		}
		return &Literal{Value: v}, nil
	default:
		return p.parseAccess()
	}
}
