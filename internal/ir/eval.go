package ir

import (
	"fmt"

	"distal/internal/tensor"
)

// Evaluate executes the statement sequentially over the full iteration space
// and returns the output tensor. It is the reference semantics against which
// every distributed execution is validated.
//
// Inputs maps tensor names to their data; the LHS tensor, if present in
// inputs, supplies the output's initial contents (for += statements);
// otherwise the output starts at zero. The output shape is inferred from the
// LHS access and the variable extents.
func Evaluate(stmt *Assignment, inputs map[string]*tensor.Dense) (*tensor.Dense, error) {
	shapes := map[string][]int{}
	for name, t := range inputs {
		shapes[name] = t.Shape()
	}
	// The LHS shape may be absent from inputs; infer extents from the RHS
	// accesses first, then derive the LHS shape.
	extents := map[string]int{}
	for _, a := range stmt.RHS.Accesses(nil) {
		shape, ok := shapes[a.Tensor]
		if !ok {
			return nil, fmt.Errorf("ir: evaluate: missing input tensor %s", a.Tensor)
		}
		if len(shape) != len(a.Indices) && !scalarCompatible(a, shape) {
			return nil, fmt.Errorf("ir: access %s has %d indices but tensor has rank %d",
				a, len(a.Indices), len(shape))
		}
		for d, v := range a.Indices {
			if prev, ok := extents[v.Name]; ok && prev != shape[d] {
				return nil, fmt.Errorf("ir: variable %s indexes extents %d and %d", v.Name, prev, shape[d])
			}
			extents[v.Name] = shape[d]
		}
	}
	outShape := make([]int, len(stmt.LHS.Indices))
	for d, v := range stmt.LHS.Indices {
		ext, ok := extents[v.Name]
		if !ok {
			return nil, fmt.Errorf("ir: LHS variable %s not bound by any RHS access", v.Name)
		}
		outShape[d] = ext
	}
	out := tensor.New(stmt.LHS.Tensor, outShape...)
	if init, ok := inputs[stmt.LHS.Tensor]; ok && stmt.Increment {
		copy(out.Data(), init.Data())
	}
	if err := stmt.Validate(withShape(shapes, stmt.LHS.Tensor, outShape)); err != nil {
		return nil, err
	}

	vars := stmt.Vars()
	dims := make([]int, len(vars))
	for i, v := range vars {
		dims[i] = extents[v.Name]
	}
	env := map[string]int{}
	point := make([]int, len(vars))
	var walk func(d int)
	walk = func(d int) {
		if d == len(vars) {
			v := evalExpr(stmt.RHS, env, inputs)
			out.Add(v, accessPoint(stmt.LHS, env)...)
			return
		}
		for x := 0; x < dims[d]; x++ {
			env[vars[d].Name] = x
			point[d] = x
			walk(d + 1)
		}
	}
	walk(0)
	return out, nil
}

func withShape(shapes map[string][]int, name string, shape []int) map[string][]int {
	out := map[string][]int{}
	for k, v := range shapes {
		out[k] = v
	}
	out[name] = shape
	return out
}

func accessPoint(a *Access, env map[string]int) []int {
	p := make([]int, len(a.Indices))
	for d, v := range a.Indices {
		p[d] = env[v.Name]
	}
	return p
}

// scalarPoint adapts a zero-index access to the rank of the target tensor.
func scalarPoint(a *Access, t *tensor.Dense) []int {
	if len(a.Indices) == 0 && t.Rank() == 1 {
		return []int{0}
	}
	return nil
}

func evalExpr(e Expr, env map[string]int, inputs map[string]*tensor.Dense) float64 {
	switch e := e.(type) {
	case *Access:
		t, ok := inputs[e.Tensor]
		if !ok {
			panic(fmt.Sprintf("ir: evaluate: missing input tensor %s", e.Tensor))
		}
		if p := scalarPoint(e, t); p != nil {
			return t.At(p...)
		}
		return t.At(accessPoint(e, env)...)
	case *Literal:
		return e.Value
	case *Add:
		return evalExpr(e.L, env, inputs) + evalExpr(e.R, env, inputs)
	case *Mul:
		return evalExpr(e.L, env, inputs) * evalExpr(e.R, env, inputs)
	default:
		panic(fmt.Sprintf("ir: evaluate: unknown expression %T", e))
	}
}

// FlopsPerPoint returns the number of floating-point operations performed at
// one iteration-space point of the statement: one per +/* in the RHS, plus
// one for the accumulation into the LHS when the statement reduces.
func (s *Assignment) FlopsPerPoint() int {
	ops := countOps(s.RHS)
	if len(s.ReductionVars()) > 0 || s.Increment {
		ops++
	}
	return ops
}

func countOps(e Expr) int {
	switch e := e.(type) {
	case *Add:
		return countOps(e.L) + countOps(e.R) + 1
	case *Mul:
		return countOps(e.L) + countOps(e.R) + 1
	default:
		return 0
	}
}
