package ir

import (
	"strings"
	"testing"

	"distal/internal/tensor"
)

func TestParseGEMM(t *testing.T) {
	s, err := Parse("A(i,j) = B(i,k) * C(k,j)")
	if err != nil {
		t.Fatal(err)
	}
	if s.LHS.Tensor != "A" || len(s.LHS.Indices) != 2 {
		t.Fatalf("bad LHS: %v", s.LHS)
	}
	if s.Increment {
		t.Fatal("should not be increment")
	}
	if got := s.String(); got != "A(i,j) = B(i,k) * C(k,j)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseIncrement(t *testing.T) {
	s := MustParse("A(i,j) += B(i,k) * C(k,j)")
	if !s.Increment {
		t.Fatal("expected increment assignment")
	}
}

func TestParseScalarLHS(t *testing.T) {
	s := MustParse("a = B(i,j,k) * C(i,j,k)")
	if len(s.LHS.Indices) != 0 {
		t.Fatalf("scalar LHS should have no indices, got %v", s.LHS.Indices)
	}
	if len(s.ReductionVars()) != 3 {
		t.Fatalf("reduction vars = %v, want i,j,k", s.ReductionVars())
	}
}

func TestParseMTTKRP(t *testing.T) {
	s := MustParse("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)")
	names := s.TensorNames()
	want := []string{"A", "B", "C", "D"}
	if len(names) != 4 {
		t.Fatalf("tensors = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("tensors = %v, want %v", names, want)
		}
	}
	rv := s.ReductionVars()
	if len(rv) != 2 || rv[0].Name != "j" || rv[1].Name != "k" {
		t.Fatalf("reduction vars = %v, want [j k]", rv)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := MustParse("A(i) = B(i) + C(i) * D(i)")
	add, ok := s.RHS.(*Add)
	if !ok {
		t.Fatalf("top of RHS should be Add, got %T", s.RHS)
	}
	if _, ok := add.R.(*Mul); !ok {
		t.Fatalf("* should bind tighter than +")
	}
}

func TestParseParensAndLiteral(t *testing.T) {
	s := MustParse("A(i) = (B(i) + 2.5) * C(i)")
	mul, ok := s.RHS.(*Mul)
	if !ok {
		t.Fatalf("top should be Mul, got %T", s.RHS)
	}
	add, ok := mul.L.(*Add)
	if !ok {
		t.Fatalf("left of Mul should be parenthesized Add")
	}
	lit, ok := add.R.(*Literal)
	if !ok || lit.Value != 2.5 {
		t.Fatalf("literal = %v", add.R)
	}
	if !strings.Contains(s.String(), "(B(i) + 2.5)") {
		t.Fatalf("String() should keep parens: %q", s.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"A(i,j)",
		"A(i,j = B(i,j)",
		"A(i,j) = ",
		"A(i,j) = B(i,j) extra",
		"A(i,j) = B(i,j) +",
		"= B(i,j)",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestVarsOrder(t *testing.T) {
	s := MustParse("A(i,j) = B(i,k) * C(k,j)")
	vs := s.Vars()
	want := []string{"i", "j", "k"}
	if len(vs) != 3 {
		t.Fatalf("vars = %v", vs)
	}
	for i := range want {
		if vs[i].Name != want[i] {
			t.Fatalf("vars = %v, want %v", vs, want)
		}
	}
}

func TestValidateArityMismatch(t *testing.T) {
	s := MustParse("A(i,j) = B(i,j,k) * c(k)")
	err := s.Validate(map[string][]int{
		"A": {4, 4}, "B": {4, 4}, "c": {4},
	})
	if err == nil {
		t.Fatal("expected arity error")
	}
}

func TestValidateExtentMismatch(t *testing.T) {
	s := MustParse("A(i,j) = B(i,k) * C(k,j)")
	err := s.Validate(map[string][]int{
		"A": {4, 4}, "B": {4, 5}, "C": {6, 4},
	})
	if err == nil {
		t.Fatal("expected extent mismatch for k")
	}
}

func TestVarExtents(t *testing.T) {
	s := MustParse("A(i,j) = B(i,k) * C(k,j)")
	ext, err := s.VarExtents(map[string][]int{"A": {2, 3}, "B": {2, 4}, "C": {4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ext["i"] != 2 || ext["j"] != 3 || ext["k"] != 4 {
		t.Fatalf("extents = %v", ext)
	}
}

func TestEvaluateGEMM(t *testing.T) {
	b := tensor.New("B", 3, 4)
	c := tensor.New("C", 4, 2)
	b.FillRandom(1)
	c.FillRandom(2)
	s := MustParse("A(i,j) = B(i,k) * C(k,j)")
	got, err := Evaluate(s, map[string]*tensor.Dense{"B": b, "C": c})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			for k := 0; k < 4; k++ {
				want += b.At(i, k) * c.At(k, j)
			}
			if diff := got.At(i, j) - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("A(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestEvaluateTTV(t *testing.T) {
	b := tensor.New("B", 2, 3, 4)
	c := tensor.New("c", 4)
	b.FillRandom(3)
	c.FillRandom(4)
	s := MustParse("A(i,j) = B(i,j,k) * c(k)")
	got, err := Evaluate(s, map[string]*tensor.Dense{"B": b, "c": c})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			for k := 0; k < 4; k++ {
				want += b.At(i, j, k) * c.At(k)
			}
			if d := got.At(i, j) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("A(%d,%d) wrong", i, j)
			}
		}
	}
}

func TestEvaluateInnerProduct(t *testing.T) {
	b := tensor.New("B", 2, 2, 2)
	c := tensor.New("C", 2, 2, 2)
	b.Fill(2)
	c.Fill(3)
	s := MustParse("a = B(i,j,k) * C(i,j,k)")
	got, err := Evaluate(s, map[string]*tensor.Dense{"B": b, "C": c})
	if err != nil {
		t.Fatal(err)
	}
	if got.At() != 48 {
		t.Fatalf("a = %v, want 48", got.At())
	}
}

func TestEvaluateIncrementKeepsInitial(t *testing.T) {
	a := tensor.New("A", 2)
	a.Fill(10)
	b := tensor.New("B", 2)
	b.Fill(1)
	s := MustParse("A(i) += B(i)")
	got, err := Evaluate(s, map[string]*tensor.Dense{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0) != 11 || got.At(1) != 11 {
		t.Fatalf("A = %v, want [11 11]", got.Data())
	}
}

func TestEvaluateMissingTensor(t *testing.T) {
	s := MustParse("A(i) = B(i)")
	if _, err := Evaluate(s, map[string]*tensor.Dense{}); err == nil {
		t.Fatal("expected error for missing input")
	}
}

func TestFlopsPerPoint(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"A(i,j) = B(i,k) * C(k,j)", 2},            // mul + reduce add
		{"A(i,l) = B(i,j,k) * C(j,l) * D(k,l)", 3}, // 2 muls + reduce add
		{"A(i) = B(i)", 0},
		{"A(i) += B(i)", 1},
		{"a = B(i,j,k) * C(i,j,k)", 2},
	}
	for _, c := range cases {
		if got := MustParse(c.src).FlopsPerPoint(); got != c.want {
			t.Errorf("FlopsPerPoint(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}
