package cosma

import (
	"testing"
	"testing/quick"
)

func TestFactor2(t *testing.T) {
	cases := []struct{ p, gx, gy int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {36, 6, 6}, {12, 3, 4},
	}
	for _, c := range cases {
		gx, gy := Factor2(c.p)
		if gx != c.gx || gy != c.gy {
			t.Errorf("Factor2(%d) = (%d,%d), want (%d,%d)", c.p, gx, gy, c.gx, c.gy)
		}
	}
}

func TestFactor3(t *testing.T) {
	cases := []struct{ p, a, b, c int }{
		{1, 1, 1, 1}, {8, 2, 2, 2}, {27, 3, 3, 3}, {64, 4, 4, 4},
		{4, 2, 2, 1}, {16, 4, 2, 2}, {32, 4, 4, 2},
	}
	for _, c := range cases {
		a, b, cc := Factor3(c.p)
		if a != c.a || b != c.b || cc != c.c {
			t.Errorf("Factor3(%d) = (%d,%d,%d), want (%d,%d,%d)", c.p, a, b, cc, c.a, c.b, c.c)
		}
	}
}

func TestFactor3Product(t *testing.T) {
	f := func(p8 uint8) bool {
		p := int(p8)%500 + 1
		a, b, c := Factor3(p)
		return a*b*c == p && a >= b && b >= c && c >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoosePrefers3DWithAmpleMemory(t *testing.T) {
	// With abundant memory, replicating over gz reduces communication for a
	// cube-shaped problem on a cube-factorable processor count.
	d := Choose(4096, 4096, 4096, 64, 1e12)
	if !d.Feasible {
		t.Fatal("should be feasible")
	}
	if d.Gz == 1 {
		t.Fatalf("expected 3D decomposition, got (%d,%d,%d)", d.Gx, d.Gy, d.Gz)
	}
	if d.Gx*d.Gy*d.Gz != 64 {
		t.Fatalf("grid does not multiply to p: %+v", d)
	}
}

func TestChooseFallsBackTo2DUnderTightMemory(t *testing.T) {
	n := 4096
	// Memory just enough for the 2D working set: output block + stepped
	// inputs. 3D replication would need more.
	words := float64(n) * float64(n) / 16 * 1.5
	d := Choose(n, n, n, 16, words)
	if !d.Feasible {
		t.Fatal("2D stepped should be feasible")
	}
	if d.Gz != 1 {
		t.Fatalf("expected 2D under tight memory, got gz=%d", d.Gz)
	}
	if d.Steps < 2 {
		t.Fatalf("expected stepping under tight memory, got %d", d.Steps)
	}
}

func TestChooseInfeasible(t *testing.T) {
	d := Choose(1000, 1000, 1000, 4, 10 /* words */)
	if d.Feasible {
		t.Fatal("output block cannot fit in 10 words")
	}
}

func TestChooseCommDecreasesWithMoreMemory(t *testing.T) {
	n, p := 8192, 64
	tight := Choose(n, n, n, p, float64(n)*float64(n)/float64(p)*4)
	ample := Choose(n, n, n, p, 1e12)
	if !tight.Feasible || !ample.Feasible {
		t.Fatal("both should be feasible")
	}
	if ample.CommWords > tight.CommWords {
		t.Fatalf("more memory should not increase comm: %v vs %v", ample.CommWords, tight.CommWords)
	}
}
