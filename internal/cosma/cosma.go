// Package cosma implements the schedule-optimization step of the COSMA
// algorithm (Kwasniewski et al., SC'19) at the level DISTAL consumes it
// (§4.5): given the matrix dimensions, the processor count, and the memory
// available per processor, it chooses a processor-grid decomposition
// (gx, gy, gz) and a sequential step count that minimize the communication
// volume per processor subject to the memory limit. DISTAL then generates
// the distribution layer of COSMA from those parameters (Fig. 9).
package cosma

import "math"

// Decomposition is the output of the scheduler.
type Decomposition struct {
	Gx, Gy, Gz int
	// Steps is the number of sequential sub-steps of the per-processor k
	// range needed to respect the memory limit (>= 1).
	Steps int
	// CommWords is the predicted per-processor communication volume in
	// words (elements).
	CommWords float64
	// Feasible is false when even fully stepped execution exceeds memory.
	Feasible bool
}

// Choose selects the best decomposition for C[m,n] = A[m,k] * B[k,n] on p
// processors with memWords of usable local memory each.
//
// For a grid (gx, gy, gz) each processor owns an (m/gx, n/gy) block of the
// output and consumes (m/gx, k/gz) of A and (k/gz, n/gy) of B; its
// communication volume is the input blocks it does not own plus, when
// gz > 1, the reduction of its output block. The memory footprint is the
// output block plus a double-buffered 1/Steps fraction of the input blocks.
func Choose(m, n, k, p int, memWords float64) Decomposition {
	best := Decomposition{Feasible: false}
	found := false
	for gx := 1; gx <= p; gx++ {
		if p%gx != 0 {
			continue
		}
		for gy := 1; gy <= p/gx; gy++ {
			if (p/gx)%gy != 0 {
				continue
			}
			gz := p / gx / gy
			d := evaluate(m, n, k, gx, gy, gz, memWords)
			if !d.Feasible {
				continue
			}
			if !found || d.CommWords < best.CommWords ||
				(d.CommWords == best.CommWords && d.Steps < best.Steps) {
				best = d
				found = true
			}
		}
	}
	if !found {
		// Nothing fits: return the most stepped 2D decomposition anyway so
		// callers can observe the OOM.
		gx, gy := Factor2(p)
		best = evaluate(m, n, k, gx, gy, 1, memWords)
		best.Feasible = false
	}
	return best
}

func evaluate(m, n, k, gx, gy, gz int, memWords float64) Decomposition {
	am := float64(m) / float64(gx) * float64(k) / float64(gz) // A block words
	bm := float64(k) / float64(gz) * float64(n) / float64(gy) // B block words
	cm := float64(m) / float64(gx) * float64(n) / float64(gy) // C block words
	comm := am + bm
	if gz > 1 {
		comm += cm // reduction of the replicated output
	}
	d := Decomposition{Gx: gx, Gy: gy, Gz: gz, CommWords: comm}
	if cm >= memWords {
		return d // output alone does not fit
	}
	// Find the smallest step count whose double-buffered working set fits.
	for steps := 1; steps <= 1<<20; steps *= 2 {
		work := cm + 2*(am+bm)/float64(steps)
		if work <= memWords {
			d.Steps = steps
			d.Feasible = true
			return d
		}
	}
	return d
}

// Factor2 factors p into the most square (gx, gy) pair with gx <= gy.
func Factor2(p int) (gx, gy int) {
	gx = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			gx = d
		}
	}
	return gx, p / gx
}

// Factor3 factors p into the most balanced (a, b, c) triple (a >= b >= c),
// minimizing the surface-to-volume ratio a/c.
func Factor3(p int) (a, b, c int) {
	bestScore := math.Inf(1)
	a, b, c = p, 1, 1
	for x := 1; x*x*x <= p; x++ {
		if p%x != 0 {
			continue
		}
		q := p / x
		for y := x; y*y <= q; y++ {
			if q%y != 0 {
				continue
			}
			z := q / y
			// x <= y <= z; score by imbalance.
			score := float64(z) / float64(x)
			if score < bestScore {
				bestScore = score
				a, b, c = z, y, x
			}
		}
	}
	return a, b, c
}
