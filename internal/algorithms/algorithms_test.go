package algorithms

import (
	"testing"

	"distal/internal/core"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/sim"
	"distal/internal/tensor"
)

func testParams() sim.Params {
	return sim.Params{
		PeakFlops:    1e9,
		MemBandwidth: 1e12,
		MemCapacity:  1 << 40,
		IntraBW:      5e9,
		InterBW:      1e9,
		IntraLatency: 1e-6,
		InterLatency: 5e-6,
	}
}

// validate compiles and executes with real data, comparing against the
// reference evaluator.
func validate(t *testing.T, in core.Input) *legion.Result {
	t.Helper()
	inputs := map[string]*tensor.Dense{}
	for name, d := range in.Tensors {
		if name != in.Stmt.LHS.Tensor {
			inputs[name] = d.Data
		}
	}
	want, err := ir.Evaluate(in.Stmt, inputs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := legion.Run(prog, legion.Options{Params: testParams(), Real: true})
	if err != nil {
		t.Fatal(err)
	}
	got := in.Tensors[in.Stmt.LHS.Tensor].Data
	if want.Rank() == 0 {
		if d := want.At() - got.At(0); d > 1e-9 || d < -1e-9 {
			t.Fatalf("scalar = %v, want %v", got.At(0), want.At())
		}
		return res
	}
	if !got.EqualWithin(want, 1e-9) {
		t.Fatalf("result differs from reference by %v", got.MaxAbsDiff(want))
	}
	return res
}

// TestFig9AllMatmulsCorrect validates every algorithm in Figure 9 against
// the reference evaluator (experiment E7 correctness half).
func TestFig9AllMatmulsCorrect(t *testing.T) {
	for _, alg := range MatmulAlgs {
		for _, procs := range []int{4, 8} {
			cfg := MatmulConfig{N: 12, Procs: procs, Seed: 42}
			in, err := Matmul(alg, cfg)
			if err != nil {
				t.Fatalf("%s/p=%d: %v", alg, procs, err)
			}
			t.Run(string(alg), func(t *testing.T) { validate(t, in) })
		}
	}
}

func TestFig9PerfectCubeJohnson(t *testing.T) {
	in, err := Matmul(Johnson, MatmulConfig{N: 12, Procs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g := in.Machine.Grid.Dims; len(g) != 3 || g[0] != 2 || g[1] != 2 || g[2] != 2 {
		t.Fatalf("Johnson grid = %v, want cube", g)
	}
	validate(t, in)
}

func TestSolomonikReplicationChoice(t *testing.T) {
	// p = 16: c can be 1 (g=4) or 4 (g=2); pickReplication should find a
	// c > 1 option within cbrt bound: cbrt(16) ~ 2.5, so c = 1.
	if c := pickReplication(16); c != 1 {
		t.Fatalf("pickReplication(16) = %d, want 1", c)
	}
	// p = 32: c=2 gives g=4 (16*2=32), cbrt(32) ~ 3.1: c = 2.
	if c := pickReplication(32); c != 2 {
		t.Fatalf("pickReplication(32) = %d, want 2", c)
	}
}

func TestSolomonikBadConfigRejected(t *testing.T) {
	if _, err := Matmul(Solomonik, MatmulConfig{N: 8, Procs: 12, ReplicationC: 5}); err == nil {
		t.Fatal("p/c not square should be rejected")
	}
}

// TestCannonUsesLessBroadcastTrafficThanSUMMAOwnerOnly: with nearest-source
// selection disabled, SUMMA repeatedly pulls the same chunk from its owner,
// while Cannon's rotation spreads sources evenly. Simulated time for Cannon
// should not exceed owner-only SUMMA on an all-inter-node machine.
func TestCannonVsSUMMAContention(t *testing.T) {
	run := func(alg Alg, ownerOnly bool) float64 {
		in, err := Matmul(alg, MatmulConfig{N: 1 << 10, Procs: 16})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := core.Compile(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := legion.Run(prog, legion.Options{Params: testParams(), OwnerOnly: ownerOnly})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	cannon := run(Cannon, true)
	summa := run(SUMMA, true)
	if cannon > summa*1.05 {
		t.Fatalf("Cannon (%v) should not be slower than owner-only SUMMA (%v)", cannon, summa)
	}
}

// TestJohnsonUsesMoreMemory: 3D algorithms trade memory for communication;
// at larger processor counts the per-processor working set of Johnson's
// broadcast blocks dominates SUMMA's double-buffered chunks.
func TestJohnsonMemoryVsSUMMA(t *testing.T) {
	mem := func(alg Alg) int64 {
		in, err := Matmul(alg, MatmulConfig{N: 1 << 9, Procs: 64})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := core.Compile(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := legion.Run(prog, legion.Options{Params: testParams()})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakMemBytes
	}
	if mem(Johnson) <= mem(SUMMA) {
		t.Fatal("Johnson should use more per-processor memory than SUMMA")
	}
}

func TestHigherOrderKernelsCorrect(t *testing.T) {
	cfg := HigherConfig{I: 8, J: 6, K: 4, L: 3, Procs: 4, Seed: 11}
	builders := map[string]func(HigherConfig) (core.Input, error){
		"TTV":       TTV,
		"Innerprod": Innerprod,
		"TTM":       TTM,
		"MTTKRP":    MTTKRP,
	}
	for name, build := range builders {
		in, err := build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Run(name, func(t *testing.T) { validate(t, in) })
	}
}

// TestTTVAndTTMZeroInterNodeComm: the point of the paper's schedules for
// these kernels (§7.2.2) is that aligned distributions eliminate
// communication entirely.
func TestTTVAndTTMZeroComm(t *testing.T) {
	for name, build := range map[string]func(HigherConfig) (core.Input, error){"TTV": TTV, "TTM": TTM} {
		in, err := build(HigherConfig{I: 16, J: 16, K: 16, L: 8, Procs: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog, err := core.Compile(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := legion.Run(prog, legion.Options{Params: testParams()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Copies != 0 {
			t.Errorf("%s: expected zero communication, got %d copies", name, res.Copies)
		}
	}
}

// TestMTTKRPReduces: partial results must be combined into the output
// owners across the replicated grid dimensions.
func TestMTTKRPReduces(t *testing.T) {
	in, err := MTTKRP(HigherConfig{I: 8, J: 8, K: 8, L: 4, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := legion.Run(prog, legion.Options{Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies == 0 {
		t.Fatal("MTTKRP on a 3D grid must reduce partial results")
	}
}

func TestMatmulConfigValidation(t *testing.T) {
	if _, err := Matmul(SUMMA, MatmulConfig{}); err == nil {
		t.Fatal("empty config should fail")
	}
	if _, err := Matmul(Alg("nope"), MatmulConfig{N: 4, Procs: 4}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := TTV(HigherConfig{}); err == nil {
		t.Fatal("empty higher-order config should fail")
	}
	if _, err := TTM(HigherConfig{I: 2, J: 2, K: 2, Procs: 2}); err == nil {
		t.Fatal("TTM without L should fail")
	}
}
