// Package algorithms instantiates the distributed algorithms of the DISTAL
// paper as (data distribution, schedule) pairs over the compiler in
// internal/core: the six matrix-multiplication algorithms of Figure 9
// (Cannon, PUMMA, SUMMA, Johnson, Solomonik's 2.5D, and COSMA) and the four
// higher-order tensor kernels of §7.2 (TTV, Innerprod, TTM, MTTKRP).
package algorithms

import (
	"fmt"

	"distal/internal/core"
	"distal/internal/cosma"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/tensor"
)

// Alg names a matrix-multiplication algorithm from Figure 9.
type Alg string

const (
	Cannon    Alg = "cannon"
	PUMMA     Alg = "pumma"
	SUMMA     Alg = "summa"
	Johnson   Alg = "johnson"
	Solomonik Alg = "solomonik"
	COSMA     Alg = "cosma"
)

// MatmulAlgs lists the algorithms in the paper's order.
var MatmulAlgs = []Alg{Cannon, PUMMA, SUMMA, Johnson, Solomonik, COSMA}

// MatmulConfig describes one matrix-multiplication instance.
type MatmulConfig struct {
	// N is the square matrix dimension.
	N int
	// Procs is the number of leaf processors.
	Procs int
	// ProcsPerNode groups consecutive processors into nodes (0: one proc
	// per node).
	ProcsPerNode int
	// GPU selects GPU processors and framebuffer memories.
	GPU bool
	// ChunkSize is the SUMMA/PUMMA pipeline chunk (0: one tile).
	ChunkSize int
	// ReplicationC is the 2.5D replication factor (0: chosen automatically).
	ReplicationC int
	// MemWords is the per-processor memory available to the COSMA scheduler
	// (0: unbounded).
	MemWords float64
	// Seed, when non-zero, binds deterministic random data for validated
	// execution (small sizes only).
	Seed int64
}

// MachineFor builds the machine for the given grid under this config.
func (c MatmulConfig) MachineFor(dims ...int) *machine.Machine {
	mem, proc := machine.SysMem, machine.CPU
	if c.GPU {
		mem, proc = machine.GPUFBMem, machine.GPU
	}
	m := machine.New(machine.NewGrid(dims...), mem, proc)
	if c.ProcsPerNode > 0 {
		m = m.WithProcsPerNode(c.ProcsPerNode)
	}
	return m
}

func (c MatmulConfig) decl(name, place string, seed int64) *core.TensorDecl {
	d := &core.TensorDecl{
		Name:      name,
		Shape:     []int{c.N, c.N},
		Placement: distnot.MustParsePlacement(place),
	}
	if c.Seed != 0 {
		d.Data = tensor.New(name, c.N, c.N)
		if seed != 0 {
			d.Data.FillRandom(seed)
		}
	}
	return d
}

// Matmul builds the compilation input for A(i,j) = B(i,k) * C(k,j) under
// the named algorithm.
func Matmul(alg Alg, cfg MatmulConfig) (core.Input, error) {
	if cfg.N <= 0 || cfg.Procs <= 0 {
		return core.Input{}, fmt.Errorf("algorithms: bad config %+v", cfg)
	}
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	switch alg {
	case Cannon, PUMMA, SUMMA:
		return matmul2D(alg, stmt, cfg)
	case Johnson:
		return matmulJohnson(stmt, cfg)
	case Solomonik:
		return matmulSolomonik(stmt, cfg)
	case COSMA:
		return matmulCOSMA(stmt, cfg)
	default:
		return core.Input{}, fmt.Errorf("algorithms: unknown algorithm %q", alg)
	}
}

// matmul2D builds the three 2D algorithms; they share machine and data
// distribution and differ only in schedule (Fig. 9).
func matmul2D(alg Alg, stmt *ir.Assignment, cfg MatmulConfig) (core.Input, error) {
	gx, gy := cosma.Factor2(cfg.Procs)
	m := cfg.MachineFor(gx, gy)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{gx, gy})
	switch alg {
	case SUMMA:
		chunk := cfg.ChunkSize
		if chunk == 0 {
			chunk = ceilDiv(cfg.N, gx)
		}
		s.Split("k", "ko", "ki", chunk).
			Reorder("ko", "ii", "ji", "ki").
			Communicate("jo", "A").
			Communicate("ko", "B", "C")
	case Cannon:
		s.Divide("k", "ko", "ki", gx).
			Reorder("ko", "ii", "ji", "ki").
			Rotate("ko", []string{"io", "jo"}, "kos").
			Communicate("jo", "A").
			Communicate("kos", "B", "C")
	case PUMMA:
		s.Divide("k", "ko", "ki", gx).
			Reorder("ko", "ii", "ji", "ki").
			Rotate("ko", []string{"io"}, "kos").
			Communicate("jo", "A").
			Communicate("kos", "B", "C")
	}
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": cfg.decl("A", "xy->xy", 0),
			"B": cfg.decl("B", "xy->xy", 7),
			"C": cfg.decl("C", "xy->xy", 8),
		},
		Schedule: s,
	}, nil
}

// matmulJohnson builds the 3D algorithm: inputs fixed to faces of the
// processor cube, fully distributed i,j,k, and a distributed reduction of A.
func matmulJohnson(stmt *ir.Assignment, cfg MatmulConfig) (core.Input, error) {
	g1, g2, g3 := cosma.Factor3(cfg.Procs)
	m := cfg.MachineFor(g1, g2, g3)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j", "k"}, []string{"io", "jo", "ko"}, []string{"ii", "ji", "ki"}, []int{g1, g2, g3}).
		Communicate("ko", "A", "B", "C")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": cfg.decl("A", "xy->xy0", 0),
			"B": cfg.decl("B", "xz->x0z", 7),
			"C": cfg.decl("C", "zy->0yz", 8),
		},
		Schedule: s,
	}, nil
}

// matmulSolomonik builds the 2.5D algorithm: a (g, g, c) grid where each of
// the c slices runs a Cannon-style rotation over a fraction of k and the
// slices reduce into the face holding A.
func matmulSolomonik(stmt *ir.Assignment, cfg MatmulConfig) (core.Input, error) {
	c := cfg.ReplicationC
	if c == 0 {
		c = pickReplication(cfg.Procs)
	}
	if cfg.Procs%c != 0 || !isSquare(cfg.Procs/c) {
		return core.Input{}, fmt.Errorf("algorithms: 2.5D needs p/c to be a perfect square (p=%d c=%d)", cfg.Procs, c)
	}
	g := isqrt(cfg.Procs / c)
	m := cfg.MachineFor(g, g, c)
	steps := g / c
	if steps < 1 {
		steps = 1
	}
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j", "k"}, []string{"io", "jo", "ko"}, []string{"ii", "ji", "ki"}, []int{g, g, c}).
		Divide("ki", "kio", "kii", steps).
		Reorder("kio", "ii", "ji", "kii").
		Rotate("kio", []string{"io", "jo"}, "kios").
		Communicate("jo", "A").
		Communicate("kios", "B", "C")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": cfg.decl("A", "xy->xy0", 0),
			"B": cfg.decl("B", "xy->xy0", 7),
			"C": cfg.decl("C", "xy->xy0", 8),
		},
		Schedule: s,
	}, nil
}

// matmulCOSMA asks the COSMA scheduler for the optimal grid and step count,
// then generates the distribution layer of COSMA from them.
func matmulCOSMA(stmt *ir.Assignment, cfg MatmulConfig) (core.Input, error) {
	mem := cfg.MemWords
	if mem == 0 {
		mem = 1e18
	}
	d := cosma.Choose(cfg.N, cfg.N, cfg.N, cfg.Procs, mem)
	m := cfg.MachineFor(d.Gx, d.Gy, d.Gz)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j", "k"}, []string{"io", "jo", "ko"}, []string{"ii", "ji", "ki"}, []int{d.Gx, d.Gy, d.Gz}).
		Divide("ki", "kio", "kii", d.Steps).
		Reorder("kio", "ii", "ji", "kii").
		Communicate("ko", "A").
		Communicate("kio", "B", "C")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": cfg.decl("A", "xy->xy0", 0),
			"B": cfg.decl("B", "xz->x0z", 7),
			"C": cfg.decl("C", "zy->0yz", 8),
		},
		Schedule: s,
	}, nil
}

// pickReplication chooses the largest c <= p^(1/3) with p/c a perfect
// square; if no such c exists it falls back to the smallest feasible c so
// the 2.5D grid is always constructible.
func pickReplication(p int) int {
	best := 0
	for c := 1; c*c*c <= p; c++ {
		if p%c == 0 && isSquare(p/c) {
			best = c
		}
	}
	if best > 0 {
		return best
	}
	for c := 1; c <= p; c++ {
		if p%c == 0 && isSquare(p/c) {
			return c
		}
	}
	return 1
}

func isSquare(n int) bool {
	r := isqrt(n)
	return r*r == n
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
