package algorithms

import (
	"fmt"

	"distal/internal/core"
	"distal/internal/cosma"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/schedule"
	"distal/internal/tensor"
)

// HigherConfig describes one higher-order tensor kernel instance (§7.2).
type HigherConfig struct {
	// I, J, K, L are the index extents used by the kernel (L is ignored by
	// TTV and Innerprod).
	I, J, K, L int
	// Procs, ProcsPerNode, GPU, Seed as in MatmulConfig.
	Procs        int
	ProcsPerNode int
	GPU          bool
	Seed         int64
}

func (c *HigherConfig) asMatmul() MatmulConfig {
	return MatmulConfig{Procs: c.Procs, ProcsPerNode: c.ProcsPerNode, GPU: c.GPU, Seed: c.Seed}
}

func (c *HigherConfig) decl(name string, shape []int, place string, seed int64) *core.TensorDecl {
	d := &core.TensorDecl{
		Name:      name,
		Shape:     append([]int(nil), shape...),
		Placement: distnot.MustParsePlacement(place),
	}
	if c.Seed != 0 {
		d.Data = tensor.New(name, shape...)
		if seed != 0 {
			d.Data.FillRandom(seed)
		}
	}
	return d
}

// TTV builds A(i,j) = B(i,j,k) * c(k): the 3-tensor is tiled over a 2D grid
// along i and j, the vector is replicated, and the computation is fully
// element-wise with no communication (the schedule the paper uses instead
// of CTF's cast-to-matmul strategy).
func TTV(cfg HigherConfig) (core.Input, error) {
	if err := cfg.check(3); err != nil {
		return core.Input{}, err
	}
	stmt := ir.MustParse("A(i,j) = B(i,j,k) * c(k)")
	gx, gy := cosma.Factor2(cfg.Procs)
	m := cfg.asMatmul().MachineFor(gx, gy)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{gx, gy}).
		Communicate("jo", "A", "B", "c")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": cfg.decl("A", []int{cfg.I, cfg.J}, "xy->xy", 0),
			"B": cfg.decl("B", []int{cfg.I, cfg.J, cfg.K}, "xyz->xy", 7),
			"c": cfg.decl("c", []int{cfg.K}, "x->**", 8),
		},
		Schedule: s,
	}, nil
}

// Innerprod builds a = B(i,j,k) * C(i,j,k): node-local reductions followed
// by a global reduction tree into the scalar's owner.
func Innerprod(cfg HigherConfig) (core.Input, error) {
	if err := cfg.check(3); err != nil {
		return core.Input{}, err
	}
	stmt := ir.MustParse("a = B(i,j,k) * C(i,j,k)")
	gx, gy := cosma.Factor2(cfg.Procs)
	m := cfg.asMatmul().MachineFor(gx, gy)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{gx, gy}).
		Communicate("jo", "B", "C")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"a": cfg.decl("a", []int{1}, "x->00", 0),
			"B": cfg.decl("B", []int{cfg.I, cfg.J, cfg.K}, "xyz->xy", 7),
			"C": cfg.decl("C", []int{cfg.I, cfg.J, cfg.K}, "xyz->xy", 8),
		},
		Schedule: s,
	}, nil
}

// TTM builds A(i,j,l) = B(i,j,k) * C(k,l): the i loop is distributed so the
// kernel becomes independent local matrix multiplications with the small
// factor matrix replicated — no inter-node communication (§7.2.2).
func TTM(cfg HigherConfig) (core.Input, error) {
	if err := cfg.check(4); err != nil {
		return core.Input{}, err
	}
	stmt := ir.MustParse("A(i,j,l) = B(i,j,k) * C(k,l)")
	m := cfg.asMatmul().MachineFor(cfg.Procs)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i"}, []string{"io"}, []string{"ii"}, []int{cfg.Procs}).
		Communicate("io", "A", "B", "C")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": cfg.decl("A", []int{cfg.I, cfg.J, cfg.L}, "xyz->x", 0),
			"B": cfg.decl("B", []int{cfg.I, cfg.J, cfg.K}, "xyz->x", 7),
			"C": cfg.decl("C", []int{cfg.K, cfg.L}, "xy->*", 8),
		},
		Schedule: s,
	}, nil
}

// MTTKRP builds A(i,l) = B(i,j,k) * C(j,l) * D(k,l) following Ballard et
// al.: the 3-tensor stays in place on a 3D grid, the factor matrices are
// partitioned along their contracted mode and replicated along the other
// grid dimensions, and partial results reduce into the output's owners.
func MTTKRP(cfg HigherConfig) (core.Input, error) {
	if err := cfg.check(4); err != nil {
		return core.Input{}, err
	}
	stmt := ir.MustParse("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)")
	g1, g2, g3 := cosma.Factor3(cfg.Procs)
	m := cfg.asMatmul().MachineFor(g1, g2, g3)
	// The free output mode l is not distributed; it must sit below the
	// distributed prefix, so the compound DistributeOnto cannot be used.
	s := schedule.New(stmt).
		Divide("i", "io", "ii", g1).
		Divide("j", "jo", "ji", g2).
		Divide("k", "ko", "ki", g3).
		Reorder("io", "jo", "ko", "ii", "ji", "ki", "l").
		Distribute("io", "jo", "ko").
		Communicate("ko", "A", "B", "C", "D")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": cfg.decl("A", []int{cfg.I, cfg.L}, "ab->a00", 0),
			"B": cfg.decl("B", []int{cfg.I, cfg.J, cfg.K}, "abc->abc", 7),
			"C": cfg.decl("C", []int{cfg.J, cfg.L}, "ab->*a*", 8),
			"D": cfg.decl("D", []int{cfg.K, cfg.L}, "ab->**a", 9),
		},
		Schedule: s,
	}, nil
}

func (c *HigherConfig) check(rank int) error {
	if c.I <= 0 || c.J <= 0 || c.K <= 0 || c.Procs <= 0 {
		return fmt.Errorf("algorithms: bad higher-order config %+v", *c)
	}
	if rank == 4 && c.L <= 0 {
		return fmt.Errorf("algorithms: kernel needs L > 0, got %+v", *c)
	}
	return nil
}
