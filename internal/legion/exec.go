package legion

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"distal/internal/machine"
	"distal/internal/obs"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// Options controls one execution of a program.
type Options struct {
	// Params is the simulated machine's cost model.
	Params sim.Params
	// Real executes leaf kernels on actual data (for correctness checks).
	Real bool
	// Data binds per-execution canonical data by region name, overriding
	// Region.Data. A cached (immutable, data-free) program can thereby run
	// Real-mode executions on different tensors concurrently: the binding
	// lives in the execution, not in the shared plan.
	Data map[string]*tensor.Dense
	// Batch binds N independent problem instances, one data map per
	// instance, and runs them all in a single launch walk: simulated-time
	// accounting runs exactly once (metrics are identical to a
	// single-instance run), while Real-mode leaf tasks are captured per
	// (instance × task) and drained over the worker pool, with accumulator
	// grouping scoped per instance so instances never serialize against
	// each other. Requires Real; when set, Data is ignored. Instances must
	// not share output tensors with each other (inputs may be shared).
	Batch []map[string]*tensor.Dense
	// Synchronous disables communication/computation overlap: copies cannot
	// start before the destination processor is idle, and a global barrier
	// separates launches. Models non-overlapping baselines (ScaLAPACK, CTF).
	Synchronous bool
	// OwnerOnly restricts copy sources to persistent (owner) instances,
	// disabling nearest-valid-copy source selection. Ablation knob.
	OwnerOnly bool
	// TransientWindow is how many transient instances per (region, leaf) are
	// kept live for reuse (double buffering and systolic relay). Default 2.
	TransientWindow int
	// RealWorkers bounds the worker pool that executes Real-mode leaf
	// kernels. Kernel invocations for independent tasks of one launch —
	// tasks writing through distinct, non-overlapping accumulators — fan out
	// over the pool; simulated-time accounting stays serial regardless, so
	// metrics are identical at any worker count, and tasks sharing an
	// accumulator run in point order, so Real results are bit-identical to
	// serial execution. Zero means min(GOMAXPROCS, 16); 1 disables the pool.
	RealWorkers int
	// Trace records every copy for inspection.
	Trace bool
}

// CopyRecord describes one scheduled copy (Trace mode).
type CopyRecord struct {
	Launch string
	Point  []int
	Region string
	Rect   tensor.Rect
	Src    int
	Dst    int
	Start  float64
	End    float64
}

// Result summarizes one execution.
type Result struct {
	// Time is the simulated makespan in seconds.
	Time float64
	// Flops is the total floating-point work scheduled.
	Flops float64
	// IntraBytes and InterBytes are the communication volumes moved over
	// intra-node links and the inter-node network.
	IntraBytes int64
	InterBytes int64
	// Copies is the number of scheduled copy operations.
	Copies int64
	// PeakMemBytes is the largest per-leaf memory high-water mark.
	PeakMemBytes int64
	// OOM reports that a leaf memory exceeded its capacity, and which one.
	OOM     bool
	OOMLeaf int
	Trace   []CopyRecord
}

// GFlopsPerSec returns achieved GFLOP/s across the whole machine.
func (r *Result) GFlopsPerSec() float64 {
	if r.Time <= 0 {
		return 0
	}
	return r.Flops / r.Time / 1e9
}

type instance struct {
	leaf       int
	rect       tensor.Rect
	key        tensor.RectKey
	seq        int64 // installation order (transients; candidate tie-breaking)
	validAt    float64
	persistent bool
	live       bool
	bytes      int64
}

// transGroup is the set of live transient instances sharing one rect.
// Grouping makes ensureLocal's candidate search consider distinct rects
// rather than every instance; installation order is restored from
// instance.seq. A group lives exactly as long as it has instances: it is
// indexed by rect key (exact-match candidates) and by volume bucket
// (strict-containment candidates), and idx is its position in the bucket
// for O(1) removal.
type transGroup struct {
	rect  tensor.Rect
	vol   int64
	idx   int
	insts []*instance
}

type regState struct {
	region     *Region
	persistent []*instance         // one per owning leaf
	perLeaf    map[int][]*instance // all live instances by leaf
	transFIFO  map[int][]*instance // per-leaf eviction order

	// dirty marks that some launch wrote the region since its transients
	// were last valid: when a later stage adopts the region (RunStages),
	// the stale transient replicas are dropped so only the flushed owners
	// serve as copy sources. Within one stage the flag is inert.
	dirty bool

	// Live transient instances grouped by rect, rect-keyed two ways so the
	// candidate search never scans the whole group population:
	// transByKey[k] is the group whose rect IS k (the exact-match
	// candidates, one map hit), and volBuckets[v] holds the groups of
	// volume v — only buckets of strictly larger volume can strictly
	// contain a requirement rect (equal-volume containment implies
	// equality), and in tiled workloads every transient shares the
	// requirement's volume, so the strict scan is empty. volumes lists the
	// occupied bucket volumes ascending.
	transByKey map[tensor.RectKey]*transGroup
	volBuckets map[int64][]*transGroup
	volumes    []int64

	// cover indexes the persistent instances by requirement rect: the
	// (immutable) candidate list of owners fully containing that rect.
	// Filled lazily, it turns ensureLocal's per-requirement O(instances)
	// scan into one map lookup — requirement rects repeat across points and
	// launches.
	cover map[tensor.RectKey][]*instance

	// pieces indexes the persistent instances by requirement rect the other
	// way around: the owners *overlapping* the rect, with the overlap and
	// its payload precomputed. Piecewise gathers and accumulator flushes
	// walk only the owners that matter instead of intersecting the rect
	// with every owner of the region.
	pieces map[tensor.RectKey][]ownerPiece
}

// ownerPiece is one persistent owner's overlap with a requirement rect.
type ownerPiece struct {
	inst  *instance
	piece tensor.Rect
	bytes int64
}

// coverFor returns the persistent instances whose rect contains the given
// requirement rect, in placement order.
func (rs *regState) coverFor(key tensor.RectKey, rect tensor.Rect) []*instance {
	if c, ok := rs.cover[key]; ok {
		return c
	}
	var c []*instance
	for _, inst := range rs.persistent {
		if inst.rect.ContainsRect(rect) {
			c = append(c, inst)
		}
	}
	rs.cover[key] = c
	return c
}

// piecesFor returns the persistent owners overlapping the given requirement
// rect together with their (non-empty) overlaps, in placement order.
func (rs *regState) piecesFor(key tensor.RectKey, rect tensor.Rect) []ownerPiece {
	if p, ok := rs.pieces[key]; ok {
		return p
	}
	var p []ownerPiece
	for _, inst := range rs.persistent {
		piece := inst.rect.Intersect(rect)
		if piece.Empty() {
			continue
		}
		p = append(p, ownerPiece{inst: inst, piece: piece, bytes: rs.region.Bytes(piece)})
	}
	rs.pieces[key] = p
	return p
}

type accKey struct {
	region *Region
	leaf   int
	rect   tensor.RectKey
}

// accSlot scopes an accumulator to one batch instance: tasks of different
// instances writing through the same (shared, accounting-level) accumulator
// touch disjoint per-instance buffers, so write-safety grouping keys on the
// pair, never serializing one instance against another.
type accSlot struct {
	acc  *accumulator
	slot int
}

type executor struct {
	prog     *Program
	opt      Options
	ctx      context.Context
	s        *sim.Sim
	lg       machine.Grid
	gpuMem   bool
	reg      map[*Region]*regState
	data     []map[*Region]*tensor.Dense // Real mode: resolved canonical data, one map per batch instance
	binds    []map[string]*tensor.Dense  // Real mode: the caller's name-keyed bindings (Batch, or Data as one instance)
	stageReg []map[string]*Region        // per completed stage: region name -> region, for handoff resolution
	batch    int                         // number of problem instances (1 unless Options.Batch)
	accs     map[accKey]*accumulator
	accSeq   []*accumulator
	sp       *obs.Span // the in-progress launch's span (nil outside a traced launch)
	trace    []CopyRecord
	candBuf  []*instance // scratch for ensureLocal's candidate collection
	instSeq  int64       // next transient installation sequence number
	steps    int         // points since the last cancellation checkpoint

	// Real-mode task batch: runLaunch defers kernel invocations here and
	// runRealTasks drains them over the worker pool at the launch's end.
	// Everything below is per-launch scratch reused across launches.
	workers   int               // resolved Options.RealWorkers
	realTasks []*Ctx            // deferred tasks, point-major then instance order
	ctxFree   []*Ctx            // Ctx free list (map storage reuse)
	ctxBatch  []*Ctx            // per-point scratch: one deferred Ctx per instance
	pointSlab []int             // per-launch backing for deferred tasks' Points
	ufParent  []int32           // union-find scratch for task grouping
	taskAccs  []*accumulator    // per-point write-target buffer
	accFirst  map[accSlot]int32 // (accumulator, instance) -> first task using it
	readSet   map[*Region]bool  // regions read by the current launch

	// Double-buffering throttle: copies for a leaf's task in launch s may
	// not start before its task in launch s-TransientWindow completed
	// (prefetch depth matches the instance window, as Legion's deferred
	// execution is bounded by mapper-allocated staging buffers).
	endHist    [][]float64 // ring of per-leaf task end times, one per recent launch
	launchEnds []float64   // per-leaf task end times of the launch in progress
}

// Run executes the program under the given options.
func Run(p *Program, opt Options) (*Result, error) {
	return RunContext(context.Background(), p, opt)
}

// cancelCheckEvery is how many domain points the executor processes between
// cancellation checkpoints: frequent enough that cancellation is prompt
// (points cost microseconds in simulation), rare enough that the atomic
// context poll stays off the per-point profile.
const cancelCheckEvery = 256

// RunContext executes the program under the given options, aborting with
// ctx's error at the next checkpoint once ctx is done. The event loop
// checks between launches and every cancelCheckEvery points within one, so
// even single-launch programs over large domains cancel promptly.
//
// It is the single-stage form of RunStages: multi-statement plan DAGs run
// their stages through the same event loop with intermediates handed off
// between stages in place.
func RunContext(ctx context.Context, p *Program, opt Options) (*Result, error) {
	return RunStages(ctx, []Stage{{Prog: p}}, opt)
}

// runLaunch walks the launch domain once, serially, doing all simulated-time
// accounting (copy pricing, compute charging, accumulator lifetimes) exactly
// as the point order dictates — the cost model never sees the worker pool,
// so simulated metrics are identical at any worker count. In Real mode the
// kernel invocations are not interleaved with the accounting: each task's
// bindings are captured in a pooled Ctx and deferred, and the batch drains
// over the worker pool at the launch's end (runRealTasks). The launch
// boundary is a barrier for real work, so cross-launch data dependences and
// the accumulator flush order are untouched.
func (e *executor) runLaunch(l *Launch) error {
	mapPoint := l.MapPoint
	if mapPoint == nil {
		mapPoint = defaultMapPoint(l.Domain, e.lg)
	}
	n := l.Domain.Size()
	rank := l.Domain.Rank()
	// The simulation path allocates nothing per point: one point buffer per
	// launch, a reused write-target buffer, and no Ctx. Real-mode tasks get
	// stable Point slices carved from a per-launch slab (Ctx retains them
	// until the batch runs) and recycled Ctx maps.
	deferKernels := e.opt.Real && l.Kernel.Run != nil
	var point []int
	if deferKernels {
		if cap(e.pointSlab) < n*rank {
			e.pointSlab = make([]int, n*rank)
		}
		if e.readSet == nil {
			e.readSet = map[*Region]bool{}
		}
		clear(e.readSet)
	} else {
		point = make([]int, rank)
	}
	for i := 0; i < n; i++ {
		if e.steps++; e.steps >= cancelCheckEvery {
			e.steps = 0
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
		if deferKernels {
			point = e.pointSlab[i*rank : (i+1)*rank]
		}
		l.Domain.DelinearizeInto(i, point)
		leaf := mapPoint(point)
		if leaf < 0 || leaf >= e.lg.Size() {
			return fmt.Errorf("legion: launch %s maps point %v to leaf %d outside the machine", l.Name, point, leaf)
		}
		reqs := l.Reqs(point)
		issueAt := 0.0
		if e.opt.Synchronous {
			issueAt = e.s.ProcFree(leaf)
		} else if len(e.endHist) >= e.opt.TransientWindow {
			// Prefetch depth = TransientWindow launches: the copy may start
			// once the leaf's task TransientWindow launches ago finished.
			issueAt = e.endHist[0][leaf]
		}
		taskReady := issueAt
		// One deferred Ctx per batch instance: the accounting below runs
		// once for the point, while the real work fans out per instance.
		ctxs := e.ctxBatch[:0]
		if deferKernels {
			for b := 0; b < e.batch; b++ {
				c := e.getCtx()
				c.Point = point
				c.slot = b
				ctxs = append(ctxs, c)
			}
		}
		taskAccs := e.taskAccs[:0]
		for _, q := range reqs {
			if q.Rect.Empty() {
				continue
			}
			switch q.Priv {
			case ReadOnly:
				at, err := e.ensureLocal(l, point, q, leaf, issueAt)
				if err != nil {
					return err
				}
				if at > taskReady {
					taskReady = at
				}
				if len(ctxs) > 0 {
					for _, c := range ctxs {
						c.reads[q.Region.Name] = e.data[c.slot][q.Region]
					}
					e.readSet[q.Region] = true
				}
			default:
				acc := e.writeTarget(q, leaf)
				taskAccs = append(taskAccs, acc)
				for _, c := range ctxs {
					c.writes[q.Region.Name] = acc
				}
			}
		}
		if len(ctxs) > 0 {
			e.realTasks = append(e.realTasks, ctxs...)
		}
		e.ctxBatch = ctxs[:0]
		flops, bytes := 0.0, 0.0
		if l.Kernel.Flops != nil {
			flops = l.Kernel.Flops(point)
		}
		if l.Kernel.MemBytes != nil {
			bytes = l.Kernel.MemBytes(point)
		}
		end := e.s.Compute(leaf, flops, bytes, taskReady)
		if e.launchEnds != nil && end > e.launchEnds[leaf] {
			e.launchEnds[leaf] = end
		}
		for _, a := range taskAccs {
			if end > a.lastUse {
				a.lastUse = end
			}
		}
		e.taskAccs = taskAccs[:0]
	}
	if deferKernels {
		return e.runRealTasks(l)
	}
	return nil
}

// getCtx pops a recycled Ctx (or makes one) for a deferred Real-mode task.
func (e *executor) getCtx() *Ctx {
	if n := len(e.ctxFree); n > 0 {
		c := e.ctxFree[n-1]
		e.ctxFree = e.ctxFree[:n-1]
		return c
	}
	return newCtx()
}

// runRealTasks executes the launch's deferred kernel invocations. Tasks are
// grouped by write-safety — two tasks share a group when they write through
// the same accumulator for the same batch instance, or through in-place
// accumulators of one region whose rects overlap (possible under replicated
// placements), again within one instance — via union-find. Groups touch
// pairwise-disjoint memory, so they fan out over the worker pool; tasks
// within a group run in their original point order on one worker, so
// floating-point accumulation order, and hence every result bit, matches
// serial (and single-instance) execution. If the launch reads a region some
// task writes in place, cross-task order is observable through reads, so
// each instance's tasks serialize wholesale — but only against each other:
// distinct instances touch disjoint tensors and still run in parallel.
func (e *executor) runRealTasks(l *Launch) error {
	tasks := e.realTasks
	if len(tasks) == 0 {
		return nil
	}
	if dsp := e.sp.StartChild("real-drain"); dsp != nil {
		dsp.SetAttr("tasks", fmt.Sprint(len(tasks)))
		defer dsp.End()
	}
	defer func() {
		for _, c := range tasks {
			c.reset()
			e.ctxFree = append(e.ctxFree, c)
		}
		e.realTasks = tasks[:0]
	}()

	serial := e.workers <= 1 || len(tasks) == 1
	readAliased := false
	if !serial {
		for _, c := range tasks {
			for _, a := range c.writes {
				if a.inPlace && e.readSet[a.region] {
					readAliased = true
				}
			}
		}
	}
	if serial || (readAliased && e.batch == 1) {
		for _, c := range tasks {
			if err := e.ctx.Err(); err != nil {
				return err
			}
			l.Kernel.Run(c)
		}
		return nil
	}

	// Union-find over task indices; path-halving find, min-root union keeps
	// grouping deterministic.
	parent := e.ufParent[:0]
	for i := range tasks {
		parent = append(parent, int32(i))
	}
	e.ufParent = parent[:0]
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	if readAliased {
		// Each instance serializes wholesale (reads may observe in-place
		// writes), but instances never serialize against each other: union
		// every task with the first task of its slot.
		firstOfSlot := make([]int32, e.batch)
		for i := range firstOfSlot {
			firstOfSlot[i] = -1
		}
		for i, c := range tasks {
			if firstOfSlot[c.slot] < 0 {
				firstOfSlot[c.slot] = int32(i)
				continue
			}
			union(int32(i), firstOfSlot[c.slot])
		}
	} else {
		if e.accFirst == nil {
			e.accFirst = map[accSlot]int32{}
		}
		clear(e.accFirst)
		type ipAcc struct {
			task int32
			acc  *accumulator
			slot int
		}
		var inPlace []ipAcc
		for i, c := range tasks {
			for _, a := range c.writes {
				k := accSlot{acc: a, slot: c.slot}
				if first, ok := e.accFirst[k]; ok {
					union(int32(i), first)
					continue
				}
				e.accFirst[k] = int32(i)
				if a.inPlace {
					for _, p := range inPlace {
						if p.slot == c.slot && p.acc.region == a.region && !p.acc.rect.Intersect(a.rect).Empty() {
							union(int32(i), p.task)
						}
					}
					inPlace = append(inPlace, ipAcc{task: int32(i), acc: a, slot: c.slot})
				}
			}
		}
	}

	// Bucket tasks by component, buckets ordered by first member, members in
	// point order.
	bucketOf := map[int32]int{}
	var buckets [][]*Ctx
	for i := range tasks {
		r := find(int32(i))
		b, ok := bucketOf[r]
		if !ok {
			b = len(buckets)
			bucketOf[r] = b
			buckets = append(buckets, nil)
		}
		buckets[b] = append(buckets[b], tasks[i])
	}

	w := min(e.workers, len(buckets))
	if w <= 1 {
		for _, c := range tasks {
			if err := e.ctx.Err(); err != nil {
				return err
			}
			l.Kernel.Run(c)
		}
		return nil
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	var runErr error
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for {
				bi := int(next.Add(1) - 1)
				if bi >= len(buckets) {
					return
				}
				for _, c := range buckets[bi] {
					if err := e.ctx.Err(); err != nil {
						mu.Lock()
						if runErr == nil {
							runErr = err
						}
						mu.Unlock()
						return
					}
					l.Kernel.Run(c)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return runErr
}

// ensureLocal makes the data of requirement q available in leaf's memory and
// returns the time at which it is valid there.
func (e *executor) ensureLocal(l *Launch, point []int, q Req, leaf int, issueAt float64) (float64, error) {
	rs := e.reg[q.Region]
	// Fast path: an instance on this leaf already covers the rect. The
	// per-leaf population is small (the persistent owner plus at most
	// TransientWindow transients), so the scan beats any keyed memo here;
	// the expensive part was always the cross-leaf candidate search below.
	qk := q.rectKey()
	for _, inst := range rs.perLeaf[leaf] {
		if inst.live && inst.rect.ContainsRect(q.Rect) {
			return maxf(inst.validAt, issueAt), nil
		}
	}
	// Gather candidate source instances that fully contain the rect:
	// persistent owners via the rect index, then live transients — the
	// exact-rect group by key, plus groups from strictly-larger volume
	// buckets (the only ones that can strictly contain the rect; none in
	// pure tilings). Candidates re-sort into installation order, so the
	// source selection is identical to an exhaustive ordered scan.
	candidates := append(e.candBuf[:0], rs.coverFor(qk, q.Rect)...)
	if !e.opt.OwnerOnly {
		base := len(candidates)
		if g := rs.transByKey[qk]; g != nil {
			candidates = append(candidates, g.insts...)
		}
		qvol := int64(q.Rect.Volume())
		for i := len(rs.volumes) - 1; i >= 0 && rs.volumes[i] > qvol; i-- {
			for _, g := range rs.volBuckets[rs.volumes[i]] {
				if g.rect.ContainsRect(q.Rect) {
					candidates = append(candidates, g.insts...)
				}
			}
		}
		tail := candidates[base:]
		for i := 1; i < len(tail); i++ {
			for j := i; j > 0 && tail[j].seq < tail[j-1].seq; j-- {
				tail[j], tail[j-1] = tail[j-1], tail[j]
			}
		}
	}
	e.candBuf = candidates[:0]
	bytes := q.Region.Bytes(q.Rect)
	if len(candidates) == 0 {
		// No single instance holds the whole rect: gather piecewise from the
		// persistent owners.
		return e.gather(l, point, q, leaf, issueAt, bytes)
	}
	// Price every candidate as CopyEstimate would (CopyStart + class cost),
	// but compute the class cost once per cost class: candidate sources on
	// the same side of the intra-/inter-node split differ only in port
	// availability and instance validity, so the occupancy/latency/overhead
	// term — the only part that needs the cost model — is shared. Symmetric
	// replica sets (every source in one class, the common case under
	// replication) price the model exactly once.
	replicas := len(candidates)
	var intraCost, interCost float64
	haveIntra, haveInter := false, false
	best, bestEnd := candidates[0], 0.0
	for i, c := range candidates {
		var cost float64
		if e.s.SameNode(c.leaf, leaf) {
			if !haveIntra {
				intraCost = e.s.CopyClassCost(c.leaf, leaf, bytes, e.gpuMem, replicas)
				haveIntra = true
			}
			cost = intraCost
		} else {
			if !haveInter {
				interCost = e.s.CopyClassCost(c.leaf, leaf, bytes, e.gpuMem, replicas)
				haveInter = true
			}
			cost = interCost
		}
		end := e.s.CopyStart(c.leaf, leaf, maxf(issueAt, c.validAt)) + cost
		if i == 0 || end < bestEnd {
			best, bestEnd = c, end
		}
	}
	start := maxf(issueAt, best.validAt)
	end := e.s.Copy(best.leaf, leaf, bytes, start, e.gpuMem, replicas)
	e.record(l, point, q, best.leaf, leaf, start, end)
	e.installTransient(rs, leaf, q.Rect, q.rectKey(), end, bytes)
	return end, nil
}

// gather copies the pieces of q.Rect held by persistent owners and installs
// a combined transient instance. The owner-piece index bounds the walk to
// the owners actually overlapping the rect.
func (e *executor) gather(l *Launch, point []int, q Req, leaf int, issueAt float64, bytes int64) (float64, error) {
	rs := e.reg[q.Region]
	covered := int64(0)
	latest := issueAt
	for _, op := range rs.piecesFor(q.rectKey(), q.Rect) {
		covered += op.bytes
		if op.inst.leaf == leaf {
			latest = maxf(latest, op.inst.validAt)
			continue
		}
		start := maxf(issueAt, op.inst.validAt)
		end := e.s.Copy(op.inst.leaf, leaf, op.bytes, start, e.gpuMem, 1)
		e.record(l, point, Req{Region: q.Region, Rect: op.piece, Priv: q.Priv}, op.inst.leaf, leaf, start, end)
		latest = maxf(latest, end)
	}
	if covered < bytes {
		return 0, fmt.Errorf("legion: no instances cover %s of region %s (launch %s point %v)",
			q.Rect, q.Region.Name, l.Name, point)
	}
	e.installTransient(rs, leaf, q.Rect, q.rectKey(), latest, bytes)
	return latest, nil
}

func (e *executor) installTransient(rs *regState, leaf int, rect tensor.Rect, key tensor.RectKey, validAt float64, bytes int64) {
	inst := &instance{
		leaf: leaf, rect: rect, key: key, seq: e.instSeq,
		validAt: validAt, live: true, bytes: bytes,
	}
	e.instSeq++
	rs.perLeaf[leaf] = append(rs.perLeaf[leaf], inst)
	g := rs.transByKey[inst.key]
	if g == nil {
		g = &transGroup{rect: rect, vol: int64(rect.Volume())}
		rs.transByKey[inst.key] = g
		rs.addToBucket(g)
	}
	g.insts = append(g.insts, inst)
	rs.transFIFO[leaf] = append(rs.transFIFO[leaf], inst)
	e.s.Alloc(leaf, bytes)
	for len(rs.transFIFO[leaf]) > e.opt.TransientWindow {
		old := rs.transFIFO[leaf][0]
		rs.transFIFO[leaf] = rs.transFIFO[leaf][1:]
		old.live = false
		e.s.Free(leaf, old.bytes)
		rs.perLeaf[leaf] = removeInst(rs.perLeaf[leaf], old)
		og := rs.transByKey[old.key]
		og.insts = removeInst(og.insts, old)
		if len(og.insts) == 0 {
			delete(rs.transByKey, old.key)
			rs.dropFromBucket(og)
		}
	}
}

// addToBucket registers a new group in its volume bucket, opening the
// bucket (and recording its volume in the sorted volume list) if needed.
func (rs *regState) addToBucket(g *transGroup) {
	b := rs.volBuckets[g.vol]
	if b == nil {
		i := sort.Search(len(rs.volumes), func(i int) bool { return rs.volumes[i] >= g.vol })
		rs.volumes = append(rs.volumes, 0)
		copy(rs.volumes[i+1:], rs.volumes[i:])
		rs.volumes[i] = g.vol
	}
	g.idx = len(b)
	rs.volBuckets[g.vol] = append(b, g)
}

// dropFromBucket removes an emptied group from its volume bucket
// (swap-remove via the group's stored index), closing the bucket when it
// was the last group of that volume.
func (rs *regState) dropFromBucket(g *transGroup) {
	b := rs.volBuckets[g.vol]
	last := len(b) - 1
	b[g.idx] = b[last]
	b[g.idx].idx = g.idx
	b[last] = nil
	b = b[:last]
	if len(b) == 0 {
		delete(rs.volBuckets, g.vol)
		i := sort.Search(len(rs.volumes), func(i int) bool { return rs.volumes[i] >= g.vol })
		rs.volumes = append(rs.volumes[:i], rs.volumes[i+1:]...)
		return
	}
	rs.volBuckets[g.vol] = b
}

func removeInst(s []*instance, x *instance) []*instance {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// writeTarget returns the accumulator for a write requirement, preferring
// in-place updates when the computing leaf owns the written rect.
func (e *executor) writeTarget(q Req, leaf int) *accumulator {
	rk := q.rectKey()
	key := accKey{region: q.Region, leaf: leaf, rect: rk}
	if a, ok := e.accs[key]; ok {
		return a
	}
	inPlace := false
	rect, ok := q.Region.OwnerRect(e.prog.Machine, e.lg.Delinearize(leaf))
	if ok && rect.ContainsRect(q.Rect) {
		inPlace = true
	}
	a := &accumulator{
		region:  q.Region,
		rect:    q.Rect,
		key:     rk,
		combine: q.Priv,
		inPlace: inPlace,
		leaf:    leaf,
	}
	if e.opt.Real {
		a.bufs = make([]accBuf, e.batch)
		for b := range a.bufs {
			a.bufs[b].canon = e.data[b][q.Region]
		}
	}
	if !inPlace {
		// Simulated memory is charged once regardless of batch size: the
		// accounting walk models one instance, and batching must not perturb
		// its metrics.
		e.s.Alloc(leaf, q.Region.Bytes(q.Rect))
		if e.opt.Real {
			shape := make([]int, q.Rect.Rank())
			for d := range shape {
				shape[d] = q.Rect.Extent(d)
			}
			for b := range a.bufs {
				a.bufs[b].data = tensor.New(q.Region.Name+"_acc", shape...)
			}
		}
	}
	e.accs[key] = a
	e.accSeq = append(e.accSeq, a)
	return a
}

// flushAccumulators folds every non-in-place accumulator back into the
// owner instances of its region. Groups of ReduceSum accumulators covering
// the same rect are merged by a binary combining tree (as Legion's reduction
// trees do) before the final copy to the owner; other privileges copy
// directly. Copy and combine costs are charged; in Real mode each
// accumulator's data is combined into the canonical tensor.
//
// For multi-stage runs the flush also publishes the written state to later
// stages: every written region is marked dirty (stale transients are dropped
// when a stage adopts it), the owner instances' validAt advances to the time
// their piece of the flush landed — so a consumer stage's copies start no
// earlier than the data actually existed — and the non-in-place scratch
// buffers are freed. A single-stage run sees none of this: the flush is the
// last event, validAt is never read again, and freeing scratch cannot lower
// the already-recorded memory high-water mark.
func (e *executor) flushAccumulators() {
	for _, a := range e.accSeq {
		e.reg[a.region].dirty = true
	}
	if e.opt.Real {
		for _, a := range e.accSeq {
			if a.inPlace {
				continue
			}
			for b := range a.bufs {
				buf := &a.bufs[b]
				a.rect.Points(func(p []int) {
					v := buf.data.At(local(p, a.rect)...)
					if a.combine == ReduceSum {
						buf.canon.Add(v, p...)
					} else {
						buf.canon.Set(v, p...)
					}
				})
			}
		}
	}
	// Group same-rect ReduceSum accumulators per region for tree merging.
	type groupKey struct {
		region *Region
		rect   tensor.RectKey
	}
	groups := map[groupKey][]*accumulator{}
	var order []groupKey
	for _, a := range e.accSeq {
		if a.inPlace {
			continue
		}
		k := groupKey{a.region, a.key}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], a)
	}
	for _, k := range order {
		accs := groups[k]
		replicas := len(accs)
		region := accs[0].region
		rect := accs[0].rect
		bytes := region.Bytes(rect)
		if accs[0].combine == ReduceSum && len(accs) > 1 {
			// Binary combining tree: halve the accumulator set each round.
			for len(accs) > 1 {
				half := (len(accs) + 1) / 2
				for i := half; i < len(accs); i++ {
					src, dst := accs[i], accs[i-half]
					ready := maxf(src.lastUse, dst.lastUse)
					end := e.s.Copy(src.leaf, dst.leaf, bytes, ready, e.gpuMem, replicas)
					e.record(nil, nil, Req{Region: region, Rect: rect, Priv: ReduceSum}, src.leaf, dst.leaf, ready, end)
					// The destination folds the contribution in.
					dst.lastUse = e.s.Compute(dst.leaf, float64(rect.Volume()), float64(bytes), end)
				}
				accs = accs[:half]
			}
		}
		// Copy (or piece-wise scatter) the surviving accumulators to the
		// owner instances. All accumulators of the group share one rect, so
		// the owner overlaps are resolved once through the owner-piece
		// index rather than intersecting every accumulator with every
		// owner of the region.
		rs := e.reg[region]
		pieces := rs.piecesFor(k.rect, rect)
		for _, a := range accs {
			for _, op := range pieces {
				if op.inst.leaf == a.leaf {
					op.inst.validAt = maxf(op.inst.validAt, a.lastUse)
					continue
				}
				end := e.s.Copy(a.leaf, op.inst.leaf, op.bytes, a.lastUse, e.gpuMem, replicas)
				e.record(nil, nil, Req{Region: region, Rect: op.piece, Priv: a.combine}, a.leaf, op.inst.leaf, a.lastUse, end)
				op.inst.validAt = maxf(op.inst.validAt, end)
			}
		}
	}
	// In-place accumulators wrote straight into their owner instance; its
	// contents are valid once the last writing task retired. Non-in-place
	// scratch has been folded into the owners above and is released.
	for _, a := range e.accSeq {
		if a.inPlace {
			rs := e.reg[a.region]
			for _, inst := range rs.perLeaf[a.leaf] {
				if inst.persistent && inst.rect.ContainsRect(a.rect) {
					inst.validAt = maxf(inst.validAt, a.lastUse)
				}
			}
			continue
		}
		e.s.Free(a.leaf, a.region.Bytes(a.rect))
	}
	e.accSeq = nil
	e.accs = map[accKey]*accumulator{}
}

func (e *executor) record(l *Launch, point []int, q Req, src, dst int, start, end float64) {
	if !e.opt.Trace {
		return
	}
	name := "flush"
	if l != nil {
		name = l.Name
	}
	e.trace = append(e.trace, CopyRecord{
		Launch: name,
		Point:  append([]int(nil), point...),
		Region: q.Region.Name,
		Rect:   q.Rect,
		Src:    src,
		Dst:    dst,
		Start:  start,
		End:    end,
	})
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SortTrace orders a trace by start time then region for stable golden
// comparisons.
func SortTrace(tr []CopyRecord) {
	sort.SliceStable(tr, func(i, j int) bool {
		if tr[i].Start != tr[j].Start {
			return tr[i].Start < tr[j].Start
		}
		return tr[i].Region < tr[j].Region
	})
}
