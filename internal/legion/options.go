package legion

import "distal/internal/sim"

// Option is a functional modifier of Options. The Run/Simulate/SimulateOpts
// trio of earlier API revisions is consolidated into a single construction
// path: NewOptions(params, mods...) builds the struct every execution
// entrypoint consumes.
type Option func(*Options)

// NewOptions builds execution options from a cost model plus modifiers.
func NewOptions(params sim.Params, mods ...Option) Options {
	o := Options{Params: params}
	for _, m := range mods {
		m(&o)
	}
	return o
}

// WithReal executes leaf kernels on actual data (correctness mode).
func WithReal() Option { return func(o *Options) { o.Real = true } }

// WithSynchronous disables communication/computation overlap.
func WithSynchronous() Option { return func(o *Options) { o.Synchronous = true } }

// WithOwnerOnly restricts copy sources to persistent owner instances.
func WithOwnerOnly() Option { return func(o *Options) { o.OwnerOnly = true } }

// WithTransientWindow sets how many transient instances per (region, leaf)
// stay live for reuse.
func WithTransientWindow(n int) Option { return func(o *Options) { o.TransientWindow = n } }

// WithTrace records every copy for inspection.
func WithTrace() Option { return func(o *Options) { o.Trace = true } }
