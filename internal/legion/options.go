package legion

import (
	"distal/internal/sim"
	"distal/internal/tensor"
)

// Option is a functional modifier of Options. The Run/Simulate/SimulateOpts
// trio of earlier API revisions is consolidated into a single construction
// path: NewOptions(params, mods...) builds the struct every execution
// entrypoint consumes.
type Option func(*Options)

// NewOptions builds execution options from a cost model plus modifiers.
func NewOptions(params sim.Params, mods ...Option) Options {
	o := Options{Params: params}
	for _, m := range mods {
		m(&o)
	}
	return o
}

// WithReal executes leaf kernels on actual data (correctness mode).
func WithReal() Option { return func(o *Options) { o.Real = true } }

// WithData binds per-execution canonical data by region name (implies
// nothing about Real; combine with WithReal). The binding overrides
// Region.Data, letting a shared cached program run on caller-owned tensors.
func WithData(data map[string]*tensor.Dense) Option {
	return func(o *Options) { o.Data = data }
}

// WithBatch binds N independent problem instances (one data map each) to a
// single execution: the launch walk and all simulated-time accounting run
// once, while real leaf tasks fan out per (instance × task) over the worker
// pool. Implies nothing about Real; combine with WithReal. Instances must
// not share output tensors.
func WithBatch(batch []map[string]*tensor.Dense) Option {
	return func(o *Options) { o.Batch = batch }
}

// WithParams replaces the cost model NewOptions was seeded with.
func WithParams(p sim.Params) Option {
	return func(o *Options) { o.Params = p }
}

// WithSynchronous disables communication/computation overlap.
func WithSynchronous() Option { return func(o *Options) { o.Synchronous = true } }

// WithOwnerOnly restricts copy sources to persistent owner instances.
func WithOwnerOnly() Option { return func(o *Options) { o.OwnerOnly = true } }

// WithTransientWindow sets how many transient instances per (region, leaf)
// stay live for reuse.
func WithTransientWindow(n int) Option { return func(o *Options) { o.TransientWindow = n } }

// WithRealWorkers bounds the worker pool for Real-mode leaf kernels. Zero
// (the default) uses min(GOMAXPROCS, 16); 1 runs kernels serially. Results
// and simulated metrics are identical at any setting.
func WithRealWorkers(n int) Option { return func(o *Options) { o.RealWorkers = n } }

// WithTrace records every copy for inspection.
func WithTrace() Option { return func(o *Options) { o.Trace = true } }
