package legion

import (
	"testing"

	"distal/internal/distnot"
	"distal/internal/machine"
	"distal/internal/sim"
	"distal/internal/tensor"
)

func flatMachine(n int) *machine.Machine {
	return machine.New(machine.NewGrid(n), machine.SysMem, machine.CPU)
}

func testParams() sim.Params {
	return sim.Params{
		PeakFlops:    100,
		MemBandwidth: 1e18,
		MemCapacity:  1 << 40,
		IntraBW:      10,
		IntraLatency: 0,
		InterBW:      10,
		InterLatency: 0,
	}
}

// vectorAddProgram builds A(i) = B(i) + C(i) with all vectors tiled over a
// 1-D machine: an owner-computes program with no communication.
func vectorAddProgram(n, procs int) (*Program, *tensor.Dense, *tensor.Dense, *tensor.Dense) {
	m := flatMachine(procs)
	place := distnot.NewPlacement(distnot.MustParse("x->x"))
	a := NewRegion("A", []int{n}, place)
	b := NewRegion("B", []int{n}, place)
	c := NewRegion("C", []int{n}, place)
	ta, tb, tc := tensor.New("A", n), tensor.New("B", n), tensor.New("C", n)
	tb.FillRandom(1)
	tc.FillRandom(2)
	a.Bind(ta)
	b.Bind(tb)
	c.Bind(tc)
	rectOf := func(p int) tensor.Rect {
		lo, hi := tensor.BlockRange(n, procs, p)
		return tensor.NewRect([]int{lo}, []int{hi})
	}
	launch := &Launch{
		Name:   "add",
		Domain: machine.NewGrid(procs),
		Reqs: func(pt []int) []Req {
			r := rectOf(pt[0])
			return []Req{
				{Region: a, Rect: r, Priv: WriteDiscard},
				{Region: b, Rect: r, Priv: ReadOnly},
				{Region: c, Rect: r, Priv: ReadOnly},
			}
		},
		Kernel: Kernel{
			Flops: func(pt []int) float64 { return float64(rectOf(pt[0]).Volume()) },
			Run: func(ctx *Ctx) {
				rectOf(ctx.Point[0]).Points(func(p []int) {
					ctx.WriteSet("A", ctx.ReadAt("B", p...)+ctx.ReadAt("C", p...), p...)
				})
			},
		},
	}
	return &Program{Name: "vadd", Machine: m, Regions: []*Region{a, b, c}, Launches: []*Launch{launch}}, ta, tb, tc
}

func TestOwnerComputesNoCommunication(t *testing.T) {
	prog, ta, tb, tc := vectorAddProgram(12, 4)
	res, err := Run(prog, Options{Params: testParams(), Real: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies != 0 || res.InterBytes != 0 {
		t.Fatalf("owner-computes should not communicate: copies=%d bytes=%d", res.Copies, res.InterBytes)
	}
	for i := 0; i < 12; i++ {
		want := tb.At(i) + tc.At(i)
		if d := ta.At(i) - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("A(%d) = %v, want %v", i, ta.At(i), want)
		}
	}
	// 4 procs x 3 flops each, perfectly parallel at 100 flop/s.
	if res.Time != 0.03 {
		t.Fatalf("time = %v, want 0.03", res.Time)
	}
}

// TestCommunicationWhenNotOwner: compute A on proc 0 only; pieces of B must
// be fetched from their owners.
func TestCommunicationWhenNotOwner(t *testing.T) {
	n, procs := 8, 4
	m := flatMachine(procs)
	place := distnot.NewPlacement(distnot.MustParse("x->x"))
	b := NewRegion("B", []int{n}, place)
	a := NewRegion("A", []int{1}, nil) // scalar-ish output on leaf 0
	ta, tb := tensor.New("A", 1), tensor.New("B", n)
	tb.FillRandom(3)
	a.Bind(ta)
	b.Bind(tb)
	launch := &Launch{
		Name:   "sum",
		Domain: machine.NewGrid(1),
		Reqs: func(pt []int) []Req {
			return []Req{
				{Region: a, Rect: tensor.FullRect([]int{1}), Priv: ReduceSum},
				{Region: b, Rect: tensor.FullRect([]int{n}), Priv: ReadOnly},
			}
		},
		Kernel: Kernel{
			Flops: func(pt []int) float64 { return float64(n) },
			Run: func(ctx *Ctx) {
				s := 0.0
				for i := 0; i < n; i++ {
					s += ctx.ReadAt("B", i)
				}
				ctx.WriteAdd("A", s, 0)
			},
		},
	}
	prog := &Program{Name: "sum", Machine: m, Regions: []*Region{a, b}, Launches: []*Launch{launch}}
	res, err := Run(prog, Options{Params: testParams(), Real: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0 owns B[0:2]; pieces from procs 1..3 must be gathered.
	if res.Copies != 3 {
		t.Fatalf("copies = %d, want 3", res.Copies)
	}
	if got, want := ta.At(0), tb.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestReductionFlush: two tasks on different procs reduce into a tile owned
// by proc 0.
func TestReductionFlush(t *testing.T) {
	procs := 2
	m := flatMachine(procs)
	// A lives entirely on proc 0.
	aPlace := distnot.NewPlacement(&distnot.Statement{
		TensorDims:  []string{"x"},
		MachineDims: []distnot.MachineName{{Kind: distnot.Fixed, Index: 0}},
	})
	a := NewRegion("A", []int{4}, aPlace)
	ta := tensor.New("A", 4)
	a.Bind(ta)
	launch := &Launch{
		Name:   "partial",
		Domain: machine.NewGrid(procs),
		Reqs: func(pt []int) []Req {
			return []Req{{Region: a, Rect: tensor.FullRect([]int{4}), Priv: ReduceSum}}
		},
		Kernel: Kernel{
			Flops: func(pt []int) float64 { return 4 },
			Run: func(ctx *Ctx) {
				for i := 0; i < 4; i++ {
					ctx.WriteAdd("A", float64(ctx.Point[0]+1), i)
				}
			},
		},
	}
	prog := &Program{Name: "red", Machine: m, Regions: []*Region{a}, Launches: []*Launch{launch}}
	res, err := Run(prog, Options{Params: testParams(), Real: true})
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0 writes in place (owner); proc 1 reduces through an accumulator
	// flushed with one copy.
	if res.Copies != 1 {
		t.Fatalf("copies = %d, want 1 reduction copy", res.Copies)
	}
	for i := 0; i < 4; i++ {
		if ta.At(i) != 3 { // 1 (proc0) + 2 (proc1)
			t.Fatalf("A(%d) = %v, want 3", i, ta.At(i))
		}
	}
}

// TestNearestSourceRelay: with three procs, two consumers of the same remote
// piece; the second consumer should be able to fetch from the first (relay)
// rather than the owner when that is cheaper.
func TestNearestSourceRelay(t *testing.T) {
	n, procs := 4, 3
	m := flatMachine(procs)
	// B lives entirely on proc 0.
	bPlace := distnot.NewPlacement(&distnot.Statement{
		TensorDims:  []string{"x"},
		MachineDims: []distnot.MachineName{{Kind: distnot.Fixed, Index: 0}},
	})
	b := NewRegion("B", []int{n}, bPlace)
	a := NewRegion("A", []int{procs}, distnot.NewPlacement(distnot.MustParse("x->x")))
	full := tensor.FullRect([]int{n})
	mk := func(name string, dst int) *Launch {
		return &Launch{
			Name:     name,
			Domain:   machine.NewGrid(1),
			MapPoint: func(pt []int) int { return dst },
			Reqs: func(pt []int) []Req {
				return []Req{
					{Region: a, Rect: tensor.NewRect([]int{dst}, []int{dst + 1}), Priv: WriteDiscard},
					{Region: b, Rect: full, Priv: ReadOnly},
				}
			},
			Kernel: Kernel{Flops: func(pt []int) float64 { return 1 }},
		}
	}
	prog := &Program{Name: "relay", Machine: m, Regions: []*Region{a, b},
		Launches: []*Launch{mk("t1", 1), mk("t2", 2)}}
	res, err := Run(prog, Options{Params: testParams(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace = %v", res.Trace)
	}
	if res.Trace[0].Src != 0 || res.Trace[0].Dst != 1 {
		t.Fatalf("first copy = %+v", res.Trace[0])
	}
	// Proc 0's out-port is busy until the first copy ends; fetching from
	// proc 1's fresh instance finishes no later, so the relay must pick a
	// source that gives the earliest completion (either is fine here), but
	// with OwnerOnly it must be proc 0.
	resOwner, err := Run(prog, Options{Params: testParams(), Trace: true, OwnerOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if resOwner.Trace[1].Src != 0 {
		t.Fatalf("OwnerOnly second copy src = %d, want 0", resOwner.Trace[1].Src)
	}
	if res.Time > resOwner.Time {
		t.Fatalf("nearest-source should not be slower: %v vs %v", res.Time, resOwner.Time)
	}
}

// TestOverlapVsSynchronous: communication should hide under computation in
// the default mode and serialize in Synchronous mode.
func TestOverlapVsSynchronous(t *testing.T) {
	n, procs := 8, 2
	m := flatMachine(procs)
	bPlace := distnot.NewPlacement(&distnot.Statement{
		TensorDims:  []string{"x"},
		MachineDims: []distnot.MachineName{{Kind: distnot.Fixed, Index: 0}},
	})
	b := NewRegion("B", []int{n}, bPlace)
	a := NewRegion("A", []int{2}, distnot.NewPlacement(distnot.MustParse("x->x")))
	// Two sequential launches on proc 1, each reading a different chunk of B
	// and computing for a long time: chunk 2's copy can overlap chunk 1's
	// compute only in async mode.
	mk := func(name string, lo int) *Launch {
		return &Launch{
			Name:     name,
			Domain:   machine.NewGrid(1),
			MapPoint: func(pt []int) int { return 1 },
			Reqs: func(pt []int) []Req {
				return []Req{
					{Region: a, Rect: tensor.NewRect([]int{1}, []int{2}), Priv: ReduceSum},
					{Region: b, Rect: tensor.NewRect([]int{lo}, []int{lo + 4}), Priv: ReadOnly},
				}
			},
			Kernel: Kernel{Flops: func(pt []int) float64 { return 1000 }},
		}
	}
	prog := &Program{Name: "ovl", Machine: m, Regions: []*Region{a, b},
		Launches: []*Launch{mk("s0", 0), mk("s1", 4)}}
	async, err := Run(prog, Options{Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	syncRes, err := Run(prog, Options{Params: testParams(), Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	if async.Time >= syncRes.Time {
		t.Fatalf("overlap should be faster: async %v vs sync %v", async.Time, syncRes.Time)
	}
}

// TestTransientEviction: the per-leaf window keeps memory bounded.
func TestTransientEviction(t *testing.T) {
	n, chunks := 64, 8
	m := flatMachine(2)
	bPlace := distnot.NewPlacement(&distnot.Statement{
		TensorDims:  []string{"x"},
		MachineDims: []distnot.MachineName{{Kind: distnot.Fixed, Index: 0}},
	})
	b := NewRegion("B", []int{n}, bPlace)
	a := NewRegion("A", []int{2}, distnot.NewPlacement(distnot.MustParse("x->x")))
	var launches []*Launch
	for s := 0; s < chunks; s++ {
		lo := s * (n / chunks)
		launches = append(launches, &Launch{
			Name:     "step",
			Domain:   machine.NewGrid(1),
			MapPoint: func(pt []int) int { return 1 },
			Reqs: func(pt []int) []Req {
				return []Req{
					{Region: a, Rect: tensor.NewRect([]int{1}, []int{2}), Priv: ReduceSum},
					{Region: b, Rect: tensor.NewRect([]int{lo}, []int{lo + n/chunks}), Priv: ReadOnly},
				}
			},
			Kernel: Kernel{Flops: func(pt []int) float64 { return 1 }},
		})
	}
	prog := &Program{Name: "evict", Machine: m, Regions: []*Region{a, b}, Launches: launches}
	res, err := Run(prog, Options{Params: testParams(), TransientWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf 0 holds all of B persistently (512B) plus its A piece (8B).
	// Leaf 1's transient footprint (8B A + 8B accumulator + 2 chunks of 64B)
	// must stay below that thanks to eviction; without the window it would
	// reach 8+8+8*64 = 528 and dominate.
	if res.PeakMemBytes > 520 {
		t.Fatalf("peak mem = %d, want <= 520", res.PeakMemBytes)
	}
	if res.Copies != int64(chunks) {
		t.Fatalf("copies = %d, want %d", res.Copies, chunks)
	}
}

// TestOOMDetection: a tiny memory capacity must flag OOM.
func TestOOMDetection(t *testing.T) {
	prog, _, _, _ := vectorAddProgram(1024, 2)
	p := testParams()
	p.MemCapacity = 100 // bytes; each proc holds 3 x 512 x 8 bytes
	res, err := Run(prog, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatal("expected OOM")
	}
}

func TestRealRequiresBoundData(t *testing.T) {
	m := flatMachine(1)
	a := NewRegion("A", []int{4}, nil)
	prog := &Program{Name: "x", Machine: m, Regions: []*Region{a}}
	if _, err := Run(prog, Options{Params: testParams(), Real: true}); err == nil {
		t.Fatal("expected error for unbound region in Real mode")
	}
}

func TestGFlopsPerSec(t *testing.T) {
	r := &Result{Time: 2, Flops: 4e9}
	if r.GFlopsPerSec() != 2 {
		t.Fatalf("GFlopsPerSec = %v, want 2", r.GFlopsPerSec())
	}
	if (&Result{}).GFlopsPerSec() != 0 {
		t.Fatal("zero-time result should report 0")
	}
}

func TestRegionOwnerRectNilPlacement(t *testing.T) {
	m := flatMachine(2)
	r := NewRegion("R", []int{4}, nil)
	if _, ok := r.OwnerRect(m, []int{1}); ok {
		t.Fatal("nil placement should live only on leaf 0")
	}
	rect, ok := r.OwnerRect(m, []int{0})
	if !ok || !rect.Equal(tensor.FullRect([]int{4})) {
		t.Fatalf("rect = %v", rect)
	}
}
