package legion

import (
	"testing"

	"distal/internal/distnot"
	"distal/internal/machine"
	"distal/internal/tensor"
)

// readLaunch builds a single-task launch on leaf dst reading the given rect
// of b and writing its own piece of a (in place, so writes do not disturb
// the copy accounting).
func readLaunch(name string, a, b *Region, dst int, rect tensor.Rect) *Launch {
	return &Launch{
		Name:     name,
		Domain:   machine.NewGrid(1),
		MapPoint: func(pt []int) int { return dst },
		Reqs: func(pt []int) []Req {
			return []Req{
				{Region: a, Rect: tensor.NewRect([]int{dst}, []int{dst + 1}), Priv: WriteDiscard},
				{Region: b, Rect: rect, Priv: ReadOnly},
			}
		},
		Kernel: Kernel{Flops: func(pt []int) float64 { return 1 }},
	}
}

// TestGatherPiecewise: a requirement spanning several owners' pieces has no
// single covering instance; it must be gathered piecewise from the
// persistent owners, and the combined transient must satisfy later reads.
func TestGatherPiecewise(t *testing.T) {
	n, procs := 16, 4
	m := flatMachine(procs)
	b := NewRegion("B", []int{n}, distnot.NewPlacement(distnot.MustParse("x->x")))
	a := NewRegion("A", []int{procs}, distnot.NewPlacement(distnot.MustParse("x->x")))
	full := tensor.FullRect([]int{n})
	prog := &Program{Name: "gather", Machine: m, Regions: []*Region{a, b},
		Launches: []*Launch{
			readLaunch("g1", a, b, 0, full),
			readLaunch("g2", a, b, 0, full),
		}}
	res, err := Run(prog, Options{Params: testParams(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf 0 owns B[0:4) locally; B[4:8), B[8:12), B[12:16) are copied from
	// their owners. The second read hits the combined transient: no copies.
	if res.Copies != 3 {
		t.Fatalf("copies = %d, want 3 gather pieces", res.Copies)
	}
	wantPieces := map[string]int{
		"[4,8)": 1, "[8,12)": 2, "[12,16)": 3,
	}
	for _, c := range res.Trace {
		src, ok := wantPieces[c.Rect.String()]
		if !ok || c.Src != src || c.Dst != 0 {
			t.Fatalf("unexpected gather copy %+v", c)
		}
		delete(wantPieces, c.Rect.String())
	}
	if len(wantPieces) != 0 {
		t.Fatalf("missing gather pieces: %v", wantPieces)
	}
}

// TestTransientWindowRefetch: once the eviction window pushes a transient
// instance out, its memory is freed and a later read of the same rect must
// re-fetch it.
func TestTransientWindowRefetch(t *testing.T) {
	n, procs := 16, 4
	m := flatMachine(procs)
	b := NewRegion("B", []int{n}, distnot.NewPlacement(distnot.MustParse("x->x")))
	a := NewRegion("A", []int{procs}, distnot.NewPlacement(distnot.MustParse("x->x")))
	// Three distinct overlapping 12-element windows, then the first again.
	// Every window spans three owners, so each uninstalled read gathers
	// pieces; leaf 1 executes all tasks.
	r1 := tensor.NewRect([]int{0}, []int{12})
	r2 := tensor.NewRect([]int{4}, []int{16})
	r3 := tensor.NewRect([]int{2}, []int{14})
	launches := func() []*Launch {
		return []*Launch{
			readLaunch("s1", a, b, 1, r1),
			readLaunch("s2", a, b, 1, r2),
			readLaunch("s3", a, b, 1, r3),
			readLaunch("s4", a, b, 1, r1),
		}
	}

	narrow, err := Run(&Program{Name: "w1", Machine: m, Regions: []*Region{a, b}, Launches: launches()},
		Options{Params: testParams(), TransientWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(&Program{Name: "w3", Machine: m, Regions: []*Region{a, b}, Launches: launches()},
		Options{Params: testParams(), TransientWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With a window of 3 the fourth read hits the still-live instance of
	// the first; with a window of 1 that instance is dead and the read
	// gathers again.
	if wide.Copies >= narrow.Copies {
		t.Fatalf("re-fetch after eviction: narrow window copies = %d, wide = %d, want narrow > wide",
			narrow.Copies, wide.Copies)
	}
	// Eviction must free memory: the narrow window never holds all three
	// 96-byte transients at once, the wide window does.
	if narrow.PeakMemBytes >= wide.PeakMemBytes {
		t.Fatalf("eviction did not free memory: narrow peak = %d, wide peak = %d",
			narrow.PeakMemBytes, wide.PeakMemBytes)
	}
}

// TestTransientStrictContainment: a requirement spanning two owners has no
// persistent cover, but a live transient of a strictly larger rect
// (installed by an earlier gather on another leaf) does — the candidate
// search must find it through the volume-bucket index and satisfy the read
// with one copy from the transient instead of a piecewise gather.
func TestTransientStrictContainment(t *testing.T) {
	n, procs := 16, 4
	m := flatMachine(procs)
	b := NewRegion("B", []int{n}, distnot.NewPlacement(distnot.MustParse("x->x")))
	a := NewRegion("A", []int{procs}, distnot.NewPlacement(distnot.MustParse("x->x")))
	full := tensor.FullRect([]int{n})
	span := tensor.NewRect([]int{2}, []int{6}) // spans owners 0 and 1
	prog := &Program{Name: "contain", Machine: m, Regions: []*Region{a, b},
		Launches: []*Launch{
			readLaunch("g1", a, b, 1, full), // leaf 1 gathers all of B
			readLaunch("g2", a, b, 2, span), // leaf 2 wants a spanning sub-rect
		}}
	res, err := Run(prog, Options{Params: testParams(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	// g1 gathers 3 pieces (leaf 1 owns [4,8)); g2 is satisfied by ONE copy
	// of [2,6) from leaf 1's full transient, not a 2-piece gather.
	if res.Copies != 4 {
		t.Fatalf("copies = %d, want 4 (3 gather pieces + 1 contained copy)", res.Copies)
	}
	foundContained := false
	for _, c := range res.Trace {
		if c.Rect.String() == span.String() {
			foundContained = true
			if c.Src != 1 || c.Dst != 2 {
				t.Fatalf("contained copy %+v, want src 1 dst 2", c)
			}
		}
	}
	if !foundContained {
		t.Fatalf("no whole-rect copy of %s in trace: %+v", span, res.Trace)
	}
}
