package legion

import (
	"testing"

	"distal/internal/distnot"
	"distal/internal/machine"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// TestFlushFanInScatter exercises the owner-piece index on a reduction
// fan-in: four processors each produce a full-rect partial sum of A, whose
// owner instances are block-distributed across all four. The flush must
// tree-merge the four accumulators and then scatter exactly one piece to
// every non-local owner, and the Real-mode contents must equal the sum of
// every partial.
func TestFlushFanInScatter(t *testing.T) {
	const n, procs = 8, 4
	m := flatMachine(procs)
	place := distnot.NewPlacement(distnot.MustParse("x->x"))
	a := NewRegion("A", []int{n}, place)
	ta := tensor.New("A", n)
	a.Bind(ta)
	full := tensor.FullRect([]int{n})
	launch := &Launch{
		Name:   "partial",
		Domain: machine.NewGrid(procs),
		Reqs: func(pt []int) []Req {
			return []Req{{Region: a, Rect: full, Priv: ReduceSum}}
		},
		Kernel: Kernel{
			Flops: func(pt []int) float64 { return n },
			Run: func(ctx *Ctx) {
				for i := 0; i < n; i++ {
					ctx.WriteAdd("A", float64(ctx.Point[0]+1), i)
				}
			},
		},
	}
	prog := &Program{Name: "fanin", Machine: m, Regions: []*Region{a}, Launches: []*Launch{launch}}
	res, err := Run(prog, Options{Params: testParams(), Real: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every coordinate accumulates 1+2+3+4 from the four partials.
	for i := 0; i < n; i++ {
		if ta.At(i) != 10 {
			t.Fatalf("A(%d) = %v, want 10", i, ta.At(i))
		}
	}
	// Each leaf owns a quarter of A; no accumulator is in place (none
	// covers the full rect), so the binary tree merges 4 accumulators with
	// 3 copies and the survivor (on leaf 0) scatters 3 remote pieces.
	if res.Copies != 6 {
		t.Fatalf("copies = %d, want 3 merge + 3 scatter", res.Copies)
	}
	// The scatter must send exactly the owned piece to each remote owner.
	seen := map[int]tensor.Rect{}
	for _, c := range res.Trace {
		if c.Launch == "flush" && c.Src == 0 && c.Dst != 0 {
			if _, dup := seen[c.Dst]; dup {
				t.Fatalf("owner %d received two pieces", c.Dst)
			}
			seen[c.Dst] = c.Rect
		}
	}
	for leaf := 1; leaf < procs; leaf++ {
		lo, hi := tensor.BlockRange(n, procs, leaf)
		want := tensor.NewRect([]int{lo}, []int{hi})
		got, ok := seen[leaf]
		if !ok {
			t.Fatalf("owner %d received no piece; trace %v", leaf, res.Trace)
		}
		if !got.Equal(want) {
			t.Fatalf("owner %d received %v, want %v", leaf, got, want)
		}
	}
}

// TestSourceSelectionCostClass pins ensureLocal's cheapest-source choice
// across cost classes: with B owned in node 0 and a fresh transient replica
// in node 1, a reader in node 1 must fetch over the fast intra-node link
// from the replica, not from the remote owner — and must fall back to the
// owner under the OwnerOnly ablation.
func TestSourceSelectionCostClass(t *testing.T) {
	const n = 8
	m := machine.New(machine.NewGrid(4), machine.SysMem, machine.CPU).WithProcsPerNode(2)
	params := sim.Params{
		PeakFlops:    100,
		MemBandwidth: 1e18,
		MemCapacity:  1 << 40,
		IntraBW:      100, // intra-node is 10x faster than the network
		InterBW:      10,
	}
	// B lives entirely on leaf 0 (node 0).
	bPlace := distnot.NewPlacement(&distnot.Statement{
		TensorDims:  []string{"x"},
		MachineDims: []distnot.MachineName{{Kind: distnot.Fixed, Index: 0}},
	})
	b := NewRegion("B", []int{n}, bPlace)
	a := NewRegion("A", []int{4}, distnot.NewPlacement(distnot.MustParse("x->x")))
	full := tensor.FullRect([]int{n})
	mk := func(name string, dst int) *Launch {
		return &Launch{
			Name:     name,
			Domain:   machine.NewGrid(1),
			MapPoint: func(pt []int) int { return dst },
			Reqs: func(pt []int) []Req {
				return []Req{
					{Region: a, Rect: tensor.NewRect([]int{dst}, []int{dst + 1}), Priv: WriteDiscard},
					{Region: b, Rect: full, Priv: ReadOnly},
				}
			},
			Kernel: Kernel{Flops: func(pt []int) float64 { return 1 }},
		}
	}
	// t1 pulls B into node 1 (leaf 3); t2 reads it from node 1 (leaf 2).
	prog := &Program{Name: "class", Machine: m, Regions: []*Region{a, b},
		Launches: []*Launch{mk("t1", 3), mk("t2", 2)}}

	res, err := Run(prog, Options{Params: params, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace = %v", res.Trace)
	}
	if res.Trace[0].Src != 0 || res.Trace[0].Dst != 3 {
		t.Fatalf("first copy = %+v, want owner 0 -> leaf 3", res.Trace[0])
	}
	if res.Trace[1].Src != 3 || res.Trace[1].Dst != 2 {
		t.Fatalf("second copy = %+v, want intra-node replica 3 -> leaf 2", res.Trace[1])
	}

	resOwner, err := Run(prog, Options{Params: params, Trace: true, OwnerOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if resOwner.Trace[1].Src != 0 {
		t.Fatalf("OwnerOnly second copy src = %d, want owner 0", resOwner.Trace[1].Src)
	}
	if res.Time >= resOwner.Time {
		t.Fatalf("intra-node source should be faster: %v vs %v", res.Time, resOwner.Time)
	}
}
