package legion

import (
	"distal/internal/machine"
)

// Kernel is the leaf computation of an index-launch point.
type Kernel struct {
	// Flops returns the floating-point operations performed at a point.
	Flops func(point []int) float64
	// MemBytes returns the local memory traffic of the point in bytes
	// (roofline model input). Zero means compute-bound.
	MemBytes func(point []int) float64
	// Run performs the real computation (Real mode only). It may be nil for
	// kernels only ever used in simulation.
	Run func(ctx *Ctx)
}

// Launch is an index task launch: one task per point of Domain, each with
// point-dependent region requirements (Legion projection functors).
//
// The executor reuses one point slice across the domain walk: MapPoint,
// Reqs, the Kernel callbacks, and Ctx.Point must not retain the slice
// beyond their call (copy it if needed), mirroring Grid.Points.
type Launch struct {
	Name   string
	Domain machine.Grid
	// MapPoint places a domain point on a leaf processor (flat leaf index).
	// Nil uses the default mapper: the domain is linearized onto the leaf
	// grid round-robin.
	MapPoint func(point []int) int
	// Reqs computes the region requirements of the task at a point.
	Reqs   func(point []int) []Req
	Kernel Kernel
}

// Program is a compiled DISTAL kernel: an ordered sequence of index
// launches over a set of regions on a machine.
type Program struct {
	Name     string
	Machine  *machine.Machine
	Regions  []*Region
	Launches []*Launch
}

// RegionByName returns the region with the given name, or nil.
func (p *Program) RegionByName(name string) *Region {
	for _, r := range p.Regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// defaultMapPoint linearizes a launch-domain point onto the leaf grid. When
// the domain is smaller than the machine the low leaf indices are used; when
// larger, tasks wrap around (round-robin).
func defaultMapPoint(domain, leaves machine.Grid) func(point []int) int {
	n := leaves.Size()
	return func(point []int) int { return domain.Linearize(point) % n }
}

// Ctx and the accumulator live in ctx.go.
