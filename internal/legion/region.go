// Package legion is a miniature reimplementation of the parts of the Legion
// runtime system that DISTAL targets (§6): logical regions over
// hyper-rectangular index spaces, partitions induced by data distributions,
// physical instances living in leaf-processor memories, tasks grouped into
// index launches with region requirements and privileges, a mapper that
// places tasks on processors, and implicit communication realized by copies
// from the nearest valid instance.
//
// Programs execute in two modes sharing one code path:
//
//   - Real: leaf kernels compute on actual float64 data, and the result can
//     be compared against the reference evaluator. Used for correctness.
//   - Simulated (the default): data is never materialized; the same task
//     graph is walked and every copy and task is priced by internal/sim.
//     Used to reproduce the paper's large-scale experiments.
//
// The executor keeps three per-region instance indexes so that source
// selection and reduction flushes scan candidates rather than the whole
// instance population, all keyed by the (comparable) tensor.RectKey of a
// requirement rect:
//
//   - regState.cover: the persistent owners fully containing a rect — the
//     candidate sources of whole-rect copies (filled lazily; owner
//     placement is immutable for the run, so entries never invalidate);
//   - regState.pieces: the owners overlapping a rect, with the overlap and
//     its payload precomputed — drives piecewise gathers and the
//     accumulator flush scatter;
//   - transByKey/volBuckets: live transient instances grouped by rect,
//     keyed exactly (transByKey, the one-lookup equal-rect candidates) and
//     by rect volume (volBuckets — only strictly larger volumes can
//     strictly contain a requirement rect), with installation order
//     recoverable from per-instance sequence numbers so candidate ordering
//     matches an exhaustive ordered scan.
//
// Copy source selection prices candidates per cost class (see
// sim.CopyClassCost): the cost model runs once per intra-/inter-node class
// and each candidate costs only a port-availability lookup.
package legion

import (
	"fmt"

	"distal/internal/distnot"
	"distal/internal/machine"
	"distal/internal/tensor"
)

// Privilege describes how a task uses a region requirement, mirroring
// Legion's privilege system.
type Privilege int

const (
	// ReadOnly data may be replicated freely.
	ReadOnly Privilege = iota
	// ReadWrite data is updated in place by its owner.
	ReadWrite
	// WriteDiscard data is overwritten without reading.
	WriteDiscard
	// ReduceSum data is accumulated with + and folded into the owner
	// instance when the program's reductions are flushed.
	ReduceSum
)

func (p Privilege) String() string {
	switch p {
	case ReadOnly:
		return "RO"
	case ReadWrite:
		return "RW"
	case WriteDiscard:
		return "WD"
	case ReduceSum:
		return "Red+"
	default:
		return fmt.Sprintf("Privilege(%d)", int(p))
	}
}

// Region is a logical region: a named dense index space of float64 values.
// In Real mode Data holds the canonical contents; simulated runs never touch
// it.
type Region struct {
	Name  string
	Shape []int

	// Placement is the region's initial data distribution onto the target
	// machine, from the tensor's format. Nil means the region is born on
	// leaf 0 (undistributed).
	Placement *distnot.Placement

	// Data is the canonical backing store (Real mode only).
	Data *tensor.Dense
}

// NewRegion creates a region with the given shape and placement.
func NewRegion(name string, shape []int, placement *distnot.Placement) *Region {
	return &Region{Name: name, Shape: shape, Placement: placement}
}

// Bytes returns the payload size of a rect of this region.
func (r *Region) Bytes(rect tensor.Rect) int64 { return int64(rect.Volume()) * 8 }

// Bind attaches canonical data for Real-mode execution. The tensor's shape
// must match the region's.
func (r *Region) Bind(t *tensor.Dense) {
	if len(t.Shape()) != len(r.Shape) {
		panic(fmt.Sprintf("legion: bind rank mismatch for region %s", r.Name))
	}
	for d := range r.Shape {
		if t.Shape()[d] != r.Shape[d] {
			panic(fmt.Sprintf("legion: bind shape mismatch for region %s: %v vs %v", r.Name, t.Shape(), r.Shape))
		}
	}
	r.Data = t
}

// Req is a region requirement of one task: the sub-rectangle accessed and
// the privilege with which it is accessed.
type Req struct {
	Region *Region
	Rect   tensor.Rect
	Priv   Privilege
	// Key is Rect's comparable identity, precomputed by the compiler when
	// requirements are materialized (rects are interned there, so the key is
	// built once per distinct rect rather than once per requirement per
	// launch point during execution). A zero Key means "not precomputed";
	// the executor falls back to rebuilding it.
	Key tensor.RectKey
}

// rectKey returns the requirement rect's comparable identity, preferring the
// precomputed Key. Requirement rects always have rank >= 1, so the zero
// RectKey (rank 0) is never a valid precomputed key.
func (q *Req) rectKey() tensor.RectKey {
	if q.Key == (tensor.RectKey{}) {
		return q.Rect.Key()
	}
	return q.Key
}

func (q Req) String() string {
	return fmt.Sprintf("%s[%s %s]", q.Region.Name, q.Rect, q.Priv)
}

// OwnerRect returns the sub-rectangle of the region owned by the given leaf
// processor under the region's placement, and whether the leaf owns one.
func (r *Region) OwnerRect(m *machine.Machine, leaf []int) (tensor.Rect, bool) {
	if r.Placement == nil {
		for _, x := range leaf {
			if x != 0 {
				return tensor.Rect{}, false
			}
		}
		return tensor.FullRect(r.Shape), true
	}
	return r.Placement.RectFor(r.Shape, m, leaf)
}
