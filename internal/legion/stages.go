package legion

import (
	"context"
	"fmt"
	"runtime"

	"distal/internal/machine"
	"distal/internal/obs"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// Handoff wires one region of a stage to the state an earlier stage left
// behind: the consumer's region To adopts the producer's region state for
// Region — the persistent owner instances stay distributed exactly where
// the producer placed them, their contents become valid at the producer's
// flush times, and (in Real mode) the consumer reads the producer's
// canonical tensor. A handoff is the "no gather-to-root" contract of a
// plan DAG: an intermediate never funnels through a single leaf between
// stages.
//
// A handoff is only sound when the two regions agree on shape and on
// placement (the adopting region's owner rects must be the ones the
// producer created); callers that want a different consumer layout insert
// an explicit repartition stage instead.
type Handoff struct {
	// From is the producing stage's index in the stage list; it must have
	// run before the adopting stage.
	From int
	// Region names the region in the producing stage's program.
	Region string
	// To names the adopting region in this stage's program. Empty means
	// the same name as Region.
	To string
}

// Stage is one program of a multi-stage execution: a compiled statement
// plus the handoffs connecting its regions to earlier stages' results.
type Stage struct {
	Prog    *Program
	Inherit []Handoff
	// Label names the stage in traces (typically its output tensor); empty
	// labels render as the stage index alone.
	Label string
	// Repart marks an inserted repartition stage, for trace annotation.
	Repart bool
}

// RunStages executes a list of compiled programs as one plan DAG in stage
// order, under one simulated clock and one memory account. Regions named by
// a Handoff adopt the producing stage's instance state in place —
// intermediates stay distributed between stages — while the remaining
// regions are placed exactly as an initial placement. Each stage's
// accumulators flush before the next stage places, so a consumer's copies
// price against the time the producer's owners actually became valid.
//
// A single-stage call is exactly RunContext: the per-stage sequence
// (place, launches, flush) reduces to the single-program event loop, so
// simulated metrics of one-stage runs are bit-identical to the
// single-program path by construction.
func RunStages(ctx context.Context, stages []Stage, opt Options) (*Result, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("legion: no stages to run")
	}
	if opt.TransientWindow == 0 {
		opt.TransientWindow = 2
	}
	first := stages[0].Prog
	for i := range stages {
		if stages[i].Prog == nil {
			return nil, fmt.Errorf("legion: stage %d has no program", i)
		}
		if stages[i].Prog.Machine != first.Machine {
			return nil, fmt.Errorf("legion: stage %d targets a different machine than stage 0", i)
		}
	}
	e := &executor{
		prog:   first,
		opt:    opt,
		ctx:    ctx,
		s:      sim.New(first.Machine, opt.Params),
		lg:     first.Machine.LeafGrid(),
		gpuMem: first.Machine.LeafMem() == machine.GPUFBMem,
		reg:    map[*Region]*regState{},
		accs:   map[accKey]*accumulator{},
	}
	e.workers = opt.RealWorkers
	if e.workers <= 0 {
		e.workers = min(runtime.GOMAXPROCS(0), 16)
	}
	e.batch = 1
	if n := len(opt.Batch); n > 0 {
		if !opt.Real {
			return nil, fmt.Errorf("legion: Options.Batch requires Real mode")
		}
		e.batch = n
	}
	if opt.Real {
		e.binds = opt.Batch
		if len(e.binds) == 0 {
			e.binds = []map[string]*tensor.Dense{opt.Data}
		}
		e.data = make([]map[*Region]*tensor.Dense, len(e.binds))
		for b := range e.data {
			e.data[b] = map[*Region]*tensor.Dense{}
		}
	}
	for si := range stages {
		st := &stages[si]
		e.prog = st.Prog
		_, ssp := obs.Start(ctx, "run-stage")
		ssp.SetAttr("stage", fmt.Sprint(si))
		if st.Label != "" {
			ssp.SetAttr("output", st.Label)
		}
		if st.Repart {
			ssp.SetAttr("repart", "true")
		}
		ssp.SetAttr("launches", fmt.Sprint(len(st.Prog.Launches)))
		if err := e.placeStage(si, st); err != nil {
			ssp.End()
			return nil, err
		}
		for _, l := range st.Prog.Launches {
			if err := ctx.Err(); err != nil {
				ssp.End()
				return nil, err
			}
			ends := make([]float64, e.lg.Size())
			if n := len(e.endHist); n > 0 {
				copy(ends, e.endHist[n-1]) // leaves without a task keep their last end
			}
			e.launchEnds = ends
			lsp := ssp.StartChild("launch")
			lsp.SetAttr("name", l.Name)
			e.sp = lsp
			err := e.runLaunch(l)
			e.sp = nil
			lsp.End()
			if err != nil {
				ssp.End()
				return nil, err
			}
			e.endHist = append(e.endHist, ends)
			if len(e.endHist) > opt.TransientWindow {
				e.endHist = e.endHist[1:]
			}
			if opt.Synchronous {
				e.s.Barrier()
			}
		}
		e.flushAccumulators()
		ssp.End()
	}
	res := &Result{
		Time:         e.s.Makespan(),
		Flops:        e.s.FlopsTotal,
		IntraBytes:   e.s.IntraBytes,
		InterBytes:   e.s.InterBytes,
		Copies:       e.s.CopyCount,
		PeakMemBytes: e.s.PeakMem(),
		Trace:        e.trace,
	}
	res.OOM, res.OOMLeaf, _ = e.s.OOM()
	return res, nil
}

// placeStage resolves stage si's regions: regions named by a Handoff adopt
// the producing stage's instance state (and, in Real mode, its canonical
// data) in place, the rest are validated and placed exactly as an initial
// placement.
func (e *executor) placeStage(si int, st *Stage) error {
	inherit := map[string]Handoff{}
	for _, h := range st.Inherit {
		to := h.To
		if to == "" {
			to = h.Region
		}
		if h.From < 0 || h.From >= si {
			return fmt.Errorf("legion: stage %d inherits %s from stage %d, which has not run", si, to, h.From)
		}
		if _, dup := inherit[to]; dup {
			return fmt.Errorf("legion: stage %d inherits region %s twice", si, to)
		}
		if e.stageReg[h.From][h.Region] == nil {
			return fmt.Errorf("legion: stage %d inherits %s from stage %d, which has no such region", si, h.Region, h.From)
		}
		inherit[to] = h
	}
	named := make(map[string]*Region, len(e.prog.Regions))
	for _, r := range e.prog.Regions {
		named[r.Name] = r
		h, adopted := inherit[r.Name]
		if !adopted {
			if err := e.placeRegion(r); err != nil {
				return err
			}
			continue
		}
		delete(inherit, r.Name)
		src := e.stageReg[h.From][h.Region]
		if len(src.Shape) != len(r.Shape) {
			return fmt.Errorf("legion: stage %d region %s has rank %d, inherited %s has %d", si, r.Name, len(r.Shape), h.Region, len(src.Shape))
		}
		for d := range r.Shape {
			if src.Shape[d] != r.Shape[d] {
				return fmt.Errorf("legion: stage %d region %s has shape %v, inherited %s has %v", si, r.Name, r.Shape, h.Region, src.Shape)
			}
		}
		rs := e.reg[src]
		if rs.dirty {
			// The producer rewrote the canonical contents at its flush:
			// transient replicas copied before that are stale and must not
			// serve as copy sources in this stage. The persistent owners
			// carry the flushed data (validAt was bumped to the flush end).
			e.dropTransients(rs)
			rs.dirty = false
		}
		e.reg[r] = rs
		for b := range e.data {
			if d := e.data[b][src]; d != nil {
				e.data[b][r] = d
			}
		}
	}
	for to := range inherit {
		return fmt.Errorf("legion: stage %d inherits into region %s, which its program does not declare", si, to)
	}
	e.stageReg = append(e.stageReg, named)
	return nil
}

// placeRegion validates a fresh region's data binding and creates the
// persistent owner instances its placement dictates, charging their memory.
func (e *executor) placeRegion(r *Region) error {
	if e.opt.Real {
		for b, bind := range e.binds {
			inst := ""
			if e.batch > 1 {
				inst = fmt.Sprintf(" (instance %d)", b)
			}
			d := bind[r.Name]
			if d == nil {
				d = r.Data
			}
			if d == nil {
				return fmt.Errorf("legion: Real execution requires data bound to region %s%s", r.Name, inst)
			}
			if len(d.Shape()) != len(r.Shape) {
				return fmt.Errorf("legion: data bound to region %s%s has rank %d, want %d", r.Name, inst, len(d.Shape()), len(r.Shape))
			}
			for dim := range r.Shape {
				if d.Shape()[dim] != r.Shape[dim] {
					return fmt.Errorf("legion: data bound to region %s%s has shape %v, want %v", r.Name, inst, d.Shape(), r.Shape)
				}
			}
			e.data[b][r] = d
		}
	}
	rs := &regState{
		region:     r,
		perLeaf:    map[int][]*instance{},
		transFIFO:  map[int][]*instance{},
		transByKey: map[tensor.RectKey]*transGroup{},
		volBuckets: map[int64][]*transGroup{},
		cover:      map[tensor.RectKey][]*instance{},
		pieces:     map[tensor.RectKey][]ownerPiece{},
	}
	n := e.lg.Size()
	coord := make([]int, e.lg.Rank())
	for leaf := 0; leaf < n; leaf++ {
		e.lg.DelinearizeInto(leaf, coord)
		rect, ok := r.OwnerRect(e.prog.Machine, coord)
		if !ok || rect.Empty() {
			continue
		}
		inst := &instance{leaf: leaf, rect: rect, persistent: true, live: true, bytes: r.Bytes(rect)}
		rs.persistent = append(rs.persistent, inst)
		rs.perLeaf[leaf] = append(rs.perLeaf[leaf], inst)
		e.s.Alloc(leaf, inst.bytes)
	}
	e.reg[r] = rs
	return nil
}

// dropTransients frees every live transient instance of a region and resets
// its transient indexes; the persistent owners are untouched.
func (e *executor) dropTransients(rs *regState) {
	for leaf, insts := range rs.transFIFO {
		for _, inst := range insts {
			inst.live = false
			e.s.Free(leaf, inst.bytes)
			rs.perLeaf[leaf] = removeInst(rs.perLeaf[leaf], inst)
		}
	}
	rs.transFIFO = map[int][]*instance{}
	rs.transByKey = map[tensor.RectKey]*transGroup{}
	rs.volBuckets = map[int64][]*transGroup{}
	rs.volumes = nil
}
