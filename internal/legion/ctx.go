package legion

import (
	"fmt"

	"distal/internal/tensor"
)

// Ctx gives a Real-mode leaf kernel access to the data of its region
// requirements in global coordinates. Reads and writes resolve against the
// execution's data binding (Options.Data or one Options.Batch instance,
// overriding Region.Data), so one immutable cached program can run on
// different data per execution — and, under a batched execution, on N
// independent problem instances at once: each deferred task carries the slot
// (instance index) it computes, and every read or write resolves against
// that instance's tensors.
//
// Instances are recycled through the executor's free list: runLaunch binds
// one per deferred (instance × task), the task batch runs, and reset returns
// the maps to the list — the real path allocates a handful of Ctxs per
// execution rather than two maps per task.
type Ctx struct {
	// Point is the task's domain coordinate. The slice is carved from a
	// per-launch slab and stays valid for the task's whole invocation, but
	// kernels must not retain it past their return. Under a batched
	// execution all instances of one point share the slice (it is read-only
	// during the drain).
	Point  []int
	slot   int // batch instance index (0 for single-instance runs)
	reads  map[string]*tensor.Dense
	writes map[string]*accumulator
}

func newCtx() *Ctx {
	return &Ctx{reads: map[string]*tensor.Dense{}, writes: map[string]*accumulator{}}
}

// reset drops the task's bindings (keeping the map storage) so the Ctx can
// be reused by a later task without holding tensors or accumulators live.
func (c *Ctx) reset() {
	c.Point = nil
	c.slot = 0
	clear(c.reads)
	clear(c.writes)
}

// accumulator is a task-local output buffer covering a rect of a region. It
// is combined into the canonical region data when reductions flush. The
// simulated-time fields (rect, combine, lastUse, ...) are shared by every
// batch instance — accounting runs once per accumulator regardless of batch
// size — while the Real-mode storage is per instance: bufs[slot] holds
// instance slot's canonical tensor and (for non-in-place accumulators) its
// private local buffer.
type accumulator struct {
	region  *Region
	rect    tensor.Rect
	key     tensor.RectKey
	combine Privilege // ReduceSum accumulates; others overwrite
	inPlace bool      // writes go directly to the canonical data
	leaf    int
	lastUse float64
	bufs    []accBuf // Real mode: one entry per batch instance
}

// accBuf is one batch instance's view of an accumulator: the instance's
// canonical region data and, for non-in-place accumulators, the local buffer
// (indexed by local coordinates, global - rect.Lo).
type accBuf struct {
	canon *tensor.Dense
	data  *tensor.Dense
}

// ReadAt returns the value of region name at the global coordinate p.
// Reading is always satisfied from the canonical data: read-only inputs have
// a single version for the duration of a program, so every valid instance
// holds identical contents.
func (c *Ctx) ReadAt(name string, p ...int) float64 {
	t, ok := c.reads[name]
	if !ok || t == nil {
		panic(fmt.Sprintf("legion: task has no readable requirement on %s", name))
	}
	return t.At(p...)
}

// WriteAdd accumulates v into region name at the global coordinate p.
func (c *Ctx) WriteAdd(name string, v float64, p ...int) {
	a := c.acc(name)
	b := &a.bufs[c.slot]
	if a.inPlace {
		b.canon.Add(v, p...)
		return
	}
	b.data.Add(v, local(p, a.rect)...)
}

// WriteSet stores v into region name at the global coordinate p.
func (c *Ctx) WriteSet(name string, v float64, p ...int) {
	a := c.acc(name)
	b := &a.bufs[c.slot]
	if a.inPlace {
		b.canon.Set(v, p...)
		return
	}
	b.data.Set(v, local(p, a.rect)...)
}

// ReadLocalAt reads back a value previously written by this task's
// write/reduce requirement (needed by += kernels that read their output).
func (c *Ctx) ReadLocalAt(name string, p ...int) float64 {
	a := c.acc(name)
	b := &a.bufs[c.slot]
	if a.inPlace {
		return b.canon.At(p...)
	}
	return b.data.At(local(p, a.rect)...)
}

// ReadSurface exposes the raw storage of the named read requirement: the
// canonical backing slice and its row-major strides, addressed in global
// coordinates (offset = dot(p, strides)). Compiled kernel programs use it to
// read without per-point map lookups or bounds re-checks; the requirement
// check happens once here instead of once per element.
func (c *Ctx) ReadSurface(name string) (data []float64, strides []int) {
	t, ok := c.reads[name]
	if !ok || t == nil {
		panic(fmt.Sprintf("legion: task has no readable requirement on %s", name))
	}
	return t.Data(), t.Strides()
}

// WriteSurface exposes the raw storage of the named write requirement. The
// element at global coordinate p lives at data[base+dot(p, strides)]: for an
// in-place instance that is the canonical tensor itself (base 0), for a
// task-local accumulator the base folds the rect origin into the offset so
// kernels address both cases identically.
func (c *Ctx) WriteSurface(name string) (data []float64, strides []int, base int) {
	a := c.acc(name)
	b := &a.bufs[c.slot]
	t := b.data
	if a.inPlace {
		t = b.canon
	}
	strides = t.Strides()
	if !a.inPlace {
		for d, lo := range a.rect.Lo {
			base -= lo * strides[d]
		}
	}
	return t.Data(), strides, base
}

func (c *Ctx) acc(name string) *accumulator {
	a, ok := c.writes[name]
	if !ok {
		panic(fmt.Sprintf("legion: task has no writable requirement on %s", name))
	}
	return a
}

func local(p []int, rect tensor.Rect) []int {
	out := make([]int, len(p))
	for d := range p {
		out[d] = p[d] - rect.Lo[d]
	}
	return out
}
