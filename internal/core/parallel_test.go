package core_test

// Tests for the Real-mode parallel task executor: kernel invocations of one
// launch fan out over a bounded worker pool, on one immutable compiled plan
// shared by concurrent executions. Under -race this asserts the executor's
// independence analysis (no two workers touch one accumulator); the exact
// output comparison against serial execution asserts exactly-once writes and
// unchanged floating-point accumulation order — a task run twice doubles a
// ReduceSum contribution, a reordered pair changes low bits.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// matmulData builds a fresh per-execution binding for an n x n matmul: the
// deterministic inputs the algorithms package seeds, and a zero output.
func matmulData(n int) map[string]*tensor.Dense {
	a := tensor.New("A", n, n)
	b := tensor.New("B", n, n)
	b.FillRandom(7)
	c := tensor.New("C", n, n)
	c.FillRandom(8)
	return map[string]*tensor.Dense{"A": a, "B": b, "C": c}
}

// TestParallelLeafTasksMatchSerial executes one shared compiled plan with
// per-execution data bindings at several worker counts and GOMAXPROCS
// settings, requiring every run's output to be bit-identical to the serial
// (RealWorkers=1) run. Workloads cover in-place accumulators (SUMMA: each
// leaf owns its output tile), replicated non-in-place accumulators with a
// distributed reduction (Johnson), and ragged extents.
func TestParallelLeafTasksMatchSerial(t *testing.T) {
	workloads := map[string]func() (core.Input, error){
		"summa": func() (core.Input, error) {
			return algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{N: 64, Procs: 16, ChunkSize: 16, Seed: 5})
		},
		"johnson": func() (core.Input, error) {
			return algorithms.Matmul(algorithms.Johnson, algorithms.MatmulConfig{N: 24, Procs: 8, Seed: 5})
		},
		"cannon-ragged": func() (core.Input, error) {
			return algorithms.Matmul(algorithms.Cannon, algorithms.MatmulConfig{N: 25, Procs: 9, Seed: 5})
		},
	}
	for name, mk := range workloads {
		t.Run(name, func(t *testing.T) {
			in, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			n := in.Tensors["A"].Shape[0]
			prog, err := core.Compile(in)
			if err != nil {
				t.Fatal(err)
			}
			execute := func(workers int) (*tensor.Dense, error) {
				data := matmulData(n)
				_, err := legion.Run(prog, legion.Options{
					Params: sim.LassenCPU(), Real: true, RealWorkers: workers, Data: data,
				})
				return data["A"], err
			}
			want, err := execute(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 7} {
				for _, procs := range []int{2, runtime.NumCPU()} {
					t.Run(fmt.Sprintf("workers=%d/gomaxprocs=%d", workers, procs), func(t *testing.T) {
						prev := runtime.GOMAXPROCS(procs)
						defer runtime.GOMAXPROCS(prev)
						got, err := execute(workers)
						if err != nil {
							t.Fatal(err)
						}
						for i := range got.Data() {
							if got.Data()[i] != want.Data()[i] {
								t.Fatalf("output[%d]: parallel %v != serial %v (bit-identical required)",
									i, got.Data()[i], want.Data()[i])
							}
						}
					})
				}
			}
		})
	}
}

// TestParallelSharedPlanConcurrentRuns executes one cached plan from many
// goroutines at once, each execution with its own data binding and the
// default worker pool — the serving scenario (plan cache hit, concurrent
// requests). Every result must equal the serial reference; under -race this
// additionally proves the plan and its pooled kernel scratch are safe to
// share.
func TestParallelSharedPlanConcurrentRuns(t *testing.T) {
	in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{N: 50, Procs: 16, ChunkSize: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	execute := func(workers int) (*tensor.Dense, error) {
		data := matmulData(50)
		_, err := legion.Run(prog, legion.Options{
			Params: sim.LassenCPU(), Real: true, RealWorkers: workers, Data: data,
		})
		return data["A"], err
	}
	want, err := execute(1)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	outs := make([]*tensor.Dense, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = execute(0)
		}(r)
	}
	wg.Wait()
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			t.Fatalf("run %d: %v", r, errs[r])
		}
		for i := range outs[r].Data() {
			if outs[r].Data()[i] != want.Data()[i] {
				t.Fatalf("run %d output[%d]: %v != serial %v", r, i, outs[r].Data()[i], want.Data()[i])
			}
		}
	}
}
