package core

import (
	"testing"

	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/sim"
	"distal/internal/tensor"
)

func testParams() sim.Params {
	return sim.Params{
		PeakFlops:    1e9,
		MemBandwidth: 1e12,
		MemCapacity:  1 << 40,
		IntraBW:      1e9,
		InterBW:      1e9,
		IntraLatency: 1e-6,
		InterLatency: 1e-6,
	}
}

// runAndCheck compiles, executes with real data, and compares against the
// reference evaluator. It returns the execution result for extra checks.
func runAndCheck(t *testing.T, in Input) *legion.Result {
	t.Helper()
	inputs := map[string]*tensor.Dense{}
	for name, d := range in.Tensors {
		if d.Data == nil {
			t.Fatalf("tensor %s has no data", name)
		}
		if name != in.Stmt.LHS.Tensor {
			inputs[name] = d.Data
		} else if in.Stmt.Increment {
			inputs[name] = d.Data.Clone("")
		}
	}
	want, err := ir.Evaluate(in.Stmt, inputs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := legion.Run(prog, legion.Options{Params: testParams(), Real: true})
	if err != nil {
		t.Fatal(err)
	}
	got := in.Tensors[in.Stmt.LHS.Tensor].Data
	// The reference may be rank-0 for scalar outputs while the distributed
	// pipeline uses rank-1 unit tensors.
	if want.Rank() == 0 && got.Rank() == 1 {
		if d := want.At() - got.At(0); d > 1e-9 || d < -1e-9 {
			t.Fatalf("scalar result = %v, want %v", got.At(0), want.At())
		}
		return res
	}
	if !got.EqualWithin(want, 1e-9) {
		t.Fatalf("distributed result differs from reference by %v", got.MaxAbsDiff(want))
	}
	return res
}

func gemmInput(t *testing.T, n, gx, gy int, build func(*schedule.Schedule) *schedule.Schedule) Input {
	t.Helper()
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	m := machine.New(machine.NewGrid(gx, gy), machine.SysMem, machine.CPU)
	tiled := distnot.NewPlacement(distnot.MustParse("xy->xy"))
	mk := func(name string, seed int64) *TensorDecl {
		d := tensor.New(name, n, n)
		if seed > 0 {
			d.FillRandom(seed)
		}
		return &TensorDecl{Name: name, Shape: []int{n, n}, Placement: tiled, Data: d}
	}
	s := schedule.New(stmt)
	if build != nil {
		s = build(s)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	return Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*TensorDecl{
			"A": mk("A", 0), "B": mk("B", 7), "C": mk("C", 8),
		},
		Schedule: s,
	}
}

func TestCompileUnscheduledSingleTask(t *testing.T) {
	in := gemmInput(t, 6, 1, 1, nil)
	res := runAndCheck(t, in)
	if res.Copies != 0 {
		t.Fatalf("single-proc run should not copy, got %d", res.Copies)
	}
	// 6*6*6 points x 2 flops.
	if res.Flops != 432 {
		t.Fatalf("flops = %v, want 432", res.Flops)
	}
}

func TestCompileSUMMA(t *testing.T) {
	in := gemmInput(t, 8, 2, 2, func(s *schedule.Schedule) *schedule.Schedule {
		return s.
			DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
			Split("k", "ko", "ki", 4).
			Reorder("ko", "ii", "ji", "ki").
			Communicate("jo", "A").
			Communicate("ko", "B", "C")
	})
	prog, err := Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	// k extent 8 split by 4 -> 2 sequential launches.
	if len(prog.Launches) != 2 {
		t.Fatalf("launches = %d, want 2", len(prog.Launches))
	}
	if prog.Launches[0].Domain.Size() != 4 {
		t.Fatalf("domain size = %d, want 4", prog.Launches[0].Domain.Size())
	}
	res := runAndCheck(t, in)
	// Each proc owns its A tile (no comm) and fetches remote chunks of B and
	// C: per step, 2 procs per row need a remote B chunk and 2 per column a
	// remote C chunk.
	if res.Copies == 0 {
		t.Fatal("SUMMA on 2x2 must communicate")
	}
	if res.Flops != 2*8*8*8 {
		t.Fatalf("flops = %v, want %v", res.Flops, 2*8*8*8)
	}
}

func TestCompileCannonRotation(t *testing.T) {
	in := gemmInput(t, 9, 3, 3, func(s *schedule.Schedule) *schedule.Schedule {
		return s.
			DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{3, 3}).
			Divide("k", "ko", "ki", 3).
			Reorder("ko", "ii", "ji", "ki").
			Rotate("ko", []string{"io", "jo"}, "kos").
			Communicate("jo", "A").
			Communicate("kos", "B", "C")
	})
	runAndCheck(t, in)
}

func TestCompileJohnson(t *testing.T) {
	// 3D algorithm on a 2x2x2 machine: distributed reduction over ko.
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	m := machine.New(machine.NewGrid(2, 2, 2), machine.SysMem, machine.CPU)
	n := 8
	mk := func(name, place string, seed int64) *TensorDecl {
		d := tensor.New(name, n, n)
		if seed > 0 {
			d.FillRandom(seed)
		}
		return &TensorDecl{
			Name: name, Shape: []int{n, n},
			Placement: distnot.NewPlacement(distnot.MustParse(place)),
			Data:      d,
		}
	}
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j", "k"}, []string{"io", "jo", "ko"}, []string{"ii", "ji", "ki"}, []int{2, 2, 2}).
		Communicate("ko", "A", "B", "C")
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	in := Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*TensorDecl{
			"A": mk("A", "xy->xy0", 0),
			"B": mk("B", "xz->x0z", 3),
			"C": mk("C", "zy->0yz", 4),
		},
		Schedule: s,
	}
	res := runAndCheck(t, in)
	if res.Copies == 0 {
		t.Fatal("Johnson's algorithm must broadcast and reduce")
	}
}

func TestCompileTTV(t *testing.T) {
	stmt := ir.MustParse("A(i,j) = B(i,j,k) * c(k)")
	m := machine.New(machine.NewGrid(2, 2), machine.SysMem, machine.CPU)
	b := tensor.New("B", 4, 4, 5)
	b.FillRandom(5)
	cv := tensor.New("c", 5)
	cv.FillRandom(6)
	a := tensor.New("A", 4, 4)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
		Communicate("jo", "A", "B", "c")
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	in := Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*TensorDecl{
			"A": {Name: "A", Shape: []int{4, 4}, Placement: distnot.NewPlacement(distnot.MustParse("xy->xy")), Data: a},
			"B": {Name: "B", Shape: []int{4, 4, 5}, Placement: distnot.NewPlacement(distnot.MustParse("xyz->xy")), Data: b},
			"c": {Name: "c", Shape: []int{5}, Placement: distnot.NewPlacement(distnot.MustParse("x->**")), Data: cv},
		},
		Schedule: s,
	}
	res := runAndCheck(t, in)
	// B and A are aligned and c is replicated: a pure element-wise
	// distribution with no communication (§7.2.2 TTV).
	if res.Copies != 0 {
		t.Fatalf("TTV with aligned distribution should not communicate, got %d copies", res.Copies)
	}
}

func TestCompileInnerProductScalar(t *testing.T) {
	stmt := ir.MustParse("a = B(i,j,k) * C(i,j,k)")
	m := machine.New(machine.NewGrid(4), machine.SysMem, machine.CPU)
	b := tensor.New("B", 4, 3, 3)
	b.FillRandom(9)
	c := tensor.New("C", 4, 3, 3)
	c.FillRandom(10)
	av := tensor.New("a", 1)
	cube := distnot.NewPlacement(distnot.MustParse("xyz->x"))
	s := schedule.New(stmt).
		Divide("i", "io", "ii", 4).
		Reorder("io", "ii", "j", "k").
		Distribute("io").
		Communicate("io", "B", "C")
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	in := Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*TensorDecl{
			"a": {Name: "a", Shape: []int{1}, Placement: distnot.NewPlacement(distnot.MustParse("x->0")), Data: av},
			"B": {Name: "B", Shape: []int{4, 3, 3}, Placement: cube, Data: b},
			"C": {Name: "C", Shape: []int{4, 3, 3}, Placement: cube, Data: c},
		},
		Schedule: s,
	}
	runAndCheck(t, in)
}

func TestCompileMTTKRP(t *testing.T) {
	stmt := ir.MustParse("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)")
	m := machine.New(machine.NewGrid(2, 2), machine.SysMem, machine.CPU)
	nI, nJ, nK, nL := 4, 4, 4, 3
	b := tensor.New("B", nI, nJ, nK)
	b.FillRandom(11)
	c := tensor.New("C", nJ, nL)
	c.FillRandom(12)
	d := tensor.New("D", nK, nL)
	d.FillRandom(13)
	a := tensor.New("A", nI, nL)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
		Communicate("jo", "A", "B", "C", "D")
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	in := Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*TensorDecl{
			"A": {Name: "A", Shape: []int{nI, nL}, Placement: distnot.NewPlacement(distnot.MustParse("xy->x*")), Data: a},
			"B": {Name: "B", Shape: []int{nI, nJ, nK}, Placement: distnot.NewPlacement(distnot.MustParse("xyz->xy")), Data: b},
			"C": {Name: "C", Shape: []int{nJ, nL}, Placement: distnot.NewPlacement(distnot.MustParse("xy->y*")), Data: c},
			"D": {Name: "D", Shape: []int{nK, nL}, Placement: distnot.NewPlacement(distnot.MustParse("xy->0*")), Data: d},
		},
		Schedule: s,
	}
	runAndCheck(t, in)
}

func TestCompileNonDivisibleSizes(t *testing.T) {
	// 7x7 matrices on a 2x2 grid: ragged blocks must clamp correctly.
	in := gemmInput(t, 7, 2, 2, func(s *schedule.Schedule) *schedule.Schedule {
		return s.
			DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
			Split("k", "ko", "ki", 3).
			Reorder("ko", "ii", "ji", "ki").
			Communicate("jo", "A").
			Communicate("ko", "B", "C")
	})
	res := runAndCheck(t, in)
	// Exactly 7*7*7 iteration points despite ragged 4-blocks.
	if res.Flops != 2*7*7*7 {
		t.Fatalf("flops = %v, want %v", res.Flops, 2*7*7*7)
	}
}

func TestCompileIncrement(t *testing.T) {
	in := gemmInput(t, 6, 2, 2, func(s *schedule.Schedule) *schedule.Schedule {
		return s.DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
			Communicate("jo", "A", "B", "C")
	})
	in.Stmt = ir.MustParse("A(i,j) += B(i,k) * C(k,j)")
	in.Schedule = schedule.New(in.Stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
		Communicate("jo", "A", "B", "C")
	in.Tensors["A"].Data.FillRandom(20)
	runAndCheck(t, in)
}

func TestCompileErrors(t *testing.T) {
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	m := machine.New(machine.NewGrid(2), machine.SysMem, machine.CPU)
	if _, err := Compile(Input{Stmt: stmt, Machine: m, Tensors: map[string]*TensorDecl{}}); err == nil {
		t.Fatal("missing tensor decls should fail")
	}
	// Schedule for a different statement.
	other := schedule.New(ir.MustParse("X(i) = Y(i)"))
	decls := map[string]*TensorDecl{
		"A": {Name: "A", Shape: []int{4, 4}},
		"B": {Name: "B", Shape: []int{4, 4}},
		"C": {Name: "C", Shape: []int{4, 4}},
	}
	if _, err := Compile(Input{Stmt: stmt, Machine: m, Tensors: decls, Schedule: other}); err == nil {
		t.Fatal("mismatched schedule should fail")
	}
	// Bad placement rank.
	decls["A"].Placement = distnot.NewPlacement(distnot.MustParse("xyz->x"))
	if _, err := Compile(Input{Stmt: stmt, Machine: m, Tensors: decls}); err == nil {
		t.Fatal("bad placement should fail")
	}
}

func TestSimulatedExecutionMatchesStructure(t *testing.T) {
	// A simulated (no data) run of the same program must produce identical
	// copy counts and flop totals as the real run.
	mkIn := func() Input {
		return gemmInput(t, 8, 2, 2, func(s *schedule.Schedule) *schedule.Schedule {
			return s.
				DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
				Split("k", "ko", "ki", 4).
				Reorder("ko", "ii", "ji", "ki").
				Communicate("jo", "A").
				Communicate("ko", "B", "C")
		})
	}
	realIn := mkIn()
	realRes := runAndCheck(t, realIn)
	simIn := mkIn()
	prog, err := Compile(simIn)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := legion.Run(prog, legion.Options{Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Copies != realRes.Copies || simRes.Flops != realRes.Flops {
		t.Fatalf("sim run diverges: copies %d vs %d, flops %v vs %v",
			simRes.Copies, realRes.Copies, simRes.Flops, realRes.Flops)
	}
	if simRes.Time <= 0 {
		t.Fatal("simulated time should be positive")
	}
}
