package core_test

// Golden tests for the strided row lowering of the Real-mode kernel: ragged
// (non-divisible) extents and rotated schedules must produce outputs
// bit-identical to the tree-walking fallback. The strided path handles full
// rows with one ValueProgram pass and a constant-stride inner loop, re-runs
// ragged boundary rows per point, and refuses rows whose innermost
// reconstruction is not affine — these cases pin all three regimes.

import (
	"testing"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/schedule"
	"distal/internal/tensor"
)

// assertBitIdentical runs in's compiled and tree kernels and compares every
// output element exactly, then checks the compiled result against the
// sequential reference evaluator.
func assertBitIdentical(t *testing.T, build func() core.Input) {
	t.Helper()
	got := runReal(t, build())

	treeIn := build()
	treeIn.TreeKernel = true
	want := runReal(t, treeIn)

	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("output sizes differ: %d vs %d", len(gd), len(wd))
	}
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("output[%d]: compiled kernel %v != tree kernel %v (bit-identical required)", i, gd[i], wd[i])
		}
	}

	refIn := build()
	data := map[string]*tensor.Dense{}
	for tn, d := range refIn.Tensors {
		if tn != refIn.Stmt.LHS.Tensor {
			data[tn] = d.Data
		}
	}
	ref, err := ir.Evaluate(refIn.Stmt, data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWithin(ref, 1e-9) {
		t.Fatalf("compiled kernel diverges from reference: max diff %v", got.MaxAbsDiff(ref))
	}
}

// TestStridedKernelRagged covers non-divisible extents, where the strided
// path must hand ragged boundary rows back to the per-point walk: a SUMMA
// whose tiles and chunks all have ragged tails (50 over a 4x4 grid) and a
// rotated Cannon whose k blocks overhang the matrix (25 over 3x3: the last
// block covers 18..24 of 27 reconstructed values).
func TestStridedKernelRagged(t *testing.T) {
	cases := map[string]func() (core.Input, error){
		"summa-ragged": func() (core.Input, error) {
			return algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{N: 50, Procs: 16, ChunkSize: 16, Seed: 5})
		},
		"cannon-ragged": func() (core.Input, error) {
			return algorithms.Matmul(algorithms.Cannon, algorithms.MatmulConfig{N: 25, Procs: 9, Seed: 5})
		},
		"johnson-ragged": func() (core.Input, error) {
			return algorithms.Matmul(algorithms.Johnson, algorithms.MatmulConfig{N: 23, Procs: 8, Seed: 5})
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			assertBitIdentical(t, func() core.Input {
				in, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				return in
			})
		})
	}
}

// TestStridedKernelRotatedInnermostFallback rotates the innermost leaf
// variable itself — ki = (kis + io) mod ext — so the row reconstruction
// wraps and CompileRow must refuse the plan. The kernel then takes the
// per-point fallback for every task, and its output must still match the
// tree walk bit for bit.
func TestStridedKernelRotatedInnermostFallback(t *testing.T) {
	build := func() core.Input {
		stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
		cfg := algorithms.MatmulConfig{N: 24, Procs: 9, Seed: 5}
		s := schedule.New(stmt).
			DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{3, 3}).
			Divide("k", "ko", "ki", 3).
			Reorder("ko", "ii", "ji", "ki").
			Rotate("ko", []string{"io", "jo"}, "kos").
			Rotate("ki", []string{"io"}, "kis").
			Communicate("jo", "A").
			Communicate("kos", "B", "C")
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		decl := func(name string, seed int64) *core.TensorDecl {
			d := &core.TensorDecl{
				Name:      name,
				Shape:     []int{cfg.N, cfg.N},
				Placement: distnot.MustParsePlacement("xy->xy"),
				Data:      tensor.New(name, cfg.N, cfg.N),
			}
			if seed != 0 {
				d.Data.FillRandom(seed)
			}
			return d
		}
		return core.Input{
			Stmt:    stmt,
			Machine: cfg.MachineFor(3, 3),
			Tensors: map[string]*core.TensorDecl{
				"A": decl("A", 0), "B": decl("B", 7), "C": decl("C", 8),
			},
			Schedule: s,
		}
	}
	assertBitIdentical(t, build)
}
