// Package core is the DISTAL compiler: it combines a tensor index notation
// statement, the tensors' formats (data distributions), and a schedule
// (computation distribution) and lowers them to a Legion program (§5, §6).
//
// Lowering follows the paper's pipeline:
//
//  1. extents of all index variables are resolved against tensor shapes;
//  2. distributed loops become the domain of index task launches (§6.2),
//     with directly nested distributed loops flattened into one
//     multi-dimensional launch;
//  3. sequential loops that carry a communicate anchor are hoisted to the
//     control program: one launch is issued per iteration, so the runtime
//     aggregates communication at exactly the scheduled granularity;
//  4. region requirement rectangles are derived by the bounds analysis of
//     internal/schedule (interval arithmetic over derived index variables,
//     exact under rotation when the offsets are fixed);
//  5. leaf loops become the task body: an analytic FLOP/byte model for
//     simulation and a real einsum kernel for validated execution.
package core

import (
	"fmt"
	"strings"

	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/tensor"
)

// TensorDecl describes one tensor of the computation at compile time.
type TensorDecl struct {
	Name      string
	Shape     []int
	Placement *distnot.Placement
	// Data optionally binds real contents for validated execution.
	Data *tensor.Dense
}

// Input is everything the compiler needs.
type Input struct {
	Stmt     *ir.Assignment
	Machine  *machine.Machine
	Tensors  map[string]*TensorDecl
	Schedule *schedule.Schedule
}

// Compile lowers the scheduled statement to a Legion program.
func Compile(in Input) (*legion.Program, error) {
	sched := in.Schedule
	if sched == nil {
		sched = schedule.New(in.Stmt)
	}
	if err := sched.Err(); err != nil {
		return nil, err
	}
	if sched.Stmt() != in.Stmt {
		return nil, fmt.Errorf("core: schedule was built for a different statement")
	}
	shapes := map[string][]int{}
	for name, t := range in.Tensors {
		shapes[name] = t.Shape
	}
	for _, name := range in.Stmt.TensorNames() {
		if _, ok := in.Tensors[name]; !ok {
			return nil, fmt.Errorf("core: no tensor declaration for %s", name)
		}
	}
	if err := in.Stmt.Validate(shapes); err != nil {
		return nil, err
	}
	origExt, err := in.Stmt.VarExtents(shapes)
	if err != nil {
		return nil, err
	}
	extents, err := sched.Extents(origExt)
	if err != nil {
		return nil, err
	}
	for _, t := range in.Tensors {
		if t.Placement != nil {
			if err := t.Placement.Validate(len(t.Shape), in.Machine); err != nil {
				return nil, fmt.Errorf("core: tensor %s: %w", t.Name, err)
			}
		}
	}

	c := &compiler{
		in:      in,
		sched:   sched,
		extents: extents,
		order:   sched.Order(),
		dist:    sched.Distributed(),
	}
	return c.lower()
}

type compiler struct {
	in      Input
	sched   *schedule.Schedule
	extents map[string]int
	order   []string
	dist    []string

	regions map[string]*legion.Region
	seqVars []string // sequential control loops (between dist prefix and leaves)
	leaf    []string // leaf loop variables
}

func (c *compiler) lower() (*legion.Program, error) {
	prog := &legion.Program{
		Name:    c.in.Stmt.String(),
		Machine: c.in.Machine,
	}
	c.regions = map[string]*legion.Region{}
	for _, name := range c.in.Stmt.TensorNames() {
		t := c.in.Tensors[name]
		r := legion.NewRegion(name, t.Shape, t.Placement)
		if t.Data != nil {
			r.Bind(t.Data)
		}
		c.regions[name] = r
		prog.Regions = append(prog.Regions, r)
	}

	// Control structure: [dist prefix][sequential launch vars][leaf vars].
	nd := len(c.dist)
	splitDepth := nd
	lhs := c.in.Stmt.LHS.Tensor
	for _, tn := range c.in.Stmt.TensorNames() {
		if tn == lhs {
			continue // write aggregation does not force launch splitting
		}
		anchor := c.sched.CommAnchor(tn)
		if anchor == "" {
			continue // default: aggregate at the task level
		}
		if p := c.posOf(anchor); p+1 > splitDepth {
			splitDepth = p + 1
		}
	}
	c.seqVars = c.order[nd:splitDepth]
	c.leaf = c.order[splitDepth:]

	// Launch domain over the distributed variables.
	var domain machine.Grid
	if nd == 0 {
		domain = machine.NewGrid(1)
	} else {
		dims := make([]int, nd)
		for i, v := range c.dist {
			dims[i] = c.extents[v]
		}
		domain = machine.NewGrid(dims...)
	}

	// One launch per assignment of the sequential control variables, in
	// lexicographic order.
	seqDims := make([]int, len(c.seqVars))
	for i, v := range c.seqVars {
		seqDims[i] = c.extents[v]
	}
	seqSpace := tensor.FullRect(seqDims)
	if len(seqDims) == 0 {
		prog.Launches = append(prog.Launches, c.buildLaunch(domain, nil))
	} else {
		seqSpace.Points(func(p []int) {
			seq := map[string]int{}
			for i, v := range c.seqVars {
				seq[v] = p[i]
			}
			prog.Launches = append(prog.Launches, c.buildLaunch(domain, seq))
		})
	}
	return prog, nil
}

func (c *compiler) posOf(name string) int {
	for i, v := range c.order {
		if v == name {
			return i
		}
	}
	return -1
}

// envFor builds the fixed-variable environment of a task: the distributed
// point plus the launch's sequential assignment.
func (c *compiler) envFor(point []int, seq map[string]int) map[string]int {
	env := map[string]int{}
	if len(c.dist) > 0 {
		for i, v := range c.dist {
			env[v] = point[i]
		}
	}
	for k, v := range seq {
		env[k] = v
	}
	return env
}

// anchorEnv restricts env to the variables at or above the communicate
// anchor of the tensor, so the requirement rect aggregates all iterations
// nested below the anchor. Distributed variables are always fixed: tasks
// never need other tasks' data ranges.
func (c *compiler) anchorEnv(tn string, env map[string]int) map[string]int {
	anchor := c.sched.CommAnchor(tn)
	cut := len(c.dist) // default: aggregate at the task level
	if anchor != "" {
		if p := c.posOf(anchor); p+1 > cut {
			cut = p + 1
		}
	}
	out := map[string]int{}
	for i := 0; i < cut && i < len(c.order); i++ {
		name := c.order[i]
		if v, ok := env[name]; ok {
			out[name] = v
		}
	}
	return out
}

// rectOf computes the bounding rectangle accessed by tensor tn under the
// fixed environment env (union over all of tn's accesses in the statement).
func (c *compiler) rectOf(tn string, env map[string]int) tensor.Rect {
	ivs := c.sched.Intervals(env, c.extents)
	shape := c.in.Tensors[tn].Shape
	var out tensor.Rect
	first := true
	consider := func(a *ir.Access) {
		if a.Tensor != tn {
			return
		}
		r := accessRect(a, ivs, shape)
		if first {
			out = r
			first = false
			return
		}
		for d := range out.Lo {
			if r.Lo[d] < out.Lo[d] {
				out.Lo[d] = r.Lo[d]
			}
			if r.Hi[d] > out.Hi[d] {
				out.Hi[d] = r.Hi[d]
			}
		}
	}
	consider(c.in.Stmt.LHS)
	for _, a := range c.in.Stmt.RHS.Accesses(nil) {
		consider(a)
	}
	if first {
		return tensor.FullRect(shape)
	}
	return out
}

// accessRect maps an access's index intervals to a rect of the tensor.
// Scalar accesses (no indices) over rank-1 unit regions cover [0,1).
func accessRect(a *ir.Access, ivs map[string]schedule.Interval, shape []int) tensor.Rect {
	if len(a.Indices) == 0 {
		return tensor.FullRect(shape)
	}
	lo := make([]int, len(a.Indices))
	hi := make([]int, len(a.Indices))
	for d, v := range a.Indices {
		iv := ivs[v.Name]
		lo[d], hi[d] = iv.Lo, iv.Hi
	}
	return tensor.NewRect(lo, hi).Clamp(shape)
}

// launchName renders "kernel[ko=2,…]" for diagnostics and traces.
func launchName(stmt *ir.Assignment, seqVars []string, seq map[string]int) string {
	if len(seqVars) == 0 {
		return stmt.LHS.Tensor
	}
	parts := make([]string, len(seqVars))
	for i, v := range seqVars {
		parts[i] = fmt.Sprintf("%s=%d", v, seq[v])
	}
	return stmt.LHS.Tensor + "[" + strings.Join(parts, ",") + "]"
}

// pointInfo holds everything derived from one task point: the region
// requirement rectangles and the analytic cost-model inputs.
type pointInfo struct {
	reqs     []legion.Req
	flops    float64
	memBytes float64
}

// buildLaunch lowers one index launch. The bounds analysis of every domain
// point is materialized eagerly into the launch, for two reasons: the
// resulting program is immutable — safe for concurrent simulation, a
// prerequisite of plan caching — and repeated executions of a cached plan
// skip the analysis entirely (it is the dominant cost of a cold
// compile+execute).
func (c *compiler) buildLaunch(domain machine.Grid, seq map[string]int) *legion.Launch {
	stmt := c.in.Stmt
	lhs := stmt.LHS.Tensor
	writePriv := legion.WriteDiscard
	if len(stmt.ReductionVars()) > 0 || stmt.Increment {
		writePriv = legion.ReduceSum
	}
	infos := make([]pointInfo, domain.Size())
	domain.Points(func(point []int) {
		pi := &infos[domain.Linearize(point)]
		env := c.envFor(point, seq)
		// LHS write requirement aggregates at the task level.
		pi.reqs = append(pi.reqs, legion.Req{
			Region: c.regions[lhs],
			Rect:   c.rectOf(lhs, c.anchorEnv(lhs, env)),
			Priv:   writePriv,
		})
		seen := map[string]bool{lhs: true}
		for _, a := range stmt.RHS.Accesses(nil) {
			if seen[a.Tensor] {
				continue
			}
			seen[a.Tensor] = true
			pi.reqs = append(pi.reqs, legion.Req{
				Region: c.regions[a.Tensor],
				Rect:   c.rectOf(a.Tensor, c.anchorEnv(a.Tensor, env)),
				Priv:   legion.ReadOnly,
			})
		}
		ivs := c.sched.Intervals(env, c.extents)
		points := 1.0
		for _, v := range stmt.Vars() {
			iv := ivs[v.Name]
			n := iv.Hi - iv.Lo
			if n <= 0 {
				points = 0
				break
			}
			points *= float64(n)
		}
		pi.flops = points * float64(stmt.FlopsPerPoint())
		for _, q := range pi.reqs {
			pi.memBytes += float64(q.Region.Bytes(q.Rect))
		}
	})
	info := func(point []int) *pointInfo { return &infos[domain.Linearize(point)] }
	return &legion.Launch{
		Name:   launchName(stmt, c.seqVars, seq),
		Domain: domain,
		Reqs:   func(point []int) []legion.Req { return info(point).reqs },
		Kernel: legion.Kernel{
			Flops:    func(point []int) float64 { return info(point).flops },
			MemBytes: func(point []int) float64 { return info(point).memBytes },
			Run:      c.realKernel(seq),
		},
	}
}
