// Package core is the DISTAL compiler: it combines a tensor index notation
// statement, the tensors' formats (data distributions), and a schedule
// (computation distribution) and lowers them to a Legion program (§5, §6).
//
// Lowering follows the paper's pipeline:
//
//  1. extents of all index variables are resolved against tensor shapes;
//  2. distributed loops become the domain of index task launches (§6.2),
//     with directly nested distributed loops flattened into one
//     multi-dimensional launch;
//  3. sequential loops that carry a communicate anchor are hoisted to the
//     control program: one launch is issued per iteration, so the runtime
//     aggregates communication at exactly the scheduled granularity;
//  4. region requirement rectangles are derived by the bounds analysis of
//     internal/schedule (interval arithmetic over derived index variables,
//     exact under rotation when the offsets are fixed);
//  5. leaf loops become the task body: an analytic FLOP/byte model for
//     simulation and a real einsum kernel for validated execution.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/tensor"
)

// TensorDecl describes one tensor of the computation at compile time.
type TensorDecl struct {
	Name      string
	Shape     []int
	Placement *distnot.Placement
	// Data optionally binds real contents for validated execution.
	Data *tensor.Dense
}

// Input is everything the compiler needs.
type Input struct {
	Stmt     *ir.Assignment
	Machine  *machine.Machine
	Tensors  map[string]*TensorDecl
	Schedule *schedule.Schedule
}

// Compile lowers the scheduled statement to a Legion program.
func Compile(in Input) (*legion.Program, error) {
	sched := in.Schedule
	if sched == nil {
		sched = schedule.New(in.Stmt)
	}
	if err := sched.Err(); err != nil {
		return nil, err
	}
	if sched.Stmt() != in.Stmt {
		return nil, fmt.Errorf("core: schedule was built for a different statement")
	}
	shapes := map[string][]int{}
	for name, t := range in.Tensors {
		shapes[name] = t.Shape
	}
	for _, name := range in.Stmt.TensorNames() {
		if _, ok := in.Tensors[name]; !ok {
			return nil, fmt.Errorf("core: no tensor declaration for %s", name)
		}
	}
	if err := in.Stmt.Validate(shapes); err != nil {
		return nil, err
	}
	origExt, err := in.Stmt.VarExtents(shapes)
	if err != nil {
		return nil, err
	}
	extents, err := sched.Extents(origExt)
	if err != nil {
		return nil, err
	}
	for _, t := range in.Tensors {
		if t.Placement != nil {
			if err := t.Placement.Validate(len(t.Shape), in.Machine); err != nil {
				return nil, fmt.Errorf("core: tensor %s: %w", t.Name, err)
			}
		}
	}

	c := &compiler{
		in:      in,
		sched:   sched,
		extents: extents,
		order:   sched.Order(),
		dist:    sched.Distributed(),
	}
	return c.lower()
}

type compiler struct {
	in      Input
	sched   *schedule.Schedule
	extents map[string]int
	order   []string
	dist    []string

	regions map[string]*legion.Region
	seqVars []string // sequential control loops (between dist prefix and leaves)
	leaf    []string // leaf loop variables

	// Point-independent launch state, hoisted out of the per-point loop:
	// the compiled bounds evaluator, environment variable ids, per-tensor
	// access plans, and the distinct anchor-cut groups.
	ev            *schedule.Evaluator
	distIDs       []int
	seqIDs        []int // ids of seqVars, in order
	tensors       []tensorPlan
	cuts          []cutGroup
	flopsPerPoint float64
	writePriv     legion.Privilege
}

// tensorPlan is the per-tensor slice of the launch plan: which requirement
// it produces and how its accesses map evaluator intervals to rect bounds.
type tensorPlan struct {
	region *legion.Region
	shape  []int
	priv   legion.Privilege
	// accesses holds, per access of this tensor in the statement, the
	// evaluator variable id indexing each tensor dimension. A nil entry is a
	// scalar access covering the full region.
	accesses [][]int
	cutIdx   int // index into cuts: the anchor environment of this tensor
}

// cutGroup is one distinct communicate-anchor cut: a prefix of the loop
// order whose environment variables are fixed during bounds evaluation.
// Groups are sorted by ascending cut so each adds variables to the previous
// group's fixed set (addIDs); the last group fixes the full environment and
// also drives the cost model.
type cutGroup struct {
	cut    int
	addIDs []int
}

func (c *compiler) lower() (*legion.Program, error) {
	prog := &legion.Program{
		Name:    c.in.Stmt.String(),
		Machine: c.in.Machine,
	}
	c.regions = map[string]*legion.Region{}
	for _, name := range c.in.Stmt.TensorNames() {
		t := c.in.Tensors[name]
		r := legion.NewRegion(name, t.Shape, t.Placement)
		if t.Data != nil {
			r.Bind(t.Data)
		}
		c.regions[name] = r
		prog.Regions = append(prog.Regions, r)
	}

	// Control structure: [dist prefix][sequential launch vars][leaf vars].
	nd := len(c.dist)
	splitDepth := nd
	lhs := c.in.Stmt.LHS.Tensor
	for _, tn := range c.in.Stmt.TensorNames() {
		if tn == lhs {
			continue // write aggregation does not force launch splitting
		}
		anchor := c.sched.CommAnchor(tn)
		if anchor == "" {
			continue // default: aggregate at the task level
		}
		if p := c.posOf(anchor); p+1 > splitDepth {
			splitDepth = p + 1
		}
	}
	c.seqVars = c.order[nd:splitDepth]
	c.leaf = c.order[splitDepth:]
	c.buildPlan(splitDepth)

	// Launch domain over the distributed variables.
	var domain machine.Grid
	if nd == 0 {
		domain = machine.NewGrid(1)
	} else {
		dims := make([]int, nd)
		for i, v := range c.dist {
			dims[i] = c.extents[v]
		}
		domain = machine.NewGrid(dims...)
	}

	// One launch per assignment of the sequential control variables, in
	// lexicographic order.
	seqDims := make([]int, len(c.seqVars))
	for i, v := range c.seqVars {
		seqDims[i] = c.extents[v]
	}
	seqSpace := tensor.FullRect(seqDims)
	if len(seqDims) == 0 {
		prog.Launches = append(prog.Launches, c.buildLaunch(domain, nil))
	} else {
		seqSpace.Points(func(p []int) {
			seq := map[string]int{}
			for i, v := range c.seqVars {
				seq[v] = p[i]
			}
			prog.Launches = append(prog.Launches, c.buildLaunch(domain, seq))
		})
	}
	return prog, nil
}

func (c *compiler) posOf(name string) int {
	for i, v := range c.order {
		if v == name {
			return i
		}
	}
	return -1
}

// buildPlan hoists everything point-independent out of the per-point loop:
// it compiles the bounds evaluator, resolves environment variable ids, maps
// every tensor's accesses to evaluator ids, and groups tensors by their
// communicate-anchor cut so each distinct cut is evaluated once per point.
func (c *compiler) buildPlan(splitDepth int) {
	stmt := c.in.Stmt
	c.ev = c.sched.EvaluatorFor(c.extents)
	nd := len(c.dist)
	c.distIDs = make([]int, nd)
	for i, v := range c.dist {
		c.distIDs[i] = c.ev.VarID(v)
	}
	c.seqIDs = make([]int, len(c.seqVars))
	for i, v := range c.seqVars {
		c.seqIDs[i] = c.ev.VarID(v)
	}

	c.writePriv = legion.WriteDiscard
	if len(stmt.ReductionVars()) > 0 || stmt.Increment {
		c.writePriv = legion.ReduceSum
	}
	c.flopsPerPoint = float64(stmt.FlopsPerPoint())

	// effCut clamps a tensor's anchor cut to [nd, splitDepth]: positions
	// beyond splitDepth carry no environment variables, so all such cuts fix
	// the same set.
	effCut := func(tn string) int {
		cut := nd // default: aggregate at the task level
		if anchor := c.sched.CommAnchor(tn); anchor != "" {
			if p := c.posOf(anchor); p+1 > cut {
				cut = p + 1
			}
		}
		if cut > splitDepth {
			cut = splitDepth
		}
		return cut
	}

	// Distinct cuts, ascending; the full environment (cut == splitDepth) is
	// always present for the cost model.
	names := stmt.TensorNames()
	cutSet := map[int]bool{splitDepth: true}
	for _, tn := range names {
		cutSet[effCut(tn)] = true
	}
	cutIdx := map[int]int{}
	for cut := nd; cut <= splitDepth; cut++ {
		if cutSet[cut] {
			cutIdx[cut] = len(c.cuts)
			c.cuts = append(c.cuts, cutGroup{cut: cut})
		}
	}
	// addIDs: environment ids (dist + seq) newly fixed by each group
	// relative to the previous one. Distributed ids are fixed by every cut.
	prev := 0
	for i := range c.cuts {
		var add []int
		if i == 0 {
			add = append(add, c.distIDs...)
			prev = nd
		}
		for ; prev < c.cuts[i].cut; prev++ {
			add = append(add, c.seqIDs[prev-nd])
		}
		c.cuts[i].addIDs = add
	}

	allAccesses := append([]*ir.Access{stmt.LHS}, stmt.RHS.Accesses(nil)...)
	for ti, tn := range names {
		t := c.in.Tensors[tn]
		tp := tensorPlan{
			region: c.regions[tn],
			shape:  t.Shape,
			priv:   legion.ReadOnly,
			cutIdx: cutIdx[effCut(tn)],
		}
		if ti == 0 {
			tp.priv = c.writePriv
		}
		for _, a := range allAccesses {
			if a.Tensor != tn {
				continue
			}
			if len(a.Indices) == 0 {
				tp.accesses = append(tp.accesses, nil)
				continue
			}
			dims := make([]int, len(a.Indices))
			for d, v := range a.Indices {
				dims[d] = c.ev.VarID(v.Name)
			}
			tp.accesses = append(tp.accesses, dims)
		}
		c.tensors = append(c.tensors, tp)
	}
}

// launchName renders "kernel[ko=2,…]" for diagnostics and traces.
func launchName(stmt *ir.Assignment, seqVars []string, seq map[string]int) string {
	if len(seqVars) == 0 {
		return stmt.LHS.Tensor
	}
	parts := make([]string, len(seqVars))
	for i, v := range seqVars {
		parts[i] = fmt.Sprintf("%s=%d", v, seq[v])
	}
	return stmt.LHS.Tensor + "[" + strings.Join(parts, ",") + "]"
}

// pointInfo is one deduplicated task description: an offset into the
// launch's shared requirement slab and the analytic cost-model inputs.
type pointInfo struct {
	off      int
	flops    float64
	memBytes float64
}

// pointWorker holds one materialization goroutine's scratch state: reusable
// evaluator buffers, rect bound buffers, a key buffer, and worker-local
// interning tables. Nothing here escapes to another worker.
type pointWorker struct {
	start, end int

	point          []int
	fixed          []bool
	vals           []int
	ivs            [][]schedule.Interval
	rectLo, rectHi [][]int
	keyBuf         []byte

	rects map[string]tensor.Rect // interned rects, keyed by packed bounds
	seen  map[string]int32       // packed point key -> local info index
	infos []workerInfo
}

// workerInfo is one distinct point description found by a worker, prior to
// the cross-worker merge.
type workerInfo struct {
	key      string
	rects    []tensor.Rect // one per tensor, interned
	flops    float64
	memBytes float64
}

// maxMaterializeWorkers bounds the worker pool: launch materialization is
// memory-bound map work that stops scaling early, and compiles may already
// run concurrently across sessions.
const maxMaterializeWorkers = 8

// materializeWorkers picks the pool size for an n-point domain; small
// domains are not worth the goroutine handoff.
func materializeWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > maxMaterializeWorkers {
		w = maxMaterializeWorkers
	}
	if per := (n + 63) / 64; w > per {
		w = per
	}
	if w < 1 {
		w = 1
	}
	return w
}

// buildLaunch lowers one index launch. The bounds analysis of every domain
// point is materialized eagerly into the launch, for two reasons: the
// resulting program is immutable — safe for concurrent simulation, a
// prerequisite of plan caching — and repeated executions of a cached plan
// skip the analysis entirely (it is the dominant cost of a cold
// compile+execute).
//
// Materialization runs the compiled evaluator once per (point, anchor cut)
// over a bounded worker pool; identical points (common under replication)
// are interned so the launch stores each distinct requirement set once, in
// one shared slab.
func (c *compiler) buildLaunch(domain machine.Grid, seq map[string]int) *legion.Launch {
	n := domain.Size()
	nt := len(c.tensors)
	seqVals := make([]int, len(c.seqIDs))
	for i, v := range c.seqVars {
		seqVals[i] = seq[v]
	}

	idx := make([]int32, n) // point -> worker-local, then global, info index
	nw := materializeWorkers(n)
	workers := make([]*pointWorker, nw)
	chunk := (n + nw - 1) / nw
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		pw := c.newPointWorker(start, end, domain.Rank(), seqVals)
		workers[w] = pw
		if nw == 1 {
			c.materializeChunk(pw, domain, idx)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.materializeChunk(pw, domain, idx)
		}()
	}
	wg.Wait()

	// Merge worker-local infos into the launch's shared requirement slab,
	// deduplicating across workers. Workers are merged in chunk order so the
	// result is deterministic.
	var uniq int
	for _, pw := range workers {
		uniq += len(pw.infos)
	}
	slab := make([]legion.Req, 0, uniq*nt)
	infos := make([]pointInfo, 0, uniq)
	global := make(map[string]int32, uniq)
	for _, pw := range workers {
		trans := make([]int32, len(pw.infos))
		for li, wi := range pw.infos {
			gi, ok := global[wi.key]
			if !ok {
				gi = int32(len(infos))
				global[wi.key] = gi
				off := len(slab)
				for ti := range c.tensors {
					slab = append(slab, legion.Req{
						Region: c.tensors[ti].region,
						Rect:   wi.rects[ti],
						Priv:   c.tensors[ti].priv,
					})
				}
				infos = append(infos, pointInfo{off: off, flops: wi.flops, memBytes: wi.memBytes})
			}
			trans[li] = gi
		}
		for i := pw.start; i < pw.end; i++ {
			idx[i] = trans[idx[i]]
		}
	}

	info := func(point []int) *pointInfo { return &infos[idx[domain.Linearize(point)]] }
	return &legion.Launch{
		Name:   launchName(c.in.Stmt, c.seqVars, seq),
		Domain: domain,
		Reqs: func(point []int) []legion.Req {
			pi := info(point)
			return slab[pi.off : pi.off+nt : pi.off+nt]
		},
		Kernel: legion.Kernel{
			Flops:    func(point []int) float64 { return info(point).flops },
			MemBytes: func(point []int) float64 { return info(point).memBytes },
			Run:      c.realKernel(seq),
		},
	}
}

// newPointWorker allocates one worker's scratch, pre-binding the launch's
// sequential assignment (constant across the chunk).
func (c *compiler) newPointWorker(start, end, rank int, seqVals []int) *pointWorker {
	nv := c.ev.NumVars()
	pw := &pointWorker{
		start: start, end: end,
		point: make([]int, rank),
		fixed: make([]bool, nv),
		vals:  make([]int, nv),
		ivs:   make([][]schedule.Interval, len(c.cuts)),
		rects: map[string]tensor.Rect{},
		seen:  map[string]int32{},
	}
	for i := range pw.ivs {
		pw.ivs[i] = make([]schedule.Interval, nv)
	}
	for _, tp := range c.tensors {
		r := len(tp.shape)
		pw.rectLo = append(pw.rectLo, make([]int, r))
		pw.rectHi = append(pw.rectHi, make([]int, r))
	}
	for i, id := range c.seqIDs {
		pw.vals[id] = seqVals[i]
	}
	return pw
}

// materializeChunk analyzes the worker's contiguous range of domain points:
// for each point it evaluates every distinct anchor cut once, derives the
// per-tensor requirement rects and cost-model inputs, and interns the
// resulting description.
func (c *compiler) materializeChunk(pw *pointWorker, domain machine.Grid, idx []int32) {
	ev := c.ev
	origIDs := ev.OrigIDs()
	full := len(c.cuts) - 1
	for i := pw.start; i < pw.end; i++ {
		domain.DelinearizeInto(i, pw.point)
		for d, id := range c.distIDs {
			pw.vals[id] = pw.point[d]
		}
		// Evaluate cut groups in ascending order: each fixes the variables
		// it adds over the previous group.
		for g := range c.cuts {
			for _, id := range c.cuts[g].addIDs {
				pw.fixed[id] = true
			}
			ev.Eval(pw.fixed, pw.vals, pw.ivs[g])
		}
		for g := range c.cuts {
			for _, id := range c.cuts[g].addIDs {
				pw.fixed[id] = false
			}
		}

		// Requirement bounds per tensor: union over the tensor's accesses,
		// clamped to its shape.
		pw.keyBuf = pw.keyBuf[:0]
		for ti := range c.tensors {
			tp := &c.tensors[ti]
			lo, hi := pw.rectLo[ti], pw.rectHi[ti]
			ivs := pw.ivs[tp.cutIdx]
			first := true
			fullRect := len(tp.accesses) == 0
			for _, dims := range tp.accesses {
				if dims == nil {
					fullRect = true // scalar access: full region
					break
				}
				if first {
					for d, id := range dims {
						lo[d], hi[d] = ivs[id].Lo, ivs[id].Hi
					}
					first = false
					continue
				}
				for d, id := range dims {
					if ivs[id].Lo < lo[d] {
						lo[d] = ivs[id].Lo
					}
					if ivs[id].Hi > hi[d] {
						hi[d] = ivs[id].Hi
					}
				}
			}
			if fullRect {
				for d, s := range tp.shape {
					lo[d], hi[d] = 0, s
				}
			} else {
				for d, s := range tp.shape {
					if lo[d] < 0 {
						lo[d] = 0
					}
					if hi[d] > s {
						hi[d] = s
					}
				}
			}
			for d := range lo {
				pw.keyBuf = binary.LittleEndian.AppendUint64(pw.keyBuf, uint64(lo[d]))
				pw.keyBuf = binary.LittleEndian.AppendUint64(pw.keyBuf, uint64(hi[d]))
			}
		}

		// Cost-model inputs from the full environment.
		points := 1.0
		fullIvs := pw.ivs[full]
		for _, id := range origIDs {
			w := fullIvs[id].Hi - fullIvs[id].Lo
			if w <= 0 {
				points = 0
				break
			}
			points *= float64(w)
		}
		flops := points * c.flopsPerPoint
		pw.keyBuf = binary.LittleEndian.AppendUint64(pw.keyBuf, math.Float64bits(flops))

		li, ok := pw.seen[string(pw.keyBuf)]
		if !ok {
			wi := workerInfo{key: string(pw.keyBuf), flops: flops}
			pos := 0
			for ti := range c.tensors {
				// Each tensor's packed bounds are a substring of the point
				// key; reuse them to intern the rect itself.
				rkeyEnd := pos + 16*len(c.tensors[ti].shape)
				rk := wi.key[pos:rkeyEnd]
				pos = rkeyEnd
				r, ok := pw.rects[rk]
				if !ok {
					r = tensor.NewRect(pw.rectLo[ti], pw.rectHi[ti])
					pw.rects[rk] = r
				}
				wi.rects = append(wi.rects, r)
				wi.memBytes += float64(c.tensors[ti].region.Bytes(r))
			}
			li = int32(len(pw.infos))
			pw.seen[wi.key] = li
			pw.infos = append(pw.infos, wi)
		}
		idx[i] = li
	}
}
