// Package core is the DISTAL compiler: it combines a tensor index notation
// statement, the tensors' formats (data distributions), and a schedule
// (computation distribution) and lowers them to a Legion program (§5, §6).
//
// Lowering follows the paper's pipeline:
//
//  1. extents of all index variables are resolved against tensor shapes;
//  2. distributed loops become the domain of index task launches (§6.2),
//     with directly nested distributed loops flattened into one
//     multi-dimensional launch;
//  3. sequential loops that carry a communicate anchor are hoisted to the
//     control program: one launch is issued per iteration, so the runtime
//     aggregates communication at exactly the scheduled granularity;
//  4. region requirement rectangles are derived by the bounds analysis of
//     internal/schedule (interval arithmetic over derived index variables,
//     exact under rotation when the offsets are fixed);
//  5. leaf loops become the task body: an analytic FLOP/byte model for
//     simulation and a real einsum kernel for validated execution, lowered
//     once per plan to a flat register program over raw tensor storage
//     (kernelprog.go) with a tree-walking fallback (Input.TreeKernel).
//
// Compiled programs are immutable: every launch's per-point region
// requirements are materialized eagerly at compile time into a shared slab,
// so a plan can be cached (keyed by PlanKey, a content hash over statement,
// shapes, formats, schedule text, and machine) and simulated concurrently
// by many goroutines, and repeated executions skip the bounds analysis
// entirely. Materialization is deterministic under every parallelization
// strategy: multi-launch plans are built launch-parallel over a bounded
// worker pool whose scratch (including the rect intern table and the
// requirements of tensors anchored at the task level) persists across
// launches, while single-launch plans split their domain across
// point-chunked workers merged in chunk order.
package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/tensor"
)

// TensorDecl describes one tensor of the computation at compile time.
type TensorDecl struct {
	Name      string
	Shape     []int
	Placement *distnot.Placement
	// Data optionally binds real contents for validated execution.
	Data *tensor.Dense
}

// Input is everything the compiler needs.
type Input struct {
	Stmt     *ir.Assignment
	Machine  *machine.Machine
	Tensors  map[string]*TensorDecl
	Schedule *schedule.Schedule
	// TreeKernel selects the tree-walking Real-mode leaf kernel instead of
	// the compiled kernel program. The two are bit-identical (asserted by
	// the golden tests); the tree walk exists as a debuggable fallback and
	// as the reference the compiled program is validated against.
	TreeKernel bool
}

// Compile lowers the scheduled statement to a Legion program.
func Compile(in Input) (*legion.Program, error) {
	return CompileContext(context.Background(), in)
}

// cancelCheckPoints is how many domain points a materialization worker
// analyzes between cancellation checkpoints.
const cancelCheckPoints = 1024

// CompileContext is Compile under a context: the launch-materialization
// workers poll ctx every cancelCheckPoints domain points and the whole
// compile aborts with ctx's error, so a canceled request stops burning the
// pool promptly even mid-launch.
func CompileContext(ctx context.Context, in Input) (*legion.Program, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sched := in.Schedule
	if sched == nil {
		sched = schedule.New(in.Stmt)
	}
	if err := sched.Err(); err != nil {
		return nil, err
	}
	if sched.Stmt() != in.Stmt {
		return nil, fmt.Errorf("core: schedule was built for a different statement")
	}
	shapes := map[string][]int{}
	for name, t := range in.Tensors {
		shapes[name] = t.Shape
	}
	for _, name := range in.Stmt.TensorNames() {
		if _, ok := in.Tensors[name]; !ok {
			return nil, fmt.Errorf("core: no tensor declaration for %s", name)
		}
	}
	if err := in.Stmt.Validate(shapes); err != nil {
		return nil, err
	}
	origExt, err := in.Stmt.VarExtents(shapes)
	if err != nil {
		return nil, err
	}
	extents, err := sched.Extents(origExt)
	if err != nil {
		return nil, err
	}
	for _, t := range in.Tensors {
		if t.Placement != nil {
			if err := t.Placement.Validate(len(t.Shape), in.Machine); err != nil {
				return nil, fmt.Errorf("core: tensor %s: %w", t.Name, err)
			}
		}
	}

	c := &compiler{
		in:      in,
		ctx:     ctx,
		sched:   sched,
		extents: extents,
		order:   sched.Order(),
		dist:    sched.Distributed(),
	}
	return c.lower()
}

type compiler struct {
	in      Input
	ctx     context.Context
	sched   *schedule.Schedule
	extents map[string]int
	order   []string
	dist    []string

	regions map[string]*legion.Region
	seqVars []string // sequential control loops (between dist prefix and leaves)
	leaf    []string // leaf loop variables

	// Point-independent plan state, hoisted out of the per-point loop:
	// the compiled bounds evaluator, environment variable ids, per-tensor
	// access plans, the distinct anchor-cut groups, and the compiled
	// Real-mode kernel program (shared by every launch).
	ev            *schedule.Evaluator
	distIDs       []int
	seqIDs        []int // ids of seqVars, in order
	tensors       []tensorPlan
	cuts          []cutGroup
	flopsPerPoint float64
	writePriv     legion.Privilege
	kprog         *kernelProg
	// rowPlan is the strided lowering of the innermost leaf variable (nil
	// when no leaf loops exist or its reconstruction is not affine); kpool
	// recycles per-worker kernel scratch across every task of the plan.
	rowPlan *schedule.RowPlan
	kpool   *sync.Pool

	// distOnly marks tensors whose anchor cut fixes only the distributed
	// variables: their requirement rects are identical across the launches
	// of a sequential pipeline and are cached by the materializer.
	distOnly    []bool
	anyDistOnly bool
}

// tensorPlan is the per-tensor slice of the launch plan: which requirement
// it produces and how its accesses map evaluator intervals to rect bounds.
type tensorPlan struct {
	region *legion.Region
	shape  []int
	priv   legion.Privilege
	// accesses holds, per access of this tensor in the statement, the
	// evaluator variable id indexing each tensor dimension. A nil entry is a
	// scalar access covering the full region.
	accesses [][]int
	cutIdx   int // index into cuts: the anchor environment of this tensor
}

// deriveBounds writes tp's requirement bounds at one point into lo/hi: the
// union over the tensor's accesses of the access variables' intervals,
// clamped to the tensor's shape. A scalar access (or a tensor with no
// accesses) covers the full region. Shared by every materialization
// strategy so the two cannot drift.
func (tp *tensorPlan) deriveBounds(ivs []schedule.Interval, lo, hi []int) {
	first := true
	fullRect := len(tp.accesses) == 0
	for _, dims := range tp.accesses {
		if dims == nil {
			fullRect = true // scalar access: full region
			break
		}
		if first {
			for d, id := range dims {
				lo[d], hi[d] = ivs[id].Lo, ivs[id].Hi
			}
			first = false
			continue
		}
		for d, id := range dims {
			if ivs[id].Lo < lo[d] {
				lo[d] = ivs[id].Lo
			}
			if ivs[id].Hi > hi[d] {
				hi[d] = ivs[id].Hi
			}
		}
	}
	if fullRect {
		for d, s := range tp.shape {
			lo[d], hi[d] = 0, s
		}
		return
	}
	for d, s := range tp.shape {
		if lo[d] < 0 {
			lo[d] = 0
		}
		if hi[d] > s {
			hi[d] = s
		}
	}
}

// pointFlops computes the cost-model flops of one point from the full
// environment's intervals: the iteration-space volume times the statement's
// per-point flops (zero when any original variable's interval is empty —
// the point lies entirely on a ragged tail).
func (c *compiler) pointFlops(fullIvs []schedule.Interval) float64 {
	points := 1.0
	for _, id := range c.ev.OrigIDs() {
		w := fullIvs[id].Hi - fullIvs[id].Lo
		if w <= 0 {
			return 0
		}
		points *= float64(w)
	}
	return points * c.flopsPerPoint
}

// cutGroup is one distinct communicate-anchor cut: a prefix of the loop
// order whose environment variables are fixed during bounds evaluation.
// Groups are sorted by ascending cut so each adds variables to the previous
// group's fixed set (addIDs); the last group fixes the full environment and
// also drives the cost model.
type cutGroup struct {
	cut    int
	addIDs []int
}

func (c *compiler) lower() (*legion.Program, error) {
	prog := &legion.Program{
		Name:    c.in.Stmt.String(),
		Machine: c.in.Machine,
	}
	c.regions = map[string]*legion.Region{}
	for _, name := range c.in.Stmt.TensorNames() {
		t := c.in.Tensors[name]
		r := legion.NewRegion(name, t.Shape, t.Placement)
		if t.Data != nil {
			r.Bind(t.Data)
		}
		c.regions[name] = r
		prog.Regions = append(prog.Regions, r)
	}

	// Control structure: [dist prefix][sequential launch vars][leaf vars].
	nd := len(c.dist)
	splitDepth := nd
	lhs := c.in.Stmt.LHS.Tensor
	for _, tn := range c.in.Stmt.TensorNames() {
		if tn == lhs {
			continue // write aggregation does not force launch splitting
		}
		anchor := c.sched.CommAnchor(tn)
		if anchor == "" {
			continue // default: aggregate at the task level
		}
		if p := c.posOf(anchor); p+1 > splitDepth {
			splitDepth = p + 1
		}
	}
	c.seqVars = c.order[nd:splitDepth]
	c.leaf = c.order[splitDepth:]
	c.buildPlan(splitDepth)

	// Launch domain over the distributed variables.
	var domain machine.Grid
	if nd == 0 {
		domain = machine.NewGrid(1)
	} else {
		dims := make([]int, nd)
		for i, v := range c.dist {
			dims[i] = c.extents[v]
		}
		domain = machine.NewGrid(dims...)
	}

	// One launch per assignment of the sequential control variables, in
	// lexicographic order.
	seqDims := make([]int, len(c.seqVars))
	for i, v := range c.seqVars {
		seqDims[i] = c.extents[v]
	}
	var seqs []map[string]int
	if len(seqDims) == 0 {
		seqs = []map[string]int{nil}
	} else {
		tensor.FullRect(seqDims).Points(func(p []int) {
			seq := map[string]int{}
			for i, v := range c.seqVars {
				seq[v] = p[i]
			}
			seqs = append(seqs, seq)
		})
	}
	prog.Launches = c.materializeLaunches(domain, seqs)
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	return prog, nil
}

func (c *compiler) posOf(name string) int {
	for i, v := range c.order {
		if v == name {
			return i
		}
	}
	return -1
}

// buildPlan hoists everything point-independent out of the per-point loop:
// it compiles the bounds evaluator, resolves environment variable ids, maps
// every tensor's accesses to evaluator ids, and groups tensors by their
// communicate-anchor cut so each distinct cut is evaluated once per point.
func (c *compiler) buildPlan(splitDepth int) {
	stmt := c.in.Stmt
	c.ev = c.sched.EvaluatorFor(c.extents)
	nd := len(c.dist)
	c.distIDs = make([]int, nd)
	for i, v := range c.dist {
		c.distIDs[i] = c.ev.VarID(v)
	}
	c.seqIDs = make([]int, len(c.seqVars))
	for i, v := range c.seqVars {
		c.seqIDs[i] = c.ev.VarID(v)
	}

	c.writePriv = legion.WriteDiscard
	if len(stmt.ReductionVars()) > 0 || stmt.Increment {
		c.writePriv = legion.ReduceSum
	}
	c.flopsPerPoint = float64(stmt.FlopsPerPoint())

	// effCut clamps a tensor's anchor cut to [nd, splitDepth]: positions
	// beyond splitDepth carry no environment variables, so all such cuts fix
	// the same set.
	effCut := func(tn string) int {
		cut := nd // default: aggregate at the task level
		if anchor := c.sched.CommAnchor(tn); anchor != "" {
			if p := c.posOf(anchor); p+1 > cut {
				cut = p + 1
			}
		}
		if cut > splitDepth {
			cut = splitDepth
		}
		return cut
	}

	// Distinct cuts, ascending; the full environment (cut == splitDepth) is
	// always present for the cost model.
	names := stmt.TensorNames()
	cutSet := map[int]bool{splitDepth: true}
	for _, tn := range names {
		cutSet[effCut(tn)] = true
	}
	cutIdx := map[int]int{}
	for cut := nd; cut <= splitDepth; cut++ {
		if cutSet[cut] {
			cutIdx[cut] = len(c.cuts)
			c.cuts = append(c.cuts, cutGroup{cut: cut})
		}
	}
	// addIDs: environment ids (dist + seq) newly fixed by each group
	// relative to the previous one. Distributed ids are fixed by every cut.
	prev := 0
	for i := range c.cuts {
		var add []int
		if i == 0 {
			add = append(add, c.distIDs...)
			prev = nd
		}
		for ; prev < c.cuts[i].cut; prev++ {
			add = append(add, c.seqIDs[prev-nd])
		}
		c.cuts[i].addIDs = add
	}

	allAccesses := append([]*ir.Access{stmt.LHS}, stmt.RHS.Accesses(nil)...)
	for ti, tn := range names {
		t := c.in.Tensors[tn]
		tp := tensorPlan{
			region: c.regions[tn],
			shape:  t.Shape,
			priv:   legion.ReadOnly,
			cutIdx: cutIdx[effCut(tn)],
		}
		if ti == 0 {
			tp.priv = c.writePriv
		}
		for _, a := range allAccesses {
			if a.Tensor != tn {
				continue
			}
			if len(a.Indices) == 0 {
				tp.accesses = append(tp.accesses, nil)
				continue
			}
			dims := make([]int, len(a.Indices))
			for d, v := range a.Indices {
				dims[d] = c.ev.VarID(v.Name)
			}
			tp.accesses = append(tp.accesses, dims)
		}
		c.tensors = append(c.tensors, tp)
	}
	c.distOnly = make([]bool, len(c.tensors))
	for ti := range c.tensors {
		if c.cuts[c.tensors[ti].cutIdx].cut == nd {
			c.distOnly[ti] = true
			c.anyDistOnly = true
		}
	}

	if !c.in.TreeKernel {
		c.kprog = compileKernelProg(stmt, c.ev, c.writePriv == legion.ReduceSum)
		if len(c.leaf) > 0 {
			c.rowPlan = c.kprog.vp.CompileRow(c.ev.VarID(c.leaf[len(c.leaf)-1]))
		}
		nv, nOrig := c.ev.NumVars(), len(c.ev.OrigIDs())
		nOps, nAcc, nLeaf := len(c.kprog.ops), len(c.kprog.accesses), len(c.leaf)
		c.kpool = &sync.Pool{New: func() any {
			return newKernelScratch(nv, nOrig, nOps, nAcc, nLeaf)
		}}
	}
}

// launchName renders "kernel[ko=2,…]" for diagnostics and traces.
func launchName(stmt *ir.Assignment, seqVars []string, seq map[string]int) string {
	if len(seqVars) == 0 {
		return stmt.LHS.Tensor
	}
	parts := make([]string, len(seqVars))
	for i, v := range seqVars {
		parts[i] = fmt.Sprintf("%s=%d", v, seq[v])
	}
	return stmt.LHS.Tensor + "[" + strings.Join(parts, ",") + "]"
}

// pointInfo is one deduplicated task description: an offset into the
// launch's shared requirement slab and the analytic cost-model inputs.
type pointInfo struct {
	off      int
	flops    float64
	memBytes float64
}

// pointWorker holds one materialization goroutine's scratch state: reusable
// evaluator buffers, rect bound buffers, a key buffer, and worker-local
// interning tables. Nothing here escapes to another worker.
type pointWorker struct {
	start, end int

	point          []int
	fixed          []bool
	vals           []int
	ivs            [][]schedule.Interval
	rectLo, rectHi [][]int
	keyBuf         []byte

	rects map[string]tensor.Rect // interned rects, keyed by packed bounds
	seen  map[string]int32       // packed point key -> local info index
	infos []workerInfo
}

// workerInfo is one distinct point description found by a worker, prior to
// the cross-worker merge.
type workerInfo struct {
	key      string
	rects    []tensor.Rect // one per tensor, interned
	flops    float64
	memBytes float64
}

// maxMaterializeWorkers bounds the worker pool: launch materialization is
// memory-bound map work that stops scaling early, and compiles may already
// run concurrently across sessions.
const maxMaterializeWorkers = 8

// materializeWorkers picks the pool size for an n-point domain; small
// domains are not worth the goroutine handoff.
func materializeWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > maxMaterializeWorkers {
		w = maxMaterializeWorkers
	}
	if per := (n + 63) / 64; w > per {
		w = per
	}
	if w < 1 {
		w = 1
	}
	return w
}

// materializeLaunches materializes every launch of the plan. Launches are
// independent, so multi-launch plans (chunked SUMMA-style pipelines) are
// materialized launch-parallel over a bounded pool in which each worker owns
// one materializer whose scratch — evaluation buffers, the rect intern
// table, the dedup table — persists across the launches it processes:
// worker setup is paid per pool slot, not per launch. Each launch is built
// entirely by one worker, so its requirement slab needs no cross-worker
// merge and the result is deterministic regardless of pool size or
// scheduling. Single-launch plans keep the point-chunked pool (the launch
// itself is the only unit of independence left).
func (c *compiler) materializeLaunches(domain machine.Grid, seqs []map[string]int) []*legion.Launch {
	launches := make([]*legion.Launch, len(seqs))
	if len(seqs) == 1 && materializeWorkers(domain.Size()) > 1 {
		launches[0] = c.buildLaunchChunked(domain, seqs[0])
		return launches
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > maxMaterializeWorkers {
		nw = maxMaterializeWorkers
	}
	if nw > len(seqs) {
		nw = len(seqs)
	}
	if nw <= 1 {
		m := c.newMaterializer(domain.Rank(), len(seqs) > 1)
		for i, seq := range seqs {
			if c.ctx.Err() != nil {
				return launches
			}
			launches[i] = m.buildLaunch(c, domain, seq)
		}
		return launches
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := c.newMaterializer(domain.Rank(), true)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seqs) || c.ctx.Err() != nil {
					return
				}
				launches[i] = m.buildLaunch(c, domain, seqs[i])
			}
		}()
	}
	wg.Wait()
	return launches
}

// rectEntry is one interned requirement rect: the canonical Rect value, its
// comparable key, a dense id used in point signatures, and its payload size.
// The key is built once here so the runtime's per-requirement indexes never
// rebuild it during execution.
type rectEntry struct {
	rect  tensor.Rect
	key   tensor.RectKey
	id    int32
	bytes int64
}

// materializer owns the scratch one worker uses to materialize whole
// launches serially. The rect intern table persists across launches (rects
// repeat across the launches of a pipeline — e.g. the output tensor's
// requirement does not depend on the sequential loop at all); the dedup
// table is cleared per launch. Nothing here is shared between workers.
type materializer struct {
	point          []int
	fixed          []bool
	vals           []int
	ivs            [][]schedule.Interval
	rectLo, rectHi [][]int
	keyBuf         []byte
	sigBuf         []byte
	ents           []*rectEntry

	rects map[string]*rectEntry // packed bounds -> interned rect, plan scope
	seen  map[string]int32      // point signature -> info index, launch scope

	// distCache memoizes, per domain point, the interned rects of tensors
	// whose anchor cut fixes only distributed variables: their requirement
	// is independent of the launch's sequential assignment, so later
	// launches reuse the first launch's analysis (and skip evaluating the
	// dist-only cut group altogether). Only populated for multi-launch
	// plans (cacheDist): a single launch would pay for a cache it never
	// reads back.
	cacheDist bool
	distCache [][]*rectEntry
}

func (c *compiler) newMaterializer(rank int, multiLaunch bool) *materializer {
	nv := c.ev.NumVars()
	m := &materializer{
		cacheDist: multiLaunch && c.anyDistOnly,
		point:     make([]int, rank),
		fixed:     make([]bool, nv),
		vals:      make([]int, nv),
		ivs:       make([][]schedule.Interval, len(c.cuts)),
		ents:      make([]*rectEntry, len(c.tensors)),
		rects:     map[string]*rectEntry{},
		seen:      map[string]int32{},
	}
	for i := range m.ivs {
		m.ivs[i] = make([]schedule.Interval, nv)
	}
	for _, tp := range c.tensors {
		r := len(tp.shape)
		m.rectLo = append(m.rectLo, make([]int, r))
		m.rectHi = append(m.rectHi, make([]int, r))
	}
	return m
}

// buildLaunch materializes one launch start to finish: for each domain point
// it evaluates every distinct anchor cut, derives and interns the per-tensor
// requirement rects, and appends each distinct point description directly to
// the launch's shared requirement slab. Point signatures are tuples of
// interned rect ids (plus the cost-model flops), so the dedup key is a few
// words rather than the packed bounds of every tensor.
func (m *materializer) buildLaunch(c *compiler, domain machine.Grid, seq map[string]int) *legion.Launch {
	ev := c.ev
	full := len(c.cuts) - 1
	n := domain.Size()
	nt := len(c.tensors)
	for i, v := range c.seqVars {
		m.vals[c.seqIDs[i]] = seq[v]
	}
	idx := make([]int32, n)
	slab := make([]legion.Req, 0, n*nt)
	infos := make([]pointInfo, 0, n)
	clear(m.seen)
	// The dist-only cut group (if any) is the first one, and its intervals
	// are consumed only by dist-only tensors: once every point's entry is
	// cached, its evaluation can be skipped.
	distGroup := len(c.cuts) > 0 && c.cuts[0].cut == len(c.dist) && full > 0
	if m.distCache == nil && m.cacheDist {
		m.distCache = make([][]*rectEntry, n)
	}

	for i := 0; i < n; i++ {
		if i%cancelCheckPoints == cancelCheckPoints-1 && c.ctx.Err() != nil {
			return nil
		}
		domain.DelinearizeInto(i, m.point)
		for d, id := range c.distIDs {
			m.vals[id] = m.point[d]
		}
		var cached []*rectEntry
		if m.distCache != nil {
			cached = m.distCache[i]
		}
		// Evaluate cut groups in ascending order: each fixes the variables
		// it adds over the previous group.
		for g := range c.cuts {
			for _, id := range c.cuts[g].addIDs {
				m.fixed[id] = true
			}
			if g == 0 && distGroup && cached != nil {
				continue // every consumer of this group is cached
			}
			ev.Eval(m.fixed, m.vals, m.ivs[g])
		}
		for g := range c.cuts {
			for _, id := range c.cuts[g].addIDs {
				m.fixed[id] = false
			}
		}

		// Requirement bounds per tensor: union over the tensor's accesses,
		// clamped to its shape, then interned by packed bounds.
		m.sigBuf = m.sigBuf[:0]
		for ti := range c.tensors {
			tp := &c.tensors[ti]
			if cached != nil && cached[ti] != nil {
				e := cached[ti]
				m.ents[ti] = e
				m.sigBuf = binary.LittleEndian.AppendUint32(m.sigBuf, uint32(e.id))
				continue
			}
			lo, hi := m.rectLo[ti], m.rectHi[ti]
			tp.deriveBounds(m.ivs[tp.cutIdx], lo, hi)
			m.keyBuf = m.keyBuf[:0]
			m.keyBuf = binary.LittleEndian.AppendUint64(m.keyBuf, uint64(ti))
			for d := range lo {
				m.keyBuf = binary.LittleEndian.AppendUint64(m.keyBuf, uint64(lo[d]))
				m.keyBuf = binary.LittleEndian.AppendUint64(m.keyBuf, uint64(hi[d]))
			}
			e, ok := m.rects[string(m.keyBuf)]
			if !ok {
				r := tensor.NewRect(lo, hi)
				e = &rectEntry{rect: r, key: r.Key(), id: int32(len(m.rects)), bytes: c.tensors[ti].region.Bytes(r)}
				m.rects[string(m.keyBuf)] = e
			}
			m.ents[ti] = e
			m.sigBuf = binary.LittleEndian.AppendUint32(m.sigBuf, uint32(e.id))
		}

		if m.distCache != nil && cached == nil {
			ent := make([]*rectEntry, nt)
			for ti := range c.tensors {
				if c.distOnly[ti] {
					ent[ti] = m.ents[ti]
				}
			}
			m.distCache[i] = ent
		}

		// Cost-model inputs from the full environment.
		flops := c.pointFlops(m.ivs[full])
		m.sigBuf = binary.LittleEndian.AppendUint64(m.sigBuf, math.Float64bits(flops))

		li, ok := m.seen[string(m.sigBuf)]
		if !ok {
			off := len(slab)
			memBytes := 0.0
			for ti, e := range m.ents {
				slab = append(slab, legion.Req{
					Region: c.tensors[ti].region,
					Rect:   e.rect,
					Priv:   c.tensors[ti].priv,
					Key:    e.key,
				})
				memBytes += float64(e.bytes)
			}
			li = int32(len(infos))
			infos = append(infos, pointInfo{off: off, flops: flops, memBytes: memBytes})
			m.seen[string(m.sigBuf)] = li
		}
		idx[i] = li
	}

	info := func(point []int) *pointInfo { return &infos[idx[domain.Linearize(point)]] }
	return &legion.Launch{
		Name:   launchName(c.in.Stmt, c.seqVars, seq),
		Domain: domain,
		Reqs: func(point []int) []legion.Req {
			pi := info(point)
			return slab[pi.off : pi.off+nt : pi.off+nt]
		},
		Kernel: legion.Kernel{
			Flops:    func(point []int) float64 { return info(point).flops },
			MemBytes: func(point []int) float64 { return info(point).memBytes },
			Run:      c.realKernel(seq),
		},
	}
}

// buildLaunchChunked lowers one index launch by splitting its domain across
// a point-chunked worker pool; it is the materialization strategy for
// single-launch plans, whose only independence is between points. The
// bounds analysis of every domain point is materialized eagerly into the
// launch, for two reasons: the resulting program is immutable — safe for
// concurrent simulation, a prerequisite of plan caching — and repeated
// executions of a cached plan skip the analysis entirely (it is the
// dominant cost of a cold compile+execute).
//
// Materialization runs the compiled evaluator once per (point, anchor cut)
// over the pool; identical points (common under replication) are interned so
// the launch stores each distinct requirement set once, in one shared slab.
// Workers are merged in chunk order, so the slab ordering is identical to
// the serial path's first-appearance order.
func (c *compiler) buildLaunchChunked(domain machine.Grid, seq map[string]int) *legion.Launch {
	n := domain.Size()
	nt := len(c.tensors)
	seqVals := make([]int, len(c.seqIDs))
	for i, v := range c.seqVars {
		seqVals[i] = seq[v]
	}

	idx := make([]int32, n) // point -> worker-local, then global, info index
	nw := materializeWorkers(n)
	workers := make([]*pointWorker, nw)
	chunk := (n + nw - 1) / nw
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		pw := c.newPointWorker(start, end, domain.Rank(), seqVals)
		workers[w] = pw
		if nw == 1 {
			c.materializeChunk(pw, domain, idx)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.materializeChunk(pw, domain, idx)
		}()
	}
	wg.Wait()
	if c.ctx.Err() != nil {
		return nil // workers bailed early; the compile is aborting
	}

	// Merge worker-local infos into the launch's shared requirement slab,
	// deduplicating across workers. Workers are merged in chunk order so the
	// result is deterministic.
	var uniq int
	for _, pw := range workers {
		uniq += len(pw.infos)
	}
	slab := make([]legion.Req, 0, uniq*nt)
	infos := make([]pointInfo, 0, uniq)
	global := make(map[string]int32, uniq)
	for _, pw := range workers {
		trans := make([]int32, len(pw.infos))
		for li, wi := range pw.infos {
			gi, ok := global[wi.key]
			if !ok {
				gi = int32(len(infos))
				global[wi.key] = gi
				off := len(slab)
				for ti := range c.tensors {
					slab = append(slab, legion.Req{
						Region: c.tensors[ti].region,
						Rect:   wi.rects[ti],
						Priv:   c.tensors[ti].priv,
						Key:    wi.rects[ti].Key(),
					})
				}
				infos = append(infos, pointInfo{off: off, flops: wi.flops, memBytes: wi.memBytes})
			}
			trans[li] = gi
		}
		for i := pw.start; i < pw.end; i++ {
			idx[i] = trans[idx[i]]
		}
	}

	info := func(point []int) *pointInfo { return &infos[idx[domain.Linearize(point)]] }
	return &legion.Launch{
		Name:   launchName(c.in.Stmt, c.seqVars, seq),
		Domain: domain,
		Reqs: func(point []int) []legion.Req {
			pi := info(point)
			return slab[pi.off : pi.off+nt : pi.off+nt]
		},
		Kernel: legion.Kernel{
			Flops:    func(point []int) float64 { return info(point).flops },
			MemBytes: func(point []int) float64 { return info(point).memBytes },
			Run:      c.realKernel(seq),
		},
	}
}

// newPointWorker allocates one worker's scratch, pre-binding the launch's
// sequential assignment (constant across the chunk).
func (c *compiler) newPointWorker(start, end, rank int, seqVals []int) *pointWorker {
	nv := c.ev.NumVars()
	pw := &pointWorker{
		start: start, end: end,
		point: make([]int, rank),
		fixed: make([]bool, nv),
		vals:  make([]int, nv),
		ivs:   make([][]schedule.Interval, len(c.cuts)),
		rects: map[string]tensor.Rect{},
		seen:  map[string]int32{},
	}
	for i := range pw.ivs {
		pw.ivs[i] = make([]schedule.Interval, nv)
	}
	for _, tp := range c.tensors {
		r := len(tp.shape)
		pw.rectLo = append(pw.rectLo, make([]int, r))
		pw.rectHi = append(pw.rectHi, make([]int, r))
	}
	for i, id := range c.seqIDs {
		pw.vals[id] = seqVals[i]
	}
	return pw
}

// materializeChunk analyzes the worker's contiguous range of domain points:
// for each point it evaluates every distinct anchor cut once, derives the
// per-tensor requirement rects and cost-model inputs, and interns the
// resulting description.
func (c *compiler) materializeChunk(pw *pointWorker, domain machine.Grid, idx []int32) {
	ev := c.ev
	full := len(c.cuts) - 1
	for i := pw.start; i < pw.end; i++ {
		if (i-pw.start)%cancelCheckPoints == cancelCheckPoints-1 && c.ctx.Err() != nil {
			return
		}
		domain.DelinearizeInto(i, pw.point)
		for d, id := range c.distIDs {
			pw.vals[id] = pw.point[d]
		}
		// Evaluate cut groups in ascending order: each fixes the variables
		// it adds over the previous group.
		for g := range c.cuts {
			for _, id := range c.cuts[g].addIDs {
				pw.fixed[id] = true
			}
			ev.Eval(pw.fixed, pw.vals, pw.ivs[g])
		}
		for g := range c.cuts {
			for _, id := range c.cuts[g].addIDs {
				pw.fixed[id] = false
			}
		}

		// Requirement bounds per tensor: union over the tensor's accesses,
		// clamped to its shape.
		pw.keyBuf = pw.keyBuf[:0]
		for ti := range c.tensors {
			lo, hi := pw.rectLo[ti], pw.rectHi[ti]
			c.tensors[ti].deriveBounds(pw.ivs[c.tensors[ti].cutIdx], lo, hi)
			for d := range lo {
				pw.keyBuf = binary.LittleEndian.AppendUint64(pw.keyBuf, uint64(lo[d]))
				pw.keyBuf = binary.LittleEndian.AppendUint64(pw.keyBuf, uint64(hi[d]))
			}
		}

		// Cost-model inputs from the full environment.
		flops := c.pointFlops(pw.ivs[full])
		pw.keyBuf = binary.LittleEndian.AppendUint64(pw.keyBuf, math.Float64bits(flops))

		li, ok := pw.seen[string(pw.keyBuf)]
		if !ok {
			wi := workerInfo{key: string(pw.keyBuf), flops: flops}
			pos := 0
			for ti := range c.tensors {
				// Each tensor's packed bounds are a substring of the point
				// key; reuse them to intern the rect itself.
				rkeyEnd := pos + 16*len(c.tensors[ti].shape)
				rk := wi.key[pos:rkeyEnd]
				pos = rkeyEnd
				r, ok := pw.rects[rk]
				if !ok {
					r = tensor.NewRect(pw.rectLo[ti], pw.rectHi[ti])
					pw.rects[rk] = r
				}
				wi.rects = append(wi.rects, r)
				wi.memBytes += float64(c.tensors[ti].region.Bytes(r))
			}
			li = int32(len(pw.infos))
			pw.seen[wi.key] = li
			pw.infos = append(pw.infos, wi)
		}
		idx[i] = li
	}
}
