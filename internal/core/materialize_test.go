package core

import (
	"runtime"
	"testing"

	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
)

// johnsonInput builds an 8x8x8 Johnson-style 3D matmul without data: 512
// launch points, enough to engage several materialization workers.
func johnsonInput(t *testing.T, n int) Input {
	t.Helper()
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	m := machine.New(machine.NewGrid(8, 8, 8), machine.SysMem, machine.CPU)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j", "k"}, []string{"io", "jo", "ko"}, []string{"ii", "ji", "ki"}, []int{8, 8, 8}).
		Communicate("ko", "A", "B", "C")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	mk := func(name, place string) *TensorDecl {
		return &TensorDecl{Name: name, Shape: []int{n, n}, Placement: distnot.MustParsePlacement(place)}
	}
	return Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*TensorDecl{
			"A": mk("A", "xy->xy0"), "B": mk("B", "xz->x0z"), "C": mk("C", "zy->0yz"),
		},
		Schedule: s,
	}
}

// assertSamePrograms compares two compiled programs launch by launch, point
// by point: requirements, privileges, rects, and cost-model values must all
// agree.
func assertSamePrograms(t *testing.T, p1, p2 *legion.Program) {
	t.Helper()
	if len(p1.Launches) != len(p2.Launches) {
		t.Fatalf("launch counts differ: %d vs %d", len(p1.Launches), len(p2.Launches))
	}
	for li := range p1.Launches {
		l1, l2 := p1.Launches[li], p2.Launches[li]
		n := l1.Domain.Size()
		for i := 0; i < n; i++ {
			pt := l1.Domain.Delinearize(i)
			r1, r2 := l1.Reqs(pt), l2.Reqs(pt)
			if len(r1) != len(r2) {
				t.Fatalf("launch %d point %v: req counts differ", li, pt)
			}
			for qi := range r1 {
				if r1[qi].Region.Name != r2[qi].Region.Name || r1[qi].Priv != r2[qi].Priv ||
					!r1[qi].Rect.Equal(r2[qi].Rect) {
					t.Fatalf("launch %d point %v req %d: %v vs %v", li, pt, qi, r1[qi], r2[qi])
				}
			}
			if l1.Kernel.Flops(pt) != l2.Kernel.Flops(pt) || l1.Kernel.MemBytes(pt) != l2.Kernel.MemBytes(pt) {
				t.Fatalf("launch %d point %v: cost model differs", li, pt)
			}
		}
	}
}

// TestMaterializeDeterministic: parallel launch materialization must be
// deterministic — two compiles of the same input produce identical
// requirements and cost-model values at every point.
func TestMaterializeDeterministic(t *testing.T) {
	in := johnsonInput(t, 256)
	p1, err := Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePrograms(t, p1, p2)
}

// summaInput builds a chunked SUMMA-style pipeline: a multi-launch plan
// (one launch per ko chunk) that exercises launch-parallel materialization
// and the cross-launch dist-only requirement cache.
func summaInput(t *testing.T, n, g, chunks int) Input {
	t.Helper()
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	m := machine.New(machine.NewGrid(g, g), machine.SysMem, machine.CPU)
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{g, g}).
		Split("k", "ko", "ki", (n+chunks-1)/chunks).
		Reorder("ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *TensorDecl {
		return &TensorDecl{Name: name, Shape: []int{n, n}, Placement: distnot.MustParsePlacement("xy->xy")}
	}
	return Input{
		Stmt:     stmt,
		Machine:  m,
		Tensors:  map[string]*TensorDecl{"A": mk("A"), "B": mk("B"), "C": mk("C")},
		Schedule: s,
	}
}

// TestMaterializeStrategiesAgree: the three materialization strategies —
// serial (one materializer, GOMAXPROCS=1), launch-parallel (multi-launch
// pool), and point-chunked (single launch split across workers) — must
// produce identical programs. GOMAXPROCS is varied to force each strategy
// regardless of the host's core count.
func TestMaterializeStrategiesAgree(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, tc := range []struct {
		name string
		in   Input
	}{
		{"multiLaunch", summaInput(t, 256, 4, 8)},
		{"singleLaunch", johnsonInput(t, 256)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runtime.GOMAXPROCS(1)
			serial, err := Compile(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			runtime.GOMAXPROCS(4)
			parallel, err := Compile(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePrograms(t, serial, parallel)
		})
	}
}

// TestMaterializeinternsRects: points sharing a requirement rect must share
// the interned rect storage rather than each holding a private copy.
func TestMaterializeInternsRects(t *testing.T) {
	in := johnsonInput(t, 256)
	prog, err := Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Launches[0]
	// Points (0,0,0) and (0,0,1) write the same A tile (A's rect depends on
	// io/jo only under the ko anchor... it depends on io,jo — identical here).
	q1 := l.Reqs([]int{0, 0, 0})[0]
	q2 := l.Reqs([]int{0, 0, 1})[0]
	if !q1.Rect.Equal(q2.Rect) {
		t.Fatalf("expected equal A rects, got %v vs %v", q1.Rect, q2.Rect)
	}
	if &q1.Rect.Lo[0] != &q2.Rect.Lo[0] {
		t.Fatal("equal rects at different points are not interned (distinct backing arrays)")
	}
}

// TestMaterializeSharedSlab: all requirement slices of a launch live in one
// shared backing slab rather than per-point allocations — verified by the
// slices of adjacent distinct points being adjacent in memory.
func TestMaterializeSharedSlab(t *testing.T) {
	in := johnsonInput(t, 256)
	prog, err := Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Launches[0]
	n := l.Domain.Size()
	// Count distinct requirement-slice headers: with a shared slab and
	// interned point infos there are far fewer than n, and every slice has
	// the same length (one req per tensor).
	distinct := map[*legion.Req]bool{}
	for i := 0; i < n; i++ {
		r := l.Reqs(l.Domain.Delinearize(i))
		if len(r) != 3 {
			t.Fatalf("point %d: %d reqs, want 3", i, len(r))
		}
		distinct[&r[0]] = true
	}
	if len(distinct) > n {
		t.Fatalf("more slab entries (%d) than points (%d)", len(distinct), n)
	}
}
