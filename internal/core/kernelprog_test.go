package core_test

// Golden equivalence tests for the compiled Real-mode kernel program: for
// every example workload shipped in examples/, the compiled kernelProg and
// the tree-walking fallback kernel must produce bit-identical outputs (not
// merely within epsilon — the two lower the same expression in the same
// floating-point operation order, so any difference is a lowering bug).

import (
	"testing"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/schedule"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// exampleInputs builds the five example workloads (examples/quickstart,
// examples/cannon, examples/hierarchical, examples/johnson3d,
// examples/mttkrp) at validation sizes with deterministic data bound.
// Builders are re-invoked per call, so each call returns fresh, identical
// tensors.
func exampleInputs(t *testing.T) map[string]func() core.Input {
	t.Helper()
	mm := func(alg algorithms.Alg, cfg algorithms.MatmulConfig) func() core.Input {
		return func() core.Input {
			in, err := algorithms.Matmul(alg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return in
		}
	}
	return map[string]func() core.Input{
		// quickstart: SUMMA on a 2x2 grid with a chunked k loop.
		"quickstart": mm(algorithms.SUMMA, algorithms.MatmulConfig{N: 64, Procs: 4, ChunkSize: 16, Seed: 5}),
		// cannon: systolic rotation on a 3x3 grid.
		"cannon": mm(algorithms.Cannon, algorithms.MatmulConfig{N: 24, Procs: 9, Seed: 5}),
		// hierarchical: SUMMA over nodes of grouped processors.
		"hierarchical": mm(algorithms.SUMMA, algorithms.MatmulConfig{N: 32, Procs: 16, ProcsPerNode: 4, ChunkSize: 8, Seed: 5}),
		// johnson3d: replicated faces and a distributed reduction.
		"johnson3d": mm(algorithms.Johnson, algorithms.MatmulConfig{N: 24, Procs: 8, Seed: 5}),
		// mttkrp: the 4-tensor kernel with partial-result reduction.
		"mttkrp": func() core.Input {
			in, err := algorithms.MTTKRP(algorithms.HigherConfig{I: 12, J: 6, K: 8, L: 5, Procs: 8, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			return in
		},
	}
}

// runReal compiles in and executes it on real data, returning the LHS data.
func runReal(t *testing.T, in core.Input) *tensor.Dense {
	t.Helper()
	prog, err := core.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legion.Run(prog, legion.Options{Params: sim.LassenCPU(), Real: true}); err != nil {
		t.Fatal(err)
	}
	return prog.RegionByName(in.Stmt.LHS.Tensor).Data
}

// TestKernelProgGolden asserts the compiled kernel program and the
// tree-walking fallback produce bit-identical results on every example
// workload, and that both match the sequential reference evaluator.
func TestKernelProgGolden(t *testing.T) {
	for name, build := range exampleInputs(t) {
		t.Run(name, func(t *testing.T) {
			compiledIn := build()
			got := runReal(t, compiledIn)

			treeIn := build()
			treeIn.TreeKernel = true
			want := runReal(t, treeIn)

			gd, wd := got.Data(), want.Data()
			if len(gd) != len(wd) {
				t.Fatalf("output sizes differ: %d vs %d", len(gd), len(wd))
			}
			for i := range gd {
				if gd[i] != wd[i] {
					t.Fatalf("output[%d]: compiled kernel %v != tree kernel %v (bit-identical required)", i, gd[i], wd[i])
				}
			}

			// Both must also equal the reference evaluator (within float
			// tolerance: the distributed loop nest sums in schedule order).
			refIn := build()
			data := map[string]*tensor.Dense{}
			for tn, d := range refIn.Tensors {
				if tn != refIn.Stmt.LHS.Tensor {
					data[tn] = d.Data
				}
			}
			ref, err := ir.Evaluate(refIn.Stmt, data)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualWithin(ref, 1e-9) {
				t.Fatalf("compiled kernel diverges from reference: max diff %v", got.MaxAbsDiff(ref))
			}
		})
	}
}

// TestKernelProgIncrement pins the += path: the compiled kernel must
// accumulate on top of existing LHS contents exactly as the tree walk does.
func TestKernelProgIncrement(t *testing.T) {
	build := func(tree bool) core.Input {
		in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{N: 16, Procs: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Same schedule, but applied to the increment form of the statement.
		in.Stmt = ir.MustParse("A(i,j) += B(i,k) * C(k,j)")
		sched, err := schedule.FromText(in.Stmt, in.Schedule.String())
		if err != nil {
			t.Fatal(err)
		}
		in.Schedule = sched
		in.Tensors["A"].Data.Fill(1)
		in.TreeKernel = tree
		return in
	}
	got := runReal(t, build(false))
	want := runReal(t, build(true))
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("increment output[%d]: %v != %v", i, got.Data()[i], want.Data()[i])
		}
	}
}
