package core

import (
	"testing"

	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/machine"
	"distal/internal/schedule"
)

func keyInput(n, gx, gy int, schedText string) Input {
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	m := machine.New(machine.NewGrid(gx, gy), machine.SysMem, machine.CPU)
	decls := map[string]*TensorDecl{}
	for _, name := range []string{"A", "B", "C"} {
		decls[name] = &TensorDecl{
			Name:      name,
			Shape:     []int{n, n},
			Placement: distnot.MustParsePlacement("xy->xy"),
		}
	}
	s, err := schedule.FromText(stmt, schedText)
	if err != nil {
		panic(err)
	}
	return Input{Stmt: stmt, Machine: m, Tensors: decls, Schedule: s}
}

const keySched = "divide(i,io,ii,2) divide(j,jo,ji,2) reorder(io,jo,ii,ji) distribute(io,jo) communicate(jo,A,B,C)"

func TestPlanKeyDeterministic(t *testing.T) {
	a := PlanKey(keyInput(64, 2, 2, keySched))
	b := PlanKey(keyInput(64, 2, 2, keySched))
	if a != b {
		t.Fatalf("equal inputs produced different keys: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a)
	}
}

func TestPlanKeyDiscriminates(t *testing.T) {
	base := PlanKey(keyInput(64, 2, 2, keySched))
	for name, in := range map[string]Input{
		"shape":    keyInput(128, 2, 2, keySched),
		"machine":  keyInput(64, 4, 1, keySched),
		"schedule": keyInput(64, 2, 2, "divide(i,io,ii,2) divide(j,jo,ji,2) reorder(io,jo,ii,ji) distribute(io,jo) communicate(io,A,B,C)"),
	} {
		if PlanKey(in) == base {
			t.Errorf("varying %s did not change the plan key", name)
		}
	}
	other := keyInput(64, 2, 2, keySched)
	other.Tensors["B"].Placement = distnot.MustParsePlacement("xy->x*")
	if PlanKey(other) == base {
		t.Error("varying a placement did not change the plan key")
	}
}
