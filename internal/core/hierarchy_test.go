package core

import (
	"testing"

	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/machine"
	"distal/internal/schedule"
	"distal/internal/tensor"
)

// TestHierarchicalMachineEndToEnd exercises the full §3 hierarchy story: a
// 2x2 grid of nodes each containing 2 GPUs, a hierarchical data
// distribution ("xy->xy; zw->z": node tiles split row-wise per GPU), and a
// two-level distribute whose flattened task grid matches the machine's leaf
// grid. The distributed result must match the reference.
func TestHierarchicalMachineEndToEnd(t *testing.T) {
	const n = 16
	gpus := machine.New(machine.NewGrid(2), machine.GPUFBMem, machine.GPU)
	m := machine.New(machine.NewGrid(2, 2), machine.SysMem, machine.CPU).WithChild(gpus)

	place := distnot.MustParsePlacement("xy->xy; zw->z")
	mk := func(name string, seed int64) *TensorDecl {
		d := tensor.New(name, n, n)
		if seed > 0 {
			d.FillRandom(seed)
		}
		return &TensorDecl{Name: name, Shape: []int{n, n}, Placement: place, Data: d}
	}
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	// Node-level tiles (io, jo), then the i tile split again across the
	// GPUs of a node (iio): the distributed prefix (io, jo, iio) matches
	// the leaf grid (2, 2, 2).
	s := schedule.New(stmt).
		Divide("i", "io", "ii", 2).
		Divide("j", "jo", "ji", 2).
		Divide("ii", "iio", "iii", 2).
		Reorder("io", "jo", "iio", "iii", "ji", "k").
		Distribute("io", "jo", "iio").
		Communicate("iio", "A", "B", "C")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	in := Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*TensorDecl{
			"A": mk("A", 0), "B": mk("B", 21), "C": mk("C", 22),
		},
		Schedule: s,
	}
	prog, err := Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Launches[0].Domain.Size(); got != 8 {
		t.Fatalf("task domain = %d points, want 8", got)
	}
	res, err := legion.Run(prog, legion.Options{Params: testParams(), Real: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.Evaluate(stmt, map[string]*tensor.Dense{
		"B": in.Tensors["B"].Data, "C": in.Tensors["C"].Data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Tensors["A"].Data.EqualWithin(want, 1e-9) {
		t.Fatal("hierarchical execution produced a wrong product")
	}
	if res.Flops != 2*n*n*n {
		t.Fatalf("flops = %v, want %v", res.Flops, 2*n*n*n)
	}
}

// TestHierarchicalCommStaysOnFastLinks: with the hierarchical distribution
// above, the A tiles are GPU-local (owner computes), so A moves nothing;
// the contraction traffic for the k panels is the only communication.
func TestHierarchicalCommSplit(t *testing.T) {
	const n = 1024
	gpus := machine.New(machine.NewGrid(4), machine.GPUFBMem, machine.GPU)
	m := machine.New(machine.NewGrid(2, 2), machine.SysMem, machine.CPU).WithChild(gpus)
	place := distnot.MustParsePlacement("xy->xy; zw->z")
	mk := func(name string) *TensorDecl {
		return &TensorDecl{Name: name, Shape: []int{n, n}, Placement: place}
	}
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	s := schedule.New(stmt).
		Divide("i", "io", "ii", 2).
		Divide("j", "jo", "ji", 2).
		Divide("ii", "iio", "iii", 4).
		Reorder("io", "jo", "iio", "iii", "ji", "k").
		Distribute("io", "jo", "iio").
		Communicate("iio", "A", "B", "C")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(Input{
		Stmt: stmt, Machine: m,
		Tensors:  map[string]*TensorDecl{"A": mk("A"), "B": mk("B"), "C": mk("C")},
		Schedule: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := legion.Run(prog, legion.Options{Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	if res.IntraBytes == 0 || res.InterBytes == 0 {
		t.Fatalf("expected both intra- and inter-node traffic, got %d / %d",
			res.IntraBytes, res.InterBytes)
	}
}
