package core

import (
	"fmt"

	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/schedule"
)

// realKernel builds the Real-mode leaf body for one launch: a fused einsum
// loop nest over the leaf variables that reconstructs original index values
// from the schedule's derivations, skips out-of-extent points (ragged
// blocks), and combines into the LHS through the task's write requirement.
//
// The default body executes the plan's compiled kernelProg (kernelprog.go):
// raw storage surfaces are resolved once per task and every leaf point costs
// one integer ValueProgram pass plus one register-program pass — no
// interface dispatch, no map lookups, no per-point allocation. The
// tree-walking kernel below remains as a fallback (Input.TreeKernel) and as
// the reference the compiled program is asserted bit-identical against.
// Per-invocation scratch keeps tasks of a shared cached plan safe to run
// concurrently.
func (c *compiler) realKernel(seq map[string]int) func(ctx *legion.Ctx) {
	if c.in.TreeKernel {
		return c.treeKernel(seq)
	}
	kp := c.kprog
	ev := c.ev
	nv := ev.NumVars()
	nOrig := len(ev.OrigIDs())

	type binding struct{ id, val int }
	var seqBind []binding
	for _, v := range c.seqVars {
		seqBind = append(seqBind, binding{ev.VarID(v), seq[v]})
	}
	distIDs := c.distIDs
	leafIDs := make([]int, len(c.leaf))
	leafExt := make([]int, len(c.leaf))
	for i, name := range c.leaf {
		leafIDs[i] = ev.VarID(name)
		leafExt[i] = c.extents[name]
	}

	return func(ctx *legion.Ctx) {
		vals := make([]int, nv)
		origVals := make([]int, nOrig)
		regs := make([]float64, len(kp.ops))
		for i, id := range distIDs {
			vals[id] = ctx.Point[i]
		}
		for _, b := range seqBind {
			vals[b.id] = b.val
		}
		loads := make([]boundAccess, len(kp.accesses))
		for i := range kp.accesses {
			loads[i] = kp.accesses[i].bindRead(ctx)
		}
		store := kp.store.bindWrite(ctx)

		// Odometer over the leaf variables (innermost last, matching the
		// tree kernel's row-major walk).
		for _, ext := range leafExt {
			if ext <= 0 {
				return
			}
		}
		idx := make([]int, len(leafIDs))
		for _, id := range leafIDs {
			vals[id] = 0
		}
		for {
			if kp.vp.Run(vals, origVals) {
				kp.run(loads, &store, regs, origVals)
			}
			d := len(idx) - 1
			for d >= 0 {
				idx[d]++
				if idx[d] < leafExt[d] {
					vals[leafIDs[d]] = idx[d]
					break
				}
				idx[d] = 0
				vals[leafIDs[d]] = 0
				d--
			}
			if d < 0 {
				return
			}
		}
	}
}

// compiledExpr is the statement's RHS lowered to a pointer tree whose
// accesses carry a dense index — the leaf loop evaluates it without any map
// lookups. Superseded by kernelProg's flat register program on the default
// path; kept as the fallback and reference implementation.
type compiledExpr struct {
	op     exprOp
	tensor string  // exAccess
	acc    int     // exAccess: index into the access-plan tables
	val    float64 // exLit
	l, r   *compiledExpr
}

type exprOp uint8

const (
	exAccess exprOp = iota
	exLit
	exAdd
	exMul
)

// treeKernel is the tree-walking Real-mode leaf body: it evaluates the RHS
// by recursive descent over compiledExpr and reads through Ctx's
// coordinate-checked accessors. It computes exactly what the compiled
// kernelProg computes, in the same floating-point operation order.
func (c *compiler) treeKernel(seq map[string]int) func(ctx *legion.Ctx) {
	stmt := c.in.Stmt
	lhs := stmt.LHS
	reduces := len(stmt.ReductionVars()) > 0 || stmt.Increment
	ev := c.ev

	// Position of each original variable in the evaluator's value output.
	origPos := map[string]int{}
	for i, id := range ev.OrigIDs() {
		origPos[ev.VarName(int(id))] = i
	}
	// Access plans, one per access (LHS first): the value position indexing
	// each tensor dimension, resolved once here rather than per leaf point.
	var accPlans [][]int
	addAccess := func(a *ir.Access) int {
		dims := make([]int, len(a.Indices))
		for d, v := range a.Indices {
			dims[d] = origPos[v.Name]
		}
		accPlans = append(accPlans, dims)
		return len(accPlans) - 1
	}
	addAccess(lhs)
	var compile func(e ir.Expr) *compiledExpr
	compile = func(e ir.Expr) *compiledExpr {
		switch e := e.(type) {
		case *ir.Access:
			return &compiledExpr{op: exAccess, tensor: e.Tensor, acc: addAccess(e)}
		case *ir.Literal:
			return &compiledExpr{op: exLit, val: e.Value}
		case *ir.Add:
			return &compiledExpr{op: exAdd, l: compile(e.L), r: compile(e.R)}
		case *ir.Mul:
			return &compiledExpr{op: exMul, l: compile(e.L), r: compile(e.R)}
		default:
			panic(fmt.Sprintf("core: unknown expression %T", e))
		}
	}
	rhs := compile(stmt.RHS)

	type binding struct{ id, val int }
	var seqBind []binding
	for _, v := range c.seqVars {
		seqBind = append(seqBind, binding{ev.VarID(v), seq[v]})
	}
	distIDs := append([]int(nil), c.distIDs...)
	leafIDs := make([]int, len(c.leaf))
	leafExt := make([]int, len(c.leaf))
	for i, name := range c.leaf {
		leafIDs[i] = ev.VarID(name)
		leafExt[i] = c.extents[name]
	}

	return func(ctx *legion.Ctx) {
		nv := ev.NumVars()
		fixed := make([]bool, nv)
		vals := make([]int, nv)
		scratch := make([]schedule.Interval, nv)
		origVals := make([]int, len(ev.OrigIDs()))
		for i, id := range distIDs {
			fixed[id] = true
			vals[id] = ctx.Point[i]
		}
		for _, b := range seqBind {
			fixed[b.id] = true
			vals[b.id] = b.val
		}
		for _, id := range leafIDs {
			fixed[id] = true
		}
		// Per-access point buffers, indexed like accPlans.
		accBufs := make([][]int, len(accPlans))
		for i, dims := range accPlans {
			if len(dims) == 0 {
				accBufs[i] = scalarPoint // scalars are rank-1 unit regions
				continue
			}
			accBufs[i] = make([]int, len(dims))
		}
		pointFor := func(acc int) []int {
			dims := accPlans[acc]
			p := accBufs[acc]
			for d, pos := range dims {
				p[d] = origVals[pos]
			}
			return p
		}
		var evalExpr func(e *compiledExpr) float64
		evalExpr = func(e *compiledExpr) float64 {
			switch e.op {
			case exAccess:
				return ctx.ReadAt(e.tensor, pointFor(e.acc)...)
			case exLit:
				return e.val
			case exAdd:
				return evalExpr(e.l) + evalExpr(e.r)
			default:
				return evalExpr(e.l) * evalExpr(e.r)
			}
		}
		var walk func(d int)
		walk = func(d int) {
			if d < len(leafIDs) {
				for x := 0; x < leafExt[d]; x++ {
					vals[leafIDs[d]] = x
					walk(d + 1)
				}
				return
			}
			if !ev.ValueInto(fixed, vals, scratch, origVals) {
				return // ragged-boundary point outside the iteration space
			}
			v := evalExpr(rhs)
			p := pointFor(0)
			if reduces {
				ctx.WriteAdd(lhs.Tensor, v, p...)
			} else {
				ctx.WriteSet(lhs.Tensor, v, p...)
			}
		}
		walk(0)
	}
}

var scalarPoint = []int{0}
