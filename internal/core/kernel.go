package core

import (
	"fmt"

	"distal/internal/ir"
	"distal/internal/legion"
)

// realKernel builds the Real-mode leaf body: a generic fused einsum loop
// nest over the leaf variables that reconstructs original index values from
// the schedule's derivations, skips out-of-extent points (ragged blocks),
// and accumulates into the LHS through the task's write requirement.
func (c *compiler) realKernel(seq map[string]int) func(ctx *legion.Ctx) {
	stmt := c.in.Stmt
	lhs := stmt.LHS
	reduces := len(stmt.ReductionVars()) > 0 || stmt.Increment
	leafVars := c.leaf
	return func(ctx *legion.Ctx) {
		env := c.envFor(ctx.Point, seq)
		var walk func(d int)
		walk = func(d int) {
			if d < len(leafVars) {
				name := leafVars[d]
				for x := 0; x < c.extents[name]; x++ {
					env[name] = x
					walk(d + 1)
				}
				delete(env, name)
				return
			}
			vals, ok := c.sched.Value(env, c.extents)
			if !ok {
				return // ragged-boundary point outside the iteration space
			}
			v := evalRHS(stmt.RHS, vals, ctx)
			p := pointOf(lhs, vals)
			if reduces {
				ctx.WriteAdd(lhs.Tensor, v, p...)
			} else {
				ctx.WriteSet(lhs.Tensor, v, p...)
			}
		}
		walk(0)
	}
}

func pointOf(a *ir.Access, vals map[string]int) []int {
	if len(a.Indices) == 0 {
		return []int{0} // scalars are rank-1 unit regions
	}
	p := make([]int, len(a.Indices))
	for d, v := range a.Indices {
		p[d] = vals[v.Name]
	}
	return p
}

func evalRHS(e ir.Expr, vals map[string]int, ctx *legion.Ctx) float64 {
	switch e := e.(type) {
	case *ir.Access:
		return ctx.ReadAt(e.Tensor, pointOf(e, vals)...)
	case *ir.Literal:
		return e.Value
	case *ir.Add:
		return evalRHS(e.L, vals, ctx) + evalRHS(e.R, vals, ctx)
	case *ir.Mul:
		return evalRHS(e.L, vals, ctx) * evalRHS(e.R, vals, ctx)
	default:
		panic(fmt.Sprintf("core: unknown expression %T", e))
	}
}
