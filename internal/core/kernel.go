package core

import (
	"fmt"
	"sync"

	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/schedule"
)

// kernelScratch is the per-worker scratch of one compiled-kernel task
// invocation: value buffers, registers, bound access surfaces, and the row
// offset/stride tables. Instances are pooled on the plan (compiler.kpool),
// so batch and wire serving reuse a handful of scratches across every task
// of every execution instead of churning the garbage collector with five
// allocations per task. A scratch is owned by exactly one task invocation
// at a time; the pool makes tasks of a shared cached plan safe to run
// concurrently (each worker gets its own).
type kernelScratch struct {
	vals       []int
	origVals   []int
	idx        []int
	regs       []float64
	loads      []boundAccess
	loadOff    []int
	loadStride []int
}

func newKernelScratch(nv, nOrig, nOps, nAcc, nLeaf int) *kernelScratch {
	return &kernelScratch{
		vals:       make([]int, nv),
		origVals:   make([]int, nOrig),
		idx:        make([]int, nLeaf),
		regs:       make([]float64, nOps),
		loads:      make([]boundAccess, nAcc),
		loadOff:    make([]int, nAcc),
		loadStride: make([]int, nAcc),
	}
}

// release drops the tensor references bound during the task (so a pooled
// scratch never keeps an execution's data alive) and returns the scratch.
func (ks *kernelScratch) release(pool *sync.Pool) {
	for i := range ks.loads {
		ks.loads[i] = boundAccess{}
	}
	pool.Put(ks)
}

// realKernel builds the Real-mode leaf body for one launch: a fused einsum
// loop nest over the leaf variables that reconstructs original index values
// from the schedule's derivations, skips out-of-extent points (ragged
// blocks), and combines into the LHS through the task's write requirement.
//
// The default body executes the plan's compiled kernelProg (kernelprog.go)
// with raw storage surfaces resolved once per task. When the plan's row plan
// exists — every original variable's reconstruction is affine in the
// innermost leaf variable (see schedule.ValueProgram.CompileRow) — the body
// is strided: the odometer and ValueProgram run once per row, every access
// offset advances by a constant element stride, and the inner loop is pure
// float traffic (a fused multiply-accumulate for the one-multiply reduce
// shape). Ragged boundary rows fall back to the per-point walk, so results
// are bit-identical to the tree-walking fallback (Input.TreeKernel), which
// remains the reference the compiled program is asserted against. Scratch
// is pooled per worker (kernelScratch), so a task allocates nothing.
func (c *compiler) realKernel(seq map[string]int) func(ctx *legion.Ctx) {
	if c.in.TreeKernel {
		return c.treeKernel(seq)
	}
	kp := c.kprog
	ev := c.ev
	pool := c.kpool
	rp := c.rowPlan

	type binding struct{ id, val int }
	var seqBind []binding
	for _, v := range c.seqVars {
		seqBind = append(seqBind, binding{ev.VarID(v), seq[v]})
	}
	distIDs := c.distIDs
	leafIDs := make([]int, len(c.leaf))
	leafExt := make([]int, len(c.leaf))
	for i, name := range c.leaf {
		leafIDs[i] = ev.VarID(name)
		leafExt[i] = c.extents[name]
	}
	var steps []int
	if rp != nil {
		steps = rp.Steps()
	}

	return func(ctx *legion.Ctx) {
		ks := pool.Get().(*kernelScratch)
		defer ks.release(pool)
		vals, origVals, regs, loads := ks.vals, ks.origVals, ks.regs, ks.loads
		for i, id := range distIDs {
			vals[id] = ctx.Point[i]
		}
		for _, b := range seqBind {
			vals[b.id] = b.val
		}
		for i := range kp.accesses {
			loads[i] = kp.accesses[i].bindRead(ctx)
		}
		store := kp.store.bindWrite(ctx)

		for _, ext := range leafExt {
			if ext <= 0 {
				return
			}
		}
		for _, id := range leafIDs {
			vals[id] = 0
		}

		if rp != nil && len(leafIDs) > 0 {
			// Strided rows: the outer odometer walks every assignment of the
			// non-innermost leaf variables; each row costs one RowRun pass
			// plus base-offset computation, then a tight strided loop.
			inner := len(leafIDs) - 1
			innerID := leafIDs[inner]
			innerExt := leafExt[inner]
			// Element strides per unit of the innermost variable: canonical
			// read surfaces are fixed per execution, the store's depends on
			// the task's accumulator, so both resolve here, once per task.
			for i := range loads {
				s := 0
				for d, pos := range kp.accesses[i].pos {
					s += steps[pos] * loads[i].stride[d]
				}
				ks.loadStride[i] = s
			}
			sstride := 0
			for d, pos := range kp.store.pos {
				sstride += steps[pos] * store.stride[d]
			}
			idx := ks.idx[:inner]
			for i := range idx {
				idx[i] = 0
			}
			for {
				vals[innerID] = 0
				n := kp.vp.RowRun(rp, vals, origVals)
				if n > innerExt {
					n = innerExt
				}
				if n > 0 {
					for i := range loads {
						ks.loadOff[i] = loads[i].offset(origVals)
					}
					kp.runRow(loads, ks.loadOff, ks.loadStride, store.data, store.offset(origVals), sstride, regs, n)
				}
				// Ragged boundary rows: finish per-point so any point the
				// prefix bound excluded is re-judged by the reference walk —
				// the strided path can under-run a row but never diverge.
				for x := n; x < innerExt; x++ {
					vals[innerID] = x
					if kp.vp.Run(vals, origVals) {
						kp.run(loads, &store, regs, origVals)
					}
				}
				d := inner - 1
				for d >= 0 {
					idx[d]++
					if idx[d] < leafExt[d] {
						vals[leafIDs[d]] = idx[d]
						break
					}
					idx[d] = 0
					vals[leafIDs[d]] = 0
					d--
				}
				if d < 0 {
					return
				}
			}
		}

		// Per-point odometer over the leaf variables (innermost last,
		// matching the tree kernel's row-major walk): the fallback when no
		// leaf loops exist or the innermost reconstruction is not affine
		// (e.g. a rotation of the innermost variable).
		idx := ks.idx[:len(leafIDs)]
		for i := range idx {
			idx[i] = 0
		}
		for {
			if kp.vp.Run(vals, origVals) {
				kp.run(loads, &store, regs, origVals)
			}
			d := len(idx) - 1
			for d >= 0 {
				idx[d]++
				if idx[d] < leafExt[d] {
					vals[leafIDs[d]] = idx[d]
					break
				}
				idx[d] = 0
				vals[leafIDs[d]] = 0
				d--
			}
			if d < 0 {
				return
			}
		}
	}
}

// compiledExpr is the statement's RHS lowered to a pointer tree whose
// accesses carry a dense index — the leaf loop evaluates it without any map
// lookups. Superseded by kernelProg's flat register program on the default
// path; kept as the fallback and reference implementation.
type compiledExpr struct {
	op     exprOp
	tensor string  // exAccess
	acc    int     // exAccess: index into the access-plan tables
	val    float64 // exLit
	l, r   *compiledExpr
}

type exprOp uint8

const (
	exAccess exprOp = iota
	exLit
	exAdd
	exMul
)

// treeKernel is the tree-walking Real-mode leaf body: it evaluates the RHS
// by recursive descent over compiledExpr and reads through Ctx's
// coordinate-checked accessors. It computes exactly what the compiled
// kernelProg computes, in the same floating-point operation order.
func (c *compiler) treeKernel(seq map[string]int) func(ctx *legion.Ctx) {
	stmt := c.in.Stmt
	lhs := stmt.LHS
	reduces := len(stmt.ReductionVars()) > 0 || stmt.Increment
	ev := c.ev

	// Position of each original variable in the evaluator's value output.
	origPos := map[string]int{}
	for i, id := range ev.OrigIDs() {
		origPos[ev.VarName(int(id))] = i
	}
	// Access plans, one per access (LHS first): the value position indexing
	// each tensor dimension, resolved once here rather than per leaf point.
	var accPlans [][]int
	addAccess := func(a *ir.Access) int {
		dims := make([]int, len(a.Indices))
		for d, v := range a.Indices {
			dims[d] = origPos[v.Name]
		}
		accPlans = append(accPlans, dims)
		return len(accPlans) - 1
	}
	addAccess(lhs)
	var compile func(e ir.Expr) *compiledExpr
	compile = func(e ir.Expr) *compiledExpr {
		switch e := e.(type) {
		case *ir.Access:
			return &compiledExpr{op: exAccess, tensor: e.Tensor, acc: addAccess(e)}
		case *ir.Literal:
			return &compiledExpr{op: exLit, val: e.Value}
		case *ir.Add:
			return &compiledExpr{op: exAdd, l: compile(e.L), r: compile(e.R)}
		case *ir.Mul:
			return &compiledExpr{op: exMul, l: compile(e.L), r: compile(e.R)}
		default:
			panic(fmt.Sprintf("core: unknown expression %T", e))
		}
	}
	rhs := compile(stmt.RHS)

	type binding struct{ id, val int }
	var seqBind []binding
	for _, v := range c.seqVars {
		seqBind = append(seqBind, binding{ev.VarID(v), seq[v]})
	}
	distIDs := append([]int(nil), c.distIDs...)
	leafIDs := make([]int, len(c.leaf))
	leafExt := make([]int, len(c.leaf))
	for i, name := range c.leaf {
		leafIDs[i] = ev.VarID(name)
		leafExt[i] = c.extents[name]
	}

	return func(ctx *legion.Ctx) {
		nv := ev.NumVars()
		fixed := make([]bool, nv)
		vals := make([]int, nv)
		scratch := make([]schedule.Interval, nv)
		origVals := make([]int, len(ev.OrigIDs()))
		for i, id := range distIDs {
			fixed[id] = true
			vals[id] = ctx.Point[i]
		}
		for _, b := range seqBind {
			fixed[b.id] = true
			vals[b.id] = b.val
		}
		for _, id := range leafIDs {
			fixed[id] = true
		}
		// Per-access point buffers, indexed like accPlans.
		accBufs := make([][]int, len(accPlans))
		for i, dims := range accPlans {
			if len(dims) == 0 {
				accBufs[i] = scalarPoint // scalars are rank-1 unit regions
				continue
			}
			accBufs[i] = make([]int, len(dims))
		}
		pointFor := func(acc int) []int {
			dims := accPlans[acc]
			p := accBufs[acc]
			for d, pos := range dims {
				p[d] = origVals[pos]
			}
			return p
		}
		var evalExpr func(e *compiledExpr) float64
		evalExpr = func(e *compiledExpr) float64 {
			switch e.op {
			case exAccess:
				return ctx.ReadAt(e.tensor, pointFor(e.acc)...)
			case exLit:
				return e.val
			case exAdd:
				return evalExpr(e.l) + evalExpr(e.r)
			default:
				return evalExpr(e.l) * evalExpr(e.r)
			}
		}
		var walk func(d int)
		walk = func(d int) {
			if d < len(leafIDs) {
				for x := 0; x < leafExt[d]; x++ {
					vals[leafIDs[d]] = x
					walk(d + 1)
				}
				return
			}
			if !ev.ValueInto(fixed, vals, scratch, origVals) {
				return // ragged-boundary point outside the iteration space
			}
			v := evalExpr(rhs)
			p := pointFor(0)
			if reduces {
				ctx.WriteAdd(lhs.Tensor, v, p...)
			} else {
				ctx.WriteSet(lhs.Tensor, v, p...)
			}
		}
		walk(0)
	}
}

var scalarPoint = []int{0}
