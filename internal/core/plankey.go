package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// PlanKey returns a canonical content hash of a compilation input: two
// inputs share a key exactly when they produce the same program. The key
// covers the statement, the machine (grid hierarchy, processor/memory kinds,
// node grouping), every tensor's name, shape, and placement, and the
// schedule's serialized command form. Bound data is deliberately excluded —
// a plan describes the task graph, not the values flowing through it — so
// plan caches keyed by PlanKey must not serve Real-mode executions.
func PlanKey(in Input) string {
	var b strings.Builder
	b.WriteString("stmt:")
	if in.Stmt != nil {
		b.WriteString(in.Stmt.String())
	}
	b.WriteString("\nmachine:")
	if in.Machine != nil {
		fmt.Fprintf(&b, "%s ppn=%d", in.Machine, in.Machine.ProcsPerNode)
	}
	names := make([]string, 0, len(in.Tensors))
	for name := range in.Tensors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := in.Tensors[name]
		fmt.Fprintf(&b, "\ntensor:%s shape=%v placement=", name, t.Shape)
		if t.Placement != nil {
			b.WriteString(t.Placement.String())
		}
	}
	b.WriteString("\nschedule:")
	if in.Schedule != nil {
		b.WriteString(in.Schedule.String())
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
