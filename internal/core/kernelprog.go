package core

import (
	"fmt"

	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/schedule"
)

// This file lowers the statement's RHS expression tree into a kernelProg: a
// flat, topologically-ordered register program over []float64 slices, the
// Real-mode analogue of the compiled bounds evaluator (§5.1's leaf loop
// nest, executed rather than priced). The lowering runs once per plan; leaf
// tasks then execute every in-bounds point of their iteration space with no
// interface dispatch, no map lookups, and no per-point allocation:
//
//   - index reconstruction is a schedule.ValueProgram (integer ops only);
//   - every tensor access is an offset computation against the raw storage
//     surface of the task's region requirement (Ctx.ReadSurface /
//     Ctx.WriteSurface), resolved once per task;
//   - the expression itself is a register program whose op order matches a
//     postorder walk of the tree, so results are bit-identical to the
//     tree-walking fallback kernel (asserted by TestKernelProgGolden).

type kOpKind uint8

const (
	// kLoad reads accesses[acc] at the current point.
	kLoad kOpKind = iota
	// kLit produces a floating-point constant.
	kLit
	// kAdd/kMul combine two earlier registers.
	kAdd
	kMul
)

// kOp is one instruction; its destination register is its index in the
// program, so every instruction writes a fresh register (expressions are
// small — simplicity beats register pressure here).
type kOp struct {
	kind kOpKind
	a, b int32   // kAdd/kMul: operand registers
	acc  int32   // kLoad: index into accesses
	lit  float64 // kLit
}

// accessPlan maps one tensor access to the value domain: pos[d] is the
// position in the ValueProgram's origVals output indexing tensor dimension
// d. An empty pos is a scalar access (rank-1 unit region, offset 0).
type accessPlan struct {
	tensor string
	pos    []int32
}

// kernelProg is a statement's Real-mode leaf body, compiled once per plan
// and shared by every launch and every task of the plan (it is immutable;
// tasks carry their own scratch).
type kernelProg struct {
	ops      []kOp
	out      int32 // register holding the RHS value (last op)
	store    accessPlan
	accesses []accessPlan // kLoad targets, RHS postorder
	reduces  bool
	// fma marks the one-multiply reduce shape (store += load*load): the
	// strided row loop lowers it to a fused multiply-accumulate with no
	// register traffic. Detected once at lowering; the FMA loop performs
	// the same floating-point operations in the same order as the generic
	// register walk, so results stay bit-identical.
	fma bool
	vp  *schedule.ValueProgram
}

// compileKernelProg lowers stmt's RHS against the plan's evaluator.
func compileKernelProg(stmt *ir.Assignment, ev *schedule.Evaluator, reduces bool) *kernelProg {
	origPos := map[string]int32{}
	for i, id := range ev.OrigIDs() {
		origPos[ev.VarName(int(id))] = int32(i)
	}
	plan := func(a *ir.Access) accessPlan {
		p := accessPlan{tensor: a.Tensor}
		for _, v := range a.Indices {
			p.pos = append(p.pos, origPos[v.Name])
		}
		return p
	}
	kp := &kernelProg{store: plan(stmt.LHS), reduces: reduces, vp: ev.CompileValues()}
	var lower func(e ir.Expr) int32
	lower = func(e ir.Expr) int32 {
		switch e := e.(type) {
		case *ir.Access:
			kp.accesses = append(kp.accesses, plan(e))
			kp.ops = append(kp.ops, kOp{kind: kLoad, acc: int32(len(kp.accesses) - 1)})
		case *ir.Literal:
			kp.ops = append(kp.ops, kOp{kind: kLit, lit: e.Value})
		case *ir.Add:
			l, r := lower(e.L), lower(e.R)
			kp.ops = append(kp.ops, kOp{kind: kAdd, a: l, b: r})
		case *ir.Mul:
			l, r := lower(e.L), lower(e.R)
			kp.ops = append(kp.ops, kOp{kind: kMul, a: l, b: r})
		default:
			panic(fmt.Sprintf("core: unknown expression %T", e))
		}
		return int32(len(kp.ops) - 1)
	}
	kp.out = lower(stmt.RHS)
	kp.fma = kp.reduces && len(kp.ops) == 3 &&
		kp.ops[0].kind == kLoad && kp.ops[1].kind == kLoad &&
		kp.ops[2].kind == kMul && kp.ops[2].a == 0 && kp.ops[2].b == 1 &&
		kp.out == 2
	return kp
}

// boundAccess is an accessPlan resolved against one task's raw storage: the
// element for the current point lives at data[base+sum(origVals[pos[d]]*stride[d])].
type boundAccess struct {
	data   []float64
	stride []int
	pos    []int32
	base   int
}

// bindRead resolves a read access against the task's requirement surface.
func (p *accessPlan) bindRead(ctx *legion.Ctx) boundAccess {
	data, strides := ctx.ReadSurface(p.tensor)
	return boundAccess{data: data, stride: strides, pos: p.pos}
}

// bindWrite resolves the store target (accumulator or in-place instance).
func (p *accessPlan) bindWrite(ctx *legion.Ctx) boundAccess {
	data, strides, base := ctx.WriteSurface(p.tensor)
	return boundAccess{data: data, stride: strides, pos: p.pos, base: base}
}

func (b *boundAccess) offset(origVals []int) int {
	off := b.base
	for d, pos := range b.pos {
		off += origVals[pos] * b.stride[d]
	}
	return off
}

// run executes the program for one in-bounds point, reading the reconstructed
// original index values from origVals and combining into the store surface.
func (kp *kernelProg) run(loads []boundAccess, store *boundAccess, regs []float64, origVals []int) {
	for i := range kp.ops {
		op := &kp.ops[i]
		switch op.kind {
		case kLoad:
			l := &loads[op.acc]
			regs[i] = l.data[l.offset(origVals)]
		case kLit:
			regs[i] = op.lit
		case kAdd:
			regs[i] = regs[op.a] + regs[op.b]
		case kMul:
			regs[i] = regs[op.a] * regs[op.b]
		}
	}
	v := regs[kp.out]
	if kp.reduces {
		store.data[store.offset(origVals)] += v
	} else {
		store.data[store.offset(origVals)] = v
	}
}

// runRow executes the program for n consecutive in-space points of one row:
// every load's element offset starts at offs[i] and advances by strides[i]
// per point, the store offset starts at soff and advances by sstride. The
// odometer and ValueProgram ran once (at the row origin); this loop is pure
// float traffic over raw storage. Operation order per point matches run
// exactly, so strided rows are bit-identical to the per-point walk.
func (kp *kernelProg) runRow(loads []boundAccess, offs, strides []int, sdata []float64, soff, sstride int, regs []float64, n int) {
	if kp.fma {
		a, b := loads[0].data, loads[1].data
		ia, ib := offs[0], offs[1]
		sa, sb := strides[0], strides[1]
		if sstride == 0 {
			// The common einsum shape (e.g. matmul with the reduction loop
			// innermost): the store cell is row-invariant, so the partial sum
			// lives in a register for the whole row.
			acc := sdata[soff]
			for x := 0; x < n; x++ {
				acc += a[ia] * b[ib]
				ia += sa
				ib += sb
			}
			sdata[soff] = acc
			return
		}
		for x := 0; x < n; x++ {
			sdata[soff] += a[ia] * b[ib]
			ia += sa
			ib += sb
			soff += sstride
		}
		return
	}
	for x := 0; x < n; x++ {
		for i := range kp.ops {
			op := &kp.ops[i]
			switch op.kind {
			case kLoad:
				regs[i] = loads[op.acc].data[offs[op.acc]]
			case kLit:
				regs[i] = op.lit
			case kAdd:
				regs[i] = regs[op.a] + regs[op.b]
			case kMul:
				regs[i] = regs[op.a] * regs[op.b]
			}
		}
		if kp.reduces {
			sdata[soff] += regs[kp.out]
		} else {
			sdata[soff] = regs[kp.out]
		}
		for i := range offs {
			offs[i] += strides[i]
		}
		soff += sstride
	}
}
