package tune

import (
	"fmt"
	"sort"

	"distal/internal/ir"
	"distal/internal/schedule"
)

// Space is the tuner's search space for one statement on one machine grid:
// the machine-grid-compatible tilings of the statement's index variables,
// and per tiling the sequential-step pipelines (SUMMA-style broadcast or
// Cannon-style rotation) and per-tensor communicate placements that refine
// it. Every candidate the space emits is a serializable schedule in command
// text form; candidates are legality-checked against the scheduling
// language before they are offered for evaluation.
type Space struct {
	stmt    *ir.Assignment
	ext     map[string]int
	grid    []int
	vars    []string // statement loop order
	isOut   map[string]bool
	isRed   map[string]bool
	tensors []string
	output  string

	// rejected counts candidates the generator built but its own legality
	// gate refused (e.g. derived names colliding with statement variables),
	// so tuning stats can report the full generation count.
	rejected int
}

// Rejected returns how many generated candidates the legality gate refused
// before they were ever offered for evaluation.
func (sp *Space) Rejected() int { return sp.rejected }

// NewSpace builds the search space. extents maps every index variable of the
// statement to its concrete extent (ir.Assignment.VarExtents), grid is the
// machine's leaf grid.
func NewSpace(stmt *ir.Assignment, extents map[string]int, grid []int) (*Space, error) {
	if stmt == nil {
		return nil, fmt.Errorf("tune: nil statement")
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("tune: machine grid is empty")
	}
	sp := &Space{
		stmt:    stmt,
		ext:     extents,
		grid:    grid,
		isOut:   map[string]bool{},
		isRed:   map[string]bool{},
		tensors: stmt.TensorNames(),
		output:  stmt.LHS.Tensor,
	}
	for _, v := range stmt.Vars() {
		if _, ok := extents[v.Name]; !ok {
			return nil, fmt.Errorf("tune: no extent for variable %s", v.Name)
		}
		sp.vars = append(sp.vars, v.Name)
	}
	for _, v := range stmt.LHS.Indices {
		sp.isOut[v.Name] = true
	}
	for _, v := range stmt.ReductionVars() {
		sp.isRed[v.Name] = true
	}
	return sp, nil
}

// Tiling is one way of mapping the machine grid onto the statement: an
// ordered selection of index variables, one per machine dimension, each
// divided by that dimension's extent and distributed. It is the unit the
// beam search ranks and refines.
type Tiling struct {
	sel    []string // source variables, machine-dimension order
	outers []string // divided outer halves, the distributed prefix
	rest   []string // loop order after the prefix (inners + untouched vars)
	base   schedule.Commands
	text   string // base candidate: owner-computes communicate at the prefix
}

// Text returns the tiling's base candidate schedule text.
func (t *Tiling) Text() string { return t.text }

func command(op string, args ...string) schedule.Command {
	return schedule.Command{Op: op, Args: args}
}

// legal reports whether the commands apply cleanly to a fresh schedule over
// the statement. It is the pre-compile legality gate: everything it admits
// the scheduling language accepts, so compile failures are left to the
// oracle (and counted separately).
func (sp *Space) legal(cs schedule.Commands) bool {
	return schedule.New(sp.stmt).Apply(cs).Err() == nil
}

// canonicalize applies the commands to a fresh schedule and returns the
// applied log's text — the canonical form under which candidates are
// deduplicated (no-op commands vanish, every surviving command renders
// exactly as recorded). ok is false when the commands are illegal.
func (sp *Space) canonicalize(cs schedule.Commands) (string, bool) {
	s := schedule.New(sp.stmt).Apply(cs)
	if s.Err() != nil {
		return "", false
	}
	return s.Commands().String(), true
}

// Tilings enumerates the machine-grid-compatible tilings: ordered selections
// of distinct index variables, one per grid dimension, whose extents divide
// evenly by that dimension (no ragged tiles). The result is deterministic,
// ordered owner-computes-first: selections using only output variables come
// before those distributing reduction variables, ties broken by schedule
// text.
func (sp *Space) Tilings() []*Tiling {
	g := len(sp.grid)
	var out []*Tiling
	sel := make([]string, 0, g)
	used := map[string]bool{}
	var rec func(d int)
	rec = func(d int) {
		if d == g {
			if t := sp.buildTiling(sel); t != nil {
				out = append(out, t)
			}
			return
		}
		for _, v := range sp.vars {
			if used[v] {
				continue
			}
			e := sp.ext[v]
			c := sp.grid[d]
			if c < 1 || e < c || e%c != 0 {
				continue
			}
			used[v] = true
			sel = append(sel, v)
			rec(d + 1)
			sel = sel[:len(sel)-1]
			used[v] = false
		}
	}
	rec(0)
	sort.SliceStable(out, func(i, j int) bool {
		ni, nj := sp.nonOutputCount(out[i].sel), sp.nonOutputCount(out[j].sel)
		if ni != nj {
			return ni < nj
		}
		return out[i].text < out[j].text
	})
	return out
}

func (sp *Space) nonOutputCount(sel []string) int {
	n := 0
	for _, v := range sel {
		if !sp.isOut[v] {
			n++
		}
	}
	return n
}

// buildTiling lowers one selection to commands: divide each selected
// variable by its machine dimension, reorder the outer halves to the front,
// distribute them, and (for the base candidate) aggregate every tensor's
// communication at the innermost distributed variable — the owner-computes
// shape AutoSchedule emits when the selection is the output prefix.
func (sp *Space) buildTiling(sel []string) *Tiling {
	t := &Tiling{sel: append([]string(nil), sel...)}
	order := append([]string(nil), sp.vars...)
	for d, v := range sel {
		o, i := v+"_o", v+"_i"
		t.base = append(t.base, command("divide", v, o, i, fmt.Sprint(sp.grid[d])))
		order = replaceVar(order, v, o, i)
		t.outers = append(t.outers, o)
	}
	isOuter := map[string]bool{}
	for _, o := range t.outers {
		isOuter[o] = true
	}
	for _, v := range order {
		if !isOuter[v] {
			t.rest = append(t.rest, v)
		}
	}
	target := append(append([]string(nil), t.outers...), t.rest...)
	t.base = append(t.base,
		command("reorder", target...),
		command("distribute", t.outers...),
	)
	cs := append(append(schedule.Commands(nil), t.base...),
		command("communicate", append([]string{t.anchor()}, sp.tensors...)...))
	if !sp.legal(cs) {
		sp.rejected++
		return nil
	}
	t.text = cs.String()
	return t
}

// anchor is the tiling's task-level communicate anchor: the innermost
// distributed variable.
func (t *Tiling) anchor() string { return t.outers[len(t.outers)-1] }

func replaceVar(order []string, v string, repl ...string) []string {
	out := make([]string, 0, len(order)+len(repl)-1)
	for _, x := range order {
		if x == v {
			out = append(out, repl...)
		} else {
			out = append(out, x)
		}
	}
	return out
}

// stepCounts returns the candidate sequential-step counts for pipelining
// variable v: the distinct machine dimensions and their doubles, kept when
// they divide v's extent evenly. Ascending, deduplicated, at most four.
func (sp *Space) stepCounts(v string) []int {
	e := sp.ext[v]
	seen := map[int]bool{}
	var out []int
	add := func(s int) {
		if s > 1 && s <= e && e%s == 0 && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, d := range sp.grid {
		add(d)
	}
	for _, d := range sp.grid {
		add(2 * d)
	}
	sort.Ints(out)
	if len(out) > 4 {
		out = out[:4]
	}
	return out
}

// stepVars returns the variables a pipeline may step over for tiling t: the
// original statement variables left undivided by the tiling, reduction
// variables first (the classic SUMMA/Cannon contraction pipelines), each in
// statement order.
func (sp *Space) stepVars(t *Tiling) []string {
	inSel := map[string]bool{}
	for _, v := range t.sel {
		inSel[v] = true
	}
	var reds, others []string
	for _, v := range sp.vars {
		if inSel[v] {
			continue
		}
		if sp.isRed[v] {
			reds = append(reds, v)
		} else {
			others = append(others, v)
		}
	}
	return append(reds, others...)
}

// anchorMasks returns the per-tensor communicate placements to try in a
// pipeline: bit i set anchors tensor i at the sequential-step variable
// rather than the distributed prefix. The preferred mask — inputs stepped,
// output aggregated at the prefix — comes first, then the uniform masks,
// then the rest ascending, bounded at eight.
func (sp *Space) anchorMasks() []int {
	n := len(sp.tensors)
	pref := 0
	for i, t := range sp.tensors {
		if t != sp.output {
			pref |= 1 << i
		}
	}
	seen := map[int]bool{}
	var out []int
	add := func(m int) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	add(pref)
	add(0)
	add(1<<n - 1)
	for m := 0; m < 1<<n && len(out) < 8; m++ {
		add(m)
	}
	return out
}

// Refinements enumerates the sequential-step pipelines of one tiling: a
// remaining variable is divided into steps, the step loop is placed directly
// inside the distributed prefix, optionally rotated by the distributed
// variables (systolic, Cannon-style), and each tensor's communication is
// anchored either at the prefix or at the step loop. Deterministic order:
// step variable (reductions first), step count ascending, broadcast before
// rotate, preferred anchor placement first.
func (sp *Space) Refinements(t *Tiling) []string {
	var out []string
	masks := sp.anchorMasks()
	for _, v := range sp.stepVars(t) {
		for _, s := range sp.stepCounts(v) {
			so, si := v+"_o", v+"_i"
			pipe := append(schedule.Commands(nil), t.base...)
			pipe = append(pipe, command("divide", v, so, si, fmt.Sprint(s)))
			rest := replaceVar(t.rest, v, si)
			target := append(append(append([]string(nil), t.outers...), so), rest...)
			pipe = append(pipe, command("reorder", target...))
			for _, rot := range []bool{false, true} {
				step := so
				cs := append(schedule.Commands(nil), pipe...)
				if rot {
					step = v + "_r"
					cs = append(cs, command("rotate", append(append([]string{so}, t.outers...), step)...))
				}
				for _, mask := range masks {
					cand := append(append(schedule.Commands(nil), cs...), sp.communicates(mask, t.anchor(), step)...)
					if !sp.legal(cand) {
						sp.rejected++
						continue
					}
					out = append(out, cand.String())
				}
			}
		}
	}
	return out
}

// communicates renders the per-tensor anchor assignment as communicate
// commands: tensors with their mask bit clear aggregate at the distributed
// prefix, set bits at the sequential-step variable.
func (sp *Space) communicates(mask int, taskAnchor, stepAnchor string) schedule.Commands {
	var atTask, atStep []string
	for i, tn := range sp.tensors {
		if mask&(1<<i) != 0 {
			atStep = append(atStep, tn)
		} else {
			atTask = append(atTask, tn)
		}
	}
	var cs schedule.Commands
	if len(atTask) > 0 {
		cs = append(cs, command("communicate", append([]string{taskAnchor}, atTask...)...))
	}
	if len(atStep) > 0 {
		cs = append(cs, command("communicate", append([]string{stepAnchor}, atStep...)...))
	}
	return cs
}
