package tune

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"testing"

	"distal/internal/ir"
	"distal/internal/schedule"
)

func gemmInput(t *testing.T, n int, grid ...int) Input {
	t.Helper()
	stmt, err := ir.Parse("A(i,j) = B(i,k) * C(k,j)")
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		Stmt:    stmt,
		Extents: map[string]int{"i": n, "j": n, "k": n},
		Grid:    grid,
	}
}

// fakeOracle prices a schedule deterministically from its text, so search
// behavior can be tested without the compiler.
func fakeOracle() Oracle {
	return OracleFunc(func(_ context.Context, text string) (Metrics, error) {
		h := fnv.New64a()
		h.Write([]byte(text))
		return Metrics{MakespanSec: float64(h.Sum64()%100000) / 1e6}, nil
	})
}

// TestGeneratorRoundTrips checks the satellite invariant: every candidate
// the space emits round-trips through schedule.Parse(String(s)) — parsing
// the text and re-rendering reproduces it exactly — and is legal for the
// statement.
func TestGeneratorRoundTrips(t *testing.T) {
	in := gemmInput(t, 256, 4, 4)
	sp, err := NewSpace(in.Stmt, in.Extents, in.Grid)
	if err != nil {
		t.Fatal(err)
	}
	tilings := sp.Tilings()
	if len(tilings) == 0 {
		t.Fatal("no tilings generated")
	}
	var texts []string
	for _, tl := range tilings {
		texts = append(texts, tl.Text())
		texts = append(texts, sp.Refinements(tl)...)
	}
	if len(texts) < 20 {
		t.Fatalf("suspiciously small space: %d candidates", len(texts))
	}
	for _, text := range texts {
		cs, err := schedule.Parse(text)
		if err != nil {
			t.Fatalf("candidate does not parse: %v\n%s", err, text)
		}
		if cs.String() != text {
			t.Fatalf("candidate does not round-trip:\n  emitted: %s\n  reparsed: %s", text, cs.String())
		}
		s := schedule.New(in.Stmt).Apply(cs)
		if err := s.Err(); err != nil {
			t.Fatalf("candidate is illegal: %v\n%s", err, text)
		}
		if s.Commands().String() != text {
			t.Fatalf("candidate text is not canonical:\n  emitted: %s\n  applied: %s", text, s.Commands().String())
		}
	}
}

// TestTilingsDeterministicAndGridCompatible checks tiling enumeration:
// deterministic order, owner-computes first, and every divide factor
// matching its machine dimension with no ragged tiles.
func TestTilingsDeterministicAndGridCompatible(t *testing.T) {
	in := gemmInput(t, 256, 4, 2)
	sp, err := NewSpace(in.Stmt, in.Extents, in.Grid)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sp.Tilings(), sp.Tilings()
	if len(a) != len(b) {
		t.Fatalf("tiling count differs across calls: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text() != b[i].Text() {
			t.Fatalf("tiling order differs at %d", i)
		}
	}
	// Owner-computes (output vars i,j only) selections come first.
	first := a[0]
	if sp.nonOutputCount(first.sel) != 0 {
		t.Fatalf("first tiling distributes non-output vars: %v", first.sel)
	}
	for _, tl := range a {
		for d, v := range tl.sel {
			if in.Extents[v]%in.Grid[d] != 0 {
				t.Fatalf("tiling %v divides %s (extent %d) by incompatible grid dim %d",
					tl.sel, v, in.Extents[v], in.Grid[d])
			}
		}
	}
	// 3 vars with compatible extents over a 2-D grid: 3*2 ordered pairs.
	if len(a) != 6 {
		t.Fatalf("expected 6 tilings for 3 vars over a 2-D grid, got %d", len(a))
	}
}

// TestTuneDeterministicUnderWorkers runs the full search with a fake oracle
// under different worker counts and GOMAXPROCS: identical leaderboards.
func TestTuneDeterministicUnderWorkers(t *testing.T) {
	in := gemmInput(t, 256, 4, 4)
	run := func(workers int) *Result {
		res, err := Tune(context.Background(), in, fakeOracle(), Options{
			Budget: 30, Seed: 11, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	old := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(old)
	for _, w := range []int{2, 7, 16} {
		got := run(w)
		if len(got.Leaderboard) != len(ref.Leaderboard) {
			t.Fatalf("workers=%d: %d entries, want %d", w, len(got.Leaderboard), len(ref.Leaderboard))
		}
		for i := range ref.Leaderboard {
			if got.Leaderboard[i] != ref.Leaderboard[i] {
				t.Fatalf("workers=%d: entry %d differs:\n%+v\n%+v", w, i, got.Leaderboard[i], ref.Leaderboard[i])
			}
		}
		if got.Stats != ref.Stats {
			t.Fatalf("workers=%d: stats %+v, want %+v", w, got.Stats, ref.Stats)
		}
	}
}

// TestTuneBudgetAndSeeds checks budget accounting: seeds always run, the
// evaluated count never exceeds the effective budget, and duplicates are
// deduplicated by canonical text (a seed equal to a generated candidate
// evaluates once).
func TestTuneBudgetAndSeeds(t *testing.T) {
	in := gemmInput(t, 256, 4, 4)
	sp, err := NewSpace(in.Stmt, in.Extents, in.Grid)
	if err != nil {
		t.Fatal(err)
	}
	base := sp.Tilings()[0].Text()
	var calls []string
	oracle := OracleFunc(func(_ context.Context, text string) (Metrics, error) {
		calls = append(calls, text)
		return Metrics{MakespanSec: 1}, nil
	})
	res, err := Tune(context.Background(), in, oracle, Options{
		Budget: 8, Seed: 0, Workers: 1,
		Seeds: []string{base, "  " + base, "definitely not a schedule("},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluated != 8 {
		t.Fatalf("evaluated %d, want the full budget of 8", res.Stats.Evaluated)
	}
	if res.Stats.Illegal != 1 {
		t.Fatalf("illegal %d, want 1 (the malformed seed)", res.Stats.Illegal)
	}
	// The whitespace variant canonicalizes to the same text: one dedup from
	// the seeds, and the base tiling must not run again in stage one.
	if res.Stats.Deduped < 2 {
		t.Fatalf("deduped %d, want >= 2 (seed duplicate + stage-one duplicate)", res.Stats.Deduped)
	}
	seen := map[string]bool{}
	for _, c := range calls {
		if seen[c] {
			t.Fatalf("candidate evaluated twice: %s", c)
		}
		seen[c] = true
	}
	if !seen[base] {
		t.Fatal("seed candidate never evaluated")
	}
}

// TestTuneFailedCandidatesDoNotRank: oracle failures are counted and
// excluded; the best survivor wins.
func TestTuneFailedCandidatesDoNotRank(t *testing.T) {
	in := gemmInput(t, 256, 2, 2)
	oracle := OracleFunc(func(_ context.Context, text string) (Metrics, error) {
		if strings.Contains(text, "rotate") {
			return Metrics{}, fmt.Errorf("synthetic failure")
		}
		return Metrics{MakespanSec: float64(len(text))}, nil
	})
	res, err := Tune(context.Background(), in, oracle, Options{Budget: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed == 0 {
		t.Fatal("expected some synthetic failures")
	}
	for _, c := range res.Leaderboard {
		if strings.Contains(c.Schedule, "rotate") {
			t.Fatalf("failed candidate ranked: %s", c.Schedule)
		}
	}
}

// TestTuneCancellation: a canceled context aborts the search with the
// context's error.
func TestTuneCancellation(t *testing.T) {
	in := gemmInput(t, 256, 4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	oracle := OracleFunc(func(ctx context.Context, _ string) (Metrics, error) {
		n++
		if n == 3 {
			cancel()
		}
		return Metrics{MakespanSec: 1}, ctx.Err()
	})
	_, err := Tune(ctx, in, oracle, Options{Budget: 50, Workers: 1})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("expected cancellation error, got %v", err)
	}
}

// TestBetterRanking: OOM ranks last, ties break on schedule text.
func TestBetterRanking(t *testing.T) {
	a := Candidate{Schedule: "a", Metrics: Metrics{MakespanSec: 2}}
	b := Candidate{Schedule: "b", Metrics: Metrics{MakespanSec: 1, OOM: true}}
	c := Candidate{Schedule: "c", Metrics: Metrics{MakespanSec: 2}}
	if !Better(a, b) {
		t.Fatal("non-OOM must beat OOM regardless of makespan")
	}
	if !Better(a, c) || Better(c, a) {
		t.Fatal("equal makespans must tie-break on schedule text")
	}
}
