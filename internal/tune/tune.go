// Package tune is DISTAL's schedule auto-tuner: an enumerative + beam
// search over the scheduling language's space of mapping programs, using
// the simulator's makespan as the objective. The paper treats schedules as
// first-class mapping programs and leaves automatic search as future work
// (§9); this package composes the pieces the rest of the system already
// provides — serializable schedule.Commands, a fast simulation oracle, and
// a plan cache — into that search.
//
// The search has two stages. Stage one enumerates machine-grid-compatible
// tilings (ordered selections of index variables divided by the grid's
// dimensions and distributed, owner-computes candidates first) and
// evaluates each tiling's base schedule. Stage two takes the best Beam
// tilings and refines them with sequential-step pipelines: a remaining
// variable divided into steps, optionally rotated by the distributed
// variables (Cannon-style systolic communication), with per-tensor
// communicate placements. Candidates are generated as schedule command
// text, legality-checked against the scheduling language before any
// compile, deduplicated by canonical text, and evaluated concurrently over
// a bounded worker pool.
//
// The tuner is deterministic: for a fixed statement, machine, seed, and
// budget it generates the same candidates in the same order, samples
// overflow with a seeded RNG, and ranks results by (OOM, makespan,
// schedule text) — so the leaderboard is identical regardless of worker
// count or scheduling of the evaluation goroutines.
package tune

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"distal/internal/ir"
	"distal/internal/schedule"
)

// Metrics is what the oracle reports for one evaluated candidate. It
// mirrors the simulator's Result plus plan-cache provenance.
type Metrics struct {
	MakespanSec  float64
	GFlops       float64
	Flops        float64
	Copies       int64
	IntraBytes   int64
	InterBytes   int64
	PeakMemBytes int64
	OOM          bool
	PlanKey      string
	Cached       bool
}

// Oracle evaluates one candidate schedule (command text) against the
// tuner's objective. Implementations must be safe for concurrent calls and
// deterministic in everything Better consults (makespan, OOM): the
// leaderboard's determinism is exactly the oracle's.
type Oracle interface {
	Evaluate(ctx context.Context, scheduleText string) (Metrics, error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(ctx context.Context, scheduleText string) (Metrics, error)

// Evaluate implements Oracle.
func (f OracleFunc) Evaluate(ctx context.Context, s string) (Metrics, error) { return f(ctx, s) }

// Input names the workload being tuned.
type Input struct {
	// Stmt is the tensor index notation statement.
	Stmt *ir.Assignment
	// Extents maps every index variable to its concrete extent
	// (ir.Assignment.VarExtents over the request's shapes).
	Extents map[string]int
	// Grid is the machine's leaf grid.
	Grid []int
}

// Options bounds one tuning run.
type Options struct {
	// Budget is the maximum number of candidates evaluated (compiled +
	// simulated), seeds included. Default 64. When the generated space
	// exceeds the budget, the overflow is sampled with the seeded RNG.
	Budget int
	// Beam is how many top-ranked tilings stage two refines. Default 4.
	Beam int
	// Seed drives overflow sampling. Two runs with equal seed and budget
	// evaluate the same candidates. Default 0.
	Seed int64
	// Workers bounds concurrent oracle evaluations. Default
	// min(GOMAXPROCS, 8). The leaderboard does not depend on it.
	Workers int
	// KeepTop is the leaderboard length. Default 10.
	KeepTop int
	// Seeds are extra candidate schedules evaluated before any generated
	// one and never sampled away (the AutoSchedule baseline, a
	// hand-written schedule to beat). Illegal seeds are counted and
	// dropped.
	Seeds []string
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 64
	}
	if o.Beam <= 0 {
		o.Beam = 4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.KeepTop <= 0 {
		o.KeepTop = 10
	}
	return o
}

// Candidate is one evaluated schedule.
type Candidate struct {
	Schedule string
	Metrics  Metrics
}

// Stats counts what one tuning run did.
type Stats struct {
	// Generated counts candidates the space emitted (seeds included).
	Generated int
	// Illegal counts candidates rejected by the scheduling language before
	// compilation.
	Illegal int
	// Deduped counts candidates dropped as textual duplicates.
	Deduped int
	// Evaluated counts oracle calls (compile + simulate).
	Evaluated int
	// Failed counts evaluations the oracle rejected (compile or execution
	// errors); failed candidates do not rank.
	Failed int
}

// Result is a tuning run's outcome: the winner and the ranked leaderboard.
type Result struct {
	Best        Candidate
	Leaderboard []Candidate
	Stats       Stats
}

// Better ranks two evaluated candidates: non-OOM before OOM, then lower
// makespan, then lexicographic schedule text (the deterministic tie-break).
func Better(a, b Candidate) bool {
	if a.Metrics.OOM != b.Metrics.OOM {
		return !a.Metrics.OOM
	}
	if a.Metrics.MakespanSec != b.Metrics.MakespanSec {
		return a.Metrics.MakespanSec < b.Metrics.MakespanSec
	}
	return a.Schedule < b.Schedule
}

type outcome struct {
	cand Candidate
	err  error
}

type tuner struct {
	sp     *Space
	oracle Oracle
	opts   Options
	rng    *rand.Rand
	seen   map[string]bool
	stats  Stats
	ranked []Candidate
}

// Tune searches the schedule space of the input and returns the ranked
// result. The context cancels in-flight evaluations; a canceled run returns
// the context's error.
func Tune(ctx context.Context, in Input, oracle Oracle, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	sp, err := NewSpace(in.Stmt, in.Extents, in.Grid)
	if err != nil {
		return nil, err
	}
	t := &tuner{
		sp:     sp,
		oracle: oracle,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		seen:   map[string]bool{},
	}

	// Seeds run first and are never sampled away; they raise the effective
	// budget if the caller passed more seeds than budget.
	seeds := t.admit(opts.Seeds)
	budget := opts.Budget
	if budget < len(seeds) {
		budget = len(seeds)
	}
	if err := t.evalAll(ctx, seeds); err != nil {
		return nil, err
	}

	// Stage one: base tilings. Half the remaining budget when refinements
	// may follow, everything otherwise.
	tilings := sp.Tilings()
	byText := make(map[string]*Tiling, len(tilings))
	for _, tl := range tilings {
		byText[tl.Text()] = tl
	}
	bases := t.admit(tilingTexts(tilings))
	remaining := budget - t.stats.Evaluated
	stage1 := remaining
	if remaining > 2 {
		stage1 = (remaining + 1) / 2
	}
	if err := t.evalAll(ctx, t.sample(bases, stage1)); err != nil {
		return nil, err
	}

	// Stage two: refine the best Beam tilings with pipelines.
	var refs []string
	for _, c := range t.top(byText, opts.Beam) {
		refs = append(refs, t.admit(sp.Refinements(c))...)
	}
	if err := t.evalAll(ctx, t.sample(refs, budget-t.stats.Evaluated)); err != nil {
		return nil, err
	}

	// Fold in the candidates the generator built but its own legality gate
	// refused, so Generated/Illegal report the whole space that was tried.
	t.stats.Generated += sp.Rejected()
	t.stats.Illegal += sp.Rejected()

	if len(t.ranked) == 0 {
		return nil, fmt.Errorf("tune: no candidate evaluated successfully (%d generated, %d illegal, %d failed)",
			t.stats.Generated, t.stats.Illegal, t.stats.Failed)
	}
	sort.SliceStable(t.ranked, func(i, j int) bool { return Better(t.ranked[i], t.ranked[j]) })
	board := t.ranked
	if len(board) > opts.KeepTop {
		board = board[:opts.KeepTop]
	}
	return &Result{
		Best:        board[0],
		Leaderboard: append([]Candidate(nil), board...),
		Stats:       t.stats,
	}, nil
}

func tilingTexts(ts []*Tiling) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Text()
	}
	return out
}

// admit filters raw candidate texts through the legality and dedup gates,
// updating the stats. Order is preserved.
func (t *tuner) admit(cands []string) []string {
	var out []string
	for _, c := range cands {
		if c == "" {
			continue
		}
		t.stats.Generated++
		cs, err := schedule.Parse(c)
		if err != nil {
			t.stats.Illegal++
			continue
		}
		text, ok := t.sp.canonicalize(cs)
		if !ok {
			t.stats.Illegal++
			continue
		}
		if t.seen[text] {
			t.stats.Deduped++
			continue
		}
		t.seen[text] = true
		out = append(out, text)
	}
	return out
}

// sample bounds cands to n deterministically: the head half is kept in
// generation (heuristic) order, the tail is drawn from the rest by the
// seeded RNG. Sampling consumes RNG state even across stages, so one
// (seed, budget) pair fixes the whole run.
func (t *tuner) sample(cands []string, n int) []string {
	if n <= 0 {
		return nil
	}
	if len(cands) <= n {
		return cands
	}
	keep := n / 2
	out := append([]string(nil), cands[:keep]...)
	rest := append([]string(nil), cands[keep:]...)
	t.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	return append(out, rest[:n-keep]...)
}

// evalAll runs the oracle over cands on the bounded worker pool and folds
// successful outcomes into the ranking. Results are collected positionally,
// so worker interleaving cannot affect anything downstream.
func (t *tuner) evalAll(ctx context.Context, cands []string) error {
	if len(cands) == 0 {
		return ctx.Err()
	}
	outs := make([]outcome, len(cands))
	var wg sync.WaitGroup
	next := make(chan int)
	workers := t.opts.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				m, err := t.oracle.Evaluate(ctx, cands[i])
				outs[i] = outcome{cand: Candidate{Schedule: cands[i], Metrics: m}, err: err}
			}
		}()
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, o := range outs {
		t.stats.Evaluated++
		if o.err != nil {
			t.stats.Failed++
			continue
		}
		t.ranked = append(t.ranked, o.cand)
	}
	return nil
}

// top returns the tilings behind the best-ranked base candidates evaluated
// so far, at most n, in rank order.
func (t *tuner) top(byText map[string]*Tiling, n int) []*Tiling {
	ranked := append([]Candidate(nil), t.ranked...)
	sort.SliceStable(ranked, func(i, j int) bool { return Better(ranked[i], ranked[j]) })
	var out []*Tiling
	for _, c := range ranked {
		if tl, ok := byText[c.Schedule]; ok {
			out = append(out, tl)
			if len(out) == n {
				break
			}
		}
	}
	return out
}
