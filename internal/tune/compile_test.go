package tune_test

// Black-box check of the generator against the real compiler: every
// candidate the space emits for representative workloads compiles without
// error through a session (the legality gate admits nothing the compiler
// rejects). Lives in an external test package because the root distal
// package itself links internal/tune.

import (
	"context"
	"testing"

	"distal"
	"distal/internal/ir"
	"distal/internal/tune"
)

func TestEveryCandidateCompiles(t *testing.T) {
	cases := []struct {
		name string
		req  distal.Request
		grid []int
	}{
		{
			name: "gemm4x4",
			req: distal.Request{
				Stmt:   "A(i,j) = B(i,k) * C(k,j)",
				Shapes: map[string][]int{"A": {256, 256}, "B": {256, 256}, "C": {256, 256}},
			},
			grid: []int{4, 4},
		},
		{
			name: "mttkrp2x2x2",
			req: distal.Request{
				Stmt: "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)",
				Shapes: map[string][]int{
					"A": {16, 8}, "B": {16, 16, 16}, "C": {16, 8}, "D": {16, 8},
				},
				Formats: map[string]string{
					"A": "ab->a00", "B": "abc->abc", "C": "ab->*a*", "D": "ab->**a",
				},
			},
			grid: []int{2, 2, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var kind distal.ProcessorKind
			sess := distal.NewSession(distal.NewMachine(kind, tc.grid...))
			stmt, err := ir.Parse(tc.req.Stmt)
			if err != nil {
				t.Fatal(err)
			}
			extents, err := stmt.VarExtents(tc.req.Shapes)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := tune.NewSpace(stmt, extents, tc.grid)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, tl := range sp.Tilings() {
				for _, text := range append([]string{tl.Text()}, sp.Refinements(tl)...) {
					count++
					req := tc.req
					req.Schedule = text
					if _, err := sess.Compile(context.Background(), req); err != nil {
						t.Fatalf("candidate does not compile: %v\n%s", err, text)
					}
				}
			}
			if count < 10 {
				t.Fatalf("suspiciously small space: %d candidates", count)
			}
			t.Logf("%d candidates compiled", count)
		})
	}
}
