package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	m := New("A", 3, 4)
	if m.Rank() != 2 || m.Size() != 12 {
		t.Fatalf("rank/size = %d/%d, want 2/12", m.Rank(), m.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestScalarTensor(t *testing.T) {
	s := New("a")
	if s.Size() != 1 {
		t.Fatalf("scalar size = %d, want 1", s.Size())
	}
	s.Set(4.5)
	if got := s.At(); got != 4.5 {
		t.Fatalf("At() = %v, want 4.5", got)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New("A", 2, 3, 4)
	want := map[[3]int]float64{}
	k := 0.0
	FullRect(m.Shape()).Points(func(p []int) {
		m.Set(k, p...)
		want[[3]int{p[0], p[1], p[2]}] = k
		k++
	})
	for p, v := range want {
		if got := m.At(p[0], p[1], p[2]); got != v {
			t.Fatalf("At(%v) = %v, want %v", p, got, v)
		}
	}
}

func TestRowMajorLayout(t *testing.T) {
	m := New("A", 2, 3)
	m.Set(7, 1, 2)
	if m.Data()[1*3+2] != 7 {
		t.Fatal("expected row-major layout")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds access")
		}
	}()
	New("A", 2, 2).At(2, 0)
}

func TestAddAccumulates(t *testing.T) {
	m := New("A", 2)
	m.Add(1.5, 1)
	m.Add(2.5, 1)
	if m.At(1) != 4 {
		t.Fatalf("At(1) = %v, want 4", m.At(1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New("A", 2, 2)
	a.Set(1, 0, 0)
	b := a.Clone("B")
	b.Set(9, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if b.Name() != "B" {
		t.Fatalf("clone name = %q, want B", b.Name())
	}
}

func TestCopyRect(t *testing.T) {
	src := New("S", 4, 4)
	src.FillFunc(func(p []int) float64 { return float64(p[0]*10 + p[1]) })
	dst := New("D", 4, 4)
	dst.CopyRect(src, NewRect([]int{1, 1}, []int{3, 3}))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i >= 1 && i < 3 && j >= 1 && j < 3 {
				want = float64(i*10 + j)
			}
			if dst.At(i, j) != want {
				t.Fatalf("dst(%d,%d) = %v, want %v", i, j, dst.At(i, j), want)
			}
		}
	}
}

func TestEqualWithin(t *testing.T) {
	a := New("A", 3)
	b := New("B", 3)
	b.Set(1e-12, 2)
	if !a.EqualWithin(b, 1e-9) {
		t.Fatal("tensors should be equal within 1e-9")
	}
	if a.EqualWithin(b, 1e-15) {
		t.Fatal("tensors should differ at 1e-15")
	}
	c := New("C", 4)
	if a.EqualWithin(c, 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New("A", 10)
	b := New("B", 10)
	a.FillRandom(42)
	b.FillRandom(42)
	if !a.EqualWithin(b, 0) {
		t.Fatal("same seed must produce same data")
	}
	b.FillRandom(43)
	if a.EqualWithin(b, 0) {
		t.Fatal("different seeds should produce different data")
	}
}

func TestRectVolumeAndEmpty(t *testing.T) {
	r := NewRect([]int{0, 2}, []int{3, 5})
	if r.Volume() != 9 {
		t.Fatalf("volume = %d, want 9", r.Volume())
	}
	if r.Empty() {
		t.Fatal("rect should not be empty")
	}
	e := NewRect([]int{2, 2}, []int{2, 5})
	if !e.Empty() || e.Volume() != 0 {
		t.Fatal("rect with zero extent should be empty")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect([]int{0, 0}, []int{4, 4})
	b := NewRect([]int{2, 3}, []int{6, 8})
	got := a.Intersect(b)
	want := NewRect([]int{2, 3}, []int{4, 4})
	if !got.Equal(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) {
		t.Fatal("rects should overlap")
	}
	c := NewRect([]int{4, 0}, []int{5, 4})
	if a.Overlaps(c) {
		t.Fatal("adjacent rects must not overlap")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect([]int{1, 1}, []int{3, 3})
	if !r.Contains([]int{1, 2}) || r.Contains([]int{3, 2}) || r.Contains([]int{0, 0}) {
		t.Fatal("Contains gave wrong answers")
	}
	if !r.ContainsRect(NewRect([]int{1, 1}, []int{2, 3})) {
		t.Fatal("expected containment")
	}
	if r.ContainsRect(NewRect([]int{0, 1}, []int{2, 3})) {
		t.Fatal("expected non-containment")
	}
}

func TestRectPointsOrder(t *testing.T) {
	r := NewRect([]int{0, 1}, []int{2, 3})
	var got [][2]int
	r.Points(func(p []int) { got = append(got, [2]int{p[0], p[1]}) })
	want := [][2]int{{0, 1}, {0, 2}, {1, 1}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points = %v, want %v", got, want)
		}
	}
}

func TestRectString(t *testing.T) {
	r := NewRect([]int{0, 2}, []int{3, 5})
	if r.String() != "[0,3)x[2,5)" {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestBlockRangeCoversExactly(t *testing.T) {
	// Property: for any n >= 0 and count >= 1, the block ranges tile [0, n)
	// without gaps or overlaps.
	f := func(n8 uint8, c8 uint8) bool {
		n := int(n8)
		count := int(c8)%16 + 1
		covered := 0
		prevHi := 0
		for i := 0; i < count; i++ {
			lo, hi := BlockRange(n, count, i)
			if lo != prevHi && !(lo >= n && hi == lo) {
				if lo != prevHi {
					return false
				}
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			if hi > prevHi {
				prevHi = hi
			}
		}
		return covered == n && prevHi == n || (n == 0 && covered == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRangeKnown(t *testing.T) {
	// 10 elements over 3 blocks of ceil(10/3)=4: [0,4) [4,8) [8,10).
	cases := []struct{ i, lo, hi int }{{0, 0, 4}, {1, 4, 8}, {2, 8, 10}}
	for _, c := range cases {
		lo, hi := BlockRange(10, 3, c.i)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("BlockRange(10,3,%d) = [%d,%d), want [%d,%d)", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestCyclicSlots(t *testing.T) {
	got := CyclicSlots(7, 3, 1)
	want := []int{1, 4}
	if len(got) != len(want) || got[0] != 1 || got[1] != 4 {
		t.Fatalf("CyclicSlots = %v, want %v", got, want)
	}
}

func TestRectIntersectProperty(t *testing.T) {
	// Property: a point is in Intersect(a,b) iff it is in both a and b.
	f := func(alo, ahi, blo, bhi, px, py int8) bool {
		a := NewRect([]int{int(alo), int(alo)}, []int{int(ahi), int(ahi)})
		b := NewRect([]int{int(blo), int(blo)}, []int{int(bhi), int(bhi)})
		p := []int{int(px), int(py)}
		in := a.Intersect(b)
		return in.Contains(p) == (a.Contains(p) && b.Contains(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New("A", 2)
	b := New("B", 2)
	a.Set(1, 0)
	b.Set(3, 0)
	if d := a.MaxAbsDiff(b); math.Abs(d-2) > 1e-15 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
}

func TestSum(t *testing.T) {
	a := New("A", 3)
	a.Fill(2)
	if a.Sum() != 6 {
		t.Fatalf("Sum = %v, want 6", a.Sum())
	}
}
