package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a dense, row-major tensor of float64 values. It is the single
// value type moved, partitioned and computed on by the runtime.
type Dense struct {
	name    string
	shape   []int
	strides []int
	data    []float64
}

// New returns a zero-filled dense tensor with the given name and shape.
// A rank-0 tensor (empty shape) is a scalar holding one value.
func New(name string, shape ...int) *Dense {
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
	}
	n := 1
	for _, s := range shape {
		n *= s
	}
	return &Dense{
		name:    name,
		shape:   append([]int(nil), shape...),
		strides: rowMajorStrides(shape),
		data:    make([]float64, n),
	}
}

// FromData wraps an existing row-major backing slice as a dense tensor
// without copying: len(data) must equal the product of shape. It is the
// zero-copy construction path of streaming decoders (internal/wire), which
// fill the slice incrementally and hand it over once complete. The caller
// must not use data through any other reference afterwards.
func FromData(name string, data []float64, shape ...int) *Dense {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= s
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor %s: %d values for shape %v (want %d)", name, len(data), shape, n))
	}
	return &Dense{
		name:    name,
		shape:   append([]int(nil), shape...),
		strides: rowMajorStrides(shape),
		data:    data,
	}
}

func rowMajorStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for d := len(shape) - 1; d >= 0; d-- {
		strides[d] = acc
		acc *= shape[d]
	}
	return strides
}

// Name returns the tensor's name (used in notation and diagnostics).
func (t *Dense) Name() string { return t.name }

// Rename sets the tensor's name in place and returns the tensor. The wire
// codec decodes payloads without names (names travel in the request/response
// envelope, not the tensor frames), so receivers rename before binding.
func (t *Dense) Rename(name string) *Dense {
	t.name = name
	return t
}

// Rank returns the number of dimensions.
func (t *Dense) Rank() int { return len(t.shape) }

// Shape returns the tensor's dimensions. The caller must not mutate it.
func (t *Dense) Shape() []int { return t.shape }

// Size returns the total number of elements.
func (t *Dense) Size() int { return len(t.data) }

// Bytes returns the in-memory size of the tensor's payload in bytes.
func (t *Dense) Bytes() int64 { return int64(len(t.data)) * 8 }

// Data exposes the backing slice in row-major order.
func (t *Dense) Data() []float64 { return t.data }

// Strides returns the row-major strides of each dimension: the linear offset
// of coordinate p is the dot product of p and the strides. The caller must
// not mutate the returned slice. Together with Data it gives compiled leaf
// kernels a bounds-check-free addressing path.
func (t *Dense) Strides() []int { return t.strides }

// Offset returns the row-major linear offset of the coordinate p.
func (t *Dense) Offset(p []int) int {
	if len(p) != len(t.shape) {
		panic(fmt.Sprintf("tensor %s: coordinate rank %d != tensor rank %d", t.name, len(p), len(t.shape)))
	}
	off := 0
	for d, x := range p {
		if x < 0 || x >= t.shape[d] {
			panic(fmt.Sprintf("tensor %s: coordinate %v out of bounds for shape %v", t.name, p, t.shape))
		}
		off += x * t.strides[d]
	}
	return off
}

// At returns the value at coordinate p.
func (t *Dense) At(p ...int) float64 { return t.data[t.Offset(p)] }

// Set stores v at coordinate p.
func (t *Dense) Set(v float64, p ...int) { t.data[t.Offset(p)] = v }

// Add accumulates v into coordinate p.
func (t *Dense) Add(v float64, p ...int) { t.data[t.Offset(p)] += v }

// Fill sets every element to v.
func (t *Dense) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [0, 1) derived from seed.
func (t *Dense) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.data {
		t.data[i] = rng.Float64()
	}
}

// FillFunc sets each element to f(p) where p is the element's coordinate.
func (t *Dense) FillFunc(f func(p []int) float64) {
	FullRect(t.shape).Points(func(p []int) {
		t.data[t.Offset(p)] = f(p)
	})
}

// Clone returns a deep copy, optionally renamed (empty name keeps the old).
func (t *Dense) Clone(name string) *Dense {
	if name == "" {
		name = t.name
	}
	out := New(name, t.shape...)
	copy(out.data, t.data)
	return out
}

// Zero resets all elements to zero.
func (t *Dense) Zero() { t.Fill(0) }

// Rect returns the full rect of the tensor.
func (t *Dense) Rect() Rect { return FullRect(t.shape) }

// CopyRect copies the contents of rect r from src into the same coordinates
// of t. Both tensors must have equal rank and contain r.
func (t *Dense) CopyRect(src *Dense, r Rect) {
	r = r.Clamp(t.shape).Clamp(src.shape)
	r.Points(func(p []int) {
		t.data[t.Offset(p)] = src.data[src.Offset(p)]
	})
}

// MaxAbsDiff returns the maximum absolute element-wise difference between two
// tensors of identical shape.
func (t *Dense) MaxAbsDiff(other *Dense) float64 {
	if !sameShape(t.shape, other.shape) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", t.shape, other.shape))
	}
	maxd := 0.0
	for i := range t.data {
		d := math.Abs(t.data[i] - other.data[i])
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// EqualWithin reports whether the two tensors agree element-wise within eps.
func (t *Dense) EqualWithin(other *Dense, eps float64) bool {
	return sameShape(t.shape, other.shape) && t.MaxAbsDiff(other) <= eps
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sum returns the sum of all elements.
func (t *Dense) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// String summarizes the tensor without printing its payload.
func (t *Dense) String() string {
	return fmt.Sprintf("%s%v", t.name, t.shape)
}
