// Package tensor provides dense, row-major, multi-dimensional tensors and
// the hyper-rectangle (Rect) arithmetic used throughout the compiler and the
// runtime for partitioning, bounds analysis, and communication accounting.
package tensor

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Rect is a half-open hyper-rectangle: it contains every integer point p with
// Lo[d] <= p[d] < Hi[d] for all dimensions d. A Rect with any Hi[d] <= Lo[d]
// is empty. Rects are the unit of partitioning and of communication: every
// copy moved by the runtime is the contents of one Rect of one tensor.
type Rect struct {
	Lo, Hi []int
}

// NewRect returns the rect [lo, hi). The slices are copied.
func NewRect(lo, hi []int) Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("tensor: rect lo/hi rank mismatch: %d vs %d", len(lo), len(hi)))
	}
	return Rect{Lo: append([]int(nil), lo...), Hi: append([]int(nil), hi...)}
}

// FullRect returns the rect covering an entire tensor of the given shape.
func FullRect(shape []int) Rect {
	lo := make([]int, len(shape))
	hi := append([]int(nil), shape...)
	return Rect{Lo: lo, Hi: hi}
}

// Rank returns the number of dimensions.
func (r Rect) Rank() int { return len(r.Lo) }

// Empty reports whether the rect contains no points.
func (r Rect) Empty() bool {
	for d := range r.Lo {
		if r.Hi[d] <= r.Lo[d] {
			return true
		}
	}
	return len(r.Lo) == 0
}

// Volume returns the number of integer points in the rect.
func (r Rect) Volume() int {
	if len(r.Lo) == 0 {
		return 0
	}
	v := 1
	for d := range r.Lo {
		ext := r.Hi[d] - r.Lo[d]
		if ext <= 0 {
			return 0
		}
		v *= ext
	}
	return v
}

// Contains reports whether the point p lies inside the rect.
func (r Rect) Contains(p []int) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for d := range p {
		if p[d] < r.Lo[d] || p[d] >= r.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether other is entirely inside r. An empty other is
// contained in anything of the same rank.
func (r Rect) ContainsRect(other Rect) bool {
	if other.Rank() != r.Rank() {
		return false
	}
	if other.Empty() {
		return true
	}
	for d := range r.Lo {
		if other.Lo[d] < r.Lo[d] || other.Hi[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two rects of equal rank.
func (r Rect) Intersect(other Rect) Rect {
	if r.Rank() != other.Rank() {
		panic(fmt.Sprintf("tensor: intersect rank mismatch: %d vs %d", r.Rank(), other.Rank()))
	}
	out := NewRect(r.Lo, r.Hi)
	for d := range out.Lo {
		if other.Lo[d] > out.Lo[d] {
			out.Lo[d] = other.Lo[d]
		}
		if other.Hi[d] < out.Hi[d] {
			out.Hi[d] = other.Hi[d]
		}
	}
	return out
}

// Overlaps reports whether the two rects share at least one point.
func (r Rect) Overlaps(other Rect) bool {
	return !r.Intersect(other).Empty()
}

// Equal reports whether the two rects describe the same point set.
// All empty rects of equal rank are considered equal.
func (r Rect) Equal(other Rect) bool {
	if r.Rank() != other.Rank() {
		return false
	}
	if r.Empty() && other.Empty() {
		return true
	}
	for d := range r.Lo {
		if r.Lo[d] != other.Lo[d] || r.Hi[d] != other.Hi[d] {
			return false
		}
	}
	return true
}

// Clamp returns r restricted to [0, shape).
func (r Rect) Clamp(shape []int) Rect {
	return r.Intersect(FullRect(shape))
}

// Extent returns Hi[d]-Lo[d].
func (r Rect) Extent(d int) int { return r.Hi[d] - r.Lo[d] }

// Points calls f for every point in the rect in row-major order. The point
// slice is reused between calls; f must not retain it.
func (r Rect) Points(f func(p []int)) {
	if r.Empty() {
		return
	}
	p := append([]int(nil), r.Lo...)
	for {
		f(p)
		d := len(p) - 1
		for d >= 0 {
			p[d]++
			if p[d] < r.Hi[d] {
				break
			}
			p[d] = r.Lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// RectKey is a cheap comparable identity for a Rect: two rects of equal
// rank and identical bounds have equal keys. It replaces Rect.String() as a
// map key on hot paths — building one allocates nothing for rects of rank
// up to four (the common case), and comparing is integer comparison rather
// than string formatting.
type RectKey struct {
	rank   int32
	lo, hi [4]int64
	ext    string // packed bounds of rects with rank > 4
}

// Key returns the rect's comparable identity.
func (r Rect) Key() RectKey {
	k := RectKey{rank: int32(len(r.Lo))}
	if len(r.Lo) <= 4 {
		for d := range r.Lo {
			k.lo[d] = int64(r.Lo[d])
			k.hi[d] = int64(r.Hi[d])
		}
		return k
	}
	buf := make([]byte, 0, 16*len(r.Lo))
	for d := range r.Lo {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Lo[d]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Hi[d]))
	}
	k.ext = string(buf)
	return k
}

// String renders the rect as, e.g., "[0,4)x[2,6)".
func (r Rect) String() string {
	if r.Rank() == 0 {
		return "[]"
	}
	var b strings.Builder
	for d := range r.Lo {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%d,%d)", r.Lo[d], r.Hi[d])
	}
	return b.String()
}

// BlockRange returns the half-open range [lo, hi) of block i when an extent
// of n elements is divided into count contiguous blocks of size ceil(n/count)
// (the final block may be short, and trailing blocks may be empty). This is
// the blocked partitioning function of §3.2.
func BlockRange(n, count, i int) (lo, hi int) {
	if count <= 0 {
		panic("tensor: BlockRange with non-positive count")
	}
	size := (n + count - 1) / count
	lo = i * size
	hi = lo + size
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// CyclicSlots returns the coordinates in [0,n) owned by slot i of count under
// a cyclic (round-robin) distribution: {i, i+count, i+2*count, ...}.
func CyclicSlots(n, count, i int) []int {
	var out []int
	for x := i; x < n; x += count {
		out = append(out, x)
	}
	return out
}
