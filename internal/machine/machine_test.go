package machine

import (
	"testing"
	"testing/quick"
)

func TestGridSizeRank(t *testing.T) {
	g := NewGrid(2, 3, 4)
	if g.Rank() != 3 || g.Size() != 24 {
		t.Fatalf("rank/size = %d/%d, want 3/24", g.Rank(), g.Size())
	}
}

func TestGridLinearizeRoundTrip(t *testing.T) {
	g := NewGrid(3, 4, 5)
	for i := 0; i < g.Size(); i++ {
		p := g.Delinearize(i)
		if got := g.Linearize(p); got != i {
			t.Fatalf("Linearize(Delinearize(%d)) = %d", i, got)
		}
	}
}

func TestGridLinearizeRoundTripProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g := NewGrid(int(a%5)+1, int(b%5)+1, int(c%5)+1)
		for i := 0; i < g.Size(); i++ {
			if g.Linearize(g.Delinearize(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridPointsVisitsAll(t *testing.T) {
	g := NewGrid(2, 2)
	seen := map[[2]int]bool{}
	g.Points(func(p []int) { seen[[2]int{p[0], p[1]}] = true })
	if len(seen) != 4 {
		t.Fatalf("visited %d points, want 4", len(seen))
	}
}

func TestGridOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(2, 2).Linearize([]int{2, 0})
}

func TestInvalidGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero dimension")
		}
	}()
	NewGrid(2, 0)
}

func TestFlatMachine(t *testing.T) {
	m := New(NewGrid(4, 4), SysMem, CPU)
	if m.Depth() != 1 || m.LeafCount() != 16 {
		t.Fatalf("depth/leaves = %d/%d, want 1/16", m.Depth(), m.LeafCount())
	}
	if m.LeafMem() != SysMem || m.LeafProc() != CPU {
		t.Fatal("leaf mem/proc wrong for flat machine")
	}
}

func TestHierarchicalMachine(t *testing.T) {
	// 2x2 grid of nodes, each node a 1-D grid of 4 GPUs (the Lassen model).
	gpus := New(NewGrid(4), GPUFBMem, GPU)
	m := New(NewGrid(2, 2), SysMem, CPU).WithChild(gpus)
	if m.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", m.Depth())
	}
	if m.LeafCount() != 16 {
		t.Fatalf("leaf count = %d, want 16", m.LeafCount())
	}
	lg := m.LeafGrid()
	if lg.Rank() != 3 || lg.Dims[0] != 2 || lg.Dims[1] != 2 || lg.Dims[2] != 4 {
		t.Fatalf("leaf grid = %v", lg)
	}
	if m.LeafMem() != GPUFBMem || m.LeafProc() != GPU {
		t.Fatal("leaf mem/proc should come from innermost level")
	}
}

func TestNodeOf(t *testing.T) {
	gpus := New(NewGrid(4), GPUFBMem, GPU)
	m := New(NewGrid(2, 2), SysMem, CPU).WithChild(gpus)
	// Leaves (0,1,x) all share node Linearize(0,1) = 1.
	for x := 0; x < 4; x++ {
		if got := m.NodeOf([]int{0, 1, x}); got != 1 {
			t.Fatalf("NodeOf(0,1,%d) = %d, want 1", x, got)
		}
	}
	if m.NodeOf([]int{1, 0, 2}) == m.NodeOf([]int{0, 1, 2}) {
		t.Fatal("distinct nodes must have distinct ids")
	}
}

func TestMachineString(t *testing.T) {
	gpus := New(NewGrid(4), GPUFBMem, GPU)
	m := New(NewGrid(2, 2), SysMem, CPU).WithChild(gpus)
	want := "Grid(2,2)[CPU/SysMem] of Grid(4)[GPU/GPUFBMem]"
	if m.String() != want {
		t.Fatalf("String() = %q, want %q", m.String(), want)
	}
}

func TestWithChildDoesNotMutate(t *testing.T) {
	base := New(NewGrid(2), SysMem, CPU)
	_ = base.WithChild(New(NewGrid(2), GPUFBMem, GPU))
	if base.Child != nil {
		t.Fatal("WithChild must not mutate the receiver")
	}
}
