// Package machine models target machines as multi-dimensional grids of
// abstract processors, each with a local memory, per §3.1 of the DISTAL
// paper. Machines are hierarchical: each abstract processor of one level may
// itself be a grid (e.g. a 2-D grid of nodes, each a 1-D grid of GPUs).
package machine

import (
	"fmt"
	"strings"
)

// MemKind names the memory in which a processor keeps its local data.
type MemKind int

const (
	// SysMem is host DRAM attached to a CPU socket.
	SysMem MemKind = iota
	// GPUFBMem is GPU framebuffer (HBM) memory.
	GPUFBMem
)

func (m MemKind) String() string {
	switch m {
	case SysMem:
		return "SysMem"
	case GPUFBMem:
		return "GPUFBMem"
	default:
		return fmt.Sprintf("MemKind(%d)", int(m))
	}
}

// ProcKind names the kind of processor that executes leaf tasks.
type ProcKind int

const (
	// CPU is a multi-core CPU socket treated as one abstract processor.
	CPU ProcKind = iota
	// GPU is a single GPU.
	GPU
)

func (p ProcKind) String() string {
	switch p {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("ProcKind(%d)", int(p))
	}
}

// Grid is a multi-dimensional processor grid shape.
type Grid struct {
	Dims []int
}

// NewGrid returns a grid with the given extents, all of which must be >= 1.
func NewGrid(dims ...int) Grid {
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("machine: grid dimension %v must be >= 1", dims))
		}
	}
	return Grid{Dims: append([]int(nil), dims...)}
}

// Rank returns the number of grid dimensions.
func (g Grid) Rank() int { return len(g.Dims) }

// Size returns the total number of processors in the grid.
func (g Grid) Size() int {
	n := 1
	for _, d := range g.Dims {
		n *= d
	}
	return n
}

// Linearize converts a grid coordinate to a flat index in row-major order.
func (g Grid) Linearize(p []int) int {
	if len(p) != len(g.Dims) {
		panic(fmt.Sprintf("machine: coordinate %v has wrong rank for grid %v", p, g.Dims))
	}
	idx := 0
	for d, x := range p {
		if x < 0 || x >= g.Dims[d] {
			panic(fmt.Sprintf("machine: coordinate %v out of grid %v", p, g.Dims))
		}
		idx = idx*g.Dims[d] + x
	}
	return idx
}

// Delinearize converts a flat index back into a grid coordinate.
func (g Grid) Delinearize(idx int) []int {
	p := make([]int, len(g.Dims))
	g.DelinearizeInto(idx, p)
	return p
}

// DelinearizeInto converts a flat index into a grid coordinate without
// allocating; out must have length Rank().
func (g Grid) DelinearizeInto(idx int, out []int) {
	if idx < 0 || idx >= g.Size() {
		panic(fmt.Sprintf("machine: index %d out of grid %v", idx, g.Dims))
	}
	for d := len(g.Dims) - 1; d >= 0; d-- {
		out[d] = idx % g.Dims[d]
		idx /= g.Dims[d]
	}
}

// Points calls f for every coordinate of the grid in row-major order. The
// slice is reused; f must not retain it.
func (g Grid) Points(f func(p []int)) {
	n := g.Size()
	for i := 0; i < n; i++ {
		f(g.Delinearize(i))
	}
}

func (g Grid) String() string {
	parts := make([]string, len(g.Dims))
	for i, d := range g.Dims {
		parts[i] = fmt.Sprint(d)
	}
	return "Grid(" + strings.Join(parts, ",") + ")"
}

// Machine is a (possibly hierarchical) distributed machine: a grid of
// abstract processors with local memories of kind Mem executing on ProcKind
// processors. If Child is non-nil, every abstract processor of this level is
// itself a machine with the Child's organization (e.g. nodes containing
// GPUs); leaf processors live at the deepest level.
type Machine struct {
	Grid Grid
	Mem  MemKind
	Proc ProcKind

	Child *Machine

	// ProcsPerNode, when positive, declares that consecutive leaf processors
	// (in row-major leaf order) share a physical node in groups of this
	// size. It lets a logically flat grid (e.g. a 32x32 grid of GPUs)
	// preserve the node structure of the physical machine (4 GPUs per
	// node). When zero, each coordinate of the outermost grid is one node.
	ProcsPerNode int
}

// New returns a flat machine over the grid with the given memory/processor
// kinds.
func New(g Grid, mem MemKind, proc ProcKind) *Machine {
	return &Machine{Grid: g, Mem: mem, Proc: proc}
}

// WithChild returns a copy of m whose abstract processors are each organized
// as the child machine.
func (m *Machine) WithChild(child *Machine) *Machine {
	cp := *m
	cp.Child = child
	return &cp
}

// Levels returns the machines from outermost to innermost.
func (m *Machine) Levels() []*Machine {
	var out []*Machine
	for cur := m; cur != nil; cur = cur.Child {
		out = append(out, cur)
	}
	return out
}

// Depth returns the number of hierarchy levels.
func (m *Machine) Depth() int { return len(m.Levels()) }

// LeafCount returns the total number of leaf processors across all levels.
func (m *Machine) LeafCount() int {
	n := 1
	for _, lvl := range m.Levels() {
		n *= lvl.Grid.Size()
	}
	return n
}

// LeafGrid returns the flattened grid whose dimensions are the concatenation
// of all levels' dimensions. Coordinates in this grid identify single leaf
// processors.
func (m *Machine) LeafGrid() Grid {
	var dims []int
	for _, lvl := range m.Levels() {
		dims = append(dims, lvl.Grid.Dims...)
	}
	return NewGrid(dims...)
}

// LeafMem returns the memory kind of leaf processors (the innermost level).
func (m *Machine) LeafMem() MemKind {
	lv := m.Levels()
	return lv[len(lv)-1].Mem
}

// LeafProc returns the processor kind of leaf processors.
func (m *Machine) LeafProc() ProcKind {
	lv := m.Levels()
	return lv[len(lv)-1].Proc
}

// NodeOf maps a leaf-grid coordinate to its node's flat index. Two leaves
// with equal NodeOf share a node and communicate over intra-node links.
func (m *Machine) NodeOf(leaf []int) int {
	if m.ProcsPerNode > 0 {
		return m.LeafGrid().Linearize(leaf) / m.ProcsPerNode
	}
	outer := m.Grid
	if len(leaf) < outer.Rank() {
		panic(fmt.Sprintf("machine: leaf coordinate %v shorter than outer grid %v", leaf, outer.Dims))
	}
	return outer.Linearize(leaf[:outer.Rank()])
}

// Nodes returns the number of physical nodes in the machine.
func (m *Machine) Nodes() int {
	if m.ProcsPerNode > 0 {
		return (m.LeafCount() + m.ProcsPerNode - 1) / m.ProcsPerNode
	}
	return m.Grid.Size()
}

// WithProcsPerNode returns a copy of m grouping consecutive leaves into
// nodes of the given size.
func (m *Machine) WithProcsPerNode(n int) *Machine {
	cp := *m
	cp.ProcsPerNode = n
	return &cp
}

func (m *Machine) String() string {
	var b strings.Builder
	for i, lvl := range m.Levels() {
		if i > 0 {
			b.WriteString(" of ")
		}
		fmt.Fprintf(&b, "%s[%s/%s]", lvl.Grid, lvl.Proc, lvl.Mem)
	}
	return b.String()
}
