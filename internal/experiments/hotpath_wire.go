package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"

	"distal"
	"distal/internal/serve"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// wireHotpath builds the `run-wire-*` measurements: one full POST /v1/run
// round trip against an in-process server — frame encode, HTTP, server-side
// decode, real execution on the cached plan, and the streamed response
// decode. run-wire-summa ships the input tensors as wire frames;
// run-wire-fill has the server materialize them from fill directives, so the
// pair separates payload-movement cost from the shared execution path. The
// returned closer shuts the server down.
func wireHotpath() (cases []hotpathCase, close func(), err error) {
	const n = 256
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 4, 4))
	ts := httptest.NewServer(serve.New(sess, serve.Config{}))

	req := wire.RunRequest{
		Stmt:   "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
			"split(k,ko,ki,64) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
	}
	B := tensor.New("B", n, n)
	B.FillRandom(1)
	C := tensor.New("C", n, n)
	C.FillRandom(2)

	client := &wire.Client{BaseURL: ts.URL, HTTP: ts.Client()}
	framedReq := req
	framedReq.Inputs = map[string]string{"B": wire.FillWire, "C": wire.FillWire}
	framedData := map[string]*tensor.Dense{"B": B, "C": C}
	filledReq := req
	filledReq.Inputs = map[string]string{"B": "rand:1", "C": "rand:2"}

	// Warm the plan cache so every timed iteration measures the wire path,
	// not one amortized compile.
	if _, _, err := client.Run(context.Background(), filledReq, nil); err != nil {
		ts.Close()
		return nil, nil, err
	}

	// The batched pair ships the same eight instances either as one
	// "batch": 8 request (one plan walk, one round trip) or as eight
	// sequential single-instance requests; the byte volume on the wire is
	// identical, so the gap is the per-request walk and HTTP overhead. The
	// instances are deliberately small (the payload-heavy path is
	// run-wire-summa's job) so the row isolates what batching amortizes.
	// Gated intra-run as batch-wire-8<seq-wire-8.
	const batchN, bn = 8, 64
	batchReq := wire.RunRequest{
		Stmt:   "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{"A": {bn, bn}, "B": {bn, bn}, "C": {bn, bn}},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
			"split(k,ko,ki,8) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
		Inputs: map[string]string{"B": wire.FillWire, "C": wire.FillWire},
	}
	bB := tensor.New("B", bn, bn)
	bB.FillRandom(3)
	bC := tensor.New("C", bn, bn)
	bC.FillRandom(4)
	batchData := map[string]*tensor.Dense{"B": bB, "C": bC}
	batchInsts := make([]map[string]*tensor.Dense, batchN)
	for i := range batchInsts {
		batchInsts[i] = batchData
	}
	// Warm the batch plan too, for the same reason as above.
	if _, _, err := client.Run(context.Background(), batchReq, batchData); err != nil {
		ts.Close()
		return nil, nil, err
	}

	cases = []hotpathCase{
		{"run-wire-summa", func() error {
			_, _, err := client.Run(context.Background(), framedReq, framedData)
			return err
		}},
		{"run-wire-fill", func() error {
			_, _, err := client.Run(context.Background(), filledReq, nil)
			return err
		}},
		{"batch-wire-8", func() error {
			outcome, err := client.RunBatch(context.Background(), batchReq, batchInsts)
			if err != nil {
				return err
			}
			for i, e := range outcome.Errs {
				if e != nil {
					return fmt.Errorf("instance %d: %w", i, e)
				}
			}
			return nil
		}},
		{"seq-wire-8", func() error {
			for i := 0; i < batchN; i++ {
				if _, _, err := client.Run(context.Background(), batchReq, batchData); err != nil {
					return fmt.Errorf("run %d: %w", i, err)
				}
			}
			return nil
		}},
	}
	return cases, ts.Close, nil
}
