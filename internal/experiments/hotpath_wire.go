package experiments

import (
	"context"
	"net/http/httptest"

	"distal"
	"distal/internal/serve"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// wireHotpath builds the `run-wire-*` measurements: one full POST /v1/run
// round trip against an in-process server — frame encode, HTTP, server-side
// decode, real execution on the cached plan, and the streamed response
// decode. run-wire-summa ships the input tensors as wire frames;
// run-wire-fill has the server materialize them from fill directives, so the
// pair separates payload-movement cost from the shared execution path. The
// returned closer shuts the server down.
func wireHotpath() (cases []hotpathCase, close func(), err error) {
	const n = 256
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 4, 4))
	ts := httptest.NewServer(serve.New(sess, serve.Config{}))

	req := wire.RunRequest{
		Stmt:   "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
			"split(k,ko,ki,64) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
	}
	B := tensor.New("B", n, n)
	B.FillRandom(1)
	C := tensor.New("C", n, n)
	C.FillRandom(2)

	client := &wire.Client{BaseURL: ts.URL, HTTP: ts.Client()}
	framedReq := req
	framedReq.Inputs = map[string]string{"B": wire.FillWire, "C": wire.FillWire}
	framedData := map[string]*tensor.Dense{"B": B, "C": C}
	filledReq := req
	filledReq.Inputs = map[string]string{"B": "rand:1", "C": "rand:2"}

	// Warm the plan cache so every timed iteration measures the wire path,
	// not one amortized compile.
	if _, _, err := client.Run(context.Background(), filledReq, nil); err != nil {
		ts.Close()
		return nil, nil, err
	}

	cases = []hotpathCase{
		{"run-wire-summa", func() error {
			_, _, err := client.Run(context.Background(), framedReq, framedData)
			return err
		}},
		{"run-wire-fill", func() error {
			_, _, err := client.Run(context.Background(), filledReq, nil)
			return err
		}},
	}
	return cases, ts.Close, nil
}
