package experiments

import (
	"testing"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

// TestCannonSystolicTrace is experiment E9 (Fig. 12): after the first
// rotated step, every processor receives its B tile from the processor one
// column to its right (wrapping), never from a broadcast source.
func TestCannonSystolicTrace(t *testing.T) {
	const g = 4
	in, err := algorithms.Matmul(algorithms.Cannon, algorithms.MatmulConfig{
		N: 1 << 10, Procs: g * g, ProcsPerNode: g, GPU: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := legion.Run(prog, legion.Options{Params: sim.LassenGPU(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	grid := prog.Machine.LeafGrid()
	checked := 0
	for _, c := range res.Trace {
		if c.Region != "B" || c.Launch != "A[kos=1]" {
			continue
		}
		dst := grid.Delinearize(c.Dst)
		src := grid.Delinearize(c.Src)
		// The tile travels within the processor row (either relayed from
		// the right neighbor that used it last step, or from its in-row
		// owner when that is equally close) — never from another row and
		// never as a broadcast.
		if src[0] != dst[0] || c.Src == c.Dst {
			t.Errorf("B copy at kos=1 into proc %v came from %v, want an in-row source", dst, src)
		}
		checked++
	}
	// Row io = g-1 needs its own tiles at kos=1 ((1+io+jo) mod g == jo), so
	// exactly g processors fetch nothing.
	if checked != g*g-g {
		t.Fatalf("saw %d B copies at kos=1, want %d", checked, g*g-g)
	}
	// At kos=1 each B tile also travels exactly once: no tile is fetched by
	// two processors (the anti-broadcast property).
	seen := map[string]bool{}
	for _, c := range res.Trace {
		if c.Region == "B" && c.Launch == "A[kos=1]" {
			if seen[c.Rect.String()] {
				t.Errorf("tile %v moved twice at kos=1", c.Rect)
			}
			seen[c.Rect.String()] = true
		}
	}
}

// TestExecutionSpaceDistribute is experiment E11 (Fig. 6): distribute(i)
// places the iterations of i on different processors at the same time, so
// the makespan shrinks proportionally with the processor count.
func TestExecutionSpaceDistribute(t *testing.T) {
	run := func(procs int) float64 {
		in, err := algorithms.TTV(algorithms.HigherConfig{I: 512, J: 512, K: 64, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := core.Compile(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := legion.Run(prog, legion.Options{Params: sim.LassenCPU()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	t1, t4 := run(1), run(4)
	if t4 > t1/3 {
		t.Errorf("4-way distribution should be ~4x faster: %.3g vs %.3g", t1, t4)
	}
}
