package experiments

import (
	"context"
	"fmt"
	"strings"

	"distal"
)

// TuneRow is one auto-tuned example workload: the AutoSchedule baseline
// makespan, the tuner's winner, and the speedup. Rows are what
// `distal-bench -exp tune` prints and what CI's tuner smoke asserts on.
type TuneRow struct {
	Name string `json:"name"`
	// BaselineSec is the AutoSchedule heuristic's makespan; 0 when the
	// heuristic is undefined for the workload (fewer output variables than
	// machine dimensions, e.g. GEMM on a cube).
	BaselineSec float64 `json:"baseline_sec"`
	// HandSec is the makespan of the example's hand-written schedule,
	// which competes as a seed candidate.
	HandSec   float64 `json:"hand_sec"`
	TunedSec  float64 `json:"tuned_sec"`
	Speedup   float64 `json:"speedup"`
	Evaluated int     `json:"evaluated"`
	Winner    string  `json:"winner"`
	// OOM flags per schedule: the tuner prefers any non-OOM schedule over
	// a faster OOM one, so makespan comparisons only bind between
	// schedules on the same side of the memory limit.
	WinnerOOM   bool `json:"winner_oom,omitempty"`
	BaselineOOM bool `json:"baseline_oom,omitempty"`
	HandOOM     bool `json:"hand_oom,omitempty"`
}

// tuneCase mirrors one of the five example workloads (examples/) as a pure
// Request plus its machine, so the tuner can search the exact workloads the
// repository demonstrates by hand.
type tuneCase struct {
	name    string
	machine func() *distal.Machine
	params  distal.Params
	req     distal.Request
}

func tuneCases() []tuneCase {
	square := func(n int, names ...string) map[string][]int {
		out := map[string][]int{}
		for _, name := range names {
			out[name] = []int{n, n}
		}
		return out
	}
	gemm := "A(i,j) = B(i,k) * C(k,j)"
	return []tuneCase{
		{
			// examples/quickstart: SUMMA-style GEMM on a 4x4 CPU grid.
			name:    "summa",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 4, 4) },
			params:  distal.LassenCPU(),
			req: distal.Request{
				Stmt: gemm, Shapes: square(1024, "A", "B", "C"),
				Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"split(k,ko,ki,256) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
			},
		},
		{
			// examples/cannon: systolic GEMM on a 3x3 grid.
			name:    "cannon",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 3, 3) },
			params:  distal.LassenCPU(),
			req: distal.Request{
				Stmt: gemm, Shapes: square(768, "A", "B", "C"),
				Schedule: "divide(i,io,ii,3) divide(j,jo,ji,3) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"divide(k,ko,ki,3) reorder(io,jo,ko,ii,ji,ki) rotate(ko,io,jo,kos) " +
					"communicate(jo,A) communicate(kos,B,C)",
			},
		},
		{
			// examples/johnson3d: 3D GEMM on a processor cube, inputs fixed
			// to cube faces.
			name:    "johnson",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 2, 2, 2) },
			params:  distal.LassenCPU(),
			req: distal.Request{
				Stmt:    gemm,
				Shapes:  square(256, "A", "B", "C"),
				Formats: map[string]string{"A": "xy->xy0", "B": "xz->x0z", "C": "zy->0yz"},
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) divide(k,ko,ki,2) " +
					"reorder(io,jo,ko,ii,ji,ki) distribute(io,jo,ko) communicate(ko,A,B,C)",
			},
		},
		{
			// examples/mttkrp: the Ballard et al. MTTKRP algorithm's data
			// distribution on a processor cube.
			name:    "mttkrp",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 2, 2, 2) },
			params:  distal.LassenCPU(),
			req: distal.Request{
				Stmt: "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)",
				Shapes: map[string][]int{
					"A": {64, 32}, "B": {64, 64, 64}, "C": {64, 32}, "D": {64, 32},
				},
				Formats: map[string]string{
					"A": "ab->a00", "B": "abc->abc", "C": "ab->*a*", "D": "ab->**a",
				},
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) divide(k,ko,ki,2) " +
					"reorder(io,jo,ko,ii,ji,ki,l) distribute(io,jo,ko) communicate(ko,A,B,C,D)",
			},
		},
		{
			// examples/hierarchical: multi-GPU nodes (2x8 GPUs, 4 per node).
			name: "hierarchical",
			machine: func() *distal.Machine {
				return distal.NewMachine(distal.GPU, 2, 8).WithProcsPerNode(4)
			},
			params: distal.LassenGPU(),
			req: distal.Request{
				Stmt: gemm, Shapes: square(512, "A", "B", "C"),
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,8) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"split(k,ko,ki,256) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
			},
		},
	}
}

// TuneExamples auto-tunes the five example workloads with the given budget
// and seed and returns one row per workload. Winners never rank worse than
// the AutoSchedule baseline (the baseline is always a candidate); Verify
// turns a violation into an error.
func TuneExamples(budget int, seed int64) ([]TuneRow, error) {
	var rows []TuneRow
	for _, c := range tuneCases() {
		sess := distal.NewSession(c.machine(), distal.WithParams(c.params))
		res, err := sess.Tune(context.Background(), c.req, distal.TuneOptions{Budget: budget, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("tune %s: %w", c.name, err)
		}
		row := TuneRow{
			Name:      c.name,
			TunedSec:  res.Winner.MakespanSec,
			Evaluated: res.Evaluated,
			Winner:    res.Winner.Schedule,
			WinnerOOM: res.Winner.OOM,
		}
		if res.Baseline != nil {
			row.BaselineSec = res.Baseline.MakespanSec
			row.BaselineOOM = res.Baseline.OOM
			row.Speedup = res.Speedup()
		}
		if c.req.Schedule != "" {
			hand, err := sess.Execute(c.req)
			if err != nil {
				return nil, fmt.Errorf("tune %s: hand schedule: %w", c.name, err)
			}
			row.HandSec = hand.Time
			row.HandOOM = hand.OOM
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// VerifyTune checks the tuner's core guarantee on example-workload rows:
// the winner's simulated makespan is no worse than the AutoSchedule
// baseline (where it exists) or the example's hand-written schedule (which
// competes as a seed candidate). A reference schedule that exhausts memory
// does not bind — the tuner rightly prefers any non-OOM schedule over a
// faster OOM one — but then the winner must itself be OOM-free.
func VerifyTune(rows []TuneRow) error {
	for _, r := range rows {
		check := func(refSec float64, refOOM bool, what string) error {
			if refSec <= 0 {
				return nil
			}
			if refOOM {
				if r.WinnerOOM {
					return fmt.Errorf("tune %s: both winner and %s exhaust memory", r.Name, what)
				}
				return nil
			}
			if r.WinnerOOM {
				return fmt.Errorf("tune %s: winner exhausts memory but the %s does not", r.Name, what)
			}
			if r.TunedSec > refSec*(1+1e-9) {
				return fmt.Errorf("tune %s: winner %.6fs is worse than the %s %.6fs",
					r.Name, r.TunedSec, what, refSec)
			}
			return nil
		}
		if err := check(r.BaselineSec, r.BaselineOOM, "AutoSchedule baseline"); err != nil {
			return err
		}
		if err := check(r.HandSec, r.HandOOM, "hand-written schedule"); err != nil {
			return err
		}
	}
	return nil
}

// RenderTune prints tune rows as an aligned text table.
func RenderTune(rows []TuneRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# auto-tuned example workloads\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %8s %6s  %s\n", "workload", "auto", "hand", "tuned", "speedup", "evals", "winner")
	for _, r := range rows {
		base, hand := "-", "-"
		if r.BaselineSec > 0 {
			base = fmt.Sprintf("%.6fs", r.BaselineSec)
		}
		if r.HandSec > 0 {
			hand = fmt.Sprintf("%.6fs", r.HandSec)
		}
		fmt.Fprintf(&b, "%-14s %12s %12s %11.6fs %7.2fx %6d  %s\n",
			r.Name, base, hand, r.TunedSec, r.Speedup, r.Evaluated, r.Winner)
	}
	return b.String()
}
