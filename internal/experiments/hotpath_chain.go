package experiments

import (
	"context"
	"net/http/httptest"

	"distal"
	"distal/internal/serve"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// chainHotpath builds the `chain-*` measurements: a two-statement low-rank
// chain E = (A*B)*C — A is n x k and B is k x n with k << n, so the
// intermediate D is a full n x n matrix while each stage does only O(n^2 k)
// flops. That is the regime the plan-DAG path exists for: the cost of the
// chain is moving D, not computing it. chain-dag is one multi-statement
// POST /v1/run — the server keeps D distributed between the stages, so the
// only tensor on the wire is the small output E. chain-seq is the pre-DAG
// workflow the program path replaces: run D = A*B, gather and stream all of
// D back to the client, then re-upload D as a wire frame for E = D*C — two
// round trips plus 2 n^2 floats of extra wire traffic. Both plans are warmed
// before timing so the rows measure the run path, not compilation. Gated
// intra-run as chain-dag<chain-seq.
func chainHotpath() (cases []hotpathCase, close func(), err error) {
	const n, k = 256, 8
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 4, 4))
	ts := httptest.NewServer(serve.New(sess, serve.Config{}))

	// Stage 1 contracts the short mode (extent k); stage 2 contracts the
	// long one (extent n). Both are the SUMMA template: 4x4 tiles, the
	// output communicated at the inner distributed loop, the operands at the
	// contraction chunk loop.
	s1 := "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
		"split(k,ko,ki,8) reorder(io,jo,ko,ii,ji,ki) communicate(jo,D) communicate(ko,A,B)"
	s2 := "divide(i,io,ii,4) divide(l,lo,li,4) reorder(io,lo,ii,li) distribute(io,lo) " +
		"split(j,jo,ji,64) reorder(io,lo,jo,ii,li,ji) communicate(lo,E) communicate(jo,D,C)"
	dagReq := wire.RunRequest{
		Shapes: map[string][]int{"A": {n, k}, "B": {k, n}, "C": {n, k}},
		Stmts: []wire.StmtSpec{
			{Stmt: "D(i,j) = A(i,k) * B(k,j)", Schedule: s1},
			{Stmt: "E(i,l) = D(i,j) * C(j,l)", Schedule: s2},
		},
		Inputs: map[string]string{"A": "rand:1", "B": "rand:2", "C": "rand:3"},
	}
	seq1 := wire.RunRequest{
		Stmt:     "D(i,j) = A(i,k) * B(k,j)",
		Shapes:   map[string][]int{"A": {n, k}, "B": {k, n}, "D": {n, n}},
		Schedule: s1,
		Inputs:   map[string]string{"A": "rand:1", "B": "rand:2"},
	}
	seq2 := wire.RunRequest{
		Stmt:     "E(i,l) = D(i,j) * C(j,l)",
		Shapes:   map[string][]int{"D": {n, n}, "C": {n, k}, "E": {n, k}},
		Schedule: s2,
		Inputs:   map[string]string{"D": wire.FillWire, "C": "rand:3"},
	}

	client := &wire.Client{BaseURL: ts.URL, HTTP: ts.Client()}
	runSeq := func() error {
		d, _, err := client.Run(context.Background(), seq1, nil)
		if err != nil {
			return err
		}
		_, _, err = client.Run(context.Background(), seq2, map[string]*tensor.Dense{"D": d})
		return err
	}
	// Warm every plan (the chain stages and the two standalone statements
	// compile to the same two cache entries) so the timed iterations compare
	// run paths, not an amortized compile.
	if _, _, err := client.Run(context.Background(), dagReq, nil); err != nil {
		ts.Close()
		return nil, nil, err
	}
	if err := runSeq(); err != nil {
		ts.Close()
		return nil, nil, err
	}

	cases = []hotpathCase{
		{"chain-dag", func() error {
			_, _, err := client.Run(context.Background(), dagReq, nil)
			return err
		}},
		{"chain-seq", runSeq},
	}
	return cases, ts.Close, nil
}
