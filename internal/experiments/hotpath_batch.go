package experiments

import (
	"context"
	"fmt"

	"distal"
	"distal/internal/tensor"
)

// batchHotpath builds the `batch-run-8` / `seq-run-8` measurements: the same
// eight problem instances executed through one cached plan either as a
// single BindBatch launch walk or as eight sequential Bind.Run calls. The
// pair is gated intra-run (batch-run-8<seq-run-8) — the batched walk pays
// the serial simulated accounting once and drains all instances' kernels
// through one worker-pool pass, so it must beat the loop.
func batchHotpath() ([]hotpathCase, error) {
	// Small tiles on purpose: per-instance kernel work is a few microseconds,
	// so the row measures what batching amortizes — the serial accounting
	// walk and the worker-pool drain — rather than raw multiply throughput
	// (run-wire-summa and cold-execute-real already pin that).
	const n, b = 64, 8
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 4, 4))
	plan, err := sess.Compile(context.Background(), distal.Request{
		Stmt:   "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
			"split(k,ko,ki,8) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
	})
	if err != nil {
		return nil, err
	}
	// Instance data is allocated once outside the timed closures; outputs
	// are re-zeroed per run so every attempt does identical work.
	insts := make([][]*distal.Tensor, b)
	outs := make([]*tensor.Dense, b)
	for i := range insts {
		A := tensor.New("A", n, n)
		B := tensor.New("B", n, n)
		B.FillRandom(int64(2*i + 1))
		C := tensor.New("C", n, n)
		C.FillRandom(int64(2*i + 2))
		insts[i] = []*distal.Tensor{
			{Name: "A", Shape: []int{n, n}, Data: A},
			{Name: "B", Shape: []int{n, n}, Data: B},
			{Name: "C", Shape: []int{n, n}, Data: C},
		}
		outs[i] = A
	}
	zeroOuts := func() {
		for _, out := range outs {
			out.Zero()
		}
	}
	return []hotpathCase{
		{"batch-run-8", func() error {
			zeroOuts()
			_, err := plan.BindBatch(insts...).Run(context.Background())
			return err
		}},
		{"seq-run-8", func() error {
			zeroOuts()
			for i := range insts {
				if _, err := plan.Bind(insts[i]...).Run(context.Background()); err != nil {
					return fmt.Errorf("instance %d: %w", i, err)
				}
			}
			return nil
		}},
	}, nil
}
