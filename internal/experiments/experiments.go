// Package experiments regenerates every figure of the DISTAL paper's
// evaluation (§7) on the simulated Lassen machine: the CPU and GPU
// weak-scaling matrix-multiplication comparisons (Fig. 15a/15b), the four
// higher-order tensor kernels (Fig. 16a-d), the algorithm verification
// table (Fig. 9), and the headline speedup summary. Each figure is a set of
// named series over node counts; Render prints them as text tables.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"distal/internal/algorithms"
	"distal/internal/baselines"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

// Point is one measurement of a series.
type Point struct {
	Nodes int
	// Value is the figure's y-axis metric (GFLOP/s or GB/s per node).
	Value float64
	// OOM marks configurations that exceeded device memory (plotted as
	// missing points in the paper).
	OOM bool
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// At returns the value at the given node count (0 if absent or OOM).
func (s *Series) At(nodes int) float64 {
	for _, p := range s.Points {
		if p.Nodes == nodes && !p.OOM {
			return p.Value
		}
	}
	return 0
}

// Figure is a full experiment result.
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Series []Series
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// nodeCounts returns 1, 2, 4, ... up to max.
func nodeCounts(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// weakScaledN grows a square matrix dimension so the memory per node stays
// constant (n scales with sqrt(nodes)), keeping it divisible by a generous
// power of two so blocked partitions stay aligned.
func weakScaledN(base, nodes int) int {
	n := float64(base) * math.Sqrt(float64(nodes))
	const align = 64
	return int(math.Round(n/align)) * align
}

// weakScaledCube grows a cube tensor dimension with nodes^(1/3).
func weakScaledCube(base, nodes int) int {
	n := float64(base) * math.Cbrt(float64(nodes))
	const align = 16
	v := int(math.Round(n/align)) * align
	if v < align {
		v = align
	}
	return v
}

func runInput(in core.Input, params sim.Params) (*legion.Result, error) {
	prog, err := core.Compile(in)
	if err != nil {
		return nil, err
	}
	return legion.Run(prog, legion.Options{Params: params})
}

// Fig15a regenerates the CPU weak-scaling matrix-multiplication figure:
// GFLOP/s per node for DISTAL's six algorithms and the ScaLAPACK, CTF, and
// COSMA baselines, starting from 8192x8192 per node.
func Fig15a(maxNodes int) (*Figure, error) {
	fig := &Figure{ID: "fig15a", Title: "CPU matrix-multiplication weak scaling", YLabel: "GFLOP/s per node"}
	const baseN = 8192
	counts := nodeCounts(maxNodes)

	peak := Series{Name: "Peak Utilization"}
	for _, nodes := range counts {
		peak.Points = append(peak.Points, Point{Nodes: nodes, Value: 40 * sim.CPUCoreFlops / 1e9})
	}

	var ours []Series
	for _, alg := range algorithms.MatmulAlgs {
		s := Series{Name: "Our " + algName(alg)}
		for _, nodes := range counts {
			n := weakScaledN(baseN, nodes)
			cfg := algorithms.MatmulConfig{
				N: n, Procs: nodes * 2, ProcsPerNode: 2,
				MemWords: 128 * sim.GiB / 8 / 2,
			}
			pt, err := runOurs(alg, cfg, sim.LassenCPU(), nodes)
			if err != nil {
				return nil, fmt.Errorf("fig15a %s@%d: %w", alg, nodes, err)
			}
			s.Points = append(s.Points, pt)
		}
		ours = append(ours, s)
	}

	base := []struct {
		name  string
		build func(n, nodes int) (*baselines.Spec, error)
	}{
		{"COSMA", func(n, nodes int) (*baselines.Spec, error) { return baselines.COSMAMatmul(n, nodes, false, false) }},
		{"COSMA (Restricted CPUs)", func(n, nodes int) (*baselines.Spec, error) { return baselines.COSMAMatmul(n, nodes, true, false) }},
		{"CTF", baselines.CTFMatmul},
		{"ScaLAPACK", baselines.ScaLAPACKMatmul},
	}
	for _, b := range base {
		s := Series{Name: b.name}
		for _, nodes := range counts {
			n := weakScaledN(baseN, nodes)
			spec, err := b.build(n, nodes)
			if err != nil {
				return nil, fmt.Errorf("fig15a %s@%d: %w", b.name, nodes, err)
			}
			res, err := spec.Execute(sim.LassenCPU())
			if err != nil {
				return nil, fmt.Errorf("fig15a %s@%d: %w", b.name, nodes, err)
			}
			s.Points = append(s.Points, point(res, nodes))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Series = append(fig.Series, ours...)
	fig.Series = append(fig.Series, peak)
	return fig, nil
}

// Fig15b regenerates the GPU weak-scaling figure: DISTAL's algorithms keep
// data in framebuffer memory (4 V100s per node, 20000x20000 per node);
// COSMA stages out of core from host memory.
func Fig15b(maxNodes int) (*Figure, error) {
	fig := &Figure{ID: "fig15b", Title: "GPU matrix-multiplication weak scaling", YLabel: "GFLOP/s per node"}
	const baseN = 19968 // ~20000, aligned
	counts := nodeCounts(maxNodes)

	cosmaSeries := Series{Name: "COSMA"}
	for _, nodes := range counts {
		n := weakScaledN(baseN, nodes)
		spec, err := baselines.COSMAMatmul(n, nodes, false, true)
		if err != nil {
			return nil, err
		}
		res, err := spec.Execute(sim.LassenGPU())
		if err != nil {
			return nil, err
		}
		cosmaSeries.Points = append(cosmaSeries.Points, point(res, nodes))
	}
	fig.Series = append(fig.Series, cosmaSeries)

	for _, alg := range algorithms.MatmulAlgs {
		s := Series{Name: "Our " + algName(alg)}
		for _, nodes := range counts {
			n := weakScaledN(baseN, nodes)
			// MemWords is left unbounded on purpose: like the paper's DISTAL
			// COSMA implementation, the schedule does not adapt to the
			// framebuffer capacity, so replication-heavy decompositions OOM
			// at scale (§7.1.2) and the simulator reports it.
			cfg := algorithms.MatmulConfig{
				N: n, Procs: nodes * 4, ProcsPerNode: 4, GPU: true,
			}
			pt, err := runOurs(alg, cfg, sim.LassenGPU(), nodes)
			if err != nil {
				return nil, fmt.Errorf("fig15b %s@%d: %w", alg, nodes, err)
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	peak := Series{Name: "Peak Utilization"}
	for _, nodes := range counts {
		peak.Points = append(peak.Points, Point{Nodes: nodes, Value: 4 * 7.8e12 / 1e9})
	}
	fig.Series = append(fig.Series, peak)
	return fig, nil
}

func runOurs(alg algorithms.Alg, cfg algorithms.MatmulConfig, params sim.Params, nodes int) (Point, error) {
	in, err := algorithms.Matmul(alg, cfg)
	if err != nil {
		return Point{}, err
	}
	res, err := runInput(in, params)
	if err != nil {
		return Point{}, err
	}
	return point(res, nodes), nil
}

func point(res *legion.Result, nodes int) Point {
	if res.OOM {
		return Point{Nodes: nodes, OOM: true}
	}
	return Point{Nodes: nodes, Value: res.Flops / res.Time / 1e9 / float64(nodes)}
}

func algName(a algorithms.Alg) string {
	switch a {
	case algorithms.Cannon:
		return "Cannon's"
	case algorithms.PUMMA:
		return "PUMMA"
	case algorithms.SUMMA:
		return "SUMMA"
	case algorithms.Johnson:
		return "Johnson's"
	case algorithms.Solomonik:
		return "Solomonik's"
	case algorithms.COSMA:
		return "COSMA"
	}
	return string(a)
}

// Render prints the figure as an aligned text table, one row per node
// count, one column per series ("OOM" for out-of-memory points).
func Render(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s (%s)\n", f.ID, f.Title, f.YLabel)
	nodes := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			nodes[p.Nodes] = true
		}
	}
	var order []int
	for n := range nodes {
		order = append(order, n)
	}
	sort.Ints(order)
	fmt.Fprintf(&b, "%-8s", "nodes")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%24s", s.Name)
	}
	b.WriteByte('\n')
	for _, n := range order {
		fmt.Fprintf(&b, "%-8d", n)
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.Nodes == n {
					if p.OOM {
						cell = "OOM"
					} else {
						cell = fmt.Sprintf("%.1f", p.Value)
					}
				}
			}
			fmt.Fprintf(&b, "%24s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
