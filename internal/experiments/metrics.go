package experiments

import (
	"fmt"
	"strings"
	"time"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

// MetricRow is one machine-readable benchmark measurement: the simulated
// workload metrics of an experiment configuration plus the host-side cost
// of compiling and simulating it. Rows are what `distal-bench -json` writes
// to start a performance trajectory across PRs.
type MetricRow struct {
	Experiment    string  `json:"experiment"`
	Config        string  `json:"config"`
	Nodes         int     `json:"nodes"`
	GFlops        float64 `json:"gflops"`
	GFlopsPerNode float64 `json:"gflops_per_node"`
	MakespanSec   float64 `json:"makespan_sec"`
	Copies        int64   `json:"copies"`
	IntraBytes    int64   `json:"intra_bytes"`
	InterBytes    int64   `json:"inter_bytes"`
	PeakMemBytes  int64   `json:"peak_mem_bytes"`
	OOM           bool    `json:"oom"`
	CompileMS     float64 `json:"compile_ms"`
	SimulateMS    float64 `json:"simulate_ms"`
}

// Metrics runs every matrix-multiplication algorithm of Figure 15 at the
// given node count on the simulated Lassen CPU and GPU machines and returns
// one row per configuration.
func Metrics(nodes int) ([]MetricRow, error) {
	var rows []MetricRow
	for _, gpu := range []bool{false, true} {
		base, procs, ppn := 8192, nodes*2, 2
		params := sim.LassenCPU()
		exp := "matmul-cpu"
		if gpu {
			base, procs, ppn = 19968, nodes*4, 4
			params = sim.LassenGPU()
			exp = "matmul-gpu"
		}
		n := weakScaledN(base, nodes)
		for _, alg := range algorithms.MatmulAlgs {
			cfg := algorithms.MatmulConfig{N: n, Procs: procs, ProcsPerNode: ppn, GPU: gpu}
			in, err := algorithms.Matmul(alg, cfg)
			if err != nil {
				return nil, fmt.Errorf("metrics %s/%s: %w", exp, alg, err)
			}
			row, err := measure(in, params)
			if err != nil {
				return nil, fmt.Errorf("metrics %s/%s: %w", exp, alg, err)
			}
			row.Experiment = exp
			row.Config = string(alg)
			row.Nodes = nodes
			row.GFlopsPerNode = row.GFlops / float64(nodes)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// measure compiles and simulates one input, timing both host-side phases.
func measure(in core.Input, params sim.Params) (MetricRow, error) {
	t0 := time.Now()
	prog, err := core.Compile(in)
	if err != nil {
		return MetricRow{}, err
	}
	compile := time.Since(t0)
	t0 = time.Now()
	res, err := legion.Run(prog, legion.Options{Params: params})
	if err != nil {
		return MetricRow{}, err
	}
	simulate := time.Since(t0)
	return MetricRow{
		GFlops:       res.GFlopsPerSec(),
		MakespanSec:  res.Time,
		Copies:       res.Copies,
		IntraBytes:   res.IntraBytes,
		InterBytes:   res.InterBytes,
		PeakMemBytes: res.PeakMemBytes,
		OOM:          res.OOM,
		CompileMS:    float64(compile.Microseconds()) / 1e3,
		SimulateMS:   float64(simulate.Microseconds()) / 1e3,
	}, nil
}

// RenderMetrics prints metric rows as an aligned text table.
func RenderMetrics(rows []MetricRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# metrics (per configuration)\n")
	fmt.Fprintf(&b, "%-12s %-10s %6s %12s %12s %8s %10s %10s %10s %10s\n",
		"experiment", "config", "nodes", "GFLOP/s", "makespan", "copies", "intra-GB", "inter-GB", "compile", "simulate")
	for _, r := range rows {
		state := ""
		if r.OOM {
			state = " OOM"
		}
		fmt.Fprintf(&b, "%-12s %-10s %6d %12.1f %11.3fs %8d %10.2f %10.2f %8.1fms %8.1fms%s\n",
			r.Experiment, r.Config, r.Nodes, r.GFlops, r.MakespanSec, r.Copies,
			float64(r.IntraBytes)/1e9, float64(r.InterBytes)/1e9, r.CompileMS, r.SimulateMS, state)
	}
	return b.String()
}
