package experiments

import (
	"strings"
	"testing"

	"distal/internal/algorithms"
	"distal/internal/sim"
)

// The tests below assert the *shape* properties of each figure that the
// paper reports — who wins, what declines, where memory runs out — at a
// node count small enough for CI. The full-scale tables are produced by
// cmd/distal-bench and bench_test.go.

func TestFig15aShape(t *testing.T) {
	fig, err := Fig15a(16)
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 16
	peak := fig.Get("Peak Utilization").At(nodes)
	cosma := fig.Get("COSMA").At(nodes)
	restricted := fig.Get("COSMA (Restricted CPUs)").At(nodes)
	ctf := fig.Get("CTF").At(nodes)
	scal := fig.Get("ScaLAPACK").At(nodes)
	best := 0.0
	for _, s := range fig.Series {
		if strings.HasPrefix(s.Name, "Our ") && s.At(nodes) > best {
			best = s.At(nodes)
		}
	}
	if best <= 0 || cosma <= 0 {
		t.Fatal("missing series values")
	}
	// §7.1.1: DISTAL within 10% of COSMA; restricted COSMA ~= DISTAL;
	// ScaLAPACK below DISTAL; everything below peak.
	if best < 0.9*cosma {
		t.Errorf("best DISTAL %.0f should be within 10%% of COSMA %.0f", best, cosma)
	}
	if r := best / restricted; r < 0.9 || r > 1.1 {
		t.Errorf("restricted COSMA (%.0f) should match DISTAL (%.0f)", restricted, best)
	}
	if scal >= best {
		t.Errorf("ScaLAPACK (%.0f) should trail DISTAL (%.0f)", scal, best)
	}
	if ctf > cosma {
		t.Errorf("CTF (%.0f) should not beat COSMA (%.0f)", ctf, cosma)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if !p.OOM && p.Value > peak*1.001 {
				t.Errorf("series %s exceeds peak: %.0f > %.0f", s.Name, p.Value, peak)
			}
		}
	}
}

func TestFig15aScaLAPACKDeclines(t *testing.T) {
	fig, err := Fig15a(16)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Get("ScaLAPACK")
	if s.At(16) >= s.At(1) {
		t.Errorf("ScaLAPACK should lose per-node throughput when scaling: %.0f -> %.0f", s.At(1), s.At(16))
	}
}

func TestFig15bShape(t *testing.T) {
	fig, err := Fig15b(8)
	if err != nil {
		t.Fatal(err)
	}
	// §7.1.2: on a single node every DISTAL kernel roughly doubles COSMA's
	// out-of-core performance.
	cosma := fig.Get("COSMA").At(1)
	for _, s := range fig.Series {
		if !strings.HasPrefix(s.Name, "Our ") {
			continue
		}
		if v := s.At(1); v < 1.7*cosma {
			t.Errorf("%s at 1 node (%.0f) should be ~2x COSMA (%.0f)", s.Name, v, cosma)
		}
	}
	// GPU runs are much faster than CPU peak.
	if fig.Get("Our SUMMA").At(1) < 20000 {
		t.Errorf("GPU SUMMA single node = %.0f GFLOP/s, want > 20000", fig.Get("Our SUMMA").At(1))
	}
}

func TestFig15bJohnsonOOMsAtScale(t *testing.T) {
	// §7.1.2: replication-heavy 3D algorithms exhaust the 16 GiB
	// framebuffers as the problem weak-scales (the paper saw this from 32
	// nodes; our memory model crosses the capacity a couple of doublings
	// later because it under-counts Legion's staging buffers — see
	// EXPERIMENTS.md). Check Johnson's directly at 256 nodes.
	pt, err := runOurs(algorithmJohnson(), gpuCfg(256), gpuParams(), 256)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.OOM {
		t.Error("expected Johnson's algorithm to run out of GPU memory at 256 nodes")
	}
	// And it must still fit at small scale.
	pt, err = runOurs(algorithmJohnson(), gpuCfg(4), gpuParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.OOM {
		t.Error("Johnson's should fit at 4 nodes")
	}
}

func TestFig16Shapes(t *testing.T) {
	for _, k := range HigherKernels {
		fig, err := Fig16(k, false, 8)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		ours, ctf := fig.Get("Ours"), fig.Get("CTF")
		// §7.2: DISTAL wins every kernel at every multi-node count.
		for _, nodes := range []int{2, 4, 8} {
			if ours.At(nodes) <= ctf.At(nodes) {
				t.Errorf("%s at %d nodes: ours %.1f should beat CTF %.1f", k, nodes, ours.At(nodes), ctf.At(nodes))
			}
		}
		// DISTAL's aligned schedules weak-scale nearly flat.
		if ours.At(8) < 0.8*ours.At(1) {
			t.Errorf("%s: DISTAL should weak-scale (%.1f -> %.1f)", k, ours.At(1), ours.At(8))
		}
	}
}

func TestFig16TTVCollapse(t *testing.T) {
	fig, err := Fig16(TTV, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctf := fig.Get("CTF")
	// §7.2.2: CTF's TTV drops sharply past a single node.
	if ctf.At(4) > 0.5*ctf.At(1) {
		t.Errorf("CTF TTV should collapse past one node: %.1f -> %.1f", ctf.At(1), ctf.At(4))
	}
}

func TestFig16GPUFasterThanCPU(t *testing.T) {
	for _, k := range []HigherKernel{TTV, TTM} {
		cpu, err := Fig16(k, false, 2)
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := Fig16(k, true, 2)
		if err != nil {
			t.Fatal(err)
		}
		if gpu.Get("Ours").At(1) <= cpu.Get("Ours").At(1) {
			t.Errorf("%s: GPU (%.1f) should beat CPU (%.1f) per node", k, gpu.Get("Ours").At(1), cpu.Get("Ours").At(1))
		}
	}
}

func TestFig9TableAllValidAndTight(t *testing.T) {
	rows, err := Fig9Table(64, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Valid {
			t.Errorf("%s: distributed result does not match reference", r.Alg)
		}
		ratio := r.InterGB / r.PredictedGB
		if ratio < 0.3 || ratio > 2.0 {
			t.Errorf("%s: measured comm %.2f GB vs predicted %.2f GB (ratio %.2f) outside [0.3, 2.0]",
				r.Alg, r.InterGB, r.PredictedGB, ratio)
		}
	}
	// 3D algorithms (rows 3..5) must communicate less than 2D (rows 0..2)
	// at p=64 where p^(1/3)=4 < sqrt(p)=8.
	for i := 3; i < 6; i++ {
		if rows[i].InterGB >= rows[0].InterGB {
			t.Errorf("3D algorithm %s should move less data than Cannon's (%.2f vs %.2f GB)",
				rows[i].Alg, rows[i].InterGB, rows[0].InterGB)
		}
	}
}

func TestSummaryHeadlines(t *testing.T) {
	rows, text, err := Summary(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("summary rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Comparison] = r.Speedup
	}
	if v := byName["best DISTAL vs COSMA (CPU)"]; v < 0.85 {
		t.Errorf("vs COSMA = %.2fx, want >= 0.85x", v)
	}
	if v := byName["best DISTAL vs ScaLAPACK (CPU)"]; v < 1.1 {
		t.Errorf("vs ScaLAPACK = %.2fx, want >= 1.1x", v)
	}
	if v := byName["DISTAL vs CTF: ttv (CPU)"]; v < 5 {
		t.Errorf("TTV outlier = %.2fx, want >= 5x", v)
	}
	for _, k := range []string{"mttkrp"} {
		if v := byName["DISTAL vs CTF: "+k+" (CPU)"]; v < 1.5 {
			t.Errorf("%s speedup = %.2fx, want >= 1.5x", k, v)
		}
	}
	if !strings.Contains(text, "headline comparisons") {
		t.Error("summary text missing header")
	}
}

func TestRenderContainsAllSeries(t *testing.T) {
	fig, err := Fig16(TTV, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(fig)
	for _, s := range fig.Series {
		if !strings.Contains(out, s.Name) {
			t.Errorf("render missing series %s", s.Name)
		}
	}
}

func algorithmJohnson() algorithms.Alg { return algorithms.Johnson }

func gpuCfg(nodes int) algorithms.MatmulConfig {
	return algorithms.MatmulConfig{
		N: weakScaledN(19968, nodes), Procs: nodes * 4, ProcsPerNode: 4, GPU: true,
	}
}

func gpuParams() sim.Params { return sim.LassenGPU() }

func TestWeakScaling(t *testing.T) {
	if weakScaledN(8192, 1) != 8192 {
		t.Fatal("base N should be unchanged")
	}
	if n := weakScaledN(8192, 4); n != 16384 {
		t.Fatalf("weakScaledN(8192, 4) = %d, want 16384", n)
	}
	if weakScaledCube(768, 8) != 1536 {
		t.Fatalf("weakScaledCube(768, 8) = %d", weakScaledCube(768, 8))
	}
}
