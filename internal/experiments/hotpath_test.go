package experiments

import (
	"strings"
	"testing"
)

func TestDiffMetrics(t *testing.T) {
	base := []MetricRow{
		{Experiment: "e", Config: "a", MakespanSec: 1.0, CompileMS: 10, SimulateMS: 10},
		{Experiment: "e", Config: "b", MakespanSec: 2.0, CompileMS: 10, SimulateMS: 10},
	}
	// Unchanged and improved rows pass.
	cur := []MetricRow{
		{Experiment: "e", Config: "a", MakespanSec: 1.0, CompileMS: 8, SimulateMS: 11},
		{Experiment: "e", Config: "b", MakespanSec: 1.5, CompileMS: 9, SimulateMS: 10},
	}
	if regs := DiffMetrics(base, cur, 0.20, 0.20); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// A makespan past tolerance is flagged; one within tolerance is not.
	cur[0].MakespanSec = 1.19
	cur[1].MakespanSec = 2.5
	regs := DiffMetrics(base, cur, 0.20, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "e/b") {
		t.Fatalf("want one e/b makespan regression, got %v", regs)
	}
	// Total compile time regression is flagged once, not per row.
	cur[0].MakespanSec, cur[1].MakespanSec = 1.0, 2.0
	cur[0].CompileMS, cur[1].CompileMS = 15, 15
	regs = DiffMetrics(base, cur, 0.20, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "total compile time") {
		t.Fatalf("want one compile-time regression, got %v", regs)
	}
	// Rows only on one side are ignored; fully disjoint sets are an error.
	regs = DiffMetrics(base, []MetricRow{{Experiment: "x", Config: "y"}}, 0.20, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "no shared rows") {
		t.Fatalf("want no-shared-rows message, got %v", regs)
	}
}

func TestDiffHotpath(t *testing.T) {
	base := []HotpathRow{{Name: "compile", MS: 10}}
	cur := []HotpathRow{
		{Name: "compile", MS: 7},
		{Name: "batch-run-8", MS: 40},
		{Name: "seq-run-8", MS: 100},
	}
	// Baseline requirement met, intra-run requirement met.
	regs := DiffHotpath(base, cur, map[string]float64{
		"compile": 0.8, "batch-run-8<seq-run-8": 0.5,
	})
	if len(regs) != 0 {
		t.Fatalf("unexpected violations: %v", regs)
	}
	// Intra-run requirement violated: 40 > 100*0.3.
	regs = DiffHotpath(base, cur, map[string]float64{"batch-run-8<seq-run-8": 0.3})
	if len(regs) != 1 || !strings.Contains(regs[0], "batch-run-8") {
		t.Fatalf("want one intra-run violation, got %v", regs)
	}
	// A row missing from the current run never passes silently, in either
	// requirement form.
	regs = DiffHotpath(base, cur, map[string]float64{
		"gone": 1.0, "batch-run-8<gone": 1.0, "gone<seq-run-8": 1.0,
	})
	if len(regs) != 3 {
		t.Fatalf("want three missing-row violations, got %v", regs)
	}
}
