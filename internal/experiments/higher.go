package experiments

import (
	"fmt"

	"distal/internal/algorithms"
	"distal/internal/baselines"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

// HigherKernel names one of the §7.2 kernels.
type HigherKernel string

const (
	TTV       HigherKernel = "ttv"
	Innerprod HigherKernel = "innerprod"
	TTM       HigherKernel = "ttm"
	MTTKRP    HigherKernel = "mttkrp"
)

// HigherKernels lists the kernels in the paper's order (Fig. 16a-d).
var HigherKernels = []HigherKernel{TTV, Innerprod, TTM, MTTKRP}

// higherBase holds the single-node base extents of each kernel, chosen (like
// the paper) to be just large enough to reach peak on one node.
var higherBase = map[HigherKernel]algorithms.HigherConfig{
	TTV:       {I: 1024, J: 1024, K: 512},
	Innerprod: {I: 1024, J: 1024, K: 512},
	TTM:       {I: 768, J: 768, K: 768, L: 32},
	MTTKRP:    {I: 768, J: 768, K: 768, L: 32},
}

// bandwidthBound reports whether the paper plots the kernel in GB/s rather
// than GFLOP/s.
func bandwidthBound(k HigherKernel) bool { return k == TTV || k == Innerprod }

// scaleHigher weak-scales the base extents with the processor count
// (constant memory per node): 3-tensor extents grow with cbrt(nodes).
func scaleHigher(k HigherKernel, nodes int) algorithms.HigherConfig {
	cfg := higherBase[k]
	cfg.I = weakScaledCube(cfg.I, nodes)
	cfg.J = weakScaledCube(cfg.J, nodes)
	cfg.K = weakScaledCube(cfg.K, nodes)
	return cfg
}

// kernelBytes is the tensor data processed by the kernel, the numerator of
// the GB/s metric.
func kernelBytes(k HigherKernel, cfg algorithms.HigherConfig) float64 {
	bt := float64(cfg.I) * float64(cfg.J) * float64(cfg.K) * 8
	switch k {
	case TTV:
		return bt + float64(cfg.K)*8 + float64(cfg.I)*float64(cfg.J)*8
	case Innerprod:
		return 2 * bt
	default:
		return bt
	}
}

// Fig16 regenerates one panel of Figure 16: DISTAL vs CTF for a kernel on
// CPUs or GPUs, weak scaled.
func Fig16(kernel HigherKernel, gpu bool, maxNodes int) (*Figure, error) {
	yl := "GFLOP/s per node"
	if bandwidthBound(kernel) {
		yl = "GB/s per node"
	}
	target := "CPU"
	if gpu {
		target = "GPU"
	}
	fig := &Figure{
		ID:     fmt.Sprintf("fig16-%s-%s", kernel, target),
		Title:  fmt.Sprintf("%s weak scaling (%s)", kernel, target),
		YLabel: yl,
	}
	ours := Series{Name: "Ours"}
	ctf := Series{Name: "CTF"}
	for _, nodes := range nodeCounts(maxNodes) {
		cfg := scaleHigher(kernel, nodes)
		if gpu {
			cfg.Procs, cfg.ProcsPerNode, cfg.GPU = nodes*4, 4, true
		} else {
			cfg.Procs, cfg.ProcsPerNode = nodes*2, 2
		}
		in, err := buildHigher(kernel, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s@%d: %w", kernel, nodes, err)
		}
		params := sim.LassenCPU()
		if gpu {
			params = sim.LassenGPU()
		}
		res, err := runInput(in, params)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s@%d: %w", kernel, nodes, err)
		}
		ours.Points = append(ours.Points, higherPoint(kernel, cfg, res, nodes))

		if !gpu { // the paper could not build CTF's GPU backend (§7.2)
			spec, err := ctfHigher(kernel, cfg, nodes)
			if err != nil {
				return nil, fmt.Errorf("fig16 ctf %s@%d: %w", kernel, nodes, err)
			}
			cres, err := spec.Execute(sim.LassenCPU())
			if err != nil {
				return nil, fmt.Errorf("fig16 ctf %s@%d: %w", kernel, nodes, err)
			}
			ctf.Points = append(ctf.Points, higherPoint(kernel, cfg, cres, nodes))
		}
	}
	fig.Series = append(fig.Series, ours)
	if !gpu {
		fig.Series = append(fig.Series, ctf)
	}
	return fig, nil
}

func buildHigher(kernel HigherKernel, cfg algorithms.HigherConfig) (core.Input, error) {
	switch kernel {
	case TTV:
		return algorithms.TTV(cfg)
	case Innerprod:
		return algorithms.Innerprod(cfg)
	case TTM:
		return algorithms.TTM(cfg)
	case MTTKRP:
		return algorithms.MTTKRP(cfg)
	}
	return core.Input{}, fmt.Errorf("experiments: unknown kernel %q", kernel)
}

func ctfHigher(kernel HigherKernel, cfg algorithms.HigherConfig, nodes int) (*baselines.Spec, error) {
	switch kernel {
	case TTV:
		return baselines.CTFTTV(cfg, nodes)
	case Innerprod:
		return baselines.CTFInnerprod(cfg, nodes)
	case TTM:
		return baselines.CTFTTM(cfg, nodes)
	case MTTKRP:
		return baselines.CTFMTTKRP(cfg, nodes)
	}
	return nil, fmt.Errorf("experiments: unknown kernel %q", kernel)
}

func higherPoint(kernel HigherKernel, cfg algorithms.HigherConfig, res *legion.Result, nodes int) Point {
	if res.OOM {
		return Point{Nodes: nodes, OOM: true}
	}
	if bandwidthBound(kernel) {
		return Point{Nodes: nodes, Value: kernelBytes(kernel, cfg) / res.Time / 1e9 / float64(nodes)}
	}
	return Point{Nodes: nodes, Value: res.Flops / res.Time / 1e9 / float64(nodes)}
}
