package experiments

import (
	"fmt"
	"strings"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/ir"
	"distal/internal/legion"
	"distal/internal/sim"
	"distal/internal/tensor"
)

// Fig9Row is one line of the algorithm verification table (experiment E7):
// every algorithm of Figure 9 is validated bit-for-bit against the
// sequential reference at a small size, then its communication volume is
// measured at a large size and compared with the analytic prediction.
type Fig9Row struct {
	Alg string
	// Valid is true when the distributed result matches the reference.
	Valid bool
	// InterGB is the measured total inter-node communication volume.
	InterGB float64
	// PredictedGB is the closed-form communication volume of the algorithm
	// family: ~2*n^2*sqrt(p) words for 2D algorithms, ~3*n^2*p^(1/3) for 3D.
	PredictedGB float64
}

// Fig9Table validates and measures every matmul algorithm on the given
// processor count (a perfect square with an integer cube root works for all
// six, e.g. 64).
func Fig9Table(procs, n int) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, alg := range algorithms.MatmulAlgs {
		row := Fig9Row{Alg: algName(alg)}
		// Correctness at a small size with real data.
		small, err := algorithms.Matmul(alg, algorithms.MatmulConfig{N: 24, Procs: 8, Seed: 5})
		if err != nil {
			return nil, err
		}
		valid, err := validateReal(small)
		if err != nil {
			return nil, err
		}
		row.Valid = valid
		// Communication volume at the large size.
		big, err := algorithms.Matmul(alg, algorithms.MatmulConfig{N: n, Procs: procs})
		if err != nil {
			return nil, err
		}
		res, err := runInput(big, sim.LassenCPU())
		if err != nil {
			return nil, err
		}
		row.InterGB = float64(res.InterBytes+res.IntraBytes) / 1e9
		row.PredictedGB = predictedCommGB(alg, n, procs)
		rows = append(rows, row)
	}
	return rows, nil
}

// predictedCommGB is the textbook total communication volume of each
// algorithm family in GB (words * 8 bytes): 2D algorithms move ~2*n^2*
// sqrt(p) words in total; 3D algorithms ~3*n^2*p^(1/3).
func predictedCommGB(alg algorithms.Alg, n, p int) float64 {
	n2 := float64(n) * float64(n)
	switch alg {
	case algorithms.Cannon, algorithms.PUMMA, algorithms.SUMMA:
		return 2 * n2 * sqrtf(p) * 8 / 1e9
	default:
		return 3 * n2 * cbrtf(p) * 8 / 1e9
	}
}

func sqrtf(p int) float64 {
	r := 1.0
	for i := 0; i < 40; i++ {
		r = (r + float64(p)/r) / 2
	}
	return r
}

func cbrtf(p int) float64 {
	r := 1.0
	for i := 0; i < 60; i++ {
		r = (2*r + float64(p)/(r*r)) / 3
	}
	return r
}

// validateReal executes the input on real data and compares against the
// reference evaluator.
func validateReal(in core.Input) (bool, error) {
	inputs := map[string]*tensor.Dense{}
	for name, d := range in.Tensors {
		if name != in.Stmt.LHS.Tensor {
			inputs[name] = d.Data
		}
	}
	want, err := ir.Evaluate(in.Stmt, inputs)
	if err != nil {
		return false, err
	}
	prog, err := core.Compile(in)
	if err != nil {
		return false, err
	}
	if _, err := legion.Run(prog, legion.Options{Params: sim.LassenCPU(), Real: true}); err != nil {
		return false, err
	}
	got := in.Tensors[in.Stmt.LHS.Tensor].Data
	if want.Rank() == 0 && got.Rank() == 1 {
		d := want.At() - got.At(0)
		return d < 1e-9 && d > -1e-9, nil
	}
	return got.EqualWithin(want, 1e-9), nil
}

// RenderFig9 prints the verification table.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# fig9: algorithm verification (correctness + measured vs predicted comm volume)\n")
	fmt.Fprintf(&b, "%-14s %-8s %14s %14s %8s\n", "algorithm", "valid", "measured GB", "predicted GB", "ratio")
	for _, r := range rows {
		ratio := r.InterGB / r.PredictedGB
		fmt.Fprintf(&b, "%-14s %-8v %14.2f %14.2f %8.2f\n", r.Alg, r.Valid, r.InterGB, r.PredictedGB, ratio)
	}
	return b.String()
}

// SummaryRow is one headline comparison of §1/§7 (experiment E10).
type SummaryRow struct {
	Comparison string
	Speedup    float64
	PaperSays  string
}

// Summary computes the paper's headline claims at the given node count:
// DISTAL's best matmul vs ScaLAPACK/CTF/COSMA, and each higher-order kernel
// vs CTF.
func Summary(nodes int) ([]SummaryRow, string, error) {
	fig, err := Fig15a(nodes)
	if err != nil {
		return nil, "", err
	}
	best := 0.0
	for _, s := range fig.Series {
		if strings.HasPrefix(s.Name, "Our ") && s.At(nodes) > best {
			best = s.At(nodes)
		}
	}
	var rows []SummaryRow
	add := func(name, paper string, base float64) {
		if base > 0 {
			rows = append(rows, SummaryRow{Comparison: name, Speedup: best / base, PaperSays: paper})
		}
	}
	add("best DISTAL vs ScaLAPACK (CPU)", ">= 1.25x", fig.Get("ScaLAPACK").At(nodes))
	add("best DISTAL vs CTF (CPU)", ">= 1.25x", fig.Get("CTF").At(nodes))
	add("best DISTAL vs COSMA (CPU)", ">= 0.95x", fig.Get("COSMA").At(nodes))

	for _, k := range HigherKernels {
		hf, err := Fig16(k, false, nodes)
		if err != nil {
			return nil, "", err
		}
		ours, ctf := hf.Get("Ours").At(nodes), hf.Get("CTF").At(nodes)
		if ctf > 0 {
			paper := "1.8x-3.7x"
			if k == TTV {
				paper = "large outlier (45.7x)"
			}
			rows = append(rows, SummaryRow{
				Comparison: fmt.Sprintf("DISTAL vs CTF: %s (CPU)", k),
				Speedup:    ours / ctf,
				PaperSays:  paper,
			})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# summary: headline comparisons at %d nodes (paper's §1/§7 claims)\n", nodes)
	fmt.Fprintf(&b, "%-36s %10s %22s\n", "comparison", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %9.2fx %22s\n", r.Comparison, r.Speedup, r.PaperSays)
	}
	return rows, b.String(), nil
}
