package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/obs"
	"distal/internal/sim"
)

// HotpathRow is one host-side hot-path measurement: the best-of-N wall time
// of a compile or execute path the serving session exercises. These rows
// ride along in `distal-bench -json` output so the PR-to-PR trajectory
// records kernel and compiler speedups, not only simulated workload
// metrics.
type HotpathRow struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
	Runs int     `json:"runs"`
}

// hotpathCase is one named measurement target.
type hotpathCase struct {
	name string
	f    func() error
}

// Hotpath measures the paths pinned by the hot-path benchmarks
// (hotpath_bench_test.go) in-process: multi-launch and single-launch
// compilation, a cold simulated execute, and validated (Real-mode)
// execution through both the compiled kernel program and the tree-walking
// fallback. Each measurement is the best of runs attempts.
func Hotpath(runs int) ([]HotpathRow, error) {
	if runs <= 0 {
		runs = 3
	}
	johnson, err := algorithms.Matmul(algorithms.Johnson, algorithms.MatmulConfig{
		N: 4096, Procs: 512, ProcsPerNode: 4, GPU: true,
	})
	if err != nil {
		return nil, err
	}
	summa, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
		N: 8192, Procs: 256, ProcsPerNode: 4, GPU: true, ChunkSize: 256,
	})
	if err != nil {
		return nil, err
	}
	realIn := func(tree bool) (core.Input, error) {
		in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
			N: 128, Procs: 16, ChunkSize: 32, Seed: 5,
		})
		in.TreeKernel = tree
		return in, err
	}

	best := func(f func() error) (float64, error) {
		b := math.Inf(1)
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := float64(time.Since(t0).Microseconds()) / 1e3; d < b {
				b = d
			}
		}
		return b, nil
	}
	compileOnly := func(in core.Input) func() error {
		return func() error { _, err := core.Compile(in); return err }
	}
	execute := func(in core.Input, opt legion.Options) func() error {
		return func() error {
			prog, err := core.Compile(in)
			if err != nil {
				return err
			}
			_, err = legion.Run(prog, opt)
			return err
		}
	}
	// executeTraced is the same work under a live obs trace — every span the
	// serve layer would record (run-stage, launch, real-drain) actually
	// allocates and timestamps. The gap to the untraced row is the
	// instrumentation overhead the obs-overhead gate bounds.
	executeTraced := func(in core.Input, opt legion.Options) func() error {
		return func() error {
			tr, ctx := obs.NewTrace(context.Background(), obs.NewRequestID(), "bench")
			prog, err := core.CompileContext(ctx, in)
			if err != nil {
				return err
			}
			_, err = legion.RunContext(ctx, prog, opt)
			tr.Finish()
			return err
		}
	}

	realCompiled, err := realIn(false)
	if err != nil {
		return nil, err
	}
	realTree, err := realIn(true)
	if err != nil {
		return nil, err
	}
	cases := []hotpathCase{
		{"compile-summa16x16seq", compileOnly(summa)},
		{"compile-johnson8x8x8", compileOnly(johnson)},
		{"cold-execute-sim", execute(johnson, legion.Options{Params: sim.LassenGPU()})},
		{"cold-execute-real", execute(realCompiled, legion.Options{Params: sim.LassenCPU(), Real: true})},
		{"cold-execute-real-tree", execute(realTree, legion.Options{Params: sim.LassenCPU(), Real: true})},
		{"blocked-matmul-ref", blockedMatmulRef(128, 32)},
	}
	batchCases, err := batchHotpath()
	if err != nil {
		return nil, fmt.Errorf("hotpath batch setup: %w", err)
	}
	cases = append(cases, batchCases...)
	wireCases, closeWire, err := wireHotpath()
	if err != nil {
		return nil, fmt.Errorf("hotpath wire setup: %w", err)
	}
	defer closeWire()
	cases = append(cases, wireCases...)
	chainCases, closeChain, err := chainHotpath()
	if err != nil {
		return nil, fmt.Errorf("hotpath chain setup: %w", err)
	}
	defer closeChain()
	cases = append(cases, chainCases...)
	var rows []HotpathRow
	for _, c := range cases {
		ms, err := best(c.f)
		if err != nil {
			return nil, fmt.Errorf("hotpath %s: %w", c.name, err)
		}
		rows = append(rows, HotpathRow{Name: c.name, MS: ms, Runs: runs})
	}
	realOpt := legion.Options{Params: sim.LassenCPU(), Real: true}
	disabled, overhead, pairRuns, err := obsOverhead(runs, realCompiled, realOpt, executeTraced)
	if err != nil {
		return nil, fmt.Errorf("hotpath obs-overhead: %w", err)
	}
	rows = append(rows,
		HotpathRow{Name: "obs-disabled", MS: disabled, Runs: pairRuns},
		HotpathRow{Name: "obs-overhead", MS: overhead, Runs: pairRuns},
	)
	return rows, nil
}

// obsOverhead measures the wall-time cost of live tracing on the real-execute
// path: the cold-execute-real workload with obs.SetDisabled(true) (the kill
// switch — every obs.Start no-ops) versus the same workload under an active
// span tree, exactly what a traced /v1/run records.
//
// The gate on these rows demands <=2%, far below ambient-load noise when the
// two sides are timed in separate passes, so the measurement is paired: each
// attempt times a back-to-back block of each variant under the same load, and
// the overhead estimate is the lower-quartile per-attempt delta (clamped at
// zero). A genuine constant instrumentation cost shifts the entire delta
// distribution, quartile included; load waves only add positive outliers,
// which the low quartile ignores. Reported per execution, so obs-disabled is
// directly comparable to the cold-execute-real row.
func obsOverhead(runs int, in core.Input, opt legion.Options,
	executeTraced func(core.Input, legion.Options) func() error) (disabledMS, overheadMS float64, attempts int, err error) {
	const block = 4 // executions per timed attempt
	attempts = max(4*runs, 16)
	offF := func() error {
		obs.SetDisabled(true)
		defer obs.SetDisabled(false)
		for i := 0; i < block; i++ {
			prog, err := core.Compile(in)
			if err != nil {
				return err
			}
			if _, err := legion.Run(prog, opt); err != nil {
				return err
			}
		}
		return nil
	}
	tracedOnce := executeTraced(in, opt)
	onF := func() error {
		for i := 0; i < block; i++ {
			if err := tracedOnce(); err != nil {
				return err
			}
		}
		return nil
	}
	bestOff := math.Inf(1)
	deltas := make([]float64, 0, attempts)
	for i := 0; i < attempts; i++ {
		t0 := time.Now()
		if err := offF(); err != nil {
			return 0, 0, 0, err
		}
		off := float64(time.Since(t0).Microseconds()) / 1e3
		t0 = time.Now()
		if err := onF(); err != nil {
			return 0, 0, 0, err
		}
		on := float64(time.Since(t0).Microseconds()) / 1e3
		if off < bestOff {
			bestOff = off
		}
		deltas = append(deltas, on-off)
	}
	sort.Float64s(deltas)
	delta := math.Max(0, deltas[len(deltas)/4])
	return bestOff / block, (bestOff + delta) / block, attempts, nil
}

// blockedMatmulRef is the throughput yardstick for cold-execute-real: a
// hand-written cache-blocked n x n matmul (a = b*c, block x block tiles,
// accumulation order matching the tiled schedules) with no compiler, no
// executor, and no cost model in the loop. The gap between this row and
// cold-execute-real is the end-to-end overhead of compiling, pricing, and
// dispatching the same multiply through the full stack. Buffers are
// allocated once outside the timed closure; the output is re-zeroed per run
// so every attempt does identical work.
func blockedMatmulRef(n, block int) func() error {
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range b {
		b[i] = float64(i%7) + 0.25
		c[i] = float64(i%5) + 0.5
	}
	return func() error {
		for i := range a {
			a[i] = 0
		}
		for ib := 0; ib < n; ib += block {
			for jb := 0; jb < n; jb += block {
				for kb := 0; kb < n; kb += block {
					for i := ib; i < ib+block; i++ {
						for j := jb; j < jb+block; j++ {
							acc := a[i*n+j]
							for k := kb; k < kb+block; k++ {
								acc += b[i*n+k] * c[k*n+j]
							}
							a[i*n+j] = acc
						}
					}
				}
			}
		}
		if a[0] == math.Inf(1) {
			return fmt.Errorf("blocked matmul overflow") // keeps the loop observable
		}
		return nil
	}
}

// DiffHotpath checks hot-path improvement requirements. A plain "name"
// requirement compares against the baseline: the current row's wall time
// must be at most factor times the baseline row's (factor 0.8 demands a 20%
// improvement; 1.0 demands no-worse). An "a<b" requirement compares two rows
// of the current run against each other: row a must be at most factor times
// row b (e.g. batch-run-8<seq-run-8 with factor 0.9 demands the batched walk
// beat eight sequential runs by 10%) — useful when the baseline predates one
// of the rows. Rows missing on either side fail the requirement — an
// improvement gate should never pass silently because a measurement
// disappeared. Returns one message per violated requirement.
func DiffHotpath(baseline, current []HotpathRow, required map[string]float64) []string {
	base := map[string]HotpathRow{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	cur := map[string]HotpathRow{}
	for _, r := range current {
		cur[r.Name] = r
	}
	names := make([]string, 0, len(required))
	for name := range required {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		factor := required[name]
		if fast, slow, intra := strings.Cut(name, "<"); intra {
			a, okA := cur[fast]
			b, okB := cur[slow]
			switch {
			case !okA:
				violations = append(violations, fmt.Sprintf("hotpath %s: missing from current run", fast))
			case !okB:
				violations = append(violations, fmt.Sprintf("hotpath %s: missing from current run", slow))
			case a.MS > b.MS*factor:
				violations = append(violations, fmt.Sprintf(
					"hotpath %s: %.2fms vs %s's %.2fms (need <= %.2fms, factor %.2f)",
					fast, a.MS, slow, b.MS, b.MS*factor, factor))
			}
			continue
		}
		b, okB := base[name]
		c, okC := cur[name]
		switch {
		case !okB:
			violations = append(violations, fmt.Sprintf("hotpath %s: missing from baseline", name))
		case !okC:
			violations = append(violations, fmt.Sprintf("hotpath %s: missing from current run", name))
		case c.MS > b.MS*factor:
			violations = append(violations, fmt.Sprintf(
				"hotpath %s: %.2fms -> %.2fms (need <= %.2fms, factor %.2f)",
				name, b.MS, c.MS, b.MS*factor, factor))
		}
	}
	return violations
}

// DiffMetrics compares a fresh metrics run against a baseline and returns
// one message per regression. Simulated makespans are deterministic and
// compared row by row against tol (e.g. 0.20 for 20%). Host-side compile
// and simulate times are wall-clock: noisy at sub-millisecond scale and
// recorded on whatever hardware produced the baseline, so they are
// compared as totals across all shared rows against the separate wallTol
// (pass a generous value — e.g. 1.0 for 2x — when the baseline was
// recorded on different hardware than the current run). Rows present on
// only one side are ignored (the trajectory may add workloads).
func DiffMetrics(baseline, current []MetricRow, tol, wallTol float64) []string {
	type key struct{ exp, cfg string }
	base := map[key]MetricRow{}
	for _, r := range baseline {
		base[key{r.Experiment, r.Config}] = r
	}
	var regressions []string
	var baseCompile, curCompile, baseSim, curSim float64
	shared := 0
	for _, r := range current {
		b, ok := base[key{r.Experiment, r.Config}]
		if !ok {
			continue
		}
		shared++
		baseCompile += b.CompileMS
		curCompile += r.CompileMS
		baseSim += b.SimulateMS
		curSim += r.SimulateMS
		if b.MakespanSec > 0 && r.MakespanSec > b.MakespanSec*(1+tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: makespan %.4fs -> %.4fs (+%.1f%%)",
				r.Experiment, r.Config, b.MakespanSec, r.MakespanSec,
				100*(r.MakespanSec/b.MakespanSec-1)))
		}
		if b.OOM != r.OOM {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: OOM changed %v -> %v", r.Experiment, r.Config, b.OOM, r.OOM))
		}
	}
	if shared == 0 {
		return []string{"no shared rows between baseline and current metrics"}
	}
	if baseCompile > 0 && curCompile > baseCompile*(1+wallTol) {
		regressions = append(regressions, fmt.Sprintf(
			"total compile time %.1fms -> %.1fms (+%.1f%%)",
			baseCompile, curCompile, 100*(curCompile/baseCompile-1)))
	}
	if baseSim > 0 && curSim > baseSim*(1+wallTol) {
		regressions = append(regressions, fmt.Sprintf(
			"total simulate time %.1fms -> %.1fms (+%.1f%%)",
			baseSim, curSim, 100*(curSim/baseSim-1)))
	}
	return regressions
}
