package experiments

import (
	"fmt"
	"math"
	"time"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

// HotpathRow is one host-side hot-path measurement: the best-of-N wall time
// of a compile or execute path the serving session exercises. These rows
// ride along in `distal-bench -json` output so the PR-to-PR trajectory
// records kernel and compiler speedups, not only simulated workload
// metrics.
type HotpathRow struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
	Runs int     `json:"runs"`
}

// hotpathCase is one named measurement target.
type hotpathCase struct {
	name string
	f    func() error
}

// Hotpath measures the paths pinned by the hot-path benchmarks
// (hotpath_bench_test.go) in-process: multi-launch and single-launch
// compilation, a cold simulated execute, and validated (Real-mode)
// execution through both the compiled kernel program and the tree-walking
// fallback. Each measurement is the best of runs attempts.
func Hotpath(runs int) ([]HotpathRow, error) {
	if runs <= 0 {
		runs = 3
	}
	johnson, err := algorithms.Matmul(algorithms.Johnson, algorithms.MatmulConfig{
		N: 4096, Procs: 512, ProcsPerNode: 4, GPU: true,
	})
	if err != nil {
		return nil, err
	}
	summa, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
		N: 8192, Procs: 256, ProcsPerNode: 4, GPU: true, ChunkSize: 256,
	})
	if err != nil {
		return nil, err
	}
	realIn := func(tree bool) (core.Input, error) {
		in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
			N: 128, Procs: 16, ChunkSize: 32, Seed: 5,
		})
		in.TreeKernel = tree
		return in, err
	}

	best := func(f func() error) (float64, error) {
		b := math.Inf(1)
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := float64(time.Since(t0).Microseconds()) / 1e3; d < b {
				b = d
			}
		}
		return b, nil
	}
	compileOnly := func(in core.Input) func() error {
		return func() error { _, err := core.Compile(in); return err }
	}
	execute := func(in core.Input, opt legion.Options) func() error {
		return func() error {
			prog, err := core.Compile(in)
			if err != nil {
				return err
			}
			_, err = legion.Run(prog, opt)
			return err
		}
	}

	realCompiled, err := realIn(false)
	if err != nil {
		return nil, err
	}
	realTree, err := realIn(true)
	if err != nil {
		return nil, err
	}
	cases := []hotpathCase{
		{"compile-summa16x16seq", compileOnly(summa)},
		{"compile-johnson8x8x8", compileOnly(johnson)},
		{"cold-execute-sim", execute(johnson, legion.Options{Params: sim.LassenGPU()})},
		{"cold-execute-real", execute(realCompiled, legion.Options{Params: sim.LassenCPU(), Real: true})},
		{"cold-execute-real-tree", execute(realTree, legion.Options{Params: sim.LassenCPU(), Real: true})},
	}
	wireCases, closeWire, err := wireHotpath()
	if err != nil {
		return nil, fmt.Errorf("hotpath wire setup: %w", err)
	}
	defer closeWire()
	cases = append(cases, wireCases...)
	var rows []HotpathRow
	for _, c := range cases {
		ms, err := best(c.f)
		if err != nil {
			return nil, fmt.Errorf("hotpath %s: %w", c.name, err)
		}
		rows = append(rows, HotpathRow{Name: c.name, MS: ms, Runs: runs})
	}
	return rows, nil
}

// DiffMetrics compares a fresh metrics run against a baseline and returns
// one message per regression. Simulated makespans are deterministic and
// compared row by row against tol (e.g. 0.20 for 20%). Host-side compile
// and simulate times are wall-clock: noisy at sub-millisecond scale and
// recorded on whatever hardware produced the baseline, so they are
// compared as totals across all shared rows against the separate wallTol
// (pass a generous value — e.g. 1.0 for 2x — when the baseline was
// recorded on different hardware than the current run). Rows present on
// only one side are ignored (the trajectory may add workloads).
func DiffMetrics(baseline, current []MetricRow, tol, wallTol float64) []string {
	type key struct{ exp, cfg string }
	base := map[key]MetricRow{}
	for _, r := range baseline {
		base[key{r.Experiment, r.Config}] = r
	}
	var regressions []string
	var baseCompile, curCompile, baseSim, curSim float64
	shared := 0
	for _, r := range current {
		b, ok := base[key{r.Experiment, r.Config}]
		if !ok {
			continue
		}
		shared++
		baseCompile += b.CompileMS
		curCompile += r.CompileMS
		baseSim += b.SimulateMS
		curSim += r.SimulateMS
		if b.MakespanSec > 0 && r.MakespanSec > b.MakespanSec*(1+tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: makespan %.4fs -> %.4fs (+%.1f%%)",
				r.Experiment, r.Config, b.MakespanSec, r.MakespanSec,
				100*(r.MakespanSec/b.MakespanSec-1)))
		}
		if b.OOM != r.OOM {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: OOM changed %v -> %v", r.Experiment, r.Config, b.OOM, r.OOM))
		}
	}
	if shared == 0 {
		return []string{"no shared rows between baseline and current metrics"}
	}
	if baseCompile > 0 && curCompile > baseCompile*(1+wallTol) {
		regressions = append(regressions, fmt.Sprintf(
			"total compile time %.1fms -> %.1fms (+%.1f%%)",
			baseCompile, curCompile, 100*(curCompile/baseCompile-1)))
	}
	if baseSim > 0 && curSim > baseSim*(1+wallTol) {
		regressions = append(regressions, fmt.Sprintf(
			"total simulate time %.1fms -> %.1fms (+%.1f%%)",
			baseSim, curSim, 100*(curSim/baseSim-1)))
	}
	return regressions
}
