package cin

import (
	"strings"
	"testing"

	"distal/internal/ir"
	"distal/internal/schedule"
)

func TestBuildDefaultNest(t *testing.T) {
	s := schedule.New(ir.MustParse("A(i,j) = B(i,k) * C(k,j)"))
	got := Build(s).String()
	want := "forall i forall j forall k A(i,j) = B(i,k) * C(k,j)"
	if got != want {
		t.Fatalf("cin = %q, want %q", got, want)
	}
}

// TestPaperExampleLowering pins the example of §5.3: the concrete index
// notation for the divide transformation rule.
func TestDivideRelation(t *testing.T) {
	s := schedule.New(ir.MustParse("A(i,j) = B(i,k) * C(k,j)")).
		Divide("i", "io", "ii", 4)
	got := Build(s).String()
	if !strings.Contains(got, "forall io forall ii forall j forall k") {
		t.Fatalf("missing divided loops: %q", got)
	}
	if !strings.Contains(got, "s.t. divide(i,io,ii,4)") {
		t.Fatalf("missing divide relation: %q", got)
	}
}

func TestSUMMARelations(t *testing.T) {
	s := schedule.New(ir.MustParse("A(i,j) = B(i,k) * C(k,j)")).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
		Split("k", "ko", "ki", 256).
		Reorder("ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C")
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	got := Build(s).String()
	for _, frag := range []string{
		"forall io forall jo forall ko forall ii forall ji forall ki",
		"divide(i,io,ii,2)",
		"divide(j,jo,ji,2)",
		"split(k,ko,ki,256)",
		"distribute(io,jo)",
		"communicate(A,jo)",
		"communicate(B,ko)",
		"communicate(C,ko)",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("cin missing %q in %q", frag, got)
		}
	}
}

func TestRotateRelation(t *testing.T) {
	s := schedule.New(ir.MustParse("A(i,j) = B(i,k) * C(k,j)")).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{3, 3}).
		Divide("k", "ko", "ki", 3).
		Reorder("ko", "ii", "ji", "ki").
		Rotate("ko", []string{"io", "jo"}, "kos")
	got := Build(s).String()
	if !strings.Contains(got, "rotate(ko,{io,jo},kos)") {
		t.Fatalf("missing rotate relation: %q", got)
	}
}

func TestCollapseRelation(t *testing.T) {
	s := schedule.New(ir.MustParse("A(i,j) = B(i,k) * C(k,j)")).Collapse("i", "j", "f")
	got := Build(s).String()
	if !strings.Contains(got, "collapse(i,j,f)") {
		t.Fatalf("missing collapse relation: %q", got)
	}
}
