// Package cin implements concrete index notation (§5.1, Fig. 14 of the
// DISTAL paper): a lower-level IR than tensor index notation that makes the
// loop nest explicit and tracks applied scheduling transformations through
// "s.t." relations. The compiler uses it as the human-inspectable form of a
// scheduled statement; golden tests pin its rendering.
package cin

import (
	"fmt"
	"strings"

	"distal/internal/ir"
	"distal/internal/schedule"
)

// Stmt is a concrete index notation statement.
type Stmt interface {
	String() string
}

// Forall is ∀v S, optionally annotated with scheduling relations.
type Forall struct {
	Var       string
	Body      Stmt
	Relations []string
}

func (f *Forall) String() string {
	var b strings.Builder
	writeForall(&b, f)
	return b.String()
}

func writeForall(b *strings.Builder, s Stmt) {
	switch s := s.(type) {
	case *Forall:
		fmt.Fprintf(b, "forall %s ", s.Var)
		writeForall(b, s.Body)
		if len(s.Relations) > 0 {
			fmt.Fprintf(b, " s.t. %s", strings.Join(s.Relations, ", "))
		}
	case *Assign:
		b.WriteString(s.String())
	default:
		b.WriteString(s.String())
	}
}

// Assign is the leaf assignment a = e or a += e.
type Assign struct {
	Stmt *ir.Assignment
}

func (a *Assign) String() string { return a.Stmt.String() }

// Build converts a scheduled statement into concrete index notation: one
// Forall per loop-order variable (outermost first) with the schedule's
// relations attached to the loops they transform.
func Build(s *schedule.Schedule) *Forall {
	stmt := s.Stmt()
	// If the schedule introduced reductions or the loop nest reduces, the
	// assignment is compound (+=) per Fig 14.
	inner := Stmt(&Assign{Stmt: stmt})
	order := s.Order()
	var root *Forall
	var cur *Forall
	for _, v := range order {
		f := &Forall{Var: v}
		if root == nil {
			root = f
		} else {
			cur.Body = f
		}
		cur = f
	}
	if cur == nil {
		root = &Forall{Var: "", Body: inner}
		return root
	}
	cur.Body = inner
	root.Relations = relations(s)
	return root
}

// relations renders every transformation recorded by the schedule in a
// stable order: variable derivations first (in loop order of their outer
// result), then distribute, rotate, and communicate.
func relations(s *schedule.Schedule) []string {
	var rels []string
	seen := map[string]bool{}
	for _, name := range s.Order() {
		v := s.Var(name)
		if v == nil || seen[v.Name] {
			continue
		}
		switch v.Kind {
		case schedule.DivideOuter:
			rels = append(rels, fmt.Sprintf("divide(%s,%s,%s,%d)", v.Origin, v.Name, v.Partner, v.Param))
			seen[v.Partner] = true
		case schedule.DivideInner:
			rels = append(rels, fmt.Sprintf("divide(%s,%s,%s,%d)", v.Origin, v.Partner, v.Name, v.Param))
			seen[v.Partner] = true
		case schedule.SplitOuter:
			rels = append(rels, fmt.Sprintf("split(%s,%s,%s,%d)", v.Origin, v.Name, v.Partner, v.Param))
			seen[v.Partner] = true
		case schedule.SplitInner:
			rels = append(rels, fmt.Sprintf("split(%s,%s,%s,%d)", v.Origin, v.Partner, v.Name, v.Param))
			seen[v.Partner] = true
		case schedule.Fused:
			rels = append(rels, fmt.Sprintf("collapse(%s,%s,%s)", v.FuseA, v.FuseB, v.Name))
		case schedule.Rotated:
			rels = append(rels, fmt.Sprintf("rotate(%s,{%s},%s)", v.Origin, strings.Join(v.RotateOffsets, ","), v.Name))
		}
		seen[v.Name] = true
	}
	if d := s.Distributed(); len(d) > 0 {
		rels = append(rels, fmt.Sprintf("distribute(%s)", strings.Join(d, ",")))
	}
	for _, t := range s.Stmt().TensorNames() {
		if a := s.CommAnchor(t); a != "" {
			rels = append(rels, fmt.Sprintf("communicate(%s,%s)", t, a))
		}
	}
	return rels
}
