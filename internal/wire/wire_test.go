package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"distal/internal/tensor"
)

// bitsEqual compares two tensors bit for bit (NaN payloads and signed
// zeros included), which EqualWithin cannot.
func bitsEqual(a, b *tensor.Dense) bool {
	ad, bd := a.Data(), b.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	as, bs := a.Shape(), b.Shape()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestRoundTripBitIdentical(t *testing.T) {
	cases := []*tensor.Dense{
		tensor.New("scalar"), // rank 0
		tensor.New("empty", 0),
		tensor.New("row", 17),
		tensor.New("mat", 5, 7),
		tensor.New("cube", 3, 4, 5),
		tensor.New("big", 257, 129), // crosses several 64 KiB chunks? (257*129*8 = 265 KB)
	}
	for i, c := range cases {
		c.FillRandom(int64(i + 1))
	}
	// Special values must survive exactly.
	sp := tensor.New("special", 6)
	d := sp.Data()
	d[0] = math.NaN()
	d[1] = math.Inf(1)
	d[2] = math.Inf(-1)
	d[3] = math.Copysign(0, -1)
	d[4] = math.SmallestNonzeroFloat64
	d[5] = math.MaxFloat64
	cases = append(cases, sp)

	for _, c := range cases {
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			t.Fatalf("%s: encode: %v", c.Name(), err)
		}
		if got, want := int64(buf.Len()), EncodedSize(c); got != want {
			t.Fatalf("%s: encoded %d bytes, EncodedSize says %d", c.Name(), got, want)
		}
		back, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name(), err)
		}
		if !bitsEqual(c, back) {
			t.Fatalf("%s: round trip is not bit-identical", c.Name())
		}
	}
}

func TestFramesConcatenate(t *testing.T) {
	a := tensor.New("a", 4, 4)
	a.FillRandom(1)
	b := tensor.New("b", 2, 8, 2)
	b.FillRandom(2)
	var buf bytes.Buffer
	if err := EncodeFrames(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	for _, want := range []*tensor.Dense{a, b} {
		got, err := Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(want, got) {
			t.Fatalf("frame %s did not round-trip", want.Name())
		}
	}
	if _, err := Decode(r); err == nil {
		t.Fatal("decode past the last frame succeeded")
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		tt := tensor.New("t", 3, 3)
		tt.FillRandom(9)
		if err := Encode(&buf, tt); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	mutate := func(f func(b []byte) []byte) []byte { return f(valid()) }

	cases := map[string][]byte{
		"empty":         {},
		"short header":  valid()[:5],
		"bad magic":     mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":   mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"bad dtype":     mutate(func(b []byte) []byte { b[5] = 7; return b }),
		"huge rank":     mutate(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[6:8], MaxRank+1); return b }),
		"truncated dim": valid()[:headerSize+4],
		"truncated payload": mutate(func(b []byte) []byte {
			return b[:len(b)-8]
		}),
		"huge dim": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerSize:], math.MaxUint64/2)
			return b
		}),
	}
	for name, raw := range cases {
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: decode succeeded on malformed input", name)
		} else if _, ok := err.(*FormatError); !ok {
			t.Errorf("%s: error %v is not a *FormatError", name, err)
		}
	}
}

func TestDecodeLimit(t *testing.T) {
	tt := tensor.New("t", 8, 8)
	tt.FillRandom(3)
	var buf bytes.Buffer
	if err := Encode(&buf, tt); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLimit(bytes.NewReader(buf.Bytes()), 64); err != nil {
		t.Fatalf("exact limit rejected: %v", err)
	}
	if _, err := DecodeLimit(bytes.NewReader(buf.Bytes()), 63); err == nil {
		t.Fatal("payload over the limit was accepted")
	} else if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("limit error does not say so: %v", err)
	}
	// A header declaring a huge payload over a tiny body must fail on the
	// limit check, before any payload-sized allocation.
	var hdr bytes.Buffer
	hdr.Write([]byte{'D', 'T', 'W', 'F', Version, DTypeFloat64, 2, 0})
	var dim [8]byte
	binary.LittleEndian.PutUint64(dim[:], 1<<20)
	hdr.Write(dim[:])
	hdr.Write(dim[:])
	if _, err := DecodeLimit(bytes.NewReader(hdr.Bytes()), 1<<10); err == nil {
		t.Fatal("oversized declaration was accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.dt")
	tt := tensor.New("orig", 6, 5)
	tt.FillRandom(11)
	if err := WriteFile(path, tt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, "renamed")
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "renamed" {
		t.Fatalf("ReadFile name = %q", back.Name())
	}
	if !bitsEqual(tt, back) {
		t.Fatal("file round trip is not bit-identical")
	}
}

func TestJSONSectionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"stmt":"A(i,j) = B(i,k) * C(k,j)"}`)
	if err := WriteJSONSection(&buf, payload); err != nil {
		t.Fatal(err)
	}
	rest := tensor.New("t", 2, 2)
	if err := Encode(&buf, rest); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	got, err := ReadJSONSection(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("JSON section = %q", got)
	}
	if _, err := Decode(r); err != nil {
		t.Fatalf("frame after JSON section: %v", err)
	}

	if _, err := ReadJSONSection(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated section length accepted")
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], MaxJSONSection+1)
	if _, err := ReadJSONSection(bytes.NewReader(huge[:])); err == nil {
		t.Fatal("oversized section accepted")
	}
}

func TestApplyFill(t *testing.T) {
	tt := tensor.New("t", 4)
	if err := ApplyFill(tt, "ones"); err != nil {
		t.Fatal(err)
	}
	if tt.Sum() != 4 {
		t.Fatalf("ones sum = %v", tt.Sum())
	}
	if err := ApplyFill(tt, "zero"); err != nil || tt.Sum() != 0 {
		t.Fatalf("zero fill: %v, sum %v", err, tt.Sum())
	}
	if err := ApplyFill(tt, "rand:7"); err != nil {
		t.Fatal(err)
	}
	want := tensor.New("w", 4)
	want.FillRandom(7)
	if !bitsEqual(tt, want) {
		t.Fatal("rand fill does not match FillRandom")
	}
	for _, bad := range []string{"random", "rand:", "rand:x", "wirex"} {
		if err := ApplyFill(tensor.New("t", 1), bad); err == nil {
			t.Errorf("fill %q accepted", bad)
		}
	}
	if !ValidFill(FillWire) || !ValidFill("zero") || ValidFill("nope") {
		t.Fatal("ValidFill misclassifies")
	}
}

// TestEncodeStreams pins that Encode writes through a bounded scratch: the
// writer sees many mid-size writes, never one payload-sized write.
func TestEncodeStreams(t *testing.T) {
	tt := tensor.New("t", 1<<10, 1<<7) // 1 MiB payload
	tt.FillRandom(1)
	w := &maxWriteRecorder{}
	if err := Encode(w, tt); err != nil {
		t.Fatal(err)
	}
	if w.max > chunkBytes {
		t.Fatalf("largest single write was %d bytes; the payload is being buffered (chunk is %d)", w.max, chunkBytes)
	}
}

type maxWriteRecorder struct{ max int }

func (w *maxWriteRecorder) Write(p []byte) (int, error) {
	if len(p) > w.max {
		w.max = len(p)
	}
	return len(p), nil
}

// TestDecodeFromOneByteReader pins that Decode tolerates arbitrarily
// fragmented reads (as from a network stream).
func TestDecodeFromOneByteReader(t *testing.T) {
	tt := tensor.New("t", 9, 3)
	tt.FillRandom(5)
	var buf bytes.Buffer
	if err := Encode(&buf, tt); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(iotest(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(tt, back) {
		t.Fatal("fragmented decode is not bit-identical")
	}
}

func iotest(b []byte) io.Reader { return &oneByteReader{b: b} }

type oneByteReader struct{ b []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	p[0] = r.b[0]
	r.b = r.b[1:]
	return 1, nil
}
