// Package wire is the binary tensor transport of the DISTAL service: a
// versioned codec that moves tensor.Dense values over byte streams without
// ever materializing a second copy of the payload, plus the request/response
// protocol POST /v1/run speaks over it (protocol.go) and a client that
// drives the endpoint end to end (client.go).
//
// One encoded tensor — a frame — is self-delimiting:
//
//	offset  size      field
//	0       4         magic "DTWF"
//	4       1         version (1)
//	5       1         dtype (1 = float64, little-endian)
//	6       2         rank, uint16 little-endian
//	8       rank*8    dims, uint64 little-endian each
//	...     count*8   payload: product(dims) float64 values,
//	                  little-endian, row-major
//
// Frames concatenate back to back with no extra framing: the header declares
// the payload size, so a reader always knows where the next frame starts.
// Multi-tensor request and response bodies are plain frame sequences whose
// names and order travel in the JSON envelope (see protocol.go).
//
// Encode and Decode stream through a fixed-size scratch buffer: the payload
// is converted to and from little-endian in chunks, so the only full-size
// allocation is the decoded tensor's own backing slice — and that single
// allocation happens only after the header has been validated against the
// decoder's element limit, so a hostile header cannot make the decoder
// allocate ahead of what the caller declared acceptable.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"distal/internal/tensor"
)

const (
	// Version is the codec version this package reads and writes.
	Version = 1
	// DTypeFloat64 is the only dtype of version 1: IEEE-754 binary64,
	// little-endian. The field exists so later versions can add narrower
	// types without a new magic.
	DTypeFloat64 = 1
	// MaxRank bounds the rank field: higher ranks are rejected before any
	// dim is read. Far above what schedules support, but it keeps a hostile
	// header from requesting a multi-gigabyte dims read.
	MaxRank = 64
	// DefaultMaxElements bounds Decode's payload allocation when the caller
	// has no better limit: 1<<27 float64s = 1 GiB. Servers that know the
	// expected shape should pass the exact element count to DecodeLimit.
	DefaultMaxElements = 1 << 27

	headerSize = 8 // magic + version + dtype + rank
	chunkBytes = 64 << 10
)

var magic = [4]byte{'D', 'T', 'W', 'F'}

// FormatError reports a malformed or out-of-policy frame: bad magic, an
// unsupported version or dtype, an oversized rank or payload, or a truncated
// body. Servers map it to a client-error status; it never indicates a fault
// of the reader itself.
type FormatError struct {
	msg string
}

func (e *FormatError) Error() string { return "wire: " + e.msg }

func formatErrf(format string, args ...any) error {
	return &FormatError{msg: fmt.Sprintf(format, args...)}
}

// EncodedSize returns the exact number of bytes Encode will write for t.
func EncodedSize(t *tensor.Dense) int64 {
	return int64(headerSize) + int64(t.Rank())*8 + t.Bytes()
}

// Encode writes t as one frame. The payload streams through a fixed scratch
// buffer (64 KiB), so encoding never holds a second copy of the tensor; a
// caller streaming an HTTP response can wrap w in a flushing writer to get
// chunked transfer with bounded latency.
func Encode(w io.Writer, t *tensor.Dense) error {
	shape := t.Shape()
	hdr := make([]byte, headerSize+len(shape)*8)
	copy(hdr, magic[:])
	hdr[4] = Version
	hdr[5] = DTypeFloat64
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(len(shape)))
	for d, s := range shape {
		binary.LittleEndian.PutUint64(hdr[headerSize+8*d:], uint64(s))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	data := t.Data()
	buf := make([]byte, chunkBytes)
	for len(data) > 0 {
		n := len(buf) / 8
		if n > len(data) {
			n = len(data)
		}
		for i, v := range data[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// Decode reads one frame under the default element limit. The decoded
// tensor has no name; Rename it before binding.
func Decode(r io.Reader) (*tensor.Dense, error) {
	return DecodeLimit(r, DefaultMaxElements)
}

// DecodeLimit reads one frame, rejecting any header that declares more than
// maxElems payload elements before allocating anything payload-sized. A
// server expecting a known shape passes its exact element count, so a lying
// header can never allocate beyond what the request declared. Truncated
// input fails with io.ErrUnexpectedEOF wrapped in a FormatError; Decode
// never panics on arbitrary input.
func DecodeLimit(r io.Reader, maxElems int) (*tensor.Dense, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, formatErrf("missing frame header: %v", err)
		}
		return nil, formatErrf("truncated frame header: %v", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, formatErrf("bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return nil, formatErrf("unsupported version %d (want %d)", hdr[4], Version)
	}
	if hdr[5] != DTypeFloat64 {
		return nil, formatErrf("unsupported dtype %d (want %d = float64)", hdr[5], DTypeFloat64)
	}
	rank := int(binary.LittleEndian.Uint16(hdr[6:8]))
	if rank > MaxRank {
		return nil, formatErrf("rank %d exceeds the limit of %d", rank, MaxRank)
	}
	dims := make([]byte, rank*8)
	if _, err := io.ReadFull(r, dims); err != nil {
		return nil, formatErrf("truncated dims: %v", err)
	}
	if maxElems < 0 || maxElems > DefaultMaxElements {
		maxElems = DefaultMaxElements
	}
	shape := make([]int, rank)
	count := int64(1)
	for d := range shape {
		v := binary.LittleEndian.Uint64(dims[8*d:])
		if v > uint64(maxElems) {
			return nil, formatErrf("dim %d = %d exceeds the element limit of %d", d, v, maxElems)
		}
		shape[d] = int(v)
		count *= int64(shape[d])
		// Each factor is already <= maxElems <= 1<<27, so the running
		// product stays far below int64 overflow between checks.
		if count > int64(maxElems) {
			return nil, formatErrf("payload of %v elements exceeds the limit of %d", shape, maxElems)
		}
	}
	total := int(count)
	data := make([]float64, total)
	buf := make([]byte, chunkBytes)
	for off := 0; off < total; {
		n := len(buf) / 8
		if n > total-off {
			n = total - off
		}
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return nil, formatErrf("truncated payload at element %d of %d: %v", off, total, err)
		}
		for i := 0; i < n; i++ {
			data[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		off += n
	}
	return tensor.FromData("", data, shape...), nil
}

// EncodeFrames writes the tensors back to back in the given order.
func EncodeFrames(w io.Writer, ts ...*tensor.Dense) error {
	for _, t := range ts {
		if err := Encode(w, t); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes t as a single-frame .dt file.
func WriteFile(path string, t *tensor.Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a single-frame .dt file, naming the tensor name.
func ReadFile(path, name string) (*tensor.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t.Rename(name), nil
}
