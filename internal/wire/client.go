package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"distal/internal/ir"
	"distal/internal/program"
	"distal/internal/tensor"
)

// Client drives POST /v1/run against a distal-serve instance: it frames the
// request (streaming wire-marked inputs through an io.Pipe, so large
// tensors are never buffered a second time), and decodes the streamed
// response frame into a tensor.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// RunError is a non-2xx /v1/run response: the HTTP status plus the
// service's structured error body.
type RunError struct {
	Status  int
	Kind    string
	Message string
}

func (e *RunError) Error() string {
	return fmt.Sprintf("wire: server returned %d (%s): %s", e.Status, e.Kind, e.Message)
}

// Run executes req on the server. data supplies the frames for every input
// whose Inputs directive is "wire" (other entries are rejected: fills are
// materialized server-side by design). The returned tensor is the streamed
// output, named and shaped by the response; stats carry the run's metrics.
func (c *Client) Run(ctx context.Context, req RunRequest, data map[string]*tensor.Dense) (*tensor.Dense, *RunStats, error) {
	if req.Batch != nil {
		return nil, nil, fmt.Errorf("wire: request declares batch %d: use RunBatch", *req.Batch)
	}
	order, shapes, err := wireOrder(req)
	if err != nil {
		return nil, nil, err
	}
	for name := range data {
		if req.Inputs[name] != FillWire {
			return nil, nil, fmt.Errorf("wire: data given for %s, whose inputs entry is %q, not %q", name, req.Inputs[name], FillWire)
		}
	}
	frames := make([]*tensor.Dense, len(order))
	for i, name := range order {
		t, ok := data[name]
		if !ok {
			return nil, nil, fmt.Errorf("wire: input %s is marked %q but no data was given", name, FillWire)
		}
		frames[i] = t
	}
	envelope, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}

	var body io.Reader
	contentType := ContentTypeRun
	if len(frames) == 0 {
		// All-fills requests take the curl-friendly bare-JSON form.
		body, contentType = bytes.NewReader(envelope), "application/json"
	} else {
		pr, pw := io.Pipe()
		body = pr
		go func() {
			err := WriteJSONSection(pw, envelope)
			if err == nil {
				err = EncodeFrames(pw, frames...)
			}
			pw.CloseWithError(err)
		}()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", body)
	if err != nil {
		return nil, nil, err
	}
	httpReq.Header.Set("Content-Type", contentType)
	client := c.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, decodeError(resp)
	}
	stats := StatsFromHeaders(resp.Header)
	limit := DefaultMaxElements
	if shape, ok := shapes[stats.Output]; ok {
		limit = 1
		for _, s := range shape {
			limit *= s
		}
	}
	out, err := DecodeLimit(resp.Body, limit)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: decoding response: %w", err)
	}
	return out.Rename(stats.Output), &stats, nil
}

// InstanceError is one instance's failure inside a 200 batched response:
// the whole batch executed, but this instance was rejected (its frame's
// shape disagreed with the request, for example) without tearing down the
// others.
type InstanceError struct {
	Index   int
	Kind    string
	Message string
}

func (e *InstanceError) Error() string {
	return fmt.Sprintf("wire: batch instance %d failed (%s): %s", e.Index, e.Kind, e.Message)
}

// BatchOutcome is the result of one batched run: per-instance outputs and
// failures, index-aligned with the request's instances, plus the shared run
// stats (the simulated metrics of a batched run are those of a single
// instance — the accounting walk runs once).
type BatchOutcome struct {
	// Outputs holds instance i's streamed output tensor, nil when Errs[i]
	// is set.
	Outputs []*tensor.Dense
	// Errs holds instance i's *InstanceError, nil when it succeeded.
	Errs []error
	// Stats carries the run's metrics headers.
	Stats RunStats
}

// RunBatch executes req as a batched run over N problem instances. batch
// supplies each instance's wire-marked input frames, one map per instance
// in instance order; when req has no wire-marked inputs (all fills), batch
// may be nil and req.Batch must declare the instance count. Frames are
// streamed instance-major (instance 0's tensors in statement order, then
// instance 1's, ...). Whole-request failures (malformed request, all
// instances rejected, executor errors) return a non-nil error; per-instance
// rejections ride in the BatchOutcome with the surviving instances' outputs.
func (c *Client) RunBatch(ctx context.Context, req RunRequest, batch []map[string]*tensor.Dense) (*BatchOutcome, error) {
	n := len(batch)
	if req.Batch != nil {
		if n != 0 && *req.Batch != n {
			return nil, fmt.Errorf("wire: request declares batch %d but %d instances were given", *req.Batch, n)
		}
		n = *req.Batch
	}
	if n <= 0 {
		return nil, fmt.Errorf("wire: batched run needs at least one instance")
	}
	req.Batch = &n
	order, shapes, err := wireOrder(req)
	if err != nil {
		return nil, err
	}
	if len(order) == 0 && len(batch) > 0 {
		return nil, fmt.Errorf("wire: instance data given but no input is marked %q", FillWire)
	}
	var frames []*tensor.Dense
	if len(order) > 0 {
		if len(batch) != n {
			return nil, fmt.Errorf("wire: %d instances declared but data for %d was given", n, len(batch))
		}
		frames = make([]*tensor.Dense, 0, n*len(order))
		for i, data := range batch {
			for name := range data {
				if req.Inputs[name] != FillWire {
					return nil, fmt.Errorf("wire: instance %d: data given for %s, whose inputs entry is %q, not %q", i, name, req.Inputs[name], FillWire)
				}
			}
			for _, name := range order {
				t, ok := data[name]
				if !ok {
					return nil, fmt.Errorf("wire: instance %d: input %s is marked %q but no data was given", i, name, FillWire)
				}
				frames = append(frames, t)
			}
		}
	}
	envelope, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	var body io.Reader
	contentType := ContentTypeRun
	if len(frames) == 0 {
		body, contentType = bytes.NewReader(envelope), "application/json"
	} else {
		pr, pw := io.Pipe()
		body = pr
		go func() {
			err := WriteJSONSection(pw, envelope)
			if err == nil {
				err = EncodeFrames(pw, frames...)
			}
			pw.CloseWithError(err)
		}()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", body)
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", contentType)
	client := c.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}

	out := &BatchOutcome{
		Outputs: make([]*tensor.Dense, n),
		Errs:    make([]error, n),
		Stats:   StatsFromHeaders(resp.Header),
	}
	status := strings.Split(resp.Header.Get(HeaderBatchStatus), ",")
	if len(status) != n {
		return nil, fmt.Errorf("wire: response reports %d instance statuses, want %d", len(status), n)
	}
	var messages []string
	if raw := resp.Header.Get(HeaderBatchErrors); raw != "" {
		if err := json.Unmarshal([]byte(raw), &messages); err != nil || len(messages) != n {
			return nil, fmt.Errorf("wire: malformed %s header", HeaderBatchErrors)
		}
	}
	limit := DefaultMaxElements
	if shape, ok := shapes[out.Stats.Output]; ok {
		limit = 1
		for _, s := range shape {
			limit *= s
		}
	}
	for i, st := range status {
		if st != BatchStatusOK {
			msg := ""
			if messages != nil {
				msg = messages[i]
			}
			out.Errs[i] = &InstanceError{Index: i, Kind: st, Message: msg}
			continue
		}
		t, err := DecodeLimit(resp.Body, limit)
		if err != nil {
			return nil, fmt.Errorf("wire: decoding instance %d of the response: %w", i, err)
		}
		out.Outputs[i] = t.Rename(out.Stats.Output)
	}
	return out, nil
}

// wireOrder returns the names of req's wire-marked inputs in frame order —
// statement order for single-statement runs, the program's leaf first-use
// order for multi-statement runs — after validating every directive. The
// returned shapes cover every tensor a response could stream (multi-
// statement outputs are inferred, not declared), for bounding the decode.
func wireOrder(req RunRequest) ([]string, map[string][]int, error) {
	if len(req.Stmts) > 0 {
		return programOrder(req)
	}
	stmt, err := ir.Parse(req.Stmt)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: %w", err)
	}
	named := map[string]bool{}
	for _, name := range stmt.TensorNames() {
		named[name] = true
	}
	for name, fill := range req.Inputs {
		if !named[name] {
			return nil, nil, fmt.Errorf("wire: inputs names %s, which is not a tensor of %q", name, req.Stmt)
		}
		if !ValidFill(fill) {
			return nil, nil, fmt.Errorf("wire: tensor %s: bad inputs directive %q", name, fill)
		}
	}
	var order []string
	for _, name := range stmt.TensorNames() {
		if req.Inputs[name] == FillWire {
			order = append(order, name)
		}
	}
	return order, req.Shapes, nil
}

// programOrder is wireOrder for a multi-statement run: it parses the
// program exactly as the server will, so both ends agree on which tensors
// ride as frames and in what order. Only leaf inputs may carry Inputs
// directives — intermediates and outputs are always server-allocated.
func programOrder(req RunRequest) ([]string, map[string][]int, error) {
	if req.Stmt != "" {
		return nil, nil, fmt.Errorf("wire: request sets both stmt and stmts; a multi-statement run puts every statement in stmts")
	}
	specs := make([]program.Statement, len(req.Stmts))
	for i, st := range req.Stmts {
		specs[i] = program.Statement{Stmt: st.Stmt, Formats: st.Formats, Schedule: st.Schedule}
	}
	p, err := program.Parse(specs, req.Shapes)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: %w", err)
	}
	leaf := map[string]bool{}
	for _, name := range p.Inputs() {
		leaf[name] = true
	}
	for name, fill := range req.Inputs {
		if !leaf[name] {
			return nil, nil, fmt.Errorf("wire: inputs names %s, which is not a leaf input of the program (computed tensors are server-allocated)", name)
		}
		if !ValidFill(fill) {
			return nil, nil, fmt.Errorf("wire: tensor %s: bad inputs directive %q", name, fill)
		}
	}
	var order []string
	for _, name := range p.Inputs() {
		if req.Inputs[name] == FillWire {
			order = append(order, name)
		}
	}
	return order, p.Shapes, nil
}

func decodeError(resp *http.Response) error {
	var body struct {
		Error struct {
			Kind    string `json:"kind"`
			Message string `json:"message"`
		} `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(raw, &body); err != nil || body.Error.Kind == "" {
		return &RunError{Status: resp.StatusCode, Kind: "unknown", Message: string(raw)}
	}
	return &RunError{Status: resp.StatusCode, Kind: body.Error.Kind, Message: body.Error.Message}
}
