package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"distal/internal/tensor"
)

// fuzzLimit keeps the fuzzer's worst-case allocation small: the decoder must
// reject any header declaring more than this many elements before allocating
// the payload.
const fuzzLimit = 1 << 16

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic and
// never allocate past the validated element limit, and anything it accepts
// must re-encode to a frame that decodes back bit-identically (the decoder
// accepts only canonical encodings, so accept implies round-trip).
func FuzzDecode(f *testing.F) {
	seed := func(t *tensor.Dense) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, t); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	r := tensor.New("r", 4, 6)
	r.FillRandom(3)
	sp := tensor.New("sp", 3)
	sp.Data()[0] = math.NaN()
	sp.Data()[1] = math.Inf(-1)
	sp.Data()[2] = math.Copysign(0, -1)

	f.Add(seed(tensor.New("scalar")))
	f.Add(seed(tensor.New("empty", 0)))
	f.Add(seed(r))
	f.Add(seed(sp))
	f.Add(seed(r)[:11])                   // truncated dims
	f.Add(seed(r)[:headerSize+16+5])      // truncated payload
	f.Add(append(seed(sp), seed(sp)...))  // trailing second frame
	f.Add([]byte{})                       // empty
	f.Add([]byte{'D', 'T', 'W', 'F'})     // magic only
	f.Add([]byte{'D', 'T', 'W', 'F', 2})  // wrong version
	f.Add([]byte("DTWF\x01\x01\xff\xff")) // absurd rank
	huge := []byte{'D', 'T', 'W', 'F', Version, DTypeFloat64, 1, 0}
	var dim [8]byte
	binary.LittleEndian.PutUint64(dim[:], math.MaxUint64)
	f.Add(append(huge, dim[:]...)) // one dim claiming 2^64-1 elements

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeLimit(bytes.NewReader(data), fuzzLimit)
		if err != nil {
			return
		}
		if got.Size() > fuzzLimit {
			t.Fatalf("decoded %d elements past the limit %d", got.Size(), fuzzLimit)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, got); err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		back, err := DecodeLimit(bytes.NewReader(buf.Bytes()), fuzzLimit)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded frame failed: %v", err)
		}
		if !bitsEqual(got, back) {
			t.Fatal("accepted frame does not round-trip bit-identically")
		}
		// An accepted frame is a prefix of data: the encoding is canonical,
		// so the accepted bytes must equal the re-encoding exactly.
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("accepted prefix differs from the canonical encoding")
		}
	})
}
