package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"distal/internal/tensor"
)

// The POST /v1/run protocol. A run request is a data-free distal.Request
// plus the data for every tensor of the statement, each either carried as a
// wire frame or filled server-side:
//
//	Content-Type: application/x-distal-run
//	body:  uint32 LE JSON length | RunRequest JSON | tensor frames
//
// Frames follow in statement order (the order ir's TensorNames yields: LHS
// first, then RHS tensors left to right, duplicates dropped), restricted to
// the tensors whose Inputs entry is "wire". Requests whose inputs are all
// fills may instead POST the bare RunRequest as Content-Type
// application/json — the curl-friendly form.
//
// The response streams the computed output tensor as one frame
// (Content-Type application/x-distal-tensor, chunked), with the execution's
// metrics riding in Distal-* headers. Failures are JSON error bodies with
// the PR 4 taxonomy's status mapping.
const (
	// ContentTypeRun marks a framed run request body.
	ContentTypeRun = "application/x-distal-run"
	// ContentTypeTensor marks a response body holding one tensor frame.
	ContentTypeTensor = "application/x-distal-tensor"
	// MaxJSONSection bounds the JSON prefix of a framed body.
	MaxJSONSection = 4 << 20
)

// Response headers carrying the run's metrics alongside the binary body.
const (
	HeaderPlanKey   = "Distal-Plan-Key"
	HeaderCached    = "Distal-Cached"
	HeaderOutput    = "Distal-Output"
	HeaderTimeS     = "Distal-Time-S"
	HeaderGFlops    = "Distal-Gflops"
	HeaderCopies    = "Distal-Copies"
	HeaderIntraB    = "Distal-Intra-Bytes"
	HeaderInterB    = "Distal-Inter-Bytes"
	HeaderPeakMemB  = "Distal-Peak-Mem-Bytes"
	HeaderCompileMS = "Distal-Compile-Ms"
	// HeaderRequestID carries the request id: generated server-side per
	// request, echoed back when the client supplies one, and the key of the
	// server's GET /v1/trace/{id} export.
	HeaderRequestID = "Distal-Request-Id"
	// HeaderStages carries a JSON array of StageInfo on multi-statement run
	// responses: one row per execution stage, repartitions included.
	HeaderStages = "Distal-Stages"
)

// StageInfo is one execution stage of a multi-statement run as reported in
// the HeaderStages response header: static per-stage facts (wall-clock
// per-stage timings live in the request's trace export instead).
type StageInfo struct {
	Output   string `json:"output"`
	PlanKey  string `json:"plan_key"`
	Cached   bool   `json:"cached"`
	Repart   bool   `json:"repart,omitempty"`
	Launches int    `json:"launches"`
	Points   int    `json:"points"`
}

// Batched-run response headers. A batched run (RunRequest.Batch set)
// answers 200 as long as at least one instance executed: HeaderBatch
// carries the declared instance count, HeaderBatchStatus one comma-
// separated token per instance ("ok" or the failing error kind, e.g.
// "input"), and — only when some instance failed — HeaderBatchErrors a
// JSON string array with one message per instance ("" for survivors). The
// body concatenates the output frames of the surviving instances in
// instance order; failed instances contribute no frame.
const (
	HeaderBatch       = "Distal-Batch"
	HeaderBatchStatus = "Distal-Batch-Status"
	HeaderBatchErrors = "Distal-Batch-Errors"
)

// BatchStatusOK is the HeaderBatchStatus token of a surviving instance.
const BatchStatusOK = "ok"

// FillWire marks an input that arrives as a wire frame instead of a fill.
const FillWire = "wire"

// RunRequest is the JSON envelope of one run: the workload named exactly as
// in distal.Request, plus one directive per tensor saying where its data
// comes from. Tensors without an Inputs entry default to "zero" (outputs
// usually start zeroed anyway).
type RunRequest struct {
	Stmt     string            `json:"stmt"`
	Shapes   map[string][]int  `json:"shapes"`
	Formats  map[string]string `json:"formats,omitempty"`
	Schedule string            `json:"schedule,omitempty"`
	// Stmts is the multi-statement form: a program whose statements feed
	// intermediates to one another, executed as a plan DAG with the
	// intermediates kept distributed between stages. Mutually exclusive
	// with Stmt/Formats/Schedule; Shapes declares leaf inputs only, and
	// only leaf inputs may carry Inputs directives — wire frames ride in
	// the program's leaf first-use order (program.Program Inputs), and the
	// response streams the last statement's output.
	Stmts []StmtSpec `json:"stmts,omitempty"`
	// Inputs maps tensor name -> "wire" | "zero" | "ones" | "rand:<seed>".
	// "wire" tensors ride as frames after the JSON section, in statement
	// order; fills are materialized server-side so a client can exercise a
	// plan without shipping the data.
	Inputs map[string]string `json:"inputs,omitempty"`
	// Batch executes N independent problem instances through one cached
	// plan in a single walk. Absent (nil) means the legacy single-instance
	// protocol. When set, the body's frames carry the instances
	// back-to-back in instance-major order — instance 0's wire-marked
	// tensors in statement order, then instance 1's, and so on — and fills
	// materialize per instance ("rand:<seed>" becomes seed+i for instance
	// i, see ApplyFillInstance). The response streams one output frame per
	// surviving instance, concatenated in instance order, with per-instance
	// failures reported in the batch headers. Zero, negative, or
	// over-the-server-cap values are rejected as input errors (422).
	Batch *int `json:"batch,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// StmtSpec is one statement of a multi-statement run: the index notation
// text plus that statement's own format annotations and schedule (empty
// schedule means the server auto-schedules the stage).
type StmtSpec struct {
	Stmt     string            `json:"stmt"`
	Formats  map[string]string `json:"formats,omitempty"`
	Schedule string            `json:"schedule,omitempty"`
}

// ApplyFill materializes a fill directive into t: "zero", "ones", or
// "rand:<seed>" (the deterministic tensor.FillRandom stream, so client and
// server can reproduce each other's fills bit-identically).
func ApplyFill(t *tensor.Dense, fill string) error {
	switch {
	case fill == "" || fill == "zero":
		t.Zero()
	case fill == "ones":
		t.Fill(1)
	case strings.HasPrefix(fill, "rand:"):
		seed, err := strconv.ParseInt(fill[len("rand:"):], 10, 64)
		if err != nil {
			return fmt.Errorf("bad fill %q: rand wants an integer seed", fill)
		}
		t.FillRandom(seed)
	default:
		return fmt.Errorf("bad fill %q (want %q, \"zero\", \"ones\", or \"rand:<seed>\")", fill, FillWire)
	}
	return nil
}

// ApplyFillInstance materializes a fill directive for one instance of a
// batched run: "zero" and "ones" are identical across instances, while
// "rand:<seed>" draws instance inst's data from seed+inst — so a batch of
// rand-filled instances exercises N distinct data sets, and both ends of
// the wire can reproduce every instance bit-identically. Instance 0 equals
// ApplyFill.
func ApplyFillInstance(t *tensor.Dense, fill string, inst int) error {
	if strings.HasPrefix(fill, "rand:") {
		seed, err := strconv.ParseInt(fill[len("rand:"):], 10, 64)
		if err != nil {
			return fmt.Errorf("bad fill %q: rand wants an integer seed", fill)
		}
		t.FillRandom(seed + int64(inst))
		return nil
	}
	return ApplyFill(t, fill)
}

// ValidFill reports whether fill is a well-formed directive ("wire"
// included).
func ValidFill(fill string) bool {
	if fill == FillWire {
		return true
	}
	probe := tensor.New("", 0)
	return ApplyFill(probe, fill) == nil
}

// WriteJSONSection writes the length-prefixed JSON section of a framed run
// body.
func WriteJSONSection(w io.Writer, body []byte) error {
	if len(body) > MaxJSONSection {
		return formatErrf("JSON section of %d bytes exceeds the limit of %d", len(body), MaxJSONSection)
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(body)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadJSONSection reads the length-prefixed JSON section, leaving r
// positioned at the first tensor frame.
func ReadJSONSection(r io.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, formatErrf("truncated JSON section length: %v", err)
	}
	size := binary.LittleEndian.Uint32(n[:])
	if size > MaxJSONSection {
		return nil, formatErrf("JSON section of %d bytes exceeds the limit of %d", size, MaxJSONSection)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, formatErrf("truncated JSON section: %v", err)
	}
	return body, nil
}

// RunStats is the metric set a run response carries in Distal-* headers.
type RunStats struct {
	PlanKey      string
	Cached       bool
	Output       string
	TimeS        float64
	GFlops       float64
	Copies       int64
	IntraBytes   int64
	InterBytes   int64
	PeakMemBytes int64
	CompileMS    float64
	// RequestID is the server's request id (HeaderRequestID); the serve
	// middleware owns the header, so SetHeaders writes it only when set.
	RequestID string
	// Stages carries the per-stage rows of a multi-statement run; empty on
	// single-statement runs.
	Stages []StageInfo
}

// SetHeaders writes the stats onto an HTTP header block.
func (s *RunStats) SetHeaders(h http.Header) {
	h.Set(HeaderPlanKey, s.PlanKey)
	h.Set(HeaderCached, strconv.FormatBool(s.Cached))
	h.Set(HeaderOutput, s.Output)
	h.Set(HeaderTimeS, strconv.FormatFloat(s.TimeS, 'g', -1, 64))
	h.Set(HeaderGFlops, strconv.FormatFloat(s.GFlops, 'g', -1, 64))
	h.Set(HeaderCopies, strconv.FormatInt(s.Copies, 10))
	h.Set(HeaderIntraB, strconv.FormatInt(s.IntraBytes, 10))
	h.Set(HeaderInterB, strconv.FormatInt(s.InterBytes, 10))
	h.Set(HeaderPeakMemB, strconv.FormatInt(s.PeakMemBytes, 10))
	h.Set(HeaderCompileMS, strconv.FormatFloat(s.CompileMS, 'g', -1, 64))
	if s.RequestID != "" {
		h.Set(HeaderRequestID, s.RequestID)
	}
	if len(s.Stages) > 0 {
		if enc, err := json.Marshal(s.Stages); err == nil {
			h.Set(HeaderStages, string(enc))
		}
	}
}

// StatsFromHeaders parses the stats a response carried (absent or malformed
// numeric headers parse as zero: stats are informational, not load-bearing).
func StatsFromHeaders(h http.Header) RunStats {
	f := func(name string) float64 {
		v, _ := strconv.ParseFloat(h.Get(name), 64)
		return v
	}
	i := func(name string) int64 {
		v, _ := strconv.ParseInt(h.Get(name), 10, 64)
		return v
	}
	st := RunStats{
		PlanKey:      h.Get(HeaderPlanKey),
		Cached:       h.Get(HeaderCached) == "true",
		Output:       h.Get(HeaderOutput),
		TimeS:        f(HeaderTimeS),
		GFlops:       f(HeaderGFlops),
		Copies:       i(HeaderCopies),
		IntraBytes:   i(HeaderIntraB),
		InterBytes:   i(HeaderInterB),
		PeakMemBytes: i(HeaderPeakMemB),
		CompileMS:    f(HeaderCompileMS),
		RequestID:    h.Get(HeaderRequestID),
	}
	if raw := h.Get(HeaderStages); raw != "" {
		_ = json.Unmarshal([]byte(raw), &st.Stages) // informational, like the rest
	}
	return st
}
