// Package distnot implements tensor distribution notation (§3.2, Fig. 4 of
// the DISTAL paper): statements of the form
//
//	T d+ ↦ n+ M
//
// that map the dimensions of a tensor T onto the dimensions of a machine M.
// Each tensor dimension is named; each machine dimension is either one of
// those names (the tensor dimension is partitioned across it), a constant
// (the partition is fixed to that index), or '*' (the partition is broadcast
// across the whole machine dimension).
package distnot

import (
	"fmt"
	"strings"

	"distal/internal/machine"
	"distal/internal/tensor"
)

// NameKind classifies a machine-dimension name.
type NameKind int

const (
	// Dim partitions a tensor dimension across this machine dimension.
	Dim NameKind = iota
	// Fixed pins the partition to one index of this machine dimension.
	Fixed
	// Broadcast replicates the partition across this machine dimension.
	Broadcast
)

// MachineName is one entry of the machine-side index sequence.
type MachineName struct {
	Kind  NameKind
	Var   string // for Dim: the tensor dimension name
	Index int    // for Fixed: the pinned coordinate
}

func (n MachineName) String() string {
	switch n.Kind {
	case Dim:
		return n.Var
	case Fixed:
		return fmt.Sprint(n.Index)
	case Broadcast:
		return "*"
	default:
		return "?"
	}
}

// PartitionFunc selects the abstract partitioning function P of §3.2.
type PartitionFunc int

const (
	// Blocked maps contiguous coordinate ranges to the same color
	// (the paper's choice).
	Blocked PartitionFunc = iota
	// Cyclic maps adjacent coordinates to different colors round-robin.
	Cyclic
)

func (p PartitionFunc) String() string {
	if p == Cyclic {
		return "cyclic"
	}
	return "blocked"
}

// Statement is one tensor distribution notation statement for one machine
// level.
type Statement struct {
	// TensorDims names each dimension of the tensor, in order.
	TensorDims []string
	// MachineDims names each dimension of the machine, in order.
	MachineDims []MachineName
	// Func is the partitioning function (Blocked unless stated otherwise).
	Func PartitionFunc
}

// Parse parses the compact form used throughout the paper, e.g.
//
//	"xy->xy"    two-dimensional tiling                 (Fig. 5c)
//	"xy->x"     row-wise distribution                  (Fig. 5b)
//	"xy->xy0"   tiles fixed to face 0 of dimension 3   (Fig. 5d)
//	"xy->xy*"   tiles broadcast over dimension 3       (Fig. 5e)
//	"xyz->xy"   3-tensor onto a 2-D grid               (Fig. 5f)
//
// Every rune left of "->" is a tensor dimension name; on the right, a letter
// is a partitioned dimension, a digit is a Fixed coordinate, and '*' is a
// Broadcast. Whitespace is ignored.
func Parse(src string) (*Statement, error) {
	clean := strings.ReplaceAll(src, " ", "")
	parts := strings.Split(clean, "->")
	if len(parts) != 2 {
		return nil, fmt.Errorf("distnot: %q must contain exactly one \"->\"", src)
	}
	s := &Statement{}
	for _, r := range parts[0] {
		if !isNameRune(r) {
			return nil, fmt.Errorf("distnot: bad tensor dimension name %q in %q", string(r), src)
		}
		s.TensorDims = append(s.TensorDims, string(r))
	}
	for _, r := range parts[1] {
		switch {
		case r == '*':
			s.MachineDims = append(s.MachineDims, MachineName{Kind: Broadcast})
		case r >= '0' && r <= '9':
			s.MachineDims = append(s.MachineDims, MachineName{Kind: Fixed, Index: int(r - '0')})
		case isNameRune(r):
			s.MachineDims = append(s.MachineDims, MachineName{Kind: Dim, Var: string(r)})
		default:
			return nil, fmt.Errorf("distnot: bad machine dimension name %q in %q", string(r), src)
		}
	}
	if err := s.check(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse but panics on error.
func MustParse(src string) *Statement {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func isNameRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}

// check enforces the static validity rules of §3.2 that do not depend on a
// concrete tensor or machine: no duplicate names on either side, and every
// machine-side name must appear on the tensor side.
func (s *Statement) check() error {
	seen := map[string]bool{}
	for _, n := range s.TensorDims {
		if seen[n] {
			return fmt.Errorf("distnot: duplicate tensor dimension name %q", n)
		}
		seen[n] = true
	}
	mseen := map[string]bool{}
	for _, n := range s.MachineDims {
		if n.Kind != Dim {
			continue
		}
		if mseen[n.Var] {
			return fmt.Errorf("distnot: duplicate machine dimension name %q", n.Var)
		}
		mseen[n.Var] = true
		if !seen[n.Var] {
			return fmt.Errorf("distnot: machine dimension name %q not present among tensor dimensions", n.Var)
		}
	}
	return nil
}

// Validate checks the statement against a concrete tensor rank and machine
// grid: |X| = dim T, |Y| = dim M, and Fixed coordinates must be in range.
func (s *Statement) Validate(tensorRank int, grid machine.Grid) error {
	if err := s.check(); err != nil {
		return err
	}
	if len(s.TensorDims) != tensorRank {
		return fmt.Errorf("distnot: statement names %d tensor dimensions but tensor has rank %d",
			len(s.TensorDims), tensorRank)
	}
	if len(s.MachineDims) != grid.Rank() {
		return fmt.Errorf("distnot: statement names %d machine dimensions but machine has rank %d",
			len(s.MachineDims), grid.Rank())
	}
	for d, n := range s.MachineDims {
		if n.Kind == Fixed && (n.Index < 0 || n.Index >= grid.Dims[d]) {
			return fmt.Errorf("distnot: fixed coordinate %d out of machine dimension %d (extent %d)",
				n.Index, d, grid.Dims[d])
		}
	}
	return nil
}

// machineDimOf returns the machine dimension partitioning tensor dimension d,
// or -1 if that tensor dimension is unpartitioned.
func (s *Statement) machineDimOf(d int) int {
	name := s.TensorDims[d]
	for j, n := range s.MachineDims {
		if n.Kind == Dim && n.Var == name {
			return j
		}
	}
	return -1
}

// RectFor returns the sub-rectangle of a tensor with the given shape held by
// the processor at coordinate proc in grid, and whether that processor holds
// any piece at all (processors off a Fixed face hold nothing). RectFor
// implements the composition F∘P of §3.2 for the Blocked partitioning
// function, restricted to rect-describable pieces.
func (s *Statement) RectFor(shape []int, grid machine.Grid, proc []int) (tensor.Rect, bool) {
	if s.Func != Blocked {
		panic("distnot: RectFor supports only the Blocked partitioning function; use OwnedCoords for Cyclic")
	}
	if len(shape) != len(s.TensorDims) || len(proc) != len(s.MachineDims) {
		panic(fmt.Sprintf("distnot: RectFor rank mismatch: shape %v, proc %v vs statement %s", shape, proc, s))
	}
	for j, n := range s.MachineDims {
		if n.Kind == Fixed && proc[j] != n.Index {
			return tensor.Rect{}, false
		}
	}
	r := tensor.FullRect(shape)
	for d := range shape {
		j := s.machineDimOf(d)
		if j < 0 {
			continue
		}
		lo, hi := tensor.BlockRange(shape[d], grid.Dims[j], proc[j])
		r.Lo[d], r.Hi[d] = lo, hi
	}
	return r, true
}

// OwnersOf returns the coordinates of every processor whose piece contains
// the tensor coordinate p: the partitioned dimensions select a unique color
// and Fixed/Broadcast machine dimensions expand it per F of §3.2.
func (s *Statement) OwnersOf(shape []int, grid machine.Grid, p []int) [][]int {
	procs := [][]int{nil}
	for j, n := range s.MachineDims {
		var choices []int
		switch n.Kind {
		case Fixed:
			choices = []int{n.Index}
		case Broadcast:
			for x := 0; x < grid.Dims[j]; x++ {
				choices = append(choices, x)
			}
		case Dim:
			d := tensorDimIndex(s.TensorDims, n.Var)
			choices = []int{blockOf(shape[d], grid.Dims[j], p[d], s.Func)}
		}
		var next [][]int
		for _, prefix := range procs {
			for _, c := range choices {
				next = append(next, append(append([]int(nil), prefix...), c))
			}
		}
		procs = next
	}
	return procs
}

func tensorDimIndex(dims []string, name string) int {
	for i, d := range dims {
		if d == name {
			return i
		}
	}
	panic(fmt.Sprintf("distnot: unknown tensor dimension %q", name))
}

// blockOf returns the color of coordinate x when an extent of n is divided
// into count pieces under the given partitioning function.
func blockOf(n, count, x int, f PartitionFunc) int {
	switch f {
	case Blocked:
		size := (n + count - 1) / count
		return x / size
	case Cyclic:
		return x % count
	default:
		panic("distnot: unknown partitioning function")
	}
}

// OwnedCoords returns, for each coordinate along tensor dimension d, whether
// processor index pi of a machine dimension with the given extent owns it.
// This exposes the Cyclic function for analyses that cannot use rects.
func OwnedCoords(n, count, pi int, f PartitionFunc) []int {
	switch f {
	case Blocked:
		lo, hi := tensor.BlockRange(n, count, pi)
		out := make([]int, 0, hi-lo)
		for x := lo; x < hi; x++ {
			out = append(out, x)
		}
		return out
	case Cyclic:
		return tensor.CyclicSlots(n, count, pi)
	default:
		panic("distnot: unknown partitioning function")
	}
}

// Replicas returns how many processors hold each piece: the product of the
// extents of Broadcast dimensions.
func (s *Statement) Replicas(grid machine.Grid) int {
	n := 1
	for j, name := range s.MachineDims {
		if name.Kind == Broadcast {
			n *= grid.Dims[j]
		}
	}
	return n
}

func (s *Statement) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(s.TensorDims, ""))
	b.WriteString("->")
	for _, n := range s.MachineDims {
		b.WriteString(n.String())
	}
	if s.Func == Cyclic {
		b.WriteString(" (cyclic)")
	}
	return b.String()
}
