package distnot

import (
	"testing"

	"distal/internal/machine"
	"distal/internal/tensor"
)

func TestParseForms(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"x->x", "x->x"},
		{"xy->x", "xy->x"},
		{"xy->xy", "xy->xy"},
		{"xy->xy0", "xy->xy0"},
		{"xy->xy*", "xy->xy*"},
		{"xyz->xy", "xyz->xy"},
		{"xy -> xy*", "xy->xy*"},
	}
	for _, c := range cases {
		s, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if s.String() != c.want {
			t.Fatalf("Parse(%q).String() = %q, want %q", c.src, s.String(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"xy",        // no arrow
		"xx->x",     // duplicate tensor name
		"xy->xx",    // duplicate machine name
		"xy->xz",    // z not a tensor dim
		"x y -> x!", // bad rune
		"xy->x->y",  // two arrows
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestValidateConcrete(t *testing.T) {
	g := machine.NewGrid(2, 2)
	if err := MustParse("xy->xy").Validate(2, g); err != nil {
		t.Fatal(err)
	}
	if err := MustParse("xyz->xy").Validate(2, g); err == nil {
		t.Fatal("rank mismatch should fail")
	}
	if err := MustParse("xy->x").Validate(2, g); err == nil {
		t.Fatal("machine rank mismatch should fail")
	}
	if err := MustParse("xy->xy5").Validate(2, machine.NewGrid(2, 2, 2)); err == nil {
		t.Fatal("fixed coordinate out of range should fail")
	}
}

// TestFig5aBlockedVector: T x->x M with |T|=100, |M|=10 gives 10 elements per
// processor.
func TestFig5aBlockedVector(t *testing.T) {
	s := MustParse("x->x")
	g := machine.NewGrid(10)
	for p := 0; p < 10; p++ {
		r, ok := s.RectFor([]int{100}, g, []int{p})
		if !ok {
			t.Fatalf("proc %d should hold a piece", p)
		}
		want := tensor.NewRect([]int{p * 10}, []int{p*10 + 10})
		if !r.Equal(want) {
			t.Fatalf("proc %d rect = %v, want %v", p, r, want)
		}
	}
}

// TestFig5bRowWise: T xy->x M partitions rows; columns span fully.
func TestFig5bRowWise(t *testing.T) {
	s := MustParse("xy->x")
	g := machine.NewGrid(4)
	r, ok := s.RectFor([]int{8, 6}, g, []int{2})
	if !ok || !r.Equal(tensor.NewRect([]int{4, 0}, []int{6, 6})) {
		t.Fatalf("rect = %v", r)
	}
}

// TestFig5cTiled: T xy->xy M two-dimensional tiling.
func TestFig5cTiled(t *testing.T) {
	s := MustParse("xy->xy")
	g := machine.NewGrid(2, 2)
	r, ok := s.RectFor([]int{4, 4}, g, []int{1, 0})
	if !ok || !r.Equal(tensor.NewRect([]int{2, 0}, []int{4, 2})) {
		t.Fatalf("rect = %v", r)
	}
}

// TestFig5dFixed: T xy->xy0 M restricts tiles to the face z=0.
func TestFig5dFixed(t *testing.T) {
	s := MustParse("xy->xy0")
	g := machine.NewGrid(2, 2, 2)
	if _, ok := s.RectFor([]int{4, 4}, g, []int{1, 1, 1}); ok {
		t.Fatal("processor off the fixed face should hold nothing")
	}
	r, ok := s.RectFor([]int{4, 4}, g, []int{1, 1, 0})
	if !ok || !r.Equal(tensor.NewRect([]int{2, 2}, []int{4, 4})) {
		t.Fatalf("rect = %v", r)
	}
}

// TestFig5eBroadcast: T xy->xy* M replicates tiles across dimension 3.
func TestFig5eBroadcast(t *testing.T) {
	s := MustParse("xy->xy*")
	g := machine.NewGrid(2, 2, 2)
	for z := 0; z < 2; z++ {
		r, ok := s.RectFor([]int{4, 4}, g, []int{0, 1, z})
		if !ok || !r.Equal(tensor.NewRect([]int{0, 2}, []int{2, 4})) {
			t.Fatalf("z=%d rect = %v", z, r)
		}
	}
	if got := s.Replicas(g); got != 2 {
		t.Fatalf("Replicas = %d, want 2", got)
	}
}

// TestFig5f3Tensor: T xyz->xy M maps a 3-tensor onto a 2-D grid; the z
// dimension spans fully.
func TestFig5f3Tensor(t *testing.T) {
	s := MustParse("xyz->xy")
	g := machine.NewGrid(2, 2)
	r, ok := s.RectFor([]int{4, 4, 6}, g, []int{0, 1})
	if !ok || !r.Equal(tensor.NewRect([]int{0, 2, 0}, []int{2, 4, 6})) {
		t.Fatalf("rect = %v", r)
	}
}

// TestRunningExampleSemantics reproduces the worked P and F example of §3.2:
// T xy->xy* M with T 2x2 and M 2x2x2.
func TestRunningExampleSemantics(t *testing.T) {
	s := MustParse("xy->xy*")
	g := machine.NewGrid(2, 2, 2)
	shape := []int{2, 2}
	// Every coordinate (x,y) of T should be owned by exactly the processors
	// {(x,y,0), (x,y,1)}.
	tensor.FullRect(shape).Points(func(p []int) {
		owners := s.OwnersOf(shape, g, p)
		if len(owners) != 2 {
			t.Fatalf("coordinate %v owned by %v, want 2 owners", p, owners)
		}
		for zi, o := range owners {
			if o[0] != p[0] || o[1] != p[1] || o[2] != zi {
				t.Fatalf("coordinate %v owner %d = %v", p, zi, o)
			}
		}
	})
}

func TestOwnersOfFixed(t *testing.T) {
	s := MustParse("xy->xy0")
	g := machine.NewGrid(2, 2, 2)
	owners := s.OwnersOf([]int{4, 4}, g, []int{3, 1})
	if len(owners) != 1 {
		t.Fatalf("owners = %v", owners)
	}
	o := owners[0]
	if o[0] != 1 || o[1] != 0 || o[2] != 0 {
		t.Fatalf("owner = %v, want [1 0 0]", o)
	}
}

// TestOwnersMatchRects: the processor returned by OwnersOf must be exactly
// the processors whose RectFor contains the coordinate.
func TestOwnersMatchRects(t *testing.T) {
	for _, src := range []string{"xy->xy", "xy->x", "xy->xy*", "xy->xy1", "xyz->xz"} {
		s := MustParse(src)
		var g machine.Grid
		var shape []int
		if len(s.MachineDims) == 3 {
			g = machine.NewGrid(2, 3, 2)
		} else if len(s.MachineDims) == 2 {
			g = machine.NewGrid(2, 3)
		} else {
			g = machine.NewGrid(3)
		}
		if len(s.TensorDims) == 3 {
			shape = []int{4, 5, 6}
		} else {
			shape = []int{4, 5}
		}
		tensor.FullRect(shape).Points(func(p []int) {
			ownerSet := map[string]bool{}
			for _, o := range s.OwnersOf(shape, g, p) {
				ownerSet[fmtCoord(o)] = true
			}
			g.Points(func(proc []int) {
				r, ok := s.RectFor(shape, g, proc)
				holds := ok && r.Contains(p)
				if holds != ownerSet[fmtCoord(proc)] {
					t.Fatalf("%s: proc %v holds %v: rect says %v, owners say %v",
						src, proc, p, holds, ownerSet[fmtCoord(proc)])
				}
			})
		})
	}
}

func fmtCoord(p []int) string {
	out := ""
	for _, x := range p {
		out += string(rune('0'+x)) + ","
	}
	return out
}

// TestPiecesTile: for distributions with no broadcast/fixed dims, pieces must
// tile the tensor exactly (each coordinate owned exactly once).
func TestPiecesTile(t *testing.T) {
	s := MustParse("xy->xy")
	g := machine.NewGrid(3, 2)
	shape := []int{7, 5} // non-divisible extents
	count := map[string]int{}
	g.Points(func(proc []int) {
		r, ok := s.RectFor(shape, g, proc)
		if !ok {
			t.Fatal("all procs should hold pieces")
		}
		r.Points(func(p []int) { count[fmtCoord(p)]++ })
	})
	total := 0
	for _, c := range count {
		if c != 1 {
			t.Fatal("coordinate owned more than once")
		}
		total++
	}
	if total != 35 {
		t.Fatalf("covered %d coordinates, want 35", total)
	}
}

func TestCyclicOwnedCoords(t *testing.T) {
	got := OwnedCoords(7, 3, 1, Cyclic)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("cyclic coords = %v, want [1 4]", got)
	}
	blocked := OwnedCoords(7, 3, 1, Blocked)
	if len(blocked) != 3 || blocked[0] != 3 {
		t.Fatalf("blocked coords = %v, want [3 4 5]", blocked)
	}
}

func TestHierarchicalPlacement(t *testing.T) {
	// Paper example: [T xy->xy M, T zw->z M]: 2-D tiling at the node level,
	// row-wise partition of each tile per GPU.
	gpus := machine.New(machine.NewGrid(2), machine.GPUFBMem, machine.GPU)
	m := machine.New(machine.NewGrid(2, 2), machine.SysMem, machine.CPU).WithChild(gpus)
	p := MustParsePlacement("xy->xy; zw->z")
	if err := p.Validate(2, m); err != nil {
		t.Fatal(err)
	}
	shape := []int{8, 8}
	// Node (1,0), GPU 1: node tile rows [4,8) cols [0,4); GPU splits rows:
	// GPU 1 gets rows [6,8).
	r, ok := p.RectFor(shape, m, []int{1, 0, 1})
	if !ok {
		t.Fatal("leaf should hold a piece")
	}
	want := tensor.NewRect([]int{6, 0}, []int{8, 4})
	if !r.Equal(want) {
		t.Fatalf("rect = %v, want %v", r, want)
	}
}

func TestPlacementFewerLevelsReplicates(t *testing.T) {
	gpus := machine.New(machine.NewGrid(4), machine.GPUFBMem, machine.GPU)
	m := machine.New(machine.NewGrid(2), machine.SysMem, machine.CPU).WithChild(gpus)
	p := NewPlacement(MustParse("xy->x"))
	r0, ok0 := p.RectFor([]int{8, 8}, m, []int{1, 0})
	r1, ok1 := p.RectFor([]int{8, 8}, m, []int{1, 3})
	if !ok0 || !ok1 || !r0.Equal(r1) {
		t.Fatalf("pieces should be replicated across the unspecified level: %v vs %v", r0, r1)
	}
}

func TestPlacementValidateTooManyLevels(t *testing.T) {
	m := machine.New(machine.NewGrid(2), machine.SysMem, machine.CPU)
	p := MustParsePlacement("xy->x; xy->x")
	if err := p.Validate(2, m); err == nil {
		t.Fatal("expected error for more placement levels than machine levels")
	}
}

func TestPlacementString(t *testing.T) {
	p := MustParsePlacement("xy->xy; zw->z")
	if p.String() != "xy->xy; zw->z" {
		t.Fatalf("String() = %q", p.String())
	}
}
