package distnot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distal/internal/machine"
	"distal/internal/tensor"
)

// TestHierarchicalRefinementProperty: the leaf pieces of a hierarchical
// placement must refine their node piece — every leaf rect is contained in
// the rect its node holds at level 0, and the leaves of one node exactly
// tile that node's piece when the inner statement has no broadcast or fixed
// dimensions.
func TestHierarchicalRefinementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := rng.Intn(3)+1, rng.Intn(3)+1
		gpus := rng.Intn(3) + 1
		rows, cols := rng.Intn(12)+gpus, rng.Intn(12)+1
		child := machine.New(machine.NewGrid(gpus), machine.GPUFBMem, machine.GPU)
		m := machine.New(machine.NewGrid(nx, ny), machine.SysMem, machine.CPU).WithChild(child)
		p := MustParsePlacement("xy->xy; zw->z")
		shape := []int{rows, cols}
		outer := p.Levels[0]
		ok := true
		m.Grid.Points(func(node []int) {
			nodeRect, has := outer.RectFor(shape, m.Grid, node)
			if !has {
				ok = false
				return
			}
			covered := 0
			for g := 0; g < gpus; g++ {
				leaf := append(append([]int{}, node...), g)
				r, has := p.RectFor(shape, m, leaf)
				if !has {
					ok = false
					return
				}
				if !nodeRect.ContainsRect(r) {
					ok = false
					return
				}
				covered += r.Volume()
			}
			if covered != nodeRect.Volume() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOwnersCoverEveryCoordinateProperty: for any valid statement without
// empty pieces, every tensor coordinate has at least one owner, and the
// number of owners equals Replicas for statements without Fixed dims.
func TestOwnersCoverEveryCoordinateProperty(t *testing.T) {
	stmts := []string{"xy->xy", "xy->x*", "xy->*y", "xy->xy*", "xyz->zx", "x->**"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustParse(stmts[rng.Intn(len(stmts))])
		dims := make([]int, len(s.MachineDims))
		for d := range dims {
			dims[d] = rng.Intn(3) + 1
		}
		g := machine.NewGrid(dims...)
		shape := make([]int, len(s.TensorDims))
		for d := range shape {
			shape[d] = rng.Intn(6) + 1
		}
		ok := true
		tensor.FullRect(shape).Points(func(p []int) {
			owners := s.OwnersOf(shape, g, p)
			if len(owners) == 0 || len(owners) != s.Replicas(g) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
