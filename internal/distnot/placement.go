package distnot

import (
	"fmt"
	"strings"

	"distal/internal/machine"
	"distal/internal/tensor"
)

// Placement is a hierarchical data distribution: one Statement per machine
// level (§3.2, "Hierarchy"). Level 0 distributes the tensor over the
// outermost machine grid; level 1 distributes each level-0 piece over the
// child grid; and so on.
type Placement struct {
	Levels []*Statement
}

// NewPlacement builds a placement from per-level statements.
func NewPlacement(levels ...*Statement) *Placement {
	return &Placement{Levels: levels}
}

// ParsePlacement parses semicolon-separated per-level statements, e.g.
// "xy->xy; xy->x" for a 2-D tiling over nodes with a row-wise split of each
// tile over the GPUs of a node.
func ParsePlacement(src string) (*Placement, error) {
	var levels []*Statement
	for _, part := range strings.Split(src, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		s, err := Parse(part)
		if err != nil {
			return nil, err
		}
		levels = append(levels, s)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("distnot: empty placement %q", src)
	}
	return &Placement{Levels: levels}, nil
}

// MustParsePlacement is ParsePlacement but panics on error.
func MustParsePlacement(src string) *Placement {
	p, err := ParsePlacement(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks each level's statement against the corresponding machine
// level.
func (p *Placement) Validate(tensorRank int, m *machine.Machine) error {
	levels := m.Levels()
	if len(p.Levels) > len(levels) {
		return fmt.Errorf("distnot: placement has %d levels but machine has %d", len(p.Levels), len(levels))
	}
	for i, s := range p.Levels {
		if err := s.Validate(tensorRank, levels[i].Grid); err != nil {
			return fmt.Errorf("distnot: level %d: %w", i, err)
		}
	}
	return nil
}

// RectFor returns the sub-rectangle of a tensor held by the leaf processor
// with the given leaf-grid coordinate (the concatenation of per-level
// coordinates) and whether the leaf holds a piece. When the placement has
// fewer levels than the machine, deeper levels replicate the piece.
func (p *Placement) RectFor(shape []int, m *machine.Machine, leaf []int) (tensor.Rect, bool) {
	levels := m.Levels()
	rect := tensor.FullRect(shape)
	off := 0
	for li, lvl := range levels {
		g := lvl.Grid
		sub := leaf[off : off+g.Rank()]
		off += g.Rank()
		if li >= len(p.Levels) {
			continue // replicated below the last specified level
		}
		s := p.Levels[li]
		// The level's statement partitions the *current piece*: apply it to
		// the piece's shape, then translate by the piece's origin.
		pieceShape := make([]int, rect.Rank())
		for d := range pieceShape {
			pieceShape[d] = rect.Extent(d)
		}
		sr, ok := s.RectFor(pieceShape, g, sub)
		if !ok {
			return tensor.Rect{}, false
		}
		for d := range sr.Lo {
			sr.Lo[d] += rect.Lo[d]
			sr.Hi[d] += rect.Lo[d]
		}
		rect = sr
	}
	return rect, true
}

// String renders the placement with "; " between levels.
func (p *Placement) String() string {
	parts := make([]string, len(p.Levels))
	for i, s := range p.Levels {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}
