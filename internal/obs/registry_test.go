package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text exposition format byte for
// byte — family ordering, HELP/TYPE lines, label rendering and escaping,
// histogram bucket cumulation, and the standard bucket bounds. A diff here
// means every dashboard scraping /metrics changes.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("distal_http_requests_total", "Requests by endpoint.", []string{"endpoint"}, "/v1/run").Add(3)
	r.Counter("distal_http_requests_total", "Requests by endpoint.", []string{"endpoint"}, "/v1/batch").Inc()
	r.Gauge("distal_inflight_requests", "Requests currently executing.", nil).Set(2)
	r.GaugeFunc("distal_uptime_seconds", "Seconds since server start.", nil, func() float64 { return 1.5 })
	h := r.Histogram("distal_queue_wait_seconds", "Queue wait before a worker slot.", []float64{0.001, 0.01, 0.1}, nil)
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	r.Counter("distal_errors_total", "Errors by kind.", []string{"endpoint", "kind"}, "/v1/run", `bad"kind`+"\n").Inc()

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	want := `# HELP distal_errors_total Errors by kind.
# TYPE distal_errors_total counter
distal_errors_total{endpoint="/v1/run",kind="bad\"kind\n"} 1
# HELP distal_http_requests_total Requests by endpoint.
# TYPE distal_http_requests_total counter
distal_http_requests_total{endpoint="/v1/batch"} 1
distal_http_requests_total{endpoint="/v1/run"} 3
# HELP distal_inflight_requests Requests currently executing.
# TYPE distal_inflight_requests gauge
distal_inflight_requests 2
# HELP distal_queue_wait_seconds Queue wait before a worker slot.
# TYPE distal_queue_wait_seconds histogram
distal_queue_wait_seconds_bucket{le="0.001"} 2
distal_queue_wait_seconds_bucket{le="0.01"} 2
distal_queue_wait_seconds_bucket{le="0.1"} 3
distal_queue_wait_seconds_bucket{le="+Inf"} 4
distal_queue_wait_seconds_sum 3.051
distal_queue_wait_seconds_count 4
# HELP distal_uptime_seconds Seconds since server start.
# TYPE distal_uptime_seconds gauge
distal_uptime_seconds 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestStandardBuckets pins the shared bucket bounds: CI's metrics smoke and
// any recording rules key off these exact le= values.
func TestStandardBuckets(t *testing.T) {
	wantLatency := []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	if len(LatencyBuckets) != len(wantLatency) {
		t.Fatalf("LatencyBuckets: got %d bounds, want %d", len(LatencyBuckets), len(wantLatency))
	}
	for i := range wantLatency {
		if LatencyBuckets[i] != wantLatency[i] {
			t.Errorf("LatencyBuckets[%d] = %v, want %v", i, LatencyBuckets[i], wantLatency[i])
		}
	}
	wantSize := []float64{1, 2, 4, 8, 16, 32, 64}
	if len(SizeBuckets) != len(wantSize) {
		t.Fatalf("SizeBuckets: got %d bounds, want %d", len(SizeBuckets), len(wantSize))
	}
	for i := range wantSize {
		if SizeBuckets[i] != wantSize[i] {
			t.Errorf("SizeBuckets[%d] = %v, want %v", i, SizeBuckets[i], wantSize[i])
		}
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// increments, observations, and scrapes interleaved — and then checks the
// totals. Run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("reqs_total", "test", []string{"ep"}, "/run")
			h := r.Histogram("lat_seconds", "test", []float64{0.5}, nil)
			g := r.Gauge("inflight", "test", nil)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%2))
				g.Add(1)
				g.Add(-1)
				if i%100 == 0 {
					var b strings.Builder
					if _, err := r.WriteTo(&b); err != nil {
						t.Errorf("WriteTo: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("reqs_total", "test", []string{"ep"}, "/run").Value(); got != workers*per {
		t.Errorf("counter = %v, want %d", got, workers*per)
	}
	h := r.Histogram("lat_seconds", "test", []float64{0.5}, nil)
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per/2 {
		t.Errorf("histogram sum = %v, want %d", got, workers*per/2)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter after negative Add = %v, want 5", got)
	}
}
