// Package obs is DISTAL's zero-dependency observability layer: a
// context-carried span tracer whose finished trees export as Chrome
// trace_event JSON (span.go, trace.go), and a hand-rolled metrics registry
// with Prometheus text exposition (registry.go). Both are built for hot
// paths: a span on a disabled context costs one context lookup and no
// allocation, spans on an enabled context allocate from a per-trace slab,
// and every metric is a few atomic operations.
//
// The tracer threads through the whole compile→simulate→bind→run pipeline:
// internal/serve opens a Trace per HTTP request (keyed by the
// Distal-Request-Id header), Session.Compile, the legion executor, and the
// wire codec open child spans off whatever context reaches them, and the
// finished tree lands in a bounded Ring for GET /v1/trace/{id}.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// disabled is the global kill switch: when set, Start returns a nil span
// even on a context that carries a trace. It exists so the obs-overhead
// bench can compare the instrumented and uninstrumented paths under
// identical contexts; servers never set it.
var disabled atomic.Bool

// SetDisabled flips the global instrumentation kill switch. The zero state
// is enabled; tracing still requires a Trace on the context, so programs
// that never call NewTrace pay only the context lookup either way.
func SetDisabled(v bool) { disabled.Store(v) }

// Disabled reports the global kill switch.
func Disabled() bool { return disabled.Load() }

// Attr is one key/value annotation on a span. Values are strings: the
// trace_event args object renders them verbatim, and a fixed shape keeps
// span records allocation-predictable.
type Attr struct {
	Key, Val string
}

// Span is one timed region of a trace. A nil *Span is a valid no-op
// receiver — the disabled path of every instrumentation site — so callers
// never branch:
//
//	ctx, sp := obs.Start(ctx, "compile")
//	defer sp.End()
type Span struct {
	trace  *Trace
	parent int32 // index into trace slab; -1 for the root
	index  int32
	name   string
	start  time.Duration // offset from trace start
	dur    time.Duration // 0 until End
	attrs  []Attr
	ended  bool
}

type ctxKey struct{}

// WithSpan returns a context carrying sp as the current span; child spans
// started from the returned context nest under it.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span, or nil when ctx carries none (or
// instrumentation is globally disabled).
func FromContext(ctx context.Context) *Span {
	if disabled.Load() {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child span under the context's current span and returns a
// context carrying it. On a context without a trace (or with instrumentation
// disabled) it returns ctx unchanged and a nil span, whose End and SetAttr
// are no-ops — the whole call is one context lookup.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.trace.newSpan(name, parent.index)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// StartChild opens a child span directly under sp, for call sites that hold
// a span but no context. A nil receiver returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil || disabled.Load() {
		return nil
	}
	return s.trace.newSpan(name, s.index)
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.trace.mu.Unlock()
}

// End closes the span; the second and later End calls are no-ops, so
// "defer sp.End()" composes with an explicit early End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.trace.begin) - s.start
	}
	s.trace.mu.Unlock()
}
