package obs

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// spanChunk is the slab granularity: spans allocate in fixed-size chunks so
// *Span pointers stay stable while the trace grows (a plain append-backed
// slab would move them), and a typical request costs one chunk allocation
// total.
const spanChunk = 64

// maxSpansPerTrace bounds one trace's slab: a runaway instrumentation loop
// (a span per launch of a huge program) truncates instead of growing without
// bound. Truncated spans are dropped silently; the root records how many.
const maxSpansPerTrace = 4096

// Trace is one request's span tree: a root span plus everything started
// under it, allocated from chunked slabs owned by the trace. All mutation is
// guarded by one mutex — spans may be opened and closed from any goroutine
// (the legion real-task pool does) — and a finished trace is immutable by
// convention: Finish closes the root, and the Ring only hands out finished
// traces.
type Trace struct {
	id    string
	begin time.Time // wall clock at NewTrace; span offsets are monotonic since

	mu      sync.Mutex
	chunks  [][]Span
	spans   []*Span // creation order; spans[0] is the root
	dropped int
}

// NewTrace starts a trace and returns it with a context carrying its root
// span; id becomes the trace's key in a Ring. The caller must Finish the
// trace before exporting or publishing it.
func NewTrace(ctx context.Context, id, rootName string) (*Trace, context.Context) {
	t := &Trace{id: id, begin: time.Now()}
	root := t.newSpan(rootName, -1)
	return t, WithSpan(ctx, root)
}

// ID returns the trace's request id.
func (t *Trace) ID() string { return t.id }

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0]
}

// Finish closes the root span (and any span left open, at the root's end
// time) and stamps the drop count. Call exactly once, after the request's
// last instrumented work.
func (t *Trace) Finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := time.Since(t.begin)
	for _, sp := range t.spans {
		if !sp.ended {
			sp.ended = true
			sp.dur = end - sp.start
		}
	}
	if t.dropped > 0 {
		root := t.spans[0]
		root.attrs = append(root.attrs, Attr{Key: "dropped_spans", Val: fmt.Sprint(t.dropped)})
	}
}

// newSpan allocates a span from the trace's slab. parent is the parent's
// index, -1 for the root.
func (t *Trace) newSpan(name string, parent int32) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		// A dropped span must still nest its children somewhere: hand back
		// the parent so the subtree collapses into it instead of vanishing
		// from the context chain.
		t.dropped++
		if parent >= 0 {
			return t.spans[parent]
		}
		return t.spans[0]
	}
	if n := len(t.chunks); n == 0 || len(t.chunks[n-1]) == cap(t.chunks[n-1]) {
		t.chunks = append(t.chunks, make([]Span, 0, spanChunk))
	}
	chunk := &t.chunks[len(t.chunks)-1]
	*chunk = append(*chunk, Span{
		trace:  t,
		parent: parent,
		index:  int32(len(t.spans)),
		name:   name,
		start:  time.Since(t.begin),
	})
	sp := &(*chunk)[len(*chunk)-1]
	t.spans = append(t.spans, sp)
	return sp
}

// PhaseMS returns the root's direct children as name -> milliseconds,
// summing repeated names (a chain run opens one "run-stage" per stage). It
// is the access log's phase breakdown.
func (t *Trace) PhaseMS() map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	phases := map[string]float64{}
	for _, sp := range t.spans[1:] {
		if sp.parent == 0 {
			phases[sp.name] += float64(sp.dur) / float64(time.Millisecond)
		}
	}
	return phases
}

// Find returns the first span with the given name in creation order, or nil.
// It exists for tests and for callers that want one phase's duration.
func (t *Trace) Find(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.name == name {
			return sp
		}
	}
	return nil
}

// Name and DurMS expose a finished span's identity for inspection.
func (s *Span) Name() string { return s.name }

// DurMS returns the span's duration in milliseconds (0 until End).
func (s *Span) DurMS() float64 {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return float64(s.dur) / float64(time.Millisecond)
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// TraceEvent renders the finished trace as Chrome trace_event JSON — the
// format chrome://tracing and Perfetto open directly. Every span becomes one
// complete ("X") event; ts/dur are microseconds relative to the trace
// start. Concurrent sibling spans (the legion worker pool) are laid out on
// separate tid lanes so the viewer never sees improperly-nested intervals:
// a span inherits its parent's lane unless it overlaps an earlier sibling
// already placed there, in which case it opens the next free lane.
func (t *Trace) TraceEvent() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	lanes := assignLanes(t.spans)

	var b bytes.Buffer
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for i, sp := range t.spans {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":%s,"cat":"distal","ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d`,
			jsonString(sp.name), sp.start.Microseconds(), sp.dur.Microseconds(), lanes[i]+1)
		if len(sp.attrs) > 0 {
			b.WriteString(`,"args":{`)
			for j, a := range sp.attrs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(jsonString(a.Key))
				b.WriteByte(':')
				b.WriteString(jsonString(a.Val))
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	fmt.Fprintf(&b, `],"otherData":{"request_id":%s}}`, jsonString(t.id))
	return b.Bytes()
}

// assignLanes lays spans out on viewer lanes (trace_event tids). Trace
// viewers nest "X" events on one tid only when their intervals nest properly,
// so concurrent siblings must not share a lane: a span takes its parent's
// lane unless an earlier sibling subtree placed there is still open at its
// start, in which case it moves to the next lane free of siblings. The table
// is keyed by (parent, lane) — a parent's own interval always covers its
// children, so only sibling subtrees count as occupancy.
func assignLanes(spans []*Span) []int {
	lanes := make([]int, len(spans))
	type plKey struct {
		parent int32
		lane   int
	}
	sibEnd := map[plKey]time.Duration{}
	for i, sp := range spans {
		lane := 0
		if sp.parent >= 0 {
			lane = lanes[sp.parent]
		}
		for sibEnd[plKey{sp.parent, lane}] > sp.start {
			lane++
		}
		lanes[i] = lane
		k := plKey{sp.parent, lane}
		if end := sp.start + sp.dur; end > sibEnd[k] {
			sibEnd[k] = end
		}
	}
	return lanes
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// Ring is a bounded buffer of finished traces keyed by request id: the
// store behind GET /v1/trace/{id}. Adding beyond capacity evicts the oldest.
type Ring struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*Trace
	order []string
}

// NewRing builds a ring holding up to capacity finished traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cap: capacity, m: make(map[string]*Trace, capacity)}
}

// Add publishes a finished trace, evicting the oldest beyond capacity. A
// trace re-using a live id replaces the old one in place.
func (r *Ring) Add(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[t.id]; ok {
		r.m[t.id] = t
		return
	}
	r.m[t.id] = t
	r.order = append(r.order, t.id)
	for len(r.order) > r.cap {
		delete(r.m, r.order[0])
		r.order = r.order[1:]
	}
}

// Get returns the trace for id, or nil when it was never added or has been
// evicted.
func (r *Ring) Get(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[id]
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// NewRequestID returns a fresh 16-hex-digit request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to a
		// time-derived id rather than panicking in a logging path.
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&0xffffffffffffff)
	}
	return hex.EncodeToString(b[:])
}
