package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "compile")
	if sp != nil {
		t.Fatalf("Start on bare context returned non-nil span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start on bare context returned a new context")
	}
	// The nil span's methods must all no-op.
	sp.SetAttr("k", "v")
	sp.End()
	if sp.DurMS() != 0 || sp.Attrs() != nil || sp.StartChild("x") != nil {
		t.Fatalf("nil span methods not inert")
	}
}

func TestDisabledSwitch(t *testing.T) {
	tr, ctx := NewTrace(context.Background(), "req1", "request")
	SetDisabled(true)
	defer SetDisabled(false)
	if _, sp := Start(ctx, "compile"); sp != nil {
		t.Fatalf("Start returned a span while disabled")
	}
	SetDisabled(false)
	if _, sp := Start(ctx, "compile"); sp == nil {
		t.Fatalf("Start returned nil span after re-enable")
	}
	tr.Finish()
}

func TestTraceTreeAndExport(t *testing.T) {
	tr, ctx := NewTrace(context.Background(), "abc123", "request")
	cctx, compile := Start(ctx, "compile")
	compile.SetAttr("cache", "miss")
	_, stage := Start(cctx, "stage")
	stage.End()
	compile.End()
	_, run := Start(ctx, "execute")
	run.End()
	tr.Finish()

	if tr.ID() != "abc123" {
		t.Fatalf("ID = %q", tr.ID())
	}
	if got := tr.Find("compile"); got == nil || got.Name() != "compile" {
		t.Fatalf("Find(compile) = %v", got)
	}
	phases := tr.PhaseMS()
	if _, ok := phases["compile"]; !ok {
		t.Errorf("PhaseMS missing compile: %v", phases)
	}
	if _, ok := phases["stage"]; ok {
		t.Errorf("PhaseMS includes grandchild stage: %v", phases)
	}

	var export struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	raw := tr.TraceEvent()
	if err := json.Unmarshal(raw, &export); err != nil {
		t.Fatalf("TraceEvent is not valid JSON: %v\n%s", err, raw)
	}
	if export.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", export.DisplayTimeUnit)
	}
	if export.OtherData["request_id"] != "abc123" {
		t.Errorf("otherData = %v", export.OtherData)
	}
	names := map[string]bool{}
	for _, ev := range export.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
		if ev.Name == "compile" && ev.Args["cache"] != "miss" {
			t.Errorf("compile args = %v", ev.Args)
		}
	}
	for _, want := range []string{"request", "compile", "stage", "execute"} {
		if !names[want] {
			t.Errorf("export missing span %q", want)
		}
	}
}

// TestAssignLanesConcurrentSiblings checks the viewer-lane layout: two
// overlapping siblings must land on different tids, sequential siblings on
// the same one, and children follow their parent's lane.
func TestAssignLanesConcurrentSiblings(t *testing.T) {
	mk := func(parent int32, start, dur int) *Span {
		ms := time.Millisecond
		return &Span{parent: parent, start: time.Duration(start) * ms, dur: time.Duration(dur) * ms}
	}
	spans := []*Span{
		mk(-1, 0, 100), // root
		mk(0, 10, 40),  // a
		mk(0, 20, 40),  // b overlaps a -> new lane
		mk(2, 25, 10),  // b's child follows b's lane
		mk(0, 60, 20),  // c after both -> back to lane 0
	}
	lanes := assignLanes(spans)
	if lanes[0] != 0 || lanes[1] != 0 {
		t.Errorf("root/a lanes = %v", lanes)
	}
	if lanes[2] == lanes[1] {
		t.Errorf("overlapping siblings share lane: %v", lanes)
	}
	if lanes[3] != lanes[2] {
		t.Errorf("child not on parent's lane: %v", lanes)
	}
	if lanes[4] != 0 {
		t.Errorf("sequential sibling not reusing lane 0: %v", lanes)
	}
}

// TestTraceConcurrentSpans opens spans from many goroutines at once — the
// legion real-task pool shape — and relies on -race for the verdict.
func TestTraceConcurrentSpans(t *testing.T) {
	tr, ctx := NewTrace(context.Background(), "conc", "request")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, sp := Start(ctx, "task")
				sp.SetAttr("worker", fmt.Sprint(i))
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	tr.Finish()
	if err := json.Unmarshal(tr.TraceEvent(), &map[string]any{}); err != nil {
		t.Fatalf("concurrent trace export invalid: %v", err)
	}
}

// TestTraceSpanCap: past the slab bound, Start hands back the parent so
// nesting survives, and the root records the drop count.
func TestTraceSpanCap(t *testing.T) {
	tr, ctx := NewTrace(context.Background(), "cap", "request")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := Start(ctx, "s")
		if sp == nil {
			t.Fatalf("span %d is nil", i)
		}
		sp.End()
	}
	tr.Finish()
	var dropped string
	for _, a := range tr.Root().Attrs() {
		if a.Key == "dropped_spans" {
			dropped = a.Val
		}
	}
	if dropped != "11" {
		t.Errorf("dropped_spans = %q, want 11", dropped)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(2)
	for _, id := range []string{"a", "b", "c"} {
		tr, _ := NewTrace(context.Background(), id, "request")
		tr.Finish()
		r.Add(tr)
	}
	if r.Get("a") != nil {
		t.Errorf("oldest trace not evicted")
	}
	if r.Get("b") == nil || r.Get("c") == nil {
		t.Errorf("recent traces missing")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	// Same-id replace keeps one slot.
	tr, _ := NewTrace(context.Background(), "c", "request")
	tr.Finish()
	r.Add(tr)
	if r.Len() != 2 || r.Get("c") != tr {
		t.Errorf("same-id add did not replace in place")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("ids %q %q", a, b)
	}
}
