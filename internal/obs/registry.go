package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a hand-rolled metrics registry: counters, gauges, and
// fixed-bucket histograms, all goroutine-safe through atomics, with
// Prometheus text exposition (WriteTo). It exists so the serving stack can
// expose GET /metrics with zero dependencies; /v1/stats is reimplemented on
// top of the same registry, so the two surfaces can never disagree.
//
// Families register once (repeat registration of the same name returns the
// existing family — panics on a type or label mismatch, which is a
// programming error) and label series materialize on first use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histograms only

	mu     sync.Mutex
	series map[string]metric // joined label values -> series
	order  []string          // insertion order; sorted at exposition
}

type metric interface {
	expose(w io.Writer, fam *family, labelValues string)
}

// atomicFloat is a float64 with atomic add/load via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative deltas are a caller bug and are dropped (counters
// never go down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, fam *family, lv string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, lv, formatValue(c.v.Load()))
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adjusts the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

func (g *Gauge) expose(w io.Writer, fam *family, lv string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, lv, formatValue(g.v.Load()))
}

// Histogram is a fixed-bucket histogram: cumulative bucket counts, a sum,
// and a total count, all atomic. Buckets are upper bounds in increasing
// order; the +Inf bucket is implicit.
type Histogram struct {
	buckets []float64
	counts  []atomic.Uint64 // per finite bucket: observations <= bound
	count   atomic.Uint64
	sum     atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~20) and the scan is cheaper
	// than a branchy binary search at that size.
	for i, b := range h.buckets {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

func (h *Histogram) expose(w io.Writer, fam *family, lv string) {
	// Per-bucket counts are cumulative in the exposition format.
	cum := uint64(0)
	for i, b := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, mergeLabel(lv, "le", formatValue(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, mergeLabel(lv, "le", "+Inf"), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, lv, formatValue(h.sum.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, lv, h.count.Load())
}

// funcMetric evaluates at scrape time: the bridge for values owned
// elsewhere (session cache counters, uptime) so /metrics and /v1/stats read
// one source of truth.
type funcMetric struct{ fn func() float64 }

func (f funcMetric) expose(w io.Writer, fam *family, lv string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, lv, formatValue(f.fn()))
}

// register returns the family for name, creating it on first use and
// validating shape on repeats.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s(%v), was %s(%v)", name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets, series: map[string]metric{}}
	r.fams[name] = f
	return f
}

// get returns the series for the label values, creating it with mk on first
// use.
func (f *family) get(labelValues []string, mk func() metric) metric {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// Counter returns the counter name{labels=labelValues}, registering the
// family on first use.
func (r *Registry) Counter(name, help string, labels []string, labelValues ...string) *Counter {
	f := r.register(name, help, "counter", labels, nil)
	return f.get(labelValues, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge name{labels=labelValues}.
func (r *Registry) Gauge(name, help string, labels []string, labelValues ...string) *Gauge {
	f := r.register(name, help, "gauge", labels, nil)
	return f.get(labelValues, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram name{labels=labelValues} with the given
// bucket upper bounds (strictly increasing; +Inf implicit). All series of a
// family share the first registration's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels []string, labelValues ...string) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets must increase strictly: %v", name, buckets))
		}
	}
	f := r.register(name, help, "histogram", labels, buckets)
	return f.get(labelValues, func() metric {
		return &Histogram{buckets: f.buckets, counts: make([]atomic.Uint64, len(f.buckets))}
	}).(*Histogram)
}

// CounterFunc registers a counter whose value is read by fn at scrape time —
// for monotonic values owned elsewhere (e.g. the session's cache hit count).
func (r *Registry) CounterFunc(name, help string, labels []string, fn func() float64, labelValues ...string) {
	f := r.register(name, help, "counter", labels, nil)
	f.get(labelValues, func() metric { return funcMetric{fn: fn} })
}

// GaugeFunc registers a gauge read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels []string, fn func() float64, labelValues ...string) {
	f := r.register(name, help, "gauge", labels, nil)
	f.get(labelValues, func() metric { return funcMetric{fn: fn} })
}

// Each calls fn for every series of the named family with its label values
// and current value (Func series evaluate at the call; histograms report
// their observation count). It is how /v1/stats reads the same numbers
// /metrics exposes. Unknown families visit nothing.
func (r *Registry) Each(name string, fn func(labelValues []string, value float64)) {
	r.mu.Lock()
	f, ok := r.fams[name]
	r.mu.Unlock()
	if !ok {
		return
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]metric, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	for i, k := range keys {
		var v float64
		switch m := series[i].(type) {
		case *Counter:
			v = m.Value()
		case *Gauge:
			v = m.Value()
		case *Histogram:
			v = float64(m.Count())
		case funcMetric:
			v = m.fn()
		}
		var lv []string
		if k != "" || len(f.labels) > 0 {
			lv = strings.Split(k, "\x00")
		}
		fn(lv, v)
	}
}

// WriteTo writes the registry in Prometheus text exposition format (version
// 0.0.4): families sorted by name, series sorted by label values, HELP and
// TYPE lines once per family.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	cw := &countWriter{w: w}
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		series := make([]metric, len(keys))
		sort.Strings(keys)
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		for i, key := range keys {
			lv := renderLabels(f.labels, strings.Split(key, "\x00"))
			series[i].expose(cw, f, lv)
		}
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, cw.err
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// renderLabels renders {a="x",b="y"}, or "" for label-less series.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel appends one label pair to an already-rendered label set (the
// histogram "le" label).
func mergeLabel(rendered, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: integral floats print without
// exponent or decimal point (counter-friendly), the rest in Go's shortest
// round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Standard bucket bounds, pinned by the golden exposition test.
var (
	// LatencyBuckets covers request and phase latencies from 100µs to 10s.
	LatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// SizeBuckets covers batch sizes (powers of two up to the serve cap).
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
)
