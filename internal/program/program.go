// Package program parses multi-statement tensor programs into dependency
// DAGs. A program is a list of tensor index notation statements whose
// left-hand sides name intermediates that later statements consume — e.g.
// "D(i,j) = A(i,k) * B(k,j)" feeding "E(i,j) = D(i,k) * C(k,j)". The parser
// classifies every tensor as a leaf input (never assigned; its shape must be
// declared) or an assigned tensor (its shape is inferred from the producing
// statement's right-hand side), orders the statements topologically, and
// rejects programs that cannot execute: duplicate assignments, dependency
// cycles, shape conflicts, and declarations for tensors the program computes
// itself.
//
// The package is shared by both ends of the wire: the distal session layer
// compiles a parsed program into a plan DAG, and the wire client derives the
// leaf-input frame order from the same Parse, so client and server always
// agree on which tensors ride as frames and in what order.
package program

import (
	"fmt"

	"distal/internal/ir"
	"distal/internal/tensor"
)

// Statement is one statement of a multi-statement program: the index
// notation text plus its own format annotations and schedule. Formats may
// only name tensors of this statement; an empty schedule means the session
// auto-schedules the stage.
type Statement struct {
	Stmt     string
	Formats  map[string]string
	Schedule string
}

// Stage is one parsed statement in executable position.
type Stage struct {
	// Index is the statement's position in the source list.
	Index int
	// Assign is the parsed statement.
	Assign *ir.Assignment
	// Src is the source statement (formats, schedule ride along).
	Src Statement
	// Deps lists the source indices of the statements whose outputs this
	// statement reads, ascending.
	Deps []int
}

// Program is a parsed multi-statement program: statements in topological
// order with every tensor's shape resolved.
type Program struct {
	// Stages holds the statements in a stable topological order: a stage
	// appears after every stage it depends on, ties broken by source
	// position.
	Stages []*Stage
	// Shapes maps every tensor of the program to its shape — leaf inputs
	// as declared, assigned tensors as inferred from their producer.
	Shapes map[string][]int

	inputs   []string       // leaf inputs, first-use order over the source list
	producer map[string]int // assigned tensor -> source index of its producer
	output   string         // the last source statement's LHS
}

// Parse parses and validates a statement list against the declared leaf
// input shapes. Shape inference runs in dependency order, so an
// intermediate's shape is available to every consumer; the returned
// program's Shapes covers leaf inputs and assigned tensors alike.
func Parse(stmts []Statement, shapes map[string][]int) (*Program, error) {
	if len(stmts) == 0 {
		return nil, fmt.Errorf("program: empty statement list")
	}
	parsed := make([]*ir.Assignment, len(stmts))
	producer := map[string]int{}
	for i, st := range stmts {
		a, err := ir.Parse(st.Stmt)
		if err != nil {
			return nil, fmt.Errorf("program: statement %d: %w", i, err)
		}
		parsed[i] = a
		lhs := a.LHS.Tensor
		if len(a.LHS.Indices) == 0 {
			return nil, fmt.Errorf("program: statement %d assigns scalar %s; scalar outputs are not supported in multi-statement programs", i, lhs)
		}
		if prev, dup := producer[lhs]; dup {
			return nil, fmt.Errorf("program: tensor %s is assigned by statements %d and %d; every tensor may be assigned once", lhs, prev, i)
		}
		producer[lhs] = i
	}
	// A declared shape may only describe a leaf input: assigned tensors'
	// shapes are inferred from their producer, so a declaration for one is
	// either redundant or contradictory — and a leaf input colliding with
	// an intermediate's name is exactly that case seen from the other side.
	named := map[string]bool{}
	for _, a := range parsed {
		for _, name := range a.TensorNames() {
			named[name] = true
		}
	}
	for name := range shapes {
		if idx, assigned := producer[name]; assigned {
			return nil, fmt.Errorf("program: Shapes declares %s, which statement %d computes; intermediate shapes are inferred from their producer", name, idx)
		}
		if !named[name] {
			return nil, fmt.Errorf("program: Shapes declares %s, which no statement mentions", name)
		}
	}
	// Per-statement format annotations may only name that statement's
	// tensors (same contract as single-statement requests).
	for i, st := range stmts {
		stmtNames := map[string]bool{}
		for _, name := range parsed[i].TensorNames() {
			stmtNames[name] = true
		}
		for name := range st.Formats {
			if !stmtNames[name] {
				return nil, fmt.Errorf("program: statement %d Formats names %s, which is not a tensor of %q", i, name, st.Stmt)
			}
		}
	}
	// Dependency edges: statement i depends on statement j when i reads a
	// tensor j assigns. Reading your own output in the same statement has
	// no producer to run first and is rejected (ir's += reads the prior
	// contents of a *leaf* LHS, which stays legal).
	deps := make([][]int, len(stmts))
	for i, a := range parsed {
		seen := map[int]bool{}
		for _, acc := range a.RHS.Accesses(nil) {
			j, assigned := producer[acc.Tensor]
			if !assigned {
				continue
			}
			if j == i {
				return nil, fmt.Errorf("program: statement %d reads its own output %s", i, acc.Tensor)
			}
			if !seen[j] {
				seen[j] = true
				deps[i] = append(deps[i], j)
			}
		}
		insertionSort(deps[i])
	}
	// Stable Kahn topological sort: among ready statements the smallest
	// source index runs first, so equivalent programs order independent
	// stages deterministically.
	indeg := make([]int, len(stmts))
	for i := range deps {
		indeg[i] = len(deps[i])
	}
	dependents := make([][]int, len(stmts))
	for i, ds := range deps {
		for _, j := range ds {
			dependents[j] = append(dependents[j], i)
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	var order []int
	for len(ready) > 0 {
		best := 0
		for k := 1; k < len(ready); k++ {
			if ready[k] < ready[best] {
				best = k
			}
		}
		i := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, i)
		for _, j := range dependents[i] {
			if indeg[j]--; indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(order) != len(stmts) {
		return nil, fmt.Errorf("program: statements form a dependency cycle")
	}

	// Shape inference in dependency order: every RHS tensor is either a
	// declared leaf or an already-inferred intermediate; the LHS shape
	// follows from the RHS extents exactly as ir.Evaluate infers it.
	known := make(map[string][]int, len(shapes))
	for name, shape := range shapes {
		known[name] = shape
	}
	p := &Program{
		Shapes:   known,
		producer: producer,
		output:   parsed[len(parsed)-1].LHS.Tensor,
	}
	for _, i := range order {
		a := parsed[i]
		outShape, err := inferLHS(a, known)
		if err != nil {
			return nil, fmt.Errorf("program: statement %d: %w", i, err)
		}
		known[a.LHS.Tensor] = outShape
		if err := a.Validate(known); err != nil {
			return nil, fmt.Errorf("program: statement %d: %w", i, err)
		}
		p.Stages = append(p.Stages, &Stage{Index: i, Assign: a, Src: stmts[i], Deps: deps[i]})
	}
	// Leaf inputs in first-use order over the *source* list: the order is a
	// wire contract (frames ride in it), so it must not depend on the
	// topological tie-breaking.
	seen := map[string]bool{}
	for _, a := range parsed {
		for _, name := range a.TensorNames() {
			if _, assigned := producer[name]; assigned || seen[name] {
				continue
			}
			seen[name] = true
			p.inputs = append(p.inputs, name)
		}
	}
	return p, nil
}

// inferLHS computes the LHS shape of a statement from the (known) shapes of
// its RHS tensors, mirroring ir.Evaluate's extent inference.
func inferLHS(a *ir.Assignment, shapes map[string][]int) ([]int, error) {
	extents := map[string]int{}
	for _, acc := range a.RHS.Accesses(nil) {
		shape, ok := shapes[acc.Tensor]
		if !ok {
			return nil, fmt.Errorf("no shape for tensor %s (declare leaf-input shapes in Shapes)", acc.Tensor)
		}
		if len(shape) != len(acc.Indices) {
			if len(acc.Indices) == 0 && len(shape) == 1 && shape[0] == 1 {
				continue // scalar access over a rank-1 unit tensor
			}
			return nil, fmt.Errorf("access %s has %d indices but tensor has rank %d", acc, len(acc.Indices), len(shape))
		}
		for d, v := range acc.Indices {
			if prev, ok := extents[v.Name]; ok && prev != shape[d] {
				return nil, fmt.Errorf("variable %s indexes extents %d and %d", v.Name, prev, shape[d])
			}
			extents[v.Name] = shape[d]
		}
	}
	outShape := make([]int, len(a.LHS.Indices))
	for d, v := range a.LHS.Indices {
		ext, ok := extents[v.Name]
		if !ok {
			return nil, fmt.Errorf("LHS variable %s not bound by any RHS access", v.Name)
		}
		outShape[d] = ext
	}
	return outShape, nil
}

// Inputs returns the program's leaf inputs — tensors no statement assigns —
// in first-use order over the source statement list. This is the canonical
// wire frame order of a multi-statement run. The caller must not mutate the
// returned slice.
func (p *Program) Inputs() []string { return p.inputs }

// Output returns the last source statement's LHS: the tensor a run of the
// program answers with.
func (p *Program) Output() string { return p.output }

// Producer returns the source index of the statement assigning name, and
// whether name is assigned at all (leaf inputs are not).
func (p *Program) Producer(name string) (int, bool) {
	i, ok := p.producer[name]
	return i, ok
}

// Evaluate runs the program sequentially with the reference interpreter,
// feeding each statement's output to its consumers, and returns every
// assigned tensor by name. It is the semantics a distributed plan-DAG
// execution is validated against.
func Evaluate(p *Program, inputs map[string]*tensor.Dense) (map[string]*tensor.Dense, error) {
	vals := make(map[string]*tensor.Dense, len(inputs)+len(p.Stages))
	for _, name := range p.inputs {
		t, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("program: evaluate: missing input tensor %s", name)
		}
		vals[name] = t
	}
	outs := make(map[string]*tensor.Dense, len(p.Stages))
	for _, st := range p.Stages {
		out, err := ir.Evaluate(st.Assign, vals)
		if err != nil {
			return nil, fmt.Errorf("program: evaluate: statement %d: %w", st.Index, err)
		}
		vals[st.Assign.LHS.Tensor] = out
		outs[st.Assign.LHS.Tensor] = out
	}
	return outs, nil
}

func insertionSort(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
