package program

import (
	"strings"
	"testing"

	"distal/internal/tensor"
)

func stmts(src ...string) []Statement {
	out := make([]Statement, len(src))
	for i, s := range src {
		out[i] = Statement{Stmt: s}
	}
	return out
}

func TestParseValidation(t *testing.T) {
	nn := []int{8, 8}
	cases := []struct {
		name   string
		stmts  []Statement
		shapes map[string][]int
		want   string // substring of the expected error; "" means success
	}{
		{
			name:   "chain ok",
			stmts:  stmts("D(i,j) = A(i,k) * B(k,j)", "E(i,j) = D(i,k) * C(k,j)"),
			shapes: map[string][]int{"A": nn, "B": nn, "C": nn},
		},
		{
			name:  "empty program",
			stmts: nil,
			want:  "empty statement list",
		},
		{
			name:   "duplicate assignment",
			stmts:  stmts("D(i,j) = A(i,k) * B(k,j)", "D(i,j) = A(i,k) * B(k,j)"),
			shapes: map[string][]int{"A": nn, "B": nn},
			want:   "assigned by statements 0 and 1",
		},
		{
			name:   "intermediate declared in shapes",
			stmts:  stmts("D(i,j) = A(i,k) * B(k,j)", "E(i,j) = D(i,k) * C(k,j)"),
			shapes: map[string][]int{"A": nn, "B": nn, "C": nn, "D": nn},
			want:   "Shapes declares D, which statement 0 computes",
		},
		{
			name:   "unknown shapes key",
			stmts:  stmts("D(i,j) = A(i,k) * B(k,j)"),
			shapes: map[string][]int{"A": nn, "B": nn, "X": nn},
			want:   "Shapes declares X, which no statement mentions",
		},
		{
			name:   "missing leaf shape",
			stmts:  stmts("D(i,j) = A(i,k) * B(k,j)"),
			shapes: map[string][]int{"A": nn},
			want:   "no shape for tensor B",
		},
		{
			name:   "dependency cycle",
			stmts:  stmts("D(i,j) = E(i,k) * A(k,j)", "E(i,j) = D(i,k) * A(k,j)"),
			shapes: map[string][]int{"A": nn},
			want:   "dependency cycle",
		},
		{
			name:   "self read",
			stmts:  stmts("D(i,j) = D(i,k) * A(k,j)"),
			shapes: map[string][]int{"A": nn},
			want:   "reads its own output D",
		},
		{
			name: "formats name foreign tensor",
			stmts: []Statement{
				{Stmt: "D(i,j) = A(i,k) * B(k,j)", Formats: map[string]string{"C": "xy->xy"}},
				{Stmt: "E(i,j) = D(i,k) * C(k,j)"},
			},
			shapes: map[string][]int{"A": nn, "B": nn, "C": nn},
			want:   "statement 0 Formats names C",
		},
		{
			name:   "shape conflict across statements",
			stmts:  stmts("D(i,j) = A(i,k) * B(k,j)", "E(i,j) = D(i,k) * C(k,j)"),
			shapes: map[string][]int{"A": {8, 4}, "B": {4, 8}, "C": {4, 8}},
			want:   "indexes extents",
		},
		{
			name:   "scalar output",
			stmts:  stmts("s = A(i,j) * B(i,j)"),
			shapes: map[string][]int{"A": nn, "B": nn},
			want:   "scalar outputs are not supported",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.stmts, tc.shapes)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Parse: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseShapeInferenceAndOrder(t *testing.T) {
	// Consumer written before its producer: the stage order must fix it up
	// while Inputs stays in source first-use order.
	p, err := Parse(stmts(
		"E(i,l) = D(i,j) * C(j,l)",
		"D(i,j) = A(i,k) * B(k,j)",
	), map[string][]int{"A": {4, 6}, "B": {6, 8}, "C": {8, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stages[0].Index; got != 1 {
		t.Fatalf("first stage is statement %d, want 1 (the producer)", got)
	}
	wantShapes := map[string][]int{"D": {4, 8}, "E": {4, 10}}
	for name, want := range wantShapes {
		got := p.Shapes[name]
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("inferred shape of %s = %v, want %v", name, got, want)
		}
	}
	if got := strings.Join(p.Inputs(), ","); got != "C,A,B" {
		t.Fatalf("Inputs = %s, want C,A,B (source first-use order)", got)
	}
	if p.Output() != "D" {
		t.Fatalf("Output = %s, want D (the last source statement's LHS)", p.Output())
	}
	if i, ok := p.Producer("E"); !ok || i != 0 {
		t.Fatalf("Producer(E) = %d,%v want 0,true", i, ok)
	}
	if _, ok := p.Producer("A"); ok {
		t.Fatal("Producer(A) reports leaf input A as assigned")
	}
}

func TestEvaluateChain(t *testing.T) {
	const n = 6
	shapes := map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}}
	p, err := Parse(stmts("D(i,j) = A(i,k) * B(k,j)", "E(i,j) = D(i,k) * C(k,j)"), shapes)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]*tensor.Dense{}
	for i, name := range []string{"A", "B", "C"} {
		d := tensor.New(name, n, n)
		d.FillRandom(int64(i + 1))
		in[name] = d
	}
	outs, err := Evaluate(p, in)
	if err != nil {
		t.Fatal(err)
	}
	// E must equal (A·B)·C computed by hand.
	want := tensor.New("E", n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				d := 0.0
				for m := 0; m < n; m++ {
					d += in["A"].At(i, m) * in["B"].At(m, k)
				}
				sum += d * in["C"].At(k, j)
			}
			want.Set(sum, i, j)
		}
	}
	if !outs["E"].EqualWithin(want, 1e-9) {
		t.Fatalf("chain evaluation diverges from reference: max abs diff %g", outs["E"].MaxAbsDiff(want))
	}
	if outs["D"] == nil {
		t.Fatal("Evaluate did not return intermediate D")
	}
}
