// Package sim is a discrete-event performance simulator for the machines
// DISTAL targets. It models leaf processors (compute throughput), their
// local memories (capacity and bandwidth), and the communication fabric
// (per-processor ports, per-node NICs, α-β transfer costs, and contention by
// serialization). The Legion-like runtime in internal/legion drives it to
// obtain execution times, communication volumes, and peak memory footprints
// for compiled programs.
//
// The constants in Lassen* are taken from the paper's §7 description of the
// Lassen supercomputer; they determine absolute numbers, while the *shape*
// of every experiment comes from the simulated mechanisms (contention,
// overlap, capacity).
//
// Copy pricing decomposes exactly as CopyEstimate = CopyStart +
// CopyClassCost: the start term is pure resource availability (ports,
// NICs), while the class cost (occupancy, latency, replica overhead)
// depends on source and destination only through their intra-/inter-node
// classification. Callers comparing many candidate sources — the runtime's
// nearest-valid-instance selection — rely on this identity to invoke the
// cost model once per class instead of once per candidate.
package sim

// Params holds the cost-model constants of a simulated machine.
type Params struct {
	// PeakFlops is the peak double-precision FLOP/s of one leaf processor.
	PeakFlops float64
	// MemBandwidth is the local memory bandwidth of a leaf processor in
	// bytes/s; bandwidth-bound leaf kernels are limited by it.
	MemBandwidth float64
	// MemCapacity is the capacity of one leaf processor's local memory in
	// bytes. Exceeding it makes an execution report OOM.
	MemCapacity float64

	// IntraBW and IntraLatency describe links between leaf processors of the
	// same node (e.g. NVLink 2.0 between GPUs).
	IntraBW      float64
	IntraLatency float64

	// InterBW and InterLatency describe the per-node NIC (e.g. EDR
	// InfiniBand). All inter-node traffic of a node serializes through it.
	InterBW      float64
	InterLatency float64

	// SrcPenaltyBW, when non-zero, replaces InterBW for transfers whose
	// source instance resides in GPU framebuffer memory. It models the
	// Legion DMA shortcoming described in §7.1.2 (18 GB/s instead of 25).
	SrcPenaltyBW float64

	// ReplicaOverhead is a per-copy runtime overhead in seconds multiplied
	// by the number of valid replicas of the source region piece. It models
	// the Legion overhead of managing highly replicated regions that makes
	// MTTKRP fall off past 64 nodes (§7.2.2).
	ReplicaOverhead float64
}

const (
	// GiB is 2^30 bytes.
	GiB = 1024 * 1024 * 1024
	// GB is 10^9 bytes.
	GB = 1e9
)

// CPUCoreFlops is the peak double-precision throughput of one Power9 core.
const CPUCoreFlops = 18.5e9

// LassenCPU returns the cost model of one Lassen CPU socket as DISTAL
// models it (§7.1.1: "we model each CPU socket as an abstract DISTAL
// processor"): 20 cores per socket, of which 2 are reserved for the Legion
// runtime (4 per node).
func LassenCPU() Params {
	return Params{
		PeakFlops:       18 * CPUCoreFlops, // 18 worker cores per socket
		MemBandwidth:    120 * GB,
		MemCapacity:     128 * GiB,
		IntraBW:         90 * GB, // socket-to-socket within a node
		IntraLatency:    1e-6,
		InterBW:         25 * GB, // EDR InfiniBand
		InterLatency:    5e-6,
		ReplicaOverhead: 2e-6,
	}
}

// LassenCPUFullCores returns the per-socket CPU cost model with all 20
// cores computing, used for baselines that do not pay the runtime-core tax
// (COSMA, and the peak-utilization line).
func LassenCPUFullCores() Params {
	p := LassenCPU()
	p.PeakFlops = 20 * CPUCoreFlops
	return p
}

// LassenCPURanks returns the cost model of one MPI rank when a 40-core
// Lassen node is divided into ranksPerNode ranks (how ScaLAPACK and CTF run
// best, §7.1); every rank computes with its share of the cores.
func LassenCPURanks(ranksPerNode int) Params {
	p := LassenCPUFullCores()
	p.PeakFlops = 40 * CPUCoreFlops / float64(ranksPerNode)
	p.MemBandwidth = p.MemBandwidth * 2 / float64(ranksPerNode)
	p.MemCapacity = p.MemCapacity * 2 / float64(ranksPerNode)
	return p
}

// LassenGPU returns the cost model of one V100 GPU on Lassen.
func LassenGPU() Params {
	return Params{
		PeakFlops:       7.8e12, // V100 FP64
		MemBandwidth:    900 * GB,
		MemCapacity:     16 * GiB,
		IntraBW:         60 * GB, // NVLink 2.0
		IntraLatency:    1e-6,
		InterBW:         25 * GB,
		InterLatency:    5e-6,
		SrcPenaltyBW:    18 * GB, // Legion DMA from framebuffer (§7.1.2)
		ReplicaOverhead: 2e-6,
	}
}
