package sim

import (
	"fmt"

	"distal/internal/machine"
)

// Sim is the mutable state of one simulated execution over a machine: the
// availability times of every contended resource, plus accounting for
// communication volume and memory footprint.
//
// Scheduling is greedy in issue order: every operation is given the earliest
// start compatible with its readiness time and with the FIFO availability of
// the resources it occupies. This makes overlap of communication and
// computation emerge naturally (copies and compute use disjoint resources)
// while still serializing conflicting uses of a port, NIC, or processor.
type Sim struct {
	Machine *machine.Machine
	Params  Params

	leafGrid machine.Grid
	nLeaves  int
	nNodes   int
	nodeOf   []int // per leaf: node index, precomputed (hot in copy pricing)

	procFree []float64 // per leaf: next time the processor is idle
	outFree  []float64 // per leaf: next time its memory out-port is idle
	inFree   []float64 // per leaf: next time its memory in-port is idle
	nicOut   []float64 // per node: next time its NIC egress is idle
	nicIn    []float64 // per node: next time its NIC ingress is idle

	memUsed []int64 // per leaf: currently live bytes
	memPeak []int64 // per leaf: high-water mark

	// Totals.
	IntraBytes int64
	InterBytes int64
	CopyCount  int64
	FlopsTotal float64
	makespan   float64
	oomProc    int
	oomBytes   int64
}

// New returns a fresh simulation over m with the given cost model.
func New(m *machine.Machine, p Params) *Sim {
	lg := m.LeafGrid()
	n := lg.Size()
	outer := m.Nodes()
	s := &Sim{
		Machine:  m,
		Params:   p,
		leafGrid: lg,
		nLeaves:  n,
		nNodes:   outer,
		procFree: make([]float64, n),
		outFree:  make([]float64, n),
		inFree:   make([]float64, n),
		nicOut:   make([]float64, outer),
		nicIn:    make([]float64, outer),
		memUsed:  make([]int64, n),
		memPeak:  make([]int64, n),
		oomProc:  -1,
	}
	s.nodeOf = make([]int, n)
	coord := make([]int, lg.Rank())
	for l := 0; l < n; l++ {
		lg.DelinearizeInto(l, coord)
		s.nodeOf[l] = m.NodeOf(coord)
	}
	return s
}

// LeafGrid returns the flattened leaf-processor grid.
func (s *Sim) LeafGrid() machine.Grid { return s.leafGrid }

// Leaves returns the number of leaf processors.
func (s *Sim) Leaves() int { return s.nLeaves }

// NodeOf returns the node (outermost-grid flat index) of leaf l.
func (s *Sim) NodeOf(l int) int { return s.nodeOf[l] }

func (s *Sim) observe(t float64) {
	if t > s.makespan {
		s.makespan = t
	}
}

// Makespan returns the completion time of the last scheduled operation.
func (s *Sim) Makespan() float64 { return s.makespan }

// Alloc records bytes of live data on leaf l's memory. It never fails;
// capacity violations are reported by OOM() at the end.
func (s *Sim) Alloc(l int, bytes int64) {
	s.memUsed[l] += bytes
	if s.memUsed[l] > s.memPeak[l] {
		s.memPeak[l] = s.memUsed[l]
	}
	if float64(s.memUsed[l]) > s.Params.MemCapacity && s.oomProc < 0 {
		s.oomProc = l
		s.oomBytes = s.memUsed[l]
	}
}

// Free releases bytes of live data on leaf l's memory.
func (s *Sim) Free(l int, bytes int64) {
	s.memUsed[l] -= bytes
	if s.memUsed[l] < 0 {
		panic(fmt.Sprintf("sim: negative memory on leaf %d", l))
	}
}

// OOM reports whether any leaf exceeded its memory capacity, and the worst
// offender's peak footprint.
func (s *Sim) OOM() (bool, int, int64) {
	return s.oomProc >= 0, s.oomProc, s.oomBytes
}

// PeakMem returns the largest per-leaf memory high-water mark.
func (s *Sim) PeakMem() int64 {
	var max int64
	for _, b := range s.memPeak {
		if b > max {
			max = b
		}
	}
	return max
}

// Compute schedules a leaf computation of the given FLOPs and memory traffic
// on leaf l, not before ready, and returns its completion time. Duration is
// the roofline max of compute and bandwidth time.
func (s *Sim) Compute(l int, flops, bytes float64, ready float64) float64 {
	dur := flops / s.Params.PeakFlops
	if bw := bytes / s.Params.MemBandwidth; bw > dur {
		dur = bw
	}
	start := ready
	if s.procFree[l] > start {
		start = s.procFree[l]
	}
	end := start + dur
	s.procFree[l] = end
	s.FlopsTotal += flops
	s.observe(end)
	return end
}

// CopyEstimate returns the completion time a copy would have without
// committing any resources; used for source selection. It always equals
// CopyStart + CopyClassCost for the same arguments, so callers comparing
// many candidate sources can price each cost class once and pay only the
// port-availability lookup per candidate.
func (s *Sim) CopyEstimate(src, dst int, bytes int64, ready float64, srcGPUMem bool, replicas int) float64 {
	_, end := s.copyTimes(src, dst, bytes, ready, srcGPUMem, replicas)
	return end
}

// SameNode reports whether two leaves share a node — the copy cost-class
// predicate: two candidate sources on the same side of it have identical
// CopyClassCost toward a destination.
func (s *Sim) SameNode(a, b int) bool { return s.nodeOf[a] == s.nodeOf[b] }

// CopyClassCost returns the availability-independent duration of a copy:
// link occupancy, link latency, and replica runtime overhead. It depends on
// (src, dst) only through their intra-/inter-node classification, so it is
// constant across a cost class of candidate sources.
func (s *Sim) CopyClassCost(src, dst int, bytes int64, srcGPUMem bool, replicas int) float64 {
	lat := s.Params.IntraLatency
	if s.nodeOf[src] != s.nodeOf[dst] {
		lat = s.Params.InterLatency
	}
	return s.occupancy(src, dst, bytes, srcGPUMem) + lat + s.Params.ReplicaOverhead*float64(replicas)
}

// CopyStart returns the earliest time a copy from src to dst could start: the
// readiness time pushed past the FIFO availability of the ports and NICs the
// copy would occupy. No resources are committed.
func (s *Sim) CopyStart(src, dst int, ready float64) float64 {
	start := ready
	if sn, dn := s.nodeOf[src], s.nodeOf[dst]; sn != dn {
		if s.nicOut[sn] > start {
			start = s.nicOut[sn]
		}
		if s.nicIn[dn] > start {
			start = s.nicIn[dn]
		}
	}
	if s.outFree[src] > start {
		start = s.outFree[src]
	}
	if s.inFree[dst] > start {
		start = s.inFree[dst]
	}
	return start
}

// Copy schedules a transfer of bytes from leaf src to leaf dst, not before
// ready, commits the resources, accounts the traffic, and returns its
// completion time. srcGPUMem marks the source instance as residing in GPU
// framebuffer memory (triggering the DMA source penalty on inter-node
// links); replicas is the number of valid replicas of the source piece
// (runtime-overhead model).
func (s *Sim) Copy(src, dst int, bytes int64, ready float64, srcGPUMem bool, replicas int) float64 {
	start, end := s.copyTimes(src, dst, bytes, ready, srcGPUMem, replicas)
	occEnd := start + s.occupancy(src, dst, bytes, srcGPUMem)
	sn, dn := s.nodeOf[src], s.nodeOf[dst]
	if sn == dn {
		s.outFree[src] = occEnd
		s.inFree[dst] = occEnd
		s.IntraBytes += bytes
	} else {
		s.nicOut[sn] = occEnd
		s.nicIn[dn] = occEnd
		s.outFree[src] = occEnd
		s.inFree[dst] = occEnd
		s.InterBytes += bytes
	}
	s.CopyCount++
	s.observe(end)
	return end
}

func (s *Sim) occupancy(src, dst int, bytes int64, srcGPUMem bool) float64 {
	if s.nodeOf[src] == s.nodeOf[dst] {
		return float64(bytes) / s.Params.IntraBW
	}
	bw := s.Params.InterBW
	if srcGPUMem && s.Params.SrcPenaltyBW > 0 {
		bw = s.Params.SrcPenaltyBW
	}
	return float64(bytes) / bw
}

func (s *Sim) copyTimes(src, dst int, bytes int64, ready float64, srcGPUMem bool, replicas int) (start, end float64) {
	start = s.CopyStart(src, dst, ready)
	end = start + s.CopyClassCost(src, dst, bytes, srcGPUMem, replicas)
	return start, end
}

// Barrier advances every processor's availability to at least t. It models
// a global synchronization point (used by non-overlapping baselines).
func (s *Sim) Barrier() float64 {
	var t float64
	for _, f := range s.procFree {
		if f > t {
			t = f
		}
	}
	for i := range s.procFree {
		if s.procFree[i] < t {
			s.procFree[i] = t
		}
	}
	s.observe(t)
	return t
}

// ProcFree returns when leaf l's processor becomes idle.
func (s *Sim) ProcFree(l int) float64 { return s.procFree[l] }
