package sim

import (
	"testing"

	"distal/internal/machine"
)

func flatCPU(n int) *machine.Machine {
	return machine.New(machine.NewGrid(n), machine.SysMem, machine.CPU)
}

func gpuMachine(nodes, gpus int) *machine.Machine {
	child := machine.New(machine.NewGrid(gpus), machine.GPUFBMem, machine.GPU)
	return machine.New(machine.NewGrid(nodes), machine.SysMem, machine.CPU).WithChild(child)
}

func TestComputeRoofline(t *testing.T) {
	p := Params{PeakFlops: 100, MemBandwidth: 10}
	s := New(flatCPU(1), p)
	// Compute-bound: 1000 flops / 100 = 10s vs 10 bytes / 10 = 1s.
	end := s.Compute(0, 1000, 10, 0)
	if end != 10 {
		t.Fatalf("compute-bound end = %v, want 10", end)
	}
	// Bandwidth-bound: 10 flops (0.1s) vs 100 bytes (10s); starts at 10.
	end = s.Compute(0, 10, 100, 0)
	if end != 20 {
		t.Fatalf("bandwidth-bound end = %v, want 20", end)
	}
}

func TestProcessorSerializes(t *testing.T) {
	p := Params{PeakFlops: 1, MemBandwidth: 1e18}
	s := New(flatCPU(2), p)
	a := s.Compute(0, 5, 0, 0)
	b := s.Compute(0, 5, 0, 0) // same proc: serialized
	c := s.Compute(1, 5, 0, 0) // other proc: parallel
	if a != 5 || b != 10 || c != 5 {
		t.Fatalf("ends = %v %v %v, want 5 10 5", a, b, c)
	}
	if s.Makespan() != 10 {
		t.Fatalf("makespan = %v, want 10", s.Makespan())
	}
}

func TestCopyIntraVsInter(t *testing.T) {
	p := Params{IntraBW: 100, InterBW: 10, IntraLatency: 0.5, InterLatency: 2}
	s := New(gpuMachine(2, 2), p)
	// Leaves: (node, gpu) -> flat: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3.
	endIntra := s.Copy(0, 1, 100, 0, false, 1)
	if endIntra != 1.5 { // 100/100 + 0.5
		t.Fatalf("intra copy end = %v, want 1.5", endIntra)
	}
	endInter := s.Copy(0, 2, 100, 0, false, 1)
	if endInter != 13 { // 100/10 + 2, NIC free (different resource than intra ports? src out port busy until 1.0)
		// src out port busy until occupancy end of first copy (1.0): start=1.0,
		// end = 1 + 10 + 2 = 13.
		t.Fatalf("inter copy end = %v, want 13", endInter)
	}
	if s.IntraBytes != 100 || s.InterBytes != 100 {
		t.Fatalf("bytes = %d/%d", s.IntraBytes, s.InterBytes)
	}
}

func TestNICContention(t *testing.T) {
	// Two copies out of the same node to different destinations serialize on
	// the source NIC: the broadcast hotspot.
	p := Params{InterBW: 10, InterLatency: 0}
	s := New(gpuMachine(3, 2), p)
	e1 := s.Copy(0, 2, 100, 0, false, 1) // node0 gpu0 -> node1
	e2 := s.Copy(1, 4, 100, 0, false, 1) // node0 gpu1 -> node2: same NIC
	if e1 != 10 || e2 != 20 {
		t.Fatalf("ends = %v %v, want 10 20", e1, e2)
	}
}

func TestDistinctNICsParallel(t *testing.T) {
	p := Params{InterBW: 10, InterLatency: 0}
	s := New(flatCPU(4), p)
	e1 := s.Copy(0, 2, 100, 0, false, 1)
	e2 := s.Copy(1, 3, 100, 0, false, 1) // different src and dst nodes
	if e1 != 10 || e2 != 10 {
		t.Fatalf("ends = %v %v, want both 10", e1, e2)
	}
}

func TestGPUSourcePenalty(t *testing.T) {
	p := Params{InterBW: 25, SrcPenaltyBW: 18, InterLatency: 0}
	s := New(gpuMachine(2, 1), p)
	fast := s.CopyEstimate(0, 1, 1800, 0, false, 1)
	slow := s.CopyEstimate(0, 1, 1800, 0, true, 1)
	if fast >= slow {
		t.Fatalf("GPU-source copy should be slower: %v vs %v", fast, slow)
	}
	if slow != 100 { // 1800/18
		t.Fatalf("slow = %v, want 100", slow)
	}
}

func TestReplicaOverhead(t *testing.T) {
	p := Params{InterBW: 1e18, InterLatency: 0, ReplicaOverhead: 1}
	s := New(flatCPU(2), p)
	if end := s.Copy(0, 1, 8, 0, false, 5); end < 5 {
		t.Fatalf("end = %v, want >= 5 from replica overhead", end)
	}
}

func TestMemoryAccounting(t *testing.T) {
	p := Params{MemCapacity: 100}
	s := New(flatCPU(2), p)
	s.Alloc(0, 60)
	s.Alloc(0, 30)
	s.Free(0, 50)
	s.Alloc(0, 10)
	if s.PeakMem() != 90 {
		t.Fatalf("peak = %d, want 90", s.PeakMem())
	}
	if oom, _, _ := s.OOM(); oom {
		t.Fatal("should not be OOM under capacity")
	}
	s.Alloc(1, 150)
	oom, proc, bytes := s.OOM()
	if !oom || proc != 1 || bytes != 150 {
		t.Fatalf("OOM = %v/%d/%d", oom, proc, bytes)
	}
}

func TestFreeBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(flatCPU(1), Params{}).Free(0, 10)
}

func TestCopyEstimateDoesNotCommit(t *testing.T) {
	p := Params{InterBW: 10, InterLatency: 0}
	s := New(flatCPU(2), p)
	_ = s.CopyEstimate(0, 1, 100, 0, false, 1)
	if e := s.Copy(0, 1, 100, 0, false, 1); e != 10 {
		t.Fatalf("estimate must not occupy resources; end = %v, want 10", e)
	}
	if s.CopyCount != 1 {
		t.Fatalf("copy count = %d, want 1", s.CopyCount)
	}
}

func TestBarrier(t *testing.T) {
	p := Params{PeakFlops: 1, MemBandwidth: 1e18}
	s := New(flatCPU(2), p)
	s.Compute(0, 10, 0, 0)
	s.Compute(1, 2, 0, 0)
	if tb := s.Barrier(); tb != 10 {
		t.Fatalf("barrier = %v, want 10", tb)
	}
	if end := s.Compute(1, 1, 0, 0); end != 11 {
		t.Fatalf("post-barrier compute end = %v, want 11", end)
	}
}

func TestLassenParamsSanity(t *testing.T) {
	cpu := LassenCPU()
	if cpu.PeakFlops >= LassenCPUFullCores().PeakFlops {
		t.Fatal("runtime-core tax should reduce CPU peak")
	}
	gpu := LassenGPU()
	if gpu.PeakFlops <= cpu.PeakFlops {
		t.Fatal("GPU peak should exceed CPU peak")
	}
	if gpu.SrcPenaltyBW >= gpu.InterBW {
		t.Fatal("source penalty should be slower than the NIC peak")
	}
	if gpu.MemCapacity >= cpu.MemCapacity {
		t.Fatal("GPU framebuffer is smaller than host DRAM")
	}
}

func TestNodeOfLeaves(t *testing.T) {
	s := New(gpuMachine(2, 4), Params{})
	if s.Leaves() != 8 {
		t.Fatalf("leaves = %d, want 8", s.Leaves())
	}
	if s.NodeOf(3) != 0 || s.NodeOf(4) != 1 {
		t.Fatalf("NodeOf wrong: %d %d", s.NodeOf(3), s.NodeOf(4))
	}
}

// TestCopyEstimateDecomposition: CopyEstimate must equal exactly
// CopyStart + CopyClassCost — ensureLocal's cheapest-source shortcut prices
// each cost class once and relies on this identity for its selection to be
// bit-identical to an exhaustive per-candidate estimate.
func TestCopyEstimateDecomposition(t *testing.T) {
	p := Params{IntraBW: 40, InterBW: 10, IntraLatency: 1e-6, InterLatency: 5e-6, ReplicaOverhead: 1e-7}
	s := New(gpuMachine(2, 2), p) // 2 nodes x 2 GPUs: leaves 0,1 | 2,3
	// Commit some traffic so ports and NICs have non-trivial availability.
	s.Copy(0, 2, 100, 0, true, 1)
	s.Copy(1, 0, 64, 0.001, true, 2)
	cases := []struct {
		src, dst int
		bytes    int64
		ready    float64
		gpu      bool
		replicas int
	}{
		{0, 1, 800, 0, true, 1},   // intra-node
		{0, 3, 800, 0, true, 3},   // inter-node, busy NIC
		{2, 3, 160, 0.5, true, 2}, // intra-node on the far node
		{3, 0, 160, 0, false, 4},  // inter-node reverse
	}
	for _, c := range cases {
		want := s.CopyEstimate(c.src, c.dst, c.bytes, c.ready, c.gpu, c.replicas)
		got := s.CopyStart(c.src, c.dst, c.ready) + s.CopyClassCost(c.src, c.dst, c.bytes, c.gpu, c.replicas)
		if got != want {
			t.Fatalf("copy %d->%d: start+classCost = %v, CopyEstimate = %v", c.src, c.dst, got, want)
		}
	}
	// Same-class sources toward one destination share CopyClassCost.
	if s.CopyClassCost(0, 2, 320, true, 2) != s.CopyClassCost(1, 2, 320, true, 2) {
		t.Fatal("sources in one cost class must share CopyClassCost")
	}
	if !s.SameNode(0, 1) || s.SameNode(1, 2) {
		t.Fatal("SameNode misclassifies the leaf grid")
	}
}
