// Package serve is the HTTP/JSON front end of the DISTAL service: a thin,
// dependency-free layer that turns distal.Session's plan-centric API into a
// wire protocol. Requests arrive as pure data (statement, shapes, formats,
// schedule — exactly distal.Request), compile through the session's plan
// cache (concurrent identical requests share one compile via singleflight),
// and execute under per-request deadlines on a bounded worker pool. The
// structured error taxonomy maps onto HTTP status codes, so clients can
// retry and report without parsing error strings.
//
// Endpoints:
//
//	POST /v1/execute  one request -> simulated metrics
//	POST /v1/batch    up to MaxBatch requests, executed concurrently
//	POST /v1/tune     auto-tune one workload's schedule -> leaderboard
//	POST /v1/run      real execution: wire-encoded or server-filled input
//	                  tensors in, the computed output tensor streamed back
//	                  (see run.go and internal/wire)
//	GET  /v1/stats    cache + server counters
//	GET  /metrics     the same counters (and more) in Prometheus text format
//	GET  /v1/trace/{id}  one recent request's span tree as Chrome trace_event
//	                  JSON (open in chrome://tracing or Perfetto)
//
// Every request gets a request id: generated server-side, or echoed from a
// client-supplied Distal-Request-Id header. The id keys the request's span
// tree in a bounded ring of recent traces, served by GET /v1/trace/{id}.
// /v1/stats and /metrics read the same obs.Registry (the session cache
// counters through scrape-time Func series), so the two surfaces can never
// disagree.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"distal"
	"distal/internal/obs"
	"distal/internal/wire"
)

// Config bounds the server.
type Config struct {
	// Workers is the maximum number of concurrently executing requests
	// (compilation + simulation); further requests queue until a worker
	// frees or their deadline expires. Default: GOMAXPROCS.
	Workers int
	// Timeout is the default per-request deadline, overridable per request
	// (downward or upward, capped at MaxTimeout) with "timeout_ms".
	// Default 30s.
	Timeout time.Duration
	// MaxTimeout caps client-requested deadlines. Default 5m.
	MaxTimeout time.Duration
	// MaxBatch is the largest accepted /v1/batch request. Default 64.
	MaxBatch int
	// MaxBody is the largest accepted request body in bytes on the JSON
	// endpoints. Default 4 MiB.
	MaxBody int64
	// MaxRunBody is the largest accepted /v1/run body in bytes — the JSON
	// section plus every input tensor frame. Default 256 MiB.
	MaxRunBody int64
	// MaxRunBatch is the largest accepted "batch" instance count on a
	// /v1/run request. Larger (or non-positive) declared batches are
	// rejected as input errors before any allocation. Default 64.
	MaxRunBatch int
	// MaxTuneBudget caps the per-request candidate budget of /v1/tune (a
	// tune evaluates up to budget compile+simulate cycles on one worker
	// slot). Default 256.
	MaxTuneBudget int
	// TraceRing is how many finished request traces GET /v1/trace/{id} can
	// serve before the oldest is evicted. Default 64.
	TraceRing int
	// LogJSON emits one JSON access-log line per request to LogWriter.
	LogJSON bool
	// LogWriter receives access-log lines; nil means os.Stderr.
	LogWriter io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 4 << 20
	}
	if c.MaxRunBody <= 0 {
		c.MaxRunBody = 256 << 20
	}
	if c.MaxRunBatch <= 0 {
		c.MaxRunBatch = 64
	}
	if c.MaxTuneBudget <= 0 {
		c.MaxTuneBudget = 256
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 64
	}
	if c.LogWriter == nil {
		c.LogWriter = os.Stderr
	}
	return c
}

// Metric family names and help strings — the /metrics vocabulary. The
// golden obs test pins the exposition format; CI's smoke greps these names.
const (
	mRequests  = "distal_http_requests_total"
	mFailures  = "distal_http_failures_total"
	mDuration  = "distal_http_request_duration_seconds"
	mQueueWait = "distal_queue_wait_seconds"
	mInflight  = "distal_inflight_requests"
	mPhase     = "distal_phase_duration_seconds"
	mBatchSize = "distal_run_batch_size"
	mBytes     = "distal_bytes_moved_total"
	mCacheHit  = "distal_plan_cache_hits_total"
	mCacheMiss = "distal_plan_cache_misses_total"
	mCacheLen  = "distal_plan_cache_entries"
	mMemoLen   = "distal_plan_cache_memo_entries"
	mUptime    = "distal_uptime_seconds"
	mWorkers   = "distal_workers"
)

// Server serves a Session over HTTP. It is an http.Handler.
type Server struct {
	sess  *distal.Session
	cfg   Config
	sem   chan struct{}
	mux   *http.ServeMux
	start time.Time

	reg    *obs.Registry
	traces *obs.Ring

	inflight     *obs.Gauge
	queueWait    *obs.Histogram
	phaseCompile *obs.Histogram
	phaseExecute *obs.Histogram
	batchSize    *obs.Histogram
	bytesIntra   *obs.Counter
	bytesInter   *obs.Counter

	logMu sync.Mutex
}

// New builds a server over the session.
func New(sess *distal.Session, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sess:   sess,
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.Workers),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		reg:    obs.NewRegistry(),
		traces: obs.NewRing(cfg.TraceRing),
	}
	s.inflight = s.reg.Gauge(mInflight, "Requests currently being handled.", nil)
	s.queueWait = s.reg.Histogram(mQueueWait, "Wait for a worker-pool slot.", obs.LatencyBuckets, nil)
	s.phaseCompile = s.reg.Histogram(mPhase, "Pipeline phase durations.", obs.LatencyBuckets, []string{"phase"}, "compile")
	s.phaseExecute = s.reg.Histogram(mPhase, "Pipeline phase durations.", obs.LatencyBuckets, []string{"phase"}, "execute")
	s.batchSize = s.reg.Histogram(mBatchSize, "Executed /v1/run batch sizes.", obs.SizeBuckets, nil)
	s.bytesIntra = s.reg.Counter(mBytes, "Simulated bytes moved by runs.", []string{"class"}, "intra")
	s.bytesInter = s.reg.Counter(mBytes, "Simulated bytes moved by runs.", []string{"class"}, "inter")
	// The cache families read the session's counters at scrape time: one
	// source of truth for /metrics and /v1/stats.
	s.reg.CounterFunc(mCacheHit, "Plan-cache hits (memo, cache, and shared flights).", nil,
		func() float64 { return float64(sess.CacheStats().Hits) })
	s.reg.CounterFunc(mCacheMiss, "Plan-cache misses (compiler runs).", nil,
		func() float64 { return float64(sess.CacheStats().Misses) })
	s.reg.GaugeFunc(mCacheLen, "Cached plans resident.", nil,
		func() float64 { return float64(sess.CacheStats().Entries) })
	s.reg.GaugeFunc(mMemoLen, "Request-memo entries resident.", nil,
		func() float64 { return float64(sess.CacheStats().MemoEntries) })
	s.reg.GaugeFunc(mUptime, "Seconds since server start.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc(mWorkers, "Worker-pool size.", nil,
		func() float64 { return float64(cfg.Workers) })

	s.mux.HandleFunc("/v1/execute", s.instrument("/v1/execute", s.handleExecute))
	s.mux.HandleFunc("/v1/batch", s.instrument("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("/v1/tune", s.instrument("/v1/tune", s.handleTune))
	s.mux.HandleFunc("/v1/run", s.instrument("/v1/run", s.handleRun))
	// The read-only surfaces are not instrumented: a monitoring poll must
	// never move the counters it is reading.
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the server's metrics registry (tests and embedders).
func (s *Server) Registry() *obs.Registry { return s.reg }

// statusWriter threads per-request observability state through the handler:
// it captures the response status and the failure kind for the access log
// and failure counters, and forwards Flush/Hijack so the /v1/run streaming
// path behaves exactly as on the bare ResponseWriter.
type statusWriter struct {
	http.ResponseWriter
	endpoint string
	status   int
	kind     string // failure kind recorded by countErr, "" on success
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := sw.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, fmt.Errorf("serve: underlying ResponseWriter does not support hijacking")
}

// instrument wraps a handler with the per-request observability envelope:
// request id (generated, or echoed from Distal-Request-Id), a trace rooted
// at the endpoint name and published to the trace ring, request/latency
// metrics, and the optional JSON access-log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter(mRequests, "Requests by endpoint.", []string{"endpoint"}, endpoint)
	dur := s.reg.Histogram(mDuration, "Request wall time by endpoint.", obs.LatencyBuckets, []string{"endpoint"}, endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		reqs.Inc()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		id := r.Header.Get(wire.HeaderRequestID)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(wire.HeaderRequestID, id)
		tr, ctx := obs.NewTrace(r.Context(), id, endpoint)
		sw := &statusWriter{ResponseWriter: w, endpoint: endpoint}
		h(sw, r.WithContext(ctx))
		tr.Finish()
		s.traces.Add(tr)
		elapsed := time.Since(t0)
		dur.Observe(elapsed.Seconds())
		s.accessLog(r, sw, id, elapsed, tr)
	}
}

// accessLog emits one JSON line per request when Config.LogJSON is set.
func (s *Server) accessLog(r *http.Request, sw *statusWriter, id string, elapsed time.Duration, tr *obs.Trace) {
	if !s.cfg.LogJSON {
		return
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	entry := map[string]any{
		"time":       time.Now().UTC().Format(time.RFC3339Nano),
		"request_id": id,
		"endpoint":   sw.endpoint,
		"method":     r.Method,
		"status":     status,
		"elapsed_ms": float64(elapsed) / float64(time.Millisecond),
	}
	if sw.kind != "" {
		entry["kind"] = sw.kind
	}
	if sp := tr.Find("compile"); sp != nil {
		for _, a := range sp.Attrs() {
			if a.Key == "plan_key" {
				entry["plan_key"] = a.Val
			}
		}
	}
	if phases := tr.PhaseMS(); len(phases) > 0 {
		entry["phases_ms"] = phases
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.cfg.LogWriter.Write(append(line, '\n')) //nolint:errcheck — logging is best-effort
}

// ExecuteRequest is the wire form of one workload: distal.Request plus
// execution modifiers.
type ExecuteRequest struct {
	Stmt     string            `json:"stmt"`
	Shapes   map[string][]int  `json:"shapes"`
	Formats  map[string]string `json:"formats,omitempty"`
	Schedule string            `json:"schedule,omitempty"`
	// Trace includes the copy trace in the response (can be large).
	Trace bool `json:"trace,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Synchronous disables communication/computation overlap.
	Synchronous bool `json:"synchronous,omitempty"`
}

func (q *ExecuteRequest) request() distal.Request {
	return distal.Request{Stmt: q.Stmt, Shapes: q.Shapes, Formats: q.Formats, Schedule: q.Schedule}
}

// ExecuteResponse reports one executed workload: plan identity, compile
// provenance, and the simulated metrics.
type ExecuteResponse struct {
	PlanKey   string  `json:"plan_key"`
	Cached    bool    `json:"cached"`
	Shared    bool    `json:"shared,omitempty"`
	CompileMS float64 `json:"compile_ms"`
	Launches  int     `json:"launches"`
	Points    int     `json:"points"`

	TimeS        float64 `json:"time_s"`
	GFlopsPerSec float64 `json:"gflops"`
	Flops        float64 `json:"flops"`
	IntraBytes   int64   `json:"intra_bytes"`
	InterBytes   int64   `json:"inter_bytes"`
	Copies       int64   `json:"copies"`
	PeakMemBytes int64   `json:"peak_mem_bytes"`
	OOM          bool    `json:"oom,omitempty"`

	Trace []distal.CopyRecord `json:"trace,omitempty"`
}

// ErrorBody is the wire form of a failure.
type ErrorBody struct {
	// Kind is the stable taxonomy name: parse, schedule, compile, exec,
	// canceled, unknown.
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// statusFor maps the error taxonomy onto HTTP status codes: client-caused
// failures (malformed statement, bad schedule, unlowerable program) are 4xx,
// runtime failures 500, and expired deadlines 504.
func statusFor(kind distal.ErrKind) int {
	switch kind {
	case distal.KindParse:
		return http.StatusBadRequest
	case distal.KindSchedule, distal.KindCompile, distal.KindInput:
		return http.StatusUnprocessableEntity
	case distal.KindCanceled:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// countErr records a failure against its endpoint and kind. The endpoint is
// read from the instrumented writer; direct callers that hold no writer (the
// batch fan-out) pass their endpoint through countErrAt.
func (s *Server) countErr(w http.ResponseWriter, err error) (ErrorBody, int) {
	endpoint := "unknown"
	if sw, ok := w.(*statusWriter); ok {
		endpoint = sw.endpoint
	}
	body, status := s.countErrAt(endpoint, err)
	if sw, ok := w.(*statusWriter); ok {
		sw.kind = body.Kind
	}
	return body, status
}

func (s *Server) countErrAt(endpoint string, err error) (ErrorBody, int) {
	kind := distal.KindOf(err)
	s.reg.Counter(mFailures, "Failed requests by endpoint and error kind.",
		[]string{"endpoint", "kind"}, endpoint, kind.String()).Inc()
	return ErrorBody{Kind: kind.String(), Message: err.Error()}, statusFor(kind)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	body, status := s.countErr(w, err)
	writeJSON(w, status, errorResponse{Error: body})
}

// writeErrorStatus is writeError with the taxonomy's status mapping
// overridden (e.g. 415 for a mismatched Content-Type).
func (s *Server) writeErrorStatus(w http.ResponseWriter, status int, err error) {
	body, _ := s.countErr(w, err)
	writeJSON(w, status, errorResponse{Error: body})
}

// contentType returns the request's media type, "" when the header is
// absent, or an error when it does not parse or does not match one of the
// accepted types. Every POST endpoint rejects mismatched Content-Type up
// front instead of mis-parsing the body.
func (s *Server) contentType(w http.ResponseWriter, r *http.Request, accepted ...string) (string, bool) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return "", true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		s.writeErrorStatus(w, http.StatusUnsupportedMediaType,
			&distal.Error{Kind: distal.KindParse, Op: "decode", Err: fmt.Errorf("bad Content-Type %q: %v", ct, err)})
		return "", false
	}
	for _, a := range accepted {
		if mt == a {
			return mt, true
		}
	}
	s.writeErrorStatus(w, http.StatusUnsupportedMediaType,
		&distal.Error{Kind: distal.KindParse, Op: "decode", Err: fmt.Errorf("unsupported Content-Type %q (want %v)", mt, accepted)})
	return "", false
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if _, ok := s.contentType(w, r, "application/json"); !ok {
		return false
	}
	// One limited reader serves both the decoder and the keep-alive drain:
	// a body beyond MaxBody errors out and the drain never reads past the
	// limiter either (MaxBytesReader closes oversized connections).
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	defer io.Copy(io.Discard, body) //nolint:errcheck — drain for keep-alive
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "decode", Err: err})
		return false
	}
	return true
}

// deadlineFor derives the request's execution context.
func (s *Server) deadlineFor(parent context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(parent, d)
}

// acquire blocks until a worker slot frees or ctx is done. The wait is a
// span on the request trace and an observation on the queue-wait histogram
// either way — saturation shows up whether or not the request survives it.
func (s *Server) acquire(ctx context.Context) error {
	_, sp := obs.Start(ctx, "queue-wait")
	t0 := time.Now()
	defer func() {
		s.queueWait.Observe(time.Since(t0).Seconds())
		sp.End()
	}()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &distal.Error{Kind: distal.KindCanceled, Op: "queue", Err: fmt.Errorf("timed out waiting for a worker: %w", ctx.Err())}
	}
}

func (s *Server) release() { <-s.sem }

// run compiles and simulates one request on an acquired worker slot.
func (s *Server) run(ctx context.Context, q *ExecuteRequest) (*ExecuteResponse, error) {
	plan, err := s.sess.Compile(ctx, q.request())
	if err != nil {
		return nil, err
	}
	var opts []distal.ExecOption
	if q.Trace {
		opts = append(opts, distal.WithTrace())
	}
	if q.Synchronous {
		opts = append(opts, distal.WithSynchronous())
	}
	res, err := plan.Simulate(ctx, opts...)
	if err != nil {
		return nil, err
	}
	st := plan.Stats()
	return &ExecuteResponse{
		PlanKey:      plan.Key(),
		Cached:       st.Cached,
		Shared:       st.Shared,
		CompileMS:    float64(st.CompileTime) / float64(time.Millisecond),
		Launches:     st.Launches,
		Points:       st.Points,
		TimeS:        res.Time,
		GFlopsPerSec: res.GFlopsPerSec(),
		Flops:        res.Flops,
		IntraBytes:   res.IntraBytes,
		InterBytes:   res.InterBytes,
		Copies:       res.Copies,
		PeakMemBytes: res.PeakMemBytes,
		OOM:          res.OOM,
		Trace:        res.Trace,
	}, nil
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var q ExecuteRequest
	if !s.decode(w, r, &q) {
		return
	}
	ctx, cancel := s.deadlineFor(r.Context(), q.TimeoutMS)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()
	resp, err := s.run(ctx, &q)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchRequest executes several workloads concurrently over the worker
// pool; the batch shares one deadline.
type BatchRequest struct {
	Requests  []ExecuteRequest `json:"requests"`
	TimeoutMS int              `json:"timeout_ms,omitempty"`
}

// BatchResponse returns one entry per request, in order; failed entries
// carry an error instead of a result.
type BatchResponse struct {
	Responses []BatchEntry `json:"responses"`
}

// BatchEntry is one batch result: exactly one of Result and Error is set.
type BatchEntry struct {
	Result *ExecuteResponse `json:"result,omitempty"`
	Error  *ErrorBody       `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var batch BatchRequest
	if !s.decode(w, r, &batch) {
		return
	}
	if len(batch.Requests) == 0 {
		s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "batch", Err: errors.New("empty batch")})
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "batch",
			Err: fmt.Errorf("batch of %d exceeds the limit of %d", len(batch.Requests), s.cfg.MaxBatch)})
		return
	}
	ctx, cancel := s.deadlineFor(r.Context(), batch.TimeoutMS)
	defer cancel()

	out := make([]BatchEntry, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := &batch.Requests[i]
			if err := s.acquire(ctx); err != nil {
				body, _ := s.countErrAt("/v1/batch", err)
				out[i] = BatchEntry{Error: &body}
				return
			}
			defer s.release()
			resp, err := s.run(ctx, q)
			if err != nil {
				body, _ := s.countErrAt("/v1/batch", err)
				out[i] = BatchEntry{Error: &body}
				return
			}
			out[i] = BatchEntry{Result: resp}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Responses: out})
}

// TuneRequest is the wire form of one auto-tuning job: the workload named
// exactly as in ExecuteRequest (a non-empty schedule competes as a seed
// candidate instead of being applied) plus the search bounds.
type TuneRequest struct {
	Stmt     string            `json:"stmt"`
	Shapes   map[string][]int  `json:"shapes"`
	Formats  map[string]string `json:"formats,omitempty"`
	Schedule string            `json:"schedule,omitempty"`
	// Budget caps evaluated candidates (capped server-side at
	// MaxTuneBudget; 0 = distal.DefaultTuneBudget).
	Budget int `json:"budget,omitempty"`
	// Beam is the second search stage's width (0 = default 4).
	Beam int `json:"beam,omitempty"`
	// Seed fixes overflow sampling: equal seed and budget return the same
	// leaderboard.
	Seed int64 `json:"seed,omitempty"`
	// KeepTop is the leaderboard length (0 = default 10).
	KeepTop int `json:"keep_top,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// TuneEntry is one leaderboard row on the wire.
type TuneEntry struct {
	Schedule     string  `json:"schedule"`
	MakespanSec  float64 `json:"makespan_sec"`
	GFlops       float64 `json:"gflops"`
	Copies       int64   `json:"copies"`
	IntraBytes   int64   `json:"intra_bytes"`
	InterBytes   int64   `json:"inter_bytes"`
	PeakMemBytes int64   `json:"peak_mem_bytes"`
	OOM          bool    `json:"oom,omitempty"`
	PlanKey      string  `json:"plan_key"`
}

// TuneResponse reports one finished tuning run. The winner's plan is
// compiled and resident in the server's plan cache: replaying the winning
// schedule through /v1/execute is a cache hit.
type TuneResponse struct {
	Winner      TuneEntry   `json:"winner"`
	Baseline    *TuneEntry  `json:"baseline,omitempty"` // AutoSchedule, when defined
	SpeedupX    float64     `json:"speedup_x,omitempty"`
	Leaderboard []TuneEntry `json:"leaderboard"`
	Generated   int         `json:"generated"`
	Illegal     int         `json:"illegal"`
	Deduped     int         `json:"deduped"`
	Evaluated   int         `json:"evaluated"`
	Failed      int         `json:"failed"`
	ElapsedMS   float64     `json:"elapsed_ms"`
}

func tuneEntry(c distal.TunedCandidate) TuneEntry {
	return TuneEntry{
		Schedule:     c.Schedule,
		MakespanSec:  c.MakespanSec,
		GFlops:       c.GFlops,
		Copies:       c.Copies,
		IntraBytes:   c.IntraBytes,
		InterBytes:   c.InterBytes,
		PeakMemBytes: c.PeakMemBytes,
		OOM:          c.OOM,
		PlanKey:      c.PlanKey,
	}
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var q TuneRequest
	if !s.decode(w, r, &q) {
		return
	}
	// An omitted budget means the tuner's default — which must also obey
	// the operator's cap, so resolve it here before clamping.
	budget := q.Budget
	if budget <= 0 {
		budget = distal.DefaultTuneBudget
	}
	if budget > s.cfg.MaxTuneBudget {
		budget = s.cfg.MaxTuneBudget
	}
	ctx, cancel := s.deadlineFor(r.Context(), q.TimeoutMS)
	defer cancel()
	// A tune occupies one worker slot; its internal evaluation parallelism
	// is the tuner's own bounded pool.
	if err := s.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()
	req := distal.Request{Stmt: q.Stmt, Shapes: q.Shapes, Formats: q.Formats, Schedule: q.Schedule}
	res, err := s.sess.Tune(ctx, req, distal.TuneOptions{
		Budget: budget, Beam: q.Beam, Seed: q.Seed, KeepTop: q.KeepTop,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := TuneResponse{
		Winner:    tuneEntry(res.Winner),
		SpeedupX:  res.Speedup(),
		Generated: res.Generated,
		Illegal:   res.Illegal,
		Deduped:   res.Deduped,
		Evaluated: res.Evaluated,
		Failed:    res.Failed,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	if res.Baseline != nil {
		e := tuneEntry(*res.Baseline)
		resp.Baseline = &e
	}
	for _, c := range res.Leaderboard {
		resp.Leaderboard = append(resp.Leaderboard, tuneEntry(c))
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the /v1/stats payload. Every counter is read back from
// the same obs.Registry /metrics scrapes, so the two surfaces agree by
// construction.
type StatsResponse struct {
	UptimeS  float64 `json:"uptime_s"`
	Requests int64   `json:"requests"`
	Failures int64   `json:"failures"`
	Inflight int64   `json:"inflight"`
	Workers  int     `json:"workers"`

	Cache struct {
		Hits        int64 `json:"hits"`
		Misses      int64 `json:"misses"`
		Entries     int   `json:"entries"`
		MemoEntries int   `json:"memo_entries"`
	} `json:"cache"`
	ErrorsByKind map[string]int64 `json:"errors_by_kind,omitempty"`
	// Endpoints breaks requests and failures down per endpoint.
	Endpoints map[string]EndpointStats `json:"endpoints,omitempty"`
}

// EndpointStats is one endpoint's request and failure counts.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var resp StatsResponse
	resp.UptimeS = time.Since(s.start).Seconds()
	resp.Inflight = int64(s.inflight.Value())
	resp.Workers = s.cfg.Workers
	cs := s.sess.CacheStats()
	resp.Cache.Hits = cs.Hits
	resp.Cache.Misses = cs.Misses
	resp.Cache.Entries = cs.Entries
	resp.Cache.MemoEntries = cs.MemoEntries
	resp.Endpoints = map[string]EndpointStats{}
	s.reg.Each(mRequests, func(labels []string, v float64) {
		ep := resp.Endpoints[labels[0]]
		ep.Requests += int64(v)
		resp.Endpoints[labels[0]] = ep
		resp.Requests += int64(v)
	})
	s.reg.Each(mFailures, func(labels []string, v float64) {
		endpoint, kind := labels[0], labels[1]
		ep := resp.Endpoints[endpoint]
		ep.Failures += int64(v)
		resp.Endpoints[endpoint] = ep
		resp.Failures += int64(v)
		if resp.ErrorsByKind == nil {
			resp.ErrorsByKind = map[string]int64{}
		}
		resp.ErrorsByKind[kind] += int64(v)
	})
	if len(resp.Endpoints) == 0 {
		resp.Endpoints = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the registry in Prometheus text exposition format.
// Scrapes are deliberately not instrumented: a monitoring poll never moves
// the request counters it reads.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteTo(w) //nolint:errcheck — a dead scrape connection is the scraper's problem
}

// handleTrace serves one recent request's finished span tree as Chrome
// trace_event JSON, keyed by the request id the response carried in
// Distal-Request-Id. The ring is bounded, so old traces 404 once evicted.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.traces.Get(r.PathValue("id"))
	if tr == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: ErrorBody{
			Kind:    "unknown",
			Message: fmt.Sprintf("no trace for request id %q (the ring keeps the last %d)", r.PathValue("id"), s.cfg.TraceRing),
		}})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(tr.TraceEvent()) //nolint:errcheck — streaming best-effort
}
