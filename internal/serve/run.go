package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"distal"
	"distal/internal/obs"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// handleRun is real execution over the wire: a data-free distal.Request
// rides in the body's JSON section, input tensors follow as wire frames in
// statement order (or are filled server-side), the plan resolves through
// the session cache, Plan.Bind(...).Run executes on a worker slot under the
// request deadline, and the computed output tensor streams back as one
// frame with the run's metrics in Distal-* headers.
//
// Accepted bodies:
//
//	application/x-distal-run   u32 JSON length | wire.RunRequest | frames
//	application/json           bare wire.RunRequest, all inputs filled
//
// A "batch": N request executes N problem instances through one cached
// plan in a single launch walk (Plan.BindBatch): frames arrive
// back-to-back in instance-major order, fills materialize per instance
// (rand seeds offset by instance index), and the surviving instances'
// output frames stream back concatenated in instance order with
// per-instance status in the Distal-Batch-* headers. An instance whose
// frame decodes but disagrees with the declared shape fails alone — the
// batch is not torn down unless every instance fails.
//
// Failure mapping: malformed wire bytes and bad directives are KindParse
// (400); well-formed frames whose shape or rank disagrees with the declared
// request, missing frames, trailing garbage, and non-positive or
// over-the-cap batch counts are KindInput (422); nothing client-caused
// ever maps to 500.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	mt, ok := s.contentType(w, r, wire.ContentTypeRun, "application/json")
	if !ok {
		return
	}
	framed := mt == wire.ContentTypeRun
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRunBody)
	defer io.Copy(io.Discard, body) //nolint:errcheck — drain for keep-alive

	var q wire.RunRequest
	if framed {
		section, err := wire.ReadJSONSection(body)
		if err != nil {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
			return
		}
		if err := unmarshalStrict(section, &q); err != nil {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
			return
		}
	} else {
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
			return
		}
	}
	for name, fill := range q.Inputs {
		if !wire.ValidFill(fill) {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
				Err: fmt.Errorf("tensor %s: bad inputs directive %q", name, fill)})
			return
		}
		if fill == wire.FillWire && !framed {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
				Err: fmt.Errorf("tensor %s is marked %q, which needs Content-Type %s", name, wire.FillWire, wire.ContentTypeRun)})
			return
		}
	}
	// Validate the declared batch before compiling or allocating anything: a
	// lying batch header is an input error, never an allocation.
	batch, batched := 1, false
	if q.Batch != nil {
		batched = true
		batch = *q.Batch
		if batch <= 0 {
			s.writeError(w, &distal.Error{Kind: distal.KindInput, Op: "run",
				Err: fmt.Errorf("batch must be a positive instance count, got %d", batch)})
			return
		}
		if batch > s.cfg.MaxRunBatch {
			s.writeError(w, &distal.Error{Kind: distal.KindInput, Op: "run",
				Err: fmt.Errorf("batch of %d exceeds the limit of %d", batch, s.cfg.MaxRunBatch)})
			return
		}
	}

	ctx, cancel := s.deadlineFor(r.Context(), q.TimeoutMS)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()

	// Compile: the single-statement path resolves one plan, the
	// multi-statement path a plan DAG. Both yield the same execution
	// surface — the names to materialize per instance (frame order) and a
	// batch runner — so the frame decode and response streaming below are
	// shared.
	var (
		names    []string
		planKey  string
		cached   bool
		output   string
		compile  time.Duration
		stages   []wire.StageInfo
		runBatch func(surviving [][]*distal.Tensor) ([]*tensor.Dense, *distal.Result, error)
	)
	if len(q.Stmts) > 0 {
		stmts := make([]distal.Statement, len(q.Stmts))
		for i, st := range q.Stmts {
			stmts[i] = distal.Statement{Stmt: st.Stmt, Formats: st.Formats, Schedule: st.Schedule}
		}
		pp, err := s.sess.CompileProgram(ctx, distal.Request{
			Stmt: q.Stmt, Shapes: q.Shapes, Formats: q.Formats, Schedule: q.Schedule, Stmts: stmts,
		})
		if err != nil {
			s.writeError(w, err)
			return
		}
		// Only leaf inputs may carry directives: intermediates and the
		// output are allocated server-side by the program binding.
		names = pp.Inputs()
		leaf := map[string]bool{}
		for _, name := range names {
			leaf[name] = true
		}
		for name := range q.Inputs {
			if !leaf[name] {
				s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
					Err: fmt.Errorf("inputs names %s, which is not a leaf input of the program (computed tensors are server-allocated)", name)})
				return
			}
		}
		st := pp.Stats()
		planKey, cached, output, compile = pp.Key(), st.Cached, pp.Output(), st.CompileTime
		for _, sm := range pp.StageMetas() {
			stages = append(stages, wire.StageInfo{
				Output:   sm.Output,
				PlanKey:  sm.PlanKey,
				Cached:   sm.Cached,
				Repart:   sm.Repart,
				Launches: sm.Launches,
				Points:   sm.Points,
			})
		}
		runBatch = func(surviving [][]*distal.Tensor) ([]*tensor.Dense, *distal.Result, error) {
			bb := pp.BindBatch(surviving...)
			results, err := bb.Run(ctx)
			if err != nil {
				return nil, nil, err
			}
			outs := make([]*tensor.Dense, bb.Len())
			for i := range outs {
				out := bb.Output(i)
				if out == nil {
					return nil, nil, &distal.Error{Kind: distal.KindExec, Op: "run",
						Err: fmt.Errorf("program lost its output tensor %s", pp.Output())}
				}
				outs[i] = out.Data
			}
			return outs, results[0], nil
		}
	} else {
		plan, err := s.sess.Compile(ctx, distal.Request{
			Stmt: q.Stmt, Shapes: q.Shapes, Formats: q.Formats, Schedule: q.Schedule,
		})
		if err != nil {
			s.writeError(w, err)
			return
		}
		names = plan.Tensors()
		known := map[string]bool{}
		for _, name := range names {
			known[name] = true
		}
		for name := range q.Inputs {
			if !known[name] {
				s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
					Err: fmt.Errorf("inputs names %s, which is not a tensor of %q", name, q.Stmt)})
				return
			}
		}
		st := plan.Stats()
		planKey, cached, output, compile = plan.Key(), st.Cached, plan.Output(), st.CompileTime
		runBatch = func(surviving [][]*distal.Tensor) ([]*tensor.Dense, *distal.Result, error) {
			bb := plan.BindBatch(surviving...)
			results, err := bb.Run(ctx)
			if err != nil {
				return nil, nil, err
			}
			outs := make([]*tensor.Dense, bb.Len())
			for i := range outs {
				out := bb.Output(i)
				if out == nil {
					return nil, nil, &distal.Error{Kind: distal.KindExec, Op: "run",
						Err: fmt.Errorf("plan lost its output tensor %s", plan.Output())}
				}
				outs[i] = out.Data
			}
			return outs, results[0], nil
		}
	}

	// Materialize every tensor of every instance, decoding wire frames in
	// instance-major order (instance 0's tensors in statement order, then
	// instance 1's, ...). Each frame decodes under the exact element count
	// the request declared for its tensor, so a lying frame header can never
	// allocate beyond the declared workload. A frame that decodes cleanly
	// but disagrees with the declared shape is fully consumed — the stream
	// stays in sync — so only its instance fails; a malformed or truncated
	// frame desynchronizes the stream and fails the whole request.
	_, dsp := obs.Start(ctx, "decode-frames")
	instBinds := make([][]*distal.Tensor, batch)
	instErrs := make([]error, batch)
	for i := 0; i < batch; i++ {
		binds := make([]*distal.Tensor, 0, len(names))
		for _, name := range names {
			shape := q.Shapes[name]
			var data *tensor.Dense
			if q.Inputs[name] == wire.FillWire {
				elems := 1
				for _, s := range shape {
					elems *= s
				}
				var err error
				data, err = wire.DecodeLimit(body, elems)
				if err != nil {
					at := fmt.Sprintf("decoding frame for %s", name)
					if batched {
						at = fmt.Sprintf("decoding frame for %s (instance %d)", name, i)
					}
					dsp.End()
					s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
						Err: fmt.Errorf("%s: %w", at, err)})
					return
				}
				if !shapesEqual(data.Shape(), shape) {
					if instErrs[i] == nil {
						instErrs[i] = &distal.Error{Kind: distal.KindInput, Op: "run",
							Err: fmt.Errorf("frame for %s has shape %v, the request declares %v", name, data.Shape(), shape)}
					}
					continue // stay in sync: keep consuming this instance's frames
				}
				data.Rename(name)
			} else {
				data = tensor.New(name, shape...)
				if err := wire.ApplyFillInstance(data, q.Inputs[name], i); err != nil {
					dsp.End()
					s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
					return
				}
			}
			binds = append(binds, &distal.Tensor{Name: name, Shape: shape, Data: data})
		}
		if instErrs[i] == nil {
			instBinds[i] = binds
		}
	}
	if framed {
		// The body must end exactly at the last declared frame: trailing
		// bytes mean the client and server disagree about the frame set.
		var probe [1]byte
		if n, _ := io.ReadFull(body, probe[:]); n != 0 {
			dsp.End()
			s.writeError(w, &distal.Error{Kind: distal.KindInput, Op: "run",
				Err: errors.New("trailing data after the last declared wire frame")})
			return
		}
	}
	dsp.End()

	// Execute the surviving instances in one launch walk. When every
	// instance failed (which includes the single-instance path's only
	// instance), the first failure is the request's failure.
	var surviving [][]*distal.Tensor
	for i := 0; i < batch; i++ {
		if instErrs[i] == nil {
			surviving = append(surviving, instBinds[i])
		}
	}
	if len(surviving) == 0 {
		s.writeError(w, instErrs[0])
		return
	}
	ectx, esp := obs.Start(ctx, "execute")
	ctx = ectx
	esp.SetAttr("instances", strconv.Itoa(len(surviving)))
	t0 := time.Now()
	outs, res, err := runBatch(surviving)
	esp.End()
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.phaseCompile.Observe(compile.Seconds())
	s.phaseExecute.Observe(time.Since(t0).Seconds())
	s.batchSize.Observe(float64(len(surviving)))
	s.bytesIntra.Add(float64(res.IntraBytes))
	s.bytesInter.Add(float64(res.InterBytes))

	stats := wire.RunStats{
		PlanKey:      planKey,
		Cached:       cached,
		Output:       output,
		TimeS:        res.Time,
		GFlops:       res.GFlopsPerSec(),
		Copies:       res.Copies,
		IntraBytes:   res.IntraBytes,
		InterBytes:   res.InterBytes,
		PeakMemBytes: res.PeakMemBytes,
		CompileMS:    float64(compile) / float64(time.Millisecond),
		Stages:       stages,
	}
	stats.SetHeaders(w.Header())
	if batched {
		w.Header().Set(wire.HeaderBatch, strconv.Itoa(batch))
		tokens := make([]string, batch)
		messages := make([]string, batch)
		anyFailed := false
		for i := 0; i < batch; i++ {
			if instErrs[i] == nil {
				tokens[i] = wire.BatchStatusOK
				continue
			}
			anyFailed = true
			tokens[i] = distal.KindOf(instErrs[i]).String()
			messages[i] = instErrs[i].Error()
		}
		w.Header().Set(wire.HeaderBatchStatus, strings.Join(tokens, ","))
		if anyFailed {
			enc, err := json.Marshal(messages)
			if err == nil {
				w.Header().Set(wire.HeaderBatchErrors, string(enc))
			}
		}
	}
	w.Header().Set("Content-Type", wire.ContentTypeTensor)
	w.WriteHeader(http.StatusOK)
	// Stream the result frame by frame: Encode writes through a 64 KiB
	// scratch and the flushing writer pushes each chunk out immediately, so
	// the response is chunked transfer with no whole-result buffering. A
	// batched response concatenates the surviving instances' frames in
	// instance order.
	_, rsp := obs.Start(ctx, "stream-response")
	defer rsp.End()
	fw := &flushWriter{w: w}
	for _, out := range outs {
		if err := wire.Encode(fw, out); err != nil {
			// The status line is gone; all we can do is drop the connection
			// so the client sees a truncated frame instead of a silent short
			// read.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
			return
		}
	}
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// flushWriter flushes after every write so the encoder's chunks leave the
// server as they are produced.
type flushWriter struct {
	w http.ResponseWriter
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}
