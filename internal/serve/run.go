package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"distal"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// handleRun is real execution over the wire: a data-free distal.Request
// rides in the body's JSON section, input tensors follow as wire frames in
// statement order (or are filled server-side), the plan resolves through
// the session cache, Plan.Bind(...).Run executes on a worker slot under the
// request deadline, and the computed output tensor streams back as one
// frame with the run's metrics in Distal-* headers.
//
// Accepted bodies:
//
//	application/x-distal-run   u32 JSON length | wire.RunRequest | frames
//	application/json           bare wire.RunRequest, all inputs filled
//
// Failure mapping: malformed wire bytes and bad directives are KindParse
// (400); well-formed frames whose shape or rank disagrees with the declared
// request, missing frames, and trailing garbage are KindInput (422);
// nothing client-caused ever maps to 500.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	mt, ok := s.contentType(w, r, wire.ContentTypeRun, "application/json")
	if !ok {
		return
	}
	framed := mt == wire.ContentTypeRun
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRunBody)
	defer io.Copy(io.Discard, body) //nolint:errcheck — drain for keep-alive

	var q wire.RunRequest
	if framed {
		section, err := wire.ReadJSONSection(body)
		if err != nil {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
			return
		}
		if err := unmarshalStrict(section, &q); err != nil {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
			return
		}
	} else {
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
			return
		}
	}
	for name, fill := range q.Inputs {
		if !wire.ValidFill(fill) {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
				Err: fmt.Errorf("tensor %s: bad inputs directive %q", name, fill)})
			return
		}
		if fill == wire.FillWire && !framed {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
				Err: fmt.Errorf("tensor %s is marked %q, which needs Content-Type %s", name, wire.FillWire, wire.ContentTypeRun)})
			return
		}
	}

	ctx, cancel := s.deadlineFor(r.Context(), q.TimeoutMS)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()

	plan, err := s.sess.Compile(ctx, distal.Request{
		Stmt: q.Stmt, Shapes: q.Shapes, Formats: q.Formats, Schedule: q.Schedule,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	names := plan.Tensors()
	known := map[string]bool{}
	for _, name := range names {
		known[name] = true
	}
	for name := range q.Inputs {
		if !known[name] {
			s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
				Err: fmt.Errorf("inputs names %s, which is not a tensor of %q", name, q.Stmt)})
			return
		}
	}

	// Materialize every tensor of the statement, decoding wire frames in
	// statement order. Each frame decodes under the exact element count the
	// request declared for its tensor, so a lying frame header can never
	// allocate beyond the declared workload.
	binds := make([]*distal.Tensor, 0, len(names))
	for _, name := range names {
		shape := q.Shapes[name]
		var data *tensor.Dense
		if q.Inputs[name] == wire.FillWire {
			elems := 1
			for _, s := range shape {
				elems *= s
			}
			data, err = wire.DecodeLimit(body, elems)
			if err != nil {
				s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run",
					Err: fmt.Errorf("decoding frame for %s: %w", name, err)})
				return
			}
			if !shapesEqual(data.Shape(), shape) {
				s.writeError(w, &distal.Error{Kind: distal.KindInput, Op: "run",
					Err: fmt.Errorf("frame for %s has shape %v, the request declares %v", name, data.Shape(), shape)})
				return
			}
			data.Rename(name)
		} else {
			data = tensor.New(name, shape...)
			if err := wire.ApplyFill(data, q.Inputs[name]); err != nil {
				s.writeError(w, &distal.Error{Kind: distal.KindParse, Op: "run", Err: err})
				return
			}
		}
		binds = append(binds, &distal.Tensor{Name: name, Shape: shape, Data: data})
	}
	if framed {
		// The body must end exactly at the last declared frame: trailing
		// bytes mean the client and server disagree about the frame set.
		var probe [1]byte
		if n, _ := io.ReadFull(body, probe[:]); n != 0 {
			s.writeError(w, &distal.Error{Kind: distal.KindInput, Op: "run",
				Err: errors.New("trailing data after the last declared wire frame")})
			return
		}
	}

	res, err := plan.Bind(binds...).Run(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var out *tensor.Dense
	for _, b := range binds {
		if b.Name == plan.Output() {
			out = b.Data
		}
	}
	if out == nil {
		s.writeError(w, &distal.Error{Kind: distal.KindExec, Op: "run",
			Err: fmt.Errorf("plan lost its output tensor %s", plan.Output())})
		return
	}

	st := plan.Stats()
	stats := wire.RunStats{
		PlanKey:      plan.Key(),
		Cached:       st.Cached,
		Output:       plan.Output(),
		TimeS:        res.Time,
		GFlops:       res.GFlopsPerSec(),
		Copies:       res.Copies,
		IntraBytes:   res.IntraBytes,
		InterBytes:   res.InterBytes,
		PeakMemBytes: res.PeakMemBytes,
		CompileMS:    float64(st.CompileTime) / float64(time.Millisecond),
	}
	stats.SetHeaders(w.Header())
	w.Header().Set("Content-Type", wire.ContentTypeTensor)
	w.WriteHeader(http.StatusOK)
	// Stream the result frame by frame: Encode writes through a 64 KiB
	// scratch and the flushing writer pushes each chunk out immediately, so
	// the response is chunked transfer with no whole-result buffering.
	if err := wire.Encode(&flushWriter{w: w}, out); err != nil {
		// The status line is gone; all we can do is drop the connection so
		// the client sees a truncated frame instead of a silent short read.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
	}
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// flushWriter flushes after every write so the encoder's chunks leave the
// server as they are produced.
type flushWriter struct {
	w http.ResponseWriter
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}
