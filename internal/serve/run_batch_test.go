package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// batchFramed assembles a raw batched /v1/run body: the JSON envelope
// followed by the given frames back to back (instance-major when the caller
// orders them that way).
func batchFramed(t *testing.T, req wire.RunRequest, frames ...*tensor.Dense) []byte {
	t.Helper()
	var buf bytes.Buffer
	envelope, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteJSONSection(&buf, envelope); err != nil {
		t.Fatal(err)
	}
	if err := wire.EncodeFrames(&buf, frames...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunBatchEndpoint: the wire-level tentpole check. A batched run of each
// example workload must hand every instance back bit-identical to an
// in-process single-instance Bind.Run of the same data, through exactly one
// compile.
func TestRunBatchEndpoint(t *testing.T) {
	for _, c := range runCases() {
		t.Run(c.name, func(t *testing.T) {
			sess := distal.NewSession(c.machine())
			ts := httptest.NewServer(New(sess, Config{}))
			defer ts.Close()

			const n = 3
			var req wire.RunRequest
			insts := make([]map[string]*tensor.Dense, n)
			for i := range insts {
				var data map[string]*tensor.Dense
				req, data = inputsFor(t, c, int64(500*i+11))
				insts[i] = data
			}
			client := &wire.Client{BaseURL: ts.URL}
			outcome, err := client.RunBatch(context.Background(), req, insts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if outcome.Errs[i] != nil {
					t.Fatalf("instance %d failed: %v", i, outcome.Errs[i])
				}
				want := referenceRun(t, c, insts[i])
				assertBitsEqual(t, fmt.Sprintf("instance %d vs in-process Bind.Run", i), outcome.Outputs[i], want)
			}
			if outcome.Stats.PlanKey == "" || outcome.Stats.TimeS <= 0 {
				t.Fatalf("implausible stats: %+v", outcome.Stats)
			}
			if st := sess.CacheStats(); st.Misses != 1 {
				t.Fatalf("stats = %+v, want exactly one compile for the whole batch", st)
			}
		})
	}
}

// TestRunBatchMetricsMatchSingle: the simulated accounting of a batched run
// executes once, so its metric headers are bit-identical to the same
// workload run single-instance.
func TestRunBatchMetricsMatchSingle(t *testing.T) {
	c := runCases()[0]
	ts := httptest.NewServer(New(distal.NewSession(c.machine()), Config{}))
	defer ts.Close()

	client := &wire.Client{BaseURL: ts.URL}
	req, data := inputsFor(t, c, 77)
	_, single, err := client.Run(context.Background(), req, data)
	if err != nil {
		t.Fatal(err)
	}
	insts := make([]map[string]*tensor.Dense, 8)
	for i := range insts {
		_, insts[i] = inputsFor(t, c, int64(900*i+13))
	}
	outcome, err := client.RunBatch(context.Background(), req, insts)
	if err != nil {
		t.Fatal(err)
	}
	b := outcome.Stats
	if b.TimeS != single.TimeS || b.Copies != single.Copies ||
		b.IntraBytes != single.IntraBytes || b.InterBytes != single.InterBytes ||
		b.PeakMemBytes != single.PeakMemBytes {
		t.Fatalf("batched metrics %+v differ from single-instance %+v", b, *single)
	}
}

// TestRunBatchServerSideFills: per-instance fills — "rand:<seed>" draws
// instance i from seed+i on the server, and the client reconstructs every
// instance bit-identically without shipping a byte.
func TestRunBatchServerSideFills(t *testing.T) {
	c := runCases()[0] // summa
	ts := httptest.NewServer(New(distal.NewSession(c.machine()), Config{}))
	defer ts.Close()

	const n = 3
	req := c.req
	req.Inputs = map[string]string{"B": "rand:5", "C": "rand:9"}
	nn := n
	req.Batch = &nn
	client := &wire.Client{BaseURL: ts.URL}
	outcome, err := client.RunBatch(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := ir.Parse(req.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		B := tensor.New("B", req.Shapes["B"]...)
		B.FillRandom(5 + int64(i))
		C := tensor.New("C", req.Shapes["C"]...)
		C.FillRandom(9 + int64(i))
		want, err := ir.Evaluate(stmt, map[string]*tensor.Dense{"B": B, "C": C})
		if err != nil {
			t.Fatal(err)
		}
		assertBitsEqual(t, fmt.Sprintf("instance %d vs local per-instance fill", i), outcome.Outputs[i], want)
	}
}

// TestRunBatchPartialFailure: an instance whose frame decodes but has the
// wrong shape fails alone — the response is still 200, the batch headers
// name the casualty, and the surviving instances' outputs stay correct and
// in order.
func TestRunBatchPartialFailure(t *testing.T) {
	c := runCases()[0]
	ts := httptest.NewServer(New(distal.NewSession(c.machine()), Config{}))
	defer ts.Close()

	const n = 3
	req, _ := inputsFor(t, c, 0)
	nn := n
	req.Batch = &nn
	insts := make([]map[string]*tensor.Dense, n)
	for i := range insts {
		_, insts[i] = inputsFor(t, c, int64(300*i+1))
	}
	// Instance 1's B keeps the declared element count (so the frame decodes
	// and the stream stays in sync) but lies about the shape.
	bad := tensor.New("B", 32, 128)
	bad.FillRandom(99)
	insts[1]["B"] = bad

	client := &wire.Client{BaseURL: ts.URL}
	outcome, err := client.RunBatch(context.Background(), req, insts)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Errs[0] != nil || outcome.Errs[2] != nil {
		t.Fatalf("surviving instances reported errors: %v, %v", outcome.Errs[0], outcome.Errs[2])
	}
	ie, ok := outcome.Errs[1].(*wire.InstanceError)
	if !ok {
		t.Fatalf("instance 1 error = %v (%T), want *wire.InstanceError", outcome.Errs[1], outcome.Errs[1])
	}
	if ie.Kind != "input" || ie.Index != 1 || !strings.Contains(ie.Message, "shape") {
		t.Fatalf("instance 1 error = %+v", ie)
	}
	if outcome.Outputs[1] != nil {
		t.Fatal("failed instance produced an output")
	}
	for _, i := range []int{0, 2} {
		want := referenceRun(t, c, insts[i])
		assertBitsEqual(t, fmt.Sprintf("surviving instance %d", i), outcome.Outputs[i], want)
	}
}

// TestRunBatchErrorMapping: every client-caused batch failure maps to 4xx —
// bad batch counts and framing disagreements 422, desynchronized frames 400,
// never 500.
func TestRunBatchErrorMapping(t *testing.T) {
	c := runCases()[0]

	mk := func(name string, dims ...int) *tensor.Dense {
		d := tensor.New(name, dims...)
		d.FillRandom(7)
		return d
	}
	wireReq := func(batch int) wire.RunRequest {
		req := c.req
		req.Inputs = map[string]string{"B": wire.FillWire, "C": wire.FillWire}
		req.Batch = &batch
		return req
	}
	fillReq := func(batch int) wire.RunRequest {
		req := c.req
		req.Inputs = map[string]string{"B": "rand:1", "C": "ones"}
		req.Batch = &batch
		return req
	}
	// Two instances' worth of correct frames, instance-major.
	goodFrames := func(n int) []*tensor.Dense {
		var out []*tensor.Dense
		for i := 0; i < n; i++ {
			out = append(out, mk("B", 64, 64), mk("C", 64, 64))
		}
		return out
	}

	cases := []struct {
		name       string
		cfg        Config
		body       func(t *testing.T) []byte
		json       bool
		wantStatus int
		wantKind   string
	}{
		{
			name:       "batch zero",
			body:       func(t *testing.T) []byte { b, _ := json.Marshal(fillReq(0)); return b },
			json:       true,
			wantStatus: http.StatusUnprocessableEntity,
			wantKind:   "input",
		},
		{
			name:       "batch negative",
			body:       func(t *testing.T) []byte { b, _ := json.Marshal(fillReq(-2)); return b },
			json:       true,
			wantStatus: http.StatusUnprocessableEntity,
			wantKind:   "input",
		},
		{
			name:       "batch over the default cap",
			body:       func(t *testing.T) []byte { b, _ := json.Marshal(fillReq(65)); return b },
			json:       true,
			wantStatus: http.StatusUnprocessableEntity,
			wantKind:   "input",
		},
		{
			name:       "batch over a configured cap",
			cfg:        Config{MaxRunBatch: 2},
			body:       func(t *testing.T) []byte { b, _ := json.Marshal(fillReq(3)); return b },
			json:       true,
			wantStatus: http.StatusUnprocessableEntity,
			wantKind:   "input",
		},
		{
			name: "partial frame set",
			// The header declares 3 instances; only 2 instances' frames
			// follow, so instance 2's first frame truncates.
			body: func(t *testing.T) []byte {
				return batchFramed(t, wireReq(3), goodFrames(2)...)
			},
			wantStatus: http.StatusBadRequest,
			wantKind:   "parse",
		},
		{
			name: "batch header contradicting the frames",
			// The header declares 2 instances; 3 instances' frames follow,
			// leaving trailing data after the declared set.
			body: func(t *testing.T) []byte {
				return batchFramed(t, wireReq(2), goodFrames(3)...)
			},
			wantStatus: http.StatusUnprocessableEntity,
			wantKind:   "input",
		},
		{
			name: "malformed frame mid-batch",
			body: func(t *testing.T) []byte {
				body := batchFramed(t, wireReq(2), goodFrames(1)...)
				return append(body, []byte("this is not a frame header....")...)
			},
			wantStatus: http.StatusBadRequest,
			wantKind:   "parse",
		},
		{
			name: "every instance rejected",
			// Both instances' B frames lie about the shape (same element
			// count, so they decode): with no survivor the whole request
			// fails like the single-instance path.
			body: func(t *testing.T) []byte {
				return batchFramed(t, wireReq(2),
					mk("B", 32, 128), mk("C", 64, 64),
					mk("B", 128, 32), mk("C", 64, 64))
			},
			wantStatus: http.StatusUnprocessableEntity,
			wantKind:   "input",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(New(distal.NewSession(c.machine()), tc.cfg))
			defer ts.Close()
			ct := wire.ContentTypeRun
			if tc.json {
				ct = "application/json"
			}
			resp, err := http.Post(ts.URL+"/v1/run", ct, bytes.NewReader(tc.body(t)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var eb errorResponse
			_ = json.NewDecoder(resp.Body).Decode(&eb)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d (%s: %s), want %d", resp.StatusCode, eb.Error.Kind, eb.Error.Message, tc.wantStatus)
			}
			if eb.Error.Kind != tc.wantKind {
				t.Fatalf("kind = %q (%s), want %q", eb.Error.Kind, eb.Error.Message, tc.wantKind)
			}
		})
	}
}

// TestRunBatchHeaders: the raw response of a partially failed batch carries
// the declared count, one status token per instance, and the per-instance
// messages — and the body holds exactly the surviving frames.
func TestRunBatchHeaders(t *testing.T) {
	c := runCases()[0]
	ts := httptest.NewServer(New(distal.NewSession(c.machine()), Config{}))
	defer ts.Close()

	req := c.req
	req.Inputs = map[string]string{"B": wire.FillWire, "C": wire.FillWire}
	n := 2
	req.Batch = &n
	good := func(name string, seed int64) *tensor.Dense {
		d := tensor.New(name, 64, 64)
		d.FillRandom(seed)
		return d
	}
	bad := tensor.New("B", 32, 128) // decodes, wrong shape
	bad.FillRandom(3)
	body := batchFramed(t, req, good("B", 1), good("C", 2), bad, good("C", 4))
	resp, err := http.Post(ts.URL+"/v1/run", wire.ContentTypeRun, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(wire.HeaderBatch); got != "2" {
		t.Fatalf("%s = %q, want 2", wire.HeaderBatch, got)
	}
	if got := resp.Header.Get(wire.HeaderBatchStatus); got != "ok,input" {
		t.Fatalf("%s = %q, want \"ok,input\"", wire.HeaderBatchStatus, got)
	}
	var msgs []string
	if err := json.Unmarshal([]byte(resp.Header.Get(wire.HeaderBatchErrors)), &msgs); err != nil {
		t.Fatalf("%s did not parse: %v", wire.HeaderBatchErrors, err)
	}
	if len(msgs) != 2 || msgs[0] != "" || !strings.Contains(msgs[1], "shape") {
		t.Fatalf("%s = %q", wire.HeaderBatchErrors, msgs)
	}
	// Exactly one surviving frame, then EOF.
	if _, err := wire.DecodeLimit(resp.Body, 64*64); err != nil {
		t.Fatal(err)
	}
	var probe [1]byte
	if m, _ := resp.Body.Read(probe[:]); m != 0 {
		t.Fatal("trailing bytes after the surviving instance's frame")
	}
}
