package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"distal"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// fuzzBatchRequest is the fixed envelope the framing fuzzer rides on: a
// small, always-compilable workload whose two inputs arrive as wire frames.
// Keeping the JSON section valid focuses the fuzzer on what this PR added —
// the batch count and the instance-major frame stream.
func fuzzBatchRequest(batch int) wire.RunRequest {
	return wire.RunRequest{
		Stmt: "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{
			"A": {16, 16}, "B": {16, 16}, "C": {16, 16},
		},
		Inputs: map[string]string{"B": wire.FillWire, "C": wire.FillWire},
		Batch:  &batch,
	}
}

// fuzzBatchBody frames the fixed request with the given batch count and
// appends raw frame bytes verbatim.
func fuzzBatchBody(batch int, frames []byte) ([]byte, error) {
	req := fuzzBatchRequest(batch)
	envelope, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := wire.WriteJSONSection(&buf, envelope); err != nil {
		return nil, err
	}
	buf.Write(frames)
	return buf.Bytes(), nil
}

// goodFrameBytes returns n instances' worth of correctly shaped frames for
// the fuzz request, instance-major.
func goodFrameBytes(n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		b := tensor.New("B", 16, 16)
		b.FillRandom(int64(2*i + 1))
		c := tensor.New("C", 16, 16)
		c.FillRandom(int64(2*i + 2))
		if err := wire.EncodeFrames(&buf, b, c); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// fuzzBatchSeeds is the checked-in seed corpus: a healthy batch, truncated
// instance frames, a batch header contradicting the frame count in both
// directions, an out-of-range count, and garbage where a frame should start.
func fuzzBatchSeeds() [](struct {
	batch  int
	frames []byte
}) {
	garbage := append(goodFrameBytes(1), []byte("this is not a frame header....")...)
	return []struct {
		batch  int
		frames []byte
	}{
		{2, goodFrameBytes(2)},                      // healthy batch
		{3, goodFrameBytes(2)},                      // truncated instance frames
		{1, goodFrameBytes(2)},                      // frames exceed the declared batch
		{0, goodFrameBytes(1)},                      // lying batch header: zero
		{100, goodFrameBytes(1)},                    // lying batch header: over the cap
		{-4, nil},                                   // lying batch header: negative
		{2, garbage},                                // malformed second instance
		{2, goodFrameBytes(2)[:100]},                // truncated mid-frame
		{1, nil},                                    // no frames at all
	}
}

// FuzzRunBatchFraming: no batched framing input — truncated instance frames,
// batch headers contradicting the frame stream, lying or out-of-range batch
// counts, garbage frames — may ever produce a 500 or an unbounded
// allocation. Client-caused failures map to 400/422; a healthy body answers
// 200.
func FuzzRunBatchFraming(f *testing.F) {
	for _, s := range fuzzBatchSeeds() {
		f.Add(s.batch, s.frames)
	}
	ts := httptest.NewServer(New(distal.NewSession(distal.NewMachine(distal.CPU, 2, 2)),
		Config{MaxRunBody: 1 << 20, MaxRunBatch: 8}))
	defer ts.Close()

	f.Fuzz(func(t *testing.T, batch int, frames []byte) {
		body, err := fuzzBatchBody(batch, frames)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/run", wire.ContentTypeRun, bytes.NewReader(body))
		if err != nil {
			// MaxBytesReader may kill the connection mid-upload; that is a
			// bounded refusal, not a server failure.
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for keep-alive
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity:
		default:
			t.Fatalf("batch=%d, %d frame bytes: status %d, want 200, 400, or 422",
				batch, len(frames), resp.StatusCode)
		}
	})
}

// TestWriteBatchFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzRunBatchFraming. Run with
// DISTAL_WRITE_FUZZ_CORPUS=1 go test ./internal/serve -run TestWriteBatchFuzzCorpus
func TestWriteBatchFuzzCorpus(t *testing.T) {
	if os.Getenv("DISTAL_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set DISTAL_WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRunBatchFraming")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzBatchSeeds() {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "go test fuzz v1\nint(%d)\n[]byte(%s)\n", s.batch, strconv.Quote(string(s.frames)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
