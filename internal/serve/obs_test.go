package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"distal"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// traceExport mirrors the Chrome trace_event JSON shape GET /v1/trace/{id}
// serves.
type traceExport struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]string `json:"otherData"`
}

func fetchTraceExport(t *testing.T, baseURL, id string) traceExport {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /v1/trace/%s = %d: %s", id, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace Content-Type = %q, want application/json", ct)
	}
	var tr traceExport
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	return tr
}

// TestTraceExportChain: a multi-statement /v1/run leaves a complete span
// tree in the trace ring — queue wait, frame decode, per-stage compiles
// (with cache provenance), per-stage execution, and response streaming —
// exported as Chrome trace_event JSON keyed by the response's request id.
func TestTraceExportChain(t *testing.T) {
	const n = 32
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	ts := httptest.NewServer(New(sess, Config{}))
	defer ts.Close()

	req := chainRunRequest(n)
	a := tensor.New("A", n, n)
	a.FillRandom(20)
	client := &wire.Client{BaseURL: ts.URL}

	run := func(wantCache string) traceExport {
		t.Helper()
		_, stats, err := client.Run(context.Background(), req, map[string]*tensor.Dense{"A": a})
		if err != nil {
			t.Fatal(err)
		}
		if stats.RequestID == "" {
			t.Fatal("response carried no Distal-Request-Id")
		}
		if len(stats.Stages) != 2 {
			t.Fatalf("Distal-Stages carried %d rows, want 2: %+v", len(stats.Stages), stats.Stages)
		}
		if stats.Stages[0].Output != "D" || stats.Stages[1].Output != "E" {
			t.Fatalf("stage outputs = %s, %s, want D, E", stats.Stages[0].Output, stats.Stages[1].Output)
		}
		tr := fetchTraceExport(t, ts.URL, stats.RequestID)
		if tr.DisplayTimeUnit != "ms" {
			t.Fatalf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
		}
		if tr.OtherData["request_id"] != stats.RequestID {
			t.Fatalf("otherData.request_id = %q, want %q", tr.OtherData["request_id"], stats.RequestID)
		}
		count := map[string]int{}
		var cacheAttrs []string
		for _, e := range tr.TraceEvents {
			if e.Ph != "X" || e.Cat != "distal" {
				t.Fatalf("event %q: ph=%q cat=%q, want complete distal events", e.Name, e.Ph, e.Cat)
			}
			count[e.Name]++
			if e.Name == "compile" {
				cacheAttrs = append(cacheAttrs, e.Args["cache"])
			}
		}
		for name, want := range map[string]int{
			"/v1/run": 1, "queue-wait": 1, "decode-frames": 1, "execute": 1,
			"stream-response": 1, "compile-program": 1,
			"compile-stage": 2, "compile": 2, "run-stage": 2,
		} {
			if count[name] != want {
				t.Fatalf("trace has %d %q spans, want %d (counts: %v)", count[name], name, want, count)
			}
		}
		if count["launch"] < 2 {
			t.Fatalf("trace has %d launch spans, want at least one per stage (counts: %v)", count["launch"], count)
		}
		for _, c := range cacheAttrs {
			if c != wantCache {
				t.Fatalf("compile span cache attr = %q, want %q", c, wantCache)
			}
		}
		return tr
	}

	run("miss")
	run("hit") // the repeat resolves every stage from the plan cache

	// An unknown id is a JSON 404, not an empty 200.
	resp, err := http.Get(ts.URL + "/v1/trace/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: status = %d, want 404", resp.StatusCode)
	}
}

// scrapeMetrics parses the /metrics exposition into series name{labels} ->
// value, failing on anything the Prometheus text format forbids.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("metrics line %q: bad value: %v", line, err)
		}
		out[series] = v
	}
	return out
}

func fetchStats(t *testing.T, baseURL string) StatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMetricsStatsAgree hammers /metrics and /v1/stats while batched /v1/run
// requests are in flight (the -race interleaving test), then checks the two
// surfaces report identical counters once the dust settles: they read the
// same registry, so any disagreement is a bug, not skew.
func TestMetricsStatsAgree(t *testing.T) {
	const n, instances, runs = 16, 3, 4
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	ts := httptest.NewServer(New(sess, Config{}))
	defer ts.Close()

	req := chainRunRequest(n)
	req.Inputs = map[string]string{"A": "rand:20", "B": "rand:21", "C": "rand:22"}
	b := instances
	req.Batch = &b

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := scrapeMetrics(t, ts.URL)
				st := fetchStats(t, ts.URL)
				// Mid-flight values move between the two fetches; shape
				// invariants must hold in any interleaving.
				if st.Inflight < 0 || m[`distal_workers`] != float64(st.Workers) {
					t.Errorf("implausible mid-flight stats: %+v vs %v", st, m)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	client := &wire.Client{BaseURL: ts.URL}
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.RunBatch(context.Background(), req, nil); err != nil {
				t.Errorf("batched run: %v", err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	if t.Failed() {
		return
	}

	m := scrapeMetrics(t, ts.URL)
	st := fetchStats(t, ts.URL)
	if got := m[`distal_http_requests_total{endpoint="/v1/run"}`]; got != runs {
		t.Fatalf("metrics report %v /v1/run requests, want %d", got, runs)
	}
	if st.Endpoints["/v1/run"].Requests != runs || st.Requests != runs {
		t.Fatalf("stats report %+v, want %d /v1/run requests", st, runs)
	}
	for series, want := range map[string]float64{
		`distal_plan_cache_hits_total`:   float64(st.Cache.Hits),
		`distal_plan_cache_misses_total`: float64(st.Cache.Misses),
		`distal_plan_cache_entries`:      float64(st.Cache.Entries),
		`distal_inflight_requests`:       float64(st.Inflight),
		`distal_workers`:                 float64(st.Workers),
	} {
		if m[series] != want {
			t.Fatalf("%s = %v on /metrics but %v on /v1/stats", series, m[series], want)
		}
	}
	if m[`distal_run_batch_size_sum`] != float64(runs*instances) {
		t.Fatalf("batch-size sum = %v, want %d", m[`distal_run_batch_size_sum`], runs*instances)
	}
	if m[`distal_phase_duration_seconds_count{phase="execute"}`] != runs {
		t.Fatalf("execute phase count = %v, want %d", m[`distal_phase_duration_seconds_count{phase="execute"}`], runs)
	}
}

// TestFailureCountersByEndpoint: failures land on the failing endpoint with
// the taxonomy kind, on both surfaces.
func TestFailureCountersByEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/execute", ExecuteRequest{Stmt: "not a statement"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d (%s), want 400", resp.StatusCode, body)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := m[`distal_http_failures_total{endpoint="/v1/execute",kind="parse"}`]; got != 1 {
		t.Fatalf("failure counter = %v, want 1", got)
	}
	st := fetchStats(t, ts.URL)
	if st.Failures != 1 || st.ErrorsByKind["parse"] != 1 || st.Endpoints["/v1/execute"].Failures != 1 {
		t.Fatalf("stats failures = %+v, want one parse failure on /v1/execute", st)
	}
}

// TestAccessLog: LogJSON emits exactly one well-formed JSON line per
// request, carrying the request id the response advertised.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	var mu sync.Mutex
	ts := httptest.NewServer(New(sess, Config{LogJSON: true, LogWriter: syncWriter{&mu, &buf}}))
	defer ts.Close()

	resp, body := post(t, ts.URL+"/v1/execute", summaRequest(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	id := resp.Header.Get(wire.HeaderRequestID)
	if id == "" {
		t.Fatal("no request id on the response")
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(logged), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d access-log lines, want 1: %q", len(lines), logged)
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("access-log line is not JSON: %v (%s)", err, lines[0])
	}
	if entry["request_id"] != id || entry["endpoint"] != "/v1/execute" || entry["status"] != float64(200) {
		t.Fatalf("access-log entry = %v, want request_id=%s endpoint=/v1/execute status=200", entry, id)
	}
	if _, ok := entry["plan_key"]; !ok {
		t.Fatalf("access-log entry carries no plan_key: %v", entry)
	}
}

// TestRequestIDEcho: a client-supplied Distal-Request-Id is echoed and keys
// the trace.
func TestRequestIDEcho(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	data, _ := json.Marshal(summaRequest(64))
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/execute", bytes.NewReader(data))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(wire.HeaderRequestID, "caller-chosen-id")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get(wire.HeaderRequestID); got != "caller-chosen-id" {
		t.Fatalf("request id = %q, want the caller's", got)
	}
	tr := fetchTraceExport(t, ts.URL, "caller-chosen-id")
	if len(tr.TraceEvents) == 0 || tr.TraceEvents[0].Name != "/v1/execute" {
		t.Fatalf("trace for echoed id has events %+v, want a /v1/execute root", tr.TraceEvents)
	}
}

// syncWriter serializes concurrent access-log writes with reads in the test.
type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
