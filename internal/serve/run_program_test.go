package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"distal"
	"distal/internal/program"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// bareJSONError posts req in the curl-friendly bare-JSON form and returns
// the HTTP status with the structured error body's message.
func bareJSONError(t *testing.T, baseURL string, req wire.RunRequest) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	return resp.StatusCode, eb.Error.Message
}

// chainRunRequest is the 2-stage GEMM chain E = (A*B)*C over a 2x2 grid,
// with A riding the wire and B, C filled server-side.
func chainRunRequest(n int) wire.RunRequest {
	sched := func(out, lhs, rhs string) string {
		return "divide(i,io,ii,2) divide(j,jo,ji,2) reorder(io,jo,ii,ji) distribute(io,jo) " +
			"split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(jo," + out + ") communicate(ko," + lhs + "," + rhs + ")"
	}
	return wire.RunRequest{
		Shapes: map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Stmts: []wire.StmtSpec{
			{Stmt: "D(i,j) = A(i,k) * B(k,j)", Schedule: sched("D", "A", "B")},
			{Stmt: "E(i,j) = D(i,k) * C(k,j)", Schedule: sched("E", "D", "C")},
		},
		Inputs: map[string]string{"A": wire.FillWire, "B": "rand:21", "C": "rand:22"},
	}
}

// TestRunProgramEndpoint: a multi-statement /v1/run executes the whole
// chain server-side — leaf-input frames only on the wire — and the
// streamed output matches the reference chain evaluation; the repeat
// request is served entirely from the plan cache.
func TestRunProgramEndpoint(t *testing.T) {
	const n = 32
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	ts := httptest.NewServer(New(sess, Config{}))
	defer ts.Close()

	req := chainRunRequest(n)
	a := tensor.New("A", n, n)
	a.FillRandom(20)
	client := &wire.Client{BaseURL: ts.URL}
	out, stats, err := client.Run(context.Background(), req, map[string]*tensor.Dense{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Output != "E" {
		t.Fatalf("output = %s, want E (the last statement's LHS)", stats.Output)
	}
	if stats.Cached {
		t.Fatal("first run reported cached")
	}
	if got := out.Shape(); len(got) != 2 || got[0] != n || got[1] != n {
		t.Fatalf("output shape = %v, want [%d %d]", got, n, n)
	}

	// Reference: the whole chain through the sequential interpreter, with
	// the fills reconstructed client-side.
	b := tensor.New("B", n, n)
	b.FillRandom(21)
	c := tensor.New("C", n, n)
	c.FillRandom(22)
	p, err := program.Parse([]program.Statement{
		{Stmt: "D(i,j) = A(i,k) * B(k,j)"},
		{Stmt: "E(i,j) = D(i,k) * C(k,j)"},
	}, req.Shapes)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := program.Evaluate(p, map[string]*tensor.Dense{"A": a, "B": b, "C": c})
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualWithin(ref["E"], 1e-9) {
		t.Fatalf("wire chain vs reference: max |diff| = %g", out.MaxAbsDiff(ref["E"]))
	}

	// Repeat: every stage must come from the plan cache.
	_, stats2, err := client.Run(context.Background(), req, map[string]*tensor.Dense{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Cached {
		t.Fatal("repeat run did not hit the plan cache for every stage")
	}
	if stats2.PlanKey != stats.PlanKey {
		t.Fatalf("plan key changed across identical runs: %s vs %s", stats.PlanKey, stats2.PlanKey)
	}
}

// TestRunProgramBatch: a batched multi-statement run produces one output
// frame per instance, each matching its per-instance reference.
func TestRunProgramBatch(t *testing.T) {
	const n, k = 24, 3
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	ts := httptest.NewServer(New(sess, Config{}))
	defer ts.Close()

	req := chainRunRequest(n)
	batch := make([]map[string]*tensor.Dense, k)
	for i := range batch {
		a := tensor.New("A", n, n)
		a.FillRandom(int64(40 + i))
		batch[i] = map[string]*tensor.Dense{"A": a}
	}
	client := &wire.Client{BaseURL: ts.URL}
	outcome, err := client.RunBatch(context.Background(), req, batch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Parse([]program.Statement{
		{Stmt: "D(i,j) = A(i,k) * B(k,j)"},
		{Stmt: "E(i,j) = D(i,k) * C(k,j)"},
	}, req.Shapes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if outcome.Errs[i] != nil {
			t.Fatalf("instance %d failed: %v", i, outcome.Errs[i])
		}
		b := tensor.New("B", n, n)
		b.FillRandom(21 + int64(i)) // per-instance fill seeds offset by index
		c := tensor.New("C", n, n)
		c.FillRandom(22 + int64(i))
		ref, err := program.Evaluate(p, map[string]*tensor.Dense{
			"A": batch[i]["A"], "B": b, "C": c,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !outcome.Outputs[i].EqualWithin(ref["E"], 1e-9) {
			t.Fatalf("instance %d: max |diff| = %g", i, outcome.Outputs[i].MaxAbsDiff(ref["E"]))
		}
	}
}

// TestRunProgramErrors: program-path failures map to the taxonomy like
// single-statement ones — parse troubles are 400, input troubles 422.
func TestRunProgramErrors(t *testing.T) {
	const n = 16
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	ts := httptest.NewServer(New(sess, Config{}))
	defer ts.Close()

	cases := []struct {
		name   string
		mutate func(*wire.RunRequest)
		status int
		want   string
	}{
		{
			name: "both stmt and stmts",
			mutate: func(q *wire.RunRequest) {
				q.Stmt = "X(i,j) = A(i,k) * B(k,j)"
			},
			status: 400,
			want:   "must be empty",
		},
		{
			name: "intermediate declared in shapes",
			mutate: func(q *wire.RunRequest) {
				q.Shapes["D"] = []int{n, n}
			},
			status: 400,
			want:   "Shapes declares D",
		},
		{
			name: "inputs directive for an intermediate",
			mutate: func(q *wire.RunRequest) {
				q.Inputs["D"] = "zero"
			},
			status: 400,
			want:   "leaf input",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := chainRunRequest(n)
			tc.mutate(&req)
			// Drive the server directly: the client validates most of these
			// itself, and here the server's mapping is under test.
			req.Inputs["A"] = "rand:1" // all fills, so the bare-JSON form works
			status, msg := bareJSONError(t, ts.URL, req)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (%s)", status, tc.status, msg)
			}
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("message %q does not contain %q", msg, tc.want)
			}
		})
	}
}
