package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"distal"
	"distal/internal/ir"
	"distal/internal/tensor"
	"distal/internal/wire"
)

// runCase is one of the five example workloads at test size: the same
// statements, formats, and schedule shapes as examples/, shrunk so real
// execution stays fast.
type runCase struct {
	name    string
	machine func() *distal.Machine
	req     wire.RunRequest
}

func runCases() []runCase {
	square := func(n int, names ...string) map[string][]int {
		out := map[string][]int{}
		for _, name := range names {
			out[name] = []int{n, n}
		}
		return out
	}
	gemm := "A(i,j) = B(i,k) * C(k,j)"
	return []runCase{
		{
			name:    "summa",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 4, 4) },
			req: wire.RunRequest{
				Stmt: gemm, Shapes: square(64, "A", "B", "C"),
				Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
			},
		},
		{
			name:    "cannon",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 3, 3) },
			req: wire.RunRequest{
				Stmt: gemm, Shapes: square(48, "A", "B", "C"),
				Schedule: "divide(i,io,ii,3) divide(j,jo,ji,3) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"divide(k,ko,ki,3) reorder(io,jo,ko,ii,ji,ki) rotate(ko,io,jo,kos) " +
					"communicate(jo,A) communicate(kos,B,C)",
			},
		},
		{
			name:    "johnson",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 2, 2, 2) },
			req: wire.RunRequest{
				Stmt:   gemm,
				Shapes: square(32, "A", "B", "C"),
				Formats: map[string]string{
					"A": "xy->xy0", "B": "xz->x0z", "C": "zy->0yz",
				},
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) divide(k,ko,ki,2) " +
					"reorder(io,jo,ko,ii,ji,ki) distribute(io,jo,ko) communicate(ko,A,B,C)",
			},
		},
		{
			name:    "mttkrp",
			machine: func() *distal.Machine { return distal.NewMachine(distal.CPU, 2, 2, 2) },
			req: wire.RunRequest{
				Stmt: "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)",
				Shapes: map[string][]int{
					"A": {32, 16}, "B": {32, 32, 32}, "C": {32, 16}, "D": {32, 16},
				},
				Formats: map[string]string{
					"A": "ab->a00", "B": "abc->abc", "C": "ab->*a*", "D": "ab->**a",
				},
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) divide(k,ko,ki,2) " +
					"reorder(io,jo,ko,ii,ji,ki,l) distribute(io,jo,ko) communicate(ko,A,B,C,D)",
			},
		},
		{
			name: "hierarchical",
			machine: func() *distal.Machine {
				return distal.NewMachine(distal.GPU, 2, 8).WithProcsPerNode(4)
			},
			req: wire.RunRequest{
				Stmt: gemm, Shapes: square(64, "A", "B", "C"),
				Schedule: "divide(i,io,ii,2) divide(j,jo,ji,8) reorder(io,jo,ii,ji) distribute(io,jo) " +
					"split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) communicate(jo,A) communicate(ko,B,C)",
			},
		},
	}
}

// inputsFor builds deterministic random data for every RHS tensor of c and
// marks it "wire"; the output stays at the default zero fill.
func inputsFor(t *testing.T, c runCase, seed int64) (wire.RunRequest, map[string]*tensor.Dense) {
	t.Helper()
	stmt, err := ir.Parse(c.req.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	req := c.req
	req.Inputs = map[string]string{}
	data := map[string]*tensor.Dense{}
	for i, name := range stmt.TensorNames() {
		if name == stmt.LHS.Tensor {
			continue
		}
		d := tensor.New(name, req.Shapes[name]...)
		d.FillRandom(seed + int64(i))
		req.Inputs[name] = wire.FillWire
		data[name] = d
	}
	return req, data
}

// referenceRun executes the same request in-process on an identical machine
// through Plan.Bind(...).Run and returns the output tensor.
func referenceRun(t *testing.T, c runCase, data map[string]*tensor.Dense) *tensor.Dense {
	t.Helper()
	sess := distal.NewSession(c.machine())
	plan, err := sess.Compile(context.Background(), distal.Request{
		Stmt: c.req.Stmt, Shapes: c.req.Shapes, Formats: c.req.Formats, Schedule: c.req.Schedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	var binds []*distal.Tensor
	for _, name := range plan.Tensors() {
		shape := c.req.Shapes[name]
		d := tensor.New(name, shape...)
		if in, ok := data[name]; ok && name != plan.Output() {
			copy(d.Data(), in.Data())
		}
		binds = append(binds, &distal.Tensor{Name: name, Shape: shape, Data: d})
	}
	b := plan.Bind(binds...)
	if _, err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return b.Output().Data
}

func assertBitsEqual(t *testing.T, label string, got, want *tensor.Dense) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: %d values, want %d", label, len(gd), len(wd))
	}
	for i := range gd {
		if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
			t.Fatalf("%s: value %d is %v, want %v (not bit-identical)", label, i, gd[i], wd[i])
		}
	}
}

// TestRunEndpointExamples: the tentpole acceptance test. For each of the
// five example workloads, the streamed /v1/run result must be bit-identical
// to an in-process Plan.Bind(...).Run of the same data and to the
// ir.Evaluate reference semantics.
func TestRunEndpointExamples(t *testing.T) {
	for _, c := range runCases() {
		t.Run(c.name, func(t *testing.T) {
			sess := distal.NewSession(c.machine())
			ts := httptest.NewServer(New(sess, Config{}))
			defer ts.Close()

			req, data := inputsFor(t, c, 100)
			client := &wire.Client{BaseURL: ts.URL}
			out, stats, err := client.Run(context.Background(), req, data)
			if err != nil {
				t.Fatal(err)
			}
			if stats.PlanKey == "" || stats.TimeS <= 0 {
				t.Fatalf("implausible stats: %+v", stats)
			}
			if stats.Cached {
				t.Fatal("first run reported cached")
			}

			inProc := referenceRun(t, c, data)
			assertBitsEqual(t, "wire vs in-process Bind.Run", out, inProc)

			stmt, err := ir.Parse(c.req.Stmt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ir.Evaluate(stmt, data)
			if err != nil {
				t.Fatal(err)
			}
			// The scheduled kernels accumulate in a different loop order than
			// the reference interpreter, so this comparison is numeric, not
			// bitwise (the bitwise guarantee is against Bind.Run above).
			if !out.EqualWithin(want, 1e-9) {
				t.Fatalf("wire vs ir.Evaluate: max |diff| = %g", out.MaxAbsDiff(want))
			}

			// The same workload again: served from the plan cache.
			_, stats2, err := client.Run(context.Background(), req, data)
			if err != nil {
				t.Fatal(err)
			}
			if !stats2.Cached {
				t.Fatal("repeat run did not hit the plan cache")
			}
			if st := sess.CacheStats(); st.Misses != 1 {
				t.Fatalf("stats = %+v, want exactly one compile", st)
			}
		})
	}
}

// TestRunServerSideFills: a client can exercise a plan end to end without
// shipping any tensor bytes — fills materialize server-side and match the
// client's deterministic reconstruction.
func TestRunServerSideFills(t *testing.T) {
	c := runCases()[0] // summa
	sess := distal.NewSession(c.machine())
	ts := httptest.NewServer(New(sess, Config{}))
	defer ts.Close()

	req := c.req
	req.Inputs = map[string]string{"B": "rand:1", "C": "ones"}
	client := &wire.Client{BaseURL: ts.URL}
	out, stats, err := client.Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Output != "A" {
		t.Fatalf("output header = %q", stats.Output)
	}

	// Reconstruct the fills locally and evaluate the reference.
	B := tensor.New("B", req.Shapes["B"]...)
	B.FillRandom(1)
	C := tensor.New("C", req.Shapes["C"]...)
	C.Fill(1)
	stmt, err := ir.Parse(req.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.Evaluate(stmt, map[string]*tensor.Dense{"B": B, "C": C})
	if err != nil {
		t.Fatal(err)
	}
	assertBitsEqual(t, "filled run vs local reference", out, want)
}

// TestRunConcurrentSharedPlan: concurrent wire-level runs of the same
// workload on different data share exactly one compiled plan and never mix
// up their outputs.
func TestRunConcurrentSharedPlan(t *testing.T) {
	c := runCases()[0]
	sess := distal.NewSession(c.machine())
	ts := httptest.NewServer(New(sess, Config{Workers: 4}))
	defer ts.Close()

	const runs = 8
	var wg sync.WaitGroup
	errs := make(chan error, runs)
	for g := 0; g < runs; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			req, data := inputsFor(t, c, seed)
			client := &wire.Client{BaseURL: ts.URL}
			out, _, err := client.Run(context.Background(), req, data)
			if err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			stmt, err := ir.Parse(c.req.Stmt)
			if err != nil {
				errs <- err
				return
			}
			want, err := ir.Evaluate(stmt, data)
			if err != nil {
				errs <- err
				return
			}
			for i := range out.Data() {
				if math.Float64bits(out.Data()[i]) != math.Float64bits(want.Data()[i]) {
					errs <- fmt.Errorf("seed %d: value %d differs", seed, i)
					return
				}
			}
		}(int64(g) * 31)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := sess.CacheStats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want one shared compile across %d wire runs", st, runs)
	}
}

// TestRunErrorMapping: every client-caused failure maps to 4xx through the
// taxonomy — malformed wire bytes 400, shape mismatches and framing
// disagreements 422, mismatched Content-Type 415 — never 500.
func TestRunErrorMapping(t *testing.T) {
	c := runCases()[0]
	sess := distal.NewSession(c.machine())
	ts := httptest.NewServer(New(sess, Config{}))
	defer ts.Close()

	post := func(contentType string, body []byte) (*http.Response, ErrorBody) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/run", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp, eb.Error
	}
	framed := func(req wire.RunRequest, frames ...*tensor.Dense) []byte {
		t.Helper()
		var buf bytes.Buffer
		envelope, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteJSONSection(&buf, envelope); err != nil {
			t.Fatal(err)
		}
		if err := wire.EncodeFrames(&buf, frames...); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	wireReq := func(names ...string) wire.RunRequest {
		req := c.req
		req.Inputs = map[string]string{}
		for _, n := range names {
			req.Inputs[n] = wire.FillWire
		}
		return req
	}
	mk := func(name string, dims ...int) *tensor.Dense {
		d := tensor.New(name, dims...)
		d.FillRandom(7)
		return d
	}

	t.Run("mismatched content type", func(t *testing.T) {
		resp, eb := post("text/plain", []byte("hello"))
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("status = %d, want 415", resp.StatusCode)
		}
		if eb.Kind != "parse" {
			t.Fatalf("kind = %q", eb.Kind)
		}
	})
	t.Run("malformed wire frame", func(t *testing.T) {
		garbled := framed(wireReq("B", "C"), mk("B", 64, 64))
		garbled = append(garbled, []byte("this is not a frame header....")...)
		resp, eb := post(wire.ContentTypeRun, garbled)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if eb.Kind != "parse" {
			t.Fatalf("kind = %q", eb.Kind)
		}
	})
	t.Run("frame shape mismatch", func(t *testing.T) {
		resp, eb := post(wire.ContentTypeRun,
			framed(wireReq("B", "C"), mk("B", 32, 128), mk("C", 64, 64)))
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
		if eb.Kind != "input" {
			t.Fatalf("kind = %q", eb.Kind)
		}
	})
	t.Run("truncated frame", func(t *testing.T) {
		body := framed(wireReq("B", "C"), mk("B", 64, 64), mk("C", 64, 64))
		resp, eb := post(wire.ContentTypeRun, body[:len(body)-100])
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if eb.Kind != "parse" {
			t.Fatalf("kind = %q", eb.Kind)
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		body := framed(wireReq("B", "C"), mk("B", 64, 64), mk("C", 64, 64), mk("X", 2, 2))
		resp, eb := post(wire.ContentTypeRun, body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
		if eb.Kind != "input" {
			t.Fatalf("kind = %q", eb.Kind)
		}
	})
	t.Run("bad fill directive", func(t *testing.T) {
		req := c.req
		req.Inputs = map[string]string{"B": "sevens"}
		body, _ := json.Marshal(req)
		resp, eb := post("application/json", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if eb.Kind != "parse" {
			t.Fatalf("kind = %q", eb.Kind)
		}
	})
	t.Run("wire input without framing", func(t *testing.T) {
		req := c.req
		req.Inputs = map[string]string{"B": wire.FillWire}
		body, _ := json.Marshal(req)
		resp, _ := post("application/json", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("inputs naming a stranger", func(t *testing.T) {
		req := c.req
		req.Inputs = map[string]string{"Z": "zero"}
		body, _ := json.Marshal(req)
		resp, _ := post("application/json", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("body over the run limit", func(t *testing.T) {
		small := httptest.NewServer(New(distal.NewSession(c.machine()), Config{MaxRunBody: 1 << 10}))
		defer small.Close()
		body := framed(wireReq("B", "C"), mk("B", 64, 64), mk("C", 64, 64))
		resp, err := http.Post(small.URL+"/v1/run", wire.ContentTypeRun, bytes.NewReader(body))
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode/100 != 4 {
				t.Fatalf("status = %d, want 4xx", resp.StatusCode)
			}
		}
		// err != nil is also acceptable: MaxBytesReader may kill the
		// connection mid-upload before a response can be read.
	})
	t.Run("GET is rejected", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/run")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestJSONEndpointsRejectMismatchedContentType: the pre-existing JSON
// endpoints also refuse bodies that do not declare JSON.
func TestJSONEndpointsRejectMismatchedContentType(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	for _, path := range []string{"/v1/execute", "/v1/batch", "/v1/tune"} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("%s: status = %d, want 415", path, resp.StatusCode)
		}
	}
	// An absent Content-Type keeps working (hand-rolled clients).
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/execute", strings.NewReader(`{"stmt":"bad`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Del("Content-Type")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (parse error, not 415)", resp.StatusCode)
	}
}

// TestRunStreamsChunked: the response must arrive as chunked transfer (no
// Content-Length), the shape a streaming encoder produces.
func TestRunStreamsChunked(t *testing.T) {
	c := runCases()[0]
	ts := httptest.NewServer(New(distal.NewSession(c.machine()), Config{}))
	defer ts.Close()
	req := c.req
	req.Inputs = map[string]string{"B": "rand:3", "C": "rand:4"}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.ContentLength >= 0 {
		t.Fatalf("response has Content-Length %d; expected chunked streaming", resp.ContentLength)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeTensor {
		t.Fatalf("Content-Type = %q", ct)
	}
	out, err := wire.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Shape()[0], 64; got != want {
		t.Fatalf("output dim = %d, want %d", got, want)
	}
}
