package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"distal"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *distal.Session) {
	t.Helper()
	sess := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	ts := httptest.NewServer(New(sess, cfg))
	t.Cleanup(ts.Close)
	return ts, sess
}

func summaRequest(n int) ExecuteRequest {
	return ExecuteRequest{
		Stmt: "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{
			"A": {n, n}, "B": {n, n}, "C": {n, n},
		},
		Formats: map[string]string{"A": "xy->xy", "B": "xy->xy", "C": "xy->xy"},
		Schedule: "divide(i,io,ii,2) divide(j,jo,ji,2) reorder(io,jo,ii,ji) " +
			"distribute(io,jo) split(k,ko,ki,16) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(jo,A) communicate(ko,B,C)",
	}
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestExecuteEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/execute", summaRequest(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out ExecuteResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("invalid metrics JSON: %v (%s)", err, body)
	}
	if out.TimeS <= 0 || out.Flops <= 0 || out.PlanKey == "" || out.Launches == 0 {
		t.Fatalf("implausible metrics: %+v", out)
	}
	if out.Cached {
		t.Fatal("first request reported cached")
	}

	// Same workload again: plan cache serves it.
	resp, body = post(t, ts.URL+"/v1/execute", summaRequest(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var again ExecuteResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("second identical request did not hit the plan cache")
	}
	if again.TimeS != out.TimeS || again.Copies != out.Copies {
		t.Fatalf("cached plan diverged: %+v vs %+v", again, out)
	}
}

func TestExecuteErrorMapping(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name   string
		req    ExecuteRequest
		status int
		kind   string
	}{
		{"parse", ExecuteRequest{Stmt: "A(i,j) ="}, http.StatusBadRequest, "parse"},
		{"missing shape", ExecuteRequest{Stmt: "A(i,j) = B(i,k) * C(k,j)",
			Shapes: map[string][]int{"A": {8, 8}}}, http.StatusBadRequest, "parse"},
		{"schedule", func() ExecuteRequest {
			q := summaRequest(64)
			q.Schedule = "divide(zz,a,b,2)"
			return q
		}(), http.StatusUnprocessableEntity, "schedule"},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/v1/execute", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: invalid error JSON: %v", c.name, err)
			continue
		}
		if e.Error.Kind != c.kind {
			t.Errorf("%s: kind = %q, want %q", c.name, e.Error.Kind, c.kind)
		}
	}
	// Malformed JSON body is a parse error too.
	resp, err := http.Post(ts.URL+"/v1/execute", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d, want 400", resp.StatusCode)
	}
	// GET on a POST endpoint.
	getResp, err := http.Get(ts.URL + "/v1/execute")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/execute: status = %d, want 405", getResp.StatusCode)
	}
}

func TestExecuteDeadline(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	// A deadline far shorter than the workload: the pipeline must abort
	// with 504/canceled rather than run to completion.
	q := ExecuteRequest{
		Stmt: "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{
			"A": {2048, 2048}, "B": {2048, 2048}, "C": {2048, 2048},
		},
		Schedule: "divide(i,io,ii,32) divide(j,jo,ji,32) reorder(io,jo,ii,ji) " +
			"distribute(io,jo) split(k,ko,ki,64) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(jo,A) communicate(ko,B,C)",
		TimeoutMS: 1,
	}
	resp, body := post(t, ts.URL+"/v1/execute", q)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Kind != "canceled" {
		t.Fatalf("kind = %q, want canceled", e.Error.Kind)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	batch := BatchRequest{Requests: []ExecuteRequest{
		summaRequest(64),
		{Stmt: "A(i,j) ="}, // fails inline, does not sink the batch
		summaRequest(64),
	}}
	resp, body := post(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("got %d responses, want 3", len(out.Responses))
	}
	if out.Responses[0].Result == nil || out.Responses[2].Result == nil {
		t.Fatalf("valid entries failed: %s", body)
	}
	if out.Responses[1].Error == nil || out.Responses[1].Error.Kind != "parse" {
		t.Fatalf("invalid entry did not report a parse error: %s", body)
	}
	if out.Responses[0].Result.TimeS != out.Responses[2].Result.TimeS {
		t.Fatal("identical batch entries diverged")
	}

	// Empty and oversized batches are rejected whole.
	resp, _ = post(t, ts.URL+"/v1/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentIdenticalRequests drives the acceptance criterion through
// the wire: N concurrent identical requests sustain exactly one compile
// (singleflight + plan cache), visible in /v1/stats.
func TestConcurrentIdenticalRequests(t *testing.T) {
	ts, sess := newTestServer(t, Config{Workers: 8})
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	var mu sync.Mutex
	times := map[float64]bool{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _ := json.Marshal(summaRequest(64))
			resp, err := http.Post(ts.URL+"/v1/execute", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out ExecuteResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			mu.Lock()
			times[out.TimeS] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(times) != 1 {
		t.Fatalf("concurrent identical requests produced %d distinct results", len(times))
	}
	if st := sess.CacheStats(); st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want exactly one compile across %d concurrent requests", st, n)
	}

	// The stats endpoint reports the same counters over the wire.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Misses != 1 || stats.Requests != n {
		t.Fatalf("stats = %+v, want 1 miss and %d requests", stats, n)
	}
}

// TestWorkerPoolBound: a single-worker server still completes every request
// of a burst (they serialize through the pool).
func TestWorkerPoolBound(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Timeout: time.Minute})
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(summaRequest(16 + 16*(i%3)))
			resp, err := http.Post(ts.URL+"/v1/execute", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTuneEndpoint checks /v1/tune end to end: the search runs, the winner
// matches or beats the AutoSchedule baseline, and — crucially for the
// determinism contract — the endpoint returns the same winner as a direct
// Session.Tune with the same seed and budget.
func TestTuneEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	req := TuneRequest{
		Stmt: "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{
			"A": {256, 256}, "B": {256, 256}, "C": {256, 256},
		},
		Budget: 32,
		Seed:   5,
	}
	resp, body := post(t, ts.URL+"/v1/tune", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out TuneResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response: %v\n%s", err, body)
	}
	if out.Winner.Schedule == "" || out.Winner.MakespanSec <= 0 || out.Winner.PlanKey == "" {
		t.Fatalf("incomplete winner: %+v", out.Winner)
	}
	if out.Baseline == nil {
		t.Fatal("no AutoSchedule baseline in response")
	}
	if out.Winner.MakespanSec > out.Baseline.MakespanSec {
		t.Fatalf("winner %.9fs worse than baseline %.9fs", out.Winner.MakespanSec, out.Baseline.MakespanSec)
	}
	if out.Evaluated == 0 || out.Evaluated > 32 {
		t.Fatalf("evaluated %d, want within (0, 32]", out.Evaluated)
	}

	// The same search done directly must elect the same winner.
	direct := distal.NewSession(distal.NewMachine(distal.CPU, 2, 2))
	want, err := direct.Tune(context.Background(), distal.Request{
		Stmt: req.Stmt, Shapes: req.Shapes,
	}, distal.TuneOptions{Budget: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner.Schedule != want.Winner.Schedule {
		t.Fatalf("wire winner differs from direct winner:\n  wire:   %s\n  direct: %s",
			out.Winner.Schedule, want.Winner.Schedule)
	}
	if out.Winner.MakespanSec != want.Winner.MakespanSec {
		t.Fatalf("wire makespan %.9fs != direct %.9fs", out.Winner.MakespanSec, want.Winner.MakespanSec)
	}

	// Replaying the winner through /v1/execute hits the plan cache.
	exec := summaRequest(256)
	exec.Schedule = out.Winner.Schedule
	exec.Formats = nil
	resp, body = post(t, ts.URL+"/v1/execute", exec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("winner replay status %d: %s", resp.StatusCode, body)
	}
	var er ExecuteResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Cached {
		t.Fatal("winner replay was not served from the plan cache")
	}
	if er.PlanKey != out.Winner.PlanKey {
		t.Fatalf("winner replay key %q != reported %q", er.PlanKey, out.Winner.PlanKey)
	}
}

// TestTuneEndpointErrors: the tune endpoint reuses the error taxonomy
// mapping (parse -> 400) and caps the budget server-side.
func TestTuneEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxTuneBudget: 4})
	resp, body := post(t, ts.URL+"/v1/tune", TuneRequest{Stmt: "nope("})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad stmt: status %d, want 400: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Kind != "parse" {
		t.Fatalf("bad stmt: kind %q, want parse (%v)", e.Error.Kind, err)
	}
	req := TuneRequest{
		Stmt:   "A(i,j) = B(i,k) * C(k,j)",
		Shapes: map[string][]int{"A": {64, 64}, "B": {64, 64}, "C": {64, 64}},
		Budget: 100000,
	}
	resp, body = post(t, ts.URL+"/v1/tune", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out TuneResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Evaluated > 4 {
		t.Fatalf("evaluated %d, server cap was 4", out.Evaluated)
	}
	// An omitted budget must obey the cap too: the tuner default is 64,
	// but the operator said 4.
	req.Budget = 0
	req.Seed = 1
	resp, body = post(t, ts.URL+"/v1/tune", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	out = TuneResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Evaluated > 4 {
		t.Fatalf("default-budget request evaluated %d, server cap was 4", out.Evaluated)
	}
}
