package baselines

import (
	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/cosma"
	"distal/internal/distnot"
	"distal/internal/ir"
	"distal/internal/schedule"
	"distal/internal/sim"
)

// CTF casts every higher-order tensor contraction into distributed matrix
// multiplications by reshaping and redistributing the tensors (§8, [34]).
// The constructors below build the equivalent rectangular matmul under
// CTF's rank decomposition and charge the redistribution passes explicitly.

// summaRect builds a rectangular SUMMA A[mI,mJ] = B[mI,mK] * C[mK,mJ] on a
// rank grid shaped to minimize the per-rank panel traffic
// (mI*mK/gx + mK*mJ/gy), the decomposition choice CTF's optimizer makes for
// skewed matrices.
func summaRect(mI, mK, mJ, procs, ppn int) (core.Input, error) {
	gx, gy := rectGrid(mI, mK, mJ, procs)
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	cfg := algorithms.MatmulConfig{ProcsPerNode: ppn}
	m := cfg.MachineFor(gx, gy)
	chunk := (mK + gx - 1) / gx
	s := schedule.New(stmt).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{gx, gy}).
		Split("k", "ko", "ki", chunk).
		Reorder("ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C")
	if err := s.Err(); err != nil {
		return core.Input{}, err
	}
	tiled := distnot.MustParsePlacement("xy->xy")
	return core.Input{
		Stmt:    stmt,
		Machine: m,
		Tensors: map[string]*core.TensorDecl{
			"A": {Name: "A", Shape: []int{mI, mJ}, Placement: tiled},
			"B": {Name: "B", Shape: []int{mI, mK}, Placement: tiled},
			"C": {Name: "C", Shape: []int{mK, mJ}, Placement: tiled},
		},
		Schedule: s,
	}, nil
}

// rectGrid picks the divisor pair gx*gy = procs minimizing the SUMMA panel
// traffic per rank.
func rectGrid(mI, mK, mJ, procs int) (int, int) {
	bestGx, bestGy := cosma.Factor2(procs)
	bestCost := panelCost(mI, mK, mJ, bestGx, bestGy)
	for gx := 1; gx <= procs; gx++ {
		if procs%gx != 0 {
			continue
		}
		gy := procs / gx
		if c := panelCost(mI, mK, mJ, gx, gy); c < bestCost {
			bestCost, bestGx, bestGy = c, gx, gy
		}
	}
	return bestGx, bestGy
}

func panelCost(mI, mK, mJ, gx, gy int) float64 {
	return float64(mI)*float64(mK)/float64(gx) + float64(mK)*float64(mJ)/float64(gy)
}

// redistSeconds estimates one redistribution pass of the given tensor bytes
// across the machine: every node pushes its share through its NIC.
func redistSeconds(totalBytes int64, nodes int, p sim.Params) float64 {
	if nodes <= 1 {
		return 0 // single node: reshapes are local pointer shuffles
	}
	perNode := float64(totalBytes) / float64(nodes)
	return perNode/p.InterBW + p.InterLatency
}

// reshapeSeconds estimates a local reshape/elementwise pass over the given
// bytes on every node (read + write through memory).
func reshapeSeconds(totalBytes int64, nodes int, p sim.Params) float64 {
	perRank := float64(totalBytes) / float64(nodes) / RanksPerNode
	return 2 * perRank / p.MemBandwidth
}

// CTFTTV casts A(i,j) = B(i,j,k)*c(k) to the matrix-vector product
// A[IJ] = B[IJ,K] * c[K,1], paying a redistribution of B into the matrix
// layout. The mostly-empty rank grid along the unit output dimension is
// what makes CTF's TTV collapse beyond one node (§7.2.2).
func CTFTTV(cfg algorithms.HigherConfig, nodes int) (*Spec, error) {
	procs := nodes * RanksPerNode
	in, err := summaRect(cfg.I*cfg.J, cfg.K, 1, procs, RanksPerNode)
	if err != nil {
		return nil, err
	}
	p := sim.LassenCPURanks(RanksPerNode)
	bBytes := int64(cfg.I) * int64(cfg.J) * int64(cfg.K) * 8
	return &Spec{
		Name:            "CTF",
		In:              in,
		Sync:            true,
		OwnerOnly:       true,
		Params:          func(sim.Params) sim.Params { return p },
		ExtraSeconds:    redistSeconds(bBytes, nodes, p) + reshapeSeconds(bBytes, nodes, p),
		ExtraInterBytes: redistBytes(bBytes, nodes),
	}, nil
}

// CTFInnerprod: CTF implements inner products as flat reductions (it weak
// scales well, §7.2.2); the model is the element-wise schedule under CTF's
// rank decomposition without overlap.
func CTFInnerprod(cfg algorithms.HigherConfig, nodes int) (*Spec, error) {
	cfg.Procs = nodes * RanksPerNode
	cfg.ProcsPerNode = RanksPerNode
	in, err := algorithms.Innerprod(cfg)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      "CTF",
		In:        in,
		Sync:      true,
		OwnerOnly: true,
		Params:    func(sim.Params) sim.Params { return sim.LassenCPURanks(RanksPerNode) },
	}, nil
}

// CTFTTM casts A(i,j,l) = B(i,j,k)*C(k,l) to A[IJ,L] = B[IJ,K] * C[K,L],
// redistributing B in and A out of the matrix layout.
func CTFTTM(cfg algorithms.HigherConfig, nodes int) (*Spec, error) {
	procs := nodes * RanksPerNode
	in, err := summaRect(cfg.I*cfg.J, cfg.K, cfg.L, procs, RanksPerNode)
	if err != nil {
		return nil, err
	}
	p := sim.LassenCPURanks(RanksPerNode)
	bBytes := int64(cfg.I) * int64(cfg.J) * int64(cfg.K) * 8
	aBytes := int64(cfg.I) * int64(cfg.J) * int64(cfg.L) * 8
	extra := redistSeconds(bBytes, nodes, p) + redistSeconds(aBytes, nodes, p) +
		reshapeSeconds(bBytes+aBytes, nodes, p)
	return &Spec{
		Name:            "CTF",
		In:              in,
		Sync:            true,
		OwnerOnly:       true,
		Params:          func(sim.Params) sim.Params { return p },
		ExtraSeconds:    extra,
		ExtraInterBytes: redistBytes(bBytes, nodes) + redistBytes(aBytes, nodes),
	}, nil
}

// CTFMTTKRP models CTF's MTTKRP: the contraction is cast to local matrix
// multiplications over a well-chosen decomposition (so it weak-scales
// flatly, §7.2.2) but requires materializing Khatri-Rao blocks and an extra
// element-wise reduction pass, which costs memory bandwidth on every node
// and keeps single-node performance below DISTAL's fused kernel.
func CTFMTTKRP(cfg algorithms.HigherConfig, nodes int) (*Spec, error) {
	cfg.Procs = nodes * RanksPerNode
	cfg.ProcsPerNode = RanksPerNode
	in, err := algorithms.MTTKRP(cfg)
	if err != nil {
		return nil, err
	}
	p := sim.LassenCPURanks(RanksPerNode)
	bBytes := int64(cfg.I) * int64(cfg.J) * int64(cfg.K) * 8
	// The cast-to-matmul pipeline touches the 3-tensor three extra times:
	// forming local Khatri-Rao blocks, the intermediate product, and the
	// element-wise reduction into the output.
	extra := 3 * reshapeSeconds(bBytes, nodes, p)
	return &Spec{
		Name:         "CTF",
		In:           in,
		Sync:         true,
		OwnerOnly:    true,
		Params:       func(sim.Params) sim.Params { return p },
		ExtraSeconds: extra,
	}, nil
}

func redistBytes(total int64, nodes int) int64 {
	if nodes <= 1 {
		return 0
	}
	return total
}
