// Package baselines models the systems the DISTAL paper compares against —
// ScaLAPACK, the Cyclops Tensor Framework (CTF), and the reference COSMA
// implementation — by reproducing their documented mechanisms rather than
// their numbers:
//
//   - ScaLAPACK runs SUMMA with one MPI rank per core group (4 ranks per
//     node performed best in the paper), synchronous broadcasts (no
//     communication/computation overlap), and owner-only copy sources.
//   - CTF runs Solomonik's 2.5D algorithm under the same rank decomposition
//     and synchrony; higher-order kernels are cast to distributed matrix
//     multiplications after a redistribution/reshape pass that moves the
//     tensors across the machine (§7.2's explanation for CTF's slowdowns).
//   - COSMA uses its optimal decomposition with full overlap and all cores;
//     on GPUs it stages data out-of-core from host memory (halving GEMM
//     throughput but avoiding both the framebuffer DMA penalty and
//     framebuffer capacity limits).
//
// Every baseline returns a Spec: a compiled program plus the execution
// options and cost-model transforms that express the system's mechanisms.
package baselines

import (
	"fmt"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

// RanksPerNode is how ScaLAPACK and CTF decompose a node (§7.1).
const RanksPerNode = 4

// Spec is a runnable baseline configuration.
type Spec struct {
	Name string
	In   core.Input
	// Sync disables communication/computation overlap.
	Sync bool
	// OwnerOnly disables nearest-valid-copy sourcing (MPI-style fixed
	// communication partners).
	OwnerOnly bool
	// Params transforms the per-leaf cost model before execution.
	Params func(sim.Params) sim.Params
	// ExtraSeconds is time spent outside the simulated program (e.g. CTF's
	// redistribution and reshape passes).
	ExtraSeconds float64
	// ExtraInterBytes is communication performed outside the simulated
	// program, reported alongside the result.
	ExtraInterBytes int64
}

// Execute compiles and runs the spec under the given base cost model.
func (s *Spec) Execute(base sim.Params) (*legion.Result, error) {
	params := base
	if s.Params != nil {
		params = s.Params(base)
	}
	prog, err := core.Compile(s.In)
	if err != nil {
		return nil, fmt.Errorf("baselines: %s: %w", s.Name, err)
	}
	res, err := legion.Run(prog, legion.Options{
		Params:      params,
		Synchronous: s.Sync,
		OwnerOnly:   s.OwnerOnly,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: %s: %w", s.Name, err)
	}
	res.Time += s.ExtraSeconds
	res.InterBytes += s.ExtraInterBytes
	return res, nil
}

// ScaLAPACKMatmul models pdgemm on the given number of nodes: SUMMA over a
// rank-per-core-group grid with synchronous broadcasts.
func ScaLAPACKMatmul(n, nodes int) (*Spec, error) {
	in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
		N:            n,
		Procs:        nodes * RanksPerNode,
		ProcsPerNode: RanksPerNode,
	})
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      "ScaLAPACK",
		In:        in,
		Sync:      true,
		OwnerOnly: true,
		Params:    func(sim.Params) sim.Params { return sim.LassenCPURanks(RanksPerNode) },
	}, nil
}

// CTFMatmul models CTF's 2.5D matrix multiplication under the same rank
// decomposition.
func CTFMatmul(n, nodes int) (*Spec, error) {
	procs := nodes * RanksPerNode
	in, err := algorithms.Matmul(algorithms.Solomonik, algorithms.MatmulConfig{
		N:            n,
		Procs:        procs,
		ProcsPerNode: RanksPerNode,
		ReplicationC: feasibleReplication(procs),
	})
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:      "CTF",
		In:        in,
		Sync:      true,
		OwnerOnly: true,
		Params:    func(sim.Params) sim.Params { return sim.LassenCPURanks(RanksPerNode) },
	}, nil
}

// feasibleReplication picks a c with p/c a perfect square, preferring c > 1
// (2.5D) when available.
func feasibleReplication(p int) int {
	best := 0
	for c := 1; c*c*c <= p*8; c++ {
		if p%c == 0 && isSquare(p/c) {
			best = c
		}
	}
	if best == 0 {
		best = 1
	}
	return best
}

func isSquare(n int) bool {
	for r := 0; r*r <= n; r++ {
		if r*r == n {
			return true
		}
	}
	return false
}

// COSMAMatmul models the reference COSMA implementation. restricted limits
// it to the cores DISTAL can use (the paper's "COSMA (Restricted CPUs)"
// line); gpu selects the out-of-core GPU configuration.
func COSMAMatmul(n, nodes int, restricted, gpu bool) (*Spec, error) {
	cfg := algorithms.MatmulConfig{N: n}
	var params func(sim.Params) sim.Params
	switch {
	case gpu:
		cfg.Procs = nodes * 4
		cfg.ProcsPerNode = 4
		cfg.GPU = true
		cfg.MemWords = 256 * sim.GiB / 8 / 4 // host memory per GPU's share
		params = func(p sim.Params) sim.Params {
			// Out-of-core GEMM from host memory: roughly half of peak on a
			// V100, but no framebuffer DMA penalty and host-sized memory.
			p.PeakFlops *= 0.5
			p.SrcPenaltyBW = 0
			p.MemCapacity = 256 * sim.GiB / 4
			return p
		}
	case restricted:
		cfg.Procs = nodes * 2
		cfg.ProcsPerNode = 2
		cfg.MemWords = 128 * sim.GiB / 8
		params = func(p sim.Params) sim.Params { return sim.LassenCPU() }
	default:
		cfg.Procs = nodes * 2
		cfg.ProcsPerNode = 2
		cfg.MemWords = 128 * sim.GiB / 8
		params = func(p sim.Params) sim.Params { return sim.LassenCPUFullCores() }
	}
	in, err := algorithms.Matmul(algorithms.COSMA, cfg)
	if err != nil {
		return nil, err
	}
	name := "COSMA"
	if restricted {
		name = "COSMA (Restricted CPUs)"
	}
	return &Spec{Name: name, In: in, Params: params}, nil
}
