package baselines

import (
	"testing"

	"distal/internal/algorithms"
	"distal/internal/core"
	"distal/internal/legion"
	"distal/internal/sim"
)

func TestScaLAPACKRunsAndIsSlowerThanDISTAL(t *testing.T) {
	const n, nodes = 8192, 4
	spec, err := ScaLAPACKMatmul(n, nodes)
	if err != nil {
		t.Fatal(err)
	}
	scal, err := spec.Execute(sim.LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	// DISTAL's SUMMA on the same node count, overlapped, socket-level.
	in, err := algorithms.Matmul(algorithms.SUMMA, algorithms.MatmulConfig{
		N: n, Procs: nodes * 2, ProcsPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := legion.Run(prog, legion.Options{Params: sim.LassenCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if ours.Time >= scal.Time {
		t.Fatalf("DISTAL (%.4fs) should beat synchronous ScaLAPACK (%.4fs)", ours.Time, scal.Time)
	}
}

func TestCTFMatmulRuns(t *testing.T) {
	spec, err := CTFMatmul(4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Execute(sim.LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Flops <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestCOSMAVariants(t *testing.T) {
	for _, tc := range []struct {
		restricted, gpu bool
	}{{false, false}, {true, false}, {false, true}} {
		spec, err := COSMAMatmul(8192, 4, tc.restricted, tc.gpu)
		if err != nil {
			t.Fatal(err)
		}
		res, err := spec.Execute(sim.LassenCPU())
		if err != nil {
			t.Fatal(err)
		}
		if res.Time <= 0 {
			t.Fatalf("bad time for %+v", tc)
		}
	}
}

func TestCOSMARestrictionSlowsItDown(t *testing.T) {
	full, err := COSMAMatmul(8192, 4, false, false)
	if err != nil {
		t.Fatal(err)
	}
	restr, err := COSMAMatmul(8192, 4, true, false)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := full.Execute(sim.LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	rres, err := restr.Execute(sim.LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	if fres.Time >= rres.Time {
		t.Fatalf("full-core COSMA (%.4f) should beat restricted (%.4f)", fres.Time, rres.Time)
	}
}

func TestCTFTTVCollapsesAcrossNodes(t *testing.T) {
	cfg := algorithms.HigherConfig{I: 1024, J: 1024, K: 256}
	per := func(nodes int) float64 {
		spec, err := CTFTTV(cfg, nodes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := spec.Execute(sim.LassenCPU())
		if err != nil {
			t.Fatal(err)
		}
		// Bandwidth processed per node per second.
		bytes := float64(cfg.I) * float64(cfg.J) * float64(cfg.K) * 8
		return bytes / res.Time / float64(nodes)
	}
	if one, four := per(1), per(4); four > one {
		t.Fatalf("CTF TTV should not weak-scale upward: %.3g vs %.3g per node", one, four)
	}
}

func TestCTFHigherOrderBuildersRun(t *testing.T) {
	cfg := algorithms.HigherConfig{I: 256, J: 256, K: 64, L: 16}
	for name, build := range map[string]func(algorithms.HigherConfig, int) (*Spec, error){
		"ttv": CTFTTV, "innerprod": CTFInnerprod, "ttm": CTFTTM, "mttkrp": CTFMTTKRP,
	} {
		spec, err := build(cfg, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := spec.Execute(sim.LassenCPU())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%s: bad time", name)
		}
	}
}

func TestFeasibleReplication(t *testing.T) {
	for _, p := range []int{4, 16, 64, 8, 32, 128} {
		c := feasibleReplication(p)
		if p%c != 0 || !isSquare(p/c) {
			t.Fatalf("feasibleReplication(%d) = %d invalid", p, c)
		}
	}
	// 8 ranks: c=2 gives 4 = 2^2.
	if c := feasibleReplication(8); c != 2 {
		t.Fatalf("feasibleReplication(8) = %d, want 2", c)
	}
}
