// Package schedule implements DISTAL's scheduling language (§2, §3.3): the
// loop transformations inherited from TACO (split, divide, reorder,
// collapse, parallelize, precompute) plus the three distribution commands
// introduced by the paper — distribute, communicate, and rotate.
//
// A Schedule is a pure description: it records transformations over the
// statement's index variables and validates them structurally. Every
// command also lands in a serializable log (serialize.go), so a schedule
// round-trips through command text — the form CLIs accept, autotuners
// emit, and the plan cache hashes. The compiler in internal/core resolves
// extents against concrete tensor shapes and lowers the scheduled
// statement to a Legion program.
//
// The schedule's derivation DAG — how original index variables are
// reconstructed from divided/split/rotated/fused loop variables — has two
// compiled forms, both resolved once per (schedule, extents) and
// allocation-free per evaluation: Evaluator (eval.go) computes value
// *intervals* under a partial environment and is the engine of the
// compiler's bounds analysis, and ValueProgram (value.go) computes concrete
// *values* under a full assignment and is the index-reconstruction step of
// Real-mode leaf kernels. Both are immutable and safe for concurrent use
// with caller-owned scratch.
package schedule

import (
	"fmt"
	"strings"
	"sync"

	"distal/internal/ir"
)

// VarKind classifies how an index variable came to exist.
type VarKind int

const (
	// Original variables come from the tensor index notation statement.
	Original VarKind = iota
	// DivideOuter/DivideInner result from divide(i, io, ii, c): io ranges
	// over c pieces, ii over each piece (pieces of size ceil(extent(i)/c)).
	DivideOuter
	DivideInner
	// SplitOuter/SplitInner result from split(i, io, ii, s): ii has extent
	// s, io has extent ceil(extent(i)/s).
	SplitOuter
	SplitInner
	// Fused results from collapse(i, j, f): f = i*extent(j) + j.
	Fused
	// Rotated results from rotate(t, I, r): r replaces t in the loop order
	// and t = (r + sum(I)) mod extent(t).
	Rotated
)

// Var is one index variable known to a schedule.
type Var struct {
	Name string
	Kind VarKind

	// Origin is the variable this one derives from (divide/split source,
	// rotate target). Empty for Original and Fused.
	Origin string
	// Partner is the sibling of a divide/split pair.
	Partner string
	// Param is the divide count or split size.
	Param int
	// FuseA and FuseB are the constituents of a Fused variable (A outer).
	FuseA, FuseB string
	// RotateOffsets are the I variables of rotate.
	RotateOffsets []string
}

// Schedule records the transformations applied to one statement.
type Schedule struct {
	stmt *ir.Assignment

	vars  map[string]*Var
	order []string // current loop order, outermost first

	distributed []string          // distributed variables, machine-dim order
	comm        map[string]string // tensor name -> anchor variable
	parallel    map[string]bool   // variables marked parallelize
	leafHint    string            // substitute() target, e.g. "BLAS.GEMM"

	log Commands // every successful command, in application order

	err error // first error; sticky, checked by Err/Finish

	// Compiled-evaluator cache for the map-API shims (Intervals/Value);
	// invalidated whenever a command changes the schedule.
	evalMu      sync.Mutex
	evalCache   *Evaluator
	evalExtents map[string]int
}

// New starts an empty schedule over stmt: the loop order is the statement's
// default left-to-right order (§5.1).
func New(stmt *ir.Assignment) *Schedule {
	s := &Schedule{
		stmt:     stmt,
		vars:     map[string]*Var{},
		comm:     map[string]string{},
		parallel: map[string]bool{},
	}
	for _, v := range stmt.Vars() {
		s.vars[v.Name] = &Var{Name: v.Name, Kind: Original}
		s.order = append(s.order, v.Name)
	}
	return s
}

// Stmt returns the scheduled statement.
func (s *Schedule) Stmt() *ir.Assignment { return s.stmt }

// Err returns the first error recorded by any command, if any. Commands are
// chainable; once an error occurs subsequent commands are no-ops.
func (s *Schedule) Err() error { return s.err }

func (s *Schedule) fail(format string, args ...any) *Schedule {
	if s.err == nil {
		s.err = fmt.Errorf("schedule: "+format, args...)
	}
	return s
}

// record appends one successfully applied command to the serializable log.
// No-op commands (reorder/distribute/communicate with nothing to do) are not
// recorded: they change nothing and have no textual form.
func (s *Schedule) record(op string, args ...string) {
	switch op {
	case "reorder", "distribute":
		if len(args) == 0 {
			return
		}
	case "communicate":
		if len(args) < 2 {
			return
		}
	}
	s.log = append(s.log, Command{Op: op, Args: args})
	s.evalMu.Lock()
	s.evalCache, s.evalExtents = nil, nil
	s.evalMu.Unlock()
}

// Commands returns the log of successfully applied commands: the schedule's
// canonical serializable form. Compound commands (DistributeOnto) appear as
// the primitives they expand to.
func (s *Schedule) Commands() Commands { return append(Commands(nil), s.log...) }

// Var returns the metadata of a variable, or nil if unknown.
func (s *Schedule) Var(name string) *Var { return s.vars[name] }

// Order returns the current loop order, outermost first.
func (s *Schedule) Order() []string { return append([]string(nil), s.order...) }

// Distributed returns the distributed variables in machine-dimension order.
func (s *Schedule) Distributed() []string { return append([]string(nil), s.distributed...) }

// CommAnchor returns the communicate anchor variable for a tensor ("" if
// unset).
func (s *Schedule) CommAnchor(tensor string) string { return s.comm[tensor] }

// LeafHint returns the substitute() target, if any.
func (s *Schedule) LeafHint() string { return s.leafHint }

// Parallelized reports whether a variable was marked parallelize.
func (s *Schedule) Parallelized(name string) bool { return s.parallel[name] }

func (s *Schedule) posOf(name string) int {
	for i, v := range s.order {
		if v == name {
			return i
		}
	}
	return -1
}

func (s *Schedule) checkFresh(names ...string) error {
	for _, n := range names {
		if err := checkToken(n); err != nil {
			return err
		}
		if _, exists := s.vars[n]; exists {
			return fmt.Errorf("variable %s already exists", n)
		}
	}
	return nil
}

// checkToken rejects names the serialization grammar cannot carry, so every
// schedule a fluent chain builds round-trips through String/Parse.
func checkToken(n string) error {
	if n == "" {
		return fmt.Errorf("empty name")
	}
	for _, r := range n {
		if !isTokenRune(r) {
			return fmt.Errorf("name %q contains %q; only letters, digits, '_', '.', '*' serialize", n, string(r))
		}
	}
	return nil
}

// replaceInOrder swaps old (at its position) for the given new names.
func (s *Schedule) replaceInOrder(old string, repl ...string) {
	pos := s.posOf(old)
	out := make([]string, 0, len(s.order)+len(repl)-1)
	out = append(out, s.order[:pos]...)
	out = append(out, repl...)
	out = append(out, s.order[pos+1:]...)
	s.order = out
}

// Divide breaks loop i into c pieces: outer ranges over the pieces, inner
// within a piece of size ceil(extent(i)/c).
func (s *Schedule) Divide(i, outer, inner string, c int) *Schedule {
	if s.err != nil {
		return s
	}
	if s.posOf(i) < 0 {
		return s.fail("divide: unknown or already-transformed variable %s", i)
	}
	if err := s.checkFresh(outer, inner); err != nil {
		return s.fail("divide: %v", err)
	}
	if c <= 0 {
		return s.fail("divide: count must be positive, got %d", c)
	}
	s.vars[outer] = &Var{Name: outer, Kind: DivideOuter, Origin: i, Partner: inner, Param: c}
	s.vars[inner] = &Var{Name: inner, Kind: DivideInner, Origin: i, Partner: outer, Param: c}
	s.replaceInOrder(i, outer, inner)
	s.record("divide", i, outer, inner, fmt.Sprint(c))
	return s
}

// Split breaks loop i into chunks of size size: inner has extent size, outer
// ranges over ceil(extent(i)/size) chunks.
func (s *Schedule) Split(i, outer, inner string, size int) *Schedule {
	if s.err != nil {
		return s
	}
	if s.posOf(i) < 0 {
		return s.fail("split: unknown or already-transformed variable %s", i)
	}
	if err := s.checkFresh(outer, inner); err != nil {
		return s.fail("split: %v", err)
	}
	if size <= 0 {
		return s.fail("split: size must be positive, got %d", size)
	}
	s.vars[outer] = &Var{Name: outer, Kind: SplitOuter, Origin: i, Partner: inner, Param: size}
	s.vars[inner] = &Var{Name: inner, Kind: SplitInner, Origin: i, Partner: outer, Param: size}
	s.replaceInOrder(i, outer, inner)
	s.record("split", i, outer, inner, fmt.Sprint(size))
	return s
}

// Collapse fuses two directly nested loops i (outer) and j (inner) into f:
// f = i*extent(j) + j.
func (s *Schedule) Collapse(i, j, f string) *Schedule {
	if s.err != nil {
		return s
	}
	pi, pj := s.posOf(i), s.posOf(j)
	if pi < 0 || pj < 0 {
		return s.fail("collapse: unknown variable %s or %s", i, j)
	}
	if pj != pi+1 {
		return s.fail("collapse: %s and %s must be directly nested (reorder first)", i, j)
	}
	if err := s.checkFresh(f); err != nil {
		return s.fail("collapse: %v", err)
	}
	s.vars[f] = &Var{Name: f, Kind: Fused, FuseA: i, FuseB: j}
	s.replaceInOrder(i, f)
	s.order = append(s.order[:s.posOf(j)], s.order[s.posOf(j)+1:]...)
	s.record("collapse", i, j, f)
	return s
}

// Reorder rearranges the listed variables into the given relative order,
// keeping unlisted variables at their positions.
func (s *Schedule) Reorder(names ...string) *Schedule {
	if s.err != nil {
		return s
	}
	listed := map[string]bool{}
	for _, n := range names {
		if s.posOf(n) < 0 {
			return s.fail("reorder: unknown or already-transformed variable %s", n)
		}
		if listed[n] {
			return s.fail("reorder: duplicate variable %s", n)
		}
		listed[n] = true
	}
	next := 0
	out := append([]string(nil), s.order...)
	for i, v := range out {
		if listed[v] {
			out[i] = names[next]
			next++
		}
	}
	s.order = out
	s.record("reorder", names...)
	return s
}

// Distribute marks the given variables as distributed onto the machine
// dimensions, in order. Distributed variables must form a prefix of the
// loop order (the outermost loops); multiple calls append to the prefix for
// hierarchical distribution.
func (s *Schedule) Distribute(names ...string) *Schedule {
	if s.err != nil {
		return s
	}
	for _, n := range names {
		if s.posOf(n) < 0 {
			return s.fail("distribute: unknown or already-transformed variable %s", n)
		}
		for _, d := range s.distributed {
			if d == n {
				return s.fail("distribute: variable %s already distributed", n)
			}
		}
		s.distributed = append(s.distributed, n)
	}
	// Validate prefix property.
	for i, d := range s.distributed {
		if i >= len(s.order) || s.order[i] != d {
			return s.fail("distribute: distributed variables %v must be the outermost loops (order is %v)",
				s.distributed, s.order)
		}
	}
	s.record("distribute", names...)
	return s
}

// Rotate replaces target t (a sequential loop) with r such that
// t = (r + sum(I)) mod extent(t): each combination of the I variables starts
// its iteration of t at a different offset, producing systolic communication
// (§3.3).
func (s *Schedule) Rotate(t string, offsets []string, r string) *Schedule {
	if s.err != nil {
		return s
	}
	if s.posOf(t) < 0 {
		return s.fail("rotate: unknown or already-transformed variable %s", t)
	}
	if err := s.checkFresh(r); err != nil {
		return s.fail("rotate: %v", err)
	}
	for _, o := range offsets {
		if s.posOf(o) < 0 {
			return s.fail("rotate: offset variable %s not in the loop order", o)
		}
		if s.posOf(o) > s.posOf(t) {
			return s.fail("rotate: offset variable %s must be outside %s", o, t)
		}
	}
	s.vars[r] = &Var{Name: r, Kind: Rotated, Origin: t, RotateOffsets: append([]string(nil), offsets...)}
	s.replaceInOrder(t, r)
	s.record("rotate", append(append([]string{t}, offsets...), r)...)
	return s
}

// Communicate anchors the communication of the named tensors at variable v:
// the data each processor needs for all iterations nested under one
// iteration of v is aggregated into a single transfer (§3.3).
func (s *Schedule) Communicate(v string, tensors ...string) *Schedule {
	if s.err != nil {
		return s
	}
	if s.posOf(v) < 0 {
		return s.fail("communicate: unknown or already-transformed variable %s", v)
	}
	names := map[string]bool{}
	for _, n := range s.stmt.TensorNames() {
		names[n] = true
	}
	for _, t := range tensors {
		if !names[t] {
			return s.fail("communicate: tensor %s not in statement", t)
		}
		s.comm[t] = v
	}
	s.record("communicate", append([]string{v}, tensors...)...)
	return s
}

// Parallelize marks a (leaf) loop for thread-level parallel execution. In
// this implementation leaf processors are modeled at their full parallel
// throughput, so Parallelize is validated but does not change the cost
// model; it is kept for schedule compatibility.
func (s *Schedule) Parallelize(v string) *Schedule {
	if s.err != nil {
		return s
	}
	if s.posOf(v) < 0 {
		return s.fail("parallelize: unknown or already-transformed variable %s", v)
	}
	s.parallel[v] = true
	s.record("parallelize", v)
	return s
}

// Substitute declares that the loops over the given (innermost) variables
// are implemented by an optimized leaf kernel (e.g. a vendor GEMM). The
// variables must be the innermost loops. Like the paper's substitute, this
// affects leaf execution, not distribution.
func (s *Schedule) Substitute(vars []string, kernel string) *Schedule {
	if s.err != nil {
		return s
	}
	if len(vars) == 0 || len(vars) > len(s.order) {
		return s.fail("substitute: bad variable list %v", vars)
	}
	tail := s.order[len(s.order)-len(vars):]
	set := map[string]bool{}
	for _, v := range vars {
		set[v] = true
	}
	for _, v := range tail {
		if !set[v] {
			return s.fail("substitute: variables %v are not the innermost loops (order %v)", vars, s.order)
		}
	}
	if err := checkToken(kernel); err != nil {
		return s.fail("substitute: kernel: %v", err)
	}
	s.leafHint = kernel
	s.record("substitute", append(append([]string{}, vars...), kernel)...)
	return s
}

// DistributeOnto is the compound command of §3.3: for each machine
// dimension d it divides targets[d] into dist[d] (outer) and local[d]
// (inner) by the machine extent, reorders so all dist variables are
// outermost (followed by the locals), and distributes the dist variables.
func (s *Schedule) DistributeOnto(targets, dist, local []string, gridDims []int) *Schedule {
	if s.err != nil {
		return s
	}
	if len(targets) != len(dist) || len(dist) != len(local) || len(targets) != len(gridDims) {
		return s.fail("DistributeOnto: argument lists must have equal length")
	}
	for d := range targets {
		s.Divide(targets[d], dist[d], local[d], gridDims[d])
	}
	s.Reorder(append(append([]string(nil), dist...), local...)...)
	s.Distribute(dist...)
	return s
}

// String renders the schedule in its serializable command form, e.g.
//
//	divide(i,io,ii,4) reorder(io,jo,ii,ji) distribute(io,jo) communicate(jo,A)
//
// Parse of the result applied to a fresh schedule over the same statement
// reproduces this schedule exactly (see Apply).
func (s *Schedule) String() string { return s.log.String() }

// Describe renders the schedule's resulting state compactly for diagnostics
// (loop order, distribution, communication anchors).
func (s *Schedule) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "order(%s)", strings.Join(s.order, ","))
	if len(s.distributed) > 0 {
		fmt.Fprintf(&b, " distribute(%s)", strings.Join(s.distributed, ","))
	}
	for _, t := range s.stmt.TensorNames() {
		if v, ok := s.comm[t]; ok {
			fmt.Fprintf(&b, " communicate(%s@%s)", t, v)
		}
	}
	if s.leafHint != "" {
		fmt.Fprintf(&b, " substitute(%s)", s.leafHint)
	}
	return b.String()
}
