package schedule

import (
	"fmt"
	"strconv"
	"strings"

	"distal/internal/ir"
)

// This file makes schedules first-class serializable data: a Schedule can be
// rendered as a sequence of textual commands (String/Commands) and rebuilt
// from that text over a fresh statement (Parse + Apply). The grammar is a
// whitespace- or semicolon-separated list of calls:
//
//	divide(i,io,ii,4) split(k,ko,ki,256) collapse(i,j,f)
//	reorder(io,jo,ii,ji) distribute(io,jo)
//	rotate(ko,io,jo,kos)              // target, offsets..., result
//	communicate(jo,A) parallelize(ii)
//	substitute(ii,ji,ki,BLAS.GEMM)    // vars..., kernel
//
// Arguments are bare tokens (letters, digits, '_', '.', '*'); integers are
// decimal. The form is stable: it is what CLIs accept, what autotuners emit,
// and part of the compiler's plan-cache key.

// Command is one scheduling command in serializable form. Integer parameters
// are carried as decimal strings so a Command is pure data.
type Command struct {
	Op   string
	Args []string
}

func (c Command) String() string {
	return c.Op + "(" + strings.Join(c.Args, ",") + ")"
}

// Commands is an ordered command sequence — the textual form of a schedule.
type Commands []Command

// String renders the sequence space-separated, parseable by Parse.
func (cs Commands) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// Equal reports whether two command sequences are identical.
func (cs Commands) Equal(other Commands) bool {
	if len(cs) != len(other) {
		return false
	}
	for i, c := range cs {
		o := other[i]
		if c.Op != o.Op || len(c.Args) != len(o.Args) {
			return false
		}
		for j, a := range c.Args {
			if a != o.Args[j] {
				return false
			}
		}
	}
	return true
}

func isTokenRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
		r >= '0' && r <= '9' || r == '_' || r == '.' || r == '*'
}

// Parse parses the textual command form. Commands are separated by
// whitespace, newlines, or semicolons. Parse validates only the syntax and
// per-command arity; semantic validation happens when the commands are
// applied to a schedule.
func Parse(src string) (Commands, error) {
	var out Commands
	rest := src
	for {
		rest = strings.TrimLeft(rest, " \t\r\n;")
		if rest == "" {
			return out, nil
		}
		open := strings.IndexByte(rest, '(')
		if open <= 0 {
			return nil, fmt.Errorf("schedule: parse: expected command(args...) at %q", snippet(rest))
		}
		op := rest[:open]
		for _, r := range op {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
				return nil, fmt.Errorf("schedule: parse: bad command name %q", op)
			}
		}
		closeIdx := strings.IndexByte(rest[open:], ')')
		if closeIdx < 0 {
			return nil, fmt.Errorf("schedule: parse: missing ')' after %q", snippet(rest))
		}
		argSrc := rest[open+1 : open+closeIdx]
		rest = rest[open+closeIdx+1:]
		var args []string
		if strings.TrimSpace(argSrc) != "" {
			for _, a := range strings.Split(argSrc, ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					return nil, fmt.Errorf("schedule: parse: empty argument in %s(%s)", op, argSrc)
				}
				for _, r := range a {
					if !isTokenRune(r) {
						return nil, fmt.Errorf("schedule: parse: bad argument %q in %s(...)", a, op)
					}
				}
				args = append(args, a)
			}
		}
		cmd := Command{Op: strings.ToLower(op), Args: args}
		if err := checkArity(cmd); err != nil {
			return nil, err
		}
		out = append(out, cmd)
	}
}

func snippet(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

func checkArity(c Command) error {
	bad := func(want string) error {
		return fmt.Errorf("schedule: parse: %s takes %s, got %d args", c.Op, want, len(c.Args))
	}
	switch c.Op {
	case "divide", "split":
		if len(c.Args) != 4 {
			return bad("(var, outer, inner, n)")
		}
		if _, err := strconv.Atoi(c.Args[3]); err != nil {
			return fmt.Errorf("schedule: parse: %s parameter %q is not an integer", c.Op, c.Args[3])
		}
	case "collapse":
		if len(c.Args) != 3 {
			return bad("(outer, inner, fused)")
		}
	case "reorder", "distribute":
		if len(c.Args) == 0 {
			return bad("at least one variable")
		}
	case "rotate":
		if len(c.Args) < 2 {
			return bad("(target, offsets..., result)")
		}
	case "communicate":
		if len(c.Args) < 2 {
			return bad("(var, tensors...)")
		}
	case "parallelize":
		if len(c.Args) != 1 {
			return bad("(var)")
		}
	case "substitute":
		if len(c.Args) < 2 {
			return bad("(vars..., kernel)")
		}
	default:
		return fmt.Errorf("schedule: parse: unknown command %q", c.Op)
	}
	return nil
}

// Apply replays the commands onto the schedule in order. Errors are sticky,
// exactly as if the corresponding methods had been called directly.
func (s *Schedule) Apply(cs Commands) *Schedule {
	for _, c := range cs {
		if s.err != nil {
			return s
		}
		switch c.Op {
		case "divide":
			n, _ := strconv.Atoi(c.Args[3])
			s.Divide(c.Args[0], c.Args[1], c.Args[2], n)
		case "split":
			n, _ := strconv.Atoi(c.Args[3])
			s.Split(c.Args[0], c.Args[1], c.Args[2], n)
		case "collapse":
			s.Collapse(c.Args[0], c.Args[1], c.Args[2])
		case "reorder":
			s.Reorder(c.Args...)
		case "distribute":
			s.Distribute(c.Args...)
		case "rotate":
			last := len(c.Args) - 1
			s.Rotate(c.Args[0], c.Args[1:last], c.Args[last])
		case "communicate":
			s.Communicate(c.Args[0], c.Args[1:]...)
		case "parallelize":
			s.Parallelize(c.Args[0])
		case "substitute":
			last := len(c.Args) - 1
			s.Substitute(c.Args[:last], c.Args[last])
		default:
			return s.fail("apply: unknown command %q", c.Op)
		}
	}
	return s
}

// FromText parses schedule text and applies it to a fresh schedule over
// stmt, returning the first parse or application error.
func FromText(stmt *ir.Assignment, src string) (*Schedule, error) {
	cs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	s := New(stmt).Apply(cs)
	if err := s.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
