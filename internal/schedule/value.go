package schedule

import "fmt"

// This file extends the compiled bounds evaluator (eval.go) to the value
// domain. A ValueProgram is the scalar counterpart of Evaluator.Eval for a
// full assignment: every loop-order variable is bound to a concrete integer
// by the caller, so each derived variable reduces to a handful of integer
// operations (divide/split reconstruction, rotation, fusion) instead of an
// interval computation over every variable. Real-mode leaf kernels run one
// ValueProgram pass per leaf point — this is the hottest loop of validated
// execution, so the program touches only the variables the statement's
// original indices actually derive from and performs no allocation.

type valKind uint8

const (
	// valDivSplit reconstructs a divided/split origin: outer*block + inner.
	// The reconstruction can exceed the origin's extent on the ragged tail
	// of a non-divisible block; such points are outside the iteration space.
	valDivSplit valKind = iota
	// valRotate reconstructs a rotated origin: (source + offsets) mod extent.
	valRotate
	// valFuseOuter/valFuseInner reconstruct the constituents of a collapse.
	valFuseOuter
	valFuseInner
	// valZero binds an unconstrained unit-extent variable to 0.
	valZero
)

// valOp computes the concrete value of variable id from operands evaluated
// by earlier ops or bound by the environment.
type valOp struct {
	kind    valKind
	id      int32
	a, b    int32   // valDivSplit: outer, inner; others: source var
	p       int32   // valDivSplit: block size; valFuse*: inner extent
	ext     int32   // extent of id (ragged check, rotation modulus)
	offsets []int32 // valRotate: offset variable ids
}

// ValueProgram is the value-domain form of an Evaluator: a topologically
// ordered integer program that derives every replaced variable from a full
// assignment of the loop-order variables. It is immutable and safe for
// concurrent use; callers supply per-goroutine scratch.
type ValueProgram struct {
	ops  []valOp
	orig []int32 // ids of the statement's original variables
	nv   int
}

// NumVars returns the length every vals slice passed to Run must have.
func (vp *ValueProgram) NumVars() int { return vp.nv }

// Run derives the concrete value of every original statement variable from
// vals, in which the caller has bound every loop-order variable (see
// Evaluator.VarID). Derived variables are written back into vals as scratch;
// the original variables land in origVals in stmt.Vars() order. Run reports
// false when the point falls outside the iteration space (the ragged tail of
// a non-divisible block). It performs no allocation.
func (vp *ValueProgram) Run(vals []int, origVals []int) bool {
	for i := range vp.ops {
		op := &vp.ops[i]
		switch op.kind {
		case valDivSplit:
			v := vals[op.a]*int(op.p) + vals[op.b]
			if v >= int(op.ext) {
				return false
			}
			vals[op.id] = v
		case valRotate:
			s := vals[op.a]
			for _, o := range op.offsets {
				s += vals[o]
			}
			vals[op.id] = s % int(op.ext)
		case valFuseOuter:
			vals[op.id] = vals[op.a] / int(op.p)
		case valFuseInner:
			vals[op.id] = vals[op.a] % int(op.p)
		case valZero:
			vals[op.id] = 0
		}
	}
	for i, id := range vp.orig {
		origVals[i] = vals[id]
	}
	return true
}

// CompileValues lowers the evaluator to the value domain. The resulting
// program assumes every loop-order variable is bound by the caller; it
// contains one op per replaced variable on a path from the loop order to a
// statement variable, in dependency order. Results are identical to running
// ValueInto over the same assignment (asserted by TestValueProgramMatchesValueInto).
func (ev *Evaluator) CompileValues() *ValueProgram {
	vp := &ValueProgram{orig: ev.orig, nv: len(ev.names)}
	for i := range ev.prog {
		op := &ev.prog[i]
		switch op.kind {
		case opLoop:
			// Bound by the environment: no derivation needed.
		case opDivSplit:
			vp.ops = append(vp.ops, valOp{
				kind: valDivSplit, id: op.id, a: op.a, b: op.b, p: op.p,
				ext: int32(ev.extents[op.id]),
			})
		case opRotate:
			vp.ops = append(vp.ops, valOp{
				kind: valRotate, id: op.id, a: op.a,
				ext: int32(ev.extents[op.id]), offsets: op.offsets,
			})
		case opFuseOuter:
			vp.ops = append(vp.ops, valOp{kind: valFuseOuter, id: op.id, a: op.a, p: op.p})
		case opFuseInner:
			vp.ops = append(vp.ops, valOp{kind: valFuseInner, id: op.id, a: op.a, p: op.p})
		case opFull:
			// A variable the schedule never constrains can only appear when
			// it is ignorable; a full assignment cannot fix it (ValueInto
			// panics in the same situation).
			if ev.extents[op.id] > 1 {
				panic(fmt.Sprintf("schedule: variable %s not fixed by full assignment", ev.names[op.id]))
			}
			vp.ops = append(vp.ops, valOp{kind: valZero, id: op.id})
		}
	}
	return vp
}
