package schedule

import "fmt"

// This file extends the compiled bounds evaluator (eval.go) to the value
// domain. A ValueProgram is the scalar counterpart of Evaluator.Eval for a
// full assignment: every loop-order variable is bound to a concrete integer
// by the caller, so each derived variable reduces to a handful of integer
// operations (divide/split reconstruction, rotation, fusion) instead of an
// interval computation over every variable. Real-mode leaf kernels run one
// ValueProgram pass per leaf point — this is the hottest loop of validated
// execution, so the program touches only the variables the statement's
// original indices actually derive from and performs no allocation.

type valKind uint8

const (
	// valDivSplit reconstructs a divided/split origin: outer*block + inner.
	// The reconstruction can exceed the origin's extent on the ragged tail
	// of a non-divisible block; such points are outside the iteration space.
	valDivSplit valKind = iota
	// valRotate reconstructs a rotated origin: (source + offsets) mod extent.
	valRotate
	// valFuseOuter/valFuseInner reconstruct the constituents of a collapse.
	valFuseOuter
	valFuseInner
	// valZero binds an unconstrained unit-extent variable to 0.
	valZero
)

// valOp computes the concrete value of variable id from operands evaluated
// by earlier ops or bound by the environment.
type valOp struct {
	kind    valKind
	id      int32
	a, b    int32   // valDivSplit: outer, inner; others: source var
	p       int32   // valDivSplit: block size; valFuse*: inner extent
	ext     int32   // extent of id (ragged check, rotation modulus)
	offsets []int32 // valRotate: offset variable ids
}

// ValueProgram is the value-domain form of an Evaluator: a topologically
// ordered integer program that derives every replaced variable from a full
// assignment of the loop-order variables. It is immutable and safe for
// concurrent use; callers supply per-goroutine scratch.
type ValueProgram struct {
	ops  []valOp
	orig []int32 // ids of the statement's original variables
	nv   int
}

// NumVars returns the length every vals slice passed to Run must have.
func (vp *ValueProgram) NumVars() int { return vp.nv }

// Run derives the concrete value of every original statement variable from
// vals, in which the caller has bound every loop-order variable (see
// Evaluator.VarID). Derived variables are written back into vals as scratch;
// the original variables land in origVals in stmt.Vars() order. Run reports
// false when the point falls outside the iteration space (the ragged tail of
// a non-divisible block). It performs no allocation.
func (vp *ValueProgram) Run(vals []int, origVals []int) bool {
	for i := range vp.ops {
		op := &vp.ops[i]
		switch op.kind {
		case valDivSplit:
			v := vals[op.a]*int(op.p) + vals[op.b]
			if v >= int(op.ext) {
				return false
			}
			vals[op.id] = v
		case valRotate:
			s := vals[op.a]
			for _, o := range op.offsets {
				s += vals[o]
			}
			vals[op.id] = s % int(op.ext)
		case valFuseOuter:
			vals[op.id] = vals[op.a] / int(op.p)
		case valFuseInner:
			vals[op.id] = vals[op.a] % int(op.p)
		case valZero:
			vals[op.id] = 0
		}
	}
	for i, id := range vp.orig {
		origVals[i] = vals[id]
	}
	return true
}

// RowPlan describes how a ValueProgram behaves along one "row": every
// loop-order variable held fixed except one (the row variable, typically a
// kernel's innermost leaf loop), which steps through consecutive integers.
// A plan exists only when every original variable's reconstruction is affine
// in the row variable — reached only through divide/split reconstructions
// (value = outer*block + inner, a constant step per unit of the row
// variable) and through rotations/fusions that do not depend on it at all.
// Then each original value advances by a constant per-row step, and the
// in-space points of a row form a prefix: every divide/split check value is
// non-decreasing in the row variable, so once one ragged-tail check fails it
// fails for the rest of the row. Strided kernel loops lean on exactly these
// two facts (see RowRun).
type RowPlan struct {
	rowVar  int32
	steps   []int   // per original variable: d(value)/d(rowVar)
	opSteps []int32 // per vp.ops entry: d(op value)/d(rowVar)
}

// Steps returns, per original statement variable (stmt.Vars() order), how
// much its reconstructed value advances when the row variable advances by
// one. The returned slice must not be modified.
func (rp *RowPlan) Steps() []int { return rp.steps }

// CompileRow analyzes the program's dependence on one loop-order variable
// and returns a RowPlan, or nil when some reconstruction is not affine in it
// (the variable feeds a rotation's modulus or a fusion's div/mod — callers
// fall back to per-point evaluation). rowVar must be a loop-order variable
// id (never the target of an op).
func (vp *ValueProgram) CompileRow(rowVar int) *RowPlan {
	rp := &RowPlan{
		rowVar:  int32(rowVar),
		steps:   make([]int, len(vp.orig)),
		opSteps: make([]int32, len(vp.ops)),
	}
	step := make([]int32, vp.nv)
	step[rowVar] = 1
	for i := range vp.ops {
		op := &vp.ops[i]
		switch op.kind {
		case valDivSplit:
			s := step[op.a]*op.p + step[op.b]
			rp.opSteps[i] = s
			step[op.id] = s
		case valRotate:
			if step[op.a] != 0 {
				return nil // wraps mod extent: not affine in the row variable
			}
			for _, o := range op.offsets {
				if step[o] != 0 {
					return nil
				}
			}
		case valFuseOuter, valFuseInner:
			if step[op.a] != 0 {
				return nil // integer div/mod: not affine in the row variable
			}
		case valZero:
			// Constant.
		}
	}
	for i, id := range vp.orig {
		rp.steps[i] = int(step[id])
	}
	return rp
}

// RowRun evaluates the program at a row's origin (the caller binds the row
// variable to 0 in vals, all other loop-order variables to their values) and
// returns how many consecutive points of the row, starting at the origin,
// lie inside the iteration space. origVals receives the original variables'
// values at the origin; along the row, original variable i advances by
// rp.Steps()[i] per point. A return of 0 means the whole row is outside
// (the caller skips it). RowRun performs no allocation.
//
// The count is exact, not conservative: the only way a full assignment can
// leave the iteration space is a divide/split ragged-tail check, each check
// value is affine with non-negative step in the row variable (rp exists only
// then), so the in-space points are precisely the prefix RowRun reports.
func (vp *ValueProgram) RowRun(rp *RowPlan, vals []int, origVals []int) int {
	limit := int(^uint(0) >> 1) // MaxInt: rows are clamped by the caller's loop extent
	for i := range vp.ops {
		op := &vp.ops[i]
		switch op.kind {
		case valDivSplit:
			v := vals[op.a]*int(op.p) + vals[op.b]
			ext := int(op.ext)
			if v >= ext {
				return 0
			}
			if s := int(rp.opSteps[i]); s > 0 {
				if n := (ext - v + s - 1) / s; n < limit {
					limit = n
				}
			}
			vals[op.id] = v
		case valRotate:
			s := vals[op.a]
			for _, o := range op.offsets {
				s += vals[o]
			}
			vals[op.id] = s % int(op.ext)
		case valFuseOuter:
			vals[op.id] = vals[op.a] / int(op.p)
		case valFuseInner:
			vals[op.id] = vals[op.a] % int(op.p)
		case valZero:
			vals[op.id] = 0
		}
	}
	for i, id := range vp.orig {
		origVals[i] = vals[id]
	}
	return limit
}

// CompileValues lowers the evaluator to the value domain. The resulting
// program assumes every loop-order variable is bound by the caller; it
// contains one op per replaced variable on a path from the loop order to a
// statement variable, in dependency order. Results are identical to running
// ValueInto over the same assignment (asserted by TestValueProgramMatchesValueInto).
func (ev *Evaluator) CompileValues() *ValueProgram {
	vp := &ValueProgram{orig: ev.orig, nv: len(ev.names)}
	for i := range ev.prog {
		op := &ev.prog[i]
		switch op.kind {
		case opLoop:
			// Bound by the environment: no derivation needed.
		case opDivSplit:
			vp.ops = append(vp.ops, valOp{
				kind: valDivSplit, id: op.id, a: op.a, b: op.b, p: op.p,
				ext: int32(ev.extents[op.id]),
			})
		case opRotate:
			vp.ops = append(vp.ops, valOp{
				kind: valRotate, id: op.id, a: op.a,
				ext: int32(ev.extents[op.id]), offsets: op.offsets,
			})
		case opFuseOuter:
			vp.ops = append(vp.ops, valOp{kind: valFuseOuter, id: op.id, a: op.a, p: op.p})
		case opFuseInner:
			vp.ops = append(vp.ops, valOp{kind: valFuseInner, id: op.id, a: op.a, p: op.p})
		case opFull:
			// A variable the schedule never constrains can only appear when
			// it is ignorable; a full assignment cannot fix it (ValueInto
			// panics in the same situation).
			if ev.extents[op.id] > 1 {
				panic(fmt.Sprintf("schedule: variable %s not fixed by full assignment", ev.names[op.id]))
			}
			vp.ops = append(vp.ops, valOp{kind: valZero, id: op.id})
		}
	}
	return vp
}
