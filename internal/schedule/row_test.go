package schedule

import (
	"testing"

	"distal/internal/ir"
)

// rowTestProgram builds the ragged, rotated Cannon-style schedule used by
// the value-program tests: every divide/split is non-divisible, so rows have
// ragged tails in several variables at once.
func rowTestProgram(t *testing.T) (*Schedule, *Evaluator, *ValueProgram, map[string]int) {
	t.Helper()
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	s := New(stmt).
		Divide("i", "io", "ii", 3). // 14/3 -> ragged blocks of 5
		Divide("j", "jo", "ji", 4).
		Split("k", "ko", "ki", 5). // 17/5 -> ragged tail
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Distribute("io", "jo").
		Rotate("ko", []string{"io", "jo"}, "kos")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	ext, err := s.Extents(map[string]int{"i": 14, "j": 16, "k": 17})
	if err != nil {
		t.Fatal(err)
	}
	ev := s.CompileEvaluator(ext)
	return s, ev, ev.CompileValues(), ext
}

// TestRowPlanMatchesRun checks the two facts strided kernels lean on,
// exhaustively over every row of a ragged rotated schedule: (1) RowRun's
// prefix count is exact — a row point is in the iteration space if and only
// if its index along the row is below the count; (2) each original
// variable's value at row point x is its origin value plus x times the
// plan's step.
func TestRowPlanMatchesRun(t *testing.T) {
	s, ev, vp, ext := rowTestProgram(t)
	order := s.Order()
	rowName := order[len(order)-1] // ki: the innermost leaf variable
	rp := vp.CompileRow(ev.VarID(rowName))
	if rp == nil {
		t.Fatalf("CompileRow(%s) = nil; the innermost split variable must be affine", rowName)
	}

	outer := order[:len(order)-1]
	ids := make([]int, len(outer))
	dims := make([]int, len(outer))
	for i, name := range outer {
		ids[i] = ev.VarID(name)
		dims[i] = ext[name]
	}
	rowID, rowExt := ev.VarID(rowName), ext[rowName]
	nv := ev.NumVars()
	vals := make([]int, nv)
	refVals := make([]int, nv)
	origin := make([]int, len(ev.OrigIDs()))
	refOrig := make([]int, len(ev.OrigIDs()))
	steps := rp.Steps()

	asst := make([]int, len(outer))
	rows, ragged := 0, 0
	for {
		for i, id := range ids {
			vals[id] = asst[i]
		}
		vals[rowID] = 0
		n := vp.RowRun(rp, vals, origin)
		if n > rowExt {
			n = rowExt
		}
		if n > 0 && n < rowExt {
			ragged++
		}
		for x := 0; x < rowExt; x++ {
			for i, id := range ids {
				refVals[id] = asst[i]
			}
			refVals[rowID] = x
			in := vp.Run(refVals, refOrig)
			if in != (x < n) {
				t.Fatalf("row %v point %d: Run in-bounds=%v but RowRun count=%d", asst, x, in, n)
			}
			if !in {
				continue
			}
			for i := range refOrig {
				if want := origin[i] + x*steps[i]; refOrig[i] != want {
					t.Fatalf("row %v point %d: orig[%d] = %d, stepped origin gives %d (step %d)",
						asst, x, i, refOrig[i], want, steps[i])
				}
			}
		}
		rows++
		d := len(asst) - 1
		for d >= 0 {
			asst[d]++
			if asst[d] < dims[d] {
				break
			}
			asst[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	if rows == 0 || ragged == 0 {
		t.Fatalf("degenerate coverage: %d rows, %d ragged (want both full and ragged rows)", rows, ragged)
	}
}

// TestCompileRowRejectsNonAffine pins the eligibility rule: a loop-order
// variable that feeds a rotation (as its source or as an offset) or a
// collapse reconstruction is not affine, so CompileRow must refuse and the
// kernel must fall back to per-point evaluation.
func TestCompileRowRejectsNonAffine(t *testing.T) {
	_, ev, vp, _ := rowTestProgram(t)
	// kos is the rotation's source: ko = (kos + io + jo) mod ext wraps.
	if rp := vp.CompileRow(ev.VarID("kos")); rp != nil {
		t.Fatal("CompileRow(kos) accepted a rotation source")
	}
	// io and jo are rotation offsets: same wraparound.
	if rp := vp.CompileRow(ev.VarID("io")); rp != nil {
		t.Fatal("CompileRow(io) accepted a rotation offset")
	}

	// A collapsed pair reconstructs through integer div/mod of the fused
	// variable: not affine either.
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	s := New(stmt).Collapse("i", "j", "f")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	ext, err := s.Extents(map[string]int{"i": 6, "j": 4, "k": 5})
	if err != nil {
		t.Fatal(err)
	}
	fev := s.CompileEvaluator(ext)
	fvp := fev.CompileValues()
	if rp := fvp.CompileRow(fev.VarID("f")); rp != nil {
		t.Fatal("CompileRow(f) accepted a collapse source")
	}
	// k is untouched by the collapse and stays affine (step 1 into itself).
	if rp := fvp.CompileRow(fev.VarID("k")); rp == nil {
		t.Fatal("CompileRow(k) rejected an unconstrained affine variable")
	}
}
