package schedule

import (
	"testing"

	"distal/internal/ir"
)

func gemm() *ir.Assignment {
	return ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
}

func TestDefaultOrder(t *testing.T) {
	s := New(gemm())
	got := s.Order()
	want := []string{"i", "j", "k"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestDivideReplacesInOrder(t *testing.T) {
	s := New(gemm()).Divide("i", "io", "ii", 4)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	want := []string{"io", "ii", "j", "k"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if v := s.Var("io"); v.Kind != DivideOuter || v.Origin != "i" || v.Param != 4 {
		t.Fatalf("io var = %+v", v)
	}
}

func TestDivideErrors(t *testing.T) {
	if New(gemm()).Divide("z", "a", "b", 2).Err() == nil {
		t.Fatal("divide of unknown var should fail")
	}
	if New(gemm()).Divide("i", "j", "x", 2).Err() == nil {
		t.Fatal("divide onto existing name should fail")
	}
	if New(gemm()).Divide("i", "a", "b", 0).Err() == nil {
		t.Fatal("divide count 0 should fail")
	}
	if New(gemm()).Divide("i", "a", "b", 2).Divide("i", "c", "d", 2).Err() == nil {
		t.Fatal("double divide of same var should fail")
	}
}

func TestReorderPartial(t *testing.T) {
	// Fig 2 line: divide i and j, then reorder({io, jo, ii, ji}) with k
	// staying in place at the end.
	s := New(gemm()).
		Divide("i", "io", "ii", 2).
		Divide("j", "jo", "ji", 2).
		Reorder("io", "jo", "ii", "ji")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	want := []string{"io", "jo", "ii", "ji", "k"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestReorderErrors(t *testing.T) {
	if New(gemm()).Reorder("i", "z").Err() == nil {
		t.Fatal("reorder with unknown var should fail")
	}
	if New(gemm()).Reorder("i", "i").Err() == nil {
		t.Fatal("reorder with duplicate should fail")
	}
}

func TestDistributePrefix(t *testing.T) {
	s := New(gemm()).
		Divide("i", "io", "ii", 2).
		Divide("j", "jo", "ji", 2).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	d := s.Distributed()
	if len(d) != 2 || d[0] != "io" || d[1] != "jo" {
		t.Fatalf("distributed = %v", d)
	}
}

func TestDistributeNonPrefixFails(t *testing.T) {
	s := New(gemm()).Distribute("j")
	if s.Err() == nil {
		t.Fatal("distributing a non-outermost loop should fail")
	}
}

func TestSUMMASchedule(t *testing.T) {
	// The full SUMMA schedule of Fig 9.
	s := New(gemm()).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
		Split("k", "ko", "ki", 256).
		Reorder("ko", "ii", "ji", "ki").
		Communicate("jo", "A").
		Communicate("ko", "B", "C")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	want := []string{"io", "jo", "ko", "ii", "ji", "ki"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.CommAnchor("B") != "ko" || s.CommAnchor("A") != "jo" {
		t.Fatal("communicate anchors wrong")
	}
}

func TestCannonScheduleWithRotate(t *testing.T) {
	s := New(gemm()).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{3, 3}).
		Divide("k", "ko", "ki", 3).
		Reorder("ko", "ii", "ji", "ki").
		Rotate("ko", []string{"io", "jo"}, "kos").
		Communicate("jo", "A").
		Communicate("kos", "B", "C")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	want := []string{"io", "jo", "kos", "ii", "ji", "ki"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	v := s.Var("kos")
	if v.Kind != Rotated || v.Origin != "ko" || len(v.RotateOffsets) != 2 {
		t.Fatalf("kos = %+v", v)
	}
}

func TestRotateErrors(t *testing.T) {
	if New(gemm()).Rotate("k", []string{"z"}, "ks").Err() == nil {
		t.Fatal("rotate with unknown offset should fail")
	}
	// Offset must be outside (before) the target.
	if New(gemm()).Rotate("i", []string{"k"}, "is").Err() == nil {
		t.Fatal("rotate with inner offset should fail")
	}
}

func TestCommunicateUnknownTensor(t *testing.T) {
	if New(gemm()).Communicate("i", "Z").Err() == nil {
		t.Fatal("communicate of unknown tensor should fail")
	}
}

func TestCollapse(t *testing.T) {
	s := New(gemm()).Collapse("i", "j", "f")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	want := []string{"f", "k"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if New(gemm()).Collapse("i", "k", "f").Err() == nil {
		t.Fatal("collapse of non-nested loops should fail")
	}
}

func TestSubstitute(t *testing.T) {
	s := New(gemm()).Substitute([]string{"j", "k"}, "BLAS.GEMM")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if s.LeafHint() != "BLAS.GEMM" {
		t.Fatal("leaf hint not recorded")
	}
	if New(gemm()).Substitute([]string{"i", "j"}, "X").Err() == nil {
		t.Fatal("substitute of non-innermost loops should fail")
	}
}

func TestParallelize(t *testing.T) {
	s := New(gemm()).Parallelize("i")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if !s.Parallelized("i") || s.Parallelized("j") {
		t.Fatal("parallelize flag wrong")
	}
}

func TestStickyError(t *testing.T) {
	s := New(gemm()).Divide("z", "a", "b", 2).Split("k", "ko", "ki", 4)
	if s.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if s.Var("ko") != nil {
		t.Fatal("commands after an error must be no-ops")
	}
}

func TestExtents(t *testing.T) {
	s := New(gemm()).
		Divide("i", "io", "ii", 4).
		Split("k", "ko", "ki", 16)
	ext, err := s.Extents(map[string]int{"i": 100, "j": 8, "k": 50})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{
		"i": 100, "j": 8, "k": 50,
		"io": 4, "ii": 25, // ceil(100/4)
		"ko": 4, "ki": 16, // ceil(50/16) = 4
	}
	for name, want := range cases {
		if ext[name] != want {
			t.Fatalf("extent(%s) = %d, want %d", name, ext[name], want)
		}
	}
}

func TestExtentsRotatedAndFused(t *testing.T) {
	s := New(gemm()).
		Divide("k", "ko", "ki", 5).
		Rotate("ko", []string{"i"}, "kos").
		Collapse("i", "j", "f")
	ext, err := s.Extents(map[string]int{"i": 3, "j": 4, "k": 10})
	if err != nil {
		t.Fatal(err)
	}
	if ext["kos"] != 5 || ext["f"] != 12 {
		t.Fatalf("extents = %v", ext)
	}
}

func TestIntervalsDivide(t *testing.T) {
	s := New(gemm()).Divide("i", "io", "ii", 4)
	ext, _ := s.Extents(map[string]int{"i": 100, "j": 8, "k": 50})
	// io fixed to 2, ii free: i in [50, 75).
	ivs := s.Intervals(map[string]int{"io": 2}, ext)
	if ivs["i"] != (Interval{50, 75}) {
		t.Fatalf("i interval = %v", ivs["i"])
	}
	// Nothing fixed: full ranges.
	ivs = s.Intervals(map[string]int{}, ext)
	if ivs["i"] != (Interval{0, 100}) || ivs["k"] != (Interval{0, 50}) {
		t.Fatalf("ivs = %v", ivs)
	}
}

func TestIntervalsClampLastBlock(t *testing.T) {
	s := New(gemm()).Divide("i", "io", "ii", 3)
	ext, _ := s.Extents(map[string]int{"i": 10, "j": 2, "k": 2})
	// Block size ceil(10/3)=4; io=2 covers [8,12) clamped to [8,10).
	ivs := s.Intervals(map[string]int{"io": 2}, ext)
	if ivs["i"] != (Interval{8, 10}) {
		t.Fatalf("i interval = %v", ivs["i"])
	}
}

func TestIntervalsSplitFixedBoth(t *testing.T) {
	s := New(gemm()).Split("k", "ko", "ki", 16)
	ext, _ := s.Extents(map[string]int{"i": 2, "j": 2, "k": 50})
	ivs := s.Intervals(map[string]int{"ko": 1, "ki": 3}, ext)
	if ivs["k"] != (Interval{19, 20}) {
		t.Fatalf("k interval = %v", ivs["k"])
	}
}

func TestIntervalsRotation(t *testing.T) {
	// Cannon-style: k divided by 3, rotated by io and jo.
	s := New(gemm()).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{3, 3}).
		Divide("k", "ko", "ki", 3).
		Reorder("ko", "ii", "ji", "ki").
		Rotate("ko", []string{"io", "jo"}, "kos")
	ext, _ := s.Extents(map[string]int{"i": 9, "j": 9, "k": 9})
	// kos=0, io=1, jo=2: ko = (0+1+2) mod 3 = 0; k in [0,3).
	ivs := s.Intervals(map[string]int{"kos": 0, "io": 1, "jo": 2}, ext)
	if ivs["k"] != (Interval{0, 3}) {
		t.Fatalf("k interval = %v", ivs["k"])
	}
	// kos=2, io=2, jo=2: ko = 6 mod 3 = 0 -> k in [0,3).
	ivs = s.Intervals(map[string]int{"kos": 2, "io": 2, "jo": 2}, ext)
	if ivs["k"] != (Interval{0, 3}) {
		t.Fatalf("k interval = %v", ivs["k"])
	}
	// kos=1, io=0, jo=0: ko = 1 -> k in [3,6).
	ivs = s.Intervals(map[string]int{"kos": 1, "io": 0, "jo": 0}, ext)
	if ivs["k"] != (Interval{3, 6}) {
		t.Fatalf("k interval = %v", ivs["k"])
	}
	// Rotation with unfixed offsets: full range.
	ivs = s.Intervals(map[string]int{"kos": 1}, ext)
	if ivs["k"] != (Interval{0, 9}) {
		t.Fatalf("k interval = %v", ivs["k"])
	}
}

func TestValueReconstruction(t *testing.T) {
	s := New(gemm()).
		Divide("i", "io", "ii", 3).
		Split("k", "ko", "ki", 4)
	ext, _ := s.Extents(map[string]int{"i": 10, "j": 5, "k": 10})
	env := map[string]int{"io": 1, "ii": 2, "j": 3, "ko": 2, "ki": 1}
	vals, ok := s.Value(env, ext)
	if !ok {
		t.Fatal("value should be in bounds")
	}
	if vals["i"] != 6 || vals["j"] != 3 || vals["k"] != 9 {
		t.Fatalf("vals = %v", vals)
	}
	// Out of bounds: io=2, ii=3 -> i = 11 >= 10.
	if _, ok := s.Value(map[string]int{"io": 2, "ii": 3, "j": 0, "ko": 0, "ki": 0}, ext); ok {
		t.Fatal("out-of-extent value should report false")
	}
}

func TestValueFused(t *testing.T) {
	s := New(gemm()).Collapse("i", "j", "f")
	ext, _ := s.Extents(map[string]int{"i": 3, "j": 4, "k": 2})
	vals, ok := s.Value(map[string]int{"f": 7, "k": 1}, ext)
	if !ok || vals["i"] != 1 || vals["j"] != 3 {
		t.Fatalf("vals = %v ok=%v", vals, ok)
	}
}

func TestScheduleString(t *testing.T) {
	s := New(gemm()).
		DistributeOnto([]string{"i", "j"}, []string{"io", "jo"}, []string{"ii", "ji"}, []int{2, 2}).
		Communicate("jo", "A")
	got := s.String()
	if got == "" || s.Err() != nil {
		t.Fatalf("String() = %q err=%v", got, s.Err())
	}
}
