package schedule

import (
	"fmt"
	"sort"
)

// This file compiles a schedule's bounds analysis into an Evaluator: a
// topologically-ordered slice program over integer variable ids. The
// recursive, map-keyed interval derivation of Intervals is resolved once per
// (schedule, extents); evaluating a point is then a single linear pass that
// fills a caller-owned []Interval scratch buffer with no allocation. This is
// the hot path of compilation — it runs once per tensor per domain point —
// and of Real-mode leaf kernels.

type evalOpKind uint8

const (
	// opLoop is a variable in the loop order: fixed by the environment or
	// spanning its full extent.
	opLoop evalOpKind = iota
	// opDivSplit reconstructs a divided/split origin from outer and inner.
	opDivSplit
	// opRotate reconstructs a rotated origin from the rotation variable and
	// its offset variables.
	opRotate
	// opFuseOuter/opFuseInner reconstruct the constituents of a collapse.
	opFuseOuter
	opFuseInner
	// opFull is the unconstrained fallback (full extent).
	opFull
)

// evalOp computes the interval of variable id from operands evaluated by
// earlier ops.
type evalOp struct {
	kind    evalOpKind
	id      int32
	a, b    int32   // opDivSplit: outer, inner; opRotate/opFuse*: source var
	p       int32   // opDivSplit: block size; opFuse*: inner (FuseB) extent
	offsets []int32 // opRotate: offset variable ids
}

// Evaluator is the bounds analysis of one schedule compiled against one set
// of extents. It is immutable and safe for concurrent use; callers supply
// per-goroutine scratch buffers.
type Evaluator struct {
	ids     map[string]int
	names   []string
	extents []int    // by variable id
	prog    []evalOp // topological order: operands before users
	orig    []int32  // ids of the statement's original variables, stmt.Vars() order
}

// NumVars returns the number of schedule variables; every scratch slice
// passed to Eval/ValueInto must have exactly this length.
func (ev *Evaluator) NumVars() int { return len(ev.names) }

// VarID returns the id of a variable, or -1 if unknown.
func (ev *Evaluator) VarID(name string) int {
	if id, ok := ev.ids[name]; ok {
		return id
	}
	return -1
}

// VarName returns the name of a variable id.
func (ev *Evaluator) VarName(id int) string { return ev.names[id] }

// Extent returns the extent of a variable id.
func (ev *Evaluator) Extent(id int) int { return ev.extents[id] }

// OrigIDs returns the ids of the statement's original variables in
// stmt.Vars() order. The returned slice must not be modified.
func (ev *Evaluator) OrigIDs() []int32 { return ev.orig }

// Eval computes the value interval of every variable. fixed[id] marks
// variables bound to vals[id] (the environment); every other variable in
// the loop order spans its full extent, and replaced variables are
// reconstructed from their replacements. Results land in out, indexed by
// variable id. All three slices must have length NumVars. Eval performs no
// allocation.
func (ev *Evaluator) Eval(fixed []bool, vals []int, out []Interval) {
	for i := range ev.prog {
		op := &ev.prog[i]
		id := op.id
		if fixed[id] {
			x := vals[id]
			out[id] = Interval{Lo: x, Hi: x + 1}
			continue
		}
		switch op.kind {
		case opLoop, opFull:
			out[id] = Interval{Lo: 0, Hi: ev.extents[id]}
		case opDivSplit:
			outer, inner := out[op.a], out[op.b]
			blk := int(op.p)
			iv := Interval{Lo: outer.Lo*blk + inner.Lo, Hi: (outer.Hi-1)*blk + inner.Hi}
			out[id] = clampIv(iv, ev.extents[id])
		case opRotate:
			rv := out[op.a]
			allFixed := rv.Fixed()
			sum := rv.Lo
			for _, o := range op.offsets {
				ov := out[o]
				if !ov.Fixed() {
					allFixed = false
					break
				}
				sum += ov.Lo
			}
			if allFixed {
				x := sum % ev.extents[id]
				out[id] = Interval{Lo: x, Hi: x + 1}
			} else {
				out[id] = Interval{Lo: 0, Hi: ev.extents[id]}
			}
		case opFuseOuter:
			if fv := out[op.a]; fv.Fixed() {
				x := fv.Lo / int(op.p)
				out[id] = Interval{Lo: x, Hi: x + 1}
			} else {
				out[id] = Interval{Lo: 0, Hi: ev.extents[id]}
			}
		case opFuseInner:
			if fv := out[op.a]; fv.Fixed() {
				x := fv.Lo % int(op.p)
				out[id] = Interval{Lo: x, Hi: x + 1}
			} else {
				out[id] = Interval{Lo: 0, Hi: ev.extents[id]}
			}
		}
	}
}

// ValueInto computes the concrete value of every original statement variable
// from a full assignment (every loop-order variable fixed), writing them into
// origVals in stmt.Vars() order. It returns false if any original variable
// falls outside its extent (the ragged tail of a non-divisible block).
// scratch must have length NumVars; origVals length len(OrigIDs()).
func (ev *Evaluator) ValueInto(fixed []bool, vals []int, scratch []Interval, origVals []int) bool {
	ev.Eval(fixed, vals, scratch)
	for i, id := range ev.orig {
		iv := scratch[id]
		if iv.Hi <= iv.Lo {
			return false
		}
		if !iv.Fixed() {
			panic(fmt.Sprintf("schedule: variable %s not fixed by full assignment", ev.names[id]))
		}
		if iv.Lo < 0 || iv.Lo >= ev.extents[id] {
			return false
		}
		origVals[i] = iv.Lo
	}
	return true
}

// CompileEvaluator resolves the schedule's derived-variable DAG against the
// given extents (which must come from Extents) into an Evaluator. The result
// does not reference the schedule and stays valid if further commands are
// applied — it describes the schedule as of the call.
func (s *Schedule) CompileEvaluator(extents map[string]int) *Evaluator {
	ev := &Evaluator{ids: make(map[string]int, len(s.vars))}
	// Deterministic ids: loop-order variables first, then replaced variables
	// in statement order (statement vars, then remaining by discovery through
	// the DAG — every replaced var is reachable from a statement var or is
	// itself ignorable).
	addVar := func(name string) int {
		if id, ok := ev.ids[name]; ok {
			return id
		}
		id := len(ev.names)
		ev.ids[name] = id
		ev.names = append(ev.names, name)
		ev.extents = append(ev.extents, extents[name])
		return id
	}
	for _, name := range s.order {
		addVar(name)
	}
	for _, v := range s.stmt.Vars() {
		addVar(v.Name)
	}
	for _, name := range sortedVarNames(s.vars) {
		addVar(name)
	}

	emitted := make([]bool, len(ev.names))
	var emit func(name string)
	emit = func(name string) {
		id := ev.ids[name]
		if emitted[id] {
			return
		}
		emitted[id] = true // pre-mark: the DAG is acyclic by construction
		if s.posOf(name) >= 0 {
			ev.prog = append(ev.prog, evalOp{kind: opLoop, id: int32(id)})
			return
		}
		switch {
		case s.dividedOrSplit(name) != nil:
			d := s.dividedOrSplit(name)
			emit(d.outer)
			emit(d.inner)
			ev.prog = append(ev.prog, evalOp{
				kind: opDivSplit, id: int32(id),
				a: int32(ev.ids[d.outer]), b: int32(ev.ids[d.inner]),
				p: int32(d.blockSize(extents)),
			})
		case s.rotatedBy(name) != nil:
			r := s.rotatedBy(name)
			emit(r.Name)
			offs := make([]int32, len(r.RotateOffsets))
			for i, o := range r.RotateOffsets {
				emit(o)
				offs[i] = int32(ev.ids[o])
			}
			ev.prog = append(ev.prog, evalOp{
				kind: opRotate, id: int32(id), a: int32(ev.ids[r.Name]), offsets: offs,
			})
		case s.fusedInto(name) != nil:
			f := s.fusedInto(name)
			emit(f.Name)
			kind := opFuseOuter
			if name == f.FuseB {
				kind = opFuseInner
			}
			ev.prog = append(ev.prog, evalOp{
				kind: kind, id: int32(id),
				a: int32(ev.ids[f.Name]), p: int32(extents[f.FuseB]),
			})
		default:
			// Unconstrained (should not happen): full extent.
			ev.prog = append(ev.prog, evalOp{kind: opFull, id: int32(id)})
		}
	}
	for _, name := range ev.names {
		emit(name)
	}
	for _, v := range s.stmt.Vars() {
		ev.orig = append(ev.orig, int32(ev.ids[v.Name]))
	}
	return ev
}

func sortedVarNames(vars map[string]*Var) []string {
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
