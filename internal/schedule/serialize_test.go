package schedule

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"distal/internal/ir"
)

func TestCommandStringForm(t *testing.T) {
	s := New(gemm()).
		Divide("i", "io", "ii", 4).Divide("j", "jo", "ji", 4).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Communicate("jo", "A")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	want := "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) distribute(io,jo) communicate(jo,A)"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	for _, src := range []string{
		"divide(i,io,ii)",    // wrong arity
		"divide(i,io,ii,x)",  // non-integer param
		"frobnicate(i)",      // unknown command
		"divide(i,io,ii,4",   // missing paren
		"reorder()",          // no vars
		"communicate(jo)",    // no tensors
		"divide(i,i o,ii,4)", // bad token
		"divide(i,,ii,4)",    // empty arg
		"42(i)",              // bad command name
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestFluentRejectsUnserializableNames: names the textual grammar cannot
// carry must fail at command time, never produce text Parse rejects.
func TestFluentRejectsUnserializableNames(t *testing.T) {
	if err := New(gemm()).Divide("i", "i-out", "i-in", 4).Err(); err == nil {
		t.Error("Divide accepted a fresh name with '-'")
	}
	if err := New(gemm()).Substitute([]string{"i", "j", "k"}, "cuBLAS-GEMM").Err(); err == nil {
		t.Error("Substitute accepted a kernel name with '-'")
	}
	s := New(gemm()).Substitute([]string{"i", "j", "k"}, "BLAS.GEMM")
	if err := s.Err(); err != nil {
		t.Errorf("dotted kernel name rejected: %v", err)
	}
	if _, err := FromText(gemm(), s.String()); err != nil {
		t.Errorf("serialized substitute does not re-parse: %v", err)
	}
}

func TestParseSeparators(t *testing.T) {
	cs, err := Parse("divide(i,io,ii,4);\n  split(k, ko, ki, 16)\t reorder(io,ii)")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 || cs[0].Op != "divide" || cs[1].Op != "split" || cs[2].Op != "reorder" {
		t.Fatalf("cs = %v", cs)
	}
	if cs[1].Args[3] != "16" {
		t.Fatalf("split args = %v", cs[1].Args)
	}
}

func TestFromTextMatchesFluent(t *testing.T) {
	fluent := New(gemm()).
		Divide("i", "io", "ii", 3).Divide("j", "jo", "ji", 3).
		Reorder("io", "jo", "ii", "ji").
		Distribute("io", "jo").
		Divide("k", "ko", "ki", 3).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Rotate("ko", []string{"io", "jo"}, "kos").
		Communicate("jo", "A").
		Communicate("kos", "B", "C").
		Substitute([]string{"ii", "ji", "ki"}, "BLAS.GEMM")
	if err := fluent.Err(); err != nil {
		t.Fatal(err)
	}
	parsed, err := FromText(gemm(), fluent.String())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Commands().Equal(fluent.Commands()) {
		t.Fatalf("commands differ:\n  fluent: %s\n  parsed: %s", fluent, parsed)
	}
	if fmt.Sprint(parsed.Order()) != fmt.Sprint(fluent.Order()) {
		t.Fatalf("order differs: %v vs %v", parsed.Order(), fluent.Order())
	}
	if fmt.Sprint(parsed.Distributed()) != fmt.Sprint(fluent.Distributed()) {
		t.Fatalf("distributed differs: %v vs %v", parsed.Distributed(), fluent.Distributed())
	}
	if parsed.Describe() != fluent.Describe() {
		t.Fatalf("state differs:\n  fluent: %s\n  parsed: %s", fluent.Describe(), parsed.Describe())
	}
}

// TestSerializeRoundTripProperty: for random valid command chains s,
// Parse(String(s)) applied to a fresh schedule over the same statement
// reproduces the command log, the loop order, and the full schedule state.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
		s := New(stmt)
		fresh := 0
		name := func() string {
			fresh++
			return fmt.Sprintf("v%d", fresh)
		}
		tensors := []string{"A", "B", "C"}
		for n := rng.Intn(6); n > 0; n-- {
			order := s.Order()
			target := order[rng.Intn(len(order))]
			switch rng.Intn(6) {
			case 0:
				s.Divide(target, name(), name(), rng.Intn(4)+1)
			case 1:
				s.Split(target, name(), name(), rng.Intn(4)+1)
			case 2:
				// Reorder a random shuffle of the current order.
				shuffled := append([]string(nil), order...)
				rng.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				s.Reorder(shuffled...)
			case 3:
				s.Communicate(target, tensors[rng.Intn(len(tensors))])
			case 4:
				s.Parallelize(target)
			case 5:
				s.Rotate(target, nil, name())
			}
			if s.Err() != nil {
				return true // invalid chains are out of scope
			}
		}
		text := s.String()
		rt, err := FromText(ir.MustParse("A(i,j) = B(i,k) * C(k,j)"), text)
		if err != nil {
			t.Logf("seed %d: FromText(%q) failed: %v", seed, text, err)
			return false
		}
		if !rt.Commands().Equal(s.Commands()) {
			t.Logf("seed %d: commands differ: %q vs %q", seed, rt.String(), text)
			return false
		}
		if fmt.Sprint(rt.Order()) != fmt.Sprint(s.Order()) ||
			fmt.Sprint(rt.Distributed()) != fmt.Sprint(s.Distributed()) ||
			rt.Describe() != s.Describe() {
			t.Logf("seed %d: state differs for %q", seed, text)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
