package schedule

import (
	"testing"

	"distal/internal/ir"
)

// TestValueProgramMatchesValueInto exhaustively compares the value-domain
// program against the interval evaluator's ValueInto over every full
// assignment of a schedule that exercises divide, split, rotate, and the
// ragged tail (extents not divisible by block counts).
func TestValueProgramMatchesValueInto(t *testing.T) {
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	s := New(stmt).
		Divide("i", "io", "ii", 3). // 14/3 -> ragged blocks of 5
		Divide("j", "jo", "ji", 4).
		Split("k", "ko", "ki", 5). // 17/5 -> ragged tail
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Distribute("io", "jo").
		Rotate("ko", []string{"io", "jo"}, "kos")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	ext, err := s.Extents(map[string]int{"i": 14, "j": 16, "k": 17})
	if err != nil {
		t.Fatal(err)
	}
	ev := s.CompileEvaluator(ext)
	vp := ev.CompileValues()
	if vp.NumVars() != ev.NumVars() {
		t.Fatalf("NumVars mismatch: %d vs %d", vp.NumVars(), ev.NumVars())
	}

	order := s.Order()
	ids := make([]int, len(order))
	dims := make([]int, len(order))
	for i, name := range order {
		ids[i] = ev.VarID(name)
		dims[i] = ext[name]
	}
	nv := ev.NumVars()
	fixed := make([]bool, nv)
	for _, id := range ids {
		fixed[id] = true
	}
	vals := make([]int, nv)
	scratch := make([]Interval, nv)
	wantOrig := make([]int, len(ev.OrigIDs()))
	gotOrig := make([]int, len(ev.OrigIDs()))

	asst := make([]int, len(order))
	checked, inBounds := 0, 0
	for {
		for i, id := range ids {
			vals[id] = asst[i]
		}
		want := ev.ValueInto(fixed, vals, scratch, wantOrig)
		got := vp.Run(vals, gotOrig)
		if got != want {
			t.Fatalf("assignment %v: ValueProgram in-bounds=%v, ValueInto=%v", asst, got, want)
		}
		if want {
			inBounds++
			for i := range wantOrig {
				if gotOrig[i] != wantOrig[i] {
					t.Fatalf("assignment %v: orig[%d] = %d, want %d", asst, i, gotOrig[i], wantOrig[i])
				}
			}
		}
		checked++
		d := len(asst) - 1
		for d >= 0 {
			asst[d]++
			if asst[d] < dims[d] {
				break
			}
			asst[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	if inBounds == 0 || inBounds == checked {
		t.Fatalf("degenerate coverage: %d of %d assignments in bounds (want both ragged skips and hits)", inBounds, checked)
	}
}

// TestValueProgramAllocationFree: like the interval evaluator, the value
// program must not allocate per point — it runs once per leaf point of
// every Real-mode task.
func TestValueProgramAllocationFree(t *testing.T) {
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	s := New(stmt).
		Divide("i", "io", "ii", 4).
		Divide("j", "jo", "ji", 4).
		Split("k", "ko", "ki", 4).
		Reorder("io", "jo", "ko", "ii", "ji", "ki").
		Distribute("io", "jo")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	ext, err := s.Extents(map[string]int{"i": 16, "j": 16, "k": 16})
	if err != nil {
		t.Fatal(err)
	}
	ev := s.CompileEvaluator(ext)
	vp := ev.CompileValues()
	vals := make([]int, ev.NumVars())
	orig := make([]int, len(ev.OrigIDs()))
	allocs := testing.AllocsPerRun(100, func() {
		vp.Run(vals, orig)
	})
	if allocs != 0 {
		t.Fatalf("ValueProgram.Run allocates %v per run, want 0", allocs)
	}
}
