package schedule

import (
	"testing"

	"distal/internal/ir"
)

func chainSchedule(t *testing.T) (*Schedule, map[string]int) {
	t.Helper()
	stmt := ir.MustParse("A(i,j) = B(i,k) * C(k,j)")
	s := New(stmt).
		Divide("i", "io", "ii", 4).
		Split("ii", "iio", "iii", 2).
		Divide("j", "jo", "ji", 4).
		Divide("k", "ko", "ki", 4).
		Reorder("io", "jo", "ko", "iio", "iii", "ji", "ki").
		Distribute("io", "jo", "ko").
		Rotate("ko", []string{"io", "jo"}, "kos")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	ext, err := s.Extents(map[string]int{"i": 32, "j": 16, "k": 64})
	if err != nil {
		t.Fatal(err)
	}
	return s, ext
}

// TestEvaluatorChainReconstruction: a variable divided and then split must
// be reconstructed through the whole derivation chain.
func TestEvaluatorChainReconstruction(t *testing.T) {
	s, ext := chainSchedule(t)
	// io=1 fixes i's block [8,16); iio=3, iii free (extent 2) fixes
	// ii in [6,8), so i = 8*1 + [6,8) = [14,16).
	ivs := s.Intervals(map[string]int{"io": 1, "iio": 3}, ext)
	if got := ivs["i"]; got != (Interval{Lo: 14, Hi: 16}) {
		t.Fatalf("i interval = %+v, want [14,16)", got)
	}
	// Rotation with fixed offsets is exact: k block is (kos+io+jo) mod 4.
	ivs = s.Intervals(map[string]int{"kos": 1, "io": 2, "jo": 3}, ext)
	want := Interval{Lo: ((1 + 2 + 3) % 4) * 16, Hi: ((1+2+3)%4)*16 + 16}
	if got := ivs["k"]; got != want {
		t.Fatalf("k interval = %+v, want %+v", got, want)
	}
}

// TestEvaluatorAllocationFree: the compiled evaluator must not allocate per
// evaluation — that is its reason to exist.
func TestEvaluatorAllocationFree(t *testing.T) {
	s, ext := chainSchedule(t)
	ev := s.CompileEvaluator(ext)
	n := ev.NumVars()
	fixed := make([]bool, n)
	vals := make([]int, n)
	out := make([]Interval, n)
	for i, name := range []string{"io", "jo", "kos"} {
		id := ev.VarID(name)
		if id < 0 {
			t.Fatalf("no id for %s", name)
		}
		fixed[id] = true
		vals[id] = i
	}
	if allocs := testing.AllocsPerRun(200, func() { ev.Eval(fixed, vals, out) }); allocs != 0 {
		t.Fatalf("Eval allocated %.1f objects per run, want 0", allocs)
	}
}

// TestEvaluatorMatchesShim: the map-API shim and a direct evaluation must
// agree for every original variable.
func TestEvaluatorMatchesShim(t *testing.T) {
	s, ext := chainSchedule(t)
	env := map[string]int{"io": 2, "jo": 1, "kos": 3, "iio": 0}
	ivs := s.Intervals(env, ext)

	ev := s.CompileEvaluator(ext)
	n := ev.NumVars()
	fixed := make([]bool, n)
	vals := make([]int, n)
	out := make([]Interval, n)
	for k, v := range env {
		fixed[ev.VarID(k)] = true
		vals[ev.VarID(k)] = v
	}
	ev.Eval(fixed, vals, out)
	for _, id := range ev.OrigIDs() {
		name := ev.VarName(int(id))
		if out[id] != ivs[name] {
			t.Fatalf("%s: direct %+v vs shim %+v", name, out[id], ivs[name])
		}
	}
}

// TestEvaluatorCache: EvaluatorFor caches per (schedule, extents) and
// invalidates when the schedule changes.
func TestEvaluatorCache(t *testing.T) {
	s, ext := chainSchedule(t)
	ev1 := s.EvaluatorFor(ext)
	if ev2 := s.EvaluatorFor(ext); ev2 != ev1 {
		t.Fatal("same extents should return the cached evaluator")
	}
	other := map[string]int{}
	for k, v := range ext {
		other[k] = v
	}
	other["j"] = 32
	if ev3 := s.EvaluatorFor(other); ev3 == ev1 {
		t.Fatal("different extents must recompile")
	}
	s.Parallelize("ki")
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if ev4 := s.EvaluatorFor(ext); ev4 == ev1 {
		t.Fatal("applying a command must invalidate the cached evaluator")
	}
}

// TestEvaluatorValueInto: full assignments reconstruct exact original
// values and reject ragged points.
func TestEvaluatorValueInto(t *testing.T) {
	stmt := ir.MustParse("A(i) = B(i)")
	s := New(stmt).Divide("i", "io", "ii", 4)
	ext, err := s.Extents(map[string]int{"i": 10}) // blocks of 3: last block ragged
	if err != nil {
		t.Fatal(err)
	}
	ev := s.CompileEvaluator(ext)
	n := ev.NumVars()
	fixed := make([]bool, n)
	vals := make([]int, n)
	scratch := make([]Interval, n)
	orig := make([]int, len(ev.OrigIDs()))
	set := func(name string, v int) {
		fixed[ev.VarID(name)] = true
		vals[ev.VarID(name)] = v
	}
	set("io", 2)
	set("ii", 1)
	if !ev.ValueInto(fixed, vals, scratch, orig) || orig[0] != 7 {
		t.Fatalf("io=2,ii=1: got %v, want i=7", orig)
	}
	set("io", 3)
	set("ii", 2)
	if ev.ValueInto(fixed, vals, scratch, orig) {
		t.Fatal("io=3,ii=2 is i=11, outside extent 10; want ragged rejection")
	}
}
