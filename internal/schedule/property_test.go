package schedule

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"distal/internal/ir"
)

// TestValueRoundTripProperty: for random divide/split chains over random
// extents, enumerating all loop-order assignments and reconstructing the
// original variables must visit every point of the original iteration space
// exactly once. This is the invariant the compiler's correctness rests on.
func TestValueRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ni, nj, nk := rng.Intn(7)+1, rng.Intn(7)+1, rng.Intn(7)+1
		s := New(ir.MustParse("A(i,j) = B(i,k) * C(k,j)"))
		// Apply 0-3 random transformations.
		fresh := 0
		name := func() string {
			fresh++
			return fmt.Sprintf("v%d", fresh)
		}
		for n := rng.Intn(4); n > 0; n-- {
			order := s.Order()
			target := order[rng.Intn(len(order))]
			o, i := name(), name()
			if rng.Intn(2) == 0 {
				s.Divide(target, o, i, rng.Intn(3)+1)
			} else {
				s.Split(target, o, i, rng.Intn(3)+1)
			}
		}
		if s.Err() != nil {
			return false
		}
		ext, err := s.Extents(map[string]int{"i": ni, "j": nj, "k": nk})
		if err != nil {
			return false
		}
		// Enumerate the transformed loop nest.
		order := s.Order()
		counts := map[[3]int]int{}
		env := map[string]int{}
		var walk func(d int)
		walk = func(d int) {
			if d == len(order) {
				vals, ok := s.Value(env, ext)
				if !ok {
					return
				}
				counts[[3]int{vals["i"], vals["j"], vals["k"]}]++
				return
			}
			for x := 0; x < ext[order[d]]; x++ {
				env[order[d]] = x
				walk(d + 1)
			}
			delete(env, order[d])
		}
		walk(0)
		if len(counts) != ni*nj*nk {
			return false
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalSoundnessProperty: the interval computed for a partial
// environment must contain every value reachable by completing that
// environment.
func TestIntervalSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ni := rng.Intn(9) + 1
		s := New(ir.MustParse("A(i,j) = B(i,k) * C(k,j)"))
		s.Divide("i", "io", "ii", rng.Intn(3)+1)
		s.Split("k", "ko", "ki", rng.Intn(3)+1)
		if s.Err() != nil {
			return false
		}
		ext, err := s.Extents(map[string]int{"i": ni, "j": 2, "k": 5})
		if err != nil {
			return false
		}
		// Fix a random subset of the order.
		env := map[string]int{}
		for _, v := range s.Order() {
			if rng.Intn(2) == 0 {
				env[v] = rng.Intn(ext[v])
			}
		}
		ivs := s.Intervals(env, ext)
		// Complete the environment in all ways; every reached value must be
		// inside the interval.
		free := []string{}
		for _, v := range s.Order() {
			if _, ok := env[v]; !ok {
				free = append(free, v)
			}
		}
		ok := true
		var walk func(d int)
		walk = func(d int) {
			if !ok {
				return
			}
			if d == len(free) {
				vals, in := s.Value(env, ext)
				if !in {
					return
				}
				for name, v := range vals {
					iv := ivs[name]
					if v < iv.Lo || v >= iv.Hi {
						ok = false
					}
				}
				return
			}
			for x := 0; x < ext[free[d]]; x++ {
				env[free[d]] = x
				walk(d + 1)
			}
			delete(env, free[d])
		}
		walk(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
